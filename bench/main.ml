(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5), plus Bechamel micro-benchmarks and a k-sweep ablation.

   Usage:
     dune exec bench/main.exe                 # all tables and figures
     dune exec bench/main.exe -- --quick      # smaller corpora (CI-sized)
     dune exec bench/main.exe -- --perf       # micro-benchmarks only
     dune exec bench/main.exe -- --no-nn      # skip the GGNN/Great baselines
     dune exec bench/main.exe -- --sweeps     # add feature/threshold ablations
     dune exec bench/main.exe -- --telemetry  # per-stage pipeline cost →
                                              # BENCH_pipeline.json

   Expected-vs-measured numbers are catalogued in EXPERIMENTS.md. *)

module Corpus = Namer_corpus.Corpus
module Namer = Namer_core.Namer
module Telemetry = Namer_telemetry.Telemetry

(* Instrumented end-to-end build on a 15-repo Python corpus, once with
   jobs=1 and once with jobs=N (--jobs, default 4): prints the sequential
   per-stage cost table, verifies the two runs report identical violations,
   then drives an in-process serve-daemon load test, and writes both stage
   maps, the speedup, the snapshot save/load, scan-cache, serve,
   streaming-scale and incremental-merge measurements, and the interning
   micro-benchmarks to BENCH_pipeline.json (schema 7), the
   machine-readable trajectory file that perf PRs compare against. *)
let stage_wall name stages =
  match List.find_opt (fun s -> s.Telemetry.stage = name) stages with
  | Some s -> s.Telemetry.wall_ms
  | None -> infinity

let stage_count name stages =
  match List.find_opt (fun s -> s.Telemetry.stage = name) stages with
  | Some s -> s.Telemetry.s_count
  | None -> 0

(* Snapshot + cache instrumentation for the train-once / scan-many path:
   save the trained model, time [load_model] (best of 3), then scan the
   corpus files cold (empty cache) and warm (fully cached) and record what
   the warm scan skipped.  Returns the JSON object for the bench file. *)
let snapshot_bench (t : Namer.t) (corpus : Corpus.t) ~cold_build_ms =
  let module J = Namer_util.Json in
  let model_path = Filename.temp_file "namer_model" ".nmdl" in
  let cache_dir =
    let d = Filename.temp_file "namer_cache" "" in
    Sys.remove d;
    Unix.mkdir d 0o700;
    d
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s %s" model_path cache_dir)))
  @@ fun () ->
  ignore (Namer.save_model t ~path:model_path);
  let model_bytes = (Unix.stat model_path).Unix.st_size in
  let timed f =
    Telemetry.reset ();
    Telemetry.set_sink Telemetry.Memory;
    let r = f () in
    (r, Telemetry.stages ())
  in
  let load_once () = timed (fun () -> Namer.load_model ~path:model_path) in
  (* best of 3, like the build measurement *)
  let m, load_ms =
    List.fold_left
      (fun (m, best) () ->
        let m', stages = load_once () in
        let ms = stage_wall "model:load" stages in
        if ms < best then (m', ms) else (m, best))
      (fst (load_once ()), infinity)
      [ (); (); () ]
  in
  let files = corpus.Corpus.files in
  let _cold, cold_stages =
    timed (fun () -> Namer.scan_with_model ~jobs:1 ~cache_dir m files)
  in
  let warm, warm_stages =
    timed (fun () -> Namer.scan_with_model ~jobs:1 ~cache_dir m files)
  in
  let nocache, _ = timed (fun () -> Namer.scan_with_model ~jobs:1 m files) in
  let reports_identical = warm.Namer.sr_reports = nocache.Namer.sr_reports in
  let load_speedup = if load_ms > 0.0 then cold_build_ms /. load_ms else 0.0 in
  Printf.printf
    "\nsnapshot: cold build %.0f ms vs load %.2f ms (%.0fx), model %d bytes\n"
    cold_build_ms load_ms load_speedup model_bytes;
  Printf.printf
    "scan cache: cold %.1f ms → warm %.1f ms (%d hits, %d misses, %d files parsed \
     warm), reports %s\n"
    (stage_wall "scan:model" cold_stages)
    (stage_wall "scan:model" warm_stages)
    warm.Namer.sr_cache_hits warm.Namer.sr_cache_misses
    (stage_count "parse" warm_stages)
    (if reports_identical then "identical" else "DIFFERENT");
  ( J.Obj
      [
        ("cold_build_ms", J.Float cold_build_ms);
        ("load_ms", J.Float load_ms);
        ("load_speedup", J.Float load_speedup);
        ("model_bytes", J.Int model_bytes);
      ],
    J.Obj
      [
        ("cold_scan_ms", J.Float (stage_wall "scan:model" cold_stages));
        ("warm_scan_ms", J.Float (stage_wall "scan:model" warm_stages));
        ("warm_hits", J.Int warm.Namer.sr_cache_hits);
        ("warm_misses", J.Int warm.Namer.sr_cache_misses);
        ("warm_parse_count", J.Int (stage_count "parse" warm_stages));
        ("warm_analyze_count", J.Int (stage_count "analyze" warm_stages));
        ("warm_namepaths_count", J.Int (stage_count "namepaths" warm_stages));
        ("reports_identical", J.Bool reports_identical);
      ],
    reports_identical )

(* In-process serve load test: write the corpus to disk, save the trained
   model, start the daemon on an ephemeral TCP port with a shared report
   cache, drive concurrent clients at it, then drain — the same shape as
   the serve-smoke CI job, but measured.  Returns the schema-5 [serve]
   object and whether every response came back ok and identical. *)
let serve_bench (t : Namer.t) (corpus : Corpus.t) ~jobs =
  let module J = Namer_util.Json in
  let module Serve = Namer_serve.Serve in
  let module Client = Namer_serve.Client in
  let rec mkdir_p d =
    if not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  let tmp = Filename.temp_file "namer_servebench" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o700;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote tmp))))
  @@ fun () ->
  let dir = Filename.concat tmp "corpus" in
  let model_path = Filename.concat tmp "model.nmdl" in
  List.iter
    (fun (f : Corpus.file) ->
      let path = Filename.concat dir f.Corpus.path in
      mkdir_p (Filename.dirname path);
      let oc = open_out_bin path in
      output_string oc f.Corpus.source;
      close_out oc)
    corpus.Corpus.files;
  ignore (Namer.save_model t ~path:model_path);
  let sv =
    Serve.create
      {
        (Serve.default_config ~model_path (Serve.Tcp ("127.0.0.1", 0))) with
        Serve.sv_cache_dir = Some (Filename.concat tmp "cache");
        sv_jobs = jobs;
      }
  in
  let daemon = Thread.create (fun () -> ignore (Serve.serve_forever sv)) () in
  let target =
    match Serve.endpoint sv with
    | Serve.Tcp (h, p) -> Client.Tcp (h, p)
    | Serve.Unix_path p -> Client.Unix_path p
  in
  let clients = 8 and requests = 50 in
  let spec =
    {
      (Client.Load.default_spec
         ~payload:(J.Obj [ ("op", J.String "scan"); ("dir", J.String dir) ]))
      with
      Client.Load.l_clients = clients;
      l_requests = requests;
    }
  in
  let r = Client.Load.run target spec in
  Serve.request_stop sv;
  Thread.join daemon;
  let ok =
    r.Client.Load.lr_failed = 0
    && r.Client.Load.lr_ok = requests
    && r.Client.Load.lr_responses_identical
    && r.Client.Load.lr_rps > 0.0
  in
  Printf.printf
    "serve: %d clients x %d requests → %.0f req/s, p50 %.2f ms, p99 %.2f ms, \
     responses %s\n"
    clients requests r.Client.Load.lr_rps r.Client.Load.lr_p50_ms
    r.Client.Load.lr_p99_ms
    (if r.Client.Load.lr_responses_identical then "identical" else "DIFFERENT");
  let json =
    match Client.Load.json_of_result r with
    | J.Obj fields -> J.Obj (("clients", J.Int clients) :: fields)
    | j -> j
  in
  (json, ok)

(* Paper-scale streaming gates (the schema-6 [scale] object), run FIRST in
   the process so the top-heap high-water marks below measure the streaming
   frontend, not the residue of earlier benches.  Generates an on-disk
   corpus with [Corpus.write_scale] (an N-file corpus is a byte-identical
   prefix of the 2N one), then:
   - trains a small in-memory model as the scan instrument;
   - scans the half corpus at jobs=1 and jobs=N: reports must be
     byte-identical, and the heap watermark after is the half-scan bound;
   - scans the full corpus timed (files/sec, per-stage walls): because the
     watermark is monotonic, the full/half watermark ratio is ~1 exactly
     when doubling the corpus did not grow peak memory — the streaming
     contract — and the in-flight source gauge must stay bounded by the
     worker count, never the corpus;
   - trains with [build_refs] on the half corpus then the full corpus and
     applies the same doubling-ratio argument to training. *)
let scale_bench ~jobs ~n_files () =
  let module J = Namer_util.Json in
  let lang = Corpus.Python in
  Printf.printf "### Scale: streaming frontend, %d generated files ###\n\n" n_files;
  let rec mkdir_p d =
    if not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  let tmp = Filename.temp_file "namer_scale" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o700;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote tmp))))
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let refs_rev = ref [] and last_dir = ref "" and corpus_bytes = ref 0 in
  Corpus.write_scale ~lang ~seed:42 ~files_per_repo:50 ~n_files
    (fun ~repo ~path ~source ->
      let full = Filename.concat tmp path in
      let dir = Filename.dirname full in
      if dir <> !last_dir then begin
        mkdir_p dir;
        last_dir := dir
      end;
      let oc = open_out_bin full in
      output_string oc source;
      close_out oc;
      corpus_bytes := !corpus_bytes + String.length source;
      refs_rev := Namer.ref_of_path ~repo ~path ~file:full :: !refs_rev);
  let gen_s = Unix.gettimeofday () -. t0 in
  let refs = List.rev !refs_rev in
  let n_half = n_files / 2 in
  let half = List.filteri (fun i _ -> i < n_half) refs in
  let corpus_bytes = !corpus_bytes in
  Printf.printf "generated %d files (%.0f MB) in %.1fs\n" (List.length refs)
    (float_of_int corpus_bytes /. 1e6)
    gen_s;
  let top_heap_mb () =
    float_of_int (Gc.quick_stat ()).Gc.top_heap_words
    *. float_of_int (Sys.word_size / 8) /. 1e6
  in
  (* the scan instrument: a model trained on a small in-memory corpus —
     its footprint is the baseline watermark the streaming scans must fit
     inside *)
  let t_instr =
    Namer.build
      { Namer.default_config with Namer.use_classifier = false; jobs }
      (Corpus.generate { (Corpus.default_config lang) with Corpus.n_repos = 10 })
  in
  let m = Namer.model_of t_instr in
  let seq = Namer.scan_refs ~jobs:1 m half in
  let par = Namer.scan_refs ~jobs m half in
  let scan_identical = seq.Namer.sr_reports = par.Namer.sr_reports in
  let scan_heap_half_mb = top_heap_mb () in
  Namer.reset_in_flight_peak ();
  Telemetry.reset ();
  Telemetry.set_sink Telemetry.Memory;
  let tf0 = Unix.gettimeofday () in
  let full_res = Namer.scan_refs ~jobs m refs in
  let scan_full_s = Unix.gettimeofday () -. tf0 in
  let scan_stages = Telemetry.stages () in
  Telemetry.reset ();
  let scan_heap_full_mb = top_heap_mb () in
  let in_flight_peak = Namer.in_flight_sources_peak () in
  let scan_mem_ratio = scan_heap_full_mb /. Float.max 1.0 scan_heap_half_mb in
  let files_per_sec = float_of_int n_files /. Float.max 1e-9 scan_full_s in
  Printf.printf
    "scan: %d files in %.1fs (%.0f files/s, %d reports), half→full top heap %.0f → \
     %.0f MB (ratio %.2f), %d sources in flight at peak, jobs=1 vs jobs=%d reports \
     %s\n"
    n_files scan_full_s files_per_sec
    (Array.length full_res.Namer.sr_reports)
    scan_heap_half_mb scan_heap_full_mb scan_mem_ratio in_flight_peak jobs
    (if scan_identical then "identical" else "DIFFERENT");
  (* train doubling: half then full, same watermark argument *)
  let train_cfg n =
    {
      Namer.default_config with
      Namer.use_classifier = false;
      jobs;
      miner =
        {
          Namer_mining.Miner.default_config with
          Namer_mining.Miner.min_support = max 5 (n / 20);
          min_path_freq = max 3 (n / 50);
        };
    }
  in
  let th0 = Unix.gettimeofday () in
  ignore (Namer.build_refs (train_cfg n_half) ~lang half);
  let train_half_s = Unix.gettimeofday () -. th0 in
  let train_heap_half_mb = top_heap_mb () in
  let tf0 = Unix.gettimeofday () in
  let t_full = Namer.build_refs (train_cfg n_files) ~lang refs in
  let train_full_s = Unix.gettimeofday () -. tf0 in
  let train_heap_full_mb = top_heap_mb () in
  let train_mem_ratio = train_heap_full_mb /. Float.max 1.0 train_heap_half_mb in
  Printf.printf
    "train: %d files %.1fs → %d files %.1fs (%d patterns), top heap %.0f → %.0f MB \
     (ratio %.2f)\n\n"
    n_half train_half_s n_files train_full_s
    (Namer_pattern.Pattern.Store.size t_full.Namer.store)
    train_heap_half_mb train_heap_full_mb train_mem_ratio;
  let ok = scan_identical && files_per_sec > 0.0 in
  let json =
    J.Obj
      [
        ("files", J.Int n_files);
        ("corpus_bytes", J.Int corpus_bytes);
        ("gen_s", J.Float gen_s);
        ("scan_full_s", J.Float scan_full_s);
        ("files_per_sec", J.Float files_per_sec);
        ("reports", J.Int (Array.length full_res.Namer.sr_reports));
        ("reports_identical", J.Bool scan_identical);
        ("scan_heap_half_mb", J.Float scan_heap_half_mb);
        ("scan_heap_full_mb", J.Float scan_heap_full_mb);
        ("scan_mem_ratio", J.Float scan_mem_ratio);
        ("train_half_s", J.Float train_half_s);
        ("train_full_s", J.Float train_full_s);
        ("train_heap_half_mb", J.Float train_heap_half_mb);
        ("train_heap_full_mb", J.Float train_heap_full_mb);
        ("train_mem_ratio", J.Float train_mem_ratio);
        ("in_flight_sources_peak", J.Int in_flight_peak);
        ("digest_batch", J.Int Namer.default_config.Namer.digest_batch);
        ("jobs", J.Int jobs);
        ("stages_scan", Telemetry.stages_to_json scan_stages);
      ]
  in
  (json, ok)

(* Incremental-training gates (the schema-7 [merge] object): generate a
   ~2k-file corpus (~40 repos), time the full classifier-free build, then
   train the two halves into partial models, merge and finalize them, and
   require the merged model to scan the corpus byte-identically to the
   direct build — the merge-algebra contract train(A+B) ≡ merge(train A,
   train B) at bench scale.  The update flow then measures what
   incrementality buys: folding one new repo into an existing partial
   (digest the delta, merge, save) must beat retraining from scratch by
   at least 5x — check_bench enforces the gate. *)
let merge_bench ~jobs ~n_files () =
  let module J = Namer_util.Json in
  let module Miner = Namer_mining.Miner in
  let files_per_repo = 50 in
  let n_repos = (n_files + files_per_repo - 1) / files_per_repo in
  Printf.printf "### Incremental training: %d repos x %d files ###\n\n" n_repos
    files_per_repo;
  let corpus =
    Corpus.generate
      {
        (Corpus.default_config Corpus.Python) with
        Corpus.n_repos = n_repos;
        files_per_repo = (files_per_repo, files_per_repo);
        seed = 42;
      }
  in
  let n_files = List.length corpus.Corpus.files in
  let cfg =
    {
      Namer.default_config with
      Namer.use_classifier = false;
      jobs;
      miner =
        {
          Miner.default_config with
          Miner.min_support = max 5 (n_files / 20);
          min_path_freq = max 3 (n_files / 50);
        };
    }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  let t_full, full_ms = time (fun () -> Namer.build cfg corpus) in
  let slice files commits =
    { corpus with Corpus.files; injections = []; benigns = []; commits }
  in
  let split_at k xs =
    (List.filteri (fun i _ -> i < k) xs, List.filteri (fun i _ -> i >= k) xs)
  in
  let fa, fb = split_at (n_files / 2) corpus.Corpus.files in
  let ca, cb =
    split_at (List.length corpus.Corpus.commits / 2) corpus.Corpus.commits
  in
  let pa, half_a_ms = time (fun () -> Namer.Partial.of_corpus cfg (slice fa ca)) in
  let pb, half_b_ms = time (fun () -> Namer.Partial.of_corpus cfg (slice fb cb)) in
  let merged, merge_ms = time (fun () -> Namer.Partial.merge pa pb) in
  let t_merged, finalize_ms = time (fun () -> Namer.Partial.finalize cfg merged) in
  let render (r : Namer.scan_result) =
    Array.map
      (fun (x : Namer.report) ->
        Printf.sprintf "%s:%d:%s:%s:%s:%s" x.Namer.r_file x.Namer.r_line
          x.Namer.r_prefix x.Namer.r_found x.Namer.r_suggested x.Namer.r_kind)
      r.Namer.sr_reports
  in
  let r_full =
    render (Namer.scan_with_model ~jobs:1 (Namer.model_of t_full) corpus.Corpus.files)
  in
  let r_merged =
    render
      (Namer.scan_with_model ~jobs:1 (Namer.model_of t_merged) corpus.Corpus.files)
  in
  let reports_identical = r_full = r_merged in
  (* the update flow: every repo but the last is already trained into a
     partial (untimed — that work was paid long ago); folding the last
     repo in digests only its own files *)
  let last_repo =
    match List.rev corpus.Corpus.files with
    | [] -> ""
    | f :: _ -> f.Corpus.repo
  in
  let old_files, new_files =
    List.partition
      (fun (f : Corpus.file) -> f.Corpus.repo <> last_repo)
      corpus.Corpus.files
  in
  let p_old = Namer.Partial.of_corpus cfg (slice old_files corpus.Corpus.commits) in
  let path = Filename.temp_file "namer_partial" ".nprt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let _, update_ms =
    time (fun () ->
        let delta = Namer.Partial.of_corpus cfg (slice new_files []) in
        ignore (Namer.Partial.save (Namer.Partial.merge p_old delta) ~path))
  in
  let update_speedup = if update_ms > 0.0 then full_ms /. update_ms else 0.0 in
  Printf.printf
    "full build %.0f ms; halves %.0f + %.0f ms, merge %.1f ms, finalize %.0f ms, \
     reports %s\n"
    full_ms half_a_ms half_b_ms merge_ms finalize_ms
    (if reports_identical then "identical" else "DIFFERENT");
  Printf.printf
    "update: fold %d new files into a %d-file partial in %.0f ms — %.1fx faster \
     than the %.0f ms retrain\n\n"
    (List.length new_files) (List.length old_files) update_ms update_speedup
    full_ms;
  let ok = reports_identical && update_speedup >= 5.0 in
  let json =
    J.Obj
      [
        ("files", J.Int n_files);
        ("repos", J.Int n_repos);
        ("jobs", J.Int jobs);
        ("full_build_ms", J.Float full_ms);
        ("partial_half_a_ms", J.Float half_a_ms);
        ("partial_half_b_ms", J.Float half_b_ms);
        ("merge_ms", J.Float merge_ms);
        ("finalize_ms", J.Float finalize_ms);
        ("reports", J.Int (Array.length r_full));
        ("reports_identical", J.Bool reports_identical);
        ("update_files", J.Int (List.length new_files));
        ("update_ms", J.Float update_ms);
        ("update_speedup", J.Float update_speedup);
      ]
  in
  (json, ok)

let telemetry_bench ~jobs_parallel ~scale:(scale_json, scale_ok)
    ~merge:(merge_json, merge_ok) () =
  print_endline "### Pipeline telemetry (15-repo Python corpus) ###\n";
  let corpus =
    Corpus.generate { (Corpus.default_config Corpus.Python) with Corpus.n_repos = 15 }
  in
  let fingerprint (t : Namer.t) =
    Array.to_list t.Namer.violations
    |> List.map (fun (v : Namer.violation) ->
           Printf.sprintf "%s:%d:%s:%s"
             v.Namer.v_stmt.Namer.sctx.Namer_classifier.Features.file
             v.Namer.v_stmt.Namer.line
             v.Namer.v_info.Namer_pattern.Pattern.found
             v.Namer.v_info.Namer_pattern.Pattern.suggested)
    |> String.concat "\n"
  in
  let run ~jobs =
    Telemetry.reset ();
    Telemetry.set_sink Telemetry.Memory;
    let t = Namer.build { Namer.default_config with Namer.jobs } corpus in
    (t, Telemetry.stages ())
  in
  let build_wall stages =
    match List.find_opt (fun s -> s.Telemetry.stage = "build") stages with
    | Some s -> s.Telemetry.wall_ms
    | None -> infinity
  in
  (* one untimed warmup build so every timed run sees warm caches and a
     grown heap, then interleaved best-of-3 per jobs setting: the min wall
     is the standard noise-free estimator, and interleaving keeps thermal /
     paging drift from favoring whichever setting runs last *)
  ignore (run ~jobs:1);
  let best ~jobs previous =
    let fresh = run ~jobs in
    match previous with
    | Some prev when build_wall (snd prev) <= build_wall (snd fresh) -> Some prev
    | _ -> Some fresh
  in
  let rec measure k seq par =
    if k = 0 then (Option.get seq, Option.get par)
    else measure (k - 1) (best ~jobs:1 seq) (best ~jobs:jobs_parallel par)
  in
  let (t, stages_seq), (t_par, stages_par) = measure 3 None None in
  Printf.printf "corpus: %d files → %d patterns, %d violations\n\n"
    (List.length corpus.Corpus.files)
    (Namer_pattern.Pattern.Store.size t.Namer.store)
    (Array.length t.Namer.violations);
  print_string (Telemetry.stage_table ~stages:stages_seq ());
  let reports_identical = String.equal (fingerprint t) (fingerprint t_par) in
  (* cap_domains clamps the worker count to the hardware; when that
     collapses jobs=N to the sequential path (a 1-core machine), the two
     timed configurations are the same program and their ratio is pure
     measurement noise — the honest speedup is 1.0 by construction *)
  let effective_jobs =
    if Namer.default_config.Namer.cap_domains then
      min jobs_parallel (Domain.recommended_domain_count ())
    else jobs_parallel
  in
  let speedup =
    let par = build_wall stages_par in
    if effective_jobs <= 1 then 1.0
    else if par > 0.0 && par < infinity then build_wall stages_seq /. par
    else 1.0
  in
  Printf.printf "\njobs=1 vs jobs=%d: build %.0f ms vs %.0f ms (%.2fx, best of 3%s), reports %s\n"
    jobs_parallel (build_wall stages_seq) (build_wall stages_par) speedup
    (if effective_jobs <= 1 then "; capped to 1 domain — same configuration, speedup 1.0 by construction"
     else "")
    (if reports_identical then "identical" else "DIFFERENT");
  let snapshot_json, cache_json, cache_identical =
    snapshot_bench t corpus ~cold_build_ms:(build_wall stages_seq)
  in
  let serve_json, serve_ok = serve_bench t corpus ~jobs:effective_jobs in
  let micro = Perf.micro_estimates () in
  List.iter (fun (name, ns) -> Printf.printf "micro %-32s %s\n" name (Perf.pretty_ns ns)) micro;
  let path = "BENCH_pipeline.json" in
  let module J = Namer_util.Json in
  let oc = open_out path in
  output_string oc
    (J.to_string ~indent:2
       (J.Obj
          [
            ("schema", J.Int 7);
            ("cores", J.Int (Domain.recommended_domain_count ()));
            ("cap_domains", J.Bool Namer.default_config.Namer.cap_domains);
            ("jobs_parallel", J.Int jobs_parallel);
            ("jobs_parallel_effective", J.Int effective_jobs);
            ("speedup", J.Float speedup);
            ("reports_identical", J.Bool reports_identical);
            ("snapshot", snapshot_json);
            ("scan_cache", cache_json);
            ("serve", serve_json);
            ("scale", scale_json);
            ("merge", merge_json);
            ("stages", Telemetry.stages_to_json stages_seq);
            ("stages_parallel", Telemetry.stages_to_json stages_par);
            ("micro", J.Obj (List.map (fun (name, ns) -> (name, J.Float ns)) micro));
          ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote per-stage wall_ms/alloc_mb/count (jobs=1 and jobs=%d) + snapshot/cache to %s\n"
    jobs_parallel path;
  (* one bench record in the run ledger, so `namer report` trends bench
     runs alongside train/scan — best-effort, a read-only CI sandbox must
     not fail the bench *)
  (try
     let module Ledger = Namer_obs.Ledger in
     Ledger.append ~dir:(Ledger.default_dir ())
       (J.Obj
          [
            ("schema", J.Int Ledger.schema_version);
            ("ts", J.Float (Unix.gettimeofday ()));
            ("cmd", J.String "bench");
            ( "argv",
              J.List (List.map (fun a -> J.String a) (Array.to_list Sys.argv)) );
            ("git", J.String (Ledger.git_describe ()));
            ("stages", Telemetry.stages_to_json stages_seq);
            ("speedup", J.Float speedup);
            ("reports_identical", J.Bool reports_identical);
            ("peak_rss_kb", J.Int (Ledger.peak_rss_kb ()));
          ])
   with Sys_error _ | Unix.Unix_error _ -> ());
  if not (reports_identical && cache_identical && serve_ok && scale_ok && merge_ok)
  then exit 1

let () =
  let args = Array.to_list Sys.argv in
  let flag f = List.mem f args in
  let opt_int name default =
    let rec find = function
      | a :: b :: _ when a = name -> ( try int_of_string b with Failure _ -> default)
      | _ :: rest -> find rest
      | [] -> default
    in
    find args
  in
  let quick = flag "--quick" in
  let scale = if quick then Exp.Quick else Exp.Full in
  if flag "--telemetry" then begin
    let jobs_parallel = opt_int "--jobs" 4 in
    (* scale first: its heap high-water marks must not inherit the
       telemetry builds' footprint *)
    let scale = scale_bench ~jobs:jobs_parallel ~n_files:(opt_int "--scale-files" 20_000) () in
    let merge = merge_bench ~jobs:jobs_parallel ~n_files:(opt_int "--merge-files" 2_000) () in
    telemetry_bench ~jobs_parallel ~scale ~merge ();
    exit 0
  end;
  if flag "--perf" then begin
    Perf.run ();
    Perf.k_sweep ();
    exit 0
  end;
  let t_start = Unix.gettimeofday () in
  print_endline "==============================================================";
  print_endline " Namer reproduction — PLDI 2021 evaluation tables and figures";
  print_endline "==============================================================\n";

  (* ---------------- Python (§5.2) ---------------- *)
  print_endline "### Python evaluation (§5.2) ###\n";
  let py = Exp.build_lang ~scale Corpus.Python in
  print_newline ();
  let py_rows = Exp.precision_table py in
  Exp.print_precision_table
    ~caption:
      (Printf.sprintf
         "Table 2: precision on %d randomly selected violations (Python; paper: 70/46/59/40%%)"
         Exp.sample_n)
    py_rows;
  Exp.print_examples_table ~caption:"Table 3: example reports (Python)" py.Exp.namer;
  Exp.print_per_kind_table
    ~caption:"Table 4: 100 reports per pattern type with quality breakdown (Python)"
    py.Exp.namer;
  Exp.print_kind_distribution py.Exp.namer;
  Exp.print_stats py;

  (* ---------------- Java (§5.3) ---------------- *)
  print_endline "### Java evaluation (§5.3) ###\n";
  let java = Exp.build_lang ~scale Corpus.Java in
  print_newline ();
  let java_rows = Exp.precision_table java in
  Exp.print_precision_table
    ~caption:
      (Printf.sprintf
         "Table 5: precision on %d randomly selected violations (Java; paper: 68/31/48/29%%)"
         Exp.sample_n)
    java_rows;
  Exp.print_examples_table ~caption:"Table 6: example reports (Java)" java.Exp.namer;
  Exp.print_per_kind_table
    ~caption:"Table 4-analog for Java: 100 reports per pattern type"
    java.Exp.namer;
  Exp.print_kind_distribution java.Exp.namer;
  Exp.print_stats java;

  (* ---------------- user study (§5.4) ---------------- *)
  print_endline "### User study (§5.4, simulated) ###\n";
  Exp.print_userstudy py;

  (* ---------------- classifier insight (§5.5) ---------------- *)
  print_endline "### Understanding classifier decisions (§5.5) ###\n";
  Exp.print_table9 py java;

  (* ---------------- deep-learning comparison (§5.6) ---------------- *)
  if not (flag "--no-nn") then begin
    print_endline "### Comparison with deep-learning approaches (§5.6) ###\n";
    let namer_py = List.assoc "Namer" py_rows in
    let rows10 = Exp.baselines_table py ~namer_outcome:namer_py in
    print_newline ();
    Exp.print_baselines_table
      ~caption:"Table 10: GGNN / Great / Namer precision (Python; paper: 16% / 8% / 70%)"
      rows10 ~namer_outcome:namer_py;
    let namer_java = List.assoc "Namer" java_rows in
    let rows11 = Exp.baselines_table java ~namer_outcome:namer_java in
    print_newline ();
    Exp.print_baselines_table
      ~caption:"Table 11: GGNN / Great / Namer precision (Java; paper: 9% / 5% / 68%)"
      rows11 ~namer_outcome:namer_java
  end;
  print_newline ();

  (* ---------------- extra ablations (DESIGN.md §4) ---------------- *)
  if flag "--sweeps" then begin
    print_endline "### Extra ablations ###\n";
    Exp.print_feature_ablation py;
    Exp.print_mining_sweep ()
  end;

  (* ---------------- figures ---------------- *)
  print_endline "### Figures ###\n";
  Exp.print_figure2 py;
  Exp.print_figure3 ();

  Printf.printf "total wall-clock: %.0fs\n" (Unix.gettimeofday () -. t_start);
  print_endline "(run with --perf for the §5.1 speed micro-benchmarks)"
