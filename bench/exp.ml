(* Experiment implementations: one function per table/figure of the paper's
   evaluation (§5).  See DESIGN.md for the per-experiment index and
   EXPERIMENTS.md for paper-vs-measured numbers. *)

module Corpus = Namer_corpus.Corpus
module Issue = Namer_corpus.Issue
module Namer = Namer_core.Namer
module Pattern = Namer_pattern.Pattern
module Miner = Namer_mining.Miner
module Features = Namer_classifier.Features
module Confusing_pairs = Namer_mining.Confusing_pairs
module Tablefmt = Namer_util.Tablefmt
module Prng = Namer_util.Prng

let sample_seed = 123
let sample_n = 300

(* ------------------------------------------------------------------ *)
(* Corpus + system construction for one language                       *)
(* ------------------------------------------------------------------ *)

type scale = Full | Quick

type lang_run = {
  lang : Corpus.lang;
  corpus : Corpus.t;
  namer : Namer.t;  (** full system (with analyses, with classifier) *)
  namer_no_a : Namer.t;  (** analyses ablated *)
}

let corpus_config ?(scale = Full) lang =
  let n_repos, files = match scale with Full -> (60, (10, 20)) | Quick -> (40, (8, 14)) in
  (* Java files roll the issue/benign dice less often per file than Python
     ones, so its rates are higher to yield comparable violation pools *)
  let issue_rate, benign_rate =
    match lang with Corpus.Python -> (0.03, 0.045) | Corpus.Java -> (0.05, 0.08)
  in
  {
    (Corpus.default_config lang) with
    Corpus.n_repos;
    files_per_repo = files;
    issue_rate;
    benign_rate;
    n_commit_files = 150;
  }

let namer_config =
  {
    Namer.default_config with
    (* cross-validated model selection, as in §5.1 *)
    Namer.algo = None;
  }

let build_lang ?(scale = Full) lang : lang_run =
  let corpus = Corpus.generate (corpus_config ~scale lang) in
  Printf.printf "[%s] corpus: %d files, %d injected issues, %d benign anomalies\n%!"
    (Corpus.lang_name lang)
    (List.length corpus.Corpus.files)
    (List.length corpus.Corpus.injections)
    (List.length corpus.Corpus.benigns);
  let t0 = Unix.gettimeofday () in
  let namer = Namer.build namer_config corpus in
  Printf.printf "[%s] Namer built in %.1fs (%d patterns, %d violations)\n%!"
    (Corpus.lang_name lang)
    (Unix.gettimeofday () -. t0)
    (Pattern.Store.size namer.Namer.store)
    (Array.length namer.Namer.violations);
  let namer_no_a =
    Namer.build { namer_config with Namer.use_analysis = false } corpus
  in
  Printf.printf "[%s] w/o A variant built (%d violations)\n%!"
    (Corpus.lang_name lang)
    (Array.length namer_no_a.Namer.violations);
  { lang; corpus; namer; namer_no_a }

(* ------------------------------------------------------------------ *)
(* Tables 2 and 5: precision of Namer and ablation baselines           *)
(* ------------------------------------------------------------------ *)

(* One evaluation row, averaged over several supervision draws (the
   single-draw variance of a 120-sample training set is large; the paper
   smooths its classifier metrics over 30 CV splits in the same spirit). *)
let n_retrain_draws = 5

let ablation_row (t : Namer.t) ~use_classifier : Namer.outcome =
  if not use_classifier then begin
    let sampled = Namer.sample_violations t ~n:sample_n ~seed:sample_seed in
    Namer.grade_reports t sampled
  end
  else begin
    let outcomes =
      List.init n_retrain_draws (fun k ->
          let t = Namer.retrain t ~seed:(1000 + (7919 * k)) in
          let sampled = Namer.sample_violations t ~n:sample_n ~seed:sample_seed in
          Namer.grade_reports t (List.filter (Namer.classify t) sampled))
    in
    let n = List.length outcomes in
    let avg f = List.fold_left (fun a o -> a + f o) 0 outcomes / n in
    {
      Namer.n_reports = avg (fun o -> o.Namer.n_reports);
      semantic = avg (fun o -> o.Namer.semantic);
      quality = avg (fun o -> o.Namer.quality);
      false_pos = avg (fun o -> o.Namer.false_pos);
    }
  end

(** The four rows of Table 2 (Python) / Table 5 (Java). *)
let precision_table (r : lang_run) =
  [
    ("Namer", ablation_row r.namer ~use_classifier:true);
    ("w/o C", ablation_row r.namer ~use_classifier:false);
    ("w/o A", ablation_row r.namer_no_a ~use_classifier:true);
    ("w/o C & A", ablation_row r.namer_no_a ~use_classifier:false);
  ]

let print_precision_table ~caption rows =
  Tablefmt.print ~caption
    ~header:[ "Baseline"; "Report"; "Semantic"; "Quality"; "FalsePos"; "Precision" ]
    (List.map
       (fun (name, (o : Namer.outcome)) ->
         [
           name;
           string_of_int o.Namer.n_reports;
           string_of_int o.Namer.semantic;
           string_of_int o.Namer.quality;
           string_of_int o.Namer.false_pos;
           Tablefmt.pct (Namer.precision o);
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Tables 3 and 6: example reports                                     *)
(* ------------------------------------------------------------------ *)

let print_examples_table ~caption (t : Namer.t) =
  let sampled = Namer.sample_violations t ~n:500 ~seed:(sample_seed + 1) in
  let reports = List.filter (Namer.classify t) sampled in
  let pick verdict_name n =
    List.filter
      (fun v ->
        let name =
          match Namer.grade t v with
          | Corpus.Oracle.True_issue Issue.Semantic_defect -> "semantic"
          | Corpus.Oracle.True_issue (Issue.Code_quality _) -> "quality"
          | _ -> "fp"
        in
        name = verdict_name)
      reports
    |> List.filteri (fun i _ -> i < n)
  in
  let row section v =
    [ section; Namer.source_line t v; Namer.describe_fix v ]
  in
  let rows =
    List.map (row "semantic defect") (pick "semantic" 3)
    @ List.map (row "code quality") (pick "quality" 3)
    @ List.map (row "false positive") (pick "fp" 2)
  in
  Tablefmt.print ~caption
    ~header:[ "Kind"; "Reported statement"; "Suggested fix" ]
    ~align:[ Tablefmt.Left; Tablefmt.Left; Tablefmt.Left ]
    rows

(* ------------------------------------------------------------------ *)
(* Table 4: per-pattern-type precision with quality breakdown          *)
(* ------------------------------------------------------------------ *)

let quality_breakdown (t : Namer.t) (vs : Namer.violation list) =
  let counts = Hashtbl.create 8 in
  let bump k = Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0) in
  List.iter
    (fun v ->
      match Namer.grade t v with
      | Corpus.Oracle.True_issue Issue.Semantic_defect -> bump `Semantic
      | Corpus.Oracle.True_issue (Issue.Code_quality q) -> bump (`Quality q)
      | _ -> bump `Fp)
    vs;
  fun k -> Option.value (Hashtbl.find_opt counts k) ~default:0

let per_kind_reports (t : Namer.t) kind ~n =
  let of_kind (v : Namer.violation) =
    match (v.Namer.v_pattern.Pattern.kind, kind) with
    | Pattern.Consistency, `Consistency -> true
    | (Pattern.Confusing_word _ | Pattern.Ordering _), `Confusing -> true
    | _ -> false
  in
  Namer.sample_violations ~filter:of_kind t ~n:2000 ~seed:(sample_seed + 2)
  |> List.filter (Namer.classify t)
  |> List.filteri (fun i _ -> i < n)

let print_per_kind_table ~caption (t : Namer.t) =
  let cons = per_kind_reports t `Consistency ~n:100 in
  let conf = per_kind_reports t `Confusing ~n:100 in
  let c1 = quality_breakdown t cons and c2 = quality_breakdown t conf in
  let open Issue in
  let rows =
    [
      ("Semantic defect", `Semantic);
      ("Code quality issue", `QualityTotal);
      ("False positive", `Fp);
      ("-- confusing name", `Quality Confusing_name);
      ("-- indescriptive name", `Quality Indescriptive_name);
      ("-- inconsistent name", `Quality Inconsistent_name);
      ("-- minor issue", `Quality Minor_issue);
      ("-- typo", `Quality Typo);
    ]
  in
  let value c = function
    | `QualityTotal ->
        List.fold_left
          (fun acc q -> acc + c (`Quality q))
          0
          [ Confusing_name; Indescriptive_name; Inconsistent_name; Minor_issue; Typo ]
    | k -> c k
  in
  Tablefmt.print ~caption
    ~header:[ "Inspection outcome"; "Consistency"; "Confusing word" ]
    (List.map
       (fun (label, k) ->
         [ label; string_of_int (value c1 k); string_of_int (value c2 k) ])
       rows);
  Printf.printf "  (reports inspected: %d consistency, %d confusing-word)\n\n"
    (List.length cons) (List.length conf)

(** Report-source distribution (§5.2/§5.3: share per pattern type, overlap). *)
let print_kind_distribution (t : Namer.t) =
  let sampled = Namer.sample_violations t ~n:1000 ~seed:(sample_seed + 3) in
  let reports = List.filter (Namer.classify t) sampled in
  let key (v : Namer.violation) =
    (v.Namer.v_stmt.Namer.sctx.Features.file, v.Namer.v_stmt.Namer.line)
  in
  let cons = Hashtbl.create 64 and conf = Hashtbl.create 64 in
  List.iter
    (fun v ->
      match v.Namer.v_pattern.Pattern.kind with
      | Pattern.Consistency -> Hashtbl.replace cons (key v) ()
      | Pattern.Confusing_word _ | Pattern.Ordering _ -> Hashtbl.replace conf (key v) ())
    reports;
  let locations = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace locations (key v) ()) reports;
  let n_loc = max 1 (Hashtbl.length locations) in
  let both =
    Hashtbl.fold (fun k () acc -> if Hashtbl.mem conf k then acc + 1 else acc) cons 0
  in
  Printf.printf
    "report distribution: %s from consistency patterns, %s from confusing-word patterns, %s detected by both\n\n"
    (Tablefmt.pct (float_of_int (Hashtbl.length cons) /. float_of_int n_loc))
    (Tablefmt.pct (float_of_int (Hashtbl.length conf) /. float_of_int n_loc))
    (Tablefmt.pct (float_of_int both /. float_of_int n_loc))

(* ------------------------------------------------------------------ *)
(* Mining / classifier statistics (§5.2, §5.3)                          *)
(* ------------------------------------------------------------------ *)

let print_stats (r : lang_run) =
  let t = r.namer in
  Printf.printf "mining statistics (%s):\n" (Corpus.lang_name r.lang);
  Printf.printf "  name patterns mined: %d (from %d candidates)\n"
    (Pattern.Store.size t.Namer.store)
    t.Namer.n_candidates;
  Printf.printf "  confusing word pairs: %d\n" (Confusing_pairs.total_pairs t.Namer.pairs);
  Printf.printf "  statements scanned: %d\n" t.Namer.n_stmts;
  Printf.printf "  violations triggered: %d\n" (Array.length t.Namer.violations);
  Printf.printf "  files with ≥1 violation: %d of %d (%s)\n" t.Namer.n_files_violating
    t.Namer.n_files
    (Tablefmt.pct (float_of_int t.Namer.n_files_violating /. float_of_int t.Namer.n_files));
  Printf.printf "  repos with ≥1 violation: %d of %d (%s)\n" t.Namer.n_repos_violating
    t.Namer.n_repos
    (Tablefmt.pct (float_of_int t.Namer.n_repos_violating /. float_of_int t.Namer.n_repos));
  Printf.printf "  classifier cross-validation (30×, 80/20 splits):\n";
  List.iter
    (fun (algo, (r : Namer_ml.Pipeline.cv_report)) ->
      Printf.printf "    %-7s acc=%s precision=%s recall=%s f1=%s\n"
        (Namer_ml.Pipeline.algo_name algo)
        (Tablefmt.pct r.Namer_ml.Pipeline.accuracy)
        (Tablefmt.pct r.Namer_ml.Pipeline.precision)
        (Tablefmt.pct r.Namer_ml.Pipeline.recall)
        (Tablefmt.pct r.Namer_ml.Pipeline.f1))
    t.Namer.cv_reports;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Table 9: classifier feature weights                                 *)
(* ------------------------------------------------------------------ *)

let print_table9 (py : lang_run) (java : lang_run) =
  let wp = Namer.feature_weights py.namer and wj = Namer.feature_weights java.namer in
  if Array.length wp = 0 || Array.length wj = 0 then
    print_endline "table 9 unavailable (classifier disabled)"
  else begin
    let avg i = (wp.(i) +. wj.(i)) /. 2.0 in
    let f x = Printf.sprintf "%+.3f" x in
    Tablefmt.print
      ~caption:
        "Table 9: feature weights of the learned classifier (averaged over Python and Java)"
      ~header:[ "Feature"; "File level"; "Repo level"; "Entire dataset" ]
      [
        [ "Identical statement"; f (avg 1); f (avg 2); "-" ];
        [ "Satisfaction rate"; f (avg 3); f (avg 4); f (avg 5) ];
        [ "Violation count"; f (avg 6); f (avg 7); f (avg 8) ];
        [ "Satisfaction count"; f (avg 9); f (avg 10); f (avg 11) ];
      ];
    print_endline
      "  (paper's observation: the same feature family can carry opposite signs at\n\
      \   different levels — compare the file/repo columns with the dataset column)";
    print_newline ()
  end

(* ------------------------------------------------------------------ *)
(* Tables 10 and 11: deep-learning baseline comparison                 *)
(* ------------------------------------------------------------------ *)

let baselines_table (r : lang_run) ~(namer_outcome : Namer.outcome) =
  let module B = Namer_baselines.Pipeline in
  let module S = Namer_baselines.Sample in
  let prng = Prng.create 2718 in
  let samples = S.harvest ~prng ~max_samples:6000 r.corpus in
  let n = List.length samples in
  let n_train = min 3000 (2 * n / 3) in
  let train = List.filteri (fun i _ -> i < n_train) samples in
  let held_out = List.filteri (fun i _ -> i >= n_train) samples in
  Printf.printf "[%s] baselines: %d samples (%d train, %d held out)\n%!"
    (Corpus.lang_name r.lang) n n_train (List.length held_out);
  let oracle = Corpus.Oracle.of_corpus r.corpus in
  (* the paper tunes confidence so baselines report ~5× fewer than Namer *)
  let budget = max 10 (namer_outcome.Namer.n_reports / 5) in
  List.map
    (fun which ->
      let t0 = Unix.gettimeofday () in
      let m = B.train ~which ~prng ~epochs:2 train in
      let acc = B.synthetic_accuracy ~prng m held_out in
      Printf.printf "  %s: trained %.0fs; synthetic classification=%s repair=%s\n%!"
        m.B.model_name
        (Unix.gettimeofday () -. t0)
        (Tablefmt.pct acc.B.classification)
        (Tablefmt.pct acc.B.repair);
      let reports = B.scan m samples |> List.filteri (fun i _ -> i < budget) in
      let sem, qual, fp = B.grade_reports oracle reports in
      (m.B.model_name, acc, sem, qual, fp))
    [ `Ggnn; `Great ]

let print_baselines_table ~caption rows ~(namer_outcome : Namer.outcome) =
  let module B = Namer_baselines.Pipeline in
  let baseline_rows =
    List.map
      (fun (name, (_ : B.synthetic_accuracy), sem, qual, fp) ->
        let total = sem + qual + fp in
        [
          name;
          string_of_int sem;
          string_of_int qual;
          string_of_int fp;
          Tablefmt.pct
            (if total = 0 then 0.0 else float_of_int (sem + qual) /. float_of_int total);
        ])
      rows
  in
  let namer_row =
    [
      "Namer";
      string_of_int namer_outcome.Namer.semantic;
      string_of_int namer_outcome.Namer.quality;
      string_of_int namer_outcome.Namer.false_pos;
      Tablefmt.pct (Namer.precision namer_outcome);
    ]
  in
  Tablefmt.print ~caption
    ~header:[ "System"; "Semantic"; "Quality"; "FalsePos"; "Precision" ]
    (baseline_rows @ [ namer_row ])

(* ------------------------------------------------------------------ *)
(* Figure 3: the FP-tree mining example                                *)
(* ------------------------------------------------------------------ *)

let print_figure3 () =
  let module Fptree = Namer_mining.Fptree in
  let t = Fptree.create () in
  (* the tree holds interned ids; render id [i] as "NP<i>" for the table *)
  let label i = Printf.sprintf "NP%d" i in
  let ins items n =
    for _ = 1 to n do
      Fptree.insert t items
    done
  in
  ins [ 1; 2 ] 33;
  ins [ 1; 3; 5 ] 15;
  ins [ 1; 3; 4 ] 14;
  ins [ 1; 3; 4; 6 ] 13;
  let rows =
    Fptree.fold_last_nodes t
      ~f:(fun acc ~path_items ~support ->
        let rev = List.rev path_items in
        let deduction = List.hd rev and cond = List.rev (List.tl rev) in
        [ String.concat ", " (List.map label cond); label deduction; string_of_int support ]
        :: acc)
      []
    |> List.sort compare
  in
  Tablefmt.print
    ~caption:"Figure 3(b): name patterns extracted from the Figure 3(a) FP-tree"
    ~header:[ "Condition"; "Deduction"; "Count" ]
    rows;
  print_endline
    "  (counts follow standard FP-tree semantics — prefixes accumulate pass-through\n\
    \   insertions, hence NP4's 27 vs the paper's illustrative 14; see EXPERIMENTS.md)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 2: end-to-end detection of the running example               *)
(* ------------------------------------------------------------------ *)

let figure2_file =
  "import os\nfrom unittest import TestCase\n\nclass TestPicture(TestCase):\n    def test_angle_picture(self):\n        rotated_picture_name = \"IMG_2259.jpg\"\n        picture = self.slide.pictures\n        self.assertTrue(picture.rotate_angle, 90)\n"

let print_figure2 (py : lang_run) =
  let parsed =
    Namer_core.Frontend.parse_file Corpus.Python ~use_analysis:true figure2_file
  in
  let detected = ref None in
  List.iter
    (fun (s : Namer_core.Frontend.stmt) ->
      let origins =
        parsed.Namer_core.Frontend.origins ~cls:s.Namer_core.Frontend.cls
          ~fn:s.Namer_core.Frontend.fn
      in
      let plus = Namer_namepath.Astplus.transform ~origins s.Namer_core.Frontend.tree in
      let digest = Pattern.Stmt_paths.of_tree plus in
      Pattern.Store.candidates py.namer.Namer.store digest
      |> List.iter (fun p ->
             match Pattern.check p digest with
             | Pattern.Violated info
               when info.Pattern.found = "True" && info.Pattern.suggested = "Equal" ->
                 detected := Some p
             | _ -> ()))
    parsed.Namer_core.Frontend.stmts;
  (match !detected with
  | Some _ ->
      print_endline
        "Figure 2: the assertTrue(picture.rotate_angle, 90) bug is detected by the\n\
         mined patterns with suggested fix True → Equal (assertTrue → assertEqual).  ✓"
  | None ->
      print_endline "Figure 2: NOT DETECTED — mined pattern set missing the idiom!  ✗");
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Tables 7 and 8: the (simulated) user study                          *)
(* ------------------------------------------------------------------ *)

let print_userstudy (py : lang_run) =
  let module U = Namer_userstudy.Userstudy in
  let t = py.namer in
  (* Table 7: one classifier-accepted report per quality category. *)
  let sampled = Namer.sample_violations t ~n:2000 ~seed:(sample_seed + 4) in
  let reports = List.filter (Namer.classify t) sampled in
  let example_for cat =
    List.find_opt
      (fun v ->
        match Namer.grade t v with
        | Corpus.Oracle.True_issue (Issue.Code_quality q) -> q = cat
        | _ -> false)
      reports
  in
  let rows =
    List.filter_map
      (fun cat ->
        match example_for cat with
        | Some v ->
            Some
              [
                Issue.category_name (Issue.Code_quality cat);
                Namer.source_line t v;
                Namer.describe_fix v;
              ]
        | None ->
            Some [ Issue.category_name (Issue.Code_quality cat); "(no report drawn)"; "-" ])
      U.categories
  in
  Tablefmt.print ~caption:"Table 7: code quality issues selected for the user study"
    ~header:[ "Issue category"; "Original code"; "Detected issue & fix" ]
    ~align:[ Tablefmt.Left; Tablefmt.Left; Tablefmt.Left ]
    rows;
  (* Table 8: the simulated seven-developer panel. *)
  let rows =
    List.mapi
      (fun i cat ->
        let tally = U.run ~seed:(9000 + i) cat in
        [
          Issue.category_name (Issue.Code_quality cat);
          string_of_int tally.U.not_accepted;
          string_of_int tally.U.with_ide;
          string_of_int tally.U.with_pr;
          string_of_int tally.U.manually;
        ])
      U.categories
  in
  Tablefmt.print
    ~caption:
      "Table 8: simulated developer responses (archetype panel; see DESIGN.md §1)"
    ~header:[ "Issue category"; "NotAccepted"; "IDE plugin"; "Pull request"; "Fix manually" ]
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Extra ablations (DESIGN.md §4)                                      *)
(* ------------------------------------------------------------------ *)

(** Feature-level ablation supporting §5.5's "multi-level features matter":
    cross-validate the classifier with the repo-level and/or dataset-level
    copies of features 2–12 zeroed out. *)
let print_feature_ablation (r : lang_run) =
  let t = r.namer in
  let prng = Prng.create 515 in
  (* balanced labeled set, as in training *)
  let labeled =
    Array.to_list t.Namer.violations
    |> List.map (fun v ->
           ( v.Namer.v_features,
             match Namer.grade t v with
             | Corpus.Oracle.True_issue _ -> true
             | _ -> false ))
  in
  let pos = List.filter snd labeled and neg = List.filter (fun (_, l) -> not l) labeled in
  let n = min 150 (min (List.length pos) (List.length neg)) in
  let take k l = List.filteri (fun i _ -> i < k) l in
  let chosen = take n pos @ take n neg in
  let x = Array.of_list (List.map fst chosen) in
  let y = Array.of_list (List.map snd chosen) in
  (* feature index groups (0-based): repo level = {2,4,7,10}, dataset level =
     {5,8,11} *)
  let mask drop row = Array.mapi (fun i v -> if List.mem i drop then 0.0 else v) row in
  let cv drop =
    let x' = Array.map (mask drop) x in
    (Namer_ml.Pipeline.cross_validate ~repeats:15 ~prng ~algo:Namer_ml.Pipeline.Svm x' y)
      .Namer_ml.Pipeline.accuracy
  in
  Tablefmt.print
    ~caption:
      (Printf.sprintf
         "Feature-level ablation (%s): SVM cross-validation accuracy"
         (Corpus.lang_name r.lang))
    ~header:[ "feature set"; "CV accuracy" ]
    [
      [ "all 17 features"; Tablefmt.pct (cv []) ];
      [ "w/o dataset-level copies"; Tablefmt.pct (cv [ 5; 8; 11 ]) ];
      [ "w/o repo-level copies"; Tablefmt.pct (cv [ 2; 4; 7; 10 ]) ];
      [ "file-level only"; Tablefmt.pct (cv [ 2; 4; 5; 7; 8; 10; 11 ]) ];
    ];
  print_newline ()

(** Mining-threshold sweep (min support × satisfaction ratio): pattern
    yield and raw-violation precision, on a small Python corpus. *)
let print_mining_sweep () =
  let corpus =
    Corpus.generate
      {
        (corpus_config ~scale:Quick Corpus.Python) with
        Corpus.n_repos = 25;
        files_per_repo = (8, 12);
      }
  in
  let rows =
    List.concat_map
      (fun min_support ->
        List.map
          (fun ratio ->
            let cfg =
              {
                namer_config with
                Namer.use_classifier = false;
                miner =
                  {
                    Miner.default_config with
                    min_support;
                    min_satisfaction_ratio = ratio;
                  };
              }
            in
            let t = Namer.build cfg corpus in
            let o =
              Namer.grade_reports t
                (Namer.sample_violations t ~n:400 ~seed:sample_seed)
            in
            [
              string_of_int min_support;
              Printf.sprintf "%.2f" ratio;
              string_of_int (Pattern.Store.size t.Namer.store);
              string_of_int (Array.length t.Namer.violations);
              Tablefmt.pct (Namer.precision o);
            ])
          [ 0.7; 0.8; 0.9 ])
      [ 10; 25; 50 ]
  in
  Tablefmt.print
    ~caption:
      "Mining-threshold sweep (Python, small corpus): raw-violation precision \
       (the paper uses support ≥ 100-at-GitHub-scale and ratio 0.8)"
    ~header:[ "min support"; "sat ratio"; "patterns"; "violations"; "w/o C precision" ]
    rows;
  print_newline ()
