(* Bechamel micro-benchmarks (§5.1 "Speed of Namer"): per-file analysis
   time (the paper reports 39 ms/file Python, 20 ms/file Java on a 2.60 GHz
   Xeon), pattern matching, FP-tree insertion and classifier inference. *)

open Bechamel
module Corpus = Namer_corpus.Corpus
module Pattern = Namer_pattern.Pattern
module Namer = Namer_core.Namer

let representative_python =
  let c =
    Corpus.generate
      { (Corpus.default_config Corpus.Python) with Corpus.n_repos = 1; files_per_repo = (5, 5) }
  in
  (List.hd c.Corpus.files).Corpus.source

let representative_java =
  let c =
    Corpus.generate
      { (Corpus.default_config Corpus.Java) with Corpus.n_repos = 1; files_per_repo = (5, 5) }
  in
  (List.hd c.Corpus.files).Corpus.source

(* A small built system for matching/inference benchmarks. *)
let small_system =
  lazy
    (let corpus =
       Corpus.generate
         { (Corpus.default_config Corpus.Python) with Corpus.n_repos = 15; files_per_repo = (6, 10) }
     in
     let t =
       Namer.build
         {
           Namer.default_config with
           miner =
             { Namer_mining.Miner.default_config with min_support = 10; min_path_freq = 5 };
         }
         corpus
     in
     let digest =
       let parsed =
         Namer_core.Frontend.parse_file Corpus.Python ~use_analysis:true
           representative_python
       in
       let s = List.nth parsed.Namer_core.Frontend.stmts 5 in
       let origins =
         parsed.Namer_core.Frontend.origins ~cls:s.Namer_core.Frontend.cls
           ~fn:s.Namer_core.Frontend.fn
       in
       Pattern.Stmt_paths.of_tree
         (Namer_namepath.Astplus.transform ~origins s.Namer_core.Frontend.tree)
     in
     (t, digest))

let tests () =
  let parse_py =
    Test.make ~name:"python: parse file"
      (Staged.stage (fun () ->
           ignore (Namer_pylang.Py_parser.parse_module representative_python)))
  in
  let analyze_py =
    Test.make ~name:"python: parse+analyze file (k=5)"
      (Staged.stage (fun () ->
           ignore
             (Namer_core.Frontend.parse_file Corpus.Python ~use_analysis:true
                representative_python)))
  in
  let parse_java =
    Test.make ~name:"java: parse file"
      (Staged.stage (fun () ->
           ignore (Namer_javalang.Java_parser.parse_compilation_unit representative_java)))
  in
  let analyze_java =
    Test.make ~name:"java: parse+analyze file"
      (Staged.stage (fun () ->
           ignore
             (Namer_core.Frontend.parse_file Corpus.Java ~use_analysis:true
                representative_java)))
  in
  let t, digest = Lazy.force small_system in
  let match_stmt =
    Test.make ~name:"pattern matching: one statement vs store"
      (Staged.stage (fun () ->
           Pattern.Store.candidates t.Namer.store digest
           |> List.iter (fun p -> ignore (Pattern.check p digest))))
  in
  let fptree_insert =
    let items = List.init 8 (fun i -> i) in
    let tree = Namer_mining.Fptree.create () in
    Test.make ~name:"fp-tree: one insertion"
      (Staged.stage (fun () -> Namer_mining.Fptree.insert tree items))
  in
  let classify =
    match (t.Namer.classifier, t.Namer.violations) with
    | Some c, vs when Array.length vs > 0 ->
        let features = vs.(0).Namer.v_features in
        Test.make ~name:"classifier: one inference"
          (Staged.stage (fun () -> ignore (Namer_ml.Pipeline.predict c features)))
    | _ -> Test.make ~name:"classifier: one inference" (Staged.stage (fun () -> ()))
  in
  Test.make_grouped ~name:"namer"
    [ parse_py; analyze_py; parse_java; analyze_java; match_stmt; fptree_insert; classify ]

(* ---------------- interning micro-benchmarks ---------------- *)

(* The hot-path primitives behind the hash-consed pipeline, plus the
   canonical-text-vs-interned-id comparison they replace.  Estimates feed
   the "micro" section of BENCH_pipeline.json (schema 3). *)
let micro_tests () =
  let module Interner = Namer_util.Interner in
  let module Namepath = Namer_namepath.Namepath in
  let words = Array.init 256 (fun i -> Printf.sprintf "sub_token_%d" i) in
  let populated =
    let i = Interner.create () in
    Array.iter (fun w -> ignore (Interner.intern i w)) words;
    i
  in
  let intern_hit =
    Test.make ~name:"intern: hit"
      (Staged.stage (fun () -> ignore (Interner.intern populated words.(57))))
  in
  let lookup_hit =
    Test.make ~name:"intern: lookup"
      (Staged.stage (fun () -> ignore (Interner.lookup populated words.(191))))
  in
  let remap_merge =
    Test.make ~name:"intern: remap-merge 256 ids"
      (Staged.stage (fun () ->
           let into = Interner.create () in
           ignore (Interner.remap ~into populated)))
  in
  (* what one hot-loop key operation used to cost (render the canonical
     text, hash it) vs what it costs now (hash a machine int) *)
  let path =
    Namepath.of_string
      "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase 0 True"
  in
  let interned = Namepath.Interned.of_path ~table:(Namepath.Interned.create_table ()) path in
  let key_text =
    Test.make ~name:"key: canonical text render+hash"
      (Staged.stage (fun () -> ignore (Hashtbl.hash (Namepath.to_string path))))
  in
  let key_id =
    Test.make ~name:"key: interned id hash"
      (Staged.stage (fun () -> ignore (Hashtbl.hash interned.Namepath.Interned.pid)))
  in
  Test.make_grouped ~name:"intern"
    [ intern_hit; lookup_hit; remap_merge; key_text; key_id ]

let estimates ?(quota = 1.0) tests =
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:(Some 10) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | _ -> ())
    results;
  List.sort compare !rows

(* (benchmark, ns/run) for the interning primitives — exported for the
   telemetry bench's BENCH_pipeline.json "micro" section. *)
let micro_estimates () = estimates ~quota:0.25 (micro_tests ())

let pretty_ns ns =
  if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.2f µs" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let run () =
  print_endline "\n### Micro-benchmarks (§5.1 speed; Bechamel, monotonic clock) ###\n";
  let rows = estimates (tests ()) @ estimates ~quota:0.25 (micro_tests ()) in
  Namer_util.Tablefmt.print ~caption:"time per run (OLS estimate)"
    ~header:[ "benchmark"; "time/run" ]
    (List.map (fun (name, ns) -> [ name; pretty_ns ns ]) rows);
  print_endline
    "  paper's reference: 39 ms/file Python, 20 ms/file Java on a 28-core Xeon\n\
     (absolute values are machine-dependent; see EXPERIMENTS.md)"

(* k-sensitivity sweep: analysis time and precise-origin yield as a function
   of the call-string depth (the DESIGN.md ablation). *)
let k_sweep () =
  print_endline "\n### Analysis ablation: k-call-site depth sweep ###\n";
  (* a file with real call chains, so context strings actually grow *)
  let chain_src =
    let b = Buffer.create 1024 in
    Buffer.add_string b "def make():\n    return Widget()\n";
    for i = 0 to 5 do
      Buffer.add_string b
        (Printf.sprintf "def layer%d(x):\n    w = %s\n    return w\n" i
           (if i = 0 then "make()" else Printf.sprintf "layer%d(x)" (i - 1)))
    done;
    Buffer.add_string b "def top():\n    a = layer5(1)\n    b = layer5(2)\n    return a\n";
    Buffer.contents b
  in
  let m = Namer_pylang.Py_parser.parse_module chain_src in
  let rows =
    List.map
      (fun k ->
        let t0 = Unix.gettimeofday () in
        let reps = 50 in
        for _ = 1 to reps do
          ignore (Namer_analysis.Py_analysis.analyze ~k m)
        done;
        let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
        let a = Namer_analysis.Py_analysis.analyze ~k m in
        [
          string_of_int k;
          string_of_int (Namer_analysis.Py_analysis.n_instances a);
          Printf.sprintf "%.2f ms" (1000.0 *. dt);
        ])
      [ 0; 1; 2; 5; 8 ]
  in
  Namer_util.Tablefmt.print
    ~caption:"per-file Python analysis vs context depth k (paper fixes k = 5)"
    ~header:[ "k"; "fn instances"; "time/file" ]
    rows
