(* Load generator for the serve daemon.

   Drives N concurrent connections at a running [namer serve], measures
   requests/sec and latency percentiles, verifies that every ok response
   is identical (modulo cache hit/miss counters), and can fire one model
   reload mid-traffic to exercise hot-swap under load.  The serve-smoke
   CI job drives 50 concurrent requests through this and diffs the dumped
   CLI-format output against a real [namer scan --model] run; the bench
   harness embeds the same generator in-process for BENCH_pipeline.json.

   Usage:
     dune exec bench/loadtest.exe -- --socket /tmp/namer.sock \
       --dir corpus/ --clients 8 --requests 50 \
       --reload-at 20 --expect-identical --dump-text sample.txt *)

module J = Namer_util.Json
module Client = Namer_serve.Client

let () =
  let socket = ref "" in
  let host = ref "127.0.0.1" in
  let port = ref 0 in
  let dir = ref "" in
  let payload = ref "" in
  let clients = ref 8 in
  let requests = ref 50 in
  let reload_at = ref 0 in
  let reload_model = ref "" in
  let out = ref "" in
  let dump_text = ref "" in
  let dump_json = ref "" in
  let expect_identical = ref false in
  let shutdown = ref false in
  let max_reports = ref 0 in
  let args =
    [
      ("--socket", Arg.Set_string socket, "PATH daemon Unix socket");
      ("--host", Arg.Set_string host, "HOST daemon TCP host (default 127.0.0.1)");
      ("--port", Arg.Set_int port, "PORT daemon TCP port");
      ("--dir", Arg.Set_string dir, "DIR scan this server-side directory");
      ("--payload", Arg.Set_string payload, "JSON raw request payload (overrides --dir)");
      ("--clients", Arg.Set_int clients, "N concurrent connections (default 8)");
      ("--requests", Arg.Set_int requests, "N total requests (default 50)");
      ( "--max-reports",
        Arg.Set_int max_reports,
        "N cap reports per response (default: all)" );
      ( "--reload-at",
        Arg.Set_int reload_at,
        "N send one reload after N completed requests (0 = never)" );
      ( "--reload-model",
        Arg.Set_string reload_model,
        "FILE snapshot the mid-traffic reload switches to (default: current)" );
      ("--out", Arg.Set_string out, "FILE write the result object as JSON");
      ( "--dump-text",
        Arg.Set_string dump_text,
        "FILE write one response rendered as CLI text reports" );
      ( "--dump-json",
        Arg.Set_string dump_json,
        "FILE write one response rendered as CLI scan --json output" );
      ( "--expect-identical",
        Arg.Set expect_identical,
        " exit 1 unless all responses were identical and none failed" );
      ("--shutdown", Arg.Set shutdown, " send a shutdown request when done");
    ]
  in
  Arg.parse args
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "loadtest: drive concurrent scan requests at a namer serve daemon";
  let target =
    if !socket <> "" then Client.Unix_path !socket
    else if !port > 0 then Client.Tcp (!host, !port)
    else (
      prerr_endline "loadtest: need --socket or --port";
      exit 2)
  in
  let scan_payload =
    if !payload <> "" then
      match J.parse !payload with
      | Ok j -> j
      | Error e ->
          Printf.eprintf "loadtest: --payload is not valid JSON: %s\n" e;
          exit 2
    else if !dir <> "" then
      J.Obj
        ([ ("op", J.String "scan"); ("dir", J.String !dir) ]
        @ if !max_reports > 0 then [ ("max_reports", J.Int !max_reports) ] else [])
    else (
      prerr_endline "loadtest: need --dir or --payload";
      exit 2)
  in
  let spec =
    {
      (Client.Load.default_spec ~payload:scan_payload) with
      Client.Load.l_clients = !clients;
      l_requests = !requests;
      l_reload_at = (if !reload_at > 0 then Some !reload_at else None);
      l_reload_payload =
        J.Obj
          (( "op", J.String "reload" )
          ::
          (if !reload_model <> "" then [ ("model", J.String !reload_model) ] else []));
    }
  in
  let result = Client.Load.run target spec in
  if !shutdown then begin
    let c = Client.connect ~retry_for:5.0 target in
    ignore (Client.request c (J.Obj [ ("op", J.String "shutdown") ]));
    Client.close c
  end;
  let result_json =
    match Client.Load.json_of_result result with
    | J.Obj fields -> J.Obj (("clients", J.Int !clients) :: fields)
    | j -> j
  in
  print_endline (J.to_string ~indent:2 result_json);
  if !out <> "" then begin
    let oc = open_out !out in
    output_string oc (J.to_string ~indent:2 result_json);
    output_char oc '\n';
    close_out oc
  end;
  (match (!dump_text, result.Client.Load.lr_sample) with
  | "", _ | _, None -> ()
  | path, Some raw -> (
      match Result.bind (J.parse raw |> Result.map_error (fun e -> e)) Client.cli_text_of_scan with
      | Ok text ->
          let oc = open_out path in
          output_string oc text;
          close_out oc
      | Error e ->
          Printf.eprintf "loadtest: cannot render sample as text: %s\n" e;
          exit 1));
  (match (!dump_json, result.Client.Load.lr_sample) with
  | "", _ | _, None -> ()
  | path, Some raw -> (
      match Result.bind (J.parse raw) Client.cli_json_of_scan with
      | Ok j ->
          let oc = open_out path in
          (* print_endline-equivalent: the CLI emits indent-2 JSON + \n *)
          output_string oc (J.to_string ~indent:2 j);
          output_char oc '\n';
          close_out oc
      | Error e ->
          Printf.eprintf "loadtest: cannot render sample as CLI JSON: %s\n" e;
          exit 1));
  if
    !expect_identical
    && not
         (result.Client.Load.lr_responses_identical
         && result.Client.Load.lr_failed = 0
         && result.Client.Load.lr_ok > 0
         && result.Client.Load.lr_reload_ok)
  then begin
    prerr_endline "loadtest: FAILED — responses diverged, failed or reload broke";
    exit 1
  end
