(** Confusing word pairs ⟨mistaken, correct⟩ mined from commit histories
    (§3.2).

    For every commit in the corpus, the ASTs of the file before and after the
    change are matched with {!Namer_tree.Treediff}; each pair of matched
    terminals whose subtoken sequences differ in exactly one position yields
    one pair.  The paper extracted 950K pairs for Java and 150K for Python —
    examples: ⟨name, key⟩, ⟨value, key⟩, ⟨x, y⟩, ⟨min, max⟩, ⟨True, Equal⟩. *)

type t = {
  counts : (string * string) Namer_util.Counter.t;  (** original-case pairs *)
  folded : (string * string) Namer_util.Counter.t;  (** lowercased, for {!mem} *)
  correct_words : (string, unit) Hashtbl.t;
}

(* Pair membership is case-insensitive: renames like outputWriter →
   stringWriter yield the pair ⟨output, string⟩, which must also back a
   suggestion rendered from a TypeRef's capitalized subtoken (String). *)
let norm (a, b) = (String.lowercase_ascii a, String.lowercase_ascii b)

let create () =
  {
    counts = Namer_util.Counter.create ();
    folded = Namer_util.Counter.create ();
    correct_words = Hashtbl.create 256;
  }

(** Record the pairs extracted from one commit's (before, after) trees. *)
let add_commit t ~before ~after =
  Namer_telemetry.Telemetry.count "pairs.commits_diffed";
  Namer_tree.Treediff.confusing_subtoken_pairs before after
  |> List.iter (fun ((w1, w2) as pair) ->
         if w1 <> w2 then begin
           Namer_telemetry.Telemetry.count "pairs.sightings";
           Namer_util.Counter.add t.counts pair;
           Namer_util.Counter.add t.folded (norm pair);
           Hashtbl.replace t.correct_words w2 ()
         end)

let add_pair ?(count = 1) t ((w1, w2) as pair) =
  if w1 <> w2 then begin
    Namer_util.Counter.add ~by:count t.counts pair;
    Namer_util.Counter.add ~by:count t.folded (norm pair);
    Hashtbl.replace t.correct_words w2 ()
  end

(** Whether ⟨w1, w2⟩ was mined (in this orientation, case-insensitively)
    — feature 17. *)
let mem t pair = Namer_util.Counter.count t.folded (norm pair) > 0

(** Whether [w] ever appears as the *correct* side of a pair; such words are
    eligible deduction ends for confusing-word patterns. *)
let is_correct_word t w = Hashtbl.mem t.correct_words w

(** [merge ~into t] folds the pair tallies and correct-word set of [t] into
    [into] — the monoid merge that lets commit history be diffed shard by
    shard on separate domains.  Counter merges are commutative, so the
    result is independent of the shard plan. *)
let merge ~into t =
  Namer_util.Counter.merge ~into:into.counts t.counts;
  Namer_util.Counter.merge ~into:into.folded t.folded;
  Hashtbl.iter (fun w () -> Hashtbl.replace into.correct_words w ()) t.correct_words

let total_pairs t = Namer_util.Counter.distinct t.counts
let top n t = Namer_util.Counter.top n t.counts

(** All pair tallies sorted by pair — the deterministic serialization order
    for model snapshots.  [create] plus [add_pair ~count] over the bindings
    rebuilds an equal table (folded tallies and correct words are derived
    from the counts, exactly as {!prune} rebuilds them). *)
let bindings t =
  Namer_util.Counter.fold (fun pair c acc -> (pair, c) :: acc) t.counts []
  |> List.sort compare

(** Keep only pairs seen at least [min_count] times (pruning one-off
    renames that do not indicate systematic confusion). *)
let prune t ~min_count =
  let kept = create () in
  Namer_util.Counter.iter
    (fun pair c -> if c >= min_count then add_pair ~count:c kept pair)
    t.counts;
  kept
