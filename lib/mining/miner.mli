(** Mining name patterns from Big Code — Algorithms 1 and 2 of §3.3, with
    the regularizations of §5.1 (path-frequency filter, statement path
    limit, condition-size limit, support and satisfaction-ratio pruning). *)

module Namepath = Namer_namepath.Namepath
module Pattern = Namer_pattern.Pattern

type config = {
  min_path_freq : int;  (** paper: 10 — Algorithm 1 line-5 filter *)
  max_stmt_paths : int;  (** paper: 10 *)
  max_condition_paths : int;  (** paper: 10 *)
  max_subset_size : int;  (** bound on enumerated condition subsets *)
  min_support : int;  (** paper: 100 (Python) / 500 (Java) at GitHub scale *)
  min_satisfaction_ratio : float;  (** paper: 0.8 *)
}

val default_config : config

(** Per-pattern occurrence statistics over the mining dataset (the
    "entire dataset" level of classifier features 6/9/12). *)
type pattern_stats = { mutable matches : int; mutable sats : int; mutable viols : int }

type result = {
  store : Pattern.Store.t;  (** patterns surviving [pruneUncommon] *)
  dataset_stats : (int, pattern_stats) Hashtbl.t;  (** pattern id → stats *)
  n_candidates : int;  (** patterns generated before pruning *)
}

(** All (condition, deduction) splits of one statement's paths
    (Algorithm 1, line 6).  Exposed for tests. *)
val split_paths :
  kind:[ `Confusing | `Consistency | `Ordering of (string * string) list ] ->
  pairs:Confusing_pairs.t ->
  Namepath.t list ->
  (Namepath.t list * Namepath.t list) list

(** Condition sets generated from the visited paths (Algorithm 2, line 7):
    the full set, the empty set, and every subset of bounded size.
    Exposed for tests. *)
val combinations : max_subset_size:int -> 'a list -> 'a list list

(** [mine ?pool ~config ~kind ~pairs stmts] runs the full mining pipeline
    over the digests of every statement in the corpus.  With [pool], the
    corpus-wide counting passes (path frequencies, [pruneUncommon]
    statistics) run sharded across its domains; the mined store is
    identical to the sequential run because both passes accumulate
    commutative sums. *)
val mine :
  ?pool:Namer_parallel.Pool.t ->
  config:config ->
  kind:[ `Confusing | `Consistency | `Ordering of (string * string) list ] ->
  pairs:Confusing_pairs.t ->
  Pattern.Stmt_paths.t list ->
  result
