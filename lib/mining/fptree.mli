(** Frequent-pattern trees (Han, Pei & Yin, SIGMOD 2000) specialized for
    name-pattern mining: items are interned name-path ids; each inserted
    list is one [sort(condition) @ sort(deduction)] split, with the last
    node flagged as a pattern-assembly point (Figure 3(a)). *)

type t

val create : unit -> t

(** Insert one ordered item-id list; empty lists are ignored. *)
val insert : t -> int list -> unit

(** Number of nodes (excluding the root). *)
val size : t -> int

(** Visit every flagged node with the item ids from the root and the node's
    occurrence count — the traversal skeleton of Algorithm 2. *)
val fold_last_nodes :
  t -> f:('a -> path_items:int list -> support:int -> 'a) -> 'a -> 'a
