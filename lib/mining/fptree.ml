(** Frequent-pattern trees (Han, Pei & Yin, SIGMOD 2000), specialized for
    name-pattern mining (§3.3).

    Items are interned name-path ids ({!Namepath.Interned} pids) — the tree
    itself never sees a string.  Each [insert]ed list is the concatenation
    [sort(condition) @ sort(deduction)] of one split of a statement's paths
    (Algorithm 1, line 7); the node reached by the last item gets its
    [is_last] flag set, marking where Algorithm 2 assembles a pattern, and
    every node on the way counts one occurrence.  The paper's Figure 3(a)
    corresponds exactly to this structure — see the unit test reproducing
    it. *)

type node = {
  item : int;  (** interned path id; -1 at the root *)
  mutable count : int;
  mutable is_last : bool;
  children : (int, node) Hashtbl.t;
}

type t = { root : node }

let create () =
  { root = { item = -1; count = 0; is_last = false; children = Hashtbl.create 64 } }

(** [insert t items] adds one ordered item-id list. *)
let insert t (items : int list) =
  match items with
  | [] -> ()
  | _ ->
      let node = ref t.root in
      List.iter
        (fun id ->
          let child =
            match Hashtbl.find_opt !node.children id with
            | Some c -> c
            | None ->
                let c =
                  { item = id; count = 0; is_last = false; children = Hashtbl.create 4 }
                in
                Hashtbl.replace !node.children id c;
                c
          in
          child.count <- child.count + 1;
          node := child)
        items;
      !node.is_last <- true

let rec node_count n =
  Hashtbl.fold (fun _ c acc -> acc + node_count c) n.children 1

let size t = node_count t.root - 1

(** [fold_last_nodes t ~f acc] visits every [is_last] node, passing the item
    ids on the path from the root (in insertion order) and the node's
    occurrence count — the support of the would-be pattern.  This is the
    traversal skeleton of Algorithm 2 ([genPatterns]). *)
let fold_last_nodes t ~f acc =
  let rec go rev_path n acc =
    let rev_path = if n.item >= 0 then n.item :: rev_path else rev_path in
    let acc =
      if n.is_last then f acc ~path_items:(List.rev rev_path) ~support:n.count
      else acc
    in
    Hashtbl.fold (fun _ child acc -> go rev_path child acc) n.children acc
  in
  go [] t.root acc
