(** Mining name patterns from Big Code — Algorithms 1 and 2 (§3.3).

    [minePatterns] grows an FP-tree from the name paths of every statement
    in the corpus and then traverses it to generate candidate patterns,
    which are pruned by their satisfaction ratio over the same corpus
    ([pruneUncommon]).  The regularizations of §5.1 are all implemented and
    configurable:

    - at most [max_stmt_paths] name paths per statement (paper: 10, applied
      at extraction time);
    - only *frequent* name paths (> [min_path_freq] occurrences, paper: 10)
      participate in patterns — this is Algorithm 1's line-5 filter and
      removes over 99 % of path shapes, which are file-specific identifiers;
    - conditions use at most [max_condition_paths] paths (paper: 10);
    - [combinations] (Algorithm 2, line 7) enumerates the full condition set
      plus all subsets up to [max_subset_size], so patterns generalize
      beyond exact statement shapes without an exponential blow-up;
    - kept patterns need match support ≥ [min_support] (paper: 100 Python /
      500 Java at GitHub scale) and satisfaction ratio ≥
      [min_satisfaction_ratio] (paper: 0.8).

    The whole pipeline runs in the hash-consed {!Namepath.Interned} id
    space: path frequencies are counted per pid, splits compare end ids,
    the FP-tree holds pid lists, and candidate dedup keys are pid lists —
    no canonical text is rendered until a surviving pattern reaches the
    final store. *)

module Namepath = Namer_namepath.Namepath
module I = Namepath.Interned
module Pattern = Namer_pattern.Pattern
module Telemetry = Namer_telemetry.Telemetry

type config = {
  min_path_freq : int;
  max_stmt_paths : int;
  max_condition_paths : int;
  max_subset_size : int;
  min_support : int;
  min_satisfaction_ratio : float;
}

let default_config =
  {
    min_path_freq = 10;
    max_stmt_paths = 10;
    max_condition_paths = 10;
    max_subset_size = 2;
    min_support = 25;
    min_satisfaction_ratio = 0.8;
  }

(** Per-pattern occurrence statistics over the mining dataset — these become
    the "entire dataset" level features (6, 9, 12) of the classifier. *)
type pattern_stats = { mutable matches : int; mutable sats : int; mutable viols : int }

type result = {
  store : Pattern.Store.t;
  dataset_stats : (int, pattern_stats) Hashtbl.t;  (** pattern id → stats *)
  n_candidates : int;  (** patterns generated before pruning *)
}

(* Ends that cannot take part in a consistency deduction: literal
   abstractions and operator tokens are not names. *)
let is_name_end e =
  String.length e > 0
  && (match e.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && not (List.mem e [ "NUM"; "STR"; "BOOL"; "NONE" ])

(* ------------------------------------------------------------------ *)
(* splitPaths (Algorithm 1, line 6)                                    *)
(* ------------------------------------------------------------------ *)

(* Per-mine-run split context: the per-end predicates of each split kind,
   precomputed once over the end-id space instead of re-derived from
   strings inside the statement loop. *)
type split_ctx =
  | Sc_consistency of bool array  (* end id → is a name end *)
  | Sc_confusing of bool array  (* end id → correct word of a mined pair *)
  | Sc_ordering of (int * int) list * (int, bool) Hashtbl.t
      (* vocab as end-id pairs; prefix id → is-call-argument memo *)

let make_split_ctx ~kind ~(pairs : Confusing_pairs.t) () =
  let n = I.n_ends () in
  match kind with
  | `Consistency -> Sc_consistency (Array.init n (fun e -> is_name_end (I.end_name e)))
  | `Confusing ->
      Sc_confusing
        (Array.init n (fun e -> Confusing_pairs.is_correct_word pairs (I.end_name e)))
  | `Ordering vocab ->
      (* a vocab word absent from the end-id space occurs in no statement,
         so dropping its pairs loses nothing *)
      let ids =
        List.filter_map
          (fun (a, b) ->
            match (I.lookup_end a, I.lookup_end b) with
            | Some x, Some y -> Some (x, y)
            | _ -> None)
          vocab
      in
      Sc_ordering (ids, Hashtbl.create 256)

(* Argument-swap patterns only make sense at call sites: parameter
   declaration order, field order etc. are free. *)
let is_call_argument_np (np : Namepath.t) =
  let rec scan = function
    | { Namepath.value = "Call"; index } :: _ when index > 0 -> true
    | _ :: rest -> scan rest
    | [] -> false
  in
  scan np.Namepath.prefix

(** All (condition, deduction) splits of one statement's interned paths.
    The deduction is returned as pids — symbolic pids for consistency
    (the symbolized pair), concrete pids otherwise. *)
let split_interned ctx (ipaths : I.t list) : (I.t list * int list) list =
  match ctx with
  | Sc_ordering (vocab_ids, memo) ->
      (* ordered word pairs appearing at two distinct *call-argument*
         prefixes, in canonical order, become a two-path concrete
         deduction *)
      let is_call_argument (it : I.t) =
        match Hashtbl.find_opt memo it.I.prefix with
        | Some b -> b
        | None ->
            let b = is_call_argument_np it.I.np in
            Hashtbl.replace memo it.I.prefix b;
            b
      in
      let arr = Array.of_list ipaths in
      let n = Array.length arr in
      let out = ref [] in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j && is_call_argument arr.(i) && is_call_argument arr.(j) then begin
            let e1 = arr.(i).I.end_ and e2 = arr.(j).I.end_ in
            if
              e1 >= 0 && e2 >= 0
              && List.exists (fun (a, b) -> a = e1 && b = e2) vocab_ids
            then begin
              let cond = List.filter (fun a -> a != arr.(i) && a != arr.(j)) ipaths in
              out := (cond, [ arr.(i).I.pid; arr.(j).I.pid ]) :: !out
            end
          end
        done
      done;
      List.rev !out
  | Sc_confusing correct ->
      List.filter_map
        (fun (d : I.t) ->
          if d.I.end_ >= 0 && correct.(d.I.end_) then
            Some (List.filter (fun a -> a != d) ipaths, [ d.I.pid ])
          else None)
        ipaths
  | Sc_consistency name_end ->
      let arr = Array.of_list ipaths in
      let n = Array.length arr in
      let out = ref [] in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let e1 = arr.(i).I.end_ and e2 = arr.(j).I.end_ in
          (* case-insensitive, matching the satisfaction check *)
          if e1 >= 0 && e2 >= 0 && I.lower_end e1 = I.lower_end e2 && name_end.(e1)
          then begin
            let cond = List.filter (fun a -> a != arr.(i) && a != arr.(j)) ipaths in
            out := (cond, [ arr.(i).I.sym; arr.(j).I.sym ]) :: !out
          end
        done
      done;
      List.rev !out

(** String-level view of {!split_interned} — the historical interface,
    kept for tests: interns [paths] against the global table on the fly. *)
let split_paths ~kind ~(pairs : Confusing_pairs.t) (paths : Namepath.t list) :
    (Namepath.t list * Namepath.t list) list =
  let ipaths = I.of_paths paths in
  let ctx = make_split_ctx ~kind ~pairs () in
  split_interned ctx ipaths
  |> List.map (fun (cond, ded_pids) ->
         ( List.map (fun (it : I.t) -> it.I.np) cond,
           List.map I.path_of_pid ded_pids ))

(* ------------------------------------------------------------------ *)
(* combinations (Algorithm 2, line 7)                                  *)
(* ------------------------------------------------------------------ *)

(** The condition sets generated from the visited paths: the full set plus
    every subset of size ≤ [max_subset_size], including the empty condition
    (a pattern that fires wherever its deduction prefix appears — kept only
    if [pruneUncommon] finds it satisfied almost everywhere). *)
let combinations ~max_subset_size (conds : 'a list) : 'a list list =
  let n = List.length conds in
  let full = if n > 0 then [ conds ] else [ [] ] in
  let rec subsets k xs =
    if k = 0 then [ [] ]
    else
      match xs with
      | [] -> [ [] ]
      | x :: rest ->
          let with_x = List.map (fun s -> x :: s) (subsets (k - 1) rest) in
          with_x @ subsets k rest
  in
  let small =
    subsets (min max_subset_size n) conds
    |> List.filter (fun s -> List.length s < n)
    |> List.sort_uniq compare
  in
  full @ List.filter (fun s -> s <> conds) small

(* ------------------------------------------------------------------ *)
(* minePatterns (Algorithm 1)                                          *)
(* ------------------------------------------------------------------ *)

(* Per-shard pattern statistics merge: plain integer sums, so the merged
   table is independent of the shard plan. *)
module Stats_acc = struct
  type t = (int, pattern_stats) Hashtbl.t

  let empty () : t = Hashtbl.create (1 lsl 10)

  let stat (t : t) id =
    match Hashtbl.find_opt t id with
    | Some s -> s
    | None ->
        let s = { matches = 0; sats = 0; viols = 0 } in
        Hashtbl.replace t id s;
        s

  let merge ~into (t : t) =
    Hashtbl.iter
      (fun id (s : pattern_stats) ->
        let d = stat into id in
        d.matches <- d.matches + s.matches;
        d.sats <- d.sats + s.sats;
        d.viols <- d.viols + s.viols)
      t
end

module Freq_acc = struct
  type t = int Namer_util.Counter.t

  let empty () : t = Namer_util.Counter.create ~size:(1 lsl 16) ()
  let merge ~into t = Namer_util.Counter.merge ~into t
end

(** [mine ?pool ~config ~kind ~pairs stmts] runs the full pipeline:
    frequency filter → FP-tree growth → pattern generation → pruning.
    [stmts] are the digests of every statement in the mining corpus.
    With [pool], the two corpus-wide counting passes (path frequencies and
    [pruneUncommon] statistics) run sharded across its domains; both
    accumulate commutative sums, so the mined store is identical to the
    sequential run.  FP-tree growth stays sequential: the tree's node order
    (and hence pattern-id assignment downstream) depends on insertion
    order, which sharding would perturb. *)
let mine ?pool ~(config : config) ~kind ~(pairs : Confusing_pairs.t)
    (stmts : Pattern.Stmt_paths.t list) : result =
  let shards =
    Namer_parallel.Shard.oversubscribe
      ~jobs:(match pool with Some p -> Namer_parallel.Pool.size p | None -> 1)
  in
  let kind_label =
    match kind with
    | `Consistency -> "consistency"
    | `Confusing -> "confusing"
    | `Ordering _ -> "ordering"
  in
  Telemetry.with_span ~args:[ ("kind", kind_label) ] ("mine:" ^ kind_label)
  @@ fun () ->
  (* Line 5 regularization: global path frequencies — one count per pid
     (concrete form) plus one per symbolic pid, the form consistency
     deductions are checked in. *)
  let freq =
    Telemetry.with_span "mine:path-freq" @@ fun () ->
    Namer_parallel.Accumulator.sharded_reduce
      (module Freq_acc)
      ?pool ~shards
      (fun shard ->
        let freq = Freq_acc.empty () in
        List.iter
          (fun (s : Pattern.Stmt_paths.t) ->
            Array.iter
              (fun (it : I.t) ->
                Namer_util.Counter.add freq it.I.pid;
                Namer_util.Counter.add freq it.I.sym)
              s.Pattern.Stmt_paths.ipaths)
          shard;
        freq)
      stmts
  in
  let frequent_pid pid = Namer_util.Counter.count freq pid > config.min_path_freq in
  (* Grow the FP-tree (lines 4–7).  The line-5 frequency filter applies to
     condition paths in their concrete form; deduction paths are checked in
     the form they take inside the pattern (symbolic for consistency
     deductions, whose *prefix* must be a common shape even when the
     concrete name at its end is file-specific). *)
  let ctx = make_split_ctx ~kind ~pairs () in
  let tree =
    Telemetry.with_span "mine:fptree-grow" @@ fun () ->
    let tree = Fptree.create () in
    List.iter
      (fun (s : Pattern.Stmt_paths.t) ->
        let ipaths =
          if Array.length s.Pattern.Stmt_paths.ipaths <= config.max_stmt_paths then
            Array.to_list s.Pattern.Stmt_paths.ipaths
          else
            List.init config.max_stmt_paths (fun i -> s.Pattern.Stmt_paths.ipaths.(i))
        in
        split_interned ctx ipaths
        |> List.iter (fun (cond, ded_pids) ->
               if List.for_all frequent_pid ded_pids then begin
                 let cond =
                   List.filter (fun (it : I.t) -> frequent_pid it.I.pid) cond
                   |> List.sort I.compare_rank
                   |> List.filteri (fun i _ -> i < config.max_condition_paths)
                 in
                 let ded = List.sort I.compare_pids ded_pids in
                 Fptree.insert tree
                   (List.map (fun (it : I.t) -> it.I.pid) cond @ ded)
               end))
      stmts;
    tree
  in
  Telemetry.count ~by:(Fptree.size tree) "mine.fptree_nodes";
  (* genPatterns (line 8 / Algorithm 2).  Candidates are deduplicated by
     their pid lists — deduction arity is fixed per kind, so the item list
     [cond @ ded] is an unambiguous identity, equivalent to the canonical
     text without rendering it. *)
  let n_deduct = match kind with `Confusing -> 1 | `Consistency | `Ordering _ -> 2 in
  let seen : (int list, unit) Hashtbl.t = Hashtbl.create (1 lsl 14) in
  let cand_rev = ref [] in
  Telemetry.with_span "mine:gen-patterns" (fun () ->
      Fptree.fold_last_nodes tree
        ~f:(fun () ~path_items ~support ->
          ignore support;
          let n = List.length path_items in
          if n >= n_deduct then begin
            let rec split_at k xs =
              if k = 0 then ([], xs)
              else
                match xs with
                | [] -> ([], [])
                | x :: rest ->
                    let a, b = split_at (k - 1) rest in
                    (x :: a, b)
            in
            let conds_p, ded_p = split_at (n - n_deduct) path_items in
            let deduction = List.map I.path_of_pid ded_p in
            let kind_v =
              match (kind, deduction) with
              | `Consistency, _ -> Pattern.Consistency
              | `Confusing, [ d ] -> (
                  match d.Namepath.end_node with
                  | Some w -> Pattern.Confusing_word { correct = w }
                  | None -> Pattern.Consistency (* unreachable *))
              | `Ordering _, [ d1; d2 ] -> (
                  match (d1.Namepath.end_node, d2.Namepath.end_node) with
                  | Some first, Some second -> Pattern.Ordering { first; second }
                  | _ -> Pattern.Consistency (* unreachable *))
              | _ -> Pattern.Consistency (* unreachable *)
            in
            combinations ~max_subset_size:config.max_subset_size conds_p
            |> List.iter (fun cond_p ->
                   let key = cond_p @ ded_p in
                   if not (Hashtbl.mem seen key) then begin
                     Hashtbl.replace seen key ();
                     cand_rev :=
                       Pattern.make ~kind:kind_v
                         ~condition:(List.map I.path_of_pid cond_p)
                         ~deduction
                       :: !cand_rev
                   end)
          end)
        ());
  let n_candidates = Hashtbl.length seen in
  (* pruneUncommon (line 9): count matches and satisfactions over the
     corpus, keep patterns with enough support and a high enough
     satisfaction ratio. *)
  Telemetry.with_span "mine:prune" @@ fun () ->
  let candidate_store = Pattern.Store.create () in
  List.iter
    (fun p -> ignore (Pattern.Store.add_nodedup candidate_store p))
    (List.rev !cand_rev);
  (* The store is fully built and read-only from here on, so shards can
     match against it concurrently; each shard tallies into its own table. *)
  let counts =
    Namer_parallel.Accumulator.sharded_reduce
      (module Stats_acc)
      ?pool ~shards
      (fun shard ->
        let counts = Stats_acc.empty () in
        List.iter
          (fun s ->
            Pattern.Store.candidates candidate_store s
            |> List.iter (fun (p : Pattern.t) ->
                   match Pattern.check p s with
                   | Pattern.No_match -> ()
                   | Pattern.Satisfied ->
                       let st = Stats_acc.stat counts p.id in
                       st.matches <- st.matches + 1;
                       st.sats <- st.sats + 1
                   | Pattern.Violated _ ->
                       let st = Stats_acc.stat counts p.id in
                       st.matches <- st.matches + 1;
                       st.viols <- st.viols + 1))
          shard;
        counts)
      stmts
  in
  let store = Pattern.Store.create () in
  let dataset_stats = Hashtbl.create (1 lsl 12) in
  Pattern.Store.iter
    (fun p ->
      match Hashtbl.find_opt counts p.id with
      | Some st
        when st.matches >= config.min_support
             && float_of_int st.sats /. float_of_int st.matches
                >= config.min_satisfaction_ratio ->
          let new_id = Pattern.Store.add store { p with id = -1 } in
          Hashtbl.replace dataset_stats new_id
            { matches = st.matches; sats = st.sats; viols = st.viols }
      | _ -> ())
    candidate_store;
  { store; dataset_stats; n_candidates }
