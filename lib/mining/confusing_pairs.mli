(** Confusing word pairs ⟨mistaken, correct⟩ mined from commit histories
    (§3.2): the vocabulary from which confusing-word pattern deductions are
    drawn, and classifier feature 17. *)

type t

val create : unit -> t

(** Record the subtoken pairs extracted from one commit's (before, after)
    whole-file trees via {!Namer_tree.Treediff}. *)
val add_commit : t -> before:Namer_tree.Tree.t -> after:Namer_tree.Tree.t -> unit

(** Record a pair directly (tests, built-in catalogs).  Identity pairs are
    ignored. *)
val add_pair : ?count:int -> t -> string * string -> unit

(** Whether ⟨w₁, w₂⟩ was mined, in this orientation — feature 17. *)
val mem : t -> string * string -> bool

(** Whether [w] appears as the *correct* side of any pair (and is thus an
    eligible confusing-word deduction end). *)
val is_correct_word : t -> string -> bool

(** [merge ~into t] folds [t]'s tallies and correct-word set into [into]
    (monoid merge for sharded pair mining; commutative). *)
val merge : into:t -> t -> unit

val total_pairs : t -> int

(** The [n] most frequent pairs with their commit counts. *)
val top : int -> t -> ((string * string) * int) list

(** Every pair tally, sorted by pair — the deterministic serialization
    order.  [add_pair ~count] over the bindings rebuilds an equal table. *)
val bindings : t -> ((string * string) * int) list

(** Keep only pairs seen at least [min_count] times. *)
val prune : t -> min_count:int -> t
