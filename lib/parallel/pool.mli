(** A fixed-size pool of OCaml 5 domains with per-worker work-stealing
    deques — the execution engine of the sharded pipeline.

    Each worker owns one deque: it pushes and pops work at the bottom
    (LIFO, cache-friendly) while idle workers steal from the top (FIFO, so
    the oldest — typically largest — shard migrates first).  Submissions
    from outside the pool are distributed round-robin across deques, which
    keeps the initial assignment deterministic; work stealing then
    rebalances dynamically without affecting results, because callers merge
    futures in submission order (see {!Namer_parallel.Shard}).

    The pool is an execution mechanism only: it makes no ordering promises
    about when tasks run.  Determinism is the contract of the *merge*
    performed by the caller, which is why {!map_list} returns results in
    input order regardless of completion order. *)

type t

(** [create ~domains ()] spawns [domains] worker domains (clamped to ≥ 1).
    The creating domain is not a worker; it submits and awaits. *)
val create : domains:int -> unit -> t

(** Number of worker domains. *)
val size : t -> int

type 'a future

(** [submit ?on pool f] enqueues [f] and returns its future.  [on] pins the
    task to worker [on mod size] (used by tests to force stealing);
    otherwise tasks are distributed round-robin. *)
val submit : ?on:int -> t -> (unit -> 'a) -> 'a future

(** [await fut] blocks until the task completes; re-raises the task's
    exception if it failed. *)
val await : 'a future -> 'a

(** [map_list pool f xs] runs [f] on every element concurrently and returns
    the results in input order.  If any task raised, the first (by input
    order) exception is re-raised after all tasks have settled. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** [map_list_results] is {!map_list} with per-task containment: every
    task settles, failures come back as [Error exn] in input order instead
    of aborting the batch.  One poisoned task fails only its future; the
    caller decides whether to retry, skip or re-raise. *)
val map_list_results : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list

(** Total successful steals since creation (fairness telemetry). *)
val steals : t -> int

(** Tasks submitted but not yet taken by a worker — the instantaneous
    backlog depth.  A long-lived pool shared across request handlers
    (the serve daemon) exposes this as its queue-pressure signal. *)
val queued : t -> int

(** Per-worker executed-task counts, index = worker id. *)
val executed : t -> int array

(** Drain remaining work, stop and join all workers.  Idempotent. *)
val shutdown : t -> unit

(** [run ?cap_to_cores ~jobs f] calls [f None] when [jobs <= 1] (sequential
    path) and otherwise [f (Some pool)] with a fresh [jobs]-domain pool that
    is shut down when [f] returns or raises.  [cap_to_cores] (default
    [false]) first clamps [jobs] to [Domain.recommended_domain_count ()]:
    oversubscribing domains beyond cores makes OCaml 5 programs *slower*
    (stop-the-world minor GCs), and results are identical for every job
    count anyway. *)
val run : ?cap_to_cores:bool -> jobs:int -> (t option -> 'a) -> 'a

(** The work-stealing deque itself, exposed for deterministic unit tests. *)
module Deque : sig
  type 'a t

  val create : unit -> 'a t

  (** Owner end: LIFO. *)
  val push_bottom : 'a t -> 'a -> unit

  val pop_bottom : 'a t -> 'a option

  (** Thief end: FIFO. *)
  val steal_top : 'a t -> 'a option

  val length : 'a t -> int
end
