(** Deterministic corpus sharding.

    A shard plan is a *pure function* of the input list and the requested
    shard count — never of timing, domain count or scheduling — and every
    plan is contiguous: concatenating the shards in index order
    reconstructs the input exactly.  Those two properties are what let the
    parallel pipeline merge per-shard results in shard order and produce
    output bit-identical to the sequential run (the [--jobs 1] /
    [--jobs N] byte-equality guarantee). *)

(** [contiguous ~shards xs] splits [xs] into at most [shards] contiguous
    chunks of near-equal length.  Empty shards are dropped;
    [List.concat (contiguous ~shards xs) = xs]. *)
val contiguous : shards:int -> 'a list -> 'a list list

(** [contiguous_by_key ~shards ~key xs] additionally never splits a run of
    consecutive elements with the same key, so a repository whose files are
    stored contiguously (as corpus generators and directory walks produce
    them) is digested whole by a single domain and its per-shard interners
    and counters stay repo-local.  Chunk count may slightly exceed or fall
    short of [shards] when key runs are coarse. *)
val contiguous_by_key : shards:int -> key:('a -> string) -> 'a list -> 'a list list

(** Shard count heuristic: [oversubscribe ~jobs] = [4 × jobs], enough
    slack for the work-stealing pool to rebalance uneven shards. *)
val oversubscribe : jobs:int -> int
