(** Deterministic contiguous sharding — see the interface for the
    contract the parallel merge relies on. *)

let oversubscribe ~jobs = 4 * max 1 jobs

(* Greedy packer over pre-computed runs: close the current shard once it
   reaches [target] elements.  Runs longer than [target] become their own
   shard.  Pure in (runs, target). *)
let pack ~target runs =
  let flush cur acc = if cur = [] then acc else List.concat (List.rev cur) :: acc in
  let shards, cur, _ =
    List.fold_left
      (fun (acc, cur, cur_len) (run, run_len) ->
        if cur_len > 0 && cur_len + run_len > target then
          (flush cur acc, [ run ], run_len)
        else (acc, run :: cur, cur_len + run_len))
      ([], [], 0) runs
  in
  List.rev (flush cur shards)

let contiguous ~shards xs =
  let n = List.length xs in
  if n = 0 then []
  else begin
    let shards = max 1 shards in
    let target = (n + shards - 1) / shards in
    (* every element is its own run *)
    pack ~target (List.map (fun x -> ([ x ], 1)) xs)
  end

(* Consecutive elements with equal keys collapse into one run. *)
let runs_by_key ~key xs =
  let close k items len acc = ((k, List.rev items, len) :: acc) in
  let rec go acc cur = function
    | [] -> ( match cur with None -> List.rev acc | Some (k, items, len) -> List.rev (close k items len acc))
    | x :: rest -> (
        let kx = key x in
        match cur with
        | Some (k, items, len) when String.equal k kx ->
            go acc (Some (k, x :: items, len + 1)) rest
        | Some (k, items, len) -> go (close k items len acc) (Some (kx, [ x ], 1)) rest
        | None -> go acc (Some (kx, [ x ], 1)) rest)
  in
  go [] None xs

let contiguous_by_key ~shards ~key xs =
  let n = List.length xs in
  if n = 0 then []
  else begin
    let shards = max 1 shards in
    let target = (n + shards - 1) / shards in
    let runs = List.map (fun (_, items, len) -> (items, len)) (runs_by_key ~key xs) in
    pack ~target runs
  end
