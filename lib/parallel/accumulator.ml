(** Mergeable accumulators and the shard → map → merge-in-order combinators.
    See the interface for the determinism contract. *)

module type MERGEABLE = sig
  type t

  val empty : unit -> t
  val merge : into:t -> t -> unit
end

let plan ?key ~shards xs =
  match key with
  | Some key -> Shard.contiguous_by_key ~shards ~key xs
  | None -> Shard.contiguous ~shards xs

module Events = Namer_obs.Events

let sharded_map ?pool ?key ~shards f xs =
  let shards_l = plan ?key ~shards xs in
  match pool with
  | None -> List.map f shards_l
  | Some pool ->
      (* each shard announces itself from its worker domain, so the event
         log shows which domain/span ran which shard; emission is a no-op
         (and the fields unallocated) when no sink is live, keeping the
         hot path untouched *)
      let run_shard idx shard =
        if Events.enabled () then
          Events.emit
            ~fields:
              [
                ("shard", Namer_util.Json.Int idx);
                ("items", Namer_util.Json.Int (List.length shard));
              ]
            Events.Debug "pool.shard";
        f shard
      in
      let indexed = List.mapi (fun i s -> (i, s)) shards_l in
      (* self-healing merge: a shard whose worker task failed (a poisoned
         task, an injected fault, a domain-local hiccup) is recomputed
         inline on the submitting domain instead of aborting the stage —
         same shard, same [f], so the merged result is byte-identical to
         an all-healthy run.  A shard that fails *again* inline is a
         deterministic bug in [f] and propagates. *)
      List.map2
        (fun (idx, shard) result ->
          match result with
          | Ok v -> v
          | Error _ ->
              Namer_telemetry.Telemetry.count "pool.shard_retries";
              Events.emit
                ~fields:[ ("shard", Namer_util.Json.Int idx) ]
                Events.Warn "pool.shard_retry";
              f shard)
        indexed
        (Pool.map_list_results pool (fun (idx, shard) -> run_shard idx shard) indexed)

let sharded_concat_map ?pool ?key ~shards f xs =
  List.concat (sharded_map ?pool ?key ~shards f xs)

let sharded_reduce (type acc) (module M : MERGEABLE with type t = acc) ?pool ?key
    ~shards (f : 'a list -> acc) (xs : 'a list) : acc =
  let parts = sharded_map ?pool ?key ~shards f xs in
  let into = M.empty () in
  List.iter (fun part -> M.merge ~into part) parts;
  into
