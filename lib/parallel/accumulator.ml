(** Mergeable accumulators and the shard → map → merge-in-order combinators.
    See the interface for the determinism contract. *)

module type MERGEABLE = sig
  type t

  val empty : unit -> t
  val merge : into:t -> t -> unit
end

let plan ?key ~shards xs =
  match key with
  | Some key -> Shard.contiguous_by_key ~shards ~key xs
  | None -> Shard.contiguous ~shards xs

let sharded_map ?pool ?key ~shards f xs =
  let shards_l = plan ?key ~shards xs in
  match pool with
  | None -> List.map f shards_l
  | Some pool -> Pool.map_list pool f shards_l

let sharded_concat_map ?pool ?key ~shards f xs =
  List.concat (sharded_map ?pool ?key ~shards f xs)

let sharded_reduce (type acc) (module M : MERGEABLE with type t = acc) ?pool ?key
    ~shards (f : 'a list -> acc) (xs : 'a list) : acc =
  let parts = sharded_map ?pool ?key ~shards f xs in
  let into = M.empty () in
  List.iter (fun part -> M.merge ~into part) parts;
  into
