(** Fixed-size domain pool with per-worker work-stealing deques.  See the
    interface for the execution/determinism contract. *)

module Telemetry = Namer_telemetry.Telemetry
module Events = Namer_obs.Events

(* ------------------------------------------------------------------ *)
(* Work-stealing deque                                                 *)
(* ------------------------------------------------------------------ *)

module Deque = struct
  (* A mutex-protected ring buffer.  The owner pushes and pops at the
     bottom; thieves take from the top.  A lock per operation is plenty
     here: tasks are shard-sized (milliseconds of work), so deque traffic
     is a few dozen operations per pipeline stage, not a hot path. *)
  type 'a t = {
    m : Mutex.t;
    mutable buf : 'a option array;
    mutable top : int;  (** index of the oldest element *)
    mutable size : int;
  }

  let create () = { m = Mutex.create (); buf = Array.make 64 None; top = 0; size = 0 }

  let locked t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  let grow t =
    let cap = Array.length t.buf in
    let bigger = Array.make (2 * cap) None in
    for k = 0 to t.size - 1 do
      bigger.(k) <- t.buf.((t.top + k) mod cap)
    done;
    t.buf <- bigger;
    t.top <- 0

  let push_bottom t x =
    locked t (fun () ->
        if t.size = Array.length t.buf then grow t;
        t.buf.((t.top + t.size) mod Array.length t.buf) <- Some x;
        t.size <- t.size + 1)

  let pop_bottom t =
    locked t (fun () ->
        if t.size = 0 then None
        else begin
          let i = (t.top + t.size - 1) mod Array.length t.buf in
          let x = t.buf.(i) in
          t.buf.(i) <- None;
          t.size <- t.size - 1;
          x
        end)

  let steal_top t =
    locked t (fun () ->
        if t.size = 0 then None
        else begin
          let x = t.buf.(t.top) in
          t.buf.(t.top) <- None;
          t.top <- (t.top + 1) mod Array.length t.buf;
          t.size <- t.size - 1;
          x
        end)

  let length t = locked t (fun () -> t.size)
end

(* ------------------------------------------------------------------ *)
(* Futures                                                             *)
(* ------------------------------------------------------------------ *)

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = { fm : Mutex.t; fc : Condition.t; mutable state : 'a state }

let await fut =
  Mutex.lock fut.fm;
  while fut.state = Pending do
    Condition.wait fut.fc fut.fm
  done;
  let st = fut.state in
  Mutex.unlock fut.fm;
  match st with
  | Done v -> v
  | Failed e -> raise e
  | Pending -> assert false

let resolve fut st =
  Mutex.lock fut.fm;
  fut.state <- st;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

type t = {
  deques : (unit -> unit) Deque.t array;
  mutable workers : unit Domain.t array;
  m : Mutex.t;  (** protects [stop] and the sleep condition *)
  work : Condition.t;
  mutable stop : bool;
  queued : int Atomic.t;  (** tasks pushed but not yet taken *)
  rr : int Atomic.t;
  n_steals : int Atomic.t;
  n_executed : int Atomic.t array;
}

let size t = Array.length t.deques

(* Take work: own deque first (bottom), then sweep the other deques
   (top).  Decrements [queued] exactly once per task taken. *)
let find_task t i =
  let took task =
    Atomic.decr t.queued;
    Some task
  in
  match Deque.pop_bottom t.deques.(i) with
  | Some task -> took task
  | None ->
      let n = Array.length t.deques in
      let rec sweep k =
        if k >= n then None
        else
          match Deque.steal_top t.deques.((i + k) mod n) with
          | Some task ->
              Atomic.incr t.n_steals;
              Telemetry.count "pool.steals";
              took task
          | None -> sweep (k + 1)
      in
      sweep 1

let worker t i () =
  Telemetry.with_span ~args:[ ("worker", string_of_int i) ] "domain-worker"
  @@ fun () ->
  let rec loop () =
    match find_task t i with
    | Some task ->
        (* count before running: [task ()] resolves a future someone may be
           awaiting, and the counters must already include that task when
           the awaiter wakes up *)
        Atomic.incr t.n_executed.(i);
        (* containment: [task] is the [submit] wrapper, which settles its
           future under a catch-all — but a worker domain must survive even
           an exception that escapes the wrapper (asynchronous exceptions,
           [resolve] itself failing), or one poisoned task takes the whole
           pool down with it *)
        (try task ()
         with _ ->
           Telemetry.count "pool.task_escapes";
           Events.emit
             ~fields:[ ("worker", Namer_util.Json.Int i) ]
             Events.Warn "pool.task_escape");
        loop ()
    | None ->
        Mutex.lock t.m;
        (* Re-check under the lock: a submit between [find_task] and here
           broadcast before we were waiting, so never sleep while work (or
           shutdown) is pending. *)
        let continue_ =
          if t.stop && Atomic.get t.queued = 0 then false
          else begin
            if Atomic.get t.queued = 0 then Condition.wait t.work t.m;
            true
          end
        in
        Mutex.unlock t.m;
        if continue_ then loop ()
  in
  loop ()

let create ~domains () =
  let n = max 1 domains in
  let t =
    {
      deques = Array.init n (fun _ -> Deque.create ());
      workers = [||];
      m = Mutex.create ();
      work = Condition.create ();
      stop = false;
      queued = Atomic.make 0;
      rr = Atomic.make 0;
      n_steals = Atomic.make 0;
      n_executed = Array.init n (fun _ -> Atomic.make 0);
    }
  in
  t.workers <- Array.init n (fun i -> Domain.spawn (worker t i));
  Telemetry.count ~by:n "pool.domains_spawned";
  t

let submit ?on t f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = Pending } in
  (* span-context propagation: capture the submitter's trace/span here, on
     the submitting domain, so the task runs on its worker domain under a
     child span of the submitter — same trace, fresh span.  Captured only
     when the event log is live; disabled, submit stays allocation-free. *)
  let parent = if Events.enabled () then Some (Events.current ()) else None in
  let task () =
    (* fault point: a poisoned task raising mid-flight.  It sits inside the
       catch-all on purpose — an injected fault fails exactly this future,
       as any exception from [f] would, and nothing else. *)
    let run () =
      let st =
        match
          Namer_util.Fault.check "pool.task";
          f ()
        with
        | v -> Done v
        | exception e -> Failed e
      in
      resolve fut st
    in
    match parent with
    | None -> run ()
    | Some p -> Events.with_ctx (Events.child p) run
  in
  let n = Array.length t.deques in
  let i =
    match on with
    | Some i -> ((i mod n) + n) mod n
    | None -> Atomic.fetch_and_add t.rr 1 mod n
  in
  Deque.push_bottom t.deques.(i) task;
  Atomic.incr t.queued;
  Telemetry.count "pool.tasks";
  Mutex.lock t.m;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  fut

let map_list_results t f xs =
  let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
  (* settle every future before returning, so no task is left running with
     a reference to data the caller believes is dead *)
  List.map (fun fut -> match await fut with v -> Ok v | exception e -> Error e) futs

let map_list t f xs =
  List.map (function Ok v -> v | Error e -> raise e) (map_list_results t f xs)

let steals t = Atomic.get t.n_steals
let queued t = Atomic.get t.queued
let executed t = Array.map Atomic.get t.n_executed

let shutdown t =
  Mutex.lock t.m;
  let already = t.stop in
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  if not already then Array.iter Domain.join t.workers

let run ?(cap_to_cores = false) ~jobs f =
  (* More domains than cores is a pessimization in OCaml 5 (every minor GC
     is a stop-the-world barrier across all domains), so callers that care
     about wall-clock cap at the hardware; callers that need a pool of an
     exact size (tests) leave the cap off. *)
  let jobs =
    if cap_to_cores then min jobs (Domain.recommended_domain_count ()) else jobs
  in
  if jobs <= 1 then f None
  else begin
    let pool = create ~domains:jobs () in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f (Some pool))
  end
