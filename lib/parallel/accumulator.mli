(** Mergeable (monoid-style) accumulators for the sharded pipeline.

    A pipeline stage parallelizes by giving every shard its own fresh
    accumulator ([empty]), folding the shard into it on a worker domain,
    and then folding the per-shard accumulators into one ([merge]) on the
    submitting domain *in shard order*.  When [merge] is commutative and
    associative over the accumulated payload (integer sums, set unions —
    everything the pipeline accumulates), the result is independent of both
    the shard plan and the execution schedule, which is the determinism
    contract of {!Namer_parallel.Shard}. *)

module type MERGEABLE = sig
  type t

  val empty : unit -> t

  (** [merge ~into x] folds [x] into [into]; [x] must not be used after. *)
  val merge : into:t -> t -> unit
end

(** [sharded_map ?pool ?key ~shards f xs] applies [f] to every contiguous
    shard of [xs] — on the pool's domains when [pool] is [Some], inline
    otherwise — and returns the per-shard results in shard order.

    Self-healing: a shard whose pool task failed (poisoned task, injected
    fault) is recomputed inline on the submitting domain — counted as
    [pool.shard_retries] — so one bad task degrades to a retry, not an
    aborted stage.  A shard that also fails inline propagates its
    exception: that is a deterministic bug in [f], not a transient. *)
val sharded_map :
  ?pool:Pool.t ->
  ?key:('a -> string) ->
  shards:int ->
  ('a list -> 'b) ->
  'a list ->
  'b list

(** [sharded_concat_map] — like {!sharded_map}, flattening in shard order,
    so the output order equals the sequential [List.concat_map]. *)
val sharded_concat_map :
  ?pool:Pool.t ->
  ?key:('a -> string) ->
  shards:int ->
  ('a list -> 'b list) ->
  'a list ->
  'b list

(** [sharded_reduce (module M) ?pool ?key ~shards f xs] maps every shard to
    an [M.t] and merges them into one accumulator in shard order. *)
val sharded_reduce :
  (module MERGEABLE with type t = 'acc) ->
  ?pool:Pool.t ->
  ?key:('a -> string) ->
  shards:int ->
  ('a list -> 'acc) ->
  'a list ->
  'acc
