module W = struct
  type t = Buffer.t

  let create ?(size = 4096) () = Buffer.create size

  let u8 b v =
    if v < 0 || v > 0xff then invalid_arg (Printf.sprintf "Binio.W.u8: %d" v);
    Buffer.add_char b (Char.chr v)

  let u32 b v =
    if v < 0 || v > 0xffff_ffff then invalid_arg (Printf.sprintf "Binio.W.u32: %d" v);
    Buffer.add_int32_le b (Int32.of_int v)

  let i64 b v = Buffer.add_int64_le b (Int64.of_int v)
  let f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)
  let bool b v = u8 b (if v then 1 else 0)

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let raw b s = Buffer.add_string b s
  let i64_bits b v = Buffer.add_int64_le b v

  let floats b a =
    u32 b (Array.length a);
    Array.iter (f64 b) a

  let matrix b m =
    u32 b (Array.length m);
    u32 b (if Array.length m = 0 then 0 else Array.length m.(0));
    Array.iter (Array.iter (f64 b)) m

  let contents = Buffer.contents
end

module R = struct
  type t = { src : string; mutable pos : int }

  exception Corrupt of string

  let of_string src = { src; pos = 0 }
  let pos r = r.pos
  let remaining r = String.length r.src - r.pos

  let need r n what =
    if remaining r < n then
      raise
        (Corrupt
           (Printf.sprintf "truncated input: wanted %d byte(s) for %s at offset %d, %d left"
              n what r.pos (remaining r)))

  let u8 r =
    need r 1 "u8";
    let v = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u32 r =
    need r 4 "u32";
    let v = Int32.to_int (String.get_int32_le r.src r.pos) land 0xffff_ffff in
    r.pos <- r.pos + 4;
    v

  let i64 r =
    need r 8 "i64";
    let v = Int64.to_int (String.get_int64_le r.src r.pos) in
    r.pos <- r.pos + 8;
    v

  let f64 r =
    need r 8 "f64";
    let v = Int64.float_of_bits (String.get_int64_le r.src r.pos) in
    r.pos <- r.pos + 8;
    v

  let bool r =
    match u8 r with
    | 0 -> false
    | 1 -> true
    | v -> raise (Corrupt (Printf.sprintf "invalid bool byte %d at offset %d" v (r.pos - 1)))

  let str r =
    let n = u32 r in
    need r n "string body";
    let s = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    s

  let floats r =
    let n = u32 r in
    need r (8 * n) "float array body";
    Array.init n (fun _ -> f64 r)

  let matrix r =
    let rows = u32 r in
    let cols = u32 r in
    need r (8 * rows * cols) "matrix body";
    Array.init rows (fun _ -> Array.init cols (fun _ -> f64 r))
end

let fnv1a64 ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let h = ref 0xcbf29ce484222325L in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code s.[i]));
    h := Int64.mul !h 0x100000001b3L
  done;
  !h

let hex64 h = Printf.sprintf "%016Lx" h
