(** Deterministic binary codec primitives for model snapshots and cache
    entries: fixed-width little-endian integers, IEEE-754 doubles and
    length-prefixed strings, plus the FNV-1a 64-bit checksum that seals
    every {!Snapshot} container.  Hand-rolled on purpose — no [Marshal] —
    so the on-disk bytes are a stable, versionable format rather than a
    compiler-version-dependent heap image. *)

(** Append-only writer over a {!Buffer}. *)
module W : sig
  type t

  val create : ?size:int -> unit -> t

  val u8 : t -> int -> unit
  (** One byte.  @raise Invalid_argument outside [0, 255]. *)

  val u32 : t -> int -> unit
  (** Four bytes LE — lengths and counts.
      @raise Invalid_argument outside [0, 2^32). *)

  val i64 : t -> int -> unit
  (** Eight bytes LE, two's complement (full OCaml [int] range). *)

  val f64 : t -> float -> unit
  (** Eight bytes LE, IEEE-754 bits. *)

  val bool : t -> bool -> unit
  val str : t -> string -> unit  (** [u32] byte length, then the bytes. *)

  val raw : t -> string -> unit
  (** Bytes verbatim, no length prefix — magic headers, checksum trailers. *)

  val i64_bits : t -> int64 -> unit
  (** Eight raw bytes LE of a full-range [int64] (checksums). *)

  val floats : t -> float array -> unit
  val matrix : t -> float array array -> unit  (** rows × cols, row-major. *)

  val contents : t -> string
end

(** Cursor-based reader; every decoder raises {!Corrupt} instead of reading
    past the end, so callers can turn malformed input into one actionable
    error. *)
module R : sig
  type t

  exception Corrupt of string

  val of_string : string -> t
  val pos : t -> int
  val remaining : t -> int

  val u8 : t -> int
  val u32 : t -> int
  val i64 : t -> int
  val f64 : t -> float
  val bool : t -> bool
  val str : t -> string
  val floats : t -> float array
  val matrix : t -> float array array
end

val fnv1a64 : ?pos:int -> ?len:int -> string -> int64
(** FNV-1a over [s[pos, pos+len)] (default: the whole string). *)

val hex64 : int64 -> string
(** 16 lowercase hex digits. *)
