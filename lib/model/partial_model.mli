(** Partial models — the mergeable training state of one corpus slice, and
    the merge algebra over them.

    A partial is a versioned, checksummed snapshot ([NAMERPRT]) carrying a
    slice's whole-path vocabulary (first-seen order), its digested
    statements as vocab-index arrays, its file list and skipped files, and
    its unpruned confusing-pair tallies.  {!merge} combines two partials
    covering disjoint slices into the partial of their concatenation —
    closed and associative, with {!empty} as identity — via the
    {!Namer_util.Interner.remap} merge machinery, so that
    [train(A+B) ≡ merge(train A, train B)] (the contract of DESIGN.md §13,
    property-tested in [test/test_partial_model.ml]).

    This module owns the representation and the algebra; digesting a corpus
    slice into a partial and finalizing a partial into a scan model live in
    [Namer_core.Namer.Partial], which has the pipeline. *)

type pstmt = {
  ps_file : int;  (** index into [pm_files] *)
  ps_line : int;
  ps_tree_hash : int;
  ps_paths : int array;  (** name paths as indices into [pm_vocab] *)
}

type t = {
  pm_lang : string;  (** "python" | "java" *)
  pm_use_analysis : bool;  (** digest-shaping config, baked in at digest time *)
  pm_max_stmt_paths : int;
  pm_vocab : string array;
      (** distinct whole-path canonical texts, first-seen statement order;
          replaying them through the interner in this order reproduces the
          id assignment of a sequential digest of the same statements *)
  pm_files : (string * string) array;  (** (repo, path), corpus order *)
  pm_stmts : pstmt array;  (** corpus order; [ps_file] indexes [pm_files] *)
  pm_skipped : (int * string) array;  (** (file index, reason) *)
  pm_pairs : ((string * string) * int) list;
      (** unpruned commit-pair tallies, sorted by pair — pruning and the
          builtin-catalog fallback happen at finalize time, never per slice *)
  pm_n_commits : int;  (** commits the tallies were mined from *)
}

exception Merge_error of string
(** Incompatible or overlapping operands: different languages, different
    digest-shaping config, or a shared file (which rejects re-merging a
    slice — the tallies would double-count). *)

val empty : t
(** The identity element: [merge empty p == p == merge p empty]. *)

val is_empty : t -> bool

val n_files : t -> int
val n_stmts : t -> int
val n_repos : t -> int

val merge : t -> t -> t
(** [merge a b] is the partial of slice [a] followed by slice [b]:
    vocabularies remap-merge, statements and files concatenate with
    reindexing, pair tallies sum.  Associative; commutative up to
    statement order (finalized scan reports are order-insensitive).
    @raise Merge_error on incompatible or overlapping operands. *)

val merge_all : t list -> t
(** Left fold of {!merge} over the list ({!empty} for [[]]). *)

val partial_magic : string
val partial_version : int

val encode : t -> string * string
(** [(bytes, hash)] — the snapshot bytes and their checksum identity. *)

val decode : ?path:string -> string -> t * string
(** Inverse of {!encode}, with full validation (indices in range).
    @raise Snapshot.Error naming the failing section on malformed input. *)

val save : t -> path:string -> string
(** Atomic write; returns the partial's hash. *)

val load : path:string -> t * string
(** @raise Snapshot.Error on unreadable or malformed files. *)
