(** Partial models: the mergeable training state of one corpus slice.

    A partial carries everything [train(slice)] learned that a later
    [train(A+B)] needs, in a shape closed under merging:

    - the slice's whole-path vocabulary in first-seen order (replaying it
      through the interner reproduces the sequential id assignment of a
      direct digest of the same statements);
    - every digested statement as vocab-index arrays (mining thresholds
      are corpus-global and candidates emerge only after merging, so
      aggregated counts cannot stand in for the statements themselves);
    - the slice's file list, skipped files, and unpruned confusing-pair
      tallies with the commit count they were mined from (pruning and the
      builtin-catalog fallback are finalize-time decisions).

    [merge] is closed and associative; the empty partial is its identity;
    re-merging a slice (any file overlap) is rejected.  The algebra is what
    makes [train(A+B) ≡ merge(train A, train B)] hold — see DESIGN.md §13
    and the qcheck suite in [test/test_partial_model.ml]. *)

module Interner = Namer_util.Interner

type pstmt = {
  ps_file : int;  (** index into [pm_files] *)
  ps_line : int;
  ps_tree_hash : int;
  ps_paths : int array;  (** name paths as indices into [pm_vocab] *)
}

type t = {
  pm_lang : string;  (** "python" | "java" *)
  pm_use_analysis : bool;  (** digest-shaping config, baked in at digest time *)
  pm_max_stmt_paths : int;
  pm_vocab : string array;
      (** distinct whole-path canonical texts, first-seen statement order *)
  pm_files : (string * string) array;  (** (repo, path), corpus order *)
  pm_stmts : pstmt array;  (** corpus order; [ps_file] indexes [pm_files] *)
  pm_skipped : (int * string) array;  (** (file index, reason) *)
  pm_pairs : ((string * string) * int) list;
      (** unpruned commit-pair tallies, sorted by pair *)
  pm_n_commits : int;  (** commits the tallies were mined from *)
}

exception Merge_error of string

let merge_errf fmt = Printf.ksprintf (fun s -> raise (Merge_error s)) fmt

let empty =
  {
    pm_lang = "python";
    pm_use_analysis = true;
    pm_max_stmt_paths = 10;
    pm_vocab = [||];
    pm_files = [||];
    pm_stmts = [||];
    pm_skipped = [||];
    pm_pairs = [];
    pm_n_commits = 0;
  }

let is_empty p =
  Array.length p.pm_files = 0
  && Array.length p.pm_stmts = 0
  && p.pm_pairs = [] && p.pm_n_commits = 0

let n_files p = Array.length p.pm_files
let n_stmts p = Array.length p.pm_stmts

let n_repos p =
  let repos = Hashtbl.create 16 in
  Array.iter (fun (repo, _) -> Hashtbl.replace repos repo ()) p.pm_files;
  Hashtbl.length repos

(* ------------------------------------------------------------------ *)
(* Merge                                                               *)
(* ------------------------------------------------------------------ *)

let merge a b =
  (* the empty partial is a two-sided identity, whatever its meta *)
  if is_empty a then b
  else if is_empty b then a
  else begin
    if a.pm_lang <> b.pm_lang then
      merge_errf "cannot merge partials of different languages (%s vs %s)"
        a.pm_lang b.pm_lang;
    if a.pm_use_analysis <> b.pm_use_analysis then
      merge_errf
        "cannot merge partials with different analysis settings (one was \
         digested with origin analysis, the other without)";
    if a.pm_max_stmt_paths <> b.pm_max_stmt_paths then
      merge_errf
        "cannot merge partials with different per-statement path caps (%d vs \
         %d) — the cap shapes the digests themselves"
        a.pm_max_stmt_paths b.pm_max_stmt_paths;
    (* slices must be disjoint: re-merging a slice would double-count its
       statements (this also rejects the idempotent self re-merge) *)
    let seen = Hashtbl.create (Array.length a.pm_files) in
    Array.iter (fun fp -> Hashtbl.replace seen fp ()) a.pm_files;
    Array.iter
      (fun ((_, path) as fp) ->
        if Hashtbl.mem seen fp then
          merge_errf
            "both partials contain file %s — partials must cover disjoint \
             corpus slices (a slice cannot be merged in twice)"
            path)
      b.pm_files;
    (* vocab merge via the interner's remap machinery: [a]'s texts keep
       their indices, [b]'s texts intern after them in [b]'s order — the
       merged vocab is the first-seen order over [a]'s statements followed
       by [b]'s, exactly what a direct digest of the concatenation sees *)
    let ia = Interner.create ~size:(Array.length a.pm_vocab) () in
    Array.iter (fun s -> ignore (Interner.intern ia s)) a.pm_vocab;
    let ib = Interner.create ~size:(Array.length b.pm_vocab) () in
    Array.iter (fun s -> ignore (Interner.intern ib s)) b.pm_vocab;
    let map = Interner.remap ~into:ia ib in
    let vocab = Array.make (Interner.size ia) "" in
    Interner.iter (fun id s -> vocab.(id) <- s) ia;
    let off = Array.length a.pm_files in
    let b_stmts =
      Array.map
        (fun ps ->
          {
            ps with
            ps_file = ps.ps_file + off;
            ps_paths = Array.map (fun i -> map.(i)) ps.ps_paths;
          })
        b.pm_stmts
    in
    (* pair tallies sum (commutative, associative); sorted bindings keep
       the serialized form canonical *)
    let tally = Hashtbl.create 64 in
    List.iter
      (fun (pr, c) ->
        Hashtbl.replace tally pr
          (c + Option.value ~default:0 (Hashtbl.find_opt tally pr)))
      (a.pm_pairs @ b.pm_pairs);
    let pairs =
      Hashtbl.fold (fun pr c acc -> ((pr, c) : (string * string) * int) :: acc) tally []
      |> List.sort compare
    in
    {
      a with
      pm_vocab = vocab;
      pm_files = Array.append a.pm_files b.pm_files;
      pm_stmts = Array.append a.pm_stmts b_stmts;
      pm_skipped =
        Array.append a.pm_skipped
          (Array.map (fun (i, r) -> (i + off, r)) b.pm_skipped);
      pm_pairs = pairs;
      pm_n_commits = a.pm_n_commits + b.pm_n_commits;
    }
  end

let merge_all = function [] -> empty | p :: ps -> List.fold_left merge p ps

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let partial_magic = "NAMERPRT"
let partial_version = 1

let encode p =
  let meta =
    let w = Binio.W.create () in
    Binio.W.str w p.pm_lang;
    Binio.W.bool w p.pm_use_analysis;
    Binio.W.u32 w p.pm_max_stmt_paths;
    Binio.W.u32 w p.pm_n_commits;
    Binio.W.contents w
  in
  let vocab =
    let w = Binio.W.create ~size:(1 lsl 16) () in
    Binio.W.u32 w (Array.length p.pm_vocab);
    Array.iter (Binio.W.str w) p.pm_vocab;
    Binio.W.contents w
  in
  let files =
    let w = Binio.W.create ~size:(1 lsl 12) () in
    Binio.W.u32 w (Array.length p.pm_files);
    Array.iter
      (fun (repo, path) ->
        Binio.W.str w repo;
        Binio.W.str w path)
      p.pm_files;
    Binio.W.contents w
  in
  let stmts =
    let w = Binio.W.create ~size:(1 lsl 16) () in
    Binio.W.u32 w (Array.length p.pm_stmts);
    Array.iter
      (fun ps ->
        Binio.W.u32 w ps.ps_file;
        Binio.W.u32 w ps.ps_line;
        Binio.W.i64 w ps.ps_tree_hash;
        Binio.W.u32 w (Array.length ps.ps_paths);
        Array.iter (Binio.W.u32 w) ps.ps_paths)
      p.pm_stmts;
    Binio.W.contents w
  in
  let skipped =
    let w = Binio.W.create () in
    Binio.W.u32 w (Array.length p.pm_skipped);
    Array.iter
      (fun (i, reason) ->
        Binio.W.u32 w i;
        Binio.W.str w reason)
      p.pm_skipped;
    Binio.W.contents w
  in
  let pairs =
    let w = Binio.W.create () in
    Binio.W.u32 w (List.length p.pm_pairs);
    List.iter
      (fun ((w1, w2), c) ->
        Binio.W.str w w1;
        Binio.W.str w w2;
        Binio.W.i64 w c)
      p.pm_pairs;
    Binio.W.contents w
  in
  Snapshot.encode ~magic:partial_magic ~version:partial_version
    [
      ("meta", meta); ("vocab", vocab); ("files", files); ("stmts", stmts);
      ("skipped", skipped); ("pairs", pairs);
    ]

let decode ?path bytes =
  let desc = "partial model" in
  let sections, hash =
    Snapshot.decode ~magic:partial_magic ~desc ~version:partial_version ?path
      bytes
  in
  let desc =
    match path with Some p -> Printf.sprintf "%s %s" desc p | None -> desc
  in
  let read name f = Snapshot.read_section ~desc sections name f in
  (* explicit loops throughout: the reader is stateful, so the read order
     must be the write order, which Array.init/List.init do not promise *)
  let read_array r f =
    let n = Binio.R.u32 r in
    let acc = ref [] in
    for _ = 1 to n do
      acc := f r :: !acc
    done;
    Array.of_list (List.rev !acc)
  in
  let lang, use_analysis, max_stmt_paths, n_commits =
    read "meta" (fun r ->
        let lang = Binio.R.str r in
        let use_analysis = Binio.R.bool r in
        let max_stmt_paths = Binio.R.u32 r in
        let n_commits = Binio.R.u32 r in
        (lang, use_analysis, max_stmt_paths, n_commits))
  in
  let vocab = read "vocab" (fun r -> read_array r Binio.R.str) in
  let files =
    read "files" (fun r ->
        read_array r (fun r ->
            let repo = Binio.R.str r in
            let path = Binio.R.str r in
            (repo, path)))
  in
  let stmts =
    read "stmts" (fun r ->
        read_array r (fun r ->
            let ps_file = Binio.R.u32 r in
            let ps_line = Binio.R.u32 r in
            let ps_tree_hash = Binio.R.i64 r in
            let ps_paths = read_array r Binio.R.u32 in
            if ps_file >= Array.length files then
              invalid_arg
                (Printf.sprintf "statement file index %d out of range (%d files)"
                   ps_file (Array.length files));
            Array.iter
              (fun i ->
                if i >= Array.length vocab then
                  invalid_arg
                    (Printf.sprintf
                       "statement path index %d out of range (%d vocab entries)"
                       i (Array.length vocab)))
              ps_paths;
            { ps_file; ps_line; ps_tree_hash; ps_paths }))
  in
  let skipped =
    read "skipped" (fun r ->
        read_array r (fun r ->
            let i = Binio.R.u32 r in
            let reason = Binio.R.str r in
            if i >= Array.length files then
              invalid_arg
                (Printf.sprintf "skipped file index %d out of range (%d files)"
                   i (Array.length files));
            (i, reason)))
  in
  let pairs =
    read "pairs" (fun r ->
        Array.to_list
          (read_array r (fun r ->
               let w1 = Binio.R.str r in
               let w2 = Binio.R.str r in
               let c = Binio.R.i64 r in
               ((w1, w2), c))))
  in
  ( {
      pm_lang = lang;
      pm_use_analysis = use_analysis;
      pm_max_stmt_paths = max_stmt_paths;
      pm_vocab = vocab;
      pm_files = files;
      pm_stmts = stmts;
      pm_skipped = skipped;
      pm_pairs = pairs;
      pm_n_commits = n_commits;
    },
    hash )

let save p ~path =
  let bytes, hash = encode p in
  Snapshot.write ~path bytes;
  hash

let load ~path =
  let bytes = Snapshot.read_file ~desc:"partial model" ~path in
  decode ~path bytes
