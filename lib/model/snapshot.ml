exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let encode ~magic ~version sections =
  if String.length magic <> 8 then invalid_arg "Snapshot.encode: magic must be 8 bytes";
  let b = Binio.W.create ~size:(1 lsl 16) () in
  Binio.W.raw b magic;
  Binio.W.u32 b version;
  Binio.W.u32 b (List.length sections);
  List.iter
    (fun (name, payload) ->
      Binio.W.str b name;
      Binio.W.str b payload)
    sections;
  let body = Binio.W.contents b in
  let sum = Binio.fnv1a64 body in
  Binio.W.i64_bits b sum;
  (Binio.W.contents b, Binio.hex64 sum)

let decode ~magic ~desc ~version ?path bytes =
  let where = match path with Some p -> Printf.sprintf " %s" p | None -> "" in
  let n = String.length bytes in
  if n < 8 + 4 + 4 + 8 then
    errf "%s%s is truncated (%d bytes; smaller than any valid header)" desc where n;
  let got_magic = String.sub bytes 0 8 in
  if not (String.equal got_magic magic) then
    errf "%s%s is not a %s: bad magic %S (expected %S)" desc where desc got_magic magic;
  let body_len = n - 8 in
  let stored = String.get_int64_le bytes body_len in
  let computed = Binio.fnv1a64 ~len:body_len bytes in
  if not (Int64.equal stored computed) then
    errf
      "%s%s failed its checksum (stored %s, computed %s) — the file is corrupted or was \
       truncated mid-write; regenerate it"
      desc where (Binio.hex64 stored) (Binio.hex64 computed);
  let r = Binio.R.of_string (String.sub bytes 8 (body_len - 8)) in
  (try
     let got_version = Binio.R.u32 r in
     if got_version <> version then
       errf
         "%s%s has format version %d but this binary reads version %d — re-run `namer \
          train` to regenerate it"
         desc where got_version version;
     let count = Binio.R.u32 r in
     (* explicit loop: the reader is stateful, so the read order must be
        the section order, which List.init does not promise *)
     let sections = ref [] in
     for _ = 1 to count do
       let name = Binio.R.str r in
       let payload = Binio.R.str r in
       sections := (name, payload) :: !sections
     done;
     let sections = List.rev !sections in
     if Binio.R.remaining r <> 0 then
       errf "%s%s has %d trailing byte(s) after the section table" desc where
         (Binio.R.remaining r);
     (sections, Binio.hex64 computed)
   with Binio.R.Corrupt msg -> errf "%s%s is corrupt: %s" desc where msg)

(* Atomic publish: write to a fresh O_EXCL temp file in the target
   directory, then rename over [path].  Concurrent writers (daemon + CLI
   populating the same cache entry, background retrain replacing a live
   model) each rename their own complete temp file, so a reader only ever
   sees some complete version — never a torn interleaving.  Flush errors
   must fail the write *before* the rename (renaming a torn temp would
   publish garbage over a possibly-valid entry), and a failed attempt
   must not leak its temp file. *)
let write ~path bytes =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  match
    let oc = open_out_bin tmp in
    (try
       output_string oc bytes;
       flush oc
     with e ->
       close_out_noerr oc;
       raise e);
    close_out oc;
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let read_file ~desc ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> s
  | exception Sys_error msg -> errf "cannot read %s %s: %s" desc path msg

let section ~desc sections name =
  match List.assoc_opt name sections with
  | Some payload -> payload
  | None -> errf "%s is missing its %S section — regenerate it" desc name

(* Section-scoped decoding: a reader failure inside a section names that
   section, not just a byte offset — "its \"patterns\" section is corrupt"
   points at the damage; a bare offset into the container does not. *)
let read_section ~desc sections name f =
  let r = Binio.R.of_string (section ~desc sections name) in
  try f r with
  | Binio.R.Corrupt msg -> errf "%s: its %S section is corrupt: %s" desc name msg
  | Invalid_argument msg ->
      errf "%s: its %S section holds malformed data: %s" desc name msg
