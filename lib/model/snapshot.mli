(** Versioned, checksummed section container shared by model snapshots
    ([NAMERMDL]) and scan-cache entries ([NAMERRPT]).

    Layout (all integers little-endian):

    {v
      magic     8 bytes  (e.g. "NAMERMDL")
      version   u32
      sections  u32                      -- section count
      repeat sections times:
        name    u32 len + bytes
        payload u32 len + bytes
      checksum  8 bytes                  -- FNV-1a64 of everything above
    v}

    The hex of the trailing checksum doubles as the artifact's identity
    (the "model hash" used as the cache key). *)

exception Error of string
(** All decode failures — truncation, wrong magic, version skew, checksum
    mismatch — raise this with a message that names the file and says what
    to do about it. *)

val encode : magic:string -> version:int -> (string * string) list -> string * string
(** [encode ~magic ~version sections] is [(bytes, hash)] where [hash] is
    the 16-hex-digit checksum identity.  [magic] must be 8 bytes. *)

val decode :
  magic:string -> desc:string -> version:int -> ?path:string -> string ->
  (string * string) list * string
(** Inverse of {!encode}: validates magic, version and checksum, and
    returns [(sections, hash)].  [desc] names the artifact kind in errors
    ("model snapshot", "cache entry"); [path] names its origin. *)

val write : path:string -> string -> unit
(** Atomic write: temp file in the target directory, then rename. *)

val read_file : desc:string -> path:string -> string
(** Read a whole file, turning [Sys_error] into {!Error}. *)

val section : desc:string -> (string * string) list -> string -> string
(** Look up a section by name.  @raise Error when absent. *)

val read_section :
  desc:string -> (string * string) list -> string -> (Binio.R.t -> 'a) -> 'a
(** [read_section ~desc sections name f] runs decoder [f] over the named
    section's payload.  A reader failure ([Binio.R.Corrupt]) or a semantic
    one ([Invalid_argument]) becomes an {!Error} that names the failing
    section — not just a byte offset.  @raise Error also when absent. *)
