(** Descriptive statistics and binary-classification metrics.

    The evaluation (§5) reports precision of report sets and accuracy /
    precision / recall / F1 of the defect classifier under cross-validation;
    this module centralizes those computations. *)

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] ->
      invalid_arg "Stats.variance: need at least 2 samples (got 0 or 1)"
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. n

let stddev xs = sqrt (variance xs)

(** [percentile p xs] with linear interpolation; [p] is clamped to
    [\[0, 100\]].  Raises [Invalid_argument] on an empty sample. *)
let percentile p xs =
  let p = Float.max 0.0 (Float.min 100.0 p) in
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | sorted ->
      let a = Array.of_list sorted in
      let n = Array.length a in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
      let frac = rank -. floor rank in
      (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)

(** Outcome counts of a binary classifier against ground truth. *)
type confusion = { tp : int; fp : int; tn : int; fn : int }

let confusion ~predicted ~actual =
  List.fold_left2
    (fun c p a ->
      match (p, a) with
      | true, true -> { c with tp = c.tp + 1 }
      | true, false -> { c with fp = c.fp + 1 }
      | false, false -> { c with tn = c.tn + 1 }
      | false, true -> { c with fn = c.fn + 1 })
    { tp = 0; fp = 0; tn = 0; fn = 0 }
    predicted actual

let safe_div a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b

let accuracy c = safe_div (c.tp + c.tn) (c.tp + c.tn + c.fp + c.fn)
let precision c = safe_div c.tp (c.tp + c.fp)
let recall c = safe_div c.tp (c.tp + c.fn)

let f1 c =
  let p = precision c and r = recall c in
  if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)
