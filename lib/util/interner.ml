(** String interning.

    The Datalog engine, name-path serialization and FP-tree all work over
    dense integer identifiers; this module provides the bijection between
    strings and those identifiers.  Interners are explicit values (no global
    state) so independent analyses cannot interfere.

    An interner can be {!freeze}-frozen: a frozen interner answers lookups
    (which are plain hash reads and therefore safe to run concurrently from
    several domains) but refuses to allocate new ids.  This is the
    multicore contract of the hash-consed pipeline: one domain populates the
    table sequentially, freezes it, and read-only shards fan out. *)

type t = {
  of_string : (string, int) Hashtbl.t;
  mutable to_string : string array;
  mutable next : int;
  mutable frozen : bool;
}

let create ?(size = 1024) () =
  {
    of_string = Hashtbl.create size;
    to_string = Array.make 64 "";
    next = 0;
    frozen = false;
  }

(** [intern t s] returns the unique id of [s], allocating one if needed.
    Ids are dense, starting at 0, in first-seen order. *)
let intern t s =
  match Hashtbl.find_opt t.of_string s with
  | Some id -> id
  | None ->
      if t.frozen then invalid_arg "Interner.intern: frozen";
      let id = t.next in
      t.next <- id + 1;
      if id >= Array.length t.to_string then begin
        let bigger = Array.make (2 * Array.length t.to_string) "" in
        Array.blit t.to_string 0 bigger 0 (Array.length t.to_string);
        t.to_string <- bigger
      end;
      t.to_string.(id) <- s;
      Hashtbl.replace t.of_string s id;
      id

(** [lookup t s] is the id of [s] if it was interned before. *)
let lookup t s = Hashtbl.find_opt t.of_string s

(** [name t id] recovers the string for [id]. Raises [Invalid_argument] for
    ids never returned by [intern]. *)
let name t id =
  if id < 0 || id >= t.next then invalid_arg "Interner.name: unknown id"
  else t.to_string.(id)

let size t = t.next

(** Stop allocating: after [freeze t], {!intern} of an unknown string
    raises.  Lookups of known strings keep working (and are read-only, so
    they may run concurrently).  Idempotent. *)
let freeze t = t.frozen <- true

(** Re-allow allocation after a {!freeze}.  Existing ids are never
    invalidated by a freeze/thaw cycle. *)
let thaw t = t.frozen <- false

let is_frozen t = t.frozen

(** [iter f t] applies [f id (name t id)] for every id in first-seen
    order. *)
let iter f t =
  for id = 0 to t.next - 1 do
    f id t.to_string.(id)
  done

(** [remap ~into t] interns every string of [t] into [into] (in [t]'s
    first-seen id order) and returns the translation array [m] with
    [name into m.(id) = name t id].  This is the shard-merge step of the
    hash-consed pipeline: per-shard local interners built on worker domains
    are folded into the global table in shard order, so the global id
    assignment is identical to what a sequential pass would have produced.
    [into] must not be frozen unless every string of [t] is already known
    to it. *)
let remap ~into t =
  Array.init t.next (fun id -> intern into t.to_string.(id))
