(** String interning: a bijection between strings and dense integer ids
    (first-seen order, starting at 0).  Explicit values — no global state.

    Interners can be {!freeze}-frozen into read-only lookup tables, the
    multicore contract of the hash-consed pipeline (one domain populates,
    freezes, read-only shards fan out), and {!remap}-merged (per-shard
    local tables folded into a global one in shard order). *)

type t

val create : ?size:int -> unit -> t

(** Id of [s], allocating if new.
    @raise Invalid_argument if [s] is unknown and the interner is frozen. *)
val intern : t -> string -> int

(** Id of [s] if already interned.  Read-only — safe concurrently on a
    frozen interner. *)
val lookup : t -> string -> int option

(** String for [id].  @raise Invalid_argument for unknown ids. *)
val name : t -> int -> string

val size : t -> int

(** Make the interner read-only: {!intern} of unknown strings raises until
    {!thaw}.  Idempotent; ids survive freeze/thaw cycles unchanged. *)
val freeze : t -> unit

val thaw : t -> unit
val is_frozen : t -> bool

(** [iter f t] applies [f id name] in first-seen id order. *)
val iter : (int -> string -> unit) -> t -> unit

(** [remap ~into t] interns [t]'s strings into [into] in [t]'s id order and
    returns the id translation array: [name into m.(id) = name t id]. *)
val remap : into:t -> t -> int array
