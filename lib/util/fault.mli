(** Injectable fault points for robustness testing.

    Production code marks the places where the outside world can hurt it —
    a parse, a cache read, a pool task — with {!check} (raising faults) or
    {!fires} (data-corrupting faults).  Tests and the fuzz harness then
    *arm* those points to make the Nth passage fail, deterministically,
    without monkey-patching anything: the fault registry is global,
    mutex-protected (checks happen on worker domains) and disarmed by
    default, so an unarmed binary pays one hash lookup on an empty table
    per check.

    Fault points in the tree (see DESIGN.md §9):
    - ["frontend.parse"] — {!Namer_core.Frontend.parse_file} raises
      {!Injected} instead of parsing;
    - ["scan_cache.read"] — {!Namer_core.Scan_cache.find} corrupts the
      entry bytes it just read, as a flipped bit on disk would;
    - ["pool.task"] — a {!Namer_parallel.Pool} task raises {!Injected}
      mid-flight, poisoning only its own future. *)

(** Raised by {!check} when an armed fault fires.  The payload names the
    fault point. *)
exception Injected of string

(** [arm ?after ?times point] arms [point]: the [after]-th call to
    {!check}/{!fires} (default 1 — the next one) fires, as do the
    [times - 1] calls after it (default 1 — fire once, then disarm).
    [times = max_int] means every call from [after] on. *)
val arm : ?after:int -> ?times:int -> string -> unit

(** Disarm every fault point and zero the counters. *)
val reset : unit -> unit

(** Is any spec armed for [point] (fired or not)? *)
val armed : string -> bool

(** Count one passage through [point]; raise [Injected point] if it fires. *)
val check : string -> unit

(** Count one passage; [true] if the fault fires.  For fault points that
    corrupt data rather than raise. *)
val fires : string -> bool

(** Total faults fired since the last {!reset}. *)
val fired : unit -> int

(** Arm fault points from an environment-variable spec:
    ["point[:after[:times]]"], comma-separated — e.g.
    [NAMER_FAULTS="frontend.parse:3,pool.task"].  Unparseable entries are
    ignored.  Lets fault injection reach a released binary (the CLI calls
    this at startup). *)
val arm_from_spec : string -> unit
