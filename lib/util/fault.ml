(** Injectable fault points.  See the interface for the contract. *)

exception Injected of string

type spec = {
  mutable seen : int;  (** passages counted so far *)
  after : int;  (** 1-based passage index of the first firing *)
  times : int;  (** consecutive firings from [after] on *)
}

(* One global, mutex-protected registry: checks run on worker domains, and
   a fault point is a name, not a value threaded through the pipeline. *)
let m = Mutex.create ()
let specs : (string, spec) Hashtbl.t = Hashtbl.create 8
let n_fired = ref 0

let locked f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let arm ?(after = 1) ?(times = 1) point =
  locked (fun () ->
      Hashtbl.replace specs point { seen = 0; after = max 1 after; times = max 1 times })

let reset () =
  locked (fun () ->
      Hashtbl.reset specs;
      n_fired := 0)

let armed point = locked (fun () -> Hashtbl.mem specs point)

let fires point =
  locked (fun () ->
      match Hashtbl.find_opt specs point with
      | None -> false
      | Some s ->
          s.seen <- s.seen + 1;
          let hit = s.seen >= s.after && s.seen < s.after + s.times in
          if hit then incr n_fired;
          hit)

let check point = if fires point then raise (Injected point)
let fired () = locked (fun () -> !n_fired)

let arm_from_spec env =
  String.split_on_char ',' env
  |> List.iter (fun entry ->
         match String.split_on_char ':' (String.trim entry) with
         | [ "" ] -> ()
         | [ point ] -> arm point
         | [ point; after ] -> (
             match int_of_string_opt after with
             | Some a -> arm ~after:a point
             | None -> ())
         | [ point; after; times ] -> (
             match (int_of_string_opt after, int_of_string_opt times) with
             | Some a, Some t -> arm ~after:a ~times:t point
             | _ -> ())
         | _ -> ())
