(** Minimal JSON emission and parsing (no external dependency): enough for
    the CLI's machine-readable report output and for validating the
    telemetry exports (Chrome traces, metric registries) that this project
    writes and reads back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Render compactly ([indent = None]) or pretty-printed with the given
    indentation width. *)
let to_string ?indent (v : t) =
  let buf = Buffer.create 256 in
  let nl level =
    match indent with
    | None -> ()
    | Some w ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (w * level) ' ')
  in
  let rec go level v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.1f" f)
        else Buffer.add_string buf (Printf.sprintf "%.12g" f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            nl (level + 1);
            go (level + 1) item)
          items;
        nl level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (level + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            if indent <> None then Buffer.add_char buf ' ';
            go (level + 1) item)
          fields;
        nl level;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

exception Parse_error of string

(** [parse s] — a small recursive-descent parser covering everything
    {!to_string} emits (and standard JSON generally; [\u] escapes are
    decoded to UTF-8).  Returns [Error msg] on malformed input. *)
let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' -> Buffer.add_char buf e; go ()
            | 'n' -> Buffer.add_char buf '\n'; go ()
            | 'r' -> Buffer.add_char buf '\r'; go ()
            | 't' -> Buffer.add_char buf '\t'; go ()
            | 'b' -> Buffer.add_char buf '\b'; go ()
            | 'f' -> Buffer.add_char buf '\012'; go ()
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                (* encode the code point as UTF-8 (no surrogate pairing —
                   enough for the control characters we emit) *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                go ()
            | _ -> fail "bad escape")
        | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos < n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg
