(** Slice-interning pool for zero-copy lexing.

    Maps substrings of a source buffer to previously built values (shared
    tokens) without allocating the substring on lookup: the slice is hashed
    and compared in place, and [String.sub] runs exactly once per distinct
    spelling.  Not thread-safe — give each lexing domain its own pool. *)

type 'a t

val create : ?max_entries:int -> unit -> 'a t
(** [create ()] makes an empty pool.  Once [max_entries] (default 128k)
    distinct spellings are stored, further misses are served un-pooled so
    memory stays bounded. *)

val add : 'a t -> string -> 'a -> unit
(** Pre-seed an entry (e.g. each keyword mapped to its [Keyword] token). *)

val lookup : 'a t -> src:string -> off:int -> len:int -> make:(string -> 'a) -> 'a
(** [lookup t ~src ~off ~len ~make] returns the value stored for the slice
    [src.[off .. off+len-1]], building it with [make] (applied to the
    materialised substring) on first sight. *)

val size : 'a t -> int
(** Number of pooled entries. *)
