(* Slice-interning pool for zero-copy lexing.

   A lexer that has just scanned a token holds its text only as a slice
   [off, off+len) of the source buffer.  [lookup] maps that slice to a
   previously built value (a shared token) without materialising the
   substring: the slice is hashed and compared in place, and a fresh
   [String.sub] happens exactly once per distinct spelling, inside [make].
   Repeated identifiers, keywords and numerals — the overwhelming bulk of
   any real corpus — therefore cost zero allocations beyond the token
   record itself.

   Pools are not thread-safe by design: each lexing domain owns its own
   pool (via [Domain.DLS] in the lexers), so lookups never contend.  The
   entry count is capped; once full, misses fall back to an un-pooled
   [make] so a pathological corpus (or a long-lived serve daemon fed
   unbounded fresh identifiers) cannot grow the pool without bound. *)

type 'a t = {
  mutable buckets : (string * 'a) list array; (* length always a power of 2 *)
  mutable count : int;
  max_entries : int;
}

let create ?(max_entries = 1 lsl 17) () =
  { buckets = Array.make 1024 []; count = 0; max_entries }

(* FNV-1a over the slice: no allocation, decent dispersion for short
   ASCII tokens. *)
let hash_slice src off len =
  let h = ref 0xcbf29ce4 in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get src i)) * 0x01000193 land max_int
  done;
  !h

let slice_equal src off len key =
  String.length key = len
  &&
  let rec go i =
    i = len
    || Char.equal (String.unsafe_get key i) (String.unsafe_get src (off + i))
       && go (i + 1)
  in
  go 0

let rehash t =
  let old = t.buckets in
  let size = 2 * Array.length old in
  let fresh = Array.make size [] in
  Array.iter
    (List.iter (fun ((key, _) as entry) ->
         let idx = hash_slice key 0 (String.length key) land (size - 1) in
         fresh.(idx) <- entry :: fresh.(idx)))
    old;
  t.buckets <- fresh

let insert t key v =
  if t.count >= 2 * Array.length t.buckets then rehash t;
  let idx = hash_slice key 0 (String.length key) land (Array.length t.buckets - 1) in
  t.buckets.(idx) <- (key, v) :: t.buckets.(idx);
  t.count <- t.count + 1

(* Pre-seed an entry (e.g. keyword -> Keyword token) before any lookups. *)
let add t key v = if t.count < t.max_entries then insert t key v

let lookup t ~src ~off ~len ~make =
  let idx = hash_slice src off len land (Array.length t.buckets - 1) in
  let rec find = function
    | [] ->
        let key = String.sub src off len in
        let v = make key in
        if t.count < t.max_entries then insert t key v;
        v
    | (key, v) :: rest -> if slice_equal src off len key then v else find rest
  in
  find t.buckets.(idx)

let size t = t.count
