(** Polymorphic multisets (occurrence counters), used throughout mining:
    path frequencies, pair tallies, per-pattern counts. *)

type 'a t

val create : ?size:int -> unit -> 'a t
val add : ?by:int -> 'a t -> 'a -> unit
val count : 'a t -> 'a -> int
val total : 'a t -> int

(** Number of distinct elements. *)
val distinct : 'a t -> int

val of_list : 'a list -> 'a t

(** Bindings by decreasing count. *)
val to_sorted_list : 'a t -> ('a * int) list

(** The [n] most frequent elements. *)
val top : int -> 'a t -> ('a * int) list

val iter : ('a -> int -> unit) -> 'a t -> unit
val fold : ('a -> int -> 'b -> 'b) -> 'a t -> 'b -> 'b

(** [merge ~into t] adds every tally of [t] into [into] (monoid merge for
    the sharded pipeline; commutative, so shard order is irrelevant). *)
val merge : into:'a t -> 'a t -> unit

(** Elements with count ≥ [min_count], unordered. *)
val filter_min : 'a t -> min_count:int -> ('a * int) list
