(** Polymorphic multisets (occurrence counters).

    Used throughout the mining pipeline: subtoken frequencies, name-path
    support counts, confusing-word-pair tallies, per-pattern satisfaction and
    violation counts. *)

type 'a t = ('a, int) Hashtbl.t

let create ?(size = 64) () : 'a t = Hashtbl.create size

let add ?(by = 1) t x =
  match Hashtbl.find_opt t x with
  | Some n -> Hashtbl.replace t x (n + by)
  | None -> Hashtbl.replace t x by

let count t x = Option.value (Hashtbl.find_opt t x) ~default:0
let total t = Hashtbl.fold (fun _ n acc -> acc + n) t 0
let distinct t = Hashtbl.length t

let of_list xs =
  let t = create () in
  List.iter (fun x -> add t x) xs;
  t

(** Bindings sorted by decreasing count (ties unspecified). *)
let to_sorted_list t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(** [top n t] is the [n] most frequent elements with their counts. *)
let top n t =
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
  in
  take n (to_sorted_list t)

let iter f t = Hashtbl.iter f t
let fold f t init = Hashtbl.fold f t init

(** [merge ~into t] adds every tally of [t] into [into].  Integer addition
    commutes, so merging per-shard counters yields the same multiset no
    matter how the corpus was sharded — the mining pipeline's determinism
    rests on this. *)
let merge ~into t = Hashtbl.iter (fun k by -> add ~by into k) t

(** Elements whose count meets [min_count], unordered. *)
let filter_min t ~min_count =
  Hashtbl.fold (fun k v acc -> if v >= min_count then (k, v) :: acc else acc) t []
