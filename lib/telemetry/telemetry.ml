(** Pipeline telemetry: hierarchical spans, process-wide counters and
    histograms, and two exporters (a human-readable stage table and Chrome
    [trace_event] JSON loadable in chrome://tracing / Perfetto).

    The instrumented pipeline (see {!Namer_core.Namer.build}) opens one span
    per stage — parse → analyze → astplus → namepaths → pair-mining →
    pattern-mining → scan → classifier — so that a single scan produces both
    an aggregate per-stage cost table and a zoomable timeline.

    Telemetry is disabled by default: the sink starts as {!Null} and every
    entry point ({!with_span}, {!count}, {!observe}) begins with a single
    load of an [enabled] flag, so instrumented code pays one branch and no
    allocation when telemetry is off.  When the sink is {!Memory}, all state
    lives behind one mutex, making the recorder safe to call from multiple
    domains; span nesting depth is tracked per domain (domain-local
    storage), and every span records the id of the domain that opened it
    ([tid]), so a parallel [--jobs N] run exports one timeline lane per
    domain in the Chrome trace. *)

type sink = Null | Memory

(* ------------------------------------------------------------------ *)
(* Recorder state                                                      *)
(* ------------------------------------------------------------------ *)

(** One closed span.  [ts_us] is microseconds since {!set_sink}/{!reset};
    [alloc_bytes] is the Gc allocation delta ([minor + major - promoted]
    words, scaled to bytes) over the span's extent, including children. *)
type span = {
  name : string;
  ts_us : float;
  dur_us : float;
  depth : int;
  tid : int;  (** id of the domain that opened the span *)
  alloc_bytes : float;
  args : (string * string) list;
}

(** Five-number summary of a histogram (percentiles via
    {!Namer_util.Stats.percentile}). *)
type summary = {
  n : int;
  total : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(** Per-stage aggregate: every span with the same name folded together,
    ordered by first occurrence. *)
type stage = {
  stage : string;
  s_count : int;
  wall_ms : float;
  alloc_mb : float;
}

let mutex = Mutex.create ()
let enabled_flag = ref false
let epoch = ref 0.0
let spans_rev : span list ref = ref []

(* Span nesting depth is a per-domain notion: each domain nests its own
   spans independently, so depth lives in domain-local storage rather than
   behind the mutex. *)
let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let hists_tbl : (string, float list ref) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(* Counters are sharded per domain: [count] fires in scan/mining hot loops
   (e.g. once per pattern match) from every worker, and a process-wide
   mutex per increment serializes the domains exactly where the pipeline is
   supposed to be parallel.  Each domain owns a DLS table it increments
   lock-free; tables are registered (under the mutex, once per domain) in
   [counter_tables] and summed at read time.  Reads happen after the domain
   pool has been joined, so the merged view is consistent; a mid-flight
   read would at worst miss in-progress increments, never corrupt. *)
let counter_tables : (string, int ref) Hashtbl.t list ref = ref []

let counters_key : (string, int ref) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let tbl = Hashtbl.create 64 in
      locked (fun () -> counter_tables := tbl :: !counter_tables);
      tbl)

let clear_unlocked () =
  spans_rev := [];
  Domain.DLS.get depth_key := 0;
  (* Clear contents but keep every table registered: live domains hold DLS
     references to theirs and would otherwise increment orphans. *)
  List.iter Hashtbl.reset !counter_tables;
  Hashtbl.reset hists_tbl;
  epoch := Unix.gettimeofday ()

(** [set_sink s] switches recording on ([Memory]) or off ([Null]).
    Switching does not discard already-recorded data; use {!reset} for a
    clean slate. *)
let set_sink (s : sink) =
  locked (fun () ->
      (match s with
      | Memory -> if !epoch = 0.0 then epoch := Unix.gettimeofday ()
      | Null -> ());
      enabled_flag := s = Memory)

let enabled () = !enabled_flag

(** Drop all recorded spans, counters and histograms and restart the clock. *)
let reset () = locked clear_unlocked

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let alloc_words (g : Gc.stat) = g.Gc.minor_words +. g.Gc.major_words -. g.Gc.promoted_words
let bytes_per_word = float_of_int (Sys.word_size / 8)

(** [with_span name f] runs [f ()] inside a span.  When telemetry is
    disabled this is a single branch around [f].  [record_ms] additionally
    feeds the span's duration (in ms) into the named histogram — used for
    per-file latency distributions.  The span is closed (and recorded) even
    when [f] raises. *)
let with_span ?(args = []) ?record_ms name f =
  if not !enabled_flag then f ()
  else begin
    let depth_ref = Domain.DLS.get depth_key in
    let d = !depth_ref in
    depth_ref := d + 1;
    let tid = (Domain.self () :> int) in
    let g0 = alloc_words (Gc.quick_stat ()) in
    let t0 = Unix.gettimeofday () in
    let finish () =
      let t1 = Unix.gettimeofday () in
      let g1 = alloc_words (Gc.quick_stat ()) in
      depth_ref := d;
      locked (fun () ->
          spans_rev :=
            {
              name;
              ts_us = (t0 -. !epoch) *. 1e6;
              dur_us = (t1 -. t0) *. 1e6;
              depth = d;
              tid;
              alloc_bytes = (g1 -. g0) *. bytes_per_word;
              args;
            }
            :: !spans_rev;
          match record_ms with
          | None -> ()
          | Some h -> (
              let v = (t1 -. t0) *. 1e3 in
              match Hashtbl.find_opt hists_tbl h with
              | Some r -> r := v :: !r
              | None -> Hashtbl.replace hists_tbl h (ref [ v ])))
    in
    Fun.protect ~finally:finish f
  end

(** Increment the named process-wide counter — lock-free on the calling
    domain's own shard. *)
let count ?(by = 1) name =
  if !enabled_flag then begin
    let tbl = Domain.DLS.get counters_key in
    match Hashtbl.find_opt tbl name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace tbl name (ref by)
  end

(** Record one observation into the named histogram. *)
let observe name v =
  if !enabled_flag then
    locked (fun () ->
        match Hashtbl.find_opt hists_tbl name with
        | Some r -> r := v :: !r
        | None -> Hashtbl.replace hists_tbl name (ref [ v ]))

(* ------------------------------------------------------------------ *)
(* Reading back                                                        *)
(* ------------------------------------------------------------------ *)

(** All closed spans in chronological (start-time) order. *)
let spans () =
  locked (fun () -> !spans_rev)
  |> List.stable_sort (fun a b -> compare a.ts_us b.ts_us)

let counters () =
  locked (fun () ->
      let merged : (string, int) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun tbl ->
          Hashtbl.iter
            (fun k r ->
              Hashtbl.replace merged k
                (!r + Option.value (Hashtbl.find_opt merged k) ~default:0))
            tbl)
        !counter_tables;
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged [])
  |> List.sort compare

let counter name =
  locked (fun () ->
      List.fold_left
        (fun acc tbl ->
          match Hashtbl.find_opt tbl name with Some r -> acc + !r | None -> acc)
        0 !counter_tables)

let summarize xs =
  let module S = Namer_util.Stats in
  {
    n = List.length xs;
    total = List.fold_left ( +. ) 0.0 xs;
    mean = S.mean xs;
    p50 = S.percentile 50.0 xs;
    p90 = S.percentile 90.0 xs;
    p99 = S.percentile 99.0 xs;
  }

(** Histogram summaries, sorted by name.  Histograms are never empty: a name
    exists only once it has at least one observation. *)
let histograms () =
  locked (fun () ->
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) hists_tbl [])
  |> List.sort compare
  |> List.map (fun (k, xs) -> (k, summarize xs))

let histogram name =
  locked (fun () ->
      Hashtbl.find_opt hists_tbl name |> Option.map (fun r -> !r))
  |> Option.map summarize

(** [percentile name p] — the [p]-th percentile ([0.0]–[100.0]) of the
    named histogram, or [None] for a histogram with no observations.  The
    single accessor behind every p50/p90/p99 the exporters print, so no
    caller recomputes percentiles from raw observations. *)
let percentile name p =
  locked (fun () ->
      Hashtbl.find_opt hists_tbl name |> Option.map (fun r -> !r))
  |> Option.map (Namer_util.Stats.percentile p)

(** Spans aggregated by name, in order of first appearance.  This is the
    "stage" view: per-file [parse] spans fold into one row, etc. *)
let stages () =
  let tbl : (string, stage ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun s ->
      match Hashtbl.find_opt tbl s.name with
      | Some r ->
          r :=
            {
              !r with
              s_count = !r.s_count + 1;
              wall_ms = !r.wall_ms +. (s.dur_us /. 1e3);
              alloc_mb = !r.alloc_mb +. (s.alloc_bytes /. 1048576.0);
            }
      | None ->
          let r =
            ref
              {
                stage = s.name;
                s_count = 1;
                wall_ms = s.dur_us /. 1e3;
                alloc_mb = s.alloc_bytes /. 1048576.0;
              }
          in
          Hashtbl.replace tbl s.name r;
          order := s.name :: !order)
    (spans ());
  List.rev_map (fun name -> !(Hashtbl.find tbl name)) !order

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

(** Human-readable per-stage cost table (one row per distinct span name).
    [stages] overrides the live span buffer with a previously captured
    stage list. *)
let stage_table ?stages:captured () =
  let rows =
    List.map
      (fun s ->
        [
          s.stage;
          string_of_int s.s_count;
          Printf.sprintf "%.3f" s.wall_ms;
          Printf.sprintf "%.2f" s.alloc_mb;
        ])
      (match captured with Some l -> l | None -> stages ())
  in
  Namer_util.Tablefmt.render ~caption:"telemetry: pipeline stages"
    ~header:[ "stage"; "count"; "wall ms"; "alloc MB" ]
    rows

(** Human-readable histogram table: one row per histogram, the five-number
    summary rendered through {!percentile}'s underlying summaries. *)
let histogram_table () =
  let rows =
    List.map
      (fun (name, s) ->
        [
          name;
          string_of_int s.n;
          Printf.sprintf "%.3f" s.mean;
          Printf.sprintf "%.3f" s.p50;
          Printf.sprintf "%.3f" s.p90;
          Printf.sprintf "%.3f" s.p99;
        ])
      (histograms ())
  in
  Namer_util.Tablefmt.render ~caption:"telemetry: histograms"
    ~header:[ "histogram"; "n"; "mean"; "p50"; "p90"; "p99" ]
    rows

module J = Namer_util.Json

(** Chrome [trace_event] JSON: complete ("X") events sorted by start time,
    microsecond timestamps, one process/thread.  Load the file in
    chrome://tracing or https://ui.perfetto.dev. *)
let to_chrome_json () =
  let event (s : span) =
    J.Obj
      [
        ("name", J.String s.name);
        ("cat", J.String "namer");
        ("ph", J.String "X");
        ("ts", J.Float s.ts_us);
        ("dur", J.Float s.dur_us);
        ("pid", J.Int 1);
        ("tid", J.Int s.tid);
        ( "args",
          J.Obj
            (("alloc_bytes", J.Float s.alloc_bytes)
            :: List.map (fun (k, v) -> (k, J.String v)) s.args) );
      ]
  in
  J.Obj
    [
      ("traceEvents", J.List (List.map event (spans ())));
      ("displayTimeUnit", J.String "ms");
    ]

let summary_json (s : summary) =
  J.Obj
    [
      ("n", J.Int s.n);
      ("total", J.Float s.total);
      ("mean", J.Float s.mean);
      ("p50", J.Float s.p50);
      ("p90", J.Float s.p90);
      ("p99", J.Float s.p99);
    ]

(** [stages_to_json stages] renders a captured stage list (e.g. a snapshot
    taken between two instrumented runs being compared) as JSON. *)
let stages_to_json stage_list =
  J.Obj
    (List.map
       (fun s ->
         ( s.stage,
           J.Obj
             [
               ("count", J.Int s.s_count);
               ("wall_ms", J.Float s.wall_ms);
               ("alloc_mb", J.Float s.alloc_mb);
             ] ))
       stage_list)

let stages_json () = stages_to_json (stages ())

(** The whole metric registry — counters, histogram summaries and stage
    aggregates — as one JSON object ([namer stats], [BENCH_pipeline.json]). *)
let metrics_json () =
  J.Obj
    [
      ("counters", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) (counters ())));
      ( "histograms",
        J.Obj (List.map (fun (k, s) -> (k, summary_json s)) (histograms ())) );
      ("stages", stages_json ());
    ]

let write_json ~path (j : J.t) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string ~indent:2 j);
      output_char oc '\n')

let write_chrome_trace ~path = write_json ~path (to_chrome_json ())
let write_metrics ~path = write_json ~path (metrics_json ())

(* ------------------------------------------------------------------ *)
(* Progress reporting                                                  *)
(* ------------------------------------------------------------------ *)

(** [progressf fmt ...] prints one progress line to stderr (flushed), so
    stdout stays machine-parseable.  This is the CLI's replacement for bare
    [Printf.printf] progress lines. *)
let progressf fmt = Printf.eprintf ("[namer] " ^^ fmt ^^ "\n%!")
