(** The training pipeline of §5.1: standardize → PCA → linear classifier,
    with cross-validated model selection among SVM / logistic regression /
    LDA, and weight introspection in the *original* feature space for
    Table 9.

    The composition is linear end to end:
    score(x) = w · P((x − μ)/σ − m) + b, so the effective weight of original
    feature i is (Pᵀw)ᵢ / σᵢ — what {!effective_weights} reports. *)

type algo = Svm | Logreg | Lda

let algo_name = function Svm -> "SVM" | Logreg -> "LogReg" | Lda -> "LDA"

type t = {
  standardize : Preprocess.Standardize.t;
  pca : Preprocess.Pca.t;
  model : Linear_models.t;
  algo : algo;
}

let train ?(algo = Svm) ?(pca_variance = 0.99) ~prng (x : float array array)
    (y : bool array) : t =
  Namer_telemetry.Telemetry.with_span
    ~args:[ ("algo", algo_name algo); ("n", string_of_int (Array.length x)) ]
    "ml:train"
  @@ fun () ->
  let standardize = Preprocess.Standardize.fit x in
  let xs = Preprocess.Standardize.transform_all standardize x in
  let pca = Preprocess.Pca.fit ~variance:pca_variance xs in
  let xp = Preprocess.Pca.transform_all pca xs in
  let model =
    match algo with
    | Svm -> Linear_models.Svm.train ~prng xp y
    | Logreg -> Linear_models.Logreg.train xp y
    | Lda -> Linear_models.Lda.train xp y
  in
  { standardize; pca; model; algo }

let score t x =
  x
  |> Preprocess.Standardize.transform t.standardize
  |> Preprocess.Pca.transform t.pca
  |> Linear_models.score t.model

let predict t x = score t x >= 0.0

(** Classifier weights mapped back to the original features (Table 9). *)
let effective_weights t =
  let back = La.mat_vec (La.transpose t.pca.Preprocess.Pca.components) t.model.weights in
  Array.mapi (fun i w -> w /. t.standardize.Preprocess.Standardize.sigma.(i)) back

(* ------------------------------------------------------------------ *)
(* Snapshot representation                                             *)
(* ------------------------------------------------------------------ *)

(** The trained pipeline flattened to plain arrays for persistence: the
    standardization moments, the PCA basis and the linear model, nothing
    else — [of_repr (to_repr t)] predicts identically to [t]. *)
type repr = {
  r_algo : algo;
  r_mu : float array;
  r_sigma : float array;
  r_components : float array array;
  r_mean : float array;
  r_explained : float array;
  r_weights : float array;
  r_bias : float;
}

let to_repr t =
  {
    r_algo = t.algo;
    r_mu = t.standardize.Preprocess.Standardize.mu;
    r_sigma = t.standardize.Preprocess.Standardize.sigma;
    r_components = t.pca.Preprocess.Pca.components;
    r_mean = t.pca.Preprocess.Pca.mean;
    r_explained = t.pca.Preprocess.Pca.explained;
    r_weights = t.model.Linear_models.weights;
    r_bias = t.model.Linear_models.bias;
  }

let of_repr r =
  {
    standardize = { Preprocess.Standardize.mu = r.r_mu; sigma = r.r_sigma };
    pca =
      {
        Preprocess.Pca.components = r.r_components;
        mean = r.r_mean;
        explained = r.r_explained;
      };
    model = { Linear_models.weights = r.r_weights; bias = r.r_bias };
    algo = r.r_algo;
  }

(* ------------------------------------------------------------------ *)
(* Cross-validation and model selection                                *)
(* ------------------------------------------------------------------ *)

type cv_report = {
  accuracy : float;
  precision : float;
  recall : float;
  f1 : float;
}

(** [cross_validate ~prng ~repeats ~train_fraction ~algo x y] repeats a
    random 80/20 split (the paper: 30 repetitions) and averages the four
    metrics. *)
let cross_validate ?(repeats = 30) ?(train_fraction = 0.8) ~prng ~algo x y :
    cv_report =
  Namer_telemetry.Telemetry.with_span ~args:[ ("algo", algo_name algo) ] "ml:cv"
  @@ fun () ->
  let n = Array.length x in
  let accs = ref [] and precs = ref [] and recs = ref [] and f1s = ref [] in
  for _ = 1 to repeats do
    let order = Array.init n (fun i -> i) in
    Namer_util.Prng.shuffle prng order;
    let n_train = int_of_float (train_fraction *. float_of_int n) in
    let take lo hi = Array.init (hi - lo) (fun i -> order.(lo + i)) in
    let train_idx = take 0 n_train and test_idx = take n_train n in
    let sub idxs a = Array.map (fun i -> a.(i)) idxs in
    let model = train ~algo ~prng (sub train_idx x) (sub train_idx y) in
    let predicted = Array.to_list (Array.map (fun i -> predict model x.(i)) test_idx) in
    let actual = Array.to_list (sub test_idx y) in
    let c = Namer_util.Stats.confusion ~predicted ~actual in
    accs := Namer_util.Stats.accuracy c :: !accs;
    precs := Namer_util.Stats.precision c :: !precs;
    recs := Namer_util.Stats.recall c :: !recs;
    f1s := Namer_util.Stats.f1 c :: !f1s
  done;
  {
    accuracy = Namer_util.Stats.mean !accs;
    precision = Namer_util.Stats.mean !precs;
    recall = Namer_util.Stats.mean !recs;
    f1 = Namer_util.Stats.mean !f1s;
  }

(** Model selection as in §5.1: cross-validate each algorithm, pick the best
    by accuracy.  Returns the per-algorithm reports as well, printed by the
    stats bench. *)
let select_model ~prng x y : algo * (algo * cv_report) list =
  let reports =
    List.map
      (fun algo -> (algo, cross_validate ~prng ~algo x y))
      [ Svm; Logreg; Lda ]
  in
  let best =
    List.fold_left
      (fun (ba, br) (a, r) -> if r.accuracy > br.accuracy then (a, r) else (ba, br))
      (List.hd reports |> fun (a, r) -> (a, r))
      (List.tl reports)
  in
  (fst best, reports)
