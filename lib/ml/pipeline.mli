(** The §5.1 training pipeline: standardize → PCA → linear classifier, with
    cross-validated model selection (SVM / logistic regression / LDA) and
    weight introspection in the original feature space (Table 9). *)

type algo = Svm | Logreg | Lda

val algo_name : algo -> string

type t

val train :
  ?algo:algo -> ?pca_variance:float -> prng:Namer_util.Prng.t ->
  float array array -> bool array -> t

val score : t -> float array -> float
val predict : t -> float array -> bool

(** Classifier weights mapped back to the original features: the
    composition is linear end to end, so the effective weight of original
    feature i is (Pᵀw)ᵢ / σᵢ. *)
val effective_weights : t -> float array

(** The trained pipeline flattened to plain arrays for persistence;
    [of_repr (to_repr t)] predicts identically to [t]. *)
type repr = {
  r_algo : algo;
  r_mu : float array;
  r_sigma : float array;
  r_components : float array array;
  r_mean : float array;
  r_explained : float array;
  r_weights : float array;
  r_bias : float;
}

val to_repr : t -> repr
val of_repr : repr -> t

type cv_report = { accuracy : float; precision : float; recall : float; f1 : float }

(** Repeated random 80/20 splits (the paper: 30 repetitions), averaged. *)
val cross_validate :
  ?repeats:int -> ?train_fraction:float -> prng:Namer_util.Prng.t -> algo:algo ->
  float array array -> bool array -> cv_report

(** Cross-validate all three algorithms; returns the accuracy winner and
    every report. *)
val select_model :
  prng:Namer_util.Prng.t -> float array array -> bool array ->
  algo * (algo * cv_report) list
