(** Structured, leveled JSONL event log with trace/span correlation.

    One enabled sink per process.  Every event is one self-contained JSON
    line — timestamp, level, event name, trace id, span id, emitting
    domain, then event-specific fields — so a run's log can be followed
    with [jq] or shipped to any log collector without a parser of its own.

    {2 Span-context contract}

    A process run carries one {e trace id} (fresh per process, or set
    explicitly).  Each domain carries a {e span id} in domain-local
    storage; the id is created lazily per domain, so two domains never
    share a span.  {!Namer_parallel.Pool.submit} captures the submitting
    domain's context and runs the task under a {!child} of it — same
    trace, fresh span — so a [--jobs N] run logs one trace with distinct
    per-task (and hence per-domain) spans, and every event can be joined
    back to the submission that caused it.

    Emission is a single [ref] load when no sink is set; instrumentation
    points pay nothing unless the operator asked for a log. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug" | "info" | "warn" | "error"]. *)

val level_of_string : string -> level option

(** Trace/span correlation context. *)
type ctx = { trace : string; span : string }

val set_sink : ?min_level:level -> [ `File of string | `Stderr ] option -> unit
(** [set_sink (Some dest)] opens the log (truncating an existing file);
    [None] closes it.  Events below [min_level] (default [Debug] — keep
    everything) are dropped.  @raise Sys_error if the file cannot be
    opened. *)

val close : unit -> unit
(** Flush and close the sink ([set_sink None]). *)

val enabled : unit -> bool

val emit : ?fields:(string * Namer_util.Json.t) list -> level -> string -> unit
(** [emit ~fields level event] writes one JSONL line (flushed) when a sink
    is set and [level >= min_level]; otherwise does nothing.  [fields] are
    appended after the standard keys; field names should not collide with
    [ts]/[level]/[event]/[trace]/[span]/[domain]. *)

val current : unit -> ctx
(** This domain's context (trace id + its current span id). *)

val child : ctx -> ctx
(** Same trace, fresh span id — the context a task spawned from [ctx]
    should run under. *)

val with_ctx : ctx -> (unit -> 'a) -> 'a
(** Run [f] with this domain's context set to [ctx], restoring the
    previous context afterwards (also on exceptions). *)

val set_trace : string -> unit
(** Override the process trace id (tests; cross-process correlation). *)

val fresh_id : unit -> string
(** A fresh process-unique hex id from the span counter.  The serve
    daemon labels connections and requests with these, so every event of
    one request joins back to its connection without relying on
    domain-local context (connection handlers are threads that share a
    domain, where DLS would cross-talk). *)
