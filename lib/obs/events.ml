(** Structured event log.  See the interface for the span-context
    contract. *)

module J = Namer_util.Json

type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type ctx = { trace : string; span : string }

(* ------------------------------------------------------------------ *)
(* Sink state                                                          *)
(* ------------------------------------------------------------------ *)

let mutex = Mutex.create ()
let enabled_flag = ref false
let min_level_ref = ref Debug

type sink = Closed | File of out_channel | Stderr

let sink = ref Closed

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let close_unlocked () =
  (match !sink with
  | File oc -> ( try close_out oc with Sys_error _ -> ())
  | Stderr -> flush stderr
  | Closed -> ());
  sink := Closed;
  enabled_flag := false

let set_sink ?(min_level = Debug) dest =
  let lvl = min_level in
  locked (fun () ->
      close_unlocked ();
      match dest with
      | None -> ()
      | Some d ->
          sink := (match d with `File path -> File (open_out path) | `Stderr -> Stderr);
          min_level_ref := lvl;
          enabled_flag := true)

let close () = set_sink None
let enabled () = !enabled_flag

(* ------------------------------------------------------------------ *)
(* Trace/span context                                                  *)
(* ------------------------------------------------------------------ *)

(* The trace id identifies one process run: derived from wall clock and
   pid, so two runs appending to the same log remain distinguishable. *)
let trace_id =
  ref
    (lazy
      (let t = Unix.gettimeofday () in
       Printf.sprintf "%08x%06x"
         (int_of_float t land 0xffffffff)
         ((Unix.getpid () lxor int_of_float (t *. 1e6)) land 0xffffff)))

let set_trace s = trace_id := lazy s

(* Span ids are allocated from one process-wide counter, so they are
   unique across domains; each domain's root span is created lazily the
   first time the domain asks for its context. *)
let span_counter = Atomic.make 0
let fresh_span () = Printf.sprintf "%06x" (Atomic.fetch_and_add span_counter 1)

let ctx_key : ctx option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current () =
  let r = Domain.DLS.get ctx_key in
  match !r with
  | Some c -> c
  | None ->
      let c = { trace = Lazy.force !trace_id; span = fresh_span () } in
      r := Some c;
      c

let child c = { c with span = fresh_span () }
let fresh_id = fresh_span

let with_ctx c f =
  let r = Domain.DLS.get ctx_key in
  let saved = !r in
  r := Some c;
  Fun.protect ~finally:(fun () -> r := saved) f

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let emit ?(fields = []) level event =
  if !enabled_flag && severity level >= severity !min_level_ref then begin
    let c = current () in
    let line =
      J.to_string
        (J.Obj
           ([
              ("ts", J.Float (Unix.gettimeofday ()));
              ("level", J.String (level_name level));
              ("event", J.String event);
              ("trace", J.String c.trace);
              ("span", J.String c.span);
              ("domain", J.Int (Domain.self () :> int));
            ]
           @ fields))
    in
    locked (fun () ->
        match !sink with
        | Closed -> ()
        | File oc ->
            output_string oc line;
            output_char oc '\n';
            flush oc
        | Stderr ->
            prerr_string line;
            prerr_newline ())
  end
