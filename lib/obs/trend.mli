(** Cross-run trend aggregation over the {!Ledger} — the history behind
    [namer report].

    Each ledger record reduces to one {!row} (wall clock, allocation,
    cache hit rate, skip count, peak RSS).  {!table} renders the last N
    rows with deltas against the immediately preceding run of the same
    subcommand, and {!check} turns the same comparison into a gate:
    the latest run of each subcommand is compared against the mean of its
    previous runs, and regressions past the configured thresholds are
    reported as failures (the history-based counterpart of
    [check_bench]'s single-baseline gate). *)

type row = {
  ts : float;  (** wall-clock timestamp of the run (seconds since epoch) *)
  cmd : string;  (** subcommand: train/scan/fuzz/bench/... *)
  git : string;  (** [git describe] at run time *)
  wall_ms : float;  (** total instrumented wall clock, ms *)
  alloc_mb : float;  (** total instrumented GC allocation, MB *)
  cache_hits : int;
  cache_misses : int;
  skipped : int;
  peak_rss_kb : int;
}

val hit_rate : row -> float option
(** Cache hit ratio in [0,1], or [None] when the run probed no cache. *)

val row_of_record : Namer_util.Json.t -> row option
(** Decode one ledger record; [None] for records from an unknown schema
    or missing required fields (tolerated, never an error). *)

val rows_of_records : Namer_util.Json.t list -> row list
(** All decodable rows, ledger (chronological) order. *)

type thresholds = {
  wall_pct : float;
      (** flag when latest wall clock exceeds the baseline mean by more
          than this percentage (e.g. [25.0]) *)
  alloc_pct : float;  (** same, for allocation *)
  hit_rate_drop : float;
      (** flag when the cache hit ratio falls by more than this many
          percentage points (e.g. [10.0]) *)
}

val default_thresholds : thresholds
(** [{ wall_pct = 50.0; alloc_pct = 50.0; hit_rate_drop = 20.0 }] — loose
    enough for shared-CI noise, tight enough to catch a lost cache. *)

val table : ?last:int -> row list -> string
(** Trend table of the last [last] (default 10) rows: per-run wall/alloc/
    hit-rate/RSS plus the delta vs the previous run of the same
    subcommand. *)

val check :
  ?last:int -> ?thresholds:thresholds -> row list -> (unit, string list) result
(** Gate the latest run of each subcommand against the mean of up to
    [last] (default 10) preceding runs of that subcommand.  [Ok ()] when
    nothing regressed or there is no history to compare against;
    [Error msgs] with one human-readable message per regression. *)
