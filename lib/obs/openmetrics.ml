(** OpenMetrics renderer/validator.  See the interface for format notes. *)

module J = Namer_util.Json

type metric =
  | Counter of { name : string; help : string; labels : (string * string) list; value : float }
  | Gauge of { name : string; help : string; labels : (string * string) list; value : float }
  | Summary of {
      name : string;
      help : string;
      quantiles : (float * float) list;
      sum : float;
      count : int;
    }

(* ------------------------------------------------------------------ *)
(* Sanitization and escaping                                           *)
(* ------------------------------------------------------------------ *)

let name_char first c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | '0' .. '9' -> not first
  | _ -> false

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  Anything else becomes '_'. *)
let sanitize_name s =
  if s = "" then "_"
  else begin
    let b = Bytes.of_string s in
    Bytes.iteri
      (fun i c -> if not (name_char (i = 0) c) then Bytes.set b i '_')
      b;
    Bytes.to_string b
  end

(* Label names may not contain ':'. *)
let sanitize_label s =
  let s = sanitize_name s in
  String.map (function ':' -> '_' | c -> c) s

let escape_label_value s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Sample values: OpenMetrics wants plain decimal floats. *)
let render_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let metric_name = function
  | Counter { name; _ } | Gauge { name; _ } | Summary { name; _ } -> sanitize_name name

let metric_help = function
  | Counter { help; _ } | Gauge { help; _ } | Summary { help; _ } -> help

let metric_type = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Summary _ -> "summary"

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_labels b labels =
  match labels with
  | [] -> ()
  | _ ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (sanitize_label k);
          Buffer.add_string b "=\"";
          Buffer.add_string b (escape_label_value v);
          Buffer.add_char b '"')
        labels;
      Buffer.add_char b '}'

let render_sample b name labels value =
  Buffer.add_string b name;
  render_labels b labels;
  Buffer.add_char b ' ';
  Buffer.add_string b (render_value value);
  Buffer.add_char b '\n'

let render metrics =
  let b = Buffer.create 4096 in
  (* group samples by family, one HELP/TYPE header per family, families in
     first-occurrence order *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let by_family : (string, metric list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun m ->
      let fam = metric_name m in
      match Hashtbl.find_opt by_family fam with
      | Some r -> r := m :: !r
      | None ->
          Hashtbl.replace by_family fam (ref [ m ]);
          if not (Hashtbl.mem seen fam) then begin
            Hashtbl.replace seen fam ();
            order := fam :: !order
          end)
    metrics;
  List.iter
    (fun fam ->
      let members = List.rev !(Hashtbl.find by_family fam) in
      let first = List.hd members in
      (* help text: newlines/backslashes escaped per the comment-line rules *)
      let help =
        String.concat "\\n" (String.split_on_char '\n' (metric_help first))
      in
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" fam help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" fam (metric_type first));
      List.iter
        (fun m ->
          match m with
          | Counter { labels; value; _ } ->
              (* counters expose the mandatory _total sample *)
              render_sample b (fam ^ "_total") labels value
          | Gauge { labels; value; _ } -> render_sample b fam labels value
          | Summary { quantiles; sum; count; _ } ->
              List.iter
                (fun (q, v) ->
                  render_sample b fam [ ("quantile", Printf.sprintf "%g" q) ] v)
                quantiles;
              render_sample b (fam ^ "_sum") [] sum;
              render_sample b (fam ^ "_count") [] (float_of_int count))
        members)
    (List.rev !order);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate text =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let is_name_ok s =
    s <> "" && String.length s > 0
    && name_char true s.[0]
    && String.for_all (fun c -> name_char false c) (String.sub s 1 (String.length s - 1))
  in
  (* parse one sample line: name[{labels}] value *)
  let check_sample lineno line =
    let n = String.length line in
    let i = ref 0 in
    while !i < n && name_char (!i = 0) line.[!i] do
      incr i
    done;
    if !i = 0 then err "line %d: sample has no metric name" lineno
    else begin
      let after_labels =
        if !i < n && line.[!i] = '{' then begin
          incr i;
          let ok = ref true and closed = ref false and msg = ref "" in
          (* label pairs: name="value" with \-escapes, comma-separated *)
          let rec labels () =
            let start = !i in
            while !i < n && name_char (!i = start) line.[!i] do
              incr i
            done;
            if !i = start then begin
              ok := false;
              msg := "empty label name"
            end
            else if !i + 1 >= n || line.[!i] <> '=' || line.[!i + 1] <> '"' then begin
              ok := false;
              msg := "label not followed by =\""
            end
            else begin
              i := !i + 2;
              let rec value () =
                if !i >= n then begin
                  ok := false;
                  msg := "unterminated label value"
                end
                else
                  match line.[!i] with
                  | '"' -> incr i
                  | '\\' ->
                      if
                        !i + 1 < n
                        && (match line.[!i + 1] with
                           | '\\' | '"' | 'n' -> true
                           | _ -> false)
                      then begin
                        i := !i + 2;
                        value ()
                      end
                      else begin
                        ok := false;
                        msg := "bad escape in label value"
                      end
                  | _ ->
                      incr i;
                      value ()
              in
              value ();
              if !ok then
                if !i < n && line.[!i] = ',' then begin
                  incr i;
                  labels ()
                end
                else if !i < n && line.[!i] = '}' then begin
                  incr i;
                  closed := true
                end
                else begin
                  ok := false;
                  msg := "label list not closed"
                end
            end
          in
          labels ();
          if not !ok then Error (Printf.sprintf "line %d: %s" lineno !msg)
          else if not !closed then err "line %d: label list not closed" lineno
          else Ok ()
        end
        else Ok ()
      in
      match after_labels with
      | Error _ as e -> e
      | Ok () ->
          if !i >= n || line.[!i] <> ' ' then
            err "line %d: no space before sample value" lineno
          else begin
            let rest = String.sub line (!i + 1) (n - !i - 1) in
            (* value [timestamp]: every field must parse as a number *)
            let fields =
              List.filter (fun s -> s <> "") (String.split_on_char ' ' rest)
            in
            if fields = [] then err "line %d: missing sample value" lineno
            else if
              List.for_all
                (fun f ->
                  match float_of_string_opt f with
                  | Some _ -> true
                  | None -> f = "+Inf" || f = "-Inf" || f = "NaN")
                fields
            then Ok ()
            else err "line %d: malformed sample value %S" lineno rest
          end
    end
  in
  let lines = String.split_on_char '\n' text in
  (* a trailing newline leaves one empty final fragment — drop it *)
  let lines =
    match List.rev lines with "" :: rev -> List.rev rev | _ -> lines
  in
  let rec go lineno = function
    | [] -> err "missing # EOF terminator"
    | [ "# EOF" ] -> Ok ()
    | line :: rest -> (
        if line = "# EOF" then err "line %d: # EOF before end of input" lineno
        else if line = "" then err "line %d: blank line" lineno
        else if String.length line > 0 && line.[0] = '#' then begin
          match String.split_on_char ' ' line with
          | "#" :: ("HELP" | "UNIT") :: name :: _ when is_name_ok name -> go (lineno + 1) rest
          | "#" :: "TYPE" :: name :: [ ty ]
            when is_name_ok name
                 && List.mem ty
                      [
                        "counter"; "gauge"; "summary"; "histogram"; "untyped";
                        "info"; "stateset"; "gaugehistogram"; "unknown";
                      ] ->
              go (lineno + 1) rest
          | _ -> err "line %d: malformed comment line %S" lineno line
        end
        else
          match check_sample lineno line with
          | Ok () -> go (lineno + 1) rest
          | Error _ as e -> e)
  in
  go 1 lines

(* ------------------------------------------------------------------ *)
(* From the telemetry registry                                         *)
(* ------------------------------------------------------------------ *)

let of_metrics_json json =
  let assoc name = function J.Obj fields -> List.assoc_opt name fields | _ -> None in
  let number = function
    | Some (J.Float f) -> Some f
    | Some (J.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  match json with
  | J.Obj _ ->
      let metrics = ref [] in
      let add m = metrics := m :: !metrics in
      (match assoc "counters" json with
      | Some (J.Obj cs) ->
          List.iter
            (fun (k, v) ->
              match number (Some v) with
              | Some value ->
                  add
                    (Counter
                       {
                         name = "namer_" ^ sanitize_name k;
                         help = Printf.sprintf "telemetry counter %s" k;
                         labels = [];
                         value;
                       })
              | None -> ())
            cs
      | _ -> ());
      (match assoc "histograms" json with
      | Some (J.Obj hs) ->
          List.iter
            (fun (k, h) ->
              match
                ( number (assoc "p50" h),
                  number (assoc "p90" h),
                  number (assoc "p99" h),
                  number (assoc "total" h),
                  number (assoc "n" h) )
              with
              | Some p50, Some p90, Some p99, Some total, Some n ->
                  add
                    (Summary
                       {
                         name = "namer_" ^ sanitize_name k;
                         help = Printf.sprintf "telemetry histogram %s" k;
                         quantiles = [ (0.5, p50); (0.9, p90); (0.99, p99) ];
                         sum = total;
                         count = int_of_float n;
                       })
              | _ -> ())
            hs
      | _ -> ());
      (match assoc "stages" json with
      | Some (J.Obj ss) ->
          List.iter
            (fun (stage, s) ->
              let label = [ ("stage", stage) ] in
              (match number (assoc "wall_ms" s) with
              | Some v ->
                  add
                    (Gauge
                       {
                         name = "namer_stage_wall_ms";
                         help = "cumulative wall-clock per pipeline stage (ms)";
                         labels = label;
                         value = v;
                       })
              | None -> ());
              (match number (assoc "alloc_mb" s) with
              | Some v ->
                  add
                    (Gauge
                       {
                         name = "namer_stage_alloc_mb";
                         help = "cumulative GC allocation per pipeline stage (MB)";
                         labels = label;
                         value = v;
                       })
              | None -> ());
              match number (assoc "count" s) with
              | Some v ->
                  add
                    (Gauge
                       {
                         name = "namer_stage_runs";
                         help = "span count per pipeline stage";
                         labels = label;
                         value = v;
                       })
              | None -> ())
            ss
      | _ -> ());
      Ok (List.rev !metrics)
  | _ -> Error "metric registry is not a JSON object"

let write ~path metrics =
  let text = render metrics in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc text;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path
