(** OpenMetrics / Prometheus text exposition: render the metric registry
    as a textfile-collector file, and validate exposition output.

    The renderer emits the OpenMetrics text format (a strict superset of
    the Prometheus text format for the metric types used here): one
    [# HELP] and [# TYPE] line per metric family, then the family's
    samples, and a final [# EOF] marker.  Counters render with the
    mandatory [_total] sample suffix; histogram summaries render as
    [summary] families with [quantile] labels plus [_sum]/[_count].
    Metric and label names are sanitized to the allowed character set and
    label values are escaped (backslash, double quote, newline) per the
    spec, so arbitrary stage names and file paths survive as labels. *)

type metric =
  | Counter of { name : string; help : string; labels : (string * string) list; value : float }
  | Gauge of { name : string; help : string; labels : (string * string) list; value : float }
  | Summary of {
      name : string;
      help : string;
      quantiles : (float * float) list;  (** (quantile in (0,1), value) *)
      sum : float;
      count : int;
    }

val metric_name : metric -> string
(** Sanitized family name of a metric. *)

val render : metric list -> string
(** Exposition text.  Samples of the same family are grouped under one
    [# HELP]/[# TYPE] header (first [help] wins); families appear in first
    occurrence order; the output always ends with [# EOF]. *)

val validate : string -> (unit, string) result
(** Structural validation of exposition text: every line is a comment
    ([# HELP]/[# TYPE]/[# UNIT]/[# EOF]) or a well-formed sample
    ([name{label="value",...} number]), label values are properly
    escaped/terminated, and the text ends with exactly one [# EOF].
    Returns [Error msg] naming the first offending line. *)

val of_metrics_json : Namer_util.Json.t -> (metric list, string) result
(** Map a {!Namer_telemetry.Telemetry.metrics_json} registry — counters,
    histogram summaries, stage aggregates — onto metric families:
    [namer_<counter>_total], [namer_<histogram>] summaries, and
    [namer_stage_{wall_ms,alloc_mb,runs}] gauges labeled by stage. *)

val write : path:string -> metric list -> unit
(** Atomically (temp + rename) write [render metrics] to [path] — the
    node-exporter textfile collector requires the rename so it never
    scrapes a half-written file.  @raise Sys_error if the directory is not
    writable. *)
