(** The run ledger: one append-only JSONL file of self-contained run
    records that survives the process.

    Every CLI/bench invocation appends exactly one record to
    [<dir>/ledger.jsonl] — schema-versioned, carrying the run's identity
    (argv, git describe, subcommand), its configuration, input/model
    digests, per-stage wall/alloc spans, counters, cache hit/miss, skip
    counts and peak RSS — so cost and precision trends can be compared
    {e across} runs, not just inside one ({!Trend}, [namer report]).

    {2 Crash safety}

    Appends are one [O_APPEND] write of a single complete line, so
    concurrent appends from separate processes never interleave.  A record
    torn by a crash mid-write leaves a partial line; {!read} drops any
    line that does not parse and the final fragment of a file without a
    trailing newline (counted in [dropped], never an error), and
    {!append} starts on a fresh line even after a torn write — one crash
    costs at most its own record. *)

val schema_version : int

val default_dir : unit -> string
(** [$XDG_STATE_HOME/namer] (fallback [~/.local/state/namer], then the
    temp dir) — the same state directory as the persisted metric
    registry. *)

val path : dir:string -> string
(** [<dir>/ledger.jsonl]. *)

val append : dir:string -> Namer_util.Json.t -> unit
(** Append one record as a single compact JSONL line (atomic [O_APPEND]
    write; creates [dir] as needed).  If the file ends in a torn partial
    line, a newline is prepended so this record still lands parseable.
    @raise Sys_error if the directory cannot be created or written. *)

type read_result = {
  records : Namer_util.Json.t list;  (** parseable records, file order *)
  dropped : int;  (** torn/corrupt lines skipped during recovery *)
}

val read : dir:string -> read_result
(** Read every recoverable record.  A missing file is an empty ledger. *)

val git_describe : unit -> string
(** [git describe --always --dirty] of the current directory, or
    ["unknown"] outside a repository / without git. *)

val peak_rss_kb : unit -> int
(** Peak resident set size of this process ([VmHWM] from
    [/proc/self/status]), or [-1] where unavailable. *)

val source_digest : (string * string) list -> string
(** Hex digest identifying a scanned input set: MD5 over the sorted
    [(path, MD5 source)] pairs, so the same tree always digests the same
    and any content or path change shows up in the ledger. *)

val source_digest_refs : (string * (unit -> string)) list -> string
(** {!source_digest} over lazily-loaded sources: each [(path, load)] is
    read and hashed one file at a time, so the input set never has to be
    resident at once.  Same digest as {!source_digest} on equal content. *)
