(** Append-only run ledger.  See the interface for the crash-safety
    contract. *)

module J = Namer_util.Json

let schema_version = 1

let default_dir () =
  let base =
    match Sys.getenv_opt "XDG_STATE_HOME" with
    | Some d when d <> "" -> d
    | _ -> (
        match Sys.getenv_opt "HOME" with
        | Some h when h <> "" -> Filename.concat h ".local/state"
        | _ -> Filename.get_temp_dir_name ())
  in
  Filename.concat base "namer"

let path ~dir = Filename.concat dir "ledger.jsonl"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let append ~dir record =
  mkdir_p dir;
  let file = path ~dir in
  let fd = Unix.openfile file [ Unix.O_RDWR; Unix.O_APPEND; Unix.O_CREAT ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      (* recover from a torn previous append: if the file does not end in a
         newline, terminate the partial line first so the reader drops only
         the torn fragment, never this record *)
      let needs_nl =
        let size = (Unix.fstat fd).Unix.st_size in
        size > 0
        &&
        let buf = Bytes.create 1 in
        ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
        Unix.read fd buf 0 1 = 1 && Bytes.get buf 0 <> '\n'
      in
      (* one write: O_APPEND makes concurrent appends land whole, in some
         order, never interleaved byte-wise *)
      let line = J.to_string record ^ "\n" in
      write_all fd (if needs_nl then "\n" ^ line else line))

type read_result = { records : J.t list; dropped : int }

let read ~dir =
  let file = path ~dir in
  if not (Sys.file_exists file) then { records = []; dropped = 0 }
  else begin
    let ic = open_in_bin file in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let complete, tail_dropped =
      match String.rindex_opt content '\n' with
      | None -> ("", if content = "" then 0 else 1)
      | Some i ->
          ( String.sub content 0 i,
            if i = String.length content - 1 then 0 else 1 )
    in
    let records = ref [] and dropped = ref tail_dropped in
    List.iter
      (fun line ->
        if String.trim line <> "" then
          match J.parse line with
          | Ok r -> records := r :: !records
          | Error _ -> incr dropped)
      (String.split_on_char '\n' complete);
    { records = List.rev !records; dropped = !dropped }
  end

let git_describe () =
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> -1
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go () =
            match input_line ic with
            | exception End_of_file -> -1
            | line ->
                if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
                  let digits =
                    String.to_seq line
                    |> Seq.filter (fun c -> c >= '0' && c <= '9')
                    |> String.of_seq
                  in
                  match int_of_string_opt digits with Some kb -> kb | None -> -1
                else go ()
          in
          go ())

let source_digest files =
  let per_file =
    List.map (fun (p, src) -> p ^ ":" ^ Digest.to_hex (Digest.string src)) files
    |> List.sort compare
  in
  Digest.to_hex (Digest.string (String.concat "\n" per_file))

let source_digest_refs files =
  let per_file =
    List.map (fun (p, load) -> p ^ ":" ^ Digest.to_hex (Digest.string (load ()))) files
    |> List.sort compare
  in
  Digest.to_hex (Digest.string (String.concat "\n" per_file))
