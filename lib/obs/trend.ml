(** Cross-run trend aggregation.  See the interface. *)

module J = Namer_util.Json

type row = {
  ts : float;
  cmd : string;
  git : string;
  wall_ms : float;
  alloc_mb : float;
  cache_hits : int;
  cache_misses : int;
  skipped : int;
  peak_rss_kb : int;
}

let hit_rate r =
  let total = r.cache_hits + r.cache_misses in
  if total = 0 then None else Some (float_of_int r.cache_hits /. float_of_int total)

let assoc name = function J.Obj fields -> List.assoc_opt name fields | _ -> None

let number = function
  | Some (J.Float f) -> Some f
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

let int_field j name = match number (assoc name j) with Some f -> int_of_float f | None -> 0
let string_field j name ~default =
  match assoc name j with Some (J.String s) -> s | _ -> default

(* Total instrumented wall/alloc: sum over the record's stage aggregates. *)
let stage_totals j =
  match assoc "stages" j with
  | Some (J.Obj stages) ->
      List.fold_left
        (fun (w, a) (_, s) ->
          ( w +. Option.value ~default:0.0 (number (assoc "wall_ms" s)),
            a +. Option.value ~default:0.0 (number (assoc "alloc_mb" s)) ))
        (0.0, 0.0) stages
  | _ -> (0.0, 0.0)

let row_of_record j =
  match number (assoc "schema" j) with
  | Some v when int_of_float v = Ledger.schema_version -> (
      match (number (assoc "ts" j), assoc "cmd" j) with
      | Some ts, Some (J.String cmd) ->
          let cache = match assoc "cache" j with Some c -> c | None -> J.Obj [] in
          let wall_ms, alloc_mb = stage_totals j in
          Some
            {
              ts;
              cmd;
              git = string_field j "git" ~default:"unknown";
              wall_ms;
              alloc_mb;
              cache_hits = int_field cache "hits";
              cache_misses = int_field cache "misses";
              skipped = int_field j "skipped";
              peak_rss_kb = int_field j "peak_rss_kb";
            }
      | _ -> None)
  | _ -> None

let rows_of_records records = List.filter_map row_of_record records

type thresholds = { wall_pct : float; alloc_pct : float; hit_rate_drop : float }

let default_thresholds = { wall_pct = 50.0; alloc_pct = 50.0; hit_rate_drop = 20.0 }

let take_last n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

let fmt_time ts =
  let tm = Unix.localtime ts in
  Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let fmt_delta cur prev =
  if prev = 0.0 then "-"
  else
    let pct = (cur -. prev) /. prev *. 100.0 in
    Printf.sprintf "%+.1f%%" pct

let fmt_hit_rate r =
  match hit_rate r with
  | Some h -> Printf.sprintf "%.0f%%" (h *. 100.0)
  | None -> "-"

let table ?(last = 10) rows =
  let shown = take_last last rows in
  (* delta columns compare each run to the previous run of the SAME
     subcommand anywhere in the full history, so interleaved train/scan
     runs don't compare apples to oranges *)
  let prev_of =
    let tbl : (string, row) Hashtbl.t = Hashtbl.create 8 in
    let pairs =
      List.map
        (fun r ->
          let p = Hashtbl.find_opt tbl r.cmd in
          Hashtbl.replace tbl r.cmd r;
          (r, p))
        rows
    in
    fun r -> List.assq_opt r pairs |> Option.join
  in
  let body =
    List.map
      (fun r ->
        let prev = prev_of r in
        let d f = match prev with Some p -> fmt_delta (f r) (f p) | None -> "-" in
        [
          fmt_time r.ts;
          r.cmd;
          r.git;
          Printf.sprintf "%.1f" r.wall_ms;
          d (fun r -> r.wall_ms);
          Printf.sprintf "%.1f" r.alloc_mb;
          d (fun r -> r.alloc_mb);
          fmt_hit_rate r;
          string_of_int r.skipped;
          (if r.peak_rss_kb < 0 then "-"
           else Printf.sprintf "%.1f" (float_of_int r.peak_rss_kb /. 1024.0));
        ])
      shown
  in
  Namer_util.Tablefmt.render ~caption:"ledger: run history"
    ~header:
      [ "when"; "cmd"; "git"; "wall ms"; "dwall%"; "alloc MB"; "dalloc%"; "hit"; "skip"; "RSS MB" ]
    body

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let check ?(last = 10) ?(thresholds = default_thresholds) rows =
  (* group chronologically per subcommand *)
  let by_cmd : (string, row list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun r ->
      match Hashtbl.find_opt by_cmd r.cmd with
      | Some l -> l := r :: !l
      | None ->
          Hashtbl.replace by_cmd r.cmd (ref [ r ]);
          order := r.cmd :: !order)
    rows;
  let failures = ref [] in
  List.iter
    (fun cmd ->
      match List.rev !(Hashtbl.find by_cmd cmd) with
      | [] | [ _ ] -> () (* no history: nothing to gate against *)
      | history ->
          let latest = List.nth history (List.length history - 1) in
          let baseline =
            take_last last (List.filteri (fun i _ -> i < List.length history - 1) history)
          in
          let flag what cur base limit_pct =
            if base > 0.0 then
              let pct = (cur -. base) /. base *. 100.0 in
              if pct > limit_pct then
                failures :=
                  Printf.sprintf
                    "%s: %s regressed %.1f%% (%.1f vs baseline mean %.1f, limit +%.1f%%)"
                    cmd what pct cur base limit_pct
                  :: !failures
          in
          flag "wall clock (ms)" latest.wall_ms
            (mean (List.map (fun r -> r.wall_ms) baseline))
            thresholds.wall_pct;
          flag "allocation (MB)" latest.alloc_mb
            (mean (List.map (fun r -> r.alloc_mb) baseline))
            thresholds.alloc_pct;
          (match (hit_rate latest, List.filter_map hit_rate baseline) with
          | Some cur, (_ :: _ as base_rates) ->
              let base = mean base_rates in
              let drop = (base -. cur) *. 100.0 in
              if drop > thresholds.hit_rate_drop then
                failures :=
                  Printf.sprintf
                    "%s: cache hit rate dropped %.1f points (%.0f%% vs baseline mean %.0f%%, limit %.1f)"
                    cmd drop (cur *. 100.0) (base *. 100.0) thresholds.hit_rate_drop
                  :: !failures
          | _ -> ()))
    (List.rev !order);
  match List.rev !failures with [] -> Ok () | msgs -> Error msgs
