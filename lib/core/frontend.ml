(** Language dispatch: one interface over the Python and Java frontends and
    their static analyses, so the rest of the pipeline is language-free. *)

module Tree = Namer_tree.Tree
module Origins = Namer_namepath.Origins
module Telemetry = Namer_telemetry.Telemetry
module Fault = Namer_util.Fault

(** One program statement, ready for AST+ transformation. *)
type stmt = {
  tree : Tree.t;
  line : int;
  cls : string option;
  fn : string option;
}

type parsed_file = {
  stmts : stmt list;
  origins : cls:string option -> fn:string option -> Origins.t;
      (** resolvers from the §4.1 analyses; the constant
          {!Origins.none} when analysis is disabled *)
}

exception Frontend_error of string

(** [parse_file lang ~use_analysis source] parses one source file and runs
    its per-file analysis.  Raises {!Frontend_error} on syntax errors (the
    corpus generator emits parseable code; real-world use would skip the
    file, which is what {!parse_file_opt} does). *)
let parse_file (lang : Namer_corpus.Corpus.lang) ~use_analysis (source : string) :
    parsed_file =
  Fault.check "frontend.parse";
  match lang with
  | Namer_corpus.Corpus.Python ->
      let m =
        Telemetry.with_span ~record_ms:"parse_ms_per_file" "parse" @@ fun () ->
        try Namer_pylang.Py_parser.parse_module source with
        | Namer_pylang.Py_parser.Parse_error (msg, line) ->
            raise (Frontend_error (Printf.sprintf "python parse error L%d: %s" line msg))
        | Namer_pylang.Py_lexer.Lex_error (msg, line) ->
            raise (Frontend_error (Printf.sprintf "python lex error L%d: %s" line msg))
      in
      Telemetry.count "frontend.files_parsed";
      let stmts =
        Namer_pylang.Py_lower.lower_stmts m
        |> List.map (fun (s : Namer_pylang.Py_lower.stmt_info) ->
               {
                 tree = s.tree;
                 line = s.line;
                 cls = s.enclosing_class;
                 fn = s.enclosing_function;
               })
      in
      let origins =
        if use_analysis then begin
          let analysis =
            Telemetry.with_span "analyze" @@ fun () ->
            Namer_analysis.Py_analysis.analyze m
          in
          fun ~cls ~fn -> Namer_analysis.Py_analysis.origins_for analysis ~cls ~fn
        end
        else fun ~cls:_ ~fn:_ -> Origins.none
      in
      { stmts; origins }
  | Namer_corpus.Corpus.Java ->
      let u =
        Telemetry.with_span ~record_ms:"parse_ms_per_file" "parse" @@ fun () ->
        try Namer_javalang.Java_parser.parse_compilation_unit source with
        | Namer_javalang.Java_parser.Parse_error (msg, line) ->
            raise (Frontend_error (Printf.sprintf "java parse error L%d: %s" line msg))
        | Namer_javalang.Java_lexer.Lex_error (msg, line) ->
            raise (Frontend_error (Printf.sprintf "java lex error L%d: %s" line msg))
      in
      Telemetry.count "frontend.files_parsed";
      let stmts =
        Namer_javalang.Java_lower.lower_unit u
        |> List.map (fun (s : Namer_javalang.Java_lower.stmt_info) ->
               {
                 tree = s.tree;
                 line = s.line;
                 cls = s.enclosing_class;
                 fn = s.enclosing_function;
               })
      in
      let origins =
        if use_analysis then begin
          let analysis =
            Telemetry.with_span "analyze" @@ fun () ->
            Namer_analysis.Java_analysis.analyze u
          in
          fun ~cls ~fn -> Namer_analysis.Java_analysis.origins_for analysis ~cls ~fn
        end
        else fun ~cls:_ ~fn:_ -> Origins.none
      in
      { stmts; origins }

(* Real-world inputs fail in more ways than clean syntax errors: a
   deep-nesting bomb overflows the parser's stack ([Stack_overflow]), a
   hostile byte sequence can trip the lexer's string machinery
   ([Invalid_argument]), an armed fault point raises [Fault.Injected].
   One pathological file must cost exactly that file, never the scan, so
   everything catchable is mapped to [Error] here — except [Out_of_memory],
   which is a process-level condition no per-file skip can make true. *)
let parse_file_res lang ~use_analysis source =
  match parse_file lang ~use_analysis source with
  | parsed -> Ok parsed
  | exception Frontend_error msg -> Error msg
  | exception Out_of_memory -> raise Out_of_memory
  | exception e -> Error (Printexc.to_string e)

let parse_file_opt lang ~use_analysis source =
  match parse_file_res lang ~use_analysis source with Ok p -> Some p | Error _ -> None

(** Whole-file tree for commit diffing. *)
let whole_tree (lang : Namer_corpus.Corpus.lang) (source : string) : Tree.t option =
  try
    match lang with
    | Namer_corpus.Corpus.Python ->
        Some (Namer_pylang.Py_lower.module_tree (Namer_pylang.Py_parser.parse_module source))
    | Namer_corpus.Corpus.Java ->
        Some
          (Namer_javalang.Java_lower.unit_tree
             (Namer_javalang.Java_parser.parse_compilation_unit source))
  with _ -> None
