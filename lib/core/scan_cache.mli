(** Content-addressed per-file scan cache (the incremental half of the
    train-once / scan-many workflow).

    One entry holds the final per-file reports of a classifier-free scan —
    a pure function of (file content, model), so the cache key is the pair
    (model hash, MD5 of the source bytes) and the file's path on disk is
    irrelevant to the entry.  Layout under the cache root:

    {v <dir>/<model-hash>/<md5-of-source>.rpt v}

    Entries are [NAMERRPT] {!Namer_model.Snapshot} containers; anything
    that fails to decode — torn write, format drift, disk rot — is a
    self-healing miss (the caller rescans and overwrites).  A model-hash
    change changes the subdirectory, invalidating every entry at once. *)

(** One cached report, file-path-free (the caller re-attaches the path):
    content-identical files at different paths share one entry. *)
type entry = {
  e_line : int;
  e_prefix : string;  (** offending prefix key *)
  e_found : string;
  e_suggested : string;
  e_kind : string;  (** "consistency" | "confusing-word" | "ordering" *)
}

val src_digest : string -> string
(** Cache key half for a file: hex MD5 of its source bytes. *)

val find : dir:string -> model_hash:string -> src_digest:string -> entry list option
(** [None] on absent or undecodable entries (a miss, never an error). *)

val store : dir:string -> model_hash:string -> src_digest:string -> entry list -> unit
(** Atomic write (temp + rename); creates the directory as needed.
    Write failures are swallowed — a cache that cannot persist degrades to
    scanning, it does not fail the scan. *)
