(** Namer — the end-to-end system (Figure 1 of the paper).

    [build] turns a corpus into a trained system: parse and analyze every
    file, transform statements to AST+, extract name paths, mine confusing
    word pairs from commit history, mine consistency and confusing-word
    name patterns, scan for violations, accumulate multi-level aggregates,
    extract the Table 1 features, and train the defect classifier on a
    small balanced labeled sample.  Inference and the paper's evaluation
    protocol (Tables 2/5) are provided on top. *)

module Pattern = Namer_pattern.Pattern
module Features = Namer_classifier.Features
module Corpus = Namer_corpus.Corpus
module Confusing_pairs = Namer_mining.Confusing_pairs

type config = {
  use_analysis : bool;  (** the "A" of Tables 2/5: §4.1 origin decoration *)
  use_classifier : bool;  (** the "C": without it, report every violation *)
  miner : Namer_mining.Miner.config;
  pair_min_count : int;  (** commit sightings required of a confusing pair *)
  n_labeled : int;  (** labeled training violations (paper: 120) *)
  label_noise : float;  (** training label flip rate (human labeling error) *)
  ordering_vocab : (string * string) list;  (** seeds for ordering patterns *)
  algo : Namer_ml.Pipeline.algo option;  (** [None] = cross-validated selection *)
  seed : int;
  jobs : int;
      (** worker domains for the sharded pipeline ([1] = fully sequential).
          Any [jobs] value produces bit-identical results: shards are
          deterministic ({!Namer_parallel.Shard}) and per-shard accumulators
          merge in shard order, so parallelism changes only wall-clock. *)
  cap_domains : bool;
      (** clamp [jobs] to [Domain.recommended_domain_count ()] (default
          [true]): more domains than cores is a pure pessimization in
          OCaml 5 and results are identical anyway.  Tests that must
          exercise real worker domains on small machines turn it off. *)
  digest_batch : int;
      (** files per streaming digest batch (default [1024]).  [build] and
          {!scan_refs} hold at most one batch of sources and ASTs resident
          at a time — peak memory is O(batch × jobs), never O(corpus) —
          and every value produces bit-identical results (batches are
          contiguous corpus slices merged in order). *)
}

val default_config : config

(** One scanned statement: its digest plus feature/reporting context. *)
type scanned_stmt = {
  sctx : Features.stmt_ctx;
  line : int;
  digest : Pattern.Stmt_paths.t;
}

(** One pattern violation — a potential naming issue. *)
type violation = {
  v_stmt : scanned_stmt;
  v_pattern : Pattern.t;
  v_info : Pattern.violation_info;
  mutable v_features : float array;
}

(** ["found -> suggested"], the rendered fix. *)
val describe_fix : violation -> string

(** A file the pipeline dropped instead of crashing on — unparseable,
    resource-bombed (deep-nesting [Stack_overflow]), or poisoned by an
    injected fault ({!Namer_util.Fault}).  Per-file failure isolation:
    the scan completes, the skip is counted ([scan.files_skipped]) and
    surfaced here with the offending path and the exception text. *)
type skipped = { sk_file : string; sk_reason : string }

type t = {
  cfg : config;
  lang : Corpus.lang;
  pairs : Confusing_pairs.t;
  store : Pattern.Store.t;
  agg : Features.Agg.t;
  violations : violation array;  (** deduplicated scan results *)
  classifier : Namer_ml.Pipeline.t option;
  cv_reports : (Namer_ml.Pipeline.algo * Namer_ml.Pipeline.cv_report) list;
  training_set : (int, unit) Hashtbl.t;
  oracle : Corpus.Oracle.t;
  source_of : string -> string option;
      (** file → source for report listings; streaming builds re-read the
          file on demand instead of pinning the corpus in memory *)
  n_stmts : int;
  n_files : int;
  n_repos : int;
  n_files_violating : int;
  n_repos_violating : int;
  n_candidates : int;
  skipped : skipped list;  (** files dropped by per-file isolation *)
}

(** Confusing pairs used when a corpus has no commit history. *)
val builtin_pairs : Corpus.lang -> (string * string) list

(** {1 Streaming file references}

    The frontend never requires a corpus in memory: a {!file_ref} names a
    file and knows how to load it.  [build]/{!build_refs}/{!scan_refs}
    stream refs through the digest in bounded batches ([digest_batch]) —
    the source and AST of a file exist only between its [fr_load] and the
    end of its digest. *)

type file_ref = {
  fr_repo : string;  (** shard key — files of one repo stay contiguous *)
  fr_path : string;
  fr_load : unit -> string;  (** called once per digest, on a worker domain *)
}

(** A ref over an already-loaded generated-corpus file. *)
val ref_of_file : Corpus.file -> file_ref

(** A ref that reads [file] from disk on demand (binary, whole file). *)
val ref_of_path : repo:string -> path:string -> file:string -> file_ref

(** Streaming-contract gauge (tests): the high-water mark of sources
    resident in digests since the last reset — O(batch × jobs) bounded. *)
val reset_in_flight_peak : unit -> unit

val in_flight_sources_peak : unit -> int

(** [build ?patterns cfg corpus] runs the full training pipeline.
    [patterns] short-circuits mining with a pre-mined store (the
    mine-once / scan-many workflow of the CLI).  With [cfg.jobs > 1] the
    per-file digesting, pair mining, mining statistics, scan and feature
    extraction run sharded on a domain pool, merged deterministically —
    the result is bit-identical to a [jobs = 1] build. *)
val build : ?patterns:Pattern.Store.t -> config -> Corpus.t -> t

(** [build_refs cfg ~lang refs] — the same pipeline over streaming refs:
    sources are loaded batch-by-batch and dropped after digesting, so a
    corpus far larger than memory trains in O(digest_batch × jobs) peak
    source residency.  No commit history (builtin confusing pairs apply)
    and an empty oracle — the CLI's on-disk training shape. *)
val build_refs :
  ?patterns:Pattern.Store.t -> config -> lang:Corpus.lang -> file_ref list -> t

(** Re-draw the labeled sample and re-train the classifier on the same
    violations (variance reduction for evaluation; the paper averages its
    CV over 30 splits similarly). *)
val retrain : t -> seed:int -> t

(** Classifier decision: [true] = report (always [true] without C). *)
val classify : t -> violation -> bool

(** Oracle verdict (evaluation only — stands in for manual inspection). *)
val grade : t -> violation -> Corpus.Oracle.verdict

(** Uniform sample of violations, excluding the classifier's training rows
    (§5.1) and anything rejected by [filter]. *)
val sample_violations :
  ?filter:(violation -> bool) -> t -> n:int -> seed:int -> violation list

(** Source text of the violating line, for report listings. *)
val source_line : t -> violation -> string

(** Graded outcome of a report set — one row of Table 2 / 5. *)
type outcome = { n_reports : int; semantic : int; quality : int; false_pos : int }

val precision : outcome -> float
val grade_reports : t -> violation list -> outcome

(** The paper's protocol: sample [n] violations, classify, grade. *)
val evaluate : ?n:int -> ?seed:int -> t -> outcome

(** Trained classifier weights per original feature (Table 9). *)
val feature_weights : t -> float array

(** {1 Model snapshots — train once, scan many}

    A {!model} is the trained artifact of a build detached from its corpus:
    the compiled pattern store, the confusing-pair table, the classifier and
    the interner vocabulary they reference.  {!save_model} persists it as a
    versioned, checksummed binary snapshot (format: DESIGN.md §8) whose
    checksum doubles as the model's identity hash; {!load_model} restores it
    without re-digesting or re-mining anything.  {!scan_with_model} then
    scans arbitrary files against it, optionally through a per-file report
    cache keyed on (model hash, content digest). *)

type model = {
  m_lang : Corpus.lang;
  m_use_analysis : bool;  (** the build's "A" ablation switch *)
  m_max_stmt_paths : int;  (** paths kept per statement at digest time *)
  m_store : Pattern.Store.t;
  m_pairs : Confusing_pairs.t;
  m_classifier : Namer_ml.Pipeline.t option;
  m_hash : string;  (** checksum identity of the serialized form *)
}

(** ["consistency" | "confusing-word" | "ordering"] — the stable kind tag
    used in reports, JSON output and cache entries. *)
val kind_name : Pattern.kind -> string

(** The model of a finished build (hash included; nothing touches disk). *)
val model_of : t -> model

(** Serialize the build's trained state to [path] (atomic write) and return
    the model. *)
val save_model : t -> path:string -> model

(** Restore a model from a snapshot file.
    @raise Namer_model.Snapshot.Error on unreadable, truncated, corrupted or
    version-mismatched files, with a message naming the file and the fix. *)
val load_model : path:string -> model

(** {1 Partial models — incremental, mergeable training}

    A partial model is the mergeable training state of one corpus slice:
    its digested statements (as indices into a first-seen-ordered
    whole-path vocabulary), its file list and its unpruned confusing-pair
    tallies, persisted as a versioned, checksummed [NAMERPRT] snapshot.
    The merge algebra (representation and laws:
    {!Namer_model.Partial_model}) is closed and associative with
    {!Partial.empty} as identity, and satisfies the contract

    {v train(A + B) ≡ merge(train A, train B) v}

    — finalizing the merge of slice partials yields a model whose scan
    reports are byte-identical to those of a model trained on the
    concatenated corpus, for every split, permutation and
    parenthesization (DESIGN.md §13; property-tested in
    [test/test_partial_model.ml]). *)
module Partial : sig
  type build := t

  type t = Namer_model.Partial_model.t
  (** The fields ([pm_files], [pm_pairs], …) are public — see
      {!Namer_model.Partial_model}. *)

  val empty : t
  (** Identity element of {!merge}. *)

  val is_empty : t -> bool
  val n_files : t -> int
  val n_stmts : t -> int
  val n_repos : t -> int

  val lang_tag : Corpus.lang -> string
  (** ["python" | "java"] — the tag stored in [pm_lang]. *)

  val lang_of : t -> Corpus.lang
  (** @raise Namer_model.Snapshot.Error on an unknown tag. *)

  val align_config : config -> t -> config
  (** Overlay the digest-shaping settings baked into the partial
      ([use_analysis], [max_stmt_paths]) onto [cfg] — digest an added
      slice with the aligned config or {!merge} will reject it. *)

  val of_refs : ?commits:(string * string) list -> config -> lang:Corpus.lang ->
    file_ref list -> t
  (** Digest one corpus slice into a partial: the streaming frontend of
      {!build_refs} with every downstream stage deferred to {!finalize}.
      [commits] are tallied into unpruned pair counts that sum under
      {!merge}. *)

  val of_corpus : config -> Corpus.t -> t
  (** [of_refs] over an in-memory corpus, commits included. *)

  val merge : t -> t -> t
  (** Combine two partials covering disjoint slices into the partial of
      their concatenation.  @raise Namer_model.Partial_model.Merge_error
      on incompatible config/language or overlapping files. *)

  val merge_all : t list -> t
  (** Left fold of {!merge}; {!empty} for [[]]. *)

  val finalize :
    ?patterns:Pattern.Store.t ->
    ?oracle:(unit -> Corpus.Oracle.t) -> config -> t -> build
  (** Run mining, scanning and supervision over the partial's replayed
      statements — the build a direct train of the concatenated slices
      would produce.  [oracle] (default empty, as for directory training)
      grades the labeled sample when the slices came from a generated
      corpus. *)

  val save : t -> path:string -> string
  (** Atomic write; returns the partial's checksum identity. *)

  val load : path:string -> t * string
  (** @raise Namer_model.Snapshot.Error on unreadable or malformed files,
      naming the failing section. *)
end

(** One scan report, rendered down to strings — the cacheable shape. *)
type report = {
  r_file : string;
  r_line : int;
  r_prefix : string;  (** offending prefix key *)
  r_found : string;
  r_suggested : string;
  r_kind : string;  (** {!kind_name} of the violated pattern *)
}

type scan_result = {
  sr_reports : report array;  (** sorted by (file, line, prefix, …) *)
  sr_cache_hits : int;
  sr_cache_misses : int;  (** 0 unless a cache dir was given *)
  sr_skipped : skipped list;
      (** files dropped by per-file isolation — skipped files are never
          written to the cache, so they are re-attempted on every scan *)
}

(** [scan_with_model m files] digests and matches [files] against the model
    — no mining, no training.  With [cache_dir], per-file reports persist
    under [(model hash, content digest)] keys: unchanged files skip
    parse/analyze/name-path extraction entirely and replay byte-identically
    at any [jobs].  Deterministic: the report array is totally ordered.

    [pool] runs the sharded digest/match phases on a caller-owned domain
    pool instead of creating one per call — the serve daemon loads a model
    once and multiplexes every request's scan onto one resident pool.
    When [pool] is given, [jobs] and [cap_domains] are ignored.  Note that
    digesting misses grows the global name-path interner; concurrent
    callers must serialize scans of uncached files (the interner is
    single-writer — see DESIGN.md §11). *)
val scan_with_model :
  ?jobs:int -> ?cap_domains:bool -> ?pool:Namer_parallel.Pool.t ->
  ?cache_dir:string -> model -> Corpus.file list ->
  scan_result

(** [scan_refs m refs] — the streaming form of {!scan_with_model}: sources
    are loaded on worker domains batch-by-batch ([digest_batch]), cache-
    probed, digested and dropped, so scanning a corpus never holds more
    than O(batch × jobs) sources.  Same determinism and cache contract. *)
val scan_refs :
  ?jobs:int -> ?cap_domains:bool -> ?pool:Namer_parallel.Pool.t ->
  ?cache_dir:string -> model -> file_ref list ->
  scan_result
