(** Namer — the end-to-end system (Figure 1).

    {v
      Big code ──► name-pattern mining ──┐
                                         ├──► violations ──► defect classifier ──► reports
      Small labeled data ────────────────┘
    v}

    [build] runs the full training pipeline on a corpus: parse and analyze
    every file, transform to AST+, extract name paths, mine confusing word
    pairs from the commit history, mine consistency and confusing-word name
    patterns, scan for violations, accumulate the multi-level aggregates,
    extract features, and train the defect classifier on a small balanced
    labeled sample (120 violations, as in §5.1).

    The two ablation switches of Tables 2 and 5 are configuration flags:
    [use_analysis] (the "A" of the tables — origin decoration from the
    §4.1 analyses) and [use_classifier] (the "C" — without it every
    violation is reported). *)

module Tree = Namer_tree.Tree
module Namepath = Namer_namepath.Namepath
module Pattern = Namer_pattern.Pattern
module Miner = Namer_mining.Miner
module Confusing_pairs = Namer_mining.Confusing_pairs
module Features = Namer_classifier.Features
module Corpus = Namer_corpus.Corpus
module Prng = Namer_util.Prng
module Telemetry = Namer_telemetry.Telemetry
module Events = Namer_obs.Events
module Pool = Namer_parallel.Pool
module Shard = Namer_parallel.Shard
module Accumulator = Namer_parallel.Accumulator
module Interner = Namer_util.Interner

type config = {
  use_analysis : bool;
  use_classifier : bool;
  miner : Miner.config;
  pair_min_count : int;  (** confusing pairs need this many commit sightings *)
  n_labeled : int;  (** size of the manually-labeled training set (120) *)
  label_noise : float;
      (** probability of a training label being flipped — models human
          labeling error/disagreement, which the oracle is otherwise free
          of (real inspectors of naming issues disagree; §5.1 notes the
          severity of quality issues "can be subjective") *)
  ordering_vocab : (string * string) list;
      (** canonical word orders seeding ordering patterns (extension; the
          mined patterns still need corpus support and satisfaction ratio) *)
  algo : Namer_ml.Pipeline.algo option;  (** [None] = cross-validated selection *)
  seed : int;
  jobs : int;
      (** worker domains for the sharded pipeline; [1] = fully sequential.
          Results are bit-identical for every value (deterministic shards,
          shard-order merges) — parallelism changes only wall-clock. *)
  cap_domains : bool;
      (** clamp [jobs] to the hardware ([Domain.recommended_domain_count]);
          oversubscribing domains beyond cores makes OCaml 5 slower
          (stop-the-world minor GCs) without changing any result.  Tests
          that need real domains on small machines switch it off. *)
  digest_batch : int;
      (** files per streaming digest batch: sources and ASTs live only
          while their batch is in flight, so peak frontend memory is
          O(batch × jobs) however large the corpus.  Results are
          bit-identical for every value — batches are contiguous corpus
          slices merged in order, so the global interning order is the
          sequential first-seen order regardless of batching. *)
}

let default_config =
  {
    use_analysis = true;
    use_classifier = true;
    miner = Miner.default_config;
    pair_min_count = 3;
    n_labeled = 120;
    label_noise = 0.1;
    ordering_vocab =
      [
        ("width", "height"); ("x", "y"); ("min", "max"); ("src", "dst");
        ("row", "column");
      ];
    algo = Some Namer_ml.Pipeline.Svm;
    seed = 7;
    jobs = 1;
    cap_domains = true;
    digest_batch = 1024;
  }

(** One scanned statement: digest plus everything feature extraction and
    reporting need. *)
type scanned_stmt = {
  sctx : Features.stmt_ctx;
  line : int;
  digest : Pattern.Stmt_paths.t;
}

(** One pattern violation — a *potential* naming issue. *)
type violation = {
  v_stmt : scanned_stmt;
  v_pattern : Pattern.t;
  v_info : Pattern.violation_info;
  mutable v_features : float array;
}

(** The suggested fix, rendered: replace [found] with [suggested]. *)
let describe_fix (v : violation) =
  Printf.sprintf "%s -> %s" v.v_info.Pattern.found v.v_info.Pattern.suggested

(** A file the pipeline dropped instead of crashing on: unparseable,
    resource-bombed, or poisoned by an injected fault.  Degradation is
    per-file and visible — skips ride the shard merges into {!t} and
    {!scan_result} and are reported, never silently swallowed. *)
type skipped = { sk_file : string; sk_reason : string }

type t = {
  cfg : config;
  lang : Corpus.lang;
  pairs : Confusing_pairs.t;
  store : Pattern.Store.t;
  agg : Features.Agg.t;
  violations : violation array;
  classifier : Namer_ml.Pipeline.t option;
  cv_reports : (Namer_ml.Pipeline.algo * Namer_ml.Pipeline.cv_report) list;
  training_set : (int, unit) Hashtbl.t;  (** violation indices used for training *)
  oracle : Corpus.Oracle.t;
  source_of : string -> string option;  (** file → source, for report listings *)
  (* corpus statistics (§5.2/§5.3 "Statistics on pattern mining") *)
  n_stmts : int;
  n_files : int;
  n_repos : int;
  n_files_violating : int;
  n_repos_violating : int;
  n_candidates : int;  (** patterns generated before pruning *)
  skipped : skipped list;
      (** files dropped by per-file failure isolation, in corpus order *)
}

let log = Logs.Src.create "namer" ~doc:"Namer pipeline"

module Log = (val Logs.src_log log)

(* ------------------------------------------------------------------ *)
(* Digesting a corpus                                                  *)
(* ------------------------------------------------------------------ *)

(** A file by reference: the streaming frontend's unit of input.  The
    source is produced by [fr_load] *inside* the digest worker and dropped
    as soon as the file's name paths are extracted — a corpus of file
    references costs a few words per file, not its bytes. *)
type file_ref = { fr_repo : string; fr_path : string; fr_load : unit -> string }

let ref_of_file (f : Corpus.file) : file_ref =
  { fr_repo = f.Corpus.repo; fr_path = f.Corpus.path;
    fr_load = (fun () -> f.Corpus.source) }

let ref_of_path ~repo ~path ~file : file_ref =
  {
    fr_repo = repo;
    fr_path = path;
    fr_load =
      (fun () ->
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic)));
  }

(* Streaming-contract gauge: how many loaded sources are resident at once
   across all domains.  The bounded-memory test asserts the high-water
   mark stays O(batch), never O(corpus). *)
let in_flight = Atomic.make 0
let in_flight_peak = Atomic.make 0

let gauge_enter () =
  let v = Atomic.fetch_and_add in_flight 1 + 1 in
  let rec bump () =
    let p = Atomic.get in_flight_peak in
    if v > p && not (Atomic.compare_and_set in_flight_peak p v) then bump ()
  in
  bump ()

let gauge_exit () = ignore (Atomic.fetch_and_add in_flight (-1))

let reset_in_flight_peak () =
  Atomic.set in_flight 0;
  Atomic.set in_flight_peak 0

let in_flight_sources_peak () = Atomic.get in_flight_peak

(* [chunk n xs] splits [xs] into consecutive slices of [n] (last one may be
   shorter) — the streaming batch plan.  Contiguity is what makes batching
   invisible to interning: first-seen order over the concatenation of
   contiguous slices is first-seen order over the whole sequence. *)
let chunk n xs =
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (k - 1) (x :: acc) rest
  in
  let rec go acc = function
    | [] -> List.rev acc
    | xs ->
        let batch, rest = take n [] xs in
        go (batch :: acc) rest
  in
  go [] xs

let skip_file ~path reason =
  Telemetry.count "scan.files_skipped";
  Log.warn (fun m -> m "skipping file %s: %s" path reason);
  Events.emit
    ~fields:
      [
        ("file", Namer_util.Json.String path);
        ("reason", Namer_util.Json.String reason);
      ]
    Events.Warn "scan.file_skipped";
  ([], Some { sk_file = path; sk_reason = reason })

let digest_source ?table ~cfg ~lang ~repo ~path source :
    scanned_stmt list * skipped option =
  let skip reason = skip_file ~path reason in
  match Frontend.parse_file_res lang ~use_analysis:cfg.use_analysis source with
  | Error reason -> skip reason
  | Ok parsed -> (
      (* AST+ transformation (origin decoration), then name-path extraction —
         two per-file passes so each gets its own telemetry stage.  Both
         recurse over statement trees, so a nesting bomb that slipped past
         the parser can still blow the stack here: the same per-file
         isolation applies. *)
      let transform () =
        let trees =
          Telemetry.with_span "astplus" @@ fun () ->
          List.map
            (fun (s : Frontend.stmt) ->
              let origins = parsed.Frontend.origins ~cls:s.cls ~fn:s.fn in
              (s, Namer_namepath.Astplus.transform ~origins s.tree))
            parsed.Frontend.stmts
        in
        Telemetry.with_span "namepaths" @@ fun () ->
        List.map
          (fun ((s : Frontend.stmt), ast_plus) ->
            let digest =
              Pattern.Stmt_paths.of_tree ?table ~limit:cfg.miner.Miner.max_stmt_paths
                ast_plus
            in
            {
              sctx =
                {
                  Features.file = path;
                  repo;
                  file_id = -1;
                  repo_id = -1;
                  tree_hash = Tree.hash s.tree;
                  n_paths = digest.Pattern.Stmt_paths.n_paths;
                };
              line = s.line;
              digest;
            })
          trees
      in
      match transform () with
      | stmts -> (stmts, None)
      | exception Out_of_memory -> raise Out_of_memory
      | exception e -> skip (Printexc.to_string e))

(** Load and digest one file reference.  The source exists only between
    [fr_load] and the return — the heart of the streaming contract; a read
    failure is per-file degradation like any parse failure. *)
let digest_file ?table ~cfg ~lang ~(file : file_ref) () :
    scanned_stmt list * skipped option =
  match file.fr_load () with
  | exception Out_of_memory -> raise Out_of_memory
  | exception e -> skip_file ~path:file.fr_path (Printexc.to_string e)
  | source ->
      gauge_enter ();
      Fun.protect ~finally:gauge_exit (fun () ->
          digest_source ?table ~cfg ~lang ~repo:file.fr_repo ~path:file.fr_path
            source)

(* ------------------------------------------------------------------ *)
(* Building the system                                                 *)
(* ------------------------------------------------------------------ *)

(** Built-in confusing-word pairs, used when scanning a corpus that carries
    no commit history (e.g. a raw directory via the CLI).  These are the
    well-known confusions the paper lists as examples of mined pairs. *)
let builtin_pairs = function
  | Corpus.Python ->
      [
        ("True", "Equal"); ("Equals", "Equal"); ("xrange", "range");
        ("args", "kwargs"); ("N", "np"); ("name", "key"); ("value", "key");
        ("x", "y"); ("min", "max");
      ]
  | Corpus.Java ->
      [
        ("publick", "public"); ("Throwable", "Exception"); ("double", "int");
        ("i", "intent"); ("prog", "progress"); ("get", "print");
        ("name", "key"); ("min", "max");
      ]

module Pairs_acc = struct
  type t = Confusing_pairs.t

  let empty () = Confusing_pairs.create ()
  let merge = Confusing_pairs.merge
end

(* The builtin catalog as a table, each pair seeded at exactly the prune
   threshold — the no-history fallback shared by [mine_pairs] and partial
   finalization. *)
let builtin_table ~(cfg : config) ~lang =
  let pairs = Confusing_pairs.create () in
  List.iter
    (fun p -> Confusing_pairs.add_pair ~count:cfg.pair_min_count pairs p)
    (builtin_pairs lang);
  pairs

(* Unpruned commit-pair tallies: the mergeable shape partial models carry.
   One commit is independent of the next, so shards of the history are
   diffed on separate domains into per-shard pair sets; the pair merge
   sums commutative tallies, so any shard plan yields the same pairs. *)
let mine_commit_tallies ?pool ~shards ~lang ~commits () =
  Accumulator.sharded_reduce
    (module Pairs_acc)
    ?pool ~shards
    (fun commits ->
      let local = Confusing_pairs.create () in
      List.iter
        (fun (before_src, after_src) ->
          match
            (Frontend.whole_tree lang before_src, Frontend.whole_tree lang after_src)
          with
          | Some before, Some after -> Confusing_pairs.add_commit local ~before ~after
          | _ -> ())
        commits;
      local)
    commits

let mine_pairs ?pool ~shards ~cfg ~lang ~commits () =
  if commits = [] then builtin_table ~cfg ~lang
  else
    Confusing_pairs.prune
      (mine_commit_tallies ?pool ~shards ~lang ~commits ())
      ~min_count:cfg.pair_min_count

(* Draw a balanced labeled sample (with simulated labeling error) and train
   the classifier — the "small supervision" of §5.1.  Returns the
   classifier, its CV reports, and the violation indices consumed. *)
let train_classifier ~(cfg : config) ~prng ~(violations : violation array) ~grade_v =
  let training_set = Hashtbl.create 64 in
  if not cfg.use_classifier then (None, [], training_set)
  else begin
    let idx = Array.init (Array.length violations) (fun i -> i) in
    Prng.shuffle prng idx;
    let half = cfg.n_labeled / 2 in
    let pos = ref [] and neg = ref [] in
    Array.iter
      (fun i ->
        let is_issue =
          match grade_v violations.(i) with
          | Corpus.Oracle.True_issue _ -> true
          | _ -> false
        in
        if is_issue && List.length !pos < half then pos := i :: !pos
        else if (not is_issue) && List.length !neg < half then neg := i :: !neg)
      idx;
    let chosen = !pos @ !neg in
    List.iter (fun i -> Hashtbl.replace training_set i ()) chosen;
    let x = Array.of_list (List.map (fun i -> violations.(i).v_features) chosen) in
    let y =
      Array.of_list
        (List.map
           (fun i ->
             let label =
               match grade_v violations.(i) with
               | Corpus.Oracle.True_issue _ -> true
               | _ -> false
             in
             (* simulated labeling error *)
             if Prng.bool prng ~p:cfg.label_noise then not label else label)
           chosen)
    in
    if Array.length x < 10 then (None, [], training_set)
    else begin
      let algo, reports =
        match cfg.algo with
        | Some a -> (a, [ (a, Namer_ml.Pipeline.cross_validate ~prng ~algo:a x y) ])
        | None -> Namer_ml.Pipeline.select_model ~prng x y
      in
      (Some (Namer_ml.Pipeline.train ~algo ~prng x y), reports, training_set)
    end
  end

(* 1. digest every file: load → parse → analyze → AST+ → name paths.
   Files stream through in bounded batches of [cfg.digest_batch]: a batch
   is read, digested and dropped before the next one is touched, so at
   most O(batch) sources and ASTs are ever resident — never the corpus.
   Within a batch each shard (contiguous, repo-aligned) runs on its own
   domain; flattening the per-shard statement lists in shard order, batch
   after batch, reproduces the sequential statement order exactly, which
   everything downstream depends on.  With a pool, each shard interns
   name paths into its own local table — worker domains never touch the
   shared one — and the tables merge into the global id space in shard
   order afterwards.  Batches and shards are both contiguous slices of
   the corpus sequence merged in order, so the first-seen id assignment
   equals the sequential one for every [digest_batch] and [jobs].
   Shared by [build_core] and [Partial.of_refs]. *)
let digest_refs ?pool ~shards ~(cfg : config) ~lang (refs : file_ref list) :
    scanned_stmt list * skipped list =
  let n_files = List.length refs in
  let digest_shard ?table files =
    let skips_rev = ref [] in
    let stmts =
      List.concat_map
        (fun file ->
          let stmts, skip = digest_file ?table ~cfg ~lang ~file () in
          Option.iter (fun k -> skips_rev := k :: !skips_rev) skip;
          stmts)
        files
    in
    (stmts, List.rev !skips_rev)
  in
  let stmts_rev = ref [] and skips_rev = ref [] in
  List.iter
    (fun batch ->
      match pool with
      | None ->
          List.iter
            (fun file ->
              let stmts, skip = digest_file ~cfg ~lang ~file () in
              stmts_rev := List.rev_append stmts !stmts_rev;
              Option.iter (fun k -> skips_rev := k :: !skips_rev) skip)
            batch
      | Some _ ->
          let parts =
            Accumulator.sharded_map ?pool ~shards
              ~key:(fun r -> r.fr_repo)
              (fun files ->
                let table = Namepath.Interned.create_table () in
                let stmts, skips = digest_shard ~table files in
                (table, stmts, skips))
              batch
          in
          Telemetry.with_span "digest:remap" @@ fun () ->
          List.iter
            (fun (table, shard_stmts, shard_skips) ->
              let m = Namepath.Interned.remap_into_global table in
              List.iter
                (fun s ->
                  stmts_rev :=
                    { s with digest = Pattern.Stmt_paths.remap m s.digest }
                    :: !stmts_rev)
                shard_stmts;
              skips_rev := List.rev_append shard_skips !skips_rev)
            parts)
    (chunk (max 1 cfg.digest_batch) refs);
  let stmts = List.rev !stmts_rev and skipped = List.rev !skips_rev in
  if skipped <> [] then begin
    Log.warn (fun m ->
        m "degraded: skipped %d of %d files" (List.length skipped) n_files);
    Events.emit
      ~fields:
        [
          ("skipped", Namer_util.Json.Int (List.length skipped));
          ("total", Namer_util.Json.Int n_files);
        ]
      Events.Warn "build.degraded"
  end;
  Telemetry.count ~by:(List.length stmts) "build.statements_digested";
  Log.info (fun m -> m "digested %d statements" (List.length stmts));
  (stmts, skipped)

(* Stages 2–6 over already-digested statements — everything downstream of
   the frontend, shared by [build_core] (fresh digests) and
   [Partial.finalize] (statements replayed from merged partials).
   [mk_pairs] supplies the confusing-pair table: commit mining for a
   direct build, summed tallies (or the builtin fallback) for a merge. *)
let train_digested ?patterns ?pool (cfg : config) ~lang ~shards ~stmts ~skipped
    ~n_files ~n_repos ~mk_pairs ~oracle ~source_of : t =
  let prng = Prng.create cfg.seed in
  (* Dense per-build file/repo ids: the scan aggregates key on ints, not
     paths.  First-seen order over the statement list, so ids are shard-plan
     independent. *)
  let file_ids = Interner.create () and repo_ids = Interner.create () in
  List.iter
    (fun s ->
      s.sctx.Features.file_id <- Interner.intern file_ids s.sctx.Features.file;
      s.sctx.Features.repo_id <- Interner.intern repo_ids s.sctx.Features.repo)
    stmts;
  (* The corpus is fully interned: freeze the global table so the mining
     and scan stages — including their sharded passes — run against a
     read-only id space, and thaw on the way out (later builds or tests
     digest new statements against the same global table). *)
  Namepath.Interned.freeze ();
  Fun.protect ~finally:Namepath.Interned.thaw @@ fun () ->
  (* 2. confusing word pairs from history *)
  let pairs = Telemetry.with_span "pair-mining" @@ fun () -> mk_pairs () in
  Telemetry.count ~by:(Confusing_pairs.total_pairs pairs) "build.confusing_pairs";
  Log.info (fun m -> m "mined %d confusing pairs" (Confusing_pairs.total_pairs pairs));
  (* 3. mine both pattern types (unless a store was supplied) *)
  let store, n_candidates =
    Telemetry.with_span "pattern-mining" @@ fun () ->
    match patterns with
    | Some store -> (store, 0)
    | None ->
        let digests = List.map (fun s -> s.digest) stmts in
        let consistency =
          Miner.mine ?pool ~config:cfg.miner ~kind:`Consistency ~pairs digests
        in
        let confusing =
          Miner.mine ?pool ~config:cfg.miner ~kind:`Confusing ~pairs digests
        in
        let ordering =
          Miner.mine ?pool ~config:cfg.miner ~kind:(`Ordering cfg.ordering_vocab) ~pairs
            digests
        in
        let store = Pattern.Store.create () in
        List.iter
          (fun (r : Miner.result) ->
            Pattern.Store.iter
              (fun p -> ignore (Pattern.Store.add store { p with id = -1 }))
              r.Miner.store)
          [ consistency; confusing; ordering ];
        ( store,
          consistency.Miner.n_candidates + confusing.Miner.n_candidates
          + ordering.Miner.n_candidates )
  in
  Telemetry.count ~by:n_candidates "build.pattern_candidates";
  Telemetry.count ~by:(Pattern.Store.size store) "build.patterns_kept";
  Log.info (fun m -> m "kept %d patterns" (Pattern.Store.size store));
  (* 4. scan: aggregates + violations.  The store is read-only during the
     scan, so shards match concurrently, each into a private aggregate and
     violation list; aggregates merge commutatively and violation lists
     concatenate in shard order, reproducing the sequential scan order. *)
  let agg = Features.Agg.create () in
  let violating_files : (int, unit) Hashtbl.t = Hashtbl.create 64
  and violating_repos : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let violations_in_order =
    Telemetry.with_span "scan" @@ fun () ->
    let parts =
      Accumulator.sharded_map ?pool ~shards
        (fun shard ->
          let agg = Features.Agg.create () in
          let viols_rev = ref [] in
          let vfiles = Hashtbl.create 64 and vrepos = Hashtbl.create 64 in
          List.iter
            (fun s ->
              Features.Agg.add_stmt agg s.sctx;
              Pattern.Store.candidates store s.digest
              |> List.iter (fun (p : Pattern.t) ->
                     let rel = Pattern.check p s.digest in
                     Features.Agg.add_outcome agg s.sctx ~pattern_id:p.id rel;
                     match rel with
                     | Pattern.Violated info ->
                         Hashtbl.replace vfiles s.sctx.Features.file_id ();
                         Hashtbl.replace vrepos s.sctx.Features.repo_id ();
                         viols_rev :=
                           { v_stmt = s; v_pattern = p; v_info = info; v_features = [||] }
                           :: !viols_rev
                     | _ -> ()))
            shard;
          (agg, List.rev !viols_rev, vfiles, vrepos))
        stmts
    in
    List.concat_map
      (fun (part_agg, part_viols, part_files, part_repos) ->
        Features.Agg.merge ~into:agg part_agg;
        Hashtbl.iter (fun k () -> Hashtbl.replace violating_files k ()) part_files;
        Hashtbl.iter (fun k () -> Hashtbl.replace violating_repos k ()) part_repos;
        part_viols)
      parts
  in
  Telemetry.count ~by:(List.length violations_in_order) "build.violations_raw";
  (* Deduplicate: subset-condition variants of one rule all fire on the same
     statement with the same fix; a user sees one report per
     (statement, offending name, suggestion, pattern type).  Keep the variant
     with the largest condition — the most specific match — so features 14
     and 15 describe the strongest evidence. *)
  let dedup = Hashtbl.create 1024 in
  List.iter
    (fun (v : violation) ->
      let key =
        ( v.v_stmt.sctx.Features.file,
          v.v_stmt.line,
          v.v_info.Pattern.offending_prefix,
          v.v_info.Pattern.suggested,
          match v.v_pattern.Pattern.kind with
          | Pattern.Consistency -> 0
          | Pattern.Confusing_word _ -> 1
          | Pattern.Ordering _ -> 2 )
      in
      match Hashtbl.find_opt dedup key with
      | Some prev
        when List.length prev.v_pattern.Pattern.condition
             >= List.length v.v_pattern.Pattern.condition ->
          ()
      | _ -> Hashtbl.replace dedup key v)
    violations_in_order;
  let violations =
    Hashtbl.fold (fun _ v acc -> v :: acc) dedup []
    |> List.sort (fun a b ->
           compare
             (a.v_stmt.sctx.Features.file, a.v_stmt.line, a.v_info.Pattern.offending_prefix)
             (b.v_stmt.sctx.Features.file, b.v_stmt.line, b.v_info.Pattern.offending_prefix))
    |> Array.of_list
  in
  Telemetry.count ~by:(Array.length violations) "build.violations_deduped";
  Log.info (fun m -> m "triggered %d violations (deduplicated)" (Array.length violations));
  (* 5. features: every vector is independent (agg and pairs are read-only
     by now), so chunk the index space and extract concurrently — each task
     writes a disjoint slice of the array. *)
  Telemetry.with_span "features" (fun () ->
      let extract_range (lo, hi) =
        for i = lo to hi - 1 do
          let v = violations.(i) in
          v.v_features <- Features.extract agg pairs v.v_stmt.sctx v.v_pattern v.v_info
        done
      in
      let n = Array.length violations in
      match pool with
      | None -> extract_range (0, n)
      | Some pool ->
          let size = max 1 ((n + shards - 1) / shards) in
          List.init shards (fun i -> (i * size, min n ((i + 1) * size)))
          |> List.filter (fun (lo, hi) -> lo < hi)
          |> Pool.map_list pool extract_range
          |> ignore);
  (* 6. small supervision: balanced labeled sample, graded by the oracle
     (standing in for the paper's manual labeling). *)
  let oracle, classifier, cv_reports, training_set =
    Telemetry.with_span "classifier" @@ fun () ->
    let oracle = oracle () in
    let grade_v (v : violation) =
      Corpus.Oracle.grade oracle ~file:v.v_stmt.sctx.Features.file ~line:v.v_stmt.line
        ~found:v.v_info.Pattern.found ~suggested:v.v_info.Pattern.suggested
        ~symmetric:(v.v_pattern.Pattern.kind = Pattern.Consistency)
    in
    let classifier, cv_reports, training_set =
      train_classifier ~cfg ~prng ~violations ~grade_v
    in
    (oracle, classifier, cv_reports, training_set)
  in
  {
    cfg;
    lang;
    pairs;
    store;
    agg;
    violations;
    classifier;
    cv_reports;
    training_set;
    oracle;
    source_of;
    n_stmts = List.length stmts;
    n_files;
    n_repos;
    n_files_violating = Hashtbl.length violating_files;
    n_repos_violating = Hashtbl.length violating_repos;
    n_candidates;
    skipped;
  }

(** [build_core cfg ~lang ~refs ~commits ~oracle ~source_of] — digest the
    refs, then run the downstream stages; see [build] for the contract.
    [patterns] short-circuits mining with a pre-mined store (e.g. loaded
    from disk via {!Namer_pattern.Pattern_io}) — the mine-once / scan-many
    workflow.

    With [cfg.jobs > 1], the per-file stages (digest), the per-commit stage
    (pair mining), the corpus-wide counting passes inside mining, the scan
    and feature extraction all run sharded over a domain pool.  Every shard
    plan is deterministic and every merge happens in shard order over
    commutative accumulators, so a [jobs = N] build is bit-identical to a
    [jobs = 1] build — only wall-clock changes. *)
let build_core ?patterns (cfg : config) ~lang ~(refs : file_ref list) ~commits
    ~oracle ~source_of : t =
  Pool.run ~cap_to_cores:cfg.cap_domains ~jobs:cfg.jobs @@ fun pool ->
  let shards =
    Shard.oversubscribe ~jobs:(match pool with Some p -> Pool.size p | None -> 1)
  in
  Telemetry.with_span "build" @@ fun () ->
  let stmts, skipped = digest_refs ?pool ~shards ~cfg ~lang refs in
  let repos = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace repos r.fr_repo ()) refs;
  train_digested ?patterns ?pool cfg ~lang ~shards ~stmts ~skipped
    ~n_files:(List.length refs) ~n_repos:(Hashtbl.length repos)
    ~mk_pairs:(fun () -> mine_pairs ?pool ~shards ~cfg ~lang ~commits ())
    ~oracle ~source_of

(** [build cfg corpus] — the in-memory entry point: digest a generated
    corpus whose sources are already resident.  Report listings and the
    oracle read straight from the corpus. *)
let build ?patterns (cfg : config) (corpus : Corpus.t) : t =
  let sources = Hashtbl.create 256 in
  List.iter
    (fun (f : Corpus.file) -> Hashtbl.replace sources f.Corpus.path f.Corpus.source)
    corpus.Corpus.files;
  build_core ?patterns cfg ~lang:corpus.Corpus.lang
    ~refs:(List.map ref_of_file corpus.Corpus.files)
    ~commits:corpus.Corpus.commits
    ~oracle:(fun () -> Corpus.Oracle.of_corpus corpus)
    ~source_of:(Hashtbl.find_opt sources)

(** [build_refs cfg ~lang refs] — the streaming entry point: digest files
    lazily through their [fr_load] thunks, never holding more than one
    batch of sources.  No commit history (builtin confusing pairs) and an
    empty oracle, exactly like training on unlabeled on-disk files; report
    listings re-read the file on demand. *)
let build_refs ?patterns (cfg : config) ~lang (refs : file_ref list) : t =
  let loaders = Hashtbl.create 256 in
  List.iter (fun r -> Hashtbl.replace loaders r.fr_path r.fr_load) refs;
  let empty =
    { Corpus.lang; files = []; injections = []; benigns = []; commits = [] }
  in
  build_core ?patterns cfg ~lang ~refs ~commits:[]
    ~oracle:(fun () -> Corpus.Oracle.of_corpus empty)
    ~source_of:(fun path ->
      match Hashtbl.find_opt loaders path with
      | None -> None
      | Some load -> ( try Some (load ()) with _ -> None))

(** [retrain t ~seed] re-draws the labeled training sample and re-trains
    the classifier (mining and scanning are untouched).  Used by the bench
    to average evaluation rows over several supervision draws, the way the
    paper averages its cross-validation over 30 splits. *)
let retrain (t : t) ~seed : t =
  Telemetry.with_span "retrain" @@ fun () ->
  let prng = Prng.create seed in
  let grade_v (v : violation) =
    Corpus.Oracle.grade t.oracle ~file:v.v_stmt.sctx.Features.file ~line:v.v_stmt.line
      ~found:v.v_info.Pattern.found ~suggested:v.v_info.Pattern.suggested
      ~symmetric:(v.v_pattern.Pattern.kind = Pattern.Consistency)
  in
  let classifier, cv_reports, training_set =
    train_classifier ~cfg:t.cfg ~prng ~violations:t.violations ~grade_v
  in
  { t with classifier; cv_reports; training_set }

(* ------------------------------------------------------------------ *)
(* Inference and evaluation                                            *)
(* ------------------------------------------------------------------ *)

(** Classifier decision for one violation: [true] = report as a naming
    issue.  Without a classifier (the "w/o C" ablation) everything is
    reported. *)
let classify (t : t) (v : violation) =
  match t.classifier with
  | Some c -> Namer_ml.Pipeline.predict c v.v_features
  | None -> true

(** Oracle verdict for one violation (evaluation only — replaces the
    paper's manual inspection). *)
let grade (t : t) (v : violation) =
  Corpus.Oracle.grade t.oracle ~file:v.v_stmt.sctx.Features.file ~line:v.v_stmt.line
    ~found:v.v_info.Pattern.found ~suggested:v.v_info.Pattern.suggested
    ~symmetric:(v.v_pattern.Pattern.kind = Pattern.Consistency)

(** [sample_violations t ~n ~seed] draws [n] violations uniformly,
    excluding those used to train the classifier (§5.1: "excluding the
    samples used for training"). *)
let sample_violations ?(filter = fun (_ : violation) -> true) (t : t) ~n ~seed =
  let prng = Prng.create seed in
  let eligible =
    Array.to_list (Array.mapi (fun i v -> (i, v)) t.violations)
    |> List.filter (fun (i, v) -> (not (Hashtbl.mem t.training_set i)) && filter v)
    |> List.map snd
  in
  Prng.sample prng n eligible

(** The source line of a violation (for example listings). *)
let source_line (t : t) (v : violation) =
  match t.source_of v.v_stmt.sctx.Features.file with
  | Some src -> (
      match List.nth_opt (String.split_on_char '\n' src) (v.v_stmt.line - 1) with
      | Some l -> String.trim l
      | None -> "<line out of range>")
  | None -> "<unknown file>"

(** Outcome counts over a set of *reports* (classifier-accepted
    violations), graded by the oracle — one row of Table 2 / 5. *)
type outcome = {
  n_reports : int;
  semantic : int;
  quality : int;
  false_pos : int;
}

let precision (o : outcome) =
  if o.n_reports = 0 then 0.0
  else float_of_int (o.semantic + o.quality) /. float_of_int o.n_reports

let grade_reports (t : t) (reports : violation list) : outcome =
  List.fold_left
    (fun o v ->
      match grade t v with
      | Corpus.Oracle.True_issue Namer_corpus.Issue.Semantic_defect ->
          { o with semantic = o.semantic + 1 }
      | Corpus.Oracle.True_issue (Namer_corpus.Issue.Code_quality _) ->
          { o with quality = o.quality + 1 }
      | Corpus.Oracle.False_positive | Corpus.Oracle.Known_benign ->
          { o with false_pos = o.false_pos + 1 })
    { n_reports = List.length reports; semantic = 0; quality = 0; false_pos = 0 }
    reports

(** The paper's headline protocol (Tables 2 and 5): sample [n] violations,
    run the classifier, grade what it reports. *)
let evaluate ?(n = 300) ?(seed = 123) (t : t) : outcome =
  let sampled = sample_violations t ~n ~seed in
  let reports = List.filter (classify t) sampled in
  Telemetry.count ~by:(List.length sampled) "evaluate.violations_sampled";
  Telemetry.count ~by:(List.length reports) "evaluate.violations_reported";
  grade_reports t reports

(** Feature weights of the trained classifier in original feature space
    (Table 9).  Empty when the classifier is disabled. *)
let feature_weights (t : t) =
  match t.classifier with
  | Some c -> Namer_ml.Pipeline.effective_weights c
  | None -> [||]

(* ------------------------------------------------------------------ *)
(* Model snapshots: train once, scan many                              *)
(* ------------------------------------------------------------------ *)

module Snapshot = Namer_model.Snapshot
module W = Namer_model.Binio.W
module R = Namer_model.Binio.R

(** The trained artifact of a build, detached from the corpus it was mined
    on: everything a scan needs and nothing it re-derives.  The deployment
    shape of §7 — mine over Big Code once, serve scans from the snapshot. *)
type model = {
  m_lang : Corpus.lang;
  m_use_analysis : bool;
  m_max_stmt_paths : int;
  m_store : Pattern.Store.t;
  m_pairs : Confusing_pairs.t;
  m_classifier : Namer_ml.Pipeline.t option;
  m_hash : string;  (** checksum identity of the serialized form *)
}

let model_magic = "NAMERMDL"
let model_version = 1

let kind_name = function
  | Pattern.Consistency -> "consistency"
  | Pattern.Confusing_word _ -> "confusing-word"
  | Pattern.Ordering _ -> "ordering"

let encode_model ~lang ~use_analysis ~max_stmt_paths ~(store : Pattern.Store.t) ~pairs
    ~classifier =
  let meta =
    let w = W.create () in
    W.u8 w (match lang with Corpus.Python -> 0 | Corpus.Java -> 1);
    W.bool w use_analysis;
    W.u32 w max_stmt_paths;
    W.contents w
  in
  let interner =
    let prefixes, ends = Namepath.Interned.export_global () in
    let w = W.create ~size:(1 lsl 16) () in
    W.u32 w (List.length prefixes);
    List.iter (W.str w) prefixes;
    W.u32 w (List.length ends);
    List.iter (W.str w) ends;
    W.contents w
  in
  let patterns =
    let w = W.create ~size:(1 lsl 16) () in
    W.u32 w (Pattern.Store.size store);
    Pattern.Store.iter
      (fun p ->
        (match p.Pattern.kind with
        | Pattern.Consistency -> W.u8 w 0
        | Pattern.Confusing_word { correct } ->
            W.u8 w 1;
            W.str w correct
        | Pattern.Ordering { first; second } ->
            W.u8 w 2;
            W.str w first;
            W.str w second);
        let paths ps =
          W.u32 w (List.length ps);
          List.iter (fun np -> W.str w (Namepath.to_string np)) ps
        in
        paths p.Pattern.condition;
        paths p.Pattern.deduction)
      store;
    W.contents w
  in
  let pairs_sec =
    let w = W.create () in
    let bs = Confusing_pairs.bindings pairs in
    W.u32 w (List.length bs);
    List.iter
      (fun ((w1, w2), c) ->
        W.str w w1;
        W.str w w2;
        W.i64 w c)
      bs;
    W.contents w
  in
  let classifier_sec =
    let w = W.create () in
    (match classifier with
    | None -> W.bool w false
    | Some c ->
        W.bool w true;
        let (r : Namer_ml.Pipeline.repr) = Namer_ml.Pipeline.to_repr c in
        W.u8 w
          (match r.r_algo with
          | Namer_ml.Pipeline.Svm -> 0
          | Namer_ml.Pipeline.Logreg -> 1
          | Namer_ml.Pipeline.Lda -> 2);
        W.floats w r.r_mu;
        W.floats w r.r_sigma;
        W.matrix w r.r_components;
        W.floats w r.r_mean;
        W.floats w r.r_explained;
        W.floats w r.r_weights;
        W.f64 w r.r_bias);
    W.contents w
  in
  Snapshot.encode ~magic:model_magic ~version:model_version
    [
      ("meta", meta); ("interner", interner); ("patterns", patterns);
      ("pairs", pairs_sec); ("classifier", classifier_sec);
    ]

let encode_of (t : t) =
  encode_model ~lang:t.lang ~use_analysis:t.cfg.use_analysis
    ~max_stmt_paths:t.cfg.miner.Miner.max_stmt_paths ~store:t.store ~pairs:t.pairs
    ~classifier:t.classifier

let model_of (t : t) : model =
  let _bytes, hash = encode_of t in
  {
    m_lang = t.lang;
    m_use_analysis = t.cfg.use_analysis;
    m_max_stmt_paths = t.cfg.miner.Miner.max_stmt_paths;
    m_store = t.store;
    m_pairs = t.pairs;
    m_classifier = t.classifier;
    m_hash = hash;
  }

let save_model (t : t) ~path : model =
  Telemetry.with_span "model:save" @@ fun () ->
  let bytes, hash = encode_of t in
  Snapshot.write ~path bytes;
  Telemetry.count ~by:(String.length bytes) "model.bytes_written";
  Log.info (fun m ->
      m "saved model %s (%d bytes, %d patterns) to %s" hash (String.length bytes)
        (Pattern.Store.size t.store) path);
  {
    m_lang = t.lang;
    m_use_analysis = t.cfg.use_analysis;
    m_max_stmt_paths = t.cfg.miner.Miner.max_stmt_paths;
    m_store = t.store;
    m_pairs = t.pairs;
    m_classifier = t.classifier;
    m_hash = hash;
  }

let load_model ~path : model =
  Telemetry.with_span "model:load" @@ fun () ->
  let desc = "model snapshot" in
  let bytes = Snapshot.read_file ~desc ~path in
  let sections, hash =
    Snapshot.decode ~magic:model_magic ~desc ~version:model_version ~path bytes
  in
  let desc = Printf.sprintf "%s %s" desc path in
  (* per-section decoding: a malformed payload names the failing section *)
  let read name f = Snapshot.read_section ~desc sections name f in
  let fail fmt = Printf.ksprintf (fun s -> raise (Snapshot.Error s)) fmt in
  let read_strings r =
    let n = R.u32 r in
    let acc = ref [] in
    for _ = 1 to n do
      acc := R.str r :: !acc
    done;
    List.rev !acc
  in
  let lang, use_analysis, max_stmt_paths =
    read "meta" (fun r ->
        let lang =
          match R.u8 r with
          | 0 -> Corpus.Python
          | 1 -> Corpus.Java
          | k -> fail "%s: unknown language tag %d" desc k
        in
        let use_analysis = R.bool r in
        let max_stmt_paths = R.u32 r in
        (lang, use_analysis, max_stmt_paths))
  in
  let prefixes, ends =
    read "interner" (fun r ->
        let prefixes = read_strings r in
        let ends = read_strings r in
        (prefixes, ends))
  in
  if Namepath.Interned.is_frozen () then
    fail "cannot load %s: the name-path interner is frozen (a build is in flight)"
      desc;
  Namepath.Interned.preload_global ~prefixes ~ends;
  let store =
    read "patterns" (fun r ->
        let n = R.u32 r in
        let store = Pattern.Store.create () in
        for _ = 1 to n do
          let kind =
            match R.u8 r with
            | 0 -> Pattern.Consistency
            | 1 ->
                let correct = R.str r in
                Pattern.Confusing_word { correct }
            | 2 ->
                let first = R.str r in
                let second = R.str r in
                Pattern.Ordering { first; second }
            | k -> fail "%s: unknown pattern kind tag %d" desc k
          in
          let condition = List.map Namepath.of_string (read_strings r) in
          let deduction = List.map Namepath.of_string (read_strings r) in
          (* saved stores are already canonical-deduplicated; nodedup
             insertion preserves the training-time pattern ids *)
          ignore
            (Pattern.Store.add_nodedup store (Pattern.make ~kind ~condition ~deduction))
        done;
        store)
  in
  let pairs =
    read "pairs" (fun r ->
        let n = R.u32 r in
        let pairs = Confusing_pairs.create () in
        for _ = 1 to n do
          let w1 = R.str r in
          let w2 = R.str r in
          let c = R.i64 r in
          Confusing_pairs.add_pair ~count:c pairs (w1, w2)
        done;
        pairs)
  in
  let classifier =
    read "classifier" (fun r ->
        if not (R.bool r) then None
        else begin
          let r_algo =
            match R.u8 r with
            | 0 -> Namer_ml.Pipeline.Svm
            | 1 -> Namer_ml.Pipeline.Logreg
            | 2 -> Namer_ml.Pipeline.Lda
            | k -> fail "%s: unknown classifier algorithm tag %d" desc k
          in
          let r_mu = R.floats r in
          let r_sigma = R.floats r in
          let r_components = R.matrix r in
          let r_mean = R.floats r in
          let r_explained = R.floats r in
          let r_weights = R.floats r in
          let r_bias = R.f64 r in
          Some
            (Namer_ml.Pipeline.of_repr
               {
                 Namer_ml.Pipeline.r_algo; r_mu; r_sigma; r_components; r_mean;
                 r_explained; r_weights; r_bias;
               })
        end)
  in
  Telemetry.count "model.loads";
  Log.info (fun m ->
      m "loaded model %s (%d patterns) from %s" hash (Pattern.Store.size store) path);
  {
    m_lang = lang;
    m_use_analysis = use_analysis;
    m_max_stmt_paths = max_stmt_paths;
    m_store = store;
    m_pairs = pairs;
    m_classifier = classifier;
    m_hash = hash;
  }

(* ------------------------------------------------------------------ *)
(* Partial models: incremental, mergeable training                     *)
(* ------------------------------------------------------------------ *)

module Partial = struct
  module P = Namer_model.Partial_model

  type nonrec t = P.t

  let empty = P.empty
  let is_empty = P.is_empty
  let n_files = P.n_files
  let n_stmts = P.n_stmts
  let n_repos = P.n_repos
  let merge = P.merge
  let merge_all = P.merge_all
  let lang_tag = function Corpus.Python -> "python" | Corpus.Java -> "java"

  let lang_of (p : P.t) =
    match p.P.pm_lang with
    | "python" -> Corpus.Python
    | "java" -> Corpus.Java
    | tag ->
        raise
          (Snapshot.Error (Printf.sprintf "partial model: unknown language tag %S" tag))

  (** The digest-shaping settings baked into [p], applied over [cfg] —
      merge compatibility requires digesting an added slice with them. *)
  let align_config (cfg : config) (p : P.t) =
    {
      cfg with
      use_analysis = p.P.pm_use_analysis;
      miner = { cfg.miner with Miner.max_stmt_paths = p.P.pm_max_stmt_paths };
    }

  (* Package one digested slice as a partial: files in corpus order,
     statements as vocab-index arrays, the vocabulary in first-seen order —
     the order a sequential digest first interned each distinct whole path,
     which [finalize] replays to reproduce the id assignment. *)
  let export ~(cfg : config) ~lang ~(refs : file_ref list) ~stmts ~skipped
      ~pair_tallies ~n_commits : P.t =
    let files = Array.of_list (List.map (fun r -> (r.fr_repo, r.fr_path)) refs) in
    let file_idx = Hashtbl.create (max 16 (Array.length files)) in
    Array.iteri
      (fun i (_, path) ->
        if not (Hashtbl.mem file_idx path) then Hashtbl.add file_idx path i)
      files;
    let idx_of_file path =
      match Hashtbl.find_opt file_idx path with
      | Some i -> i
      | None -> invalid_arg ("Partial.export: statement from unknown file " ^ path)
    in
    let vocab_idx : (int, int) Hashtbl.t = Hashtbl.create 4096 in
    let vocab_rev = ref [] and n_vocab = ref 0 in
    let idx_of (it : Namepath.Interned.t) =
      match Hashtbl.find_opt vocab_idx it.Namepath.Interned.pid with
      | Some i -> i
      | None ->
          let i = !n_vocab in
          Hashtbl.add vocab_idx it.Namepath.Interned.pid i;
          vocab_rev := Namepath.to_string it.Namepath.Interned.np :: !vocab_rev;
          incr n_vocab;
          i
    in
    let pstmts =
      List.map
        (fun (s : scanned_stmt) ->
          let ipaths = s.digest.Pattern.Stmt_paths.ipaths in
          let paths = Array.make (Array.length ipaths) 0 in
          (* left-to-right walk: vocab indices are assigned first-seen *)
          Array.iteri (fun i it -> paths.(i) <- idx_of it) ipaths;
          {
            P.ps_file = idx_of_file s.sctx.Features.file;
            ps_line = s.line;
            ps_tree_hash = s.sctx.Features.tree_hash;
            ps_paths = paths;
          })
        stmts
    in
    {
      P.pm_lang = lang_tag lang;
      pm_use_analysis = cfg.use_analysis;
      pm_max_stmt_paths = cfg.miner.Miner.max_stmt_paths;
      pm_vocab = Array.of_list (List.rev !vocab_rev);
      pm_files = files;
      pm_stmts = Array.of_list pstmts;
      pm_skipped =
        Array.of_list (List.map (fun k -> (idx_of_file k.sk_file, k.sk_reason)) skipped);
      pm_pairs = pair_tallies;
      pm_n_commits = n_commits;
    }

  (** [of_refs cfg ~lang refs] digests one corpus slice into a partial —
      the frontend of [build_refs] with the downstream stages deferred to
      {!finalize}.  Commit histories are tallied unpruned so tallies sum
      under {!merge}. *)
  let of_refs ?(commits = []) (cfg : config) ~lang (refs : file_ref list) : P.t =
    Pool.run ~cap_to_cores:cfg.cap_domains ~jobs:cfg.jobs @@ fun pool ->
    let shards =
      Shard.oversubscribe ~jobs:(match pool with Some pl -> Pool.size pl | None -> 1)
    in
    Telemetry.with_span "partial:train" @@ fun () ->
    let stmts, skipped = digest_refs ?pool ~shards ~cfg ~lang refs in
    let pair_tallies, n_commits =
      if commits = [] then ([], 0)
      else
        ( Confusing_pairs.bindings (mine_commit_tallies ?pool ~shards ~lang ~commits ()),
          List.length commits )
    in
    export ~cfg ~lang ~refs ~stmts ~skipped ~pair_tallies ~n_commits

  let of_corpus (cfg : config) (corpus : Corpus.t) : P.t =
    of_refs ~commits:corpus.Corpus.commits cfg ~lang:corpus.Corpus.lang
      (List.map ref_of_file corpus.Corpus.files)

  (* The finalize-time pair table: prune the summed tallies exactly as a
     direct build prunes its mined ones; a history-less partial falls back
     to the builtin catalog, like a history-less build. *)
  let pairs_of (cfg : config) ~lang (p : P.t) =
    if p.P.pm_n_commits = 0 then builtin_table ~cfg ~lang
    else begin
      let t = Confusing_pairs.create () in
      List.iter (fun (pr, c) -> Confusing_pairs.add_pair ~count:c t pr) p.P.pm_pairs;
      Confusing_pairs.prune t ~min_count:cfg.pair_min_count
    end

  (** [finalize cfg p] runs stages 2–6 over the partial's replayed
      statements, producing the same build a direct [train] of the
      concatenated slices would: vocabulary replay reproduces the
      sequential id assignment, statements rebuild in corpus order, and
      summed pair tallies prune to the mined table.  [oracle] (default
      empty) grades the labeled sample when the slices came from a
      generated corpus. *)
  let finalize ?patterns ?oracle (cfg : config) (p : P.t) =
    let lang = lang_of p in
    let cfg = align_config cfg p in
    if Namepath.Interned.is_frozen () then
      raise
        (Snapshot.Error
           "cannot finalize a partial model: the name-path interner is frozen (a \
            build is in flight)");
    Pool.run ~cap_to_cores:cfg.cap_domains ~jobs:cfg.jobs @@ fun pool ->
    let shards =
      Shard.oversubscribe ~jobs:(match pool with Some pl -> Pool.size pl | None -> 1)
    in
    Telemetry.with_span "build" @@ fun () ->
    (* Replay the vocabulary in first-seen order: [of_path] interns each
       path's prefix / whole / end / symbolic texts in the same sequence a
       sequential digest of the original statements did, so the id
       assignment — and everything downstream keyed on it — matches. *)
    let interned =
      Telemetry.with_span "partial:replay" @@ fun () ->
      Array.map
        (fun text ->
          match Namepath.Interned.of_path (Namepath.of_string text) with
          | it -> it
          | exception Invalid_argument msg ->
              raise
                (Snapshot.Error
                   (Printf.sprintf
                      "partial model: its %S section holds a malformed name path \
                       %S: %s"
                      "vocab" text msg)))
        p.P.pm_vocab
    in
    let stmts =
      Array.to_list
        (Array.map
           (fun (s : P.pstmt) ->
             let repo, file = p.P.pm_files.(s.P.ps_file) in
             let digest =
               Pattern.Stmt_paths.of_interned
                 (Array.to_list (Array.map (fun i -> interned.(i)) s.P.ps_paths))
             in
             {
               sctx =
                 {
                   Features.file;
                   repo;
                   file_id = -1;
                   repo_id = -1;
                   tree_hash = s.P.ps_tree_hash;
                   n_paths = digest.Pattern.Stmt_paths.n_paths;
                 };
               line = s.P.ps_line;
               digest;
             })
           p.P.pm_stmts)
    in
    let skipped =
      Array.to_list
        (Array.map
           (fun (i, reason) -> { sk_file = snd p.P.pm_files.(i); sk_reason = reason })
           p.P.pm_skipped)
    in
    let repos = Hashtbl.create 64 in
    Array.iter (fun (repo, _) -> Hashtbl.replace repos repo ()) p.P.pm_files;
    let oracle =
      match oracle with
      | Some o -> o
      | None ->
          fun () ->
            Corpus.Oracle.of_corpus
              { Corpus.lang; files = []; injections = []; benigns = []; commits = [] }
    in
    train_digested ?patterns ?pool cfg ~lang ~shards ~stmts ~skipped
      ~n_files:(Array.length p.P.pm_files) ~n_repos:(Hashtbl.length repos)
      ~mk_pairs:(fun () -> pairs_of cfg ~lang p)
      ~oracle
      ~source_of:(fun path ->
        match open_in_bin path with
        | exception Sys_error _ -> None
        | ic ->
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                match really_input_string ic (in_channel_length ic) with
                | s -> Some s
                | exception _ -> None))

  let save (p : P.t) ~path =
    Telemetry.with_span "partial:save" @@ fun () ->
    let hash = P.save p ~path in
    Telemetry.count "partial.saves";
    Log.info (fun m ->
        m "saved partial %s (%d files, %d stmts) to %s" hash (P.n_files p)
          (P.n_stmts p) path);
    hash

  let load ~path =
    Telemetry.with_span "partial:load" @@ fun () ->
    let p, hash = P.load ~path in
    Telemetry.count "partial.loads";
    Log.info (fun m ->
        m "loaded partial %s (%d files, %d stmts) from %s" hash (P.n_files p)
          (P.n_stmts p) path);
    (p, hash)
end

(* ------------------------------------------------------------------ *)
(* Scanning against a model, with an incremental cache                 *)
(* ------------------------------------------------------------------ *)

(** One scan report: a violation rendered down to strings — the stable,
    cacheable shape (no pattern ids, no interned ids). *)
type report = {
  r_file : string;
  r_line : int;
  r_prefix : string;  (** offending prefix key *)
  r_found : string;
  r_suggested : string;
  r_kind : string;  (** {!kind_name} of the violated pattern *)
}

type scan_result = {
  sr_reports : report array;  (** sorted by (file, line, prefix, …) *)
  sr_cache_hits : int;
  sr_cache_misses : int;  (** 0 unless a cache dir was given *)
  sr_skipped : skipped list;
      (** files dropped by per-file failure isolation, in scan order *)
}

let config_of_model (m : model) ~jobs ~cap_domains =
  {
    default_config with
    use_analysis = m.m_use_analysis;
    use_classifier = false;
    jobs;
    cap_domains;
    miner = { Miner.default_config with Miner.max_stmt_paths = m.m_max_stmt_paths };
  }

(* Match one digested file against the store and render its deduplicated,
   sorted reports — the per-file unit of work the cache persists.  Same
   dedup rule as [build]: one report per (line, offending name, suggestion,
   pattern type), keeping the most specific condition, first wins ties. *)
let match_stmts (m : model) stmts : Scan_cache.entry list =
  let raw = ref [] in
  List.iter
    (fun s ->
      Pattern.Store.candidates m.m_store s.digest
      |> List.iter (fun (p : Pattern.t) ->
             match Pattern.check p s.digest with
             | Pattern.Violated info -> raw := (s, p, info) :: !raw
             | _ -> ()))
    stmts;
  let dedup = Hashtbl.create 16 in
  List.iter
    (fun ((s, (p : Pattern.t), (info : Pattern.violation_info)) as v) ->
      let key =
        (s.line, info.Pattern.offending_prefix, info.Pattern.suggested, kind_name p.kind)
      in
      match Hashtbl.find_opt dedup key with
      | Some (_, (prev : Pattern.t), _)
        when List.length prev.Pattern.condition >= List.length p.Pattern.condition ->
          ()
      | _ -> Hashtbl.replace dedup key v)
    (List.rev !raw);
  Hashtbl.fold (fun _ v acc -> v :: acc) dedup []
  |> List.map (fun (s, (p : Pattern.t), (info : Pattern.violation_info)) ->
         {
           Scan_cache.e_line = s.line;
           e_prefix = info.Pattern.offending_prefix;
           e_found = info.Pattern.found;
           e_suggested = info.Pattern.suggested;
           e_kind = kind_name p.kind;
         })
  |> List.sort compare

(** [scan_refs m refs] reports the violations of [refs] against a trained
    model: digest (parse → analyze → AST+ → name paths) only, no mining, no
    training — the paper's "w/o C" reporting shape, like the CLI's
    self-mining scan.  Files stream through in bounded batches
    ([digest_batch]): a file's source is loaded on a worker domain, cache-
    probed, digested and dropped before the report set is assembled, so
    peak residency is O(batch × jobs) sources, never the corpus.  With
    [cache_dir], per-file reports are persisted keyed by (model hash,
    content digest): files whose entry is present skip digesting entirely
    and replay byte-identically, at any [jobs].  Reports are sorted on
    (file, line, prefix, suggested, found, kind) — a total order, so the
    output is deterministic however it was produced. *)
let scan_refs ?(jobs = 1) ?(cap_domains = true) ?pool ?cache_dir (m : model)
    (refs : file_ref list) : scan_result =
  let cfg = config_of_model m ~jobs ~cap_domains in
  let lang = m.m_lang in
  Telemetry.with_span "scan:model" @@ fun () ->
  (* a caller-owned pool (the serve daemon's, shared across requests)
     short-circuits the per-call pool lifecycle; otherwise one pool lives
     for the duration of this scan, as before *)
  let with_pool f =
    match pool with
    | Some _ -> f pool
    | None -> Pool.run ~cap_to_cores:cfg.cap_domains ~jobs:cfg.jobs f
  in
  with_pool @@ fun pool ->
  let shards =
    Shard.oversubscribe ~jobs:(match pool with Some p -> Pool.size p | None -> 1)
  in
  (* worker side: load one file, probe the cache on its content digest,
     digest on a miss — the source lives only inside this call (cache reads
     are lock-free: entries are content-addressed and written atomically) *)
  let process ?table (r : file_ref) =
    match r.fr_load () with
    | exception Out_of_memory -> raise Out_of_memory
    | exception e ->
        let _, skip = skip_file ~path:r.fr_path (Printexc.to_string e) in
        (r.fr_path, "", `Miss ([], skip))
    | source -> (
        gauge_enter ();
        Fun.protect ~finally:gauge_exit @@ fun () ->
        match cache_dir with
        | None ->
            let stmts, skip =
              digest_source ?table ~cfg ~lang ~repo:r.fr_repo ~path:r.fr_path source
            in
            (r.fr_path, "", `Miss (stmts, skip))
        | Some dir -> (
            let d = Scan_cache.src_digest source in
            match Scan_cache.find ~dir ~model_hash:m.m_hash ~src_digest:d with
            | Some entries -> (r.fr_path, d, `Hit entries)
            | None ->
                let stmts, skip =
                  digest_source ?table ~cfg ~lang ~repo:r.fr_repo ~path:r.fr_path
                    source
                in
                (r.fr_path, d, `Miss (stmts, skip))))
  in
  let n_hits = ref 0 and n_misses = ref 0 in
  let rows_rev = ref [] in
  List.iter
    (fun batch ->
      (* two-phase, mirroring [build_core]: sharded digest into local
         tables, remap into the global id space in shard order, then match
         sharded — the store and interner are read-only by then *)
      let digested =
        match pool with
        | None -> List.map (fun r -> process r) batch
        | Some _ ->
            let parts =
              Accumulator.sharded_map ?pool ~shards
                ~key:(fun r -> r.fr_repo)
                (fun rs ->
                  let table = Namepath.Interned.create_table () in
                  (table, List.map (process ~table) rs))
                batch
            in
            Telemetry.with_span "digest:remap" @@ fun () ->
            List.concat_map
              (fun (table, outs) ->
                let mp = Namepath.Interned.remap_into_global table in
                List.map
                  (fun (path, d, outcome) ->
                    match outcome with
                    | `Hit _ as hit -> (path, d, hit)
                    | `Miss (stmts, skip) ->
                        ( path, d,
                          `Miss
                            ( List.map
                                (fun s ->
                                  { s with
                                    digest = Pattern.Stmt_paths.remap mp s.digest
                                  })
                                stmts, skip ) ))
                  outs)
              parts
      in
      let matched =
        Telemetry.with_span "scan" @@ fun () ->
        Accumulator.sharded_concat_map ?pool ~shards
          (fun part ->
            List.map
              (fun (path, d, outcome) ->
                match outcome with
                | `Hit entries -> (path, d, entries, None, true)
                | `Miss (stmts, skip) -> (path, d, match_stmts m stmts, skip, false))
              part)
          digested
      in
      List.iter
        (fun ((_, d, entries, skip, was_hit) as row) ->
          (match cache_dir with
          | None -> ()
          | Some dir ->
              if was_hit then incr n_hits
              else begin
                incr n_misses;
                (* a skipped file is never cached: caching its (empty)
                   report list would make later warm scans replay it as
                   cleanly scanned, hiding the degradation — re-attempt it
                   on every scan instead *)
                if skip = None then
                  Scan_cache.store ~dir ~model_hash:m.m_hash ~src_digest:d entries
              end);
          rows_rev := row :: !rows_rev)
        matched)
    (chunk (max 1 cfg.digest_batch) refs);
  (match cache_dir with
  | Some _ ->
      Telemetry.count ~by:!n_hits "scan_cache.hits";
      Telemetry.count ~by:!n_misses "scan_cache.misses"
  | None -> ());
  let rows = List.rev !rows_rev in
  let skipped = List.filter_map (fun (_, _, _, skip, _) -> skip) rows in
  if skipped <> [] then begin
    Log.warn (fun msg ->
        msg "degraded: skipped %d of %d files" (List.length skipped)
          (List.length refs));
    Events.emit
      ~fields:
        [
          ("skipped", Namer_util.Json.Int (List.length skipped));
          ("total", Namer_util.Json.Int (List.length refs));
        ]
      Events.Warn "scan.degraded"
  end;
  let reports =
    List.concat_map
      (fun (path, _, entries, _, _) ->
        List.map
          (fun (e : Scan_cache.entry) ->
            {
              r_file = path;
              r_line = e.Scan_cache.e_line;
              r_prefix = e.Scan_cache.e_prefix;
              r_found = e.Scan_cache.e_found;
              r_suggested = e.Scan_cache.e_suggested;
              r_kind = e.Scan_cache.e_kind;
            })
          entries)
      rows
    |> List.sort (fun a b ->
           compare
             (a.r_file, a.r_line, a.r_prefix, a.r_suggested, a.r_found, a.r_kind)
             (b.r_file, b.r_line, b.r_prefix, b.r_suggested, b.r_found, b.r_kind))
    |> Array.of_list
  in
  Telemetry.count ~by:(Array.length reports) "scan_model.reports";
  { sr_reports = reports; sr_cache_hits = !n_hits; sr_cache_misses = !n_misses;
    sr_skipped = skipped }

(** [scan_with_model m files] — {!scan_refs} over already-loaded sources
    (generated corpora, the serve daemon's request bodies, tests). *)
let scan_with_model ?jobs ?cap_domains ?pool ?cache_dir (m : model)
    (files : Corpus.file list) : scan_result =
  scan_refs ?jobs ?cap_domains ?pool ?cache_dir m (List.map ref_of_file files)
