module Snapshot = Namer_model.Snapshot
module Binio = Namer_model.Binio
module Telemetry = Namer_telemetry.Telemetry

type entry = {
  e_line : int;
  e_prefix : string;
  e_found : string;
  e_suggested : string;
  e_kind : string;
}

let magic = "NAMERRPT"
let version = 1

let src_digest source = Digest.to_hex (Digest.string source)

let entry_path ~dir ~model_hash ~src_digest =
  Filename.concat (Filename.concat dir model_hash) (src_digest ^ ".rpt")

let encode entries =
  let w = Binio.W.create () in
  Binio.W.u32 w (List.length entries);
  List.iter
    (fun e ->
      Binio.W.i64 w e.e_line;
      Binio.W.str w e.e_prefix;
      Binio.W.str w e.e_found;
      Binio.W.str w e.e_suggested;
      Binio.W.str w e.e_kind)
    entries;
  let bytes, _hash = Snapshot.encode ~magic ~version [ ("reports", Binio.W.contents w) ] in
  bytes

let decode ~path bytes =
  let sections, _hash = Snapshot.decode ~magic ~desc:"cache entry" ~version ~path bytes in
  let r = Binio.R.of_string (Snapshot.section ~desc:"cache entry" sections "reports") in
  let n = Binio.R.u32 r in
  (* explicit loop: the reader is stateful, so the read order must be the
     entry order, which List.init does not promise *)
  let entries = ref [] in
  for _ = 1 to n do
    let e_line = Binio.R.i64 r in
    let e_prefix = Binio.R.str r in
    let e_found = Binio.R.str r in
    let e_suggested = Binio.R.str r in
    let e_kind = Binio.R.str r in
    entries := { e_line; e_prefix; e_found; e_suggested; e_kind } :: !entries
  done;
  List.rev !entries

let find ~dir ~model_hash ~src_digest =
  let path = entry_path ~dir ~model_hash ~src_digest in
  if not (Sys.file_exists path) then None
  else
    let bytes = Snapshot.read_file ~desc:"cache entry" ~path in
    (* fault point: hand back corrupt bytes, as a flipped bit on disk
       would — the decode below must degrade to a self-healing miss *)
    let bytes =
      if Namer_util.Fault.fires "scan_cache.read" && bytes <> "" then begin
        let b = Bytes.of_string bytes in
        let i = Bytes.length b / 2 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xa5));
        Bytes.to_string b
      end
      else bytes
    in
    match decode ~path bytes with
    | entries -> Some entries
    | exception (Snapshot.Error _ | Binio.R.Corrupt _) ->
        (* undecodable = miss: the caller rescans and overwrites the entry *)
        Telemetry.count "scan_cache.undecodable";
        Namer_obs.Events.emit
          ~fields:[ ("entry", Namer_util.Json.String path) ]
          Namer_obs.Events.Warn "scan_cache.undecodable";
        None

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* Best-effort and atomic: [Snapshot.write] publishes via temp + rename,
   so when two processes (the serve daemon and a CLI scan) populate the
   same [<model-hash>/<md5>.rpt] concurrently, each renames its own
   complete temp file and a reader can never see a torn interleaving —
   last rename wins, and both writers produced identical bytes anyway
   (the entry is a pure function of the key).  Failures only cost the
   cache entry, never the scan. *)
let store ~dir ~model_hash ~src_digest entries =
  let path = entry_path ~dir ~model_hash ~src_digest in
  try
    mkdir_p (Filename.dirname path);
    Snapshot.write ~path (encode entries)
  with Sys_error _ | Unix.Unix_error _ -> Telemetry.count "scan_cache.write_failures"
