(** Language dispatch: one interface over the Python and Java frontends
    and their §4.1 analyses, so everything downstream is language-free. *)

module Tree = Namer_tree.Tree
module Origins = Namer_namepath.Origins

(** One program statement, ready for the AST+ transformation. *)
type stmt = {
  tree : Tree.t;
  line : int;
  cls : string option;  (** enclosing class *)
  fn : string option;  (** enclosing function/method *)
}

type parsed_file = {
  stmts : stmt list;
  origins : cls:string option -> fn:string option -> Origins.t;
      (** per-scope origin resolvers; the constant {!Origins.none} when
          analysis is disabled *)
}

exception Frontend_error of string

(** Parse one source file and run its per-file analysis.
    @raise Frontend_error on lexical or syntax errors. *)
val parse_file : Namer_corpus.Corpus.lang -> use_analysis:bool -> string -> parsed_file

(** [parse_file_res] is [parse_file] with *every* per-file failure mapped
    to [Error text]: syntax errors ({!Frontend_error}), but also
    [Stack_overflow] from deep-nesting bombs, [Invalid_argument] from
    hostile byte sequences, and injected faults
    ({!Namer_util.Fault.Injected}) — one pathological file must never
    abort a whole scan.  Only [Out_of_memory] is re-raised. *)
val parse_file_res :
  Namer_corpus.Corpus.lang -> use_analysis:bool -> string -> (parsed_file, string) result

(** [parse_file_opt] is [parse_file_res] with [Error] mapped to [None]. *)
val parse_file_opt :
  Namer_corpus.Corpus.lang -> use_analysis:bool -> string -> parsed_file option

(** Whole-file tree (bodies nested), for commit diffing; [None] on parse
    errors. *)
val whole_tree : Namer_corpus.Corpus.lang -> string -> Tree.t option
