module J = Namer_util.Json
module Fault = Namer_util.Fault
module Stats_u = Namer_util.Stats
module Telemetry = Namer_telemetry.Telemetry
module Events = Namer_obs.Events
module Pool = Namer_parallel.Pool
module Corpus = Namer_corpus.Corpus
module Namer = Namer_core.Namer
module Pattern = Namer_pattern.Pattern

type endpoint = Unix_path of string | Tcp of string * int

type config = {
  sv_model_path : string;
  sv_endpoint : endpoint;
  sv_cache_dir : string option;
  sv_jobs : int;
  sv_max_concurrent : int;
  sv_timeout_ms : int;
  sv_max_request_bytes : int;
}

let default_config ~model_path endpoint =
  {
    sv_model_path = model_path;
    sv_endpoint = endpoint;
    sv_cache_dir = None;
    sv_jobs = Domain.recommended_domain_count ();
    sv_max_concurrent = 64;
    sv_timeout_ms = 30_000;
    sv_max_request_bytes = 8 * 1024 * 1024;
  }

type stats = {
  st_connections : int;
  st_requests : int;
  st_scans : int;
  st_files : int;
  st_reports : int;
  st_cache_hits : int;
  st_cache_misses : int;
  st_overloaded : int;
  st_timeouts : int;
  st_errors : int;
  st_degraded : int;
  st_reloads : int;
  st_p50_ms : float;
  st_p99_ms : float;
  st_uptime_s : float;
  st_model_hash : string;
}

let stats_json (s : stats) =
  [
    ("connections", J.Int s.st_connections);
    ("requests", J.Int s.st_requests);
    ("scans", J.Int s.st_scans);
    ("files_scanned", J.Int s.st_files);
    ("reports", J.Int s.st_reports);
    ( "cache",
      J.Obj [ ("hits", J.Int s.st_cache_hits); ("misses", J.Int s.st_cache_misses) ] );
    ("overloaded", J.Int s.st_overloaded);
    ("timeouts", J.Int s.st_timeouts);
    ("errors", J.Int s.st_errors);
    ("degraded", J.Int s.st_degraded);
    ("reloads", J.Int s.st_reloads);
    ("request_p50_ms", J.Float s.st_p50_ms);
    ("request_p99_ms", J.Float s.st_p99_ms);
    ("uptime_s", J.Float s.st_uptime_s);
    ("model_hash", J.String s.st_model_hash);
  ]
  |> fun fields -> J.Obj fields

(* Latency reservoir: the most recent [lat_cap] request latencies, enough
   for stable p50/p99 without unbounded growth in a long-lived daemon. *)
let lat_cap = 4096

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  resolved : endpoint;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  stopping : bool Atomic.t;
  pool : Pool.t option;
  (* Serializes every interner *writer*: the compute section of scans
     that digest uncached files, and model loads (which preload the
     global interner).  The interner is single-writer — DESIGN.md §11. *)
  model_lock : Mutex.t;
  (* Short critical sections only: counters, the connection registry and
     the current-model reference.  Never held across a scan. *)
  lock : Mutex.t;
  mutable model : Namer.model;
  mutable model_path : string;
  mutable in_flight : int;
  mutable c_connections : int;
  mutable c_requests : int;
  mutable c_scans : int;
  mutable c_files : int;
  mutable c_reports : int;
  mutable c_cache_hits : int;
  mutable c_cache_misses : int;
  mutable c_overloaded : int;
  mutable c_timeouts : int;
  mutable c_errors : int;
  mutable c_degraded : int;
  mutable c_reloads : int;
  lat : float array;
  mutable lat_n : int;
  conns : (int, Unix.file_descr * Thread.t) Hashtbl.t;
  mutable next_conn : int;
  t_start : float;
}

let locked t f = Mutex.protect t.lock f

let model_hash t = locked t (fun () -> t.model.Namer.m_hash)
let endpoint t = t.resolved

let record_latency t ms =
  locked t (fun () ->
      t.lat.(t.lat_n mod lat_cap) <- ms;
      t.lat_n <- t.lat_n + 1)

let latencies t =
  locked t (fun () ->
      let n = min t.lat_n lat_cap in
      List.init n (fun i -> t.lat.(i)))

let percentiles t =
  match latencies t with
  | [] -> (0.0, 0.0)
  | xs -> (Stats_u.percentile 50.0 xs, Stats_u.percentile 99.0 xs)

(* ---------------- socket setup ---------------- *)

let bind_unix path =
  (* A leftover socket file from a crashed daemon must not block restart,
     but a *live* daemon must not be silently displaced: probe with a
     connect before unlinking. *)
  if Sys.file_exists path then begin
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let alive =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if alive then failwith (Printf.sprintf "socket %s: a daemon is already serving" path);
    try Sys.remove path with Sys_error _ -> ()
  end;
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 128;
  (fd, Unix_path path)

let bind_tcp host port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 128;
  let resolved_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, Tcp (host, resolved_port))

let create cfg =
  let model = Namer.load_model ~path:cfg.sv_model_path in
  let listen_fd, resolved =
    match cfg.sv_endpoint with
    | Unix_path path -> bind_unix path
    | Tcp (host, port) -> bind_tcp host port
  in
  Unix.set_nonblock listen_fd;
  (* a client that disconnects mid-response must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let pool =
    if cfg.sv_jobs > 1 then Some (Pool.create ~domains:cfg.sv_jobs ()) else None
  in
  {
    cfg;
    listen_fd;
    resolved;
    stop_r;
    stop_w;
    stopping = Atomic.make false;
    pool;
    model_lock = Mutex.create ();
    lock = Mutex.create ();
    model;
    model_path = cfg.sv_model_path;
    in_flight = 0;
    c_connections = 0;
    c_requests = 0;
    c_scans = 0;
    c_files = 0;
    c_reports = 0;
    c_cache_hits = 0;
    c_cache_misses = 0;
    c_overloaded = 0;
    c_timeouts = 0;
    c_errors = 0;
    c_degraded = 0;
    c_reloads = 0;
    lat = Array.make lat_cap 0.0;
    lat_n = 0;
    conns = Hashtbl.create 64;
    next_conn = 0;
    t_start = Unix.gettimeofday ();
  }

let request_stop t =
  if not (Atomic.exchange t.stopping true) then
    try ignore (Unix.write_substring t.stop_w "x" 0 1) with Unix.Unix_error _ -> ()

(* ---------------- request handling ---------------- *)

let field name = function J.Obj fs -> List.assoc_opt name fs | _ -> None

let str_field name j =
  match field name j with Some (J.String s) -> Some s | _ -> None

let int_field name j =
  match field name j with Some (J.Int i) -> Some i | _ -> None

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let respond fd json = write_all fd (J.to_string json ^ "\n")

let error_response ?op code msg =
  J.Obj
    ((match op with Some o -> [ ("ok", J.Bool false); ("op", J.String o) ] | None -> [ ("ok", J.Bool false) ])
    @ [ ("code", J.String code); ("error", J.String msg) ])

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rec walk_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then walk_files path else [ path ])

let lang_ext = function Corpus.Python -> ".py" | Corpus.Java -> ".java"

(* Resolve a scan request's target to corpus files.  Server-side reads
   ([dir] / [files]) happen on the connection thread, outside any lock. *)
let scan_files (m : Namer.model) req =
  match (field "sources" req, field "files" req, field "dir" req) with
  | Some (J.List srcs), _, _ ->
      let files =
        List.map
          (fun s ->
            match (str_field "path" s, str_field "source" s) with
            | Some path, Some source -> { Corpus.repo = "<inline>"; path; source }
            | _ -> failwith "sources entries need string fields \"path\" and \"source\"")
          srcs
      in
      if files = [] then failwith "empty sources list" else Ok files
  | _, Some (J.List paths), _ ->
      let files =
        List.map
          (function
            | J.String path -> { Corpus.repo = "<files>"; path; source = read_file path }
            | _ -> failwith "files entries must be string paths")
          paths
      in
      if files = [] then failwith "empty files list" else Ok files
  | _, _, Some (J.String dir) ->
      if not (Sys.file_exists dir && Sys.is_directory dir) then
        failwith (Printf.sprintf "no such directory: %s" dir)
      else begin
        let ext = lang_ext m.Namer.m_lang in
        let files =
          walk_files dir
          |> List.filter (fun p -> Filename.check_suffix p ext)
          |> List.map (fun path -> { Corpus.repo = dir; path; source = read_file path })
        in
        if files = [] then failwith (Printf.sprintf "no %s files under %s" ext dir)
        else Ok files
      end
  | _ -> Error "scan needs one of \"sources\", \"files\" or \"dir\""

let skipped_json (skipped : Namer.skipped list) =
  J.List
    (List.map
       (fun (s : Namer.skipped) ->
         J.Obj
           [ ("file", J.String s.Namer.sk_file); ("reason", J.String s.Namer.sk_reason) ])
       skipped)

(* Mirror of the CLI's [namer scan --model --json] payload, field for
   field, prefixed by ok/op — {!Client.cli_json_of_scan} strips the
   prefix to recover the CLI object byte-for-byte. *)
let scan_response (m : Namer.model) files (result : Namer.scan_result) ~max_reports =
  let sources = Hashtbl.create 256 in
  List.iter
    (fun (f : Corpus.file) -> Hashtbl.replace sources f.Corpus.path f.Corpus.source)
    files;
  let source_line (r : Namer.report) =
    match Hashtbl.find_opt sources r.Namer.r_file with
    | Some src -> (
        match List.nth_opt (String.split_on_char '\n' src) (r.Namer.r_line - 1) with
        | Some l -> String.trim l
        | None -> "<line out of range>")
    | None -> "<unknown file>"
  in
  let reports =
    Array.to_list result.Namer.sr_reports
    |> List.filteri (fun i _ -> i < max_reports)
    |> List.map (fun (r : Namer.report) ->
           J.Obj
             [
               ("file", J.String r.Namer.r_file);
               ("line", J.Int r.Namer.r_line);
               ("statement", J.String (source_line r));
               ("found", J.String r.Namer.r_found);
               ("suggested", J.String r.Namer.r_suggested);
               ("pattern", J.String r.Namer.r_kind);
             ])
  in
  J.Obj
    [
      ("ok", J.Bool true);
      ("op", J.String "scan");
      ("files", J.Int (List.length files));
      ("model", J.String m.Namer.m_hash);
      ("patterns", J.Int (Pattern.Store.size m.Namer.m_store));
      ("violations", J.Int (Array.length result.Namer.sr_reports));
      ("cache_hits", J.Int result.Namer.sr_cache_hits);
      ("cache_misses", J.Int result.Namer.sr_cache_misses);
      ("files_skipped", J.Int (List.length result.Namer.sr_skipped));
      ("skipped", skipped_json result.Namer.sr_skipped);
      ("reports", J.List reports);
    ]

let handle_scan t req =
  (* backpressure: admit or refuse *now*, never queue unboundedly behind
     the model lock *)
  let admitted =
    locked t (fun () ->
        if t.in_flight >= t.cfg.sv_max_concurrent then false
        else begin
          t.in_flight <- t.in_flight + 1;
          true
        end)
  in
  if not admitted then begin
    locked t (fun () -> t.c_overloaded <- t.c_overloaded + 1);
    Telemetry.count "serve.overloaded";
    error_response ~op:"scan" "overloaded"
      (Printf.sprintf "%d scans already in flight" t.cfg.sv_max_concurrent)
  end
  else
    Fun.protect
      ~finally:(fun () -> locked t (fun () -> t.in_flight <- t.in_flight - 1))
      (fun () ->
        (* capture the model once: a reload mid-request must not split this
           scan across two models *)
        let m = locked t (fun () -> t.model) in
        match scan_files m req with
        | Error msg -> error_response ~op:"scan" "bad_request" msg
        | Ok files ->
            let max_reports =
              match int_field "max_reports" req with Some n -> n | None -> max_int
            in
            (* fault point: an artificially slow scan *after* admission —
               makes the overloaded/backpressure path deterministic in
               tests without a large corpus *)
            if Fault.fires "serve.slow" then Unix.sleepf 0.5;
            let result =
              Mutex.protect t.model_lock (fun () ->
                  Namer.scan_with_model ?pool:t.pool ~jobs:1
                    ?cache_dir:t.cfg.sv_cache_dir m files)
            in
            locked t (fun () ->
                t.c_scans <- t.c_scans + 1;
                t.c_files <- t.c_files + List.length files;
                t.c_reports <- t.c_reports + Array.length result.Namer.sr_reports;
                t.c_cache_hits <- t.c_cache_hits + result.Namer.sr_cache_hits;
                t.c_cache_misses <- t.c_cache_misses + result.Namer.sr_cache_misses);
            Telemetry.count "serve.scans";
            scan_response m files result ~max_reports
        | exception (Sys_error msg | Failure msg) ->
            error_response ~op:"scan" "bad_request" msg)

let handle_status t =
  let p50, p99 = percentiles t in
  let c f = locked t (fun () -> f t) in
  let m = locked t (fun () -> t.model) in
  J.Obj
    [
      ("ok", J.Bool true);
      ("op", J.String "status");
      ("model", J.String m.Namer.m_hash);
      ("model_path", J.String (locked t (fun () -> t.model_path)));
      ("lang", J.String (Corpus.lang_name m.Namer.m_lang));
      ("patterns", J.Int (Pattern.Store.size m.Namer.m_store));
      ("uptime_s", J.Float (Unix.gettimeofday () -. t.t_start));
      ("requests", J.Int (c (fun t -> t.c_requests)));
      ("scans", J.Int (c (fun t -> t.c_scans)));
      ("in_flight", J.Int (c (fun t -> t.in_flight)));
      ("overloaded", J.Int (c (fun t -> t.c_overloaded)));
      ("timeouts", J.Int (c (fun t -> t.c_timeouts)));
      ("errors", J.Int (c (fun t -> t.c_errors)));
      ("degraded", J.Int (c (fun t -> t.c_degraded)));
      ("reloads", J.Int (c (fun t -> t.c_reloads)));
      ("connections", J.Int (c (fun t -> t.c_connections)));
      ("jobs", J.Int t.cfg.sv_jobs);
      ( "pool",
        match t.pool with
        | None -> J.Null
        | Some p ->
            J.Obj
              [
                ("size", J.Int (Pool.size p));
                ("queued", J.Int (Pool.queued p));
                ("steals", J.Int (Pool.steals p));
              ] );
      ( "cache",
        match t.cfg.sv_cache_dir with
        | None -> J.Null
        | Some dir ->
            J.Obj
              [
                ("dir", J.String dir);
                ("hits", J.Int (c (fun t -> t.c_cache_hits)));
                ("misses", J.Int (c (fun t -> t.c_cache_misses)));
              ] );
      ( "latency_ms",
        J.Obj
          [
            ("p50", J.Float p50);
            ("p99", J.Float p99);
            ("n", J.Int (locked t (fun () -> t.lat_n)));
          ] );
    ]

let handle_reload t req =
  let path =
    match str_field "model" req with
    | Some p -> p
    | None -> locked t (fun () -> t.model_path)
  in
  (* Load under the model lock: [load_model] preloads the global interner
     (a write), so no scan may be digesting concurrently.  The preload is
     an append-only merge, so interned ids captured by the old model — and
     by requests still finishing on it — stay valid. *)
  match Mutex.protect t.model_lock (fun () -> Namer.load_model ~path) with
  | m ->
      let previous =
        locked t (fun () ->
            let prev = t.model.Namer.m_hash in
            t.model <- m;
            t.model_path <- path;
            t.c_reloads <- t.c_reloads + 1;
            prev)
      in
      Telemetry.count "serve.reloads";
      Events.emit
        ~fields:
          [
            ("model", J.String m.Namer.m_hash);
            ("previous", J.String previous);
            ("path", J.String path);
          ]
        Events.Info "serve.reload";
      J.Obj
        [
          ("ok", J.Bool true);
          ("op", J.String "reload");
          ("model", J.String m.Namer.m_hash);
          ("previous", J.String previous);
          ("path", J.String path);
        ]
  | exception Namer_model.Snapshot.Error msg ->
      (* a bad snapshot must leave the old model serving *)
      error_response ~op:"reload" "bad_request" msg

(* Dispatch one request line.  Returns [(response, keep_serving)]:
   [keep_serving = false] only for [shutdown], which acknowledges first
   and then begins the drain. *)
let handle_request t ~conn_id ~req_id line =
  let t0 = Unix.gettimeofday () in
  locked t (fun () -> t.c_requests <- t.c_requests + 1);
  Telemetry.count "serve.requests";
  let response, keep, op =
    match J.parse line with
    | Error msg ->
        locked t (fun () -> t.c_errors <- t.c_errors + 1);
        Telemetry.count "serve.errors";
        (error_response "bad_request" ("request is not valid JSON: " ^ msg), true, "?")
    | Ok req -> (
        let op = match str_field "op" req with Some o -> o | None -> "?" in
        match
          (* fault point: a poisoned request degrades to a structured
             error response; the daemon and the connection stay up *)
          Fault.check "serve.request";
          (match op with
          | "scan" -> (handle_scan t req, true)
          | "status" -> (handle_status t, true)
          | "reload" -> (handle_reload t req, true)
          | "shutdown" ->
              ( J.Obj
                  [
                    ("ok", J.Bool true);
                    ("op", J.String "shutdown");
                    ("draining", J.Bool true);
                  ],
                false )
          | _ ->
              locked t (fun () -> t.c_errors <- t.c_errors + 1);
              (error_response "bad_request" (Printf.sprintf "unknown op %S" op), true))
        with
        | response, keep -> (response, keep, op)
        | exception Fault.Injected point ->
            locked t (fun () -> t.c_degraded <- t.c_degraded + 1);
            Telemetry.count "serve.degraded";
            (error_response ~op "degraded" ("injected fault: " ^ point), true, op)
        | exception e ->
            locked t (fun () -> t.c_errors <- t.c_errors + 1);
            Telemetry.count "serve.errors";
            (error_response ~op "internal" (Printexc.to_string e), true, op))
  in
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  record_latency t ms;
  Telemetry.observe "serve.request_ms" ms;
  let ok = match field "ok" response with Some (J.Bool b) -> b | _ -> false in
  Events.emit
    ~fields:
      [
        ("conn", J.String conn_id);
        ("req", J.String req_id);
        ("req_op", J.String op);
        ("ms", J.Float ms);
        ("req_ok", J.Bool ok);
      ]
    Events.Info "serve.request";
  (response, keep)

(* ---------------- connection loop ---------------- *)

(* One thread per connection: read newline-delimited requests, answer each
   with one JSON line.  SO_RCVTIMEO bounds mid-request stalls; an idle
   keep-alive connection just loops (and notices a drain). *)
let conn_loop t conn_id fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO
    (float_of_int t.cfg.sv_timeout_ms /. 1000.0);
  let chunk = Bytes.create 65536 in
  let leftover = ref "" in
  let respond_safe json =
    match respond fd json with
    | () -> true
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) -> false
  in
  let rec loop () =
    match String.index_opt !leftover '\n' with
    | Some i ->
        let line = String.sub !leftover 0 i in
        leftover := String.sub !leftover (i + 1) (String.length !leftover - i - 1);
        if String.trim line = "" then loop ()
        else begin
          let req_id = Events.fresh_id () in
          let response, keep = handle_request t ~conn_id ~req_id line in
          if respond_safe response && keep then loop ()
        end
    | None ->
        if String.length !leftover > t.cfg.sv_max_request_bytes then begin
          locked t (fun () -> t.c_errors <- t.c_errors + 1);
          ignore
            (respond_safe
               (error_response "bad_request"
                  (Printf.sprintf "request exceeds %d bytes" t.cfg.sv_max_request_bytes)))
        end
        else begin
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()  (* client closed (or drain shut down our read side) *)
          | n ->
              leftover := !leftover ^ Bytes.sub_string chunk 0 n;
              loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              if !leftover <> "" then begin
                (* mid-request stall: a partial line is buffered and the
                   client went quiet — answer and hang up *)
                locked t (fun () -> t.c_timeouts <- t.c_timeouts + 1);
                Telemetry.count "serve.timeouts";
                ignore
                  (respond_safe
                     (error_response "timeout"
                        (Printf.sprintf "no complete request within %d ms"
                           t.cfg.sv_timeout_ms)))
              end
              else if not (Atomic.get t.stopping) then loop ()
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) -> ()
        end
  in
  (try loop ()
   with e ->
     Telemetry.count "serve.errors";
     Events.emit
       ~fields:[ ("conn", J.String conn_id); ("error", J.String (Printexc.to_string e)) ]
       Events.Error "serve.conn.crashed")

(* ---------------- accept loop and drain ---------------- *)

let spawn_conn t fd =
  let conn_id = Events.fresh_id () in
  let key = locked t (fun () ->
      let k = t.next_conn in
      t.next_conn <- k + 1;
      t.c_connections <- t.c_connections + 1;
      k)
  in
  Telemetry.count "serve.connections";
  Events.emit ~fields:[ ("conn", J.String conn_id) ] Events.Info "serve.conn.open";
  let th =
    Thread.create
      (fun () ->
        Fun.protect
          ~finally:(fun () ->
            locked t (fun () -> Hashtbl.remove t.conns key);
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Events.emit ~fields:[ ("conn", J.String conn_id) ] Events.Info "serve.conn.close")
          (fun () -> conn_loop t conn_id fd))
      ()
  in
  (* The thread's own removal may already have run, leaving this a dead
     entry — harmless: the drain joins dead threads instantly and removes
     whatever it joined.  No registration happens after the accept loop
     stops, so the drain's registry snapshot cannot miss a connection. *)
  locked t (fun () -> Hashtbl.replace t.conns key (fd, th))

let rec accept_loop t =
  if not (Atomic.get t.stopping) then begin
    let readable =
      match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.0) with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    if (not (Atomic.get t.stopping)) && List.mem t.listen_fd readable then begin
      (match Unix.accept ~cloexec:true t.listen_fd with
      | fd, _ -> spawn_conn t fd
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _) -> ())
    end;
    accept_loop t
  end

(* Drain: in-flight requests finish and respond; idle connections see EOF
   on their read side and exit.  Loops because a connection accepted just
   before the stop flag flipped may register late. *)
let drain_conns t =
  let rec loop () =
    let live =
      locked t (fun () -> Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.conns [])
    in
    match live with
    | [] -> ()
    | conns ->
        List.iter
          (fun (_, (fd, _)) ->
            try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
            with Unix.Unix_error _ | Invalid_argument _ -> ())
          conns;
        List.iter
          (fun (k, (_, th)) ->
            Thread.join th;
            locked t (fun () -> Hashtbl.remove t.conns k))
          conns;
        loop ()
  in
  loop ()

let stats_of t =
  let p50, p99 = percentiles t in
  locked t (fun () ->
      {
        st_connections = t.c_connections;
        st_requests = t.c_requests;
        st_scans = t.c_scans;
        st_files = t.c_files;
        st_reports = t.c_reports;
        st_cache_hits = t.c_cache_hits;
        st_cache_misses = t.c_cache_misses;
        st_overloaded = t.c_overloaded;
        st_timeouts = t.c_timeouts;
        st_errors = t.c_errors;
        st_degraded = t.c_degraded;
        st_reloads = t.c_reloads;
        st_p50_ms = p50;
        st_p99_ms = p99;
        st_uptime_s = Unix.gettimeofday () -. t.t_start;
        st_model_hash = t.model.Namer.m_hash;
      })

let endpoint_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let serve_forever t =
  Events.emit
    ~fields:
      [
        ("endpoint", J.String (endpoint_string t.resolved));
        ("model", J.String (model_hash t));
        ("jobs", J.Int t.cfg.sv_jobs);
      ]
    Events.Info "serve.start";
  accept_loop t;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.resolved with
  | Unix_path p -> ( try Sys.remove p with Sys_error _ -> ())
  | Tcp _ -> ());
  drain_conns t;
  Option.iter Pool.shutdown t.pool;
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  let stats = stats_of t in
  Events.emit
    ~fields:
      [
        ("requests", J.Int stats.st_requests);
        ("scans", J.Int stats.st_scans);
        ("connections", J.Int stats.st_connections);
      ]
    Events.Info "serve.stop";
  stats
