module J = Namer_util.Json
module Stats_u = Namer_util.Stats

type target = Unix_path of string | Tcp of string * int

type conn = { fd : Unix.file_descr; mutable leftover : string }

let sockaddr = function
  | Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      (Unix.PF_INET, Unix.ADDR_INET (addr, port))

let connect ?(retry_for = 0.0) target =
  let domain, addr = sockaddr target in
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec attempt () =
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> { fd; leftover = "" }
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT) as e, fn, arg) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () < deadline then begin
          Unix.sleepf 0.05;
          attempt ()
        end
        else raise (Unix.Unix_error (e, fn, arg))
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  attempt ()

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let recv_line conn =
  let chunk = Bytes.create 65536 in
  let rec loop () =
    match String.index_opt conn.leftover '\n' with
    | Some i ->
        let line = String.sub conn.leftover 0 i in
        conn.leftover <-
          String.sub conn.leftover (i + 1) (String.length conn.leftover - i - 1);
        Some line
    | None -> (
        match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
        | 0 -> None
        | n ->
            conn.leftover <- conn.leftover ^ Bytes.sub_string chunk 0 n;
            loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  loop ()

let request_raw conn line =
  match write_all conn.fd (line ^ "\n") with
  | () -> (
      match recv_line conn with
      | Some response -> Ok response
      | None -> Error "connection closed by daemon"
      | exception Unix.Unix_error (e, _, _) ->
          Error ("recv: " ^ Unix.error_message e))
  | exception Unix.Unix_error (e, _, _) -> Error ("send: " ^ Unix.error_message e)

let request conn json =
  match request_raw conn (J.to_string json) with
  | Error _ as e -> e
  | Ok line -> (
      match J.parse line with
      | Ok j -> Ok j
      | Error msg -> Error ("response is not valid JSON: " ^ msg))

(* The CLI scan object is the serve scan response minus the protocol
   envelope; the field whitelist keeps the CLI's exact order. *)
let cli_fields =
  [
    "files";
    "model";
    "patterns";
    "violations";
    "cache_hits";
    "cache_misses";
    "files_skipped";
    "skipped";
    "reports";
  ]

let cli_json_of_scan response =
  match response with
  | J.Obj fields ->
      if List.assoc_opt "ok" fields <> Some (J.Bool true) then
        Error ("not an ok scan response: " ^ J.to_string response)
      else begin
        let projected =
          List.filter (fun (k, _) -> List.mem k cli_fields) fields
        in
        if List.map fst projected <> cli_fields then
          Error ("scan response misses CLI fields: " ^ J.to_string response)
        else Ok (J.Obj projected)
      end
  | _ -> Error "scan response is not an object"

let cli_text_of_scan response =
  match cli_json_of_scan response with
  | Error _ as e -> e
  | Ok (J.Obj fields) ->
      let buf = Buffer.create 1024 in
      (match List.assoc_opt "reports" fields with
      | Some (J.List reports) ->
          List.iter
            (fun r ->
              let s name =
                match r with
                | J.Obj fs -> (
                    match List.assoc_opt name fs with
                    | Some (J.String v) -> v
                    | Some (J.Int v) -> string_of_int v
                    | _ -> "")
                | _ -> ""
              in
              Buffer.add_string buf
                (Printf.sprintf "%s:%s: %s\n    suggested fix: %s -> %s\n" (s "file")
                   (s "line") (s "statement") (s "found") (s "suggested")))
            reports
      | _ -> ());
      Ok (Buffer.contents buf)
  | Ok _ -> Error "scan response is not an object"

let scan_fingerprint response =
  match response with
  | J.Obj fields ->
      let keep =
        List.filter
          (fun (k, _) -> List.mem k cli_fields && k <> "cache_hits" && k <> "cache_misses")
          fields
      in
      J.to_string (J.Obj keep)
  | j -> J.to_string j

module Load = struct
  type spec = {
    l_clients : int;
    l_requests : int;
    l_payload : J.t;
    l_reload_at : int option;
    l_reload_payload : J.t;
  }

  let default_spec ~payload =
    {
      l_clients = 8;
      l_requests = 50;
      l_payload = payload;
      l_reload_at = None;
      l_reload_payload = J.Obj [ ("op", J.String "reload") ];
    }

  type result = {
    lr_sent : int;
    lr_ok : int;
    lr_failed : int;
    lr_overloaded : int;
    lr_wall_s : float;
    lr_rps : float;
    lr_p50_ms : float;
    lr_p99_ms : float;
    lr_responses_identical : bool;
    lr_models_seen : string list;
    lr_reload_ok : bool;
    lr_sample : string option;
  }

  let run target spec =
    let lock = Mutex.create () in
    let next = ref 0 in
    let completed = ref 0 in
    let ok = ref 0 in
    let failed = ref 0 in
    let overloaded = ref 0 in
    let latencies = ref [] in
    let fingerprints = Hashtbl.create 4 in
    let models = Hashtbl.create 4 in
    let sample = ref None in
    let reload_fired = ref false in
    let reload_ok = ref (spec.l_reload_at = None) in
    let payload_line = J.to_string spec.l_payload in
    let locked f = Mutex.protect lock f in
    (* The client that crosses the reload threshold performs the reload on
       its own fresh connection, so scan traffic keeps flowing around it. *)
    let maybe_reload () =
      match spec.l_reload_at with
      | None -> ()
      | Some at ->
          let fire =
            locked (fun () ->
                if (not !reload_fired) && !completed >= at then begin
                  reload_fired := true;
                  true
                end
                else false)
          in
          if fire then begin
            let c = connect ~retry_for:5.0 target in
            let r =
              match request c spec.l_reload_payload with
              | Ok (J.Obj fields) -> List.assoc_opt "ok" fields = Some (J.Bool true)
              | _ -> false
            in
            close c;
            locked (fun () -> reload_ok := r)
          end
    in
    let classify_response raw =
      match J.parse raw with
      | Error _ -> `Failed
      | Ok (J.Obj fields as j) ->
          if List.assoc_opt "ok" fields = Some (J.Bool true) then begin
            (match List.assoc_opt "model" fields with
            | Some (J.String h) -> locked (fun () -> Hashtbl.replace models h ())
            | _ -> ());
            locked (fun () ->
                Hashtbl.replace fingerprints (scan_fingerprint j) ();
                if !sample = None then sample := Some raw);
            `Ok
          end
          else if List.assoc_opt "code" fields = Some (J.String "overloaded") then
            `Overloaded
          else `Failed
      | Ok _ -> `Failed
    in
    let client_thread () =
      let conn = connect ~retry_for:5.0 target in
      let rec loop () =
        let mine = locked (fun () ->
            if !next >= spec.l_requests then None
            else begin
              incr next;
              Some ()
            end)
        in
        match mine with
        | None -> ()
        | Some () ->
            let t0 = Unix.gettimeofday () in
            let outcome =
              match request_raw conn payload_line with
              | Ok raw -> classify_response raw
              | Error _ -> `Failed
            in
            let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
            locked (fun () ->
                incr completed;
                latencies := ms :: !latencies;
                match outcome with
                | `Ok -> incr ok
                | `Overloaded -> incr overloaded
                | `Failed -> incr failed);
            maybe_reload ();
            loop ()
      in
      Fun.protect ~finally:(fun () -> close conn) loop
    in
    let t0 = Unix.gettimeofday () in
    let threads =
      List.init (max 1 spec.l_clients) (fun _ -> Thread.create client_thread ())
    in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let lats = !latencies in
    let models_seen =
      Hashtbl.fold (fun h () acc -> h :: acc) models [] |> List.sort compare
    in
    {
      lr_sent = !completed;
      lr_ok = !ok;
      lr_failed = !failed;
      lr_overloaded = !overloaded;
      lr_wall_s = wall;
      lr_rps = (if wall > 0.0 then float_of_int !completed /. wall else 0.0);
      lr_p50_ms = (match lats with [] -> 0.0 | _ -> Stats_u.percentile 50.0 lats);
      lr_p99_ms = (match lats with [] -> 0.0 | _ -> Stats_u.percentile 99.0 lats);
      lr_responses_identical = Hashtbl.length fingerprints <= 1;
      lr_models_seen = models_seen;
      lr_reload_ok = !reload_ok;
      lr_sample = !sample;
    }

  let json_of_result r =
    J.Obj
      [
        ("requests", J.Int r.lr_sent);
        ("ok", J.Int r.lr_ok);
        ("failed", J.Int r.lr_failed);
        ("overloaded", J.Int r.lr_overloaded);
        ("wall_s", J.Float r.lr_wall_s);
        ("rps", J.Float r.lr_rps);
        ("p50_ms", J.Float r.lr_p50_ms);
        ("p99_ms", J.Float r.lr_p99_ms);
        ("responses_identical", J.Bool r.lr_responses_identical);
        ("models_seen", J.List (List.map (fun h -> J.String h) r.lr_models_seen));
        ("reload_ok", J.Bool r.lr_reload_ok);
      ]
  end
