(** Client side of the serve protocol: a blocking newline-delimited JSON
    connection, CLI-equivalent rendering of scan responses, and the
    multi-connection load generator behind [bench/loadtest] and the
    serve-smoke CI job. *)

type target = Unix_path of string | Tcp of string * int

type conn

val connect : ?retry_for:float -> target -> conn
(** Connect to a daemon.  [retry_for] (seconds, default [0.0]) keeps
    retrying refused/absent endpoints — a client racing daemon startup.
    @raise Unix.Unix_error when the endpoint stays unreachable. *)

val close : conn -> unit

val request : conn -> Namer_util.Json.t -> (Namer_util.Json.t, string) result
(** One round trip: send the request as one line, read one response line.
    [Error] covers closed connections and unparseable response lines. *)

val request_raw : conn -> string -> (string, string) result
(** [request] without the JSON encode/decode — sends [line] verbatim
    (newline appended) and returns the raw response line.  Tests use this
    to exercise the daemon's malformed-request handling. *)

val cli_json_of_scan : Namer_util.Json.t -> (Namer_util.Json.t, string) result
(** Project a scan response onto the CLI's [scan --model --json] object:
    same fields, same order, minus the protocol's [ok]/[op] envelope.
    Rendering it with [J.to_string ~indent:2] reproduces the CLI's stdout
    byte-for-byte. *)

val cli_text_of_scan : Namer_util.Json.t -> (string, string) result
(** Render a scan response exactly as the CLI's default text mode prints
    its reports ([file:line: statement] + suggested-fix lines).  The
    serve-smoke CI job diffs this against a real [namer scan --model]
    run. *)

val scan_fingerprint : Namer_util.Json.t -> string
(** Canonical identity of a scan response {e excluding} cache hit/miss
    counters, which legitimately differ between cold and warm requests.
    Two requests over the same files against the same model must have
    equal fingerprints — the load generator's byte-equality check. *)

(** Concurrent load generation. *)
module Load : sig
  type spec = {
    l_clients : int;  (** concurrent connections *)
    l_requests : int;  (** total requests across all clients *)
    l_payload : Namer_util.Json.t;  (** the request every client sends *)
    l_reload_at : int option;
        (** after this many completed requests, send one [reload] (on a
            dedicated extra connection) — exercises hot-swap mid-traffic *)
    l_reload_payload : Namer_util.Json.t;
  }

  val default_spec : payload:Namer_util.Json.t -> spec
  (** 8 clients, 50 requests, no reload. *)

  type result = {
    lr_sent : int;
    lr_ok : int;
    lr_failed : int;  (** transport errors + [ok:false] responses *)
    lr_overloaded : int;  (** [code:"overloaded"] refusals (not failures) *)
    lr_wall_s : float;
    lr_rps : float;  (** completed requests / wall time *)
    lr_p50_ms : float;
    lr_p99_ms : float;
    lr_responses_identical : bool;
        (** all ok scan responses shared one {!scan_fingerprint} *)
    lr_models_seen : string list;
        (** distinct model hashes across ok scan responses (sorted) —
            a reload mid-traffic must yield exactly the old and new *)
    lr_reload_ok : bool;  (** [true] when no reload was requested *)
    lr_sample : string option;  (** one ok scan response, raw line *)
  }

  val run : target -> spec -> result

  val json_of_result : result -> Namer_util.Json.t
  (** The schema-5 [serve] object of BENCH_pipeline.json. *)
end
