(** [namer serve] — a resident scan daemon.

    The train-once / scan-many split (DESIGN.md §8) makes the cold CLI
    start the dominant cost of a scan: loading a model is ~3 ms and a warm
    cached scan ~3 ms, yet every [namer scan --model] invocation pays
    process startup, model load and cache probing from scratch.  The serve
    daemon loads a {!Namer_core.Namer.model} snapshot {e once} and answers
    scan requests over a Unix or TCP socket for as long as it lives, so a
    single resident process sustains hundreds of requests per second.

    {2 Protocol}

    Newline-delimited JSON: the client writes one JSON object per line,
    the daemon answers each with exactly one JSON line.  A connection is
    keep-alive — any number of requests may be issued sequentially on it.

    Requests ([op] selects the operation):
    - [{"op":"scan","dir":DIR}] — scan every model-language file under a
      server-side directory;
    - [{"op":"scan","files":[PATH,…]}] — scan server-side files;
    - [{"op":"scan","sources":[{"path":P,"source":S},…]}] — scan inline
      sources shipped in the request;
    - optional [{"max_reports":N}] on any scan caps the rendered report
      list (the [violations] count stays exact);
    - [{"op":"status"}] — model identity, counters, pool and latency
      snapshot;
    - [{"op":"reload"}] or [{"op":"reload","model":PATH}] — hot-swap the
      model (see below);
    - [{"op":"shutdown"}] — acknowledge, then drain and exit.

    Responses always carry [{"ok":true|false}]; failures add
    [{"code":"bad_request"|"overloaded"|"timeout"|"degraded"|"internal",
    "error":MSG}].  A scan response mirrors the CLI's
    [namer scan --model --json] payload field-for-field ([files], [model],
    [patterns], [violations], [cache_hits], [cache_misses],
    [files_skipped], [skipped], [reports]), so daemon output is
    byte-convertible to CLI output ({!Client.cli_json_of_scan},
    {!Client.cli_text_of_scan} — the serve-smoke CI job diffs them).

    {2 Concurrency and the model lock}

    Each connection is handled by its own thread; scans fan their sharded
    digest/match phases onto one resident {!Namer_parallel.Pool} shared by
    every request ([sv_jobs > 1]).  The global name-path interner is
    single-writer (DESIGN.md §7), so the compute section of scans that
    digest uncached files — and model loads, which preload the interner —
    are serialized on one model lock; cache-hit replay, request parsing
    and response IO run fully concurrently.  The content-addressed scan
    cache ([sv_cache_dir]) is shared across requests and with concurrent
    CLI scans (atomic temp+rename publication, DESIGN.md §8).

    {2 Robustness}

    - {e Hot swap}: [reload] loads and validates the new snapshot under
      the model lock, then atomically swaps the model reference.
      Requests already in flight finish on the model they captured;
      every response names the model hash it was computed with, so a
      request straddling a reload sees exactly one model.  A snapshot
      that fails validation leaves the old model serving.
    - {e Backpressure}: at most [sv_max_concurrent] scans are admitted at
      once; excess scan requests are answered immediately with
      [code = "overloaded"] instead of queueing without bound.
    - {e Timeouts}: a connection that stalls mid-request (partial line,
      no progress for [sv_timeout_ms]) is answered with
      [code = "timeout"] and closed.  Idle keep-alive connections are
      not penalized.
    - {e Per-request isolation}: the [serve.request] fault point and any
      unexpected handler exception degrade to a structured error
      response; the daemon stays up (the scan pipeline's own per-file
      isolation applies inside scans, surfacing as [skipped] entries).
    - {e Drain}: SIGTERM/SIGINT (via {!request_stop}) stop the accept
      loop, let in-flight requests finish, close idle connections, and
      return aggregate {!stats} — which the CLI lands as one [serve] row
      in the run ledger. *)

(** Where the daemon listens.  [Tcp (host, 0)] binds an ephemeral port —
    read the resolved endpoint back with {!endpoint}. *)
type endpoint = Unix_path of string | Tcp of string * int

type config = {
  sv_model_path : string;  (** snapshot to load and serve *)
  sv_endpoint : endpoint;
  sv_cache_dir : string option;
      (** shared content-addressed report cache (DESIGN.md §8) *)
  sv_jobs : int;
      (** worker domains of the resident pool; [<= 1] scans inline *)
  sv_max_concurrent : int;  (** admitted scans before [overloaded] *)
  sv_timeout_ms : int;  (** mid-request stall budget per connection *)
  sv_max_request_bytes : int;  (** request-line size cap *)
}

val default_config : model_path:string -> endpoint -> config
(** jobs = recommended domain count, 64 concurrent scans, 30 s timeout,
    8 MiB request cap, no cache. *)

(** Aggregate counters of one daemon lifetime (the ledger row). *)
type stats = {
  st_connections : int;
  st_requests : int;
  st_scans : int;
  st_files : int;  (** files scanned (cache hits included) *)
  st_reports : int;  (** violation reports returned *)
  st_cache_hits : int;
  st_cache_misses : int;
  st_overloaded : int;
  st_timeouts : int;
  st_errors : int;  (** bad requests + internal errors *)
  st_degraded : int;  (** injected-fault responses *)
  st_reloads : int;
  st_p50_ms : float;  (** request latency percentiles (recent window) *)
  st_p99_ms : float;
  st_uptime_s : float;
  st_model_hash : string;  (** hash serving at shutdown *)
}

val stats_json : stats -> Namer_util.Json.t
(** The ledger [extra] fields for a serve run. *)

type t

val create : config -> t
(** Load the model, bind and listen.  Replaces a stale Unix socket file,
    but refuses one another daemon is still accepting on.
    @raise Namer_model.Snapshot.Error on an unreadable/corrupt snapshot.
    @raise Unix.Unix_error if the endpoint cannot be bound. *)

val endpoint : t -> endpoint
(** The bound endpoint, with an ephemeral TCP port resolved. *)

val model_hash : t -> string
(** Hash of the currently-served model (changes on reload). *)

val serve_forever : t -> stats
(** Run the accept loop until {!request_stop} (or a [shutdown] request),
    then drain in-flight requests, close the socket and return the
    lifetime stats.  Call at most once. *)

val request_stop : t -> unit
(** Begin a graceful drain; safe to call from a signal handler or any
    thread, idempotent. *)
