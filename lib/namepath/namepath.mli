(** Name paths (Definition 3.2) — the program abstraction for one
    identifier-name usage — and their relational operators (Definition 3.4).

    See the implementation comments for the extraction invariants (§3.1 of
    the paper): extracted paths are concrete and have pairwise-distinct
    prefixes. *)

(** One step of a prefix: a non-terminal's value and the index of the child
    taken. *)
type step = { value : string; index : int }

type t = {
  prefix : step list;  (** S — the root-to-parent steps *)
  end_node : string option;  (** the terminal subtoken; [None] is ϵ *)
}

(** Whether the end node is the symbolic ϵ. *)
val is_symbolic : t -> bool

(** [same_prefix a b] is the paper's [a ∼ b]: equal prefixes. *)
val same_prefix : t -> t -> bool

(** [equal a b] is the paper's [a = b]: equal prefixes, and equal end nodes
    or either ϵ. *)
val equal : t -> t -> bool

(** Forget the end node (make the path symbolic). *)
val to_symbolic : t -> t

(** Canonical text of the prefix alone — the interning key used by the
    pattern store's index. *)
val prefix_key : t -> string

(** Canonical text of the whole path, e.g.
    ["NumArgs(2) 0 Call 0 … NumST(2) 1 TestCase 0 True"]; ϵ renders as
    ["ϵ"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Ordering by canonical text — the [sort] of Algorithm 1, line 7. *)
val compare_canonical : t -> t -> int

(** [extract ?limit t] enumerates the concrete name paths of AST+ [t] in
    leaf order, keeping at most [limit] (default 10, the paper's
    regularization) and the first path per distinct prefix. *)
val extract : ?limit:int -> Namer_tree.Tree.t -> t list

(** Inverse of {!to_string}.  @raise Invalid_argument on malformed input. *)
val of_string : string -> t

(** Hash-consed name paths: canonical texts, prefixes and end subtokens
    become dense integer ids, rendered exactly once at extraction time, so
    the mining/scan hot loops compare, hash and sort machine integers.

    Interning normally targets the implicit {!Interned.global} table.  The
    multicore contract: populate sequentially — or digest into
    {!Interned.create_table} shard-local tables on worker domains and
    {!Interned.remap_into_global}-merge them in shard order, which
    reproduces the sequential id assignment exactly — then
    {!Interned.freeze} before domains fan out; a frozen table is read-only
    and safe to share.  Strings survive only at the serialization boundary
    ({!of_string}/{!to_string}, pattern persistence, report rendering). *)
module Interned : sig
  type path := t

  type t = {
    np : path;  (** the underlying name path *)
    pid : int;  (** id of the whole canonical text *)
    prefix : int;  (** id of the prefix text — the memoized prefix key *)
    end_ : int;  (** id of the end subtoken; [-1] is ϵ *)
    sym : int;  (** pid of the symbolic form (= [pid] when already ϵ) *)
  }

  (** One id space: interners for whole paths / prefixes / ends plus the
      derived lowercase-fold, path-of-pid and canonical-rank maps. *)
  type table

  val create_table : unit -> table
  val global : table

  (** Intern one path ([table] defaults to {!global}), rendering its texts
      exactly once.  @raise Invalid_argument on a frozen table when new. *)
  val of_path : ?table:table -> path -> t

  val of_paths : ?table:table -> path list -> t list

  (** Fused extract-and-intern: semantically
      [of_paths ?table (extract ?limit tree)] with bit-identical id
      assignment, but each prefix text rendered once, incrementally — the
      digest hot path. *)
  val extract_tree : ?table:table -> ?limit:int -> Namer_tree.Tree.t -> t list

  (** Global-table ids for pattern compilation: intern when unfrozen; when
      frozen, unknown strings map to the never-matching sentinel [-2]. *)
  val prefix_id : path -> int

  val path_id : path -> int
  val end_id : string -> int

  (** String views (global table).  @raise Invalid_argument on unknown ids. *)
  val end_name : int -> string

  val prefix_name : int -> string
  val lookup_prefix : string -> int option
  val lookup_end : string -> int option
  val n_ends : unit -> int

  (** Lowercase-folded end id — consistency checks are case-insensitive. *)
  val lower_end : int -> int

  (** The name path behind a global path id. *)
  val path_of_pid : int -> path

  (** Freeze the global table read-only and precompute canonical-text ranks
      so {!compare_rank} is an integer comparison.  Pair with {!thaw}. *)
  val freeze : unit -> unit

  val thaw : unit -> unit
  val is_frozen : unit -> bool

  (** Canonical-text order ({!compare_canonical}) on interned paths; rank
      ints when frozen, text otherwise — identical sort either way. *)
  val compare_rank : t -> t -> int

  (** Same order on bare global path ids. *)
  val compare_pids : int -> int -> int

  (** Global prefix and end vocabularies in id order, for model snapshots
      (whole-path ids are per-scan digest state and are not exported). *)
  val export_global : unit -> string list * string list

  (** Re-populate the global table from a snapshot in saved id order —
      exact id (and lowercase-fold) reproduction on an empty table, a
      harmless merge otherwise.  @raise Invalid_argument when frozen. *)
  val preload_global : prefixes:string list -> ends:string list -> unit

  (** Id translations from a shard-local table into the global one. *)
  type remap = { path_map : int array; prefix_map : int array; end_map : int array }

  (** Merge a shard-local table into {!global} (in first-seen order; call in
      shard order to reproduce the sequential id assignment). *)
  val remap_into_global : table -> remap

  val apply_remap : remap -> t -> t
end

(** Alias for {!Interned.extract_tree}. *)
val extract_interned :
  ?table:Interned.table -> ?limit:int -> Namer_tree.Tree.t -> Interned.t list
