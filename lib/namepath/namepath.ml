(** Name paths (Definition 3.2) and their relational operators.

    A name path is the paper's program abstraction for one identifier-name
    usage: the prefix [S] — the (node value, child index) steps from the root
    of a transformed AST to the parent of a terminal — plus the end node,
    which is either the concrete leaf subtoken or the symbolic node ϵ.

    [extract] enumerates the concrete name paths of a statement's AST+ in
    leaf order, enforcing the two properties of §3.1: all extracted paths
    are concrete and their prefixes are pairwise distinct (duplicate
    prefixes keep the first occurrence; statements whose abstraction would
    conflate distinct leaves under one prefix are simply represented by the
    leftmost one, matching the "keep the first 10 paths" regularization
    spirit of §5.1). *)

module Tree = Namer_tree.Tree

type step = { value : string; index : int }

type t = {
  prefix : step list;
  end_node : string option;  (** [None] is the symbolic node ϵ *)
}

let is_symbolic p = p.end_node = None

(** [np1 ∼ np2]: equal prefixes (Definition 3.4). *)
let same_prefix a b =
  List.length a.prefix = List.length b.prefix
  && List.for_all2
       (fun s1 s2 -> s1.index = s2.index && String.equal s1.value s2.value)
       a.prefix b.prefix

(** [np1 = np2]: equal prefixes, and end nodes equal or either ϵ. *)
let equal a b =
  same_prefix a b
  &&
  match (a.end_node, b.end_node) with
  | None, _ | _, None -> true
  | Some x, Some y -> String.equal x y

(** Forget the end node: the symbolic version of a concrete path. *)
let to_symbolic p = { p with end_node = None }

(** Canonical text of the prefix, e.g.
    ["NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase"].
    Used as the interning key for prefixes. *)
let prefix_key p =
  String.concat " "
    (List.map (fun s -> Printf.sprintf "%s %d" s.value s.index) p.prefix)

let to_string p =
  prefix_key p ^ " " ^ (match p.end_node with Some e -> e | None -> "ϵ")

let pp fmt p = Format.pp_print_string fmt (to_string p)

(** Compare by canonical text — the [sort] used when inserting into the
    FP-tree (Algorithm 1, line 7). *)
let compare_canonical a b = compare (to_string a) (to_string b)

(** [extract ?limit t] returns the concrete name paths of AST+ [t], in leaf
    order, at most [limit] of them (the paper keeps the first 10). *)
let extract ?(limit = 10) (t : Tree.t) : t list =
  let out = ref [] and count = ref 0 in
  let seen_prefix = Hashtbl.create 16 in
  let rec go rev_prefix (node : Tree.t) =
    if !count < limit then
      if Tree.is_leaf node then begin
        let p = { prefix = List.rev rev_prefix; end_node = Some node.Tree.value } in
        let key = prefix_key p in
        if not (Hashtbl.mem seen_prefix key) then begin
          Hashtbl.replace seen_prefix key ();
          out := p :: !out;
          incr count
        end
      end
      else
        List.iteri
          (fun i child ->
            go ({ value = node.Tree.value; index = i } :: rev_prefix) child)
          node.Tree.children
  in
  go [] t;
  List.rev !out

(** Parse the canonical text back to a name path — the inverse of
    {!to_string}, used by tests and the pattern store. *)
let of_string s =
  let parts = String.split_on_char ' ' s in
  let rec go acc = function
    | [ end_ ] ->
        {
          prefix = List.rev acc;
          end_node = (if end_ = "ϵ" then None else Some end_);
        }
    | value :: index :: rest ->
        go ({ value; index = int_of_string index } :: acc) rest
    | [] -> invalid_arg "Namepath.of_string: empty"
  in
  go [] parts

(* ------------------------------------------------------------------ *)
(* Hash-consed representation                                          *)
(* ------------------------------------------------------------------ *)

module Interner = Namer_util.Interner

(** The interned-id representation of name paths: every path's canonical
    text, prefix text and end subtoken are hash-consed into dense ids, so
    the mining/scan hot loops compare and hash machine integers instead of
    re-rendering strings (the [prefix_key : t -> int] memoization of the
    hash-consing layer).

    A {!table} owns three interners (whole paths, prefixes, ends) plus the
    derived maps the hot paths need: the name path behind every path id,
    the lowercase-folded id of every end (consistency checks are
    case-insensitive), and — once frozen — the canonical-text rank of every
    path id, so "sort by canonical text" becomes an integer sort.

    Multicore contract: the implicit {!global} table is populated
    sequentially (or by {!remap}-merging shard-local tables in shard
    order), then {!freeze}-frozen before worker domains fan out; frozen
    tables are read-only and safe to share.  Strings survive only at the
    serialization boundary ({!Namepath.of_string}/{!to_string},
    pattern persistence, report rendering). *)
module Interned = struct
  type path = t

  type nonrec t = {
    np : path;  (** the underlying name path *)
    pid : int;  (** id of the whole canonical text *)
    prefix : int;  (** id of the prefix text — the memoized prefix key *)
    end_ : int;  (** id of the end subtoken; [-1] is ϵ *)
    sym : int;  (** pid of the symbolic form (= [pid] when already ϵ) *)
  }

  type table = {
    paths : Interner.t;
    prefixes : Interner.t;
    ends : Interner.t;
    mutable lower : int array;  (** end id → end id of the lowercased form *)
    mutable by_pid : path array;  (** path id → the name path *)
    mutable rank : int array;  (** path id → canonical-text rank (frozen) *)
    mutable frozen : bool;
  }

  let dummy_path = { prefix = []; end_node = None }

  let create_table () =
    {
      paths = Interner.create ();
      prefixes = Interner.create ();
      ends = Interner.create ();
      lower = Array.make 64 (-1);
      by_pid = Array.make 64 dummy_path;
      rank = [||];
      frozen = false;
    }

  let global = create_table ()

  let grow_to arr n fill =
    if n <= Array.length arr then arr
    else begin
      let bigger = Array.make (max n (2 * Array.length arr)) fill in
      Array.blit arr 0 bigger 0 (Array.length arr);
      bigger
    end

  let rec intern_end tb e =
    match Interner.lookup tb.ends e with
    | Some id -> id
    | None ->
        let id = Interner.intern tb.ends e in
        tb.lower <- grow_to tb.lower (id + 1) (-1);
        let low = String.lowercase_ascii e in
        let lid = if String.equal low e then id else intern_end tb low in
        tb.lower.(id) <- lid;
        id

  let intern_path tb np text =
    match Interner.lookup tb.paths text with
    | Some id -> id
    | None ->
        let id = Interner.intern tb.paths text in
        tb.by_pid <- grow_to tb.by_pid (id + 1) dummy_path;
        tb.by_pid.(id) <- np;
        id

  (** Intern one name path: renders its prefix/whole/symbolic texts exactly
      once, at extraction time.  Raises [Invalid_argument] on a frozen
      table when the path is unknown. *)
  let of_path ?(table = global) (np : path) : t =
    let prefix_text = prefix_key np in
    let prefix = Interner.intern table.prefixes prefix_text in
    match np.end_node with
    | None ->
        let pid = intern_path table np (prefix_text ^ " ϵ") in
        { np; pid; prefix; end_ = -1; sym = pid }
    | Some e ->
        let pid = intern_path table np (prefix_text ^ " " ^ e) in
        let end_ = intern_end table e in
        let sym = intern_path table { np with end_node = None } (prefix_text ^ " ϵ") in
        { np; pid; prefix; end_; sym }

  let of_paths ?table nps = List.map (fun np -> of_path ?table np) nps

  (** Fused extract-and-intern: the concrete name paths of AST+ [tree] in
      leaf order, already interned — semantically
      [of_paths ?table (extract ?limit tree)], with identical dedup,
      traversal-limit and intern-call order (so id assignment is
      bit-identical), but each prefix's canonical text is rendered once,
      incrementally, in a single reused buffer instead of twice via
      [Printf.sprintf] per step.  This is the digest hot path. *)
  let extract_tree ?(table = global) ?(limit = 10) (tree : Tree.t) : t list =
    let out = ref [] and count = ref 0 in
    let seen_prefix = Hashtbl.create 16 in
    let pbuf = Buffer.create 128 in
    let rec go rev_prefix (node : Tree.t) =
      if !count < limit then
        if Tree.is_leaf node then begin
          let prefix_text = Buffer.contents pbuf in
          if not (Hashtbl.mem seen_prefix prefix_text) then begin
            Hashtbl.replace seen_prefix prefix_text ();
            let np =
              { prefix = List.rev rev_prefix; end_node = Some node.Tree.value }
            in
            (* same intern order as {!of_path}: prefix, whole path, end,
               symbolic path *)
            let prefix = Interner.intern table.prefixes prefix_text in
            let e = node.Tree.value in
            let pid = intern_path table np (prefix_text ^ " " ^ e) in
            let end_ = intern_end table e in
            let sym =
              intern_path table { np with end_node = None } (prefix_text ^ " ϵ")
            in
            out := { np; pid; prefix; end_; sym } :: !out;
            incr count
          end
        end
        else
          List.iteri
            (fun i child ->
              let saved = Buffer.length pbuf in
              if saved > 0 then Buffer.add_char pbuf ' ';
              Buffer.add_string pbuf node.Tree.value;
              Buffer.add_char pbuf ' ';
              Buffer.add_string pbuf (string_of_int i);
              go ({ value = node.Tree.value; index = i } :: rev_prefix) child;
              Buffer.truncate pbuf saved)
            node.Tree.children
    in
    go [] tree;
    List.rev !out

  (* lookup-or-intern against the global table: when the table is frozen,
     unknown strings map to the never-matching sentinel [-2] instead of
     raising — a frozen table means the corpus has been fully interned, so
     an unknown string cannot occur in any statement. *)
  let find_or ~intern ~look s =
    if global.frozen then match look s with Some i -> i | None -> -2 else intern s

  (** Global prefix id of a path (intern when unfrozen, [-2] sentinel when
      frozen and unknown). *)
  let prefix_id np =
    find_or
      ~intern:(fun s -> Interner.intern global.prefixes s)
      ~look:(fun s -> Interner.lookup global.prefixes s)
      (prefix_key np)

  (** Global path id of a path's whole canonical text (same sentinel). *)
  let path_id np =
    let text = to_string np in
    if global.frozen then
      match Interner.lookup global.paths text with Some i -> i | None -> -2
    else intern_path global np text

  (** Global end id of a subtoken (same sentinel). *)
  let end_id e =
    find_or ~intern:(fun s -> intern_end global s)
      ~look:(fun s -> Interner.lookup global.ends s)
      e

  let end_name e = Interner.name global.ends e
  let prefix_name p = Interner.name global.prefixes p
  let n_ends () = Interner.size global.ends
  let lookup_prefix s = Interner.lookup global.prefixes s
  let lookup_end s = Interner.lookup global.ends s

  (** Lowercase-folded end id ([lower_end e = lower_end (lower_end e)]). *)
  let lower_end e = global.lower.(e)

  (** The name path behind a global path id. *)
  let path_of_pid pid = global.by_pid.(pid)

  (** Freeze the global table read-only and precompute the canonical-text
      rank of every path id: after this, sorting paths by [rank] is
      sorting by canonical text, with no string comparison. *)
  let freeze () =
    Interner.freeze global.paths;
    Interner.freeze global.prefixes;
    Interner.freeze global.ends;
    let n = Interner.size global.paths in
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b -> compare (Interner.name global.paths a) (Interner.name global.paths b))
      order;
    let rank = Array.make n 0 in
    Array.iteri (fun r pid -> rank.(pid) <- r) order;
    global.rank <- rank;
    global.frozen <- true

  let thaw () =
    Interner.thaw global.paths;
    Interner.thaw global.prefixes;
    Interner.thaw global.ends;
    global.frozen <- false

  let is_frozen () = global.frozen

  (** Canonical-text order on interned paths: an integer comparison when
      the global table is frozen, a text comparison otherwise.  Rank order
      equals text order restricted to any subset, so both branches sort
      identically. *)
  let compare_rank a b =
    if global.frozen then compare global.rank.(a.pid) global.rank.(b.pid)
    else compare_canonical a.np b.np

  (** Same order on bare global path ids. *)
  let compare_pids a b =
    if global.frozen then compare global.rank.(a) global.rank.(b)
    else compare_canonical global.by_pid.(a) global.by_pid.(b)

  (* ---------------- snapshot persistence ---------------- *)

  let interner_strings i =
    let acc = ref [] in
    Interner.iter (fun _ s -> acc := s :: !acc) i;
    List.rev !acc

  (** The global prefix and end vocabularies in id order — the interner
      state a compiled pattern store references, exported for model
      snapshots.  Whole-path ids are per-scan digest state (every scan
      re-derives them from its input), so they are not part of the model. *)
  let export_global () = (interner_strings global.prefixes, interner_strings global.ends)

  (** Re-populate the global table from a snapshot, in saved id order:
      interning through the same {!intern_end} recursion that produced the
      saved order reproduces the id assignment (and the lowercase-fold map)
      exactly when the table is empty, and is a harmless warm-up merge when
      it is not.  @raise Invalid_argument on a frozen table. *)
  let preload_global ~prefixes ~ends =
    List.iter (fun s -> ignore (Interner.intern global.prefixes s)) prefixes;
    List.iter (fun e -> ignore (intern_end global e)) ends

  (** Id translations from a shard-local table into the global one. *)
  type remap = { path_map : int array; prefix_map : int array; end_map : int array }

  (** [remap_into_global local] interns every string of [local] into the
      global table, in [local]'s first-seen id order, and returns the id
      translations.  Merging shard-local tables in shard order reproduces
      the id assignment of a sequential interning pass, which is why a
      [jobs = N] build is byte-identical to [jobs = 1]. *)
  let remap_into_global (local : table) : remap =
    let prefix_map = Interner.remap ~into:global.prefixes local.prefixes in
    let end_map = Array.make (Interner.size local.ends) (-1) in
    Interner.iter (fun id e -> end_map.(id) <- intern_end global e) local.ends;
    let path_map = Array.make (Interner.size local.paths) (-1) in
    Interner.iter
      (fun id text -> path_map.(id) <- intern_path global local.by_pid.(id) text)
      local.paths;
    { path_map; prefix_map; end_map }

  (** Translate one interned path through a {!remap}. *)
  let apply_remap (m : remap) (it : t) : t =
    {
      it with
      pid = m.path_map.(it.pid);
      prefix = m.prefix_map.(it.prefix);
      end_ = (if it.end_ < 0 then -1 else m.end_map.(it.end_));
      sym = m.path_map.(it.sym);
    }
end

(** Fused fast path: {!extract} and {!Interned.of_paths} in one traversal,
    rendering each prefix's canonical text exactly once. *)
let extract_interned = Interned.extract_tree
