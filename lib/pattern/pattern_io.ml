(** Persistence for mined pattern sets.

    A {!Pattern.Store.t} serializes to a line-oriented text format so a
    mining run over a large corpus can be done once and its patterns reused
    by later scans (the CLI's mine-once/scan-many workflow).  One pattern
    per line, in the canonical form produced by {!Pattern.canonical}:

    {v
    CONSISTENCY : <path> ; <path> => <path> ; <path>
    CONFUSING(->word) : <path> => <path>
    v}

    Lines starting with [#] are comments.  The parser is the exact inverse
    of {!Pattern.canonical} (round-trip property tested in the suite). *)

module Namepath = Namer_namepath.Namepath

exception Parse_error of string

(* Single-pass substring search: compare characters in place instead of
   allocating a [String.sub] candidate at every position, so parsing a
   large pattern file stays linear in its size (the separators here are
   3–4 bytes, so the inner probe is a bounded constant). *)
let split_on_substring ~sep s =
  let sl = String.length sep and n = String.length s in
  if sl = 0 then invalid_arg "split_on_substring: empty separator";
  let c0 = sep.[0] in
  let matches_at i =
    let rec go j = j >= sl || (s.[i + j] = sep.[j] && go (j + 1)) in
    go 1
  in
  let rec find i =
    if i + sl > n then None
    else if s.[i] = c0 && matches_at i then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i -> Some (String.sub s 0 i, String.sub s (i + sl) (n - i - sl))
  | None -> None

let parse_paths s =
  let s = String.trim s in
  if s = "" then []
  else
    String.split_on_char ';' s
    |> List.map (fun part -> Namepath.of_string (String.trim part))

(** Parse one canonical pattern line. *)
let pattern_of_string line : Pattern.t =
  let kind_str, rest =
    match split_on_substring ~sep:" : " line with
    | Some x -> x
    | None -> raise (Parse_error ("missing ' : ' separator: " ^ line))
  in
  let cond_str, ded_str =
    match split_on_substring ~sep:" => " rest with
    | Some x -> x
    | None -> raise (Parse_error ("missing ' => ' separator: " ^ line))
  in
  let kind =
    match kind_str with
    | "CONSISTENCY" -> Pattern.Consistency
    | s
      when String.length s > 12
           && String.sub s 0 12 = "CONFUSING(->"
           && s.[String.length s - 1] = ')' ->
        Pattern.Confusing_word { correct = String.sub s 12 (String.length s - 13) }
    | s
      when String.length s > 10
           && String.sub s 0 9 = "ORDERING("
           && s.[String.length s - 1] = ')' -> (
        let inner = String.sub s 9 (String.length s - 10) in
        match String.index_opt inner '<' with
        | Some i ->
            Pattern.Ordering
              {
                first = String.sub inner 0 i;
                second = String.sub inner (i + 1) (String.length inner - i - 1);
              }
        | None -> raise (Parse_error ("malformed ORDERING kind: " ^ s)))
    | s -> raise (Parse_error ("unknown pattern kind: " ^ s))
  in
  Pattern.make ~kind ~condition:(parse_paths cond_str) ~deduction:(parse_paths ded_str)

(** Render a store to the text format. *)
let to_string (store : Pattern.Store.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# namer pattern store v1\n";
  Pattern.Store.iter
    (fun p ->
      Buffer.add_string buf (Pattern.canonical p);
      Buffer.add_char buf '\n')
    store;
  Buffer.contents buf

(** Parse a store from the text format; raises {!Parse_error} on garbage. *)
let of_string (s : string) : Pattern.Store.t =
  let store = Pattern.Store.create () in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then
           ignore (Pattern.Store.add store (pattern_of_string line)));
  store

let save (store : Pattern.Store.t) ~path =
  let oc = open_out path in
  output_string oc (to_string store);
  close_out oc

let load ~path : Pattern.Store.t =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
