(** Name patterns (Definitions 3.6–3.9) and their match / satisfaction /
    violation relationships, plus the deduplicating pattern store with its
    inverted matching index.  Digests and pattern checks run in the
    hash-consed {!Namepath.Interned} id space; strings appear only in the
    [Violated] payloads and the persistence layer. *)

module Namepath = Namer_namepath.Namepath

type kind =
  | Consistency
      (** deduction = two symbolic paths whose subtokens must agree
          (case-insensitively), as in Example 3.8's [self.<n> = <n>] *)
  | Confusing_word of { correct : string }
      (** deduction = one path whose end must be the correct word w₂ of a
          mined confusing pair ⟨w₁, w₂⟩, as in Figure 2(e) *)
  | Ordering of { first : string; second : string }
      (** extension: deduction = two paths that must carry the word pair in
          canonical order ([resize(width, height)]); the exact swap
          violates — the argument-swap defect class of the paper's related
          work (Rice et al., DeepBugs) *)

(** A pattern lowered to the interned-id space; built lazily, memoized. *)
type compiled

type t = {
  kind : kind;
  condition : Namepath.t list;
  deduction : Namepath.t list;
  id : int;  (** dense id assigned by {!Store.add}; -1 before registration *)
  mutable compiled : compiled option;
}

val make : kind:kind -> condition:Namepath.t list -> deduction:Namepath.t list -> t

(** Canonical text, stable across runs; used for deduplication and
    persistence ({!Pattern_io}). *)
val canonical : t -> string

val pp : Format.formatter -> t -> unit

(** Whether the pattern constrains a callee name (feature 13 of Table 1). *)
val targets_function_name : t -> bool

(** Statements pre-digested for pattern checking. *)
module Stmt_paths : sig
  type t = {
    ipaths : Namepath.Interned.t array;  (** all paths, original order *)
    index_prefix : int array;
        (** distinct concrete-path prefix ids, leaf order *)
    index_end : int array;  (** end id of the first path at that prefix *)
    n_paths : int;
  }

  (** Digest a path list; [table] (default the global table) lets worker
      domains intern into shard-local tables and {!remap} later. *)
  val of_paths : ?table:Namepath.Interned.table -> Namepath.t list -> t

  (** Assemble a digest from already-interned paths — the partial-model
      replay path, where the vocabulary was interned once up front.
      [of_paths ps = of_interned (Interned.of_paths ps)]. *)
  val of_interned : Namepath.Interned.t list -> t

  val of_tree : ?table:Namepath.Interned.table -> ?limit:int -> Namer_tree.Tree.t -> t
  val paths : t -> Namepath.t list

  (** End id at a prefix id, [-1] when absent — the hot-path lookup. *)
  val end_id : t -> prefix:int -> int

  (** The digest's own prefix-id index (shared array — do not mutate). *)
  val prefix_ids : t -> int array

  (** String views, valid for digests interned against the global table. *)
  val end_at : t -> prefix_key:string -> string option

  val prefix_keys : t -> string list

  (** Translate a shard-local digest into global ids. *)
  val remap : Namepath.Interned.remap -> t -> t
end

(** One violated occurrence: the offending subtoken and the deduced fix. *)
type violation_info = {
  offending_prefix : string;
  found : string;
  suggested : string;
}

type relation = No_match | Satisfied | Violated of violation_info

(** Classify a statement against a pattern per Definitions 3.7/3.9 —
    integer comparisons only on the hot path. *)
val check : t -> Stmt_paths.t -> relation

(** Force the memoized compiled form (done automatically by {!Store.add}
    and {!check}); call before sharing a pattern across domains. *)
val ensure_compiled : t -> compiled

module Store : sig
  type pattern := t

  (** A deduplicated pattern collection with an inverted index from
      deduction-prefix ids to patterns. *)
  type t

  val create : unit -> t
  val size : t -> int
  val get : t -> int -> pattern

  (** Register (deduplicating by canonical form); returns the pattern id. *)
  val add : t -> pattern -> int

  (** Register without rendering canonical text — for callers that already
      deduplicated in id space (the miner's candidate store). *)
  val add_nodedup : t -> pattern -> int

  (** Patterns whose deduction prefix occurs in the statement — the
      candidate set for {!check}. *)
  val candidates : t -> Stmt_paths.t -> pattern list

  val iter : (pattern -> unit) -> t -> unit
  val fold : ('a -> pattern -> 'a) -> t -> 'a -> 'a
end
