(** Name patterns (Definitions 3.6–3.9) and their match / satisfaction /
    violation relationships against program statements.

    A name pattern is a pair of name-path sets: the *condition* C (concrete
    paths that must all occur in the statement) and the *deduction* D
    (prefixes that must occur, whose end nodes the pattern constrains).  Two
    pattern types are implemented, as in the paper:

    - {e consistency} patterns — D = two symbolic paths; the statement
      satisfies the pattern when the subtokens at both prefixes are equal
      (Example 3.8: [self.<n> = <n>]);
    - {e confusing-word} patterns — D = one concrete path whose end is the
      *correct* word of a mined confusing word pair; any other subtoken at
      that prefix violates the pattern (Figure 2(e): second subtoken of the
      assert callee must be [Equal]).

    Statements are pre-digested into {!Stmt_paths.t} — their name paths in
    the hash-consed {!Namepath.Interned} representation plus a tiny
    prefix-id → end-id index — and patterns are lazily *compiled* to the
    same id space, making every relationship check a handful of integer
    comparisons with no string rendering. *)

module Namepath = Namer_namepath.Namepath
module I = Namepath.Interned

type kind =
  | Consistency
  | Confusing_word of { correct : string }
      (** the deduced word w₂ of a mined confusing pair ⟨w₁, w₂⟩; whether a
          violation's found word actually forms a mined pair with w₂ is
          feature 17, checked against {!Namer_mining.Confusing_pairs} *)
  | Ordering of { first : string; second : string }
      (** extension (the paper's "addition of more patterns" future work):
          two sibling positions must carry the word pair in its canonical
          order — [resize(width, height)], [range(min, max)]; the exact swap
          is the violation (the argument-swap defect class of Rice et al.
          and DeepBugs, both discussed in the paper's related work) *)

(** A pattern compiled to the global interned-id space: condition and
    deduction prefixes as prefix ids, constrained ends as end ids.  The
    sentinel [-1] in a condition's want-slot is ϵ (any end); [-2] anywhere
    is "unknown while frozen" and never matches. *)
type compiled = {
  c_cond : (int * int) array;  (** (prefix id, wanted end id or -1 for ϵ) *)
  c_ded : int array;  (** deduction prefix ids, in deduction order *)
  c_kind : ckind;
}

and ckind =
  | C_consistency
  | C_confusing of int  (** correct end id *)
  | C_ordering of int * int  (** (first, second) end ids *)
  | C_malformed  (** deduction arity does not match kind; {!check} raises *)

type t = {
  kind : kind;
  condition : Namepath.t list;  (** concrete paths *)
  deduction : Namepath.t list;
      (** symbolic ×2 for consistency; concrete ×1 for confusing word *)
  id : int;  (** dense id assigned by the store; -1 before registration *)
  mutable compiled : compiled option;
      (** lazy int-space form; memoized so scans never re-render prefixes *)
}

let make ~kind ~condition ~deduction =
  { kind; condition; deduction; id = -1; compiled = None }

(** Canonical text: condition and deduction in canonical order, separated by
    ["=>"]; stable across runs, used for de-duplication and persistence. *)
let canonical p =
  let paths ps =
    ps
    |> List.map Namepath.to_string
    |> List.sort compare
    |> String.concat " ; "
  in
  let kind_tag =
    match p.kind with
    | Consistency -> "CONSISTENCY"
    | Confusing_word { correct } -> Printf.sprintf "CONFUSING(->%s)" correct
    | Ordering { first; second } -> Printf.sprintf "ORDERING(%s<%s)" first second
  in
  Printf.sprintf "%s : %s => %s" kind_tag (paths p.condition) (paths p.deduction)

let pp fmt p = Format.pp_print_string fmt (canonical p)

(** Whether the pattern constrains a function/method name (callee subtoken)
    rather than an object/variable name — feature 13 of the classifier.
    Determined from the deduction prefix: callee names live under the [Attr]
    of a call's [AttributeLoad], or under a bare [NameLoad] directly below
    [Call]. *)
let targets_function_name p =
  let prefix_has_call_attr (np : Namepath.t) =
    let rec scan = function
      | { Namepath.value = "Call"; _ } :: { Namepath.value = "AttributeLoad"; index = 1 }
        :: { Namepath.value = "Attr"; _ } :: _ ->
          true
      | { Namepath.value = "Call"; index = 0 } :: { Namepath.value = "NameLoad"; _ } :: _ ->
          true
      | _ :: rest -> scan rest
      | [] -> false
    in
    scan np.Namepath.prefix
  in
  List.exists prefix_has_call_attr p.deduction

(* ------------------------------------------------------------------ *)
(* Compilation to the interned-id space                                *)
(* ------------------------------------------------------------------ *)

let compile (p : t) : compiled =
  let want (np : Namepath.t) =
    match np.Namepath.end_node with None -> -1 | Some e -> I.end_id e
  in
  let c_cond =
    Array.of_list (List.map (fun c -> (I.prefix_id c, want c)) p.condition)
  in
  let c_ded = Array.of_list (List.map I.prefix_id p.deduction) in
  let c_kind =
    match (p.kind, p.deduction) with
    | Consistency, [ _; _ ] -> C_consistency
    | Confusing_word { correct }, [ _ ] -> C_confusing (I.end_id correct)
    | Ordering { first; second }, [ _; _ ] ->
        C_ordering (I.end_id first, I.end_id second)
    | _ -> C_malformed
  in
  { c_cond; c_ded; c_kind }

(** The memoized compiled form.  Compilation interns against the global
    table when it is unfrozen (pattern loading), and falls back to
    never-matching [-2] sentinels for unknown strings when frozen — so it is
    safe, but only useful, to compile before worker domains fan out;
    {!Store.add} does exactly that. *)
let ensure_compiled p =
  match p.compiled with
  | Some c -> c
  | None ->
      let c = compile p in
      p.compiled <- Some c;
      c

(* ------------------------------------------------------------------ *)
(* Statement digests                                                   *)
(* ------------------------------------------------------------------ *)

module Stmt_paths = struct
  (** A statement digested for pattern checking: its name paths in interned
      form, plus the concrete prefix → end index as two parallel int arrays
      in leaf order (statements hold ≤ 10 paths, so a linear scan over an
      int array beats a hash lookup and allocates nothing). *)
  type t = {
    ipaths : I.t array;  (** all paths, original order *)
    index_prefix : int array;  (** distinct concrete-path prefix ids, leaf order *)
    index_end : int array;  (** end id of the first path at that prefix *)
    n_paths : int;
  }

  let of_interned (paths : I.t list) =
    let ipaths = Array.of_list paths in
    let n = Array.length ipaths in
    let ip = Array.make n 0 and ie = Array.make n 0 in
    let k = ref 0 in
    Array.iter
      (fun (it : I.t) ->
        if it.I.end_ >= 0 then begin
          let dup = ref false in
          for j = 0 to !k - 1 do
            if ip.(j) = it.I.prefix then dup := true
          done;
          if not !dup then begin
            ip.(!k) <- it.I.prefix;
            ie.(!k) <- it.I.end_;
            incr k
          end
        end)
      ipaths;
    { ipaths; index_prefix = Array.sub ip 0 !k; index_end = Array.sub ie 0 !k; n_paths = n }

  let of_paths ?table (paths : Namepath.t list) = of_interned (I.of_paths ?table paths)

  (* the digest hot path: extract + intern fused into one traversal *)
  let of_tree ?table ?limit tree =
    of_interned (Namepath.extract_interned ?table ?limit tree)
  let paths t = Array.to_list (Array.map (fun (it : I.t) -> it.I.np) t.ipaths)

  (** End id at [prefix], or [-1] when the prefix does not occur. *)
  let end_id t ~prefix =
    let n = Array.length t.index_prefix in
    let rec go i =
      if i >= n then -1
      else if t.index_prefix.(i) = prefix then t.index_end.(i)
      else go (i + 1)
    in
    go 0

  (** The distinct concrete prefix ids, leaf order — the digest's own index,
      shared, not rebuilt per call. *)
  let prefix_ids t = t.index_prefix

  (* String views for the serialization boundary; only meaningful for
     digests interned against the global table. *)
  let end_at t ~prefix_key =
    match I.lookup_prefix prefix_key with
    | None -> None
    | Some p ->
        let e = end_id t ~prefix:p in
        if e < 0 then None else Some (I.end_name e)

  let prefix_keys t =
    Array.to_list (Array.map I.prefix_name t.index_prefix)

  (** Translate a digest built on a shard-local table into global ids. *)
  let remap (m : I.remap) t =
    {
      ipaths = Array.map (I.apply_remap m) t.ipaths;
      index_prefix = Array.map (fun p -> m.I.prefix_map.(p)) t.index_prefix;
      index_end = Array.map (fun e -> m.I.end_map.(e)) t.index_end;
      n_paths = t.n_paths;
    }
end

(* ------------------------------------------------------------------ *)
(* Relationships                                                       *)
(* ------------------------------------------------------------------ *)

(** Details of one violated pattern occurrence: what was found at the
    deduction prefix and what the pattern deduces it should be — the
    suggested fix (§3.2: "modify the statement so that the violated pattern
    becomes satisfied"). *)
type violation_info = {
  offending_prefix : string;  (** prefix key of the offending name path *)
  found : string;  (** subtoken present in the statement *)
  suggested : string;  (** subtoken the pattern deduces *)
}

type relation = No_match | Satisfied | Violated of violation_info

(** [check p s] classifies statement digest [s] against pattern [p].  Pure
    integer comparisons on the hot path; strings are only rendered for the
    [Violated] payload. *)
let check (p : t) (s : Stmt_paths.t) : relation =
  let c = ensure_compiled p in
  let condition_holds =
    Array.for_all
      (fun (pfx, want) ->
        let got = Stmt_paths.end_id s ~prefix:pfx in
        got >= 0 && (want = -1 || want = got))
      c.c_cond
  in
  if not condition_holds then No_match
  else
    match c.c_kind with
    | C_consistency ->
        let e1 = Stmt_paths.end_id s ~prefix:c.c_ded.(0)
        and e2 = Stmt_paths.end_id s ~prefix:c.c_ded.(1) in
        if e1 < 0 || e2 < 0 then No_match
          (* Case-insensitive: [stringWriter] is consistent with its
             [StringWriter] type; [camelCase] with [snake_case] renderings. *)
        else if I.lower_end e1 = I.lower_end e2 then Satisfied
        else
          Violated
            {
              offending_prefix = I.prefix_name c.c_ded.(1);
              found = I.end_name e2;
              suggested = I.end_name e1;
            }
    | C_confusing correct -> (
        let e = Stmt_paths.end_id s ~prefix:c.c_ded.(0) in
        if e < 0 then No_match
        else if e = correct then Satisfied
        else
          match p.kind with
          | Confusing_word { correct } ->
              Violated
                {
                  offending_prefix = I.prefix_name c.c_ded.(0);
                  found = I.end_name e;
                  suggested = correct;
                }
          | _ -> assert false)
    | C_ordering (first, second) ->
        let e1 = Stmt_paths.end_id s ~prefix:c.c_ded.(0)
        and e2 = Stmt_paths.end_id s ~prefix:c.c_ded.(1) in
        if e1 < 0 || e2 < 0 then No_match
        else if e1 = first && e2 = second then Satisfied
          (* only the exact swap is a violation; unrelated words at these
             positions are not this pattern's business *)
        else if e1 = second && e2 = first then (
          match p.kind with
          | Ordering { first; second } ->
              Violated
                {
                  offending_prefix = I.prefix_name c.c_ded.(0);
                  found = second;
                  suggested = first;
                }
          | _ -> assert false)
        else No_match
    | C_malformed ->
        invalid_arg
          "Pattern.check: malformed pattern (deduction arity does not match kind)"

(* ------------------------------------------------------------------ *)
(* Pattern store and matching index                                    *)
(* ------------------------------------------------------------------ *)

module Store = struct
  (** A deduplicated collection of patterns with an inverted index from
      deduction-prefix ids to the patterns constraining them.  Every
      pattern's deduction prefix must be present in a statement for the
      pattern to match, so bucketing by that id lets a scan consider only
      the patterns that could possibly match each statement. *)
  type nonrec t = {
    mutable patterns : t array;
    mutable n : int;
    by_canonical : (string, int) Hashtbl.t;
    by_deduction_prefix : (int, int list ref) Hashtbl.t;
  }

  let dummy =
    { kind = Consistency; condition = []; deduction = []; id = -1; compiled = None }

  let create () =
    {
      patterns = Array.make 256 dummy;
      n = 0;
      by_canonical = Hashtbl.create 1024;
      by_deduction_prefix = Hashtbl.create 1024;
    }

  let size t = t.n
  let get t id = t.patterns.(id)

  (* Insert without canonical-text dedup: the caller guarantees uniqueness.
     Compiles eagerly so later (possibly sharded) checks never intern. *)
  let insert t p =
    let id = t.n in
    if id >= Array.length t.patterns then begin
      let bigger = Array.make (2 * Array.length t.patterns) dummy in
      Array.blit t.patterns 0 bigger 0 t.n;
      t.patterns <- bigger
    end;
    let p = { p with id } in
    let c = ensure_compiled p in
    t.patterns.(id) <- p;
    t.n <- id + 1;
    if Array.length c.c_ded > 0 then begin
      let dkey = c.c_ded.(0) in
      match Hashtbl.find_opt t.by_deduction_prefix dkey with
      | Some l -> l := id :: !l
      | None -> Hashtbl.replace t.by_deduction_prefix dkey (ref [ id ])
    end;
    id

  (** [add t p] registers [p] (deduplicating by canonical form) and returns
      its id. *)
  let add t p =
    let key = canonical p in
    match Hashtbl.find_opt t.by_canonical key with
    | Some id -> id
    | None ->
        let id = insert t p in
        Hashtbl.replace t.by_canonical key id;
        id

  (** [add_nodedup t p] registers [p] without rendering its canonical text —
      the fast path for callers (the miner's candidate store) that already
      deduplicated in id space.  Patterns added this way are invisible to
      {!add}'s canonical dedup. *)
  let add_nodedup t p = insert t p

  (** All patterns whose deduction prefix occurs in the statement — the
      candidate set for a full {!check}.  Drives off the digest's prefix-id
      index; no strings, no per-call key list. *)
  let candidates t (s : Stmt_paths.t) =
    let seen = Hashtbl.create 16 in
    let acc = ref [] in
    Array.iter
      (fun pfx ->
        match Hashtbl.find_opt t.by_deduction_prefix pfx with
        | Some l ->
            List.iter
              (fun id ->
                if not (Hashtbl.mem seen id) then begin
                  Hashtbl.replace seen id ();
                  acc := get t id :: !acc
                end)
              !l
        | None -> ())
      (Stmt_paths.prefix_ids s);
    List.rev !acc

  let iter f t =
    for i = 0 to t.n - 1 do
      f t.patterns.(i)
    done

  let fold f t init =
    let acc = ref init in
    iter (fun p -> acc := f !acc p) t;
    !acc
end
