(** Lexer for the Java subset.  Free-form (no layout tokens); line and block
    comments are skipped; string/char literals keep their unquoted content.

    Zero-copy scanner: tokens are recognised as slices of the one shared
    source buffer and materialised through per-domain
    {!Namer_util.Lexpool}s that intern each distinct spelling once, so
    repeated identifiers, keywords and numerals share a single token value
    and allocate nothing per occurrence.  Literals take one [String.sub];
    a [Buffer] is built only on the rare escape path.  The emitted token
    stream is byte-identical to the historical copying lexer (pinned by
    the golden test against [Ref_lexers.Java]). *)

module Lexpool = Namer_util.Lexpool

type token =
  | Ident of string
  | Keyword of string
  | Int_lit of string
  | Float_lit of string
  | Str_lit of string
  | Char_lit of string
  | Op of string
  | Eof

type loc_token = { tok : token; line : int }

exception Lex_error of string * int

let keywords =
  [
    "abstract"; "assert"; "boolean"; "break"; "byte"; "case"; "catch"; "char";
    "class"; "const"; "continue"; "default"; "do"; "double"; "else"; "enum";
    "extends"; "final"; "finally"; "float"; "for"; "if"; "implements";
    "import"; "instanceof"; "int"; "interface"; "long"; "native"; "new";
    "package"; "private"; "protected"; "public"; "return"; "short"; "static";
    "strictfp"; "super"; "switch"; "synchronized"; "this"; "throw"; "throws";
    "transient"; "try"; "void"; "volatile"; "while"; "true"; "false"; "null";
  ]

let is_keyword s = List.mem s keywords

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let operators =
  [
    ">>>="; "<<="; ">>="; ">>>"; "..."; "->"; "::"; "=="; "!="; "<="; ">=";
    "&&"; "||"; "++"; "--"; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^=";
    "<<"; ">>"; "+"; "-"; "*"; "/"; "%"; "="; "<"; ">"; "!"; "~"; "&"; "|";
    "^"; "?"; ":"; "("; ")"; "["; "]"; "{"; "}"; ";"; ","; "."; "@";
  ]

(* Operators bucketed by first byte, longest first within a bucket (same
   maximal-munch order as the flat list), each with its pre-built token. *)
let op_table : (string * token) array array =
  let t = Array.make 256 [||] in
  List.iter
    (fun op ->
      let i = Char.code op.[0] in
      t.(i) <- Array.append t.(i) [| (op, Op op) |])
    operators;
  t

let mk_ident s = Ident s
let mk_int s = Int_lit s
let mk_float s = Float_lit s

(* Per-domain token pools; the word pool is pre-seeded with keywords,
   which also replaces the old [List.mem] keyword probe. *)
let word_pool_key : token Lexpool.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let p = Lexpool.create () in
      List.iter (fun kw -> Lexpool.add p kw (Keyword kw)) keywords;
      p)

let int_pool_key : token Lexpool.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Lexpool.create ~max_entries:(1 lsl 15) ())

let float_pool_key : token Lexpool.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Lexpool.create ~max_entries:(1 lsl 15) ())

let tokenize src =
  let n = String.length src in
  let pos = ref 0 and line = ref 1 in
  let words = Domain.DLS.get word_pool_key in
  let ints = Domain.DLS.get int_pool_key in
  let floats = Domain.DLS.get float_pool_key in
  let out = ref [] in
  let emit tok = out := { tok; line = !line } :: !out in
  let cur () = if !pos < n then Some src.[!pos] else None in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let advance () = incr pos in
  let read_escaped quote =
    advance ();
    (* fast path: scan ahead for the close — no escape, no newline means
       the content is one slice of the source *)
    let start = !pos in
    let j = ref !pos in
    while
      !j < n
      &&
      let c = String.unsafe_get src !j in
      c <> quote && c <> '\\' && c <> '\n'
    do
      incr j
    done;
    if !j < n && src.[!j] = quote then begin
      let s = String.sub src start (!j - start) in
      pos := !j + 1;
      s
    end
    else begin
      (* escape, newline or EOF ahead: byte-at-a-time with a Buffer *)
      let buf = Buffer.create 8 in
      Buffer.add_substring buf src start (!j - start);
      pos := !j;
      let rec go () =
        match cur () with
        | None -> raise (Lex_error ("unterminated literal", !line))
        | Some '\\' -> (
            advance ();
            match cur () with
            | None -> raise (Lex_error ("unterminated escape", !line))
            | Some c ->
                Buffer.add_char buf
                  (match c with 'n' -> '\n' | 't' -> '\t' | c -> c);
                advance ();
                go ())
        | Some c when c = quote -> advance ()
        | Some '\n' -> raise (Lex_error ("newline in literal", !line))
        | Some c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    end
  in
  let rec loop () =
    match cur () with
    | None -> ()
    | Some '\n' ->
        incr line;
        advance ();
        loop ()
    | Some (' ' | '\t' | '\r') ->
        advance ();
        loop ()
    | Some '/' when peek 1 = Some '/' ->
        while cur () <> Some '\n' && cur () <> None do
          advance ()
        done;
        loop ()
    | Some '/' when peek 1 = Some '*' ->
        advance ();
        advance ();
        let rec skip () =
          match (cur (), peek 1) with
          | Some '*', Some '/' ->
              advance ();
              advance ()
          | Some '\n', _ ->
              incr line;
              advance ();
              skip ()
          | Some _, _ ->
              advance ();
              skip ()
          | None, _ -> raise (Lex_error ("unterminated comment", !line))
        in
        skip ();
        loop ()
    | Some '"' ->
        emit (Str_lit (read_escaped '"'));
        loop ()
    | Some '\'' ->
        emit (Char_lit (read_escaped '\''));
        loop ()
    | Some c when is_digit c ->
        let start = !pos in
        let is_float = ref false in
        let scanning = ref true in
        while !scanning do
          match cur () with
          | Some c when is_digit c || c = '_' -> advance ()
          | Some ('x' | 'X' | 'b' | 'B') when !pos = start + 1 -> advance ()
          | Some ('a' .. 'f' | 'A' .. 'F')
            when String.length src > start + 1
                 && (src.[start + 1] = 'x' || src.[start + 1] = 'X') ->
              advance ()
          | Some '.' when (match peek 1 with Some d -> is_digit d | None -> false) ->
              is_float := true;
              advance ()
          | Some ('e' | 'E')
            when (not
                    (String.length src > start + 1
                    && (src.[start + 1] = 'x' || src.[start + 1] = 'X')))
                 && (match peek 1 with
                    | Some d -> is_digit d || d = '-' || d = '+'
                    | None -> false) ->
              is_float := true;
              advance ();
              advance ()
          | Some ('f' | 'F' | 'd' | 'D') ->
              is_float := true;
              advance ();
              scanning := false
          | Some ('l' | 'L') ->
              advance ();
              scanning := false
          | _ -> scanning := false
        done;
        (* the numeral's classification is a function of its spelling, so
           int and float spellings each pool consistently *)
        let len = !pos - start in
        emit
          (if !is_float then Lexpool.lookup floats ~src ~off:start ~len ~make:mk_float
           else Lexpool.lookup ints ~src ~off:start ~len ~make:mk_int);
        loop ()
    | Some c when is_ident_start c ->
        let start = !pos in
        while (match cur () with Some c -> is_ident_char c | None -> false) do
          advance ()
        done;
        emit (Lexpool.lookup words ~src ~off:start ~len:(!pos - start) ~make:mk_ident);
        loop ()
    | Some c -> (
        let bucket = op_table.(Char.code c) in
        let rec go i =
          if i >= Array.length bucket then
            raise
              (Lex_error (Printf.sprintf "unexpected character %C" src.[!pos], !line))
          else
            let op, tok = bucket.(i) in
            let l = String.length op in
            let rest_matches =
              !pos + l <= n
              &&
              let rec eq k =
                k >= l
                || Char.equal (String.unsafe_get src (!pos + k))
                     (String.unsafe_get op k)
                   && eq (k + 1)
              in
              eq 1
            in
            if rest_matches then begin
              pos := !pos + l;
              emit tok
            end
            else go (i + 1)
        in
        go 0;
        loop ())
  in
  loop ();
  emit Eof;
  List.rev !out
