(** Indentation-aware lexer for the Python subset.

    Produces a flat token list with explicit [Indent] / [Dedent] / [Newline]
    tokens, following the layout algorithm of the CPython reference lexer:
    a stack of indentation widths, with blank and comment-only lines
    ignored, and bracketed (implicit-continuation) regions suppressing
    layout tokens.

    The scanner is zero-copy: tokens are recognised as slices of the one
    shared source buffer and materialised through a per-domain
    {!Namer_util.Lexpool} that interns each distinct spelling once —
    repeated identifiers, keywords and numerals share a single token value
    and allocate nothing per occurrence.  String literals take one
    [String.sub] for the whole content; a [Buffer] is built only on the
    rare escape path.  The emitted token stream is byte-identical to the
    historical copying lexer (pinned by the golden test against
    [Ref_lexers.Py]). *)

module Lexpool = Namer_util.Lexpool

type token =
  | Ident of string
  | Keyword of string
  | Number of string
  | String of string
  | Op of string  (** operator or punctuation, verbatim *)
  | Newline
  | Indent
  | Dedent
  | Eof

type loc_token = { tok : token; line : int }

exception Lex_error of string * int  (** message, line *)

let keywords =
  [
    "def"; "class"; "return"; "if"; "elif"; "else"; "for"; "while"; "in";
    "not"; "and"; "or"; "import"; "from"; "as"; "pass"; "break"; "continue";
    "try"; "except"; "finally"; "raise"; "with"; "lambda"; "True"; "False";
    "None"; "is"; "assert"; "del"; "global"; "yield";
  ]

let is_keyword s = List.mem s keywords

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Multi-character operators, longest first so maximal munch works. *)
let operators =
  [
    "**="; "//="; "=="; "!="; "<="; ">="; "->"; "+="; "-="; "*="; "/="; "%=";
    "&="; "|="; "^="; "<<"; ">>"; "**"; "//"; "+"; "-"; "*"; "/"; "%"; "=";
    "<"; ">"; "("; ")"; "["; "]"; "{"; "}"; ","; ":"; "."; ";"; "@"; "&";
    "|"; "^"; "~";
  ]

(* Operators bucketed by first byte, longest first within a bucket (two
   operators starting with different bytes can never both match at one
   position, so per-bucket maximal munch equals global maximal munch).
   Each entry carries its pre-built token: matching an operator allocates
   nothing. *)
let op_table : (string * token) array array =
  let t = Array.make 256 [||] in
  List.iter
    (fun op ->
      let i = Char.code op.[0] in
      t.(i) <- Array.append t.(i) [| (op, Op op) |])
    operators;
  t

let mk_ident s = Ident s
let mk_number s = Number s

(* Per-domain token pools: lexing domains never contend, and a pool warmed
   on one file keeps paying on the next.  The word pool is pre-seeded with
   the keywords, which also replaces the old [List.mem] keyword probe. *)
let word_pool_key : token Lexpool.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let p = Lexpool.create () in
      List.iter (fun kw -> Lexpool.add p kw (Keyword kw)) keywords;
      p)

let number_pool_key : token Lexpool.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Lexpool.create ~max_entries:(1 lsl 15) ())

let tokenize src =
  let n = String.length src in
  let pos = ref 0 and line = ref 1 in
  let words = Domain.DLS.get word_pool_key in
  let numbers = Domain.DLS.get number_pool_key in
  let out = ref [] in
  let emit tok = out := { tok; line = !line } :: !out in
  let indents = ref [ 0 ] in
  let paren_depth = ref 0 in
  let peek i = if !pos + i < n then Some src.[!pos + i] else None in
  let cur () = peek 0 in
  let advance () = incr pos in
  (* Read the indentation of the line starting at [!pos]; returns None for
     blank / comment-only lines (which are skipped entirely). *)
  let rec handle_line_start () =
    let width = ref 0 in
    let scanning = ref true in
    while !scanning do
      match cur () with
      | Some ' ' ->
          incr width;
          advance ()
      | Some '\t' ->
          width := !width + 8;
          advance ()
      | _ -> scanning := false
    done;
    match cur () with
    | None -> ()
    | Some '\n' ->
        advance ();
        incr line;
        handle_line_start ()
    | Some '#' ->
        while cur () <> Some '\n' && cur () <> None do
          advance ()
        done;
        handle_line_start ()
    | Some _ ->
        let top () = List.hd !indents in
        if !width > top () then begin
          indents := !width :: !indents;
          emit Indent
        end
        else
          while !width < top () do
            indents := List.tl !indents;
            if !width > top () then raise (Lex_error ("inconsistent dedent", !line));
            emit Dedent
          done
  in
  (* Triple-quoted strings: scan to the closing delimiter, newlines
     included (docstrings); the content is one slice of the source. *)
  let read_triple_string quote =
    pos := !pos + 3;
    let start = !pos in
    let rec find () =
      if
        !pos + 2 < n
        && src.[!pos] = quote
        && src.[!pos + 1] = quote
        && src.[!pos + 2] = quote
      then begin
        let content = String.sub src start (!pos - start) in
        pos := !pos + 3;
        emit (String content)
      end
      else if !pos >= n then
        raise (Lex_error ("unterminated triple-quoted string", !line))
      else begin
        if src.[!pos] = '\n' then incr line;
        incr pos;
        find ()
      end
    in
    find ()
  in
  let read_string quote =
    if peek 1 = Some quote && peek 2 = Some quote then read_triple_string quote
    else begin
      advance ();
      (* opening quote; fast path: scan ahead for the close — if nothing
         needs escape processing the content is one slice *)
      let start = !pos in
      let j = ref !pos in
      while
        !j < n
        &&
        let c = String.unsafe_get src !j in
        c <> quote && c <> '\\' && c <> '\n'
      do
        incr j
      done;
      if !j < n && src.[!j] = quote then begin
        emit (String (String.sub src start (!j - start)));
        pos := !j + 1
      end
      else begin
        (* escape, newline or EOF ahead: byte-at-a-time with a Buffer *)
        let buf = Buffer.create 16 in
        Buffer.add_substring buf src start (!j - start);
        pos := !j;
        let rec go () =
          match cur () with
          | None -> raise (Lex_error ("unterminated string", !line))
          | Some '\\' -> (
              advance ();
              match cur () with
              | None -> raise (Lex_error ("unterminated string escape", !line))
              | Some c ->
                  Buffer.add_char buf
                    (match c with 'n' -> '\n' | 't' -> '\t' | c -> c);
                  advance ();
                  go ())
          | Some c when c = quote -> advance ()
          | Some '\n' -> raise (Lex_error ("newline in string", !line))
          | Some c ->
              Buffer.add_char buf c;
              advance ();
              go ()
        in
        go ();
        emit (String (Buffer.contents buf))
      end
    end
  in
  let read_number () =
    let start = !pos in
    while (match cur () with Some c -> is_digit c || c = '.' || c = 'x' || c = 'X'
                             || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
                           | None -> false) do
      advance ()
    done;
    (* 'e' exponents: covered by hex-letter range above ('e' ∈ a–f). *)
    emit (Lexpool.lookup numbers ~src ~off:start ~len:(!pos - start) ~make:mk_number)
  in
  let read_ident () =
    let start = !pos in
    while (match cur () with Some c -> is_ident_char c | None -> false) do
      advance ()
    done;
    let len = !pos - start in
    (* String prefixes like r"..." / b'...' *)
    match cur () with
    | Some (('"' | '\'') as q)
      when len = 1
           && (match src.[start] with 'r' | 'b' | 'u' | 'f' -> true | _ -> false)
      ->
        read_string q
    | _ -> emit (Lexpool.lookup words ~src ~off:start ~len ~make:mk_ident)
  in
  let try_operator () =
    let bucket = op_table.(Char.code src.[!pos]) in
    let rec go i =
      if i >= Array.length bucket then false
      else
        let op, tok = bucket.(i) in
        let l = String.length op in
        let rest_matches =
          !pos + l <= n
          &&
          let rec eq k =
            k >= l
            || Char.equal (String.unsafe_get src (!pos + k)) (String.unsafe_get op k)
               && eq (k + 1)
          in
          eq 1
        in
        if rest_matches then begin
          (match op with
          | "(" | "[" | "{" -> incr paren_depth
          | ")" | "]" | "}" -> paren_depth := max 0 (!paren_depth - 1)
          | _ -> ());
          pos := !pos + l;
          emit tok;
          true
        end
        else go (i + 1)
    in
    go 0
  in
  handle_line_start ();
  let rec loop () =
    match cur () with
    | None -> ()
    | Some '\n' ->
        advance ();
        incr line;
        if !paren_depth = 0 then begin
          emit Newline;
          handle_line_start ()
        end;
        loop ()
    | Some '#' ->
        while cur () <> Some '\n' && cur () <> None do
          advance ()
        done;
        loop ()
    | Some (' ' | '\t' | '\r') ->
        advance ();
        loop ()
    | Some '\\' when peek 1 = Some '\n' ->
        advance ();
        advance ();
        incr line;
        loop ()
    | Some (('"' | '\'') as q) ->
        read_string q;
        loop ()
    | Some c when is_digit c ->
        read_number ();
        loop ()
    | Some c when is_ident_start c ->
        read_ident ();
        loop ()
    | Some _ ->
        if try_operator () then loop ()
        else raise (Lex_error (Printf.sprintf "unexpected character %C" src.[!pos], !line))
  in
  loop ();
  (* Close the final logical line and any open indentation levels. *)
  (match !out with
  | { tok = Newline; _ } :: _ | [] -> ()
  | _ -> emit Newline);
  while List.hd !indents > 0 do
    indents := List.tl !indents;
    emit Dedent
  done;
  emit Eof;
  List.rev !out
