(** The defect classifier's feature extraction — Table 1 of the paper:
    17 high-level features per violation, most computed at three
    granularities (file / repository / entire dataset) from aggregates
    accumulated in one scan pass. *)

module Pattern = Namer_pattern.Pattern
module Confusing_pairs = Namer_mining.Confusing_pairs

(** Feature-relevant context of the violating statement. *)
type stmt_ctx = {
  file : string;  (** for report rendering — not a hot-path key *)
  repo : string;
  mutable file_id : int;  (** dense corpus-wide file id; -1 until assigned *)
  mutable repo_id : int;  (** dense corpus-wide repo id; -1 until assigned *)
  tree_hash : int;  (** structural hash of the parsed statement tree *)
  n_paths : int;  (** number of extracted name paths (feature 1) *)
}

type counts = { mutable matches : int; mutable sats : int; mutable viols : int }

(** Corpus-level aggregates, accumulated during the scan pass. *)
module Agg : sig
  type t = {
    identical_file : (int * int, int) Hashtbl.t;  (** (file id, hash) *)
    identical_repo : (int * int, int) Hashtbl.t;  (** (repo id, hash) *)
    per_file : (int * int, counts) Hashtbl.t;  (** (pattern id, file id) *)
    per_repo : (int * int, counts) Hashtbl.t;  (** (pattern id, repo id) *)
    dataset : (int, counts) Hashtbl.t;
  }

  val create : unit -> t

  (** Record one scanned statement (identical-statement counts, f2/f3). *)
  val add_stmt : t -> stmt_ctx -> unit

  (** Record one pattern-check outcome (f4–f12). *)
  val add_outcome : t -> stmt_ctx -> pattern_id:int -> Pattern.relation -> unit

  (** [merge ~into t] sums [t]'s aggregates into [into] (monoid merge for
      the sharded scan; commutative). *)
  val merge : into:t -> t -> unit
end

val n_features : int

(** Feature names, indexed as in Table 1 (for the Table 9 weight listing). *)
val names : string array

(** The 17-dimensional feature vector of one violation. *)
val extract :
  Agg.t -> Confusing_pairs.t -> stmt_ctx -> Pattern.t -> Pattern.violation_info ->
  float array
