(** The defect classifier's feature extraction — Table 1 of the paper:
    17 high-level features per violation, most computed at three
    granularities (file / repository / entire dataset) from aggregates
    accumulated in one scan pass. *)

module Pattern = Namer_pattern.Pattern
module Confusing_pairs = Namer_mining.Confusing_pairs

(** Feature-relevant context of the violating statement. *)
type stmt_ctx = {
  file : string;
  repo : string;
  tree_hash : int;  (** structural hash of the parsed statement tree *)
  n_paths : int;  (** number of extracted name paths (feature 1) *)
}

type counts = { mutable matches : int; mutable sats : int; mutable viols : int }

(** Corpus-level aggregates, accumulated during the scan pass. *)
module Agg : sig
  type t = {
    identical_file : (string * int, int) Hashtbl.t;
    identical_repo : (string * int, int) Hashtbl.t;
    per_file : (int * string, counts) Hashtbl.t;
    per_repo : (int * string, counts) Hashtbl.t;
    dataset : (int, counts) Hashtbl.t;
  }

  val create : unit -> t

  (** Record one scanned statement (identical-statement counts, f2/f3). *)
  val add_stmt : t -> stmt_ctx -> unit

  (** Record one pattern-check outcome (f4–f12). *)
  val add_outcome : t -> stmt_ctx -> pattern_id:int -> Pattern.relation -> unit

  (** [merge ~into t] sums [t]'s aggregates into [into] (monoid merge for
      the sharded scan; commutative). *)
  val merge : into:t -> t -> unit
end

val n_features : int

(** Feature names, indexed as in Table 1 (for the Table 9 weight listing). *)
val names : string array

(** The 17-dimensional feature vector of one violation. *)
val extract :
  Agg.t -> Confusing_pairs.t -> stmt_ctx -> Pattern.t -> Pattern.violation_info ->
  float array
