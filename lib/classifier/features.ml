(** The defect classifier's feature extraction — Table 1 of the paper.

    Given a violation (statement s, violated pattern p), seventeen high-level
    features are computed, most of them at three granularities (the file
    containing s, the repository containing s, and the entire mining
    dataset).  The aggregates needed by features 2–12 are accumulated in one
    pass over the scanned corpus ({!Agg}) before any feature vector is
    extracted. *)

module Pattern = Namer_pattern.Pattern
module Confusing_pairs = Namer_mining.Confusing_pairs

(** What feature extraction needs to know about the violating statement. *)
type stmt_ctx = {
  file : string;
  repo : string;
  mutable file_id : int;  (** dense corpus-wide file id; -1 until assigned *)
  mutable repo_id : int;  (** dense corpus-wide repo id; -1 until assigned *)
  tree_hash : int;  (** structural hash of the parsed statement tree *)
  n_paths : int;  (** number of extracted name paths (feature 1) *)
}

type counts = { mutable matches : int; mutable sats : int; mutable viols : int }

let fresh_counts () = { matches = 0; sats = 0; viols = 0 }

(** Corpus-level aggregates, accumulated during the scan pass. *)
module Agg = struct
  (* All keys are dense ids ((file id, hash), (pattern id, repo id), …):
     int-pair hashing in the scan hot loop, no string keys. *)
  type t = {
    identical_file : (int * int, int) Hashtbl.t;  (** (file id, hash) → count *)
    identical_repo : (int * int, int) Hashtbl.t;  (** (repo id, hash) → count *)
    per_file : (int * int, counts) Hashtbl.t;  (** (pattern, file id) *)
    per_repo : (int * int, counts) Hashtbl.t;  (** (pattern, repo id) *)
    dataset : (int, counts) Hashtbl.t;  (** pattern → corpus-wide *)
  }

  let create () =
    {
      identical_file = Hashtbl.create (1 lsl 12);
      identical_repo = Hashtbl.create (1 lsl 12);
      per_file = Hashtbl.create (1 lsl 12);
      per_repo = Hashtbl.create (1 lsl 12);
      dataset = Hashtbl.create (1 lsl 10);
    }

  let bump tbl key =
    Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)

  (** Record one scanned statement (for identical-statement counts). *)
  let add_stmt t (s : stmt_ctx) =
    Namer_telemetry.Telemetry.count "agg.stmts";
    bump t.identical_file (s.file_id, s.tree_hash);
    bump t.identical_repo (s.repo_id, s.tree_hash)

  let counts_of tbl key =
    match Hashtbl.find_opt tbl key with
    | Some c -> c
    | None ->
        let c = fresh_counts () in
        Hashtbl.replace tbl key c;
        c

  (** Record one pattern check outcome on a statement. *)
  let add_outcome t (s : stmt_ctx) ~(pattern_id : int) (rel : Pattern.relation) =
    match rel with
    | Pattern.No_match -> ()
    | _ ->
        Namer_telemetry.Telemetry.count "agg.pattern_matches";
        let update c =
          c.matches <- c.matches + 1;
          match rel with
          | Pattern.Satisfied -> c.sats <- c.sats + 1
          | Pattern.Violated _ -> c.viols <- c.viols + 1
          | Pattern.No_match -> ()
        in
        update (counts_of t.per_file (pattern_id, s.file_id));
        update (counts_of t.per_repo (pattern_id, s.repo_id));
        update (counts_of t.dataset pattern_id)

  let lookup tbl key =
    Option.value (Hashtbl.find_opt tbl key) ~default:(fresh_counts ())

  (** [merge ~into t] sums [t]'s aggregates into [into].  All five tables
      accumulate integer tallies, so the merge commutes and a sharded scan
      (one [Agg.t] per shard, merged afterwards) reproduces the sequential
      aggregates exactly. *)
  let merge ~into (t : t) =
    let add_int tbl key n =
      Hashtbl.replace tbl key (n + Option.value (Hashtbl.find_opt tbl key) ~default:0)
    in
    Hashtbl.iter (fun k n -> add_int into.identical_file k n) t.identical_file;
    Hashtbl.iter (fun k n -> add_int into.identical_repo k n) t.identical_repo;
    let add_counts tbl key (c : counts) =
      let d = counts_of tbl key in
      d.matches <- d.matches + c.matches;
      d.sats <- d.sats + c.sats;
      d.viols <- d.viols + c.viols
    in
    Hashtbl.iter (fun k c -> add_counts into.per_file k c) t.per_file;
    Hashtbl.iter (fun k c -> add_counts into.per_repo k c) t.per_repo;
    Hashtbl.iter (fun k c -> add_counts into.dataset k c) t.dataset
end

let n_features = 17

(** Feature names (indexed as in Table 1), for the weight table. *)
let names =
  [|
    "1:n_name_paths";
    "2:identical_stmts_file";
    "3:identical_stmts_repo";
    "4:satisfaction_rate_file";
    "5:satisfaction_rate_repo";
    "6:satisfaction_rate_dataset";
    "7:violations_file";
    "8:violations_repo";
    "9:violations_dataset";
    "10:satisfactions_file";
    "11:satisfactions_repo";
    "12:satisfactions_dataset";
    "13:targets_function_name";
    "14:n_condition_paths";
    "15:match_ratio";
    "16:edit_distance";
    "17:is_confusing_pair";
  |]

(** [extract agg pairs stmt pattern info] computes the 17-dimensional
    feature vector for one violation. *)
let extract (agg : Agg.t) (pairs : Confusing_pairs.t) (s : stmt_ctx)
    (p : Pattern.t) (info : Pattern.violation_info) : float array =
  let fi = float_of_int in
  let file_c = Agg.lookup agg.Agg.per_file (p.id, s.file_id) in
  let repo_c = Agg.lookup agg.Agg.per_repo (p.id, s.repo_id) in
  let data_c = Agg.lookup agg.Agg.dataset p.id in
  let rate (c : counts) = if c.matches = 0 then 0.0 else fi c.sats /. fi c.matches in
  let n_cond = List.length p.condition in
  let n_ded = List.length p.deduction in
  let match_ratio =
    let denom = s.n_paths - n_ded in
    if denom <= 0 then 1.0 else min 1.0 (fi n_cond /. fi denom)
  in
  [|
    (* 1 *) fi s.n_paths;
    (* 2 *) fi (Option.value (Hashtbl.find_opt agg.Agg.identical_file (s.file_id, s.tree_hash)) ~default:1);
    (* 3 *) fi (Option.value (Hashtbl.find_opt agg.Agg.identical_repo (s.repo_id, s.tree_hash)) ~default:1);
    (* 4 *) rate file_c;
    (* 5 *) rate repo_c;
    (* 6 *) rate data_c;
    (* 7 *) fi file_c.viols;
    (* 8 *) fi repo_c.viols;
    (* 9 *) fi data_c.viols;
    (* 10 *) fi file_c.sats;
    (* 11 *) fi repo_c.sats;
    (* 12 *) fi data_c.sats;
    (* 13 *) (if Pattern.targets_function_name p then 1.0 else 0.0);
    (* 14 *) fi n_cond;
    (* 15 *) match_ratio;
    (* 16 *) fi (Namer_util.Edit_distance.damerau info.Pattern.found info.Pattern.suggested);
    (* 17 *)
    (if Confusing_pairs.mem pairs (info.Pattern.found, info.Pattern.suggested) then 1.0
     else 0.0);
  |]
