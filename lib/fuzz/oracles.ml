(** Metamorphic oracles.  See the interface for the four properties. *)

module Namer = Namer_core.Namer
module Fixer = Namer_core.Fixer
module Corpus = Namer_corpus.Corpus
module Pattern = Namer_pattern.Pattern
module Confusing_pairs = Namer_mining.Confusing_pairs
module Prng = Namer_util.Prng
module Subtoken = Namer_util.Subtoken

type result = { o_name : string; o_pass : bool; o_detail : string }

let scan1 m file = Namer.scan_with_model ~jobs:1 m [ file ]

let has_report (sr : Namer.scan_result) ~line ~found ~suggested =
  Array.exists
    (fun (r : Namer.report) ->
      r.Namer.r_line = line && r.Namer.r_found = found && r.Namer.r_suggested = suggested)
    sr.Namer.sr_reports

(* ------------------------------------------------------------------ *)
(* Oracle 1: fix / re-inject                                           *)
(* ------------------------------------------------------------------ *)

let fix_reinject ~rng (m : Namer.model) files =
  let name = "fix-reinject" in
  let by_path = Hashtbl.create 64 in
  List.iter (fun (f : Corpus.file) -> Hashtbl.replace by_path f.Corpus.path f) files;
  let scan = Namer.scan_with_model ~jobs:1 m files in
  (* reports whose suggested fix the style-preserving fixer can actually
     apply, unambiguously, to the blamed line *)
  let applicable =
    Array.to_list scan.Namer.sr_reports
    |> List.filter_map (fun (r : Namer.report) ->
           match Hashtbl.find_opt by_path r.Namer.r_file with
           | None -> None
           | Some f -> (
               let fixed, outcomes =
                 Fixer.fix_source f.Corpus.source
                   [ (r.Namer.r_line, r.Namer.r_found, r.Namer.r_suggested) ]
               in
               match outcomes with
               | [ (_, _, _, Fixer.Applied _) ] when fixed <> f.Corpus.source ->
                   Some (r, f, fixed)
               | _ -> None))
  in
  if applicable = [] then
    { o_name = name; o_pass = false;
      o_detail = Printf.sprintf "no applicable report among %d"
          (Array.length scan.Namer.sr_reports) }
  else
    let tries = Prng.sample rng 3 applicable in
    let failures =
      List.filter_map
        (fun ((r : Namer.report), (f : Corpus.file), fixed) ->
          let line = r.Namer.r_line
          and found = r.Namer.r_found
          and suggested = r.Namer.r_suggested in
          let after_fix = scan1 m { f with Corpus.source = fixed } in
          let after_reinject = scan1 m f in
          if has_report after_fix ~line ~found ~suggested then
            Some (Printf.sprintf "%s:%d %s->%s survived its own fix"
                    r.Namer.r_file line found suggested)
          else if not (has_report after_reinject ~line ~found ~suggested) then
            Some (Printf.sprintf "%s:%d %s->%s not re-reported after re-injection"
                    r.Namer.r_file line found suggested)
          else None)
        tries
    in
    (match failures with
    | [] ->
        { o_name = name; o_pass = true;
          o_detail = Printf.sprintf "%d fixes applied and re-injected" (List.length tries) }
    | first :: _ -> { o_name = name; o_pass = false; o_detail = first })

(* ------------------------------------------------------------------ *)
(* Oracle 2: vocabulary-disjoint alpha-renaming                        *)
(* ------------------------------------------------------------------ *)

let keywords =
  [
    (* python *)
    "False"; "None"; "True"; "and"; "as"; "assert"; "async"; "await"; "break";
    "class"; "continue"; "def"; "del"; "elif"; "else"; "except"; "finally";
    "for"; "from"; "global"; "if"; "import"; "in"; "is"; "lambda"; "nonlocal";
    "not"; "or"; "pass"; "raise"; "return"; "try"; "while"; "with"; "yield";
    "self"; "cls"; "print"; "len"; "range"; "str"; "int"; "float"; "list";
    "dict"; "set"; "super"; "object"; "isinstance"; "type";
    (* java *)
    "abstract"; "boolean"; "byte"; "case"; "catch"; "char"; "const"; "default";
    "do"; "double"; "enum"; "extends"; "final"; "goto"; "implements";
    "instanceof"; "interface"; "long"; "native"; "new"; "null"; "package";
    "private"; "protected"; "public"; "short"; "static"; "strictfp"; "switch";
    "synchronized"; "this"; "throw"; "throws"; "transient"; "void"; "volatile";
    "String"; "Object"; "System"; "Override";
  ]

(* Every word the model could possibly be sensitive to: mined pair words,
   every word of every pattern's path texts and kind payloads, keywords.
   All lowercased subtokens — candidates are screened subtoken-wise. *)
let model_vocab (m : Namer.model) =
  let vocab = Hashtbl.create 512 in
  let add w = List.iter (fun s -> Hashtbl.replace vocab s ()) (Subtoken.split_lower w) in
  List.iter add keywords;
  List.iter
    (fun ((a, b), _) -> add a; add b)
    (Confusing_pairs.bindings m.Namer.m_pairs);
  Pattern.Store.iter
    (fun (p : Pattern.t) ->
      (match p.Pattern.kind with
      | Pattern.Consistency -> ()
      | Pattern.Confusing_word { correct } -> add correct
      | Pattern.Ordering { first; second } -> add first; add second);
      List.iter
        (fun path ->
          List.iter (fun (_, w) -> add w)
            (Mutate.ident_tokens (Pattern.Namepath.to_string path)))
        (p.Pattern.condition @ p.Pattern.deduction))
    m.Namer.m_store;
  vocab

let fresh_word = "qzfuzz"

(* The patterns live in subtoken space: [self._limit = limit] is one
   agreement family even though [_limit] and [limit] are distinct
   identifiers.  A behavior-preserving alpha-renaming therefore renames a
   {e subtoken} consistently across every identifier that carries it —
   renaming just one spelling would (correctly!) create a fresh
   inconsistency. *)
let rename_candidates vocab (f : Corpus.file) =
  if
    (* never reuse a file that already mentions the fresh word *)
    let low = String.lowercase_ascii f.Corpus.source in
    let n = String.length low and m = String.length fresh_word in
    let rec mem i = i + m <= n && (String.sub low i m = fresh_word || mem (i + 1)) in
    mem 0
  then []
  else
    Mutate.ident_tokens f.Corpus.source
    |> List.concat_map (fun (_, w) -> Subtoken.split_lower w)
    |> List.sort_uniq compare
    |> List.filter (fun s -> String.length s >= 3 && not (Hashtbl.mem vocab s))

(* Case-mirror the replacement so [replace_subtoken] keeps the
   identifier's style: [Limit] -> [Qzfuzz], [LIMIT] -> [QZFUZZ]. *)
let mirror_case part =
  if String.uppercase_ascii part = part && String.lowercase_ascii part <> part
  then String.uppercase_ascii fresh_word
  else if part <> "" && part.[0] >= 'A' && part.[0] <= 'Z' then
    String.capitalize_ascii fresh_word
  else fresh_word

let rename_word_family src ~word =
  let renames =
    Mutate.ident_tokens src |> List.map snd |> List.sort_uniq compare
    |> List.filter_map (fun ident ->
           let parts = Subtoken.split ident in
           if not (List.exists (fun p -> String.lowercase_ascii p = word) parts)
           then None
           else
             let _, renamed =
               List.fold_left
                 (fun (i, cur) p ->
                   let cur =
                     if String.lowercase_ascii p = word then
                       Subtoken.replace_subtoken cur ~index:i
                         ~with_:(mirror_case p)
                     else cur
                   in
                   (i + 1, cur))
                 (0, ident) parts
             in
             if renamed = ident then None else Some (ident, renamed))
  in
  List.fold_left
    (fun src (old_name, new_name) -> Mutate.rename_ident src ~old_name ~new_name)
    src renames

let alpha_rename ~rng (m : Namer.model) files =
  let name = "alpha-rename" in
  let vocab = model_vocab m in
  let candidates =
    List.concat_map
      (fun (f : Corpus.file) ->
        List.map (fun w -> (f, w)) (rename_candidates vocab f))
      files
  in
  if candidates = [] then
    { o_name = name; o_pass = false;
      o_detail = "no vocabulary-disjoint subtoken in the corpus" }
  else
    let tries = Prng.sample rng 3 candidates in
    let failures =
      List.filter_map
        (fun ((f : Corpus.file), w) ->
          let renamed = rename_word_family f.Corpus.source ~word:w in
          let before = Array.length (scan1 m f).Namer.sr_reports in
          let after =
            Array.length (scan1 m { f with Corpus.source = renamed }).Namer.sr_reports
          in
          if before = after then None
          else
            Some (Printf.sprintf "%s: renaming subtoken %S changed reports %d -> %d"
                    f.Corpus.path w before after))
        tries
    in
    (match failures with
    | [] ->
        { o_name = name; o_pass = true;
          o_detail = Printf.sprintf "%d renamings left counts unchanged"
              (List.length tries) }
    | first :: _ -> { o_name = name; o_pass = false; o_detail = first })

(* ------------------------------------------------------------------ *)
(* Oracle 3: shard-count / file-order permutation                      *)
(* ------------------------------------------------------------------ *)

let render (sr : Namer.scan_result) =
  Array.to_list sr.Namer.sr_reports
  |> List.map (fun (r : Namer.report) ->
         Printf.sprintf "%s:%d:%s:%s:%s:%s" r.Namer.r_file r.Namer.r_line
           r.Namer.r_prefix r.Namer.r_found r.Namer.r_suggested r.Namer.r_kind)
  |> String.concat "\n"

let permutation ~rng (m : Namer.model) files =
  let name = "permutation" in
  let shuffled =
    let a = Array.of_list files in
    Prng.shuffle rng a;
    Array.to_list a
  in
  let base = render (Namer.scan_with_model ~jobs:1 m files) in
  let permuted =
    render (Namer.scan_with_model ~jobs:4 ~cap_domains:false m shuffled)
  in
  if String.equal base permuted then
    { o_name = name; o_pass = true;
      o_detail = Printf.sprintf "%d files, jobs 1 vs 4, shuffled: byte-identical"
        (List.length files) }
  else
    { o_name = name; o_pass = false;
      o_detail = Printf.sprintf "jobs-4 shuffled scan diverged (%d vs %d bytes)"
          (String.length base) (String.length permuted) }

(* ------------------------------------------------------------------ *)
(* Oracle 4: build / scan_with_model agreement                         *)
(* ------------------------------------------------------------------ *)

let model_agreement (t : Namer.t) (m : Namer.model) files =
  let name = "model-agreement" in
  let tuple_of_violation (v : Namer.violation) =
    ( v.Namer.v_stmt.Namer.sctx.Namer.Features.file,
      v.Namer.v_stmt.Namer.line,
      v.Namer.v_info.Pattern.offending_prefix,
      v.Namer.v_info.Pattern.found,
      v.Namer.v_info.Pattern.suggested,
      Namer.kind_name v.Namer.v_pattern.Pattern.kind )
  in
  let tuple_of_report (r : Namer.report) =
    ( r.Namer.r_file, r.Namer.r_line, r.Namer.r_prefix, r.Namer.r_found,
      r.Namer.r_suggested, r.Namer.r_kind )
  in
  let from_build =
    Array.to_list t.Namer.violations |> List.map tuple_of_violation
    |> List.sort compare
  in
  let from_scan =
    Namer.scan_with_model ~jobs:1 m files
    |> fun sr ->
    Array.to_list sr.Namer.sr_reports |> List.map tuple_of_report
    |> List.sort compare
  in
  if from_build = from_scan then
    { o_name = name; o_pass = true;
      o_detail = Printf.sprintf "%d reports agree" (List.length from_build) }
  else
    let describe (f, l, _, found, sugg, _) = Printf.sprintf "%s:%d %s->%s" f l found sugg in
    let missing = List.filter (fun x -> not (List.mem x from_scan)) from_build in
    let extra = List.filter (fun x -> not (List.mem x from_build)) from_scan in
    let first = match missing @ extra with x :: _ -> describe x | [] -> "?" in
    { o_name = name; o_pass = false;
      o_detail = Printf.sprintf "build %d vs scan %d reports; first diff %s"
          (List.length from_build) (List.length from_scan) first }

(* ------------------------------------------------------------------ *)
(* Oracle 5: random corpus split → merged partials                     *)
(* ------------------------------------------------------------------ *)

let merge_split ~rng (t : Namer.t) (m : Namer.model) files ~commits =
  let name = "merge-split" in
  let k = 2 + Prng.int rng 3 in
  (* deal every file and commit into one of [k] slices, train each slice
     into a partial, merge in a shuffled order, finalize — the resulting
     model must scan the corpus byte-identically to [m] *)
  let fslices = Array.make k [] and cslices = Array.make k [] in
  List.iter
    (fun f ->
      let i = Prng.int rng k in
      fslices.(i) <- f :: fslices.(i))
    (List.rev files);
  List.iter
    (fun c ->
      let i = Prng.int rng k in
      cslices.(i) <- c :: cslices.(i))
    (List.rev commits);
  match
    let parts = Array.make k Namer.Partial.empty in
    for i = 0 to k - 1 do
      parts.(i) <-
        Namer.Partial.of_corpus t.Namer.cfg
          {
            Corpus.lang = t.Namer.lang;
            files = fslices.(i);
            injections = [];
            benigns = [];
            commits = cslices.(i);
          }
    done;
    Prng.shuffle rng parts;
    Namer.Partial.finalize t.Namer.cfg
      (Namer.Partial.merge_all (Array.to_list parts))
  with
  | exception e ->
      { o_name = name; o_pass = false;
        o_detail = Printf.sprintf "split/merge raised %s" (Printexc.to_string e) }
  | t2 ->
      let base = render (Namer.scan_with_model ~jobs:1 m files) in
      let merged =
        render (Namer.scan_with_model ~jobs:1 (Namer.model_of t2) files)
      in
      if String.equal base merged then
        { o_name = name; o_pass = true;
          o_detail =
            Printf.sprintf "%d files in %d shuffled slices: reports byte-identical"
              (List.length files) k }
      else
        { o_name = name; o_pass = false;
          o_detail =
            Printf.sprintf "merged-partial scan diverged (%d vs %d bytes)"
              (String.length base) (String.length merged) }

let run_all ~rng ~t ~model ~files ~commits =
  let r1 = Prng.split rng and r2 = Prng.split rng and r3 = Prng.split rng in
  let r4 = Prng.split rng in
  [
    fix_reinject ~rng:r1 model files;
    alpha_rename ~rng:r2 model files;
    permutation ~rng:r3 model files;
    model_agreement t model files;
    merge_split ~rng:r4 t model files ~commits;
  ]
