(** Seed-driven source mutations.  See the interface for the palette. *)

module Prng = Namer_util.Prng
module Corpus = Namer_corpus.Corpus

type kind = Ident_swap | Token_delete | Token_dup | Truncate | Garbage | Nest_bomb

let kind_name = function
  | Ident_swap -> "ident-swap"
  | Token_delete -> "token-delete"
  | Token_dup -> "token-dup"
  | Truncate -> "truncate"
  | Garbage -> "garbage"
  | Nest_bomb -> "nest-bomb"

let all_kinds = [ Ident_swap; Token_delete; Token_dup; Truncate; Garbage; Nest_bomb ]

type mutant = { m_source : string; m_kind : kind; m_desc : string }

(* The digest pipeline survives ~2M nested frames on an 8 MiB stack (the
   first overflow observed while building this harness was at 3M); sit
   safely above the cliff, not at it. *)
let default_bomb_depth = 3_200_000

(* ------------------------------------------------------------------ *)
(* Text surgery                                                        *)
(* ------------------------------------------------------------------ *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let ident_tokens src =
  let n = String.length src in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if is_ident_start src.[!i] then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      out := (!i, String.sub src !i (!j - !i)) :: !out;
      i := !j
    end
    else incr i
  done;
  List.rev !out

(* First word-boundary occurrence of [needle] in [hay], from [from]. *)
let find_word hay ~from ~needle =
  let n = String.length hay and m = String.length needle in
  let rec go i =
    if i + m > n then None
    else if
      String.sub hay i m = needle
      && (i = 0 || not (is_ident_char hay.[i - 1]))
      && (i + m = n || not (is_ident_char hay.[i + m]))
    then Some i
    else go (i + 1)
  in
  go (max 0 from)

let splice src ~at ~len ~with_ =
  String.sub src 0 at ^ with_ ^ String.sub src (at + len) (String.length src - at - len)

let replace_word_on_line src ~line ~needle ~with_ =
  let lines = String.split_on_char '\n' src in
  if line < 1 || line > List.length lines then None
  else
    let hit = ref false in
    let rewritten =
      List.mapi
        (fun i l ->
          if i + 1 <> line then l
          else
            match find_word l ~from:0 ~needle with
            | None -> l
            | Some at ->
                hit := true;
                splice l ~at ~len:(String.length needle) ~with_)
        lines
    in
    if !hit then Some (String.concat "\n" rewritten) else None

let rename_ident src ~old_name ~new_name =
  let buf = Buffer.create (String.length src) in
  let rec go from =
    match find_word src ~from ~needle:old_name with
    | None -> Buffer.add_substring buf src from (String.length src - from)
    | Some at ->
        Buffer.add_substring buf src from (at - from);
        Buffer.add_string buf new_name;
        go (at + String.length old_name)
  in
  go 0;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The operators                                                       *)
(* ------------------------------------------------------------------ *)

let rep n s =
  let b = Buffer.create (n * String.length s) in
  for _ = 1 to n do
    Buffer.add_string b s
  done;
  Buffer.contents b

(* A deep nested expression appended as a fresh top-level statement (a
   second top-level class for Java), so the bomb parses *as part of* an
   otherwise healthy file — the way a pathological file hides in a real
   source tree. *)
let nest_bomb ~lang ~depth =
  match lang with
  | Corpus.Python -> "bomb = " ^ rep depth "(" ^ "1" ^ rep depth ")" ^ "\n"
  | Corpus.Java ->
      "class FuzzBomb { void detonate() { int bomb = " ^ rep depth "(" ^ "1"
      ^ rep depth ")" ^ "; } }\n"

let token_at rng src =
  match ident_tokens src with
  | [] -> None
  | toks -> Some (Prng.choose rng toks)

let mutate ~rng ?(pairs = []) ?(bomb_depth = default_bomb_depth) ~lang source =
  let fallback_dup why =
    match token_at rng source with
    | Some (at, tok) ->
        {
          m_source = splice source ~at ~len:0 ~with_:(tok ^ " ");
          m_kind = Token_dup;
          m_desc = Printf.sprintf "%sdup %S at %d" why tok at;
        }
    | None ->
        {
          m_source = source ^ "\n";
          m_kind = Token_dup;
          m_desc = why ^ "no tokens; appended newline";
        }
  in
  (* bombs cost seconds of parse each; keep them a taste, not the diet *)
  let kind =
    Prng.weighted rng
      [
        (3.0, Ident_swap); (3.0, Token_delete); (3.0, Token_dup); (3.0, Truncate);
        (3.0, Garbage); (1.0, Nest_bomb);
      ]
  in
  match kind with
  | Ident_swap -> (
      (* occurrences of any confusing-pair word, swapped for its partner:
         the naming-issue injection the miner is supposed to catch *)
      let swaps =
        List.concat_map (fun (a, b) -> [ (a, b); (b, a) ]) pairs
        |> List.filter_map (fun (from_w, to_w) ->
               match find_word source ~from:0 ~needle:from_w with
               | Some at -> Some (at, from_w, to_w)
               | None -> None)
      in
      match swaps with
      | [] -> fallback_dup "no pair word present; "
      | _ ->
          let at, from_w, to_w = Prng.choose rng swaps in
          {
            m_source = splice source ~at ~len:(String.length from_w) ~with_:to_w;
            m_kind = Ident_swap;
            m_desc = Printf.sprintf "swap %S -> %S at %d" from_w to_w at;
          })
  | Token_delete -> (
      match token_at rng source with
      | None -> fallback_dup "no tokens; "
      | Some (at, tok) ->
          {
            m_source = splice source ~at ~len:(String.length tok) ~with_:"";
            m_kind = Token_delete;
            m_desc = Printf.sprintf "delete %S at %d" tok at;
          })
  | Token_dup -> fallback_dup ""
  | Truncate ->
      let n = String.length source in
      if n = 0 then fallback_dup "empty file; "
      else
        let keep = Prng.int rng n in
        {
          m_source = String.sub source 0 keep;
          m_kind = Truncate;
          m_desc = Printf.sprintf "truncate to %d of %d bytes" keep n;
        }
  | Garbage ->
      let n = String.length source in
      let at = if n = 0 then 0 else Prng.int rng n in
      let len = 1 + Prng.int rng 12 in
      let junk =
        String.init len (fun _ ->
            (* NUL-biased: embedded NULs are the classic lexer killer *)
            if Prng.bool rng ~p:0.3 then '\000' else Char.chr (Prng.int rng 256))
      in
      {
        m_source = splice source ~at ~len:0 ~with_:junk;
        m_kind = Garbage;
        m_desc = Printf.sprintf "insert %d junk bytes at %d" len at;
      }
  | Nest_bomb ->
      {
        m_source = source ^ nest_bomb ~lang ~depth:bomb_depth;
        m_kind = Nest_bomb;
        m_desc = Printf.sprintf "append %d-deep nesting bomb" bomb_depth;
      }
