(** The fuzzing campaign driver.

    One call to {!run} is a full, deterministic campaign: generate a
    corpus, self-mine a model from it, then hammer the scan pipeline with
    {!Mutate} mutants of corpus files while watching for escapes — any
    exception other than [Out_of_memory] crossing
    {!Namer_core.Namer.scan_with_model} is a crash, triaged through
    {!Triage} (bucketed, minimized, written to the crash corpus) — and
    finish with the four {!Oracles}.  Same config, same campaign,
    byte-for-byte: every random draw threads from [f_seed].

    Degradation is measured, not hidden: a mutant the pipeline survives by
    dropping the file (per-file isolation) increments [s_skipped] rather
    than disappearing. *)

module Corpus = Namer_corpus.Corpus

type config = {
  f_lang : Corpus.lang;
  f_seed : int;
  f_iters : int;  (** mutation iterations *)
  f_out : string option;  (** crash-corpus directory ({!Triage.write}) *)
  f_jobs : int;  (** worker domains for the model build *)
  f_bomb_depth : int;  (** {!Mutate.default_bomb_depth} unless overridden *)
  f_repos : int;  (** generated-corpus size; small — fuzzing wants cycles *)
}

val default_config : Corpus.lang -> config

type summary = {
  s_iters : int;
  s_mutants : int;  (** mutants actually scanned *)
  s_skipped : int;  (** mutant scans that degraded to a skipped file *)
  s_crashes : Triage.crash list;  (** escapes, minimized, discovery order *)
  s_buckets : (string * int) list;  (** crash count per bucket id *)
  s_oracles : Oracles.result list;
}

(** Zero crashes and all oracles green. *)
val ok : summary -> bool

val pp_summary : Format.formatter -> summary -> unit

(** Campaign record for the run ledger: iteration counts, crash buckets
    and per-oracle verdicts as one JSON object. *)
val summary_json : summary -> Namer_util.Json.t

(** Run the campaign.  [progress] (default silent) receives one-line
    status updates suitable for a terminal. *)
val run : ?progress:(string -> unit) -> config -> summary
