(** Metamorphic oracles over a trained model.

    A fuzzer without an oracle can only find crashes.  These four
    properties let it find {e wrong answers}: each states how reports must
    respond to a semantics-preserving (or semantics-known) transformation
    of the input, with no reference to what the "correct" reports are.

    {ol
    {- {b fix / re-inject} — applying a report's own suggested fix to the
       file makes that report disappear; restoring the original text (i.e.
       re-injecting the naming issue into the now-clean file) brings it
       back.  The scanner's reports must be caused by the text they blame.}
    {- {b alpha-renaming} — consistently renaming a subtoken disjoint from
       the model's vocabulary (mined pair words, pattern words, language
       keywords) across {e every} identifier that carries it must not
       change the file's report count.  Patterns live in subtoken space
       ([self._limit = limit] is one agreement family), so the renaming
       must follow the family, and the model must care only about names it
       has seen.}
    {- {b permutation} — shuffling file order and changing the worker
       count must leave the rendered report set byte-identical.  The
       pipeline's determinism contract, checked from the outside.}
    {- {b model agreement} — a build's own violation set equals
       {!Namer_core.Namer.scan_with_model} of the same files against
       {!Namer_core.Namer.model_of} of that build.  The train-once /
       scan-many split must not change what is reported.}
    {- {b merge split} — dealing the corpus into random slices, training
       each into a partial model, merging the partials in a shuffled
       order and finalizing must scan the corpus byte-identically to the
       direct build.  The merge-algebra contract
       [train(A+B) ≡ merge(train A, train B)], checked from the
       outside.}} *)

module Namer = Namer_core.Namer
module Corpus = Namer_corpus.Corpus

type result = {
  o_name : string;
  o_pass : bool;
  o_detail : string;  (** what was exercised, or the first counterexample *)
}

val fix_reinject :
  rng:Namer_util.Prng.t -> Namer.model -> Corpus.file list -> result

val alpha_rename :
  rng:Namer_util.Prng.t -> Namer.model -> Corpus.file list -> result

val permutation :
  rng:Namer_util.Prng.t -> Namer.model -> Corpus.file list -> result

val model_agreement : Namer.t -> Namer.model -> Corpus.file list -> result

val merge_split :
  rng:Namer_util.Prng.t ->
  Namer.t -> Namer.model -> Corpus.file list ->
  commits:(string * string) list -> result

(** All five, each on an independent child of [rng] (so adding an oracle
    never perturbs the others' draws).  [t] must be the build [model] came
    from, [files] its corpus and [commits] that corpus's commit history.
    The build must be classifier-free (the fuzzer's models are): the
    merge-split oracle compares reports across statement orderings, and
    the labeled-sample draw is order-sensitive by design. *)
val run_all :
  rng:Namer_util.Prng.t ->
  t:Namer.t ->
  model:Namer.model ->
  files:Corpus.file list ->
  commits:(string * string) list ->
  result list
