(** Crash triage.  See the interface for the bucketing contract. *)

module Corpus = Namer_corpus.Corpus

type crash = {
  c_lang : Corpus.lang;
  c_exn : string;
  c_bucket : string;
  c_input : string;
  c_desc : string;
  c_iter : int;
}

let normalize_exn text =
  let b = Buffer.create (String.length text) in
  let last_digit = ref false and last_space = ref false in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
          if not !last_digit then Buffer.add_char b '#';
          last_digit := true;
          last_space := false
      | ' ' | '\t' | '\n' | '\r' ->
          if not !last_space then Buffer.add_char b ' ';
          last_space := true;
          last_digit := false
      | c ->
          Buffer.add_char b c;
          last_digit := false;
          last_space := false)
    text;
  let s = Buffer.contents b in
  if String.length s > 160 then String.sub s 0 160 else s

let bucket ~lang ~exn_text =
  let key = Corpus.lang_name lang ^ "|" ^ normalize_exn exn_text in
  String.sub (Digest.to_hex (Digest.string key)) 0 12

(* ------------------------------------------------------------------ *)
(* Minimization                                                        *)
(* ------------------------------------------------------------------ *)

(* Greedy ddmin-lite.  Two phases under one probe budget:
   1. line blocks: try dropping contiguous chunks of lines, halving the
      chunk size — shrinks multi-statement reproducers fast;
   2. byte halving: try keeping only the head / only the tail — shrinks
      single-line monsters where line granularity is useless.
   Every accepted candidate must still crash in the caller's bucket, so
   the minimized input reproduces the *same* defect, not just any. *)
let minimize ~still_crashes src =
  let budget = ref 300 in
  let try_probe candidate =
    if !budget <= 0 || String.length candidate >= String.length src then false
    else begin
      decr budget;
      still_crashes candidate
    end
  in
  let drop_lines src =
    let lines = Array.of_list (String.split_on_char '\n' src) in
    let n = Array.length lines in
    let cur = ref src and cur_lines = ref lines in
    let chunk = ref (max 1 (n / 2)) in
    while !chunk >= 1 && !budget > 0 do
      let i = ref 0 in
      while !i < Array.length !cur_lines && !budget > 0 do
        let keep =
          Array.to_list !cur_lines
          |> List.filteri (fun j _ -> j < !i || j >= !i + !chunk)
        in
        let candidate = String.concat "\n" keep in
        if candidate <> "" && try_probe candidate then begin
          cur := candidate;
          cur_lines := Array.of_list keep
          (* same [i]: the next chunk slid into place *)
        end
        else i := !i + !chunk
      done;
      chunk := if !chunk = 1 then 0 else !chunk / 2
    done;
    !cur
  in
  let halve_bytes src =
    let cur = ref src in
    let continue_ = ref true in
    while !continue_ && !budget > 0 do
      let n = String.length !cur in
      let head = String.sub !cur 0 (n / 2) in
      let tail = String.sub !cur (n / 2) (n - n / 2) in
      if n > 1 && try_probe head then cur := head
      else if n > 1 && try_probe tail then cur := tail
      else continue_ := false
    done;
    !cur
  in
  halve_bytes (drop_lines src)

(* ------------------------------------------------------------------ *)
(* The on-disk crash corpus                                            *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write ~out crash =
  let ext = match crash.c_lang with Corpus.Python -> ".py" | Corpus.Java -> ".java" in
  let dir = Filename.concat out crash.c_bucket in
  let base = Printf.sprintf "crash-%06d" crash.c_iter in
  let src_path = Filename.concat dir (base ^ ext) in
  try
    mkdir_p dir;
    let oc = open_out_bin src_path in
    output_string oc crash.c_input;
    close_out oc;
    let oc = open_out (Filename.concat dir (base ^ ".info")) in
    Printf.fprintf oc "bucket: %s\nlang: %s\nexception: %s\nmutation: %s\nbytes: %d\n"
      crash.c_bucket (Corpus.lang_name crash.c_lang) crash.c_exn crash.c_desc
      (String.length crash.c_input);
    close_out oc;
    Some src_path
  with Sys_error _ -> None
