(** Deterministic, seed-driven mutation engine over corpus source text.

    Every mutant is a pure function of the caller's {!Namer_util.Prng}
    stream and the input — same seed, same corpus, same mutant — so a
    fuzzing campaign replays exactly, and a crasher's (seed, iteration)
    pair is already a reproducer.

    The operator palette targets the failure modes a real scan meets:
    identifier swaps sampled from mined confusing pairs (semantically
    plausible wrong names), token deletion/duplication and mid-statement
    truncation (syntax damage), garbage and NUL bytes (binary junk in a
    source tree), and deep-nesting bombs (resource exhaustion —
    [Stack_overflow] in a recursive-descent parser). *)

type kind =
  | Ident_swap  (** replace one confusing-pair word by its partner *)
  | Token_delete  (** drop one identifier/number token *)
  | Token_dup  (** duplicate one token in place *)
  | Truncate  (** cut the file mid-statement *)
  | Garbage  (** splice in random bytes, NUL-biased *)
  | Nest_bomb  (** append a [bomb_depth]-deep nested expression *)

val kind_name : kind -> string
val all_kinds : kind list

type mutant = {
  m_source : string;
  m_kind : kind;
  m_desc : string;  (** human-readable description of the edit *)
}

(** Deepest nesting the digest pipeline is known to survive is ~2M frames
    on an 8 MiB stack; the default bomb depth sits safely above it. *)
val default_bomb_depth : int

(** [mutate ~rng ~pairs ~lang source] draws one mutation (bombs are
    down-weighted — they cost seconds each) and applies it.  Operators
    that need a precondition the input lacks (e.g. no pair word present
    for {!Ident_swap}) fall back to a cheaper operator and say so in
    [m_desc]. *)
val mutate :
  rng:Namer_util.Prng.t ->
  ?pairs:(string * string) list ->
  ?bomb_depth:int ->
  lang:Namer_corpus.Corpus.lang ->
  string ->
  mutant

(** {2 Text surgery shared with the metamorphic oracles} *)

(** Identifier tokens of [source] with their byte offsets. *)
val ident_tokens : string -> (int * string) list

(** [replace_word_on_line src ~line ~needle ~with_] rewrites the first
    word-boundary occurrence of [needle] on 1-based [line]; [None] when
    the line or the word is absent. *)
val replace_word_on_line :
  string -> line:int -> needle:string -> with_:string -> string option

(** [rename_ident src ~old_name ~new_name] rewrites every word-boundary
    occurrence — the consistent def/use alpha-renaming of oracle 2. *)
val rename_ident : string -> old_name:string -> new_name:string -> string

(** The nesting bomb on its own (a whole pathological file), used to seed
    the crash-regression corpus. *)
val nest_bomb : lang:Namer_corpus.Corpus.lang -> depth:int -> string
