(** Campaign driver.  See the interface for the contract. *)

module Namer = Namer_core.Namer
module Corpus = Namer_corpus.Corpus
module Miner = Namer_mining.Miner
module Confusing_pairs = Namer_mining.Confusing_pairs
module Prng = Namer_util.Prng

type config = {
  f_lang : Corpus.lang;
  f_seed : int;
  f_iters : int;
  f_out : string option;
  f_jobs : int;
  f_bomb_depth : int;
  f_repos : int;
}

let default_config lang =
  {
    f_lang = lang;
    f_seed = 42;
    f_iters = 200;
    f_out = None;
    f_jobs = 1;
    f_bomb_depth = Mutate.default_bomb_depth;
    f_repos = 6;
  }

type summary = {
  s_iters : int;
  s_mutants : int;
  s_skipped : int;
  s_crashes : Triage.crash list;
  s_buckets : (string * int) list;
  s_oracles : Oracles.result list;
}

let ok s = s.s_crashes = [] && List.for_all (fun (o : Oracles.result) -> o.Oracles.o_pass) s.s_oracles

let pp_summary ppf s =
  Format.fprintf ppf "fuzz: %d iterations, %d mutants scanned, %d degraded to skipped files@."
    s.s_iters s.s_mutants s.s_skipped;
  (match s.s_buckets with
  | [] -> Format.fprintf ppf "crashes: none@."
  | buckets ->
      Format.fprintf ppf "crashes: %d in %d buckets@." (List.length s.s_crashes)
        (List.length buckets);
      List.iter (fun (b, n) -> Format.fprintf ppf "  bucket %s: %d@." b n) buckets);
  List.iter
    (fun (o : Oracles.result) ->
      Format.fprintf ppf "oracle %-16s %s  (%s)@." o.Oracles.o_name
        (if o.Oracles.o_pass then "PASS" else "FAIL")
        o.Oracles.o_detail)
    s.s_oracles

(* The campaign record for the run ledger: same facts as [pp_summary], as
   data — iteration counts, crash buckets, per-oracle verdicts. *)
let summary_json s =
  let module J = Namer_util.Json in
  J.Obj
    [
      ("iters", J.Int s.s_iters);
      ("mutants", J.Int s.s_mutants);
      ("skipped", J.Int s.s_skipped);
      ("crashes", J.Int (List.length s.s_crashes));
      ( "buckets",
        J.Obj (List.map (fun (b, n) -> (b, J.Int n)) s.s_buckets) );
      ( "oracles",
        J.Obj
          (List.map
             (fun (o : Oracles.result) ->
               (o.Oracles.o_name, J.Bool o.Oracles.o_pass))
             s.s_oracles) );
      ("ok", J.Bool (ok s));
    ]

(* Self-mine a model from a small generated corpus — the CLI's scaled
   thresholds, so a 6-repo corpus still yields a usable pattern store. *)
let build_model ~progress cfg =
  let ccfg =
    { (Corpus.default_config cfg.f_lang) with
      Corpus.n_repos = cfg.f_repos; seed = cfg.f_seed }
  in
  let corpus = Corpus.generate ccfg in
  let n_files = List.length corpus.Corpus.files in
  let bcfg =
    {
      Namer.default_config with
      Namer.use_classifier = false;
      seed = cfg.f_seed;
      jobs = cfg.f_jobs;
      miner =
        {
          Miner.default_config with
          Miner.min_support = max 5 (n_files / 20);
          min_path_freq = max 3 (n_files / 50);
        };
    }
  in
  let t = Namer.build bcfg corpus in
  let m = Namer.model_of t in
  progress
    (Printf.sprintf "model: %d files, %d patterns, %d pairs, hash %s" n_files
       (Namer_pattern.Pattern.Store.size m.Namer.m_store)
       (Confusing_pairs.total_pairs m.Namer.m_pairs)
       m.Namer.m_hash);
  (corpus, t, m)

let run ?(progress = fun _ -> ()) cfg =
  let rng = Prng.create cfg.f_seed in
  let corpus, t, m = build_model ~progress cfg in
  let files_arr = Array.of_list corpus.Corpus.files in
  let pairs =
    match Confusing_pairs.bindings m.Namer.m_pairs with
    | [] -> Namer.builtin_pairs cfg.f_lang
    | bs -> List.map fst bs
  in
  let scan_source (f : Corpus.file) src =
    Namer.scan_with_model ~jobs:1 m [ { f with Corpus.source = src } ]
  in
  let crashes = ref [] in
  let buckets = Hashtbl.create 8 in
  let skipped = ref 0 and mutants = ref 0 in
  for i = 1 to cfg.f_iters do
    let f = Prng.choose_arr rng files_arr in
    let mut =
      Mutate.mutate ~rng ~pairs ~bomb_depth:cfg.f_bomb_depth ~lang:cfg.f_lang
        f.Corpus.source
    in
    incr mutants;
    (match scan_source f mut.Mutate.m_source with
    | sr -> if sr.Namer.sr_skipped <> [] then incr skipped
    | exception Out_of_memory ->
        (* not survivable, not triageable: let the operator see it *)
        raise Out_of_memory
    | exception e ->
        let exn_text = Printexc.to_string e in
        let bucket = Triage.bucket ~lang:cfg.f_lang ~exn_text in
        progress
          (Printf.sprintf "iter %d: CRASH %s after %s -> bucket %s" i exn_text
             mut.Mutate.m_desc bucket);
        let still_crashes candidate =
          match scan_source f candidate with
          | _ -> false
          | exception Out_of_memory -> false
          | exception e' ->
              String.equal bucket
                (Triage.bucket ~lang:cfg.f_lang
                   ~exn_text:(Printexc.to_string e'))
        in
        let minimized = Triage.minimize ~still_crashes mut.Mutate.m_source in
        let crash =
          {
            Triage.c_lang = cfg.f_lang;
            c_exn = exn_text;
            c_bucket = bucket;
            c_input = minimized;
            c_desc = Printf.sprintf "iter %d: %s" i mut.Mutate.m_desc;
            c_iter = i;
          }
        in
        Hashtbl.replace buckets bucket
          (1 + Option.value ~default:0 (Hashtbl.find_opt buckets bucket));
        (match cfg.f_out with
        | Some out -> (
            match Triage.write ~out crash with
            | Some path -> progress (Printf.sprintf "  minimized reproducer: %s" path)
            | None -> ())
        | None -> ());
        crashes := crash :: !crashes);
    if i mod 50 = 0 then
      progress
        (Printf.sprintf "iter %d/%d: %d crashes, %d skipped-file scans" i
           cfg.f_iters (List.length !crashes) !skipped)
  done;
  progress "running metamorphic oracles";
  let oracles =
    Oracles.run_all ~rng ~t ~model:m ~files:corpus.Corpus.files
      ~commits:corpus.Corpus.commits
  in
  {
    s_iters = cfg.f_iters;
    s_mutants = !mutants;
    s_skipped = !skipped;
    s_crashes = List.rev !crashes;
    s_buckets =
      Hashtbl.fold (fun b n acc -> (b, n) :: acc) buckets [] |> List.sort compare;
    s_oracles = oracles;
  }
