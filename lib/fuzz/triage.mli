(** Crash triage: stable bucketing, best-effort minimization, and an
    on-disk crash corpus for replay.

    A fuzzing campaign that merely says "it crashed" is noise; triage
    turns each escape into a {e bucket} (a stable hash of language +
    normalized exception text, so the same defect found from a thousand
    inputs files as one issue), a {e minimized reproducer} (greedy
    line/character reduction while the crash stays in the same bucket),
    and a {e replayable artifact} under [out/<bucket>/]. *)

type crash = {
  c_lang : Namer_corpus.Corpus.lang;
  c_exn : string;  (** raw [Printexc.to_string] of the escape *)
  c_bucket : string;  (** {!bucket} of the escape *)
  c_input : string;  (** minimized crashing source *)
  c_desc : string;  (** mutation trail that produced it *)
  c_iter : int;  (** fuzzing iteration of discovery *)
}

(** Normalize exception text for bucketing: digit runs collapse to [#]
    (line numbers, offsets), whitespace runs to one space, and the result
    is capped — so ["parse error L123"] and ["parse error L7"] bucket
    together while distinct defects stay apart. *)
val normalize_exn : string -> string

(** Stable 12-hex-digit bucket id for (language, exception). *)
val bucket : lang:Namer_corpus.Corpus.lang -> exn_text:string -> string

(** [minimize ~still_crashes src] greedily shrinks [src] — dropping line
    blocks, then halving head/tail — as long as [still_crashes] accepts
    the candidate (same-bucket crash).  Bounded (≤ ~300 probes), pure
    best effort: resource bombs resist shrinking below their threshold by
    construction, and that is fine. *)
val minimize : still_crashes:(string -> bool) -> string -> string

(** [write ~out crash] persists [crash] under [out/<bucket>/] as a
    source file plus an [.info] sidecar (exception, mutation trail,
    byte count).  Returns the source path.  Directories are created as
    needed; write failures degrade to [None]. *)
val write : out:string -> crash -> string option
