(** Synthetic Big Code corpora: repositories of generated source files, the
    commit histories confusing-word pairs are mined from, and the grading
    oracle replacing the paper's manual inspection.

    Determinism: the whole corpus is a pure function of [config.seed]; every
    repo and file draws from split PRNGs, so adding files to one repo never
    changes another. *)

module Prng = Namer_util.Prng

type lang = Python | Java

let lang_name = function Python -> "Python" | Java -> "Java"

type file = { repo : string; path : string; source : string }

type t = {
  lang : lang;
  files : file list;
  injections : Issue.injection list;
  benigns : Issue.benign list;
  commits : (string * string) list;  (** (before, after) source pairs *)
}

type config = {
  lang : lang;
  n_repos : int;
  files_per_repo : int * int;  (** inclusive min/max *)
  issue_rate : float;
  benign_rate : float;
  n_commit_files : int;  (** history files diffed for confusing pairs *)
  seed : int;
}

let default_config lang =
  {
    lang;
    n_repos = 40;
    files_per_repo = (8, 20);
    issue_rate = 0.02;
    benign_rate = 0.05;
    n_commit_files = 150;
    seed = 42;
  }

(* ------------------------------------------------------------------ *)
(* Fix application (for commit "after" versions)                       *)
(* ------------------------------------------------------------------ *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

(* Replace the first word-boundary occurrence of [needle] in [hay]. *)
let replace_word hay ~needle ~with_ =
  let n = String.length hay and m = String.length needle in
  let rec find i =
    if i + m > n then None
    else if
      String.sub hay i m = needle
      && (i = 0 || not (is_ident_char hay.[i - 1]))
      && (i + m = n || not (is_ident_char hay.[i + m]))
    then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i -> String.sub hay 0 i ^ with_ ^ String.sub hay (i + m) (n - i - m)
  | None -> hay

(** Apply the fixes of [injections] to [text] (line-targeted, word-boundary
    replacement of the wrong identifier by the fixed one). *)
let apply_fixes text (injections : Issue.injection list) =
  let lines = String.split_on_char '\n' text in
  let by_line = Hashtbl.create 8 in
  List.iter
    (fun (inj : Issue.injection) ->
      Hashtbl.replace by_line inj.line
        (inj :: Option.value (Hashtbl.find_opt by_line inj.line) ~default:[]))
    injections;
  lines
  |> List.mapi (fun i line ->
         match Hashtbl.find_opt by_line (i + 1) with
         | Some injs ->
             List.fold_left
               (fun l (inj : Issue.injection) ->
                 replace_word l ~needle:inj.Issue.wrong_ident
                   ~with_:inj.Issue.fixed_ident)
               line injs
         | None -> line)
  |> String.concat "\n"

(* ------------------------------------------------------------------ *)
(* Extra commit templates                                              *)
(*                                                                     *)
(* Renames that real histories contain but our issue catalog does not  *)
(* inject (fixed *before* the present corpus snapshot) — they seed     *)
(* confusing pairs like ⟨isfile, exists⟩ whose patterns then fire on   *)
(* benign anomalies, the paper's main false-positive source.           *)
(* ------------------------------------------------------------------ *)

let py_commit_templates =
  [
    ("self.assertTrue(os.path.isfile(path))", "self.assertTrue(os.path.exists(path))");
    ("value = lookup(name)", "value = lookup(key)");
    ("total = compute(x)", "total = compute(y)");
    ("low = series.min()", "low = series.max()");
    ("result = items[n]", "result = items[i]");
    ("result = items[k]", "result = items[i]");
    ("self.assertTrue(os.path.islink(path))", "self.assertTrue(os.path.exists(path))");
    ("handle = registry.get(key, options)", "handle = registry.get(key, kwargs)");
  ]

let java_commit_templates =
  [
    ("        sink.put(name);", "        sink.put(key);");
    ("        int low = series.min();", "        int low = series.max();");
    ("        int value = items[j];", "        int value = items[i];");
    ("        sink.put(ex);", "        sink.put(e);");
  ]

let py_commit_file ~idx (before_stmt, after_stmt) =
  let render stmt =
    Printf.sprintf
      "import os\nfrom unittest import TestCase\n\nclass TestHistory%d(TestCase):\n    def test_change_%d(self):\n        %s\n"
      idx idx stmt
  in
  (render before_stmt, render after_stmt)

let java_commit_file ~idx (before_stmt, after_stmt) =
  let render stmt =
    Printf.sprintf
      "package com.example.history;\n\npublic class History%d {\n    public void change%d() {\n%s\n    }\n}\n"
      idx idx stmt
  in
  (render before_stmt, render after_stmt)

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let generate (cfg : config) : t =
  let master = Prng.create cfg.seed in
  let rates = { Py_gen.issue = cfg.issue_rate; benign = cfg.benign_rate } in
  let gen_one ~rng ~vocab ~file =
    match cfg.lang with
    | Python -> Py_gen.gen_file ~rng ~vocab ~rates ~file
    | Java -> Java_gen.gen_file ~rng ~vocab ~rates ~file
  in
  let ext = match cfg.lang with Python -> ".py" | Java -> ".java" in
  let files = ref [] and injections = ref [] and benigns = ref [] in
  for r = 0 to cfg.n_repos - 1 do
    let repo_rng = Prng.split master in
    let repo = Printf.sprintf "repo%03d" r in
    let vocab = Vocab.make_slice ~seed:(cfg.seed + (r * 977)) in
    let lo, hi = cfg.files_per_repo in
    let n_files = lo + Prng.int repo_rng (hi - lo + 1) in
    for f = 0 to n_files - 1 do
      let file_rng = Prng.split repo_rng in
      let path = Printf.sprintf "%s/src/file%03d%s" repo f ext in
      let em = gen_one ~rng:file_rng ~vocab ~file:path in
      files := { repo; path; source = Emitter.contents em } :: !files;
      injections := Emitter.injections em @ !injections;
      benigns := Emitter.benigns em @ !benigns
    done
  done;
  (* Commit history: dedicated files generated with a high issue rate whose
     "after" version applies the recorded fixes — these never enter the scan
     corpus, mirroring the paper's use of *past* history. *)
  let commits = ref [] in
  let history_rng = Prng.split master in
  let history_rates = { Py_gen.issue = 0.6; benign = 0.0 } in
  for c = 0 to cfg.n_commit_files - 1 do
    let rng = Prng.split history_rng in
    let vocab = Vocab.make_slice ~seed:(cfg.seed + 100_000 + (c * 131)) in
    let path = Printf.sprintf "history/file%04d%s" c ext in
    let em =
      match cfg.lang with
      | Python -> Py_gen.gen_file ~rng ~vocab ~rates:history_rates ~file:path
      | Java -> Java_gen.gen_file ~rng ~vocab ~rates:history_rates ~file:path
    in
    let before = Emitter.contents em in
    let injs = Emitter.injections em in
    if injs <> [] then commits := (before, apply_fixes before injs) :: !commits
  done;
  (* Template commits, several instances each so the pairs pass pruning. *)
  let templates =
    match cfg.lang with Python -> py_commit_templates | Java -> java_commit_templates
  in
  List.iteri
    (fun ti tpl ->
      for k = 0 to 5 do
        let mk = match cfg.lang with
          | Python -> py_commit_file
          | Java -> java_commit_file
        in
        commits := mk ~idx:((ti * 10) + k) tpl :: !commits
      done)
    templates;
  {
    lang = cfg.lang;
    files = List.rev !files;
    injections = !injections;
    benigns = !benigns;
    commits = !commits;
  }

(* ------------------------------------------------------------------ *)
(* Paper-scale streaming generation                                    *)
(* ------------------------------------------------------------------ *)

let write_scale ~lang ~seed ~files_per_repo ~n_files emit =
  let files_per_repo = max 1 files_per_repo in
  let rates = { Py_gen.issue = 0.02; benign = 0.05 } in
  let ext = match lang with Python -> ".py" | Java -> ".java" in
  let emitted = ref 0 and r = ref 0 in
  while !emitted < n_files do
    let repo = Printf.sprintf "repo%05d" !r in
    (* each repo draws from its own PRNG seeded by (seed, repo index) —
       independent of [n_files] and of every other repo, which is what
       makes smaller corpora prefixes of larger ones *)
    let repo_rng = Prng.create (seed + 1 + (!r * 9176)) in
    let vocab = Vocab.make_slice ~seed:(seed + (!r * 977)) in
    let f = ref 0 in
    while !f < files_per_repo && !emitted < n_files do
      let file_rng = Prng.split repo_rng in
      let path = Printf.sprintf "%s/src/file%03d%s" repo !f ext in
      let em =
        match lang with
        | Python -> Py_gen.gen_file ~rng:file_rng ~vocab ~rates ~file:path
        | Java -> Java_gen.gen_file ~rng:file_rng ~vocab ~rates ~file:path
      in
      emit ~repo ~path ~source:(Emitter.contents em);
      incr emitted;
      incr f
    done;
    incr r
  done

(* ------------------------------------------------------------------ *)
(* The grading oracle                                                  *)
(* ------------------------------------------------------------------ *)

type corpus = t

module Oracle = struct
  type verdict =
    | True_issue of Issue.category
    | False_positive
    | Known_benign  (** false positive that hit a recorded benign anomaly *)

  type t = {
    injections_at : (string * int, Issue.injection list) Hashtbl.t;
    benigns_at : (string * int, unit) Hashtbl.t;
  }

  let of_corpus (c : corpus) =
    let injections_at = Hashtbl.create 512 and benigns_at = Hashtbl.create 512 in
    List.iter
      (fun (inj : Issue.injection) ->
        let key = (inj.file, inj.line) in
        Hashtbl.replace injections_at key
          (inj :: Option.value (Hashtbl.find_opt injections_at key) ~default:[]))
      c.injections;
    List.iter
      (fun (b : Issue.benign) -> Hashtbl.replace benigns_at (b.bfile, b.bline) ())
      c.benigns;
    { injections_at; benigns_at }

  let norm = String.lowercase_ascii

  (** Grade one report.  [symmetric] relaxes the found/suggested direction —
      consistency violations are inherently bidirectional (renaming either
      name satisfies the pattern). *)
  let grade t ~file ~line ~found ~suggested ~symmetric =
    match Hashtbl.find_opt t.injections_at (file, line) with
    | Some injs ->
        let hit (inj : Issue.injection) =
          (norm inj.wrong = norm found && norm inj.expected = norm suggested)
          || symmetric
             && norm inj.wrong = norm suggested
             && norm inj.expected = norm found
        in
        (match List.find_opt hit injs with
        | Some inj -> True_issue inj.category
        | None -> False_positive)
    | None ->
        if Hashtbl.mem t.benigns_at (file, line) then Known_benign else False_positive
end
