(** Synthetic Big Code corpora and the grading oracle.

    The generator replaces the paper's GitHub dataset (see DESIGN.md §1):
    deterministic repositories of Python/Java source text built from a
    catalog of naming idioms with controlled rates of injected issues and
    benign anomalies, plus commit histories for confusing-pair mining.
    The {!Oracle} replaces the paper's manual inspection. *)

type lang = Python | Java

val lang_name : lang -> string

type file = { repo : string; path : string; source : string }

type t = {
  lang : lang;
  files : file list;
  injections : Issue.injection list;  (** ground-truth issue log *)
  benigns : Issue.benign list;  (** false-positive-if-reported log *)
  commits : (string * string) list;  (** (before, after) source pairs *)
}

type config = {
  lang : lang;
  n_repos : int;
  files_per_repo : int * int;  (** inclusive min/max *)
  issue_rate : float;  (** per idiom instance *)
  benign_rate : float;
  n_commit_files : int;
  seed : int;
}

val default_config : lang -> config

(** Pure function of [config] (fixed seeds; see DESIGN.md §5). *)
val generate : config -> t

(** [write_scale ~lang ~seed ~files_per_repo ~n_files emit] streams a
    paper-scale corpus through [emit] one generated file at a time —
    nothing is retained, so 100k+ files cost O(1) generator memory.  Each
    repo draws from a PRNG seeded by (seed, repo index), independent of
    [n_files], so an [n_files] corpus is a byte-identical prefix of any
    larger corpus with the same seed — the bounded-memory gates double the
    corpus without changing a byte of the shared prefix. *)
val write_scale :
  lang:lang -> seed:int -> files_per_repo:int -> n_files:int ->
  (repo:string -> path:string -> source:string -> unit) -> unit

(** Word-boundary, line-targeted application of recorded fixes — used to
    produce commit "after" versions.  Exposed for tests. *)
val apply_fixes : string -> Issue.injection list -> string

type corpus = t

module Oracle : sig
  (** Mechanical grading of reports against the injection log. *)

  type verdict =
    | True_issue of Issue.category
    | False_positive
    | Known_benign  (** false positive that hit a recorded benign anomaly *)

  type t

  val of_corpus : corpus -> t

  (** Grade one report: a true issue iff an injection at (file, line)
      matches found/suggested (case-insensitively; [symmetric] also accepts
      the swapped direction — consistency fixes are bidirectional). *)
  val grade :
    t ->
    file:string ->
    line:int ->
    found:string ->
    suggested:string ->
    symmetric:bool ->
    verdict
end
