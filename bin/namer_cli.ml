(* The namer command-line tool.

   Subcommands:
   - [namer generate]  write a synthetic Big Code corpus to disk;
   - [namer train]     mine patterns from a directory and save the trained
                       model as a binary snapshot (train once…);
   - [namer scan]      report naming issues in a directory: either
                       self-mining (mine and scan the same directory — the
                       paper's "w/o C" pipeline, since real directories
                       carry no labeled data), or against a [--model]
                       snapshot, optionally through a [--cache-dir]
                       per-file report cache (…scan many);
   - [namer demo]      one-paragraph end-to-end demonstration;
   - [namer stats]     dump the metric registry persisted by the last
                       run as JSON (or OpenMetrics exposition text);
   - [namer report]    aggregate the run ledger into trend tables and a
                       history-based regression gate.

   Reports go to stdout; progress and telemetry go to stderr, so stdout
   stays machine-parseable (e.g. [namer scan --json ... | jq]).

   Observability: every train/scan/demo/fuzz run appends one record to the
   run ledger (disable with --no-ledger), can stream structured JSONL
   events with --log-json, and can export the metric registry as an
   OpenMetrics textfile with --metrics-out.

   Example:
     namer generate --lang python --repos 20 --out /tmp/bigcode
     namer train --lang python --model bigcode.nmdl /tmp/bigcode
     namer scan --model bigcode.nmdl --cache-dir ~/.cache/namer /tmp/project
     namer report --check *)

open Cmdliner
module Corpus = Namer_corpus.Corpus
module Namer = Namer_core.Namer
module Pattern = Namer_pattern.Pattern
module Telemetry = Namer_telemetry.Telemetry
module Events = Namer_obs.Events
module Ledger = Namer_obs.Ledger
module Serve = Namer_serve.Serve
module Openmetrics = Namer_obs.Openmetrics
module Trend = Namer_obs.Trend
module J = Namer_util.Json

(* ---------------- progress through the event log ---------------- *)

(* Progress always lands in the structured event log (when a sink is
   live); the human line on stderr is suppressed by --quiet.  Errors
   ignore --quiet: a run must never fail silently. *)
let quiet_flag = ref false

let progress fmt =
  Printf.ksprintf
    (fun msg ->
      Events.emit ~fields:[ ("msg", J.String msg) ] Events.Info "cli.progress";
      if not !quiet_flag then Telemetry.progressf "%s" msg)
    fmt

let progress_err fmt =
  Printf.ksprintf
    (fun msg ->
      Events.emit ~fields:[ ("msg", J.String msg) ] Events.Error "cli.error";
      Telemetry.progressf "%s" msg)
    fmt

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

(* ---------------- observability plumbing ---------------- *)

type obs = {
  o_metrics : bool;  (** print the stage/counter tables to stderr *)
  o_trace : string option;  (** Chrome trace path *)
  o_metrics_out : string option;  (** OpenMetrics textfile path *)
  o_log_json : string option;  (** event log: file path or "-" = stderr *)
  o_ledger : string option;  (** ledger dir; [None] = ledger disabled *)
  o_quiet : bool;
}

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print the per-stage cost table, counters and histogram \
               percentiles to stderr after the run.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE.json"
         ~doc:"Write a Chrome trace_event JSON timeline to $(docv) (load it \
               in chrome://tracing or Perfetto).")

let metrics_out_arg =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Write the metric registry as OpenMetrics/Prometheus text \
               exposition to $(docv) (atomic rename, suitable for a \
               node-exporter textfile collector).")

let log_json_arg =
  Arg.(value & opt (some string) None & info [ "log-json" ] ~docv:"FILE"
         ~doc:"Stream structured JSONL events (leveled, with trace/span ids \
               propagated across worker domains) to $(docv); use '-' for \
               stderr.")

let ledger_dir_arg =
  Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"DIR"
         ~doc:"Append this run's ledger record under $(docv) instead of the \
               default state directory.")

let no_ledger_arg =
  Arg.(value & flag & info [ "no-ledger" ]
         ~doc:"Do not append a record to the run ledger.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ]
         ~doc:"Suppress progress lines on stderr (they still reach the \
               --log-json event log).  Errors always print.")

let obs_term =
  let mk metrics trace metrics_out log_json ledger no_ledger quiet =
    {
      o_metrics = metrics;
      o_trace = trace;
      o_metrics_out = metrics_out;
      o_log_json = log_json;
      o_ledger =
        (if no_ledger then None
         else Some (Option.value ledger ~default:(Ledger.default_dir ())));
      o_quiet = quiet;
    }
  in
  Term.(const mk $ metrics_arg $ trace_arg $ metrics_out_arg $ log_json_arg
        $ ledger_dir_arg $ no_ledger_arg $ quiet_arg)

(** Where [namer stats] finds the last run's metric registry. *)
let default_stats_path () =
  Filename.concat (Ledger.default_dir ()) "last_metrics.json"

(** Switch the telemetry and event sinks on and return the finalizer to
    run once the pipeline is done.  The finalizer prints the stage and
    histogram tables (with --metrics), writes the Chrome trace and the
    OpenMetrics textfile, persists the metric registry for [namer stats],
    and appends one self-contained record to the run ledger —
    [extra] carries the per-subcommand fields (corpus digest, model hash,
    cache hits/misses, fuzz campaign summary, …). *)
let obs_setup ~cmd obs =
  quiet_flag := obs.o_quiet;
  (match obs.o_log_json with
  | Some "-" -> Events.set_sink (Some `Stderr)
  | Some path -> Events.set_sink (Some (`File path))
  | None -> ());
  (* the ledger and the exporter both read the metric registry, so any of
     them switches telemetry on *)
  let telemetry_on =
    obs.o_metrics || obs.o_trace <> None || obs.o_metrics_out <> None
    || obs.o_ledger <> None
  in
  if telemetry_on then begin
    Telemetry.reset ();
    Telemetry.set_sink Telemetry.Memory
  end;
  let argv = Array.to_list Sys.argv in
  let t_start = Unix.gettimeofday () in
  Events.emit
    ~fields:[ ("cmd", J.String cmd); ("argv", J.List (List.map (fun a -> J.String a) argv)) ]
    Events.Info "cli.start";
  fun ?(extra = []) () ->
    if telemetry_on then begin
      if obs.o_metrics then begin
        prerr_newline ();
        prerr_string (Telemetry.stage_table ());
        prerr_newline ();
        List.iter
          (fun (k, v) -> Printf.eprintf "  %-28s %d\n" k v)
          (Telemetry.counters ());
        if Telemetry.histograms () <> [] then begin
          prerr_newline ();
          prerr_string (Telemetry.histogram_table ())
        end;
        flush stderr
      end;
      (match obs.o_trace with
      | Some path -> (
          try
            Telemetry.write_chrome_trace ~path;
            progress "wrote Chrome trace to %s" path
          with Sys_error e ->
            progress_err "error: cannot write Chrome trace: %s" e;
            exit 1)
      | None -> ());
      (match obs.o_metrics_out with
      | Some path -> (
          match Openmetrics.of_metrics_json (Telemetry.metrics_json ()) with
          | Ok metrics -> (
              try
                Openmetrics.write ~path metrics;
                progress "wrote OpenMetrics exposition to %s" path
              with Sys_error e ->
                progress_err "error: cannot write OpenMetrics file: %s" e;
                exit 1)
          | Error e ->
              progress_err "error: cannot render OpenMetrics: %s" e;
              exit 1)
      | None -> ());
      let stats_path = default_stats_path () in
      (try
         mkdir_p (Filename.dirname stats_path);
         Telemetry.write_metrics ~path:stats_path
       with Sys_error _ -> ());
      (match obs.o_ledger with
      | Some dir -> (
          let record =
            J.Obj
              ([
                 ("schema", J.Int Ledger.schema_version);
                 ("ts", J.Float t_start);
                 ("wall_s", J.Float (Unix.gettimeofday () -. t_start));
                 ("cmd", J.String cmd);
                 ("argv", J.List (List.map (fun a -> J.String a) argv));
                 ("git", J.String (Ledger.git_describe ()));
                 ("trace", J.String (Events.current ()).Events.trace);
                 ("stages", Telemetry.stages_json ());
                 ( "counters",
                   J.Obj
                     (List.map (fun (k, v) -> (k, J.Int v)) (Telemetry.counters ())) );
                 ("peak_rss_kb", J.Int (Ledger.peak_rss_kb ()));
               ]
              @ extra)
          in
          try Ledger.append ~dir record
          with Sys_error e | Unix.Unix_error (_, e, _) ->
            progress_err "warning: cannot append to run ledger: %s" e)
      | None -> ())
    end;
    Events.emit ~fields:[ ("cmd", J.String cmd) ] Events.Info "cli.finish";
    Events.close ()

let lang_conv =
  let parse = function
    | "python" | "py" -> Ok Corpus.Python
    | "java" -> Ok Corpus.Java
    | s -> Error (`Msg (Printf.sprintf "unknown language %S (python|java)" s))
  in
  let print fmt l = Format.pp_print_string fmt (String.lowercase_ascii (Corpus.lang_name l)) in
  Arg.conv (parse, print)

let lang_arg =
  Arg.(value & opt lang_conv Corpus.Python & info [ "lang" ] ~docv:"LANG"
         ~doc:"Language: python or java.")

let jobs_arg =
  Arg.(value & opt int (Domain.recommended_domain_count ())
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for the sharded pipeline (default: the \
                 machine's recommended domain count).  Any value produces \
                 byte-identical reports; 1 disables parallelism.")

(* common ledger fields for a run over a concrete file set; sources are
   hashed one at a time through the refs, never held together *)
let refs_fields ~jobs (refs : Namer.file_ref list) =
  [
    ("jobs", J.Int jobs);
    ("domains", J.Int (min jobs (Domain.recommended_domain_count ())));
    ("files", J.Int (List.length refs));
    ( "corpus_digest",
      J.String
        (Ledger.source_digest_refs
           (List.map (fun (r : Namer.file_ref) -> (r.Namer.fr_path, r.Namer.fr_load)) refs))
    );
  ]

(* ---------------- generate ---------------- *)

let generate lang repos seed out =
  let cfg = { (Corpus.default_config lang) with Corpus.n_repos = repos; seed } in
  let corpus = Corpus.generate cfg in
  List.iter
    (fun (f : Corpus.file) ->
      let path = Filename.concat out f.Corpus.path in
      mkdir_p (Filename.dirname path);
      let oc = open_out path in
      output_string oc f.Corpus.source;
      close_out oc)
    corpus.Corpus.files;
  progress "wrote %d %s files (%d injected issues) under %s"
    (List.length corpus.Corpus.files)
    (Corpus.lang_name lang)
    (List.length corpus.Corpus.injections)
    out

(* ---------------- corpus (paper scale, streaming) ---------------- *)

let corpus_gen lang files files_per_repo seed out =
  let t0 = Unix.gettimeofday () in
  let n = ref 0 and last_dir = ref "" in
  Corpus.write_scale ~lang ~seed ~files_per_repo ~n_files:files
    (fun ~repo:_ ~path ~source ->
      let full = Filename.concat out path in
      let dir = Filename.dirname full in
      if dir <> !last_dir then begin
        mkdir_p dir;
        last_dir := dir
      end;
      let oc = open_out_bin full in
      output_string oc source;
      close_out oc;
      incr n;
      if !n mod 10_000 = 0 then progress "  …%d files" !n);
  progress "wrote %d %s files under %s in %.1fs" !n (Corpus.lang_name lang) out
    (Unix.gettimeofday () -. t0)

let corpus_cmd =
  let files =
    Arg.(value & opt int 20_000 & info [ "files" ] ~docv:"N"
           ~doc:"Number of files to generate.")
  in
  let files_per_repo =
    Arg.(value & opt int 50 & info [ "files-per-repo" ] ~docv:"N"
           ~doc:"Files per synthetic repository.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let out =
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"DIR"
           ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:"Generate a paper-scale corpus on disk, streaming one file at a \
             time: an N-file corpus is a byte-identical prefix of a larger \
             one with the same seed, and generation never holds the corpus \
             in memory.")
    Term.(const corpus_gen $ lang_arg $ files $ files_per_repo $ seed $ out)

let generate_cmd =
  let repos =
    Arg.(value & opt int 20 & info [ "repos" ] ~docv:"N" ~doc:"Number of repositories.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let out =
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"DIR"
           ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic Big Code corpus on disk.")
    Term.(const generate $ lang_arg $ repos $ seed $ out)

(* ---------------- train / scan ---------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rec walk_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then walk_files path else [ path ])

(* Streaming collection: name the files, don't read them — the pipeline
   loads each one on a worker domain when its batch is digested. *)
let collect_refs lang dir =
  let ext = match lang with Corpus.Python -> ".py" | Corpus.Java -> ".java" in
  let refs =
    walk_files dir
    |> List.filter (fun p -> Filename.check_suffix p ext)
    |> List.map (fun path -> Namer.ref_of_path ~repo:dir ~path ~file:path)
  in
  if refs = [] then begin
    progress_err "no %s files under %s" ext dir;
    exit 1
  end;
  refs

(* Per-file failure isolation surfaced to the operator: a scan or train
   that dropped files still succeeded, but degraded — say so, per file,
   on stderr (stdout stays machine-parseable). *)
let report_skipped (skipped : Namer.skipped list) =
  match skipped with
  | [] -> ()
  | sk ->
      progress "degraded: skipped %d files (per-file isolation)" (List.length sk);
      List.iter
        (fun (s : Namer.skipped) ->
          progress "  skipped %s: %s" s.Namer.sk_file s.Namer.sk_reason)
        sk

let skipped_json (skipped : Namer.skipped list) =
  J.List
    (List.map
       (fun (s : Namer.skipped) ->
         J.Obj
           [ ("file", J.String s.Namer.sk_file); ("reason", J.String s.Namer.sk_reason) ])
       skipped)

(* Self-mining: no commit history and no labeled data on a raw directory,
   so confusing pairs fall back to a built-in catalog and the classifier
   is disabled (the paper's "w/o C" configuration).  [train] and the
   mine-and-scan path share this so a saved model scans exactly like a
   same-directory self-mining run. *)
let self_mining_config ~n_files ~jobs =
  {
    Namer.default_config with
    Namer.use_classifier = false;
    jobs;
    miner =
      {
        Namer_mining.Miner.default_config with
        (* thresholds scale with corpus size so small directories still
           yield patterns *)
        min_support = max 5 (n_files / 20);
        min_path_freq = max 3 (n_files / 50);
      };
  }

(* ---------------- train ---------------- *)

let usage_error fmt =
  Printf.ksprintf
    (fun s ->
      progress_err "error: %s" s;
      exit 1)
    fmt

let partial_skipped (p : Namer.Partial.t) =
  Array.to_list p.Namer_model.Partial_model.pm_skipped
  |> List.map (fun (i, reason) ->
         {
           Namer.sk_file = snd p.Namer_model.Partial_model.pm_files.(i);
           sk_reason = reason;
         })

(* Write whichever trained artifacts were asked for and return their
   ledger fields: a finalized scan model (--model), a mergeable partial
   (--partial), or both. *)
let emit_outputs ~model_path ~partial_out (t : Namer.t option Lazy.t)
    (p : Namer.Partial.t option) =
  let model_fields =
    match model_path with
    | None -> []
    | Some path ->
        let t =
          match Lazy.force t with
          | Some t -> t
          | None -> usage_error "internal: no build to save"
        in
        let m = Namer.save_model t ~path in
        progress "saved model %s (%d patterns, %d bytes) to %s" m.Namer.m_hash
          (Namer_pattern.Pattern.Store.size m.Namer.m_store)
          (try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0)
          path;
        [ ("model_hash", J.String m.Namer.m_hash) ]
  in
  let partial_fields =
    match (partial_out, p) with
    | None, _ | _, None -> []
    | Some path, Some p ->
        let hash = Namer.Partial.save p ~path in
        progress "saved partial %s (%d files, %d stmts) to %s" hash
          (Namer.Partial.n_files p) (Namer.Partial.n_stmts p) path;
        [ ("partial_hash", J.String hash) ]
  in
  model_fields @ partial_fields

(* train DIR: mine a directory into a model snapshot (--model), a
   mergeable partial (--partial), or both. *)
let train_fresh lang dir jobs model_path partial_out obs =
  let finish = obs_setup ~cmd:"train" obs in
  let refs = collect_refs lang dir in
  progress "mining %d files…" (List.length refs);
  let cfg = self_mining_config ~n_files:(List.length refs) ~jobs in
  let extra =
    match partial_out with
    | Some _ ->
        let p = Namer.Partial.of_refs cfg ~lang refs in
        report_skipped (partial_skipped p);
        emit_outputs ~model_path:None ~partial_out (lazy None) (Some p)
        @ [ ("skipped", J.Int (Array.length p.Namer_model.Partial_model.pm_skipped)) ]
        @
        (match model_path with
        | None -> []
        | Some _ ->
            (* both outputs: finalize the partial rather than train twice *)
            emit_outputs ~model_path ~partial_out:None
              (lazy (Some (Namer.Partial.finalize cfg p)))
              None)
    | None ->
        let t = Namer.build_refs cfg ~lang refs in
        report_skipped t.Namer.skipped;
        emit_outputs ~model_path ~partial_out:None (lazy (Some t)) None
        @ [ ("skipped", J.Int (List.length t.Namer.skipped)) ]
  in
  finish ~extra:(refs_fields ~jobs refs @ extra) ()

let load_partial path =
  try Namer.Partial.load ~path
  with Namer_model.Snapshot.Error msg ->
    progress_err "error: %s" msg;
    exit 1

(* train --merge P1 P2 …: combine saved partials into a bigger partial
   (--partial) and/or a finalized scan model (--model). *)
let train_merge paths jobs model_path partial_out obs =
  let finish = obs_setup ~cmd:"merge" obs in
  let parts = List.map (fun p -> (p, load_partial p)) paths in
  let merged =
    try Namer.Partial.merge_all (List.map (fun (_, (p, _)) -> p) parts)
    with Namer_model.Partial_model.Merge_error msg ->
      progress_err "error: %s" msg;
      exit 1
  in
  progress "merged %d partials: %d files, %d statements, %d repos"
    (List.length parts)
    (Namer.Partial.n_files merged)
    (Namer.Partial.n_stmts merged)
    (Namer.Partial.n_repos merged);
  let cfg = self_mining_config ~n_files:(Namer.Partial.n_files merged) ~jobs in
  let extra =
    emit_outputs ~model_path ~partial_out
      (lazy (Some (Namer.Partial.finalize cfg merged)))
      (Some merged)
  in
  finish
    ~extra:
      ([
         ("jobs", J.Int jobs);
         ("partials_in", J.Int (List.length parts));
         ( "partials",
           J.List (List.map (fun (_, (_, hash)) -> J.String hash) parts) );
         ("files", J.Int (Namer.Partial.n_files merged));
         ("skipped", J.Int (Array.length merged.Namer_model.Partial_model.pm_skipped));
       ]
      @ extra)
    ()

(* train --update P --add DIR: digest only the new slice, merge it into
   the saved partial, and rewrite the partial in place — the incremental
   path that never re-digests the already-trained corpus. *)
let train_update lang update_path add_dir jobs model_path partial_out obs =
  let finish = obs_setup ~cmd:"merge" obs in
  let p, p_hash = load_partial update_path in
  let plang = Namer.Partial.lang_of p in
  if Namer.Partial.n_files p > 0 && plang <> lang && lang <> Corpus.Python then
    usage_error "--lang %s conflicts with the partial's language %s"
      (String.lowercase_ascii (Corpus.lang_name lang))
      (String.lowercase_ascii (Corpus.lang_name plang));
  let lang = if Namer.Partial.n_files p > 0 then plang else lang in
  let refs = collect_refs lang add_dir in
  progress "digesting %d new files…" (List.length refs);
  let cfg =
    Namer.Partial.align_config
      (self_mining_config ~n_files:(List.length refs) ~jobs)
      p
  in
  let delta = Namer.Partial.of_refs cfg ~lang refs in
  report_skipped (partial_skipped delta);
  let merged =
    try Namer.Partial.merge p delta
    with Namer_model.Partial_model.Merge_error msg ->
      progress_err "error: %s" msg;
      exit 1
  in
  let out = Option.value partial_out ~default:update_path in
  let cfg = self_mining_config ~n_files:(Namer.Partial.n_files merged) ~jobs in
  let extra =
    emit_outputs ~model_path ~partial_out:(Some out)
      (lazy (Some (Namer.Partial.finalize cfg merged)))
      (Some merged)
  in
  finish
    ~extra:
      (refs_fields ~jobs refs
      @ [
          ("partials_in", J.Int 1);
          ("partials", J.List [ J.String p_hash ]);
          ("skipped", J.Int (Array.length delta.Namer_model.Partial_model.pm_skipped));
        ]
      @ extra)
    ()

let train lang inputs jobs model_path partial_out merge_flag update_path add_dir
    obs =
  match (merge_flag, update_path, add_dir) with
  | true, Some _, _ -> usage_error "--merge and --update are mutually exclusive"
  | true, None, _ ->
      if inputs = [] then
        usage_error "--merge needs at least one saved partial (train --merge P1 P2 …)";
      if model_path = None && partial_out = None then
        usage_error "--merge needs an output: --model FILE and/or --partial FILE";
      List.iter
        (fun p ->
          if not (Sys.file_exists p) then usage_error "no such partial: %s" p)
        inputs;
      train_merge inputs jobs model_path partial_out obs
  | false, Some up, Some add ->
      if inputs <> [] then
        usage_error "--update takes no positional arguments (use --add DIR)";
      train_update lang up add jobs model_path partial_out obs
  | false, Some _, None -> usage_error "--update needs --add DIR (the new files)"
  | false, None, Some _ -> usage_error "--add only makes sense with --update PARTIAL"
  | false, None, None -> (
      match inputs with
      | [ dir ] when Sys.file_exists dir && Sys.is_directory dir ->
          if model_path = None && partial_out = None then
            usage_error "train needs an output: --model FILE and/or --partial FILE";
          train_fresh lang dir jobs model_path partial_out obs
      | [ dir ] -> usage_error "no such directory: %s" dir
      | [] -> usage_error "train needs a directory of source files"
      | _ :: _ :: _ ->
          usage_error "train takes one directory (did you mean --merge?)")

let train_cmd =
  let inputs =
    Arg.(value & pos_all string [] & info [] ~docv:"DIR|PARTIAL"
           ~doc:"Directory of source files to mine (default mode), or saved \
                 partial models to combine (with $(b,--merge)).")
  in
  let model =
    Arg.(value & opt (some string) None & info [ "model"; "o" ] ~docv:"FILE"
           ~doc:"Write the trained model snapshot to $(docv).")
  in
  let partial =
    Arg.(value & opt (some string) None & info [ "partial" ] ~docv:"FILE"
           ~doc:"Write a mergeable partial model to $(docv) instead of (or \
                 besides) a finalized snapshot.  Partials from disjoint \
                 corpus slices combine with $(b,--merge) into exactly the \
                 model a single train over everything would produce.")
  in
  let merge =
    Arg.(value & flag & info [ "merge" ]
           ~doc:"Treat the positional arguments as saved partial models and \
                 merge them (associatively, any order) into $(b,--partial) \
                 and/or finalize them into $(b,--model).")
  in
  let update =
    Arg.(value & opt (some string) None & info [ "update" ] ~docv:"PARTIAL"
           ~doc:"Incremental training: digest only $(b,--add)'s files, merge \
                 them into $(docv), and rewrite it in place — never \
                 re-digesting the corpus already trained into $(docv).")
  in
  let add =
    Arg.(value & opt (some dir) None & info [ "add" ] ~docv:"DIR"
           ~doc:"With $(b,--update): directory of new source files to fold in.")
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:"Mine name patterns from a directory and save the trained model \
             as a binary snapshot for later `namer scan --model` runs — or \
             train incrementally: save mergeable partial models per corpus \
             slice ($(b,--partial)), combine them ($(b,--merge)), and fold \
             new slices into an existing partial ($(b,--update)/$(b,--add)).")
    Term.(
      const train $ lang_arg $ inputs $ jobs_arg $ model $ partial $ merge
      $ update $ add $ obs_term)

(* ---------------- scan ---------------- *)

(* Scan against a saved model: no mining, no corpus re-digest — load the
   snapshot, digest only the target files, and optionally replay unchanged
   files from the per-file report cache.  Returns the ledger fields of the
   run. *)
let scan_with_model ~model_path ~cache_dir ~dir ~jobs ~max_reports ~json =
  let m =
    try Namer.load_model ~path:model_path
    with Namer_model.Snapshot.Error msg ->
      progress_err "error: %s" msg;
      exit 1
  in
  let refs = collect_refs m.Namer.m_lang dir in
  progress "scanning %d files against model %s…" (List.length refs) m.Namer.m_hash;
  let result = Namer.scan_refs ~jobs ?cache_dir m refs in
  (match cache_dir with
  | Some _ ->
      let total = result.Namer.sr_cache_hits + result.Namer.sr_cache_misses in
      progress "cache: %d hits, %d misses (%.1f%% hit rate)" result.Namer.sr_cache_hits
        result.Namer.sr_cache_misses
        (if total = 0 then 0.0
         else 100.0 *. float_of_int result.Namer.sr_cache_hits /. float_of_int total)
  | None -> ());
  progress "%d potential naming issues" (Array.length result.Namer.sr_reports);
  report_skipped result.Namer.sr_skipped;
  (* listings re-read files on demand; reports are file-sorted, so one
     cached entry means one read per distinct file *)
  let last_read = ref None in
  let source_line (r : Namer.report) =
    let src =
      match !last_read with
      | Some (f, src) when f = r.Namer.r_file -> src
      | _ ->
          let src = try Some (read_file r.Namer.r_file) with _ -> None in
          last_read := Some (r.Namer.r_file, src);
          src
    in
    match src with
    | Some src -> (
        match List.nth_opt (String.split_on_char '\n' src) (r.Namer.r_line - 1) with
        | Some l -> String.trim l
        | None -> "<line out of range>")
    | None -> "<unknown file>"
  in
  if json then begin
    let reports =
      Array.to_list result.Namer.sr_reports
      |> List.filteri (fun i _ -> i < max_reports)
      |> List.map (fun (r : Namer.report) ->
             J.Obj
               [
                 ("file", J.String r.Namer.r_file);
                 ("line", J.Int r.Namer.r_line);
                 ("statement", J.String (source_line r));
                 ("found", J.String r.Namer.r_found);
                 ("suggested", J.String r.Namer.r_suggested);
                 ("pattern", J.String r.Namer.r_kind);
               ])
    in
    print_endline
      (J.to_string ~indent:2
         (J.Obj
            [
              ("files", J.Int (List.length refs));
              ("model", J.String m.Namer.m_hash);
              ("patterns", J.Int (Namer_pattern.Pattern.Store.size m.Namer.m_store));
              ("violations", J.Int (Array.length result.Namer.sr_reports));
              ("cache_hits", J.Int result.Namer.sr_cache_hits);
              ("cache_misses", J.Int result.Namer.sr_cache_misses);
              ("files_skipped", J.Int (List.length result.Namer.sr_skipped));
              ("skipped", skipped_json result.Namer.sr_skipped);
              ("reports", J.List reports);
            ]))
  end
  else
    Array.iteri
      (fun i (r : Namer.report) ->
        if i < max_reports then
          Printf.printf "%s:%d: %s\n    suggested fix: %s -> %s\n" r.Namer.r_file
            r.Namer.r_line (source_line r) r.Namer.r_found r.Namer.r_suggested)
      result.Namer.sr_reports;
  refs_fields ~jobs refs
  @ [
      ("model_hash", J.String m.Namer.m_hash);
      ( "cache",
        J.Obj
          [
            ("hits", J.Int result.Namer.sr_cache_hits);
            ("misses", J.Int result.Namer.sr_cache_misses);
          ] );
      ("reports", J.Int (Array.length result.Namer.sr_reports));
      ("skipped", J.Int (List.length result.Namer.sr_skipped));
    ]

let scan lang dir jobs max_reports save_patterns load_patterns model_path cache_dir
    apply_fixes json obs =
  let finish = obs_setup ~cmd:"scan" obs in
  match model_path with
  | Some model_path ->
      if apply_fixes then begin
        progress_err "error: --fix requires the self-mining scan (omit --model)";
        exit 1
      end;
      let extra = scan_with_model ~model_path ~cache_dir ~dir ~jobs ~max_reports ~json in
      finish ~extra ()
  | None ->
  if cache_dir <> None then begin
    progress_err "error: --cache-dir requires --model (cached reports are keyed by model hash)";
    exit 1
  end;
  let refs = collect_refs lang dir in
  (* progress goes to stderr so --json leaves stdout machine-readable *)
  progress "scanning %d files…" (List.length refs);
  let cfg = self_mining_config ~n_files:(List.length refs) ~jobs in
  let t = Namer.build_refs ?patterns:(Option.map (fun p -> Namer_pattern.Pattern_io.load ~path:p) load_patterns) cfg ~lang refs in
  (match save_patterns with
  | Some path ->
      Namer_pattern.Pattern_io.save t.Namer.store ~path;
      progress "saved %d patterns to %s" (Pattern.Store.size t.Namer.store) path
  | None -> ());
  progress "mined %d patterns; %d potential naming issues"
    (Pattern.Store.size t.Namer.store)
    (Array.length t.Namer.violations);
  report_skipped t.Namer.skipped;
  (if json then begin
     let reports =
       Array.to_list t.Namer.violations
       |> List.filteri (fun i _ -> i < max_reports)
       |> List.map (fun (v : Namer.violation) ->
              J.Obj
                [
                  ("file", J.String v.Namer.v_stmt.Namer.sctx.Namer_classifier.Features.file);
                  ("line", J.Int v.Namer.v_stmt.Namer.line);
                  ("statement", J.String (Namer.source_line t v));
                  ("found", J.String v.Namer.v_info.Pattern.found);
                  ("suggested", J.String v.Namer.v_info.Pattern.suggested);
                  ("pattern", J.String (Namer.kind_name v.Namer.v_pattern.Pattern.kind));
                ])
     in
     print_endline
       (J.to_string ~indent:2
          (J.Obj
             [
               ("files", J.Int (List.length refs));
               ("patterns", J.Int (Pattern.Store.size t.Namer.store));
               ("violations", J.Int (Array.length t.Namer.violations));
               ("files_skipped", J.Int (List.length t.Namer.skipped));
               ("skipped", skipped_json t.Namer.skipped);
               ("reports", J.List reports);
             ]))
   end
   else
     Array.iteri
       (fun i v ->
         if i < max_reports then
           Printf.printf "%s:%d: %s\n    suggested fix: %s\n"
             v.Namer.v_stmt.Namer.sctx.Namer_classifier.Features.file
             v.Namer.v_stmt.Namer.line (Namer.source_line t v) (Namer.describe_fix v))
       t.Namer.violations);
  if apply_fixes then begin
    (* group fixes per file, rewrite in place *)
    let by_file = Hashtbl.create 16 in
    Array.iter
      (fun (v : Namer.violation) ->
        let file = v.Namer.v_stmt.Namer.sctx.Namer_classifier.Features.file in
        let fix =
          (v.Namer.v_stmt.Namer.line, v.Namer.v_info.Pattern.found,
           v.Namer.v_info.Pattern.suggested)
        in
        Hashtbl.replace by_file file
          (fix :: Option.value (Hashtbl.find_opt by_file file) ~default:[]))
      t.Namer.violations;
    let applied = ref 0 and skipped = ref 0 in
    Hashtbl.iter
      (fun file fixes ->
        let source = read_file file in
        let fixed, outcomes = Namer_core.Fixer.fix_source source (List.rev fixes) in
        List.iter
          (fun (_, _, _, r) ->
            match r with
            | Namer_core.Fixer.Applied _ -> incr applied
            | _ -> incr skipped)
          outcomes;
        if fixed <> source then begin
          let oc = open_out file in
          output_string oc fixed;
          close_out oc
        end)
      by_file;
    progress "applied %d fixes in place (%d skipped as ambiguous)" !applied !skipped
  end;
  finish
    ~extra:
      (refs_fields ~jobs refs
      @ [
          ("patterns", J.Int (Pattern.Store.size t.Namer.store));
          ("reports", J.Int (Array.length t.Namer.violations));
          ("skipped", J.Int (List.length t.Namer.skipped));
        ])
    ()

let scan_cmd =
  let dir =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR"
           ~doc:"Directory of source files.")
  in
  let max_reports =
    Arg.(value & opt int 25 & info [ "max-reports"; "n" ] ~docv:"N"
           ~doc:"Maximum number of reports to print.")
  in
  let save_patterns =
    Arg.(value & opt (some string) None & info [ "save-patterns" ] ~docv:"FILE"
           ~doc:"Write the mined pattern store to FILE after mining.")
  in
  let load_patterns =
    Arg.(value & opt (some string) None & info [ "patterns" ] ~docv:"FILE"
           ~doc:"Skip mining and match against the pattern store in FILE.")
  in
  let model =
    Arg.(value & opt (some string) None & info [ "model" ] ~docv:"FILE"
           ~doc:"Skip mining entirely and scan against the model snapshot in \
                 $(docv) (written by `namer train`).  The model's language \
                 overrides --lang.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"With --model: cache per-file reports under $(docv), keyed by \
                 (model hash, file content digest), so re-scans of unchanged \
                 files skip parsing entirely and replay byte-identically.")
  in
  let apply_fixes =
    Arg.(value & flag & info [ "fix" ] ~doc:"Rewrite the suggested fixes in place.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit reports as JSON on stdout.")
  in
  Cmd.v
    (Cmd.info "scan"
       ~doc:"Report naming issues in a source directory: mine patterns from \
             the directory itself, or scan against a trained --model snapshot.")
    Term.(const scan $ lang_arg $ dir $ jobs_arg $ max_reports $ save_patterns
          $ load_patterns $ model $ cache_dir $ apply_fixes $ json $ obs_term)

(* ---------------- serve ---------------- *)

(* Resident scan daemon: load the model once, answer newline-delimited
   JSON scan/status/reload/shutdown requests until SIGTERM/SIGINT, then
   drain and land one ledger row for the whole daemon lifetime. *)
let serve model_path socket_path host port jobs cache_dir max_concurrent timeout_ms obs =
  let finish = obs_setup ~cmd:"serve" obs in
  let endpoint =
    match socket_path with
    | Some path -> Serve.Unix_path path
    | None -> Serve.Tcp (host, port)
  in
  let cfg =
    {
      (Serve.default_config ~model_path endpoint) with
      Serve.sv_cache_dir = cache_dir;
      sv_jobs = jobs;
      sv_max_concurrent = max_concurrent;
      sv_timeout_ms = timeout_ms;
    }
  in
  let t =
    try Serve.create cfg with
    | Namer_model.Snapshot.Error msg | Failure msg ->
        progress_err "error: %s" msg;
        exit 1
    | Unix.Unix_error (e, fn, arg) ->
        progress_err "error: cannot bind endpoint: %s (%s %s)"
          (Unix.error_message e) fn arg;
        exit 1
  in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle (fun _ -> Serve.request_stop t))
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigterm; Sys.sigint ];
  (match Serve.endpoint t with
  | Serve.Unix_path path ->
      progress "serving model %s on unix socket %s (jobs=%d)" (Serve.model_hash t)
        path jobs
  | Serve.Tcp (h, p) ->
      progress "serving model %s on tcp %s:%d (jobs=%d)" (Serve.model_hash t) h p jobs;
      (* scripts bind --port 0 and read the resolved port from stdout *)
      if port = 0 then Printf.printf "%d\n%!" p);
  let stats = Serve.serve_forever t in
  progress "drained: %d requests (%d scans, %d reloads) over %d connections"
    stats.Serve.st_requests stats.Serve.st_scans stats.Serve.st_reloads
    stats.Serve.st_connections;
  finish
    ~extra:
      [
        ("jobs", J.Int jobs);
        ("model_hash", J.String stats.Serve.st_model_hash);
        ("serve", Serve.stats_json stats);
      ]
    ()

let serve_cmd =
  let model =
    Arg.(required & opt (some string) None & info [ "model" ] ~docv:"FILE"
           ~doc:"Model snapshot to serve (written by `namer train`).")
  in
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix domain socket at $(docv) (replaces a stale \
                 socket file; refuses one with a live daemon behind it).")
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST"
           ~doc:"TCP listen address (ignored with --socket).")
  in
  let port =
    Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP listen port; 0 (the default) binds an ephemeral port \
                 and prints it on stdout.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Per-file report cache shared across requests (and with \
                 concurrent `namer scan --cache-dir` runs), keyed by (model \
                 hash, file content digest).")
  in
  let max_concurrent =
    Arg.(value & opt int 64 & info [ "max-concurrent" ] ~docv:"N"
           ~doc:"Scans admitted at once; excess scan requests are refused \
                 immediately with code \"overloaded\".")
  in
  let timeout_ms =
    Arg.(value & opt int 30_000 & info [ "timeout-ms" ] ~docv:"MS"
           ~doc:"Per-connection stall budget: a partial request line with no \
                 progress for $(docv) ms is answered with code \"timeout\" \
                 and the connection closed.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run a resident scan daemon: load a trained model once and \
             answer newline-delimited JSON scan/status/reload/shutdown \
             requests over a Unix or TCP socket until SIGTERM, with \
             graceful drain and model hot-swap.")
    Term.(const serve $ model $ socket $ host $ port $ jobs_arg $ cache_dir
          $ max_concurrent $ timeout_ms $ obs_term)

(* ---------------- demo ---------------- *)

let demo repos jobs obs =
  let finish = obs_setup ~cmd:"demo" obs in
  let corpus =
    Corpus.generate
      { (Corpus.default_config Corpus.Python) with Corpus.n_repos = repos }
  in
  let t = Namer.build { Namer.default_config with Namer.jobs } corpus in
  let o = Namer.evaluate ~n:300 t in
  Printf.printf
    "Namer on a synthetic Python corpus: %d patterns, %d violations;\n\
     of 300 sampled violations the classifier reported %d — %d semantic defects,\n\
     %d code-quality issues, %d false positives (precision %s; paper: ~70%%).\n"
    (Pattern.Store.size t.Namer.store)
    (Array.length t.Namer.violations)
    o.Namer.n_reports o.Namer.semantic o.Namer.quality o.Namer.false_pos
    (Namer_util.Tablefmt.pct (Namer.precision o));
  finish
    ~extra:
      [
        ("jobs", J.Int jobs);
        ("repos", J.Int repos);
        ("reports", J.Int (Array.length t.Namer.violations));
        ("skipped", J.Int (List.length t.Namer.skipped));
      ]
    ()

let demo_cmd =
  let repos =
    Arg.(value & opt int 25 & info [ "repos" ] ~docv:"N"
           ~doc:"Number of synthetic repositories to generate.")
  in
  Cmd.v (Cmd.info "demo" ~doc:"End-to-end demonstration on a synthetic corpus.")
    Term.(const demo $ repos $ jobs_arg $ obs_term)

(* ---------------- fuzz ---------------- *)

let fuzz lang seed iters out jobs repos bomb_depth obs =
  let finish = obs_setup ~cmd:"fuzz" obs in
  let module Fuzz = Namer_fuzz.Fuzz in
  let cfg =
    {
      (Fuzz.default_config lang) with
      Fuzz.f_seed = seed;
      f_iters = iters;
      f_out = out;
      f_jobs = jobs;
      f_repos = repos;
      f_bomb_depth = bomb_depth;
    }
  in
  let s = Fuzz.run ~progress:(fun msg -> progress "%s" msg) cfg in
  Format.printf "%a@?" Fuzz.pp_summary s;
  finish
    ~extra:
      [
        ("jobs", J.Int jobs);
        ("seed", J.Int seed);
        ("campaign", Fuzz.summary_json s);
        ("skipped", J.Int s.Fuzz.s_skipped);
      ]
    ();
  if not (Fuzz.ok s) then exit 1

let fuzz_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed; the whole campaign is a pure function of it.") in
  let iters =
    Arg.(value & opt int 200 & info [ "iters" ] ~docv:"N"
           ~doc:"Mutation iterations to run against the scan pipeline.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"DIR"
           ~doc:"Write minimized crash reproducers under $(docv)/<bucket>/.")
  in
  let repos =
    Arg.(value & opt int 6 & info [ "repos" ] ~docv:"N"
           ~doc:"Synthetic repositories in the fuzzed corpus (small: fuzzing \
                 wants iteration cycles, not corpus breadth).")
  in
  let bomb_depth =
    Arg.(value & opt int Namer_fuzz.Mutate.default_bomb_depth
         & info [ "bomb-depth" ] ~docv:"N"
             ~doc:"Nesting depth of the resource-bomb mutation.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Fuzz the scan pipeline: seed-driven mutations of a synthetic \
             corpus, crash triage with minimized reproducers, and four \
             metamorphic oracles (fix/re-inject, alpha-renaming, \
             permutation determinism, build/model agreement).  Exits \
             non-zero on any crash or oracle violation.")
    Term.(const fuzz $ lang_arg $ seed $ iters $ out $ jobs_arg $ repos
          $ bomb_depth $ obs_term)

(* ---------------- stats ---------------- *)

let stats file openmetrics =
  let path = Option.value file ~default:(default_stats_path ()) in
  if not (Sys.file_exists path) then begin
    progress_err
      "no metric registry at %s — run `namer scan --metrics` or `namer demo \
       --metrics` first"
      path;
    exit 1
  end;
  let content = read_file path in
  (* validate before echoing, so downstream tooling can trust the output *)
  match J.parse content with
  | Ok json ->
      if openmetrics then begin
        match Openmetrics.of_metrics_json json with
        | Ok metrics -> print_string (Openmetrics.render metrics)
        | Error msg ->
            progress_err "cannot render %s as OpenMetrics: %s" path msg;
            exit 1
      end
      else print_string content
  | Error msg ->
      progress_err "corrupt metric registry %s: %s" path msg;
      exit 1

let stats_cmd =
  let file =
    Arg.(value & opt (some string) None & info [ "file" ] ~docv:"FILE"
           ~doc:"Read the metric registry from $(docv) instead of the default \
                 state path.")
  in
  let openmetrics =
    Arg.(value & flag & info [ "openmetrics" ]
           ~doc:"Render the registry as OpenMetrics/Prometheus text \
                 exposition instead of JSON.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Dump the last run's metric registry as JSON (or OpenMetrics).")
    Term.(const stats $ file $ openmetrics)

(* ---------------- report ---------------- *)

let report dir_opt last check wall_pct alloc_pct hit_drop =
  let dir = Option.value dir_opt ~default:(Ledger.default_dir ()) in
  let { Ledger.records; dropped } = Ledger.read ~dir in
  let rows = Trend.rows_of_records records in
  if rows = [] then begin
    progress_err "no ledger records under %s — run any namer subcommand first" dir;
    exit 1
  end;
  if dropped > 0 then
    progress "ledger: skipped %d torn/corrupt lines during recovery" dropped;
  print_string (Trend.table ~last rows);
  if check then begin
    let thresholds =
      { Trend.wall_pct; alloc_pct; hit_rate_drop = hit_drop }
    in
    match Trend.check ~last ~thresholds rows with
    | Ok () -> progress "report: no regressions vs the last %d runs" last
    | Error msgs ->
        List.iter (fun m -> Printf.eprintf "regression: %s\n" m) msgs;
        flush stderr;
        exit 1
  end

let report_cmd =
  let dir =
    Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR"
           ~doc:"Read the ledger from $(docv) instead of the default state \
                 directory.")
  in
  let last =
    Arg.(value & opt int 10 & info [ "last" ] ~docv:"N"
           ~doc:"Rows to show / baseline runs to gate against.")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Exit non-zero if the latest run of any subcommand regressed \
                 past the thresholds vs the mean of its previous runs.")
  in
  let wall_pct =
    Arg.(value & opt float Trend.default_thresholds.Trend.wall_pct
         & info [ "max-wall-pct" ] ~docv:"PCT"
             ~doc:"Wall-clock regression threshold, percent over baseline.")
  in
  let alloc_pct =
    Arg.(value & opt float Trend.default_thresholds.Trend.alloc_pct
         & info [ "max-alloc-pct" ] ~docv:"PCT"
             ~doc:"Allocation regression threshold, percent over baseline.")
  in
  let hit_drop =
    Arg.(value & opt float Trend.default_thresholds.Trend.hit_rate_drop
         & info [ "max-hit-drop" ] ~docv:"POINTS"
             ~doc:"Cache hit-rate drop threshold, percentage points below \
                   baseline.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Aggregate the run ledger into a trend table (wall clock, \
             allocation, cache hit rate vs previous runs) and optionally \
             gate on regressions (--check).")
    Term.(const report $ dir $ last $ check $ wall_pct $ alloc_pct $ hit_drop)

let () =
  (* fault injection reaches the released binary through the environment:
     NAMER_FAULTS="frontend.parse:3,pool.task" arms the named points *)
  (match Sys.getenv_opt "NAMER_FAULTS" with
  | Some spec when spec <> "" ->
      Namer_util.Fault.arm_from_spec spec;
      progress "fault injection armed: %s" spec
  | _ -> ());
  let info =
    Cmd.info "namer" ~version:"1.0.0"
      ~doc:"Finding naming issues with Big Code and small supervision (PLDI 2021 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; corpus_cmd; train_cmd; scan_cmd; serve_cmd; demo_cmd;
            fuzz_cmd; stats_cmd; report_cmd;
          ]))
