examples/java_scan.ml: Array Hashtbl List Namer_core Namer_corpus Namer_pattern Namer_util Printf String
