examples/quickstart.mli:
