examples/python_scan.mli:
