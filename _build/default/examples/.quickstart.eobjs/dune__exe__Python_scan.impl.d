examples/python_scan.ml: Array List Namer_classifier Namer_core Namer_corpus Namer_pattern Namer_util Printf String
