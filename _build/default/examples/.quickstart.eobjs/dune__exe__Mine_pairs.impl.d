examples/mine_pairs.ml: List Namer_core Namer_corpus Namer_mining Namer_pylang Namer_tree Printf
