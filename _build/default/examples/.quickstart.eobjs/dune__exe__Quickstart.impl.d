examples/quickstart.ml: List Namer_core Namer_corpus Namer_mining Namer_namepath Namer_pattern Namer_tree Namer_util Printf
