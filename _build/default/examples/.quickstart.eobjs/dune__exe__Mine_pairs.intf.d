examples/mine_pairs.mli:
