examples/java_scan.mli:
