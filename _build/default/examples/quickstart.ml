(* Quickstart: the paper's Figure 2 walkthrough, end to end.

   Run with:  dune exec examples/quickstart.exe

   The example program contains the real-world bug of Figure 2(a):
   [self.assertTrue(picture.rotate_angle, 90)] — assertTrue's second
   argument is an error message, not a value to compare, so the developer
   meant assertEqual.  We follow the inference pipeline of Figure 1:

   1. parse the statement into an AST             (Figure 2(b))
   2. run the static analyses and build the AST+  (Figure 2(c))
   3. extract name paths                          (Figure 2(d))
   4. check the mined name patterns               (Figure 2(e))
   5. report the violation and its suggested fix. *)

module Tree = Namer_tree.Tree
module Frontend = Namer_core.Frontend
module Namer = Namer_core.Namer
module Pattern = Namer_pattern.Pattern
module Corpus = Namer_corpus.Corpus

let program =
  {|import os
from unittest import TestCase

class TestPicture(TestCase):
    def test_angle_picture(self):
        rotated_picture_name = "IMG_2259.jpg"
        picture = self.slide.pictures
        self.assertTrue(picture.rotate_angle, 90)
|}

let section title =
  Printf.printf "\n=== %s ===\n" title

let () =
  print_endline "Namer quickstart — reproducing Figure 2 of the paper.";
  section "Example program (Figure 2a)";
  print_string program;

  (* Mine name patterns from a synthetic Big Code corpus (stands in for the
     paper's GitHub dataset; see DESIGN.md). *)
  section "Step 0: mine name patterns from Big Code";
  let corpus =
    Corpus.generate
      {
        (Corpus.default_config Corpus.Python) with
        Corpus.n_repos = 25;
        files_per_repo = (8, 12);
      }
  in
  let namer =
    Namer.build
      {
        Namer.default_config with
        miner =
          {
            Namer_mining.Miner.default_config with
            min_support = 15;
            min_path_freq = 8;
          };
      }
      corpus
  in
  Printf.printf "mined %d name patterns from %d statements in %d files\n"
    (Pattern.Store.size namer.Namer.store)
    namer.Namer.n_stmts namer.Namer.n_files;

  (* Parse the buggy file and walk its last statement through the pipeline. *)
  let parsed = Frontend.parse_file Corpus.Python ~use_analysis:true program in
  let stmt =
    List.find
      (fun (s : Frontend.stmt) -> s.Frontend.tree.Tree.value = "Call")
      parsed.Frontend.stmts
  in
  section "Step 1: parsed AST (Figure 2b)";
  print_string (Tree.to_string_indented stmt.Frontend.tree);

  section "Step 2: transformed AST+ (Figure 2c)";
  let origins = parsed.Frontend.origins ~cls:stmt.Frontend.cls ~fn:stmt.Frontend.fn in
  let plus = Namer_namepath.Astplus.transform ~origins stmt.Frontend.tree in
  print_string (Tree.to_string_indented plus);
  print_endline
    "note the TestCase origin nodes inserted by the points-to analysis";

  section "Step 3: name paths (Figure 2d)";
  let paths = Namer_namepath.Namepath.extract plus in
  List.iter
    (fun p -> print_endline ("  " ^ Namer_namepath.Namepath.to_string p))
    paths;

  section "Step 4: pattern matching (Figure 2e)";
  let digest = Pattern.Stmt_paths.of_paths paths in
  let violations =
    Pattern.Store.candidates namer.Namer.store digest
    |> List.filter_map (fun p ->
           match Pattern.check p digest with
           | Pattern.Violated info -> Some (p, info)
           | _ -> None)
  in
  Printf.printf "%d mined pattern(s) are violated by this statement\n"
    (List.length violations);
  (match
     List.find_opt
       (fun ((_ : Pattern.t), (info : Pattern.violation_info)) ->
         info.Pattern.found = "True" && info.Pattern.suggested = "Equal")
       violations
   with
  | Some (p, info) ->
      print_endline "one of them is the paper's pattern:";
      Printf.printf "  %s\n" (Pattern.canonical p);
      section "Step 5: report";
      Printf.printf
        "naming issue: statement 'self.assertTrue(picture.rotate_angle, 90)'\n";
      Printf.printf "suggested fix: replace '%s' with '%s'  →  %s\n"
        info.Pattern.found info.Pattern.suggested
        (Namer_util.Subtoken.replace_subtoken "assertTrue" ~index:1
           ~with_:info.Pattern.suggested);
      print_endline "\nNamer found and fixed the Figure 2 bug.";
      exit 0
  | None ->
      print_endline "(pattern not mined — unexpected for the default seed)";
      exit 1)
