(* Scan a Java corpus with Namer — the Java counterpart of python_scan,
   producing reports in the style of Table 6 of the paper.

   Run with:  dune exec examples/java_scan.exe *)

module Namer = Namer_core.Namer
module Corpus = Namer_corpus.Corpus
module Pattern = Namer_pattern.Pattern

let () =
  print_endline "Generating a synthetic Java Big Code corpus…";
  let corpus =
    Corpus.generate
      {
        (Corpus.default_config Corpus.Java) with
        Corpus.n_repos = 50;
        files_per_repo = (10, 18);
        issue_rate = 0.05;
        benign_rate = 0.08;
      }
  in
  print_endline "Building Namer (mining + classifier training)…";
  let t = Namer.build Namer.default_config corpus in
  Printf.printf "  %d patterns mined, %d potential violations\n%!"
    (Pattern.Store.size t.Namer.store)
    (Array.length t.Namer.violations);

  (* Group accepted reports by oracle category, one example each — the
     shape of Table 6. *)
  let sampled = Namer.sample_violations t ~n:400 ~seed:7 in
  let reports = List.filter (Namer.classify t) sampled in
  let by_category = Hashtbl.create 8 in
  List.iter
    (fun v ->
      let key =
        match Namer.grade t v with
        | Corpus.Oracle.True_issue c -> Namer_corpus.Issue.category_name c
        | _ -> "false positive"
      in
      if not (Hashtbl.mem by_category key) then Hashtbl.replace by_category key v)
    reports;
  print_endline "\nOne example report per category (cf. Table 6):";
  print_endline (String.make 78 '-');
  Hashtbl.iter
    (fun category v ->
      Printf.printf "[%s]\n  %s\n  suggested fix: %s\n" category
        (Namer.source_line t v) (Namer.describe_fix v))
    by_category;
  print_endline (String.make 78 '-');
  let outcome = Namer.grade_reports t reports in
  Printf.printf "precision over %d reports: %s\n" outcome.Namer.n_reports
    (Namer_util.Tablefmt.pct (Namer.precision outcome))
