(* Scan a Python corpus with Namer and print a report listing in the style
   of Table 3 of the paper.

   Run with:  dune exec examples/python_scan.exe *)

module Namer = Namer_core.Namer
module Corpus = Namer_corpus.Corpus
module Pattern = Namer_pattern.Pattern

let () =
  print_endline "Generating a synthetic Python Big Code corpus…";
  let corpus =
    Corpus.generate
      {
        (Corpus.default_config Corpus.Python) with
        Corpus.n_repos = 45;
        files_per_repo = (8, 16);
        issue_rate = 0.03;
        benign_rate = 0.045;
      }
  in
  let n_repos =
    List.sort_uniq compare
      (List.map (fun (f : Corpus.file) -> f.Corpus.repo) corpus.Corpus.files)
    |> List.length
  in
  Printf.printf "  %d files across %d repositories\n%!"
    (List.length corpus.Corpus.files)
    n_repos;
  print_endline "Building Namer (mining + classifier training)…";
  let t = Namer.build Namer.default_config corpus in
  Printf.printf "  %d patterns mined, %d potential violations, classifier %s\n%!"
    (Pattern.Store.size t.Namer.store)
    (Array.length t.Namer.violations)
    (match t.Namer.classifier with Some _ -> "trained" | None -> "disabled");

  print_endline "\nSample of Namer reports (classifier-accepted violations):";
  print_endline (String.make 78 '-');
  let sampled = Namer.sample_violations t ~n:400 ~seed:2024 in
  let reports = List.filter (Namer.classify t) sampled in
  List.iteri
    (fun i v ->
      if i < 12 then begin
        let verdict =
          match Namer.grade t v with
          | Corpus.Oracle.True_issue c -> Namer_corpus.Issue.category_name c
          | Corpus.Oracle.Known_benign | Corpus.Oracle.False_positive ->
              "false positive"
        in
        Printf.printf "%-28s L%-4d %s\n"
          v.Namer.v_stmt.Namer.sctx.Namer_classifier.Features.file
          v.Namer.v_stmt.Namer.line (Namer.source_line t v);
        Printf.printf "%-28s       suggested fix: %s   [oracle: %s]\n"
          "" (Namer.describe_fix v) verdict
      end)
    reports;
  print_endline (String.make 78 '-');
  let outcome = Namer.grade_reports t reports in
  Printf.printf
    "totals over %d reports: %d semantic defects, %d code-quality issues, %d false positives — precision %s\n"
    outcome.Namer.n_reports outcome.Namer.semantic outcome.Namer.quality
    outcome.Namer.false_pos
    (Namer_util.Tablefmt.pct (Namer.precision outcome))
