(* Mine confusing word pairs from commit histories (§3.2 of the paper).

   Run with:  dune exec examples/mine_pairs.exe

   For every commit, the before/after ASTs are matched with the tree-diff
   algorithm; matched identifiers whose subtoken sequences differ in exactly
   one position contribute a ⟨mistaken, correct⟩ pair.  The paper mined 950K
   pairs for Java and 150K for Python this way; this example mines from the
   synthetic corpus's histories and also demonstrates the diff on a single
   hand-written commit. *)

module Corpus = Namer_corpus.Corpus
module Confusing_pairs = Namer_mining.Confusing_pairs

let single_commit_demo () =
  print_endline "Single-commit demo:";
  let before =
    "class TestApi(TestCase):\n    def test_value(self):\n        self.assertTrue(vec.size, 4)\n"
  in
  let after =
    "class TestApi(TestCase):\n    def test_value(self):\n        self.assertEqual(vec.size, 4)\n"
  in
  let tree src =
    Namer_pylang.Py_lower.module_tree (Namer_pylang.Py_parser.parse_module src)
  in
  let pairs = Namer_tree.Treediff.confusing_subtoken_pairs (tree before) (tree after) in
  List.iter (fun (w1, w2) -> Printf.printf "  mined pair: ⟨%s, %s⟩\n" w1 w2) pairs

let () =
  single_commit_demo ();
  List.iter
    (fun lang ->
      Printf.printf "\nMining %s commit histories…\n%!" (Corpus.lang_name lang);
      let corpus =
        Corpus.generate
          { (Corpus.default_config lang) with Corpus.n_repos = 5; n_commit_files = 250 }
      in
      let pairs = Confusing_pairs.create () in
      List.iter
        (fun (before_src, after_src) ->
          match
            ( Namer_core.Frontend.whole_tree lang before_src,
              Namer_core.Frontend.whole_tree lang after_src )
          with
          | Some b, Some a -> Confusing_pairs.add_commit pairs ~before:b ~after:a
          | _ -> ())
        corpus.Corpus.commits;
      let pruned = Confusing_pairs.prune pairs ~min_count:3 in
      Printf.printf "  %d commits → %d raw pairs, %d after pruning; most frequent:\n"
        (List.length corpus.Corpus.commits)
        (Confusing_pairs.total_pairs pairs)
        (Confusing_pairs.total_pairs pruned);
      List.iter
        (fun ((w1, w2), count) -> Printf.printf "    ⟨%-8s → %-8s⟩  ×%d\n" w1 w2 count)
        (Confusing_pairs.top 10 pruned))
    [ Corpus.Python; Corpus.Java ]
