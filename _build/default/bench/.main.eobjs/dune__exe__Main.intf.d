bench/main.mli:
