bench/exp.ml: Array Hashtbl List Namer_baselines Namer_classifier Namer_core Namer_corpus Namer_mining Namer_ml Namer_namepath Namer_pattern Namer_userstudy Namer_util Option Printf String Unix
