bench/main.ml: Array Exp List Namer_core Namer_corpus Perf Printf Sys Unix
