(** Generic abstract syntax trees — the paper's AST ⟨N, T, r, δ, V, φ⟩
    (Definition 3.1) as a rose tree of string-valued nodes.  Both language
    frontends lower into this representation; everything downstream is
    language-independent. *)

type t = { value : string; children : t list }

val node : string -> t list -> t
val leaf : string -> t
val is_leaf : t -> bool
val size : t -> int
val depth : t -> int

(** Terminal node values, left to right. *)
val leaves : t -> string list

(** Pre-order fold over all nodes. *)
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

val iter : (t -> unit) -> t -> unit
val map_values : (string -> string) -> t -> t
val equal : t -> t -> bool

(** Structural hash, stable across runs. *)
val hash : t -> int

(** S-expression rendering, e.g. [(Call (NameLoad foo) (Num NUM))]. *)
val to_sexp : t -> string

val pp : Format.formatter -> t -> unit

(** Indented multi-line rendering (debugging, examples). *)
val to_string_indented : t -> string

(** All nodes satisfying the predicate, pre-order. *)
val find_all : (t -> bool) -> t -> t list
