(** AST diff matching between two versions of a program.

    Confusing-word pairs (§3.2) are mined from commits: the ASTs of the file
    before and after a change are matched node-by-node, and for every pair of
    matched *renamed* terminals whose subtoken sequences differ in exactly one
    position, that differing subtoken pair is recorded as
    ⟨mistaken word, correct word⟩.  The paper uses the diff matching of
    Paletov et al. [37]; we implement the same idea as a recursive alignment:

    - two nodes match outright when their subtrees are structurally equal
      (compared by hash, verified by equality);
    - otherwise, children lists are aligned with a longest-common-subsequence
      over (value, child-count) signatures, and aligned pairs are matched
      recursively;
    - aligned terminal nodes with different values are *rename candidates*.

    This top-down strategy is the standard backbone of tree-diff tools
    (GumTree's top-down phase) and is exact on the single-identifier edits
    that commits fixing naming issues consist of. *)

let signature (t : Tree.t) = (t.Tree.value, List.length t.Tree.children)

(* LCS over children using subtree equality first, signature equality as a
   weaker fallback, so a renamed deep subtree still aligns positionally. *)
let align (xs : Tree.t list) (ys : Tree.t list) =
  let xs = Array.of_list xs and ys = Array.of_list ys in
  let n = Array.length xs and m = Array.length ys in
  let score_match a b =
    if Tree.hash a = Tree.hash b && Tree.equal a b then 3
    else if signature a = signature b then 2
    else if a.Tree.value = b.Tree.value then 1
    else if Tree.is_leaf a && Tree.is_leaf b then 1 (* leaf rename candidate *)
    else 0
  in
  let dp = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      let s = score_match xs.(i) ys.(j) in
      let take = if s > 0 then s + dp.(i + 1).(j + 1) else -1 in
      dp.(i).(j) <- max (max dp.(i + 1).(j) dp.(i).(j + 1)) take
    done
  done;
  (* Recover one optimal alignment. *)
  let rec walk i j acc =
    if i >= n || j >= m then List.rev acc
    else
      let s = score_match xs.(i) ys.(j) in
      if s > 0 && dp.(i).(j) = s + dp.(i + 1).(j + 1) then
        walk (i + 1) (j + 1) ((xs.(i), ys.(j)) :: acc)
      else if dp.(i).(j) = dp.(i + 1).(j) then walk (i + 1) j acc
      else walk i (j + 1) acc
  in
  walk 0 0 []

(** [renamed_leaves before after] returns the pairs of matched terminal
    nodes whose values differ — the rename candidates of one edit. *)
let renamed_leaves before after =
  let out = ref [] in
  let rec go a b =
    if Tree.equal a b then ()
    else if Tree.is_leaf a && Tree.is_leaf b then begin
      if a.Tree.value <> b.Tree.value then out := (a.Tree.value, b.Tree.value) :: !out
    end
    else List.iter (fun (x, y) -> go x y) (align a.Tree.children b.Tree.children)
  in
  go before after;
  List.rev !out

(** [confusing_subtoken_pairs before after] implements the paper's mining
    step: for each matched renamed terminal whose subtoken lists have equal
    length and differ in exactly one position, return that
    ⟨mistaken, correct⟩ subtoken pair.  Also handles the whole-identifier
    rename case where both sides are single subtokens. *)
let confusing_subtoken_pairs before after =
  renamed_leaves before after
  |> List.filter_map (fun (old_name, new_name) ->
         let olds = Namer_util.Subtoken.split old_name
         and news = Namer_util.Subtoken.split new_name in
         if List.length olds = List.length news then
           let diffs =
             List.combine olds news |> List.filter (fun (a, b) -> a <> b)
           in
           match diffs with [ pair ] -> Some pair | _ -> None
         else None)
