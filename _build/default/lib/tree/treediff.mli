(** AST diff matching between two versions of a program — the backbone of
    confusing-word-pair mining (§3.2).  Top-down recursive alignment with
    an LCS over child signatures; exact on the single-identifier edits that
    naming-fix commits consist of. *)

(** Matched terminal pairs whose values differ — rename candidates. *)
val renamed_leaves : Tree.t -> Tree.t -> (string * string) list

(** Rename candidates whose subtoken sequences have equal length and differ
    in exactly one position: the ⟨mistaken, correct⟩ subtoken pairs of the
    paper's mining step. *)
val confusing_subtoken_pairs : Tree.t -> Tree.t -> (string * string) list
