(** Generic abstract syntax trees.

    This is the paper's AST ⟨N, T, r, δ, V, φ⟩ (Definition 3.1) as a rose
    tree: every node carries a string value (φ); children give δ; leaves are
    the terminal nodes T.  Both language frontends ({!Namer_pylang},
    {!Namer_javalang}) lower their surface syntax into this representation,
    and everything downstream — the AST+ transformation, name paths, pattern
    mining, program graphs for the neural baselines, commit diffing — is
    language-independent because it consumes only this type. *)

type t = { value : string; children : t list }

let node value children = { value; children }
let leaf value = { value; children = [] }
let is_leaf t = t.children = []

let rec size t = 1 + List.fold_left (fun acc c -> acc + size c) 0 t.children

let rec depth t =
  1 + List.fold_left (fun acc c -> max acc (depth c)) 0 t.children

(** Terminal node values in left-to-right order. *)
let leaves t =
  let rec go acc t =
    if is_leaf t then t.value :: acc else List.fold_left go acc t.children
  in
  List.rev (go [] t)

(** Pre-order fold over all nodes. *)
let rec fold f acc t = List.fold_left (fold f) (f acc t) t.children

let iter f t = fold (fun () n -> f n) () t

(** [map_values f t] rewrites every node value. *)
let rec map_values f t =
  { value = f t.value; children = List.map (map_values f) t.children }

let rec equal a b =
  String.equal a.value b.value
  && List.length a.children = List.length b.children
  && List.for_all2 equal a.children b.children

(** Structural hash, stable across runs (does not rely on [Hashtbl.hash]
    internals for the recursive structure). *)
let hash t =
  let combine h x = (h * 1000003) lxor x in
  let rec go h t =
    let h = combine h (Hashtbl.hash t.value) in
    List.fold_left go (combine h (List.length t.children)) t.children
  in
  go 5381 t land max_int

(** Render as an s-expression, e.g. [(Call (NameLoad foo) (Num NUM))]. *)
let rec to_sexp t =
  if is_leaf t then t.value
  else "(" ^ t.value ^ " " ^ String.concat " " (List.map to_sexp t.children) ^ ")"

let pp fmt t = Format.pp_print_string fmt (to_sexp t)

(** Indented multi-line rendering for debugging and the quickstart example. *)
let to_string_indented t =
  let buf = Buffer.create 256 in
  let rec go indent t =
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_string buf t.value;
    Buffer.add_char buf '\n';
    List.iter (go (indent + 2)) t.children
  in
  go 0 t;
  Buffer.contents buf

(** [find_all p t] returns all nodes satisfying [p] in pre-order. *)
let find_all p t =
  List.rev (fold (fun acc n -> if p n then n :: acc else acc) [] t)
