lib/tree/tree.ml: Buffer Format Hashtbl List String
