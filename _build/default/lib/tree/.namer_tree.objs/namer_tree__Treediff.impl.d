lib/tree/treediff.ml: Array List Namer_util Tree
