lib/tree/treediff.mli: Tree
