lib/ml/pipeline.mli: Namer_util
