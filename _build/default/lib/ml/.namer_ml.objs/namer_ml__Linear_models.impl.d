lib/ml/linear_models.ml: Array La Namer_util
