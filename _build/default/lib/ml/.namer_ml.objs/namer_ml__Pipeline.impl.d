lib/ml/pipeline.ml: Array La Linear_models List Namer_util Preprocess
