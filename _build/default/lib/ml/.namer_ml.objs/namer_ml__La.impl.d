lib/ml/la.ml: Array
