lib/ml/preprocess.ml: Array La
