(** Dense linear algebra for the classical-ML substrate.

    Vectors are [float array], matrices are row-major [float array array].
    Sized for the defect classifier's needs (tens of features, hundreds of
    samples): clarity over blocking/vectorization. *)

let dot a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "La.dot: dimension mismatch";
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let scale c a = Array.map (fun x -> c *. x) a
let add a b = Array.mapi (fun i x -> x +. b.(i)) a
let sub a b = Array.mapi (fun i x -> x -. b.(i)) a
let norm a = sqrt (dot a a)

let mat_vec m v = Array.map (fun row -> dot row v) m

let transpose m =
  let rows = Array.length m in
  if rows = 0 then [||]
  else
    let cols = Array.length m.(0) in
    Array.init cols (fun j -> Array.init rows (fun i -> m.(i).(j)))

let mat_mul a b =
  let bt = transpose b in
  Array.map (fun row -> Array.map (fun col -> dot row col) bt) a

(** Column means of a sample matrix (rows = samples). *)
let col_means x =
  let n = Array.length x in
  if n = 0 then [||]
  else
    let d = Array.length x.(0) in
    let mu = Array.make d 0.0 in
    Array.iter (fun row -> Array.iteri (fun j v -> mu.(j) <- mu.(j) +. v) row) x;
    Array.map (fun s -> s /. float_of_int n) mu

(** Sample covariance matrix (rows of [x] are samples). *)
let covariance x =
  let n = Array.length x in
  let mu = col_means x in
  let d = Array.length mu in
  let c = Array.make_matrix d d 0.0 in
  Array.iter
    (fun row ->
      let centered = sub row mu in
      for i = 0 to d - 1 do
        for j = 0 to d - 1 do
          c.(i).(j) <- c.(i).(j) +. (centered.(i) *. centered.(j))
        done
      done)
    x;
  let denom = float_of_int (max 1 (n - 1)) in
  Array.map (fun row -> Array.map (fun v -> v /. denom) row) c

(** Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
    Returns (eigenvalues, eigenvectors-as-columns), sorted by decreasing
    eigenvalue. *)
let jacobi_eigen ?(max_sweeps = 64) ?(tol = 1e-12) (m : float array array) =
  let n = Array.length m in
  let a = Array.map Array.copy m in
  let v = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0)) in
  let off_diag () =
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        s := !s +. (a.(i).(j) *. a.(i).(j))
      done
    done;
    !s
  in
  let sweep = ref 0 in
  while off_diag () > tol && !sweep < max_sweeps do
    incr sweep;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        if abs_float a.(p).(q) > 1e-15 then begin
          let theta = (a.(q).(q) -. a.(p).(p)) /. (2.0 *. a.(p).(q)) in
          let t =
            let s = if theta >= 0.0 then 1.0 else -1.0 in
            s /. (abs_float theta +. sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          for k = 0 to n - 1 do
            let akp = a.(k).(p) and akq = a.(k).(q) in
            a.(k).(p) <- (c *. akp) -. (s *. akq);
            a.(k).(q) <- (s *. akp) +. (c *. akq)
          done;
          for k = 0 to n - 1 do
            let apk = a.(p).(k) and aqk = a.(q).(k) in
            a.(p).(k) <- (c *. apk) -. (s *. aqk);
            a.(q).(k) <- (s *. apk) +. (c *. aqk)
          done;
          for k = 0 to n - 1 do
            let vkp = v.(k).(p) and vkq = v.(k).(q) in
            v.(k).(p) <- (c *. vkp) -. (s *. vkq);
            v.(k).(q) <- (s *. vkp) +. (c *. vkq)
          done
        end
      done
    done
  done;
  let eigs = Array.init n (fun i -> (a.(i).(i), Array.init n (fun k -> v.(k).(i)))) in
  Array.sort (fun (x, _) (y, _) -> compare y x) eigs;
  (Array.map fst eigs, Array.map snd eigs)

(** Solve [a · x = b] by Gaussian elimination with partial pivoting.
    [a] is copied.  Raises [Failure] on a (near-)singular system. *)
let solve_linear (a : float array array) (b : float array) =
  let n = Array.length a in
  let m = Array.init n (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
  for col = 0 to n - 1 do
    (* pivot *)
    let best = ref col in
    for r = col + 1 to n - 1 do
      if abs_float m.(r).(col) > abs_float m.(!best).(col) then best := r
    done;
    let tmp = m.(col) in
    m.(col) <- m.(!best);
    m.(!best) <- tmp;
    if abs_float m.(col).(col) < 1e-12 then failwith "La.solve_linear: singular matrix";
    for r = 0 to n - 1 do
      if r <> col then begin
        let f = m.(r).(col) /. m.(col).(col) in
        for c = col to n do
          m.(r).(c) <- m.(r).(c) -. (f *. m.(col).(c))
        done
      end
    done
  done;
  Array.init n (fun i -> m.(i).(n) /. m.(i).(i))
