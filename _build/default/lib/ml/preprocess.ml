(** Feature preprocessing: standardization and principal component analysis.

    §5.1: "We used feature standardization and principal component analysis
    as a preprocessing step for the features."  Both transforms are linear,
    so the trained classifier's weights can be mapped back to the original
    feature space for interpretation (Table 9) — see {!Pipeline}. *)

(** Z-score standardization fitted on training data. *)
module Standardize = struct
  type t = { mu : float array; sigma : float array }

  let fit (x : float array array) =
    let mu = La.col_means x in
    let d = Array.length mu in
    let n = float_of_int (max 1 (Array.length x)) in
    let var = Array.make d 0.0 in
    Array.iter
      (fun row ->
        Array.iteri (fun j v -> var.(j) <- var.(j) +. (((v -. mu.(j)) ** 2.0) /. n)) row)
      x;
    (* Guard constant features: unit σ leaves them centered at zero. *)
    let sigma = Array.map (fun v -> if v < 1e-12 then 1.0 else sqrt v) var in
    { mu; sigma }

  let transform t row = Array.mapi (fun j v -> (v -. t.mu.(j)) /. t.sigma.(j)) row
  let transform_all t x = Array.map (transform t) x
end

(** PCA fitted by eigendecomposition of the covariance matrix. *)
module Pca = struct
  type t = {
    components : float array array;  (** rows = principal directions *)
    mean : float array;
    explained : float array;  (** eigenvalues of kept components *)
  }

  (** [fit ?variance x] keeps the smallest number of components explaining
      at least [variance] (default 0.99) of the total. *)
  let fit ?(variance = 0.99) (x : float array array) =
    let mean = La.col_means x in
    let cov = La.covariance x in
    let eigenvalues, eigenvectors = La.jacobi_eigen cov in
    let total = Array.fold_left (fun a v -> a +. max v 0.0) 0.0 eigenvalues in
    let k = ref 0 and acc = ref 0.0 in
    while
      !k < Array.length eigenvalues
      && (total <= 0.0 || !acc /. total < variance)
    do
      acc := !acc +. max eigenvalues.(!k) 0.0;
      incr k
    done;
    let k = max 1 !k in
    {
      components = Array.sub eigenvectors 0 k;
      mean;
      explained = Array.sub eigenvalues 0 k;
    }

  let n_components t = Array.length t.components

  let transform t row =
    let centered = La.sub row t.mean in
    Array.map (fun comp -> La.dot comp centered) t.components

  let transform_all t x = Array.map (transform t) x
end
