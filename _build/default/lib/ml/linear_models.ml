(** The three linear classifiers the paper cross-validates (§5.1): a linear
    support vector machine (selected), logistic regression, and linear
    discriminant analysis.  All expose the same shape — a weight vector and
    bias over the input features, predicting [score ≥ 0] — so model
    selection and weight introspection (Table 9) are uniform.

    Labels are booleans ([true] = real naming issue). *)

type t = { weights : float array; bias : float }

let score m x = La.dot m.weights x +. m.bias
let predict m x = score m x >= 0.0

let sign b = if b then 1.0 else -1.0

(** Linear SVM trained with Pegasos (primal stochastic sub-gradient,
    Shalev-Shwartz et al. 2011) — deterministic given the PRNG. *)
module Svm = struct
  let train ?(lambda = 0.01) ?(epochs = 200) ~prng (x : float array array)
      (y : bool array) : t =
    let n = Array.length x in
    if n = 0 then invalid_arg "Svm.train: empty dataset";
    let d = Array.length x.(0) in
    let w = Array.make d 0.0 in
    let b = ref 0.0 in
    let t_step = ref 0 in
    let order = Array.init n (fun i -> i) in
    for _epoch = 1 to epochs do
      Namer_util.Prng.shuffle prng order;
      Array.iter
        (fun i ->
          incr t_step;
          let eta = 1.0 /. (lambda *. float_of_int !t_step) in
          let yi = sign y.(i) in
          let margin = yi *. (La.dot w x.(i) +. !b) in
          (* regularization shrink *)
          let shrink = 1.0 -. (eta *. lambda) in
          for j = 0 to d - 1 do
            w.(j) <- w.(j) *. shrink
          done;
          if margin < 1.0 then begin
            for j = 0 to d - 1 do
              w.(j) <- w.(j) +. (eta *. yi *. x.(i).(j))
            done;
            b := !b +. (eta *. yi)
          end)
        order
    done;
    { weights = w; bias = !b }
end

(** L2-regularized logistic regression by full-batch gradient descent. *)
module Logreg = struct
  let sigmoid z = 1.0 /. (1.0 +. exp (-.z))

  let train ?(lr = 0.1) ?(lambda = 0.001) ?(epochs = 500) (x : float array array)
      (y : bool array) : t =
    let n = Array.length x in
    if n = 0 then invalid_arg "Logreg.train: empty dataset";
    let d = Array.length x.(0) in
    let w = Array.make d 0.0 in
    let b = ref 0.0 in
    let fn = float_of_int n in
    for _ = 1 to epochs do
      let gw = Array.make d 0.0 and gb = ref 0.0 in
      for i = 0 to n - 1 do
        let p = sigmoid (La.dot w x.(i) +. !b) in
        let err = p -. (if y.(i) then 1.0 else 0.0) in
        for j = 0 to d - 1 do
          gw.(j) <- gw.(j) +. (err *. x.(i).(j))
        done;
        gb := !gb +. err
      done;
      for j = 0 to d - 1 do
        w.(j) <- w.(j) -. (lr *. ((gw.(j) /. fn) +. (lambda *. w.(j))))
      done;
      b := !b -. (lr *. !gb /. fn)
    done;
    { weights = w; bias = !b }
end

(** Two-class LDA: w = Σ⁻¹ (μ₊ − μ₋) with the threshold at the projected
    midpoint, Σ the (ridge-regularized) pooled within-class covariance. *)
module Lda = struct
  let train ?(ridge = 1e-3) (x : float array array) (y : bool array) : t =
    let pos = ref [] and neg = ref [] in
    Array.iteri (fun i row -> if y.(i) then pos := row :: !pos else neg := row :: !neg) x;
    let pos = Array.of_list !pos and neg = Array.of_list !neg in
    if Array.length pos = 0 || Array.length neg = 0 then
      invalid_arg "Lda.train: need both classes";
    let mu_p = La.col_means pos and mu_n = La.col_means neg in
    let d = Array.length mu_p in
    let cov_p = La.covariance pos and cov_n = La.covariance neg in
    let np = float_of_int (Array.length pos) and nn = float_of_int (Array.length neg) in
    let pooled =
      Array.init d (fun i ->
          Array.init d (fun j ->
              (((np -. 1.0) *. cov_p.(i).(j)) +. ((nn -. 1.0) *. cov_n.(i).(j)))
              /. (np +. nn -. 2.0)
              +. (if i = j then ridge else 0.0)))
    in
    let w = La.solve_linear pooled (La.sub mu_p mu_n) in
    let midpoint = La.scale 0.5 (La.add mu_p mu_n) in
    { weights = w; bias = -.La.dot w midpoint }
end
