lib/userstudy/userstudy.mli: Namer_corpus
