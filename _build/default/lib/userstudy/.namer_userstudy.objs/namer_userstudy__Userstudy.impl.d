lib/userstudy/userstudy.ml: List Namer_corpus Namer_util
