(** Simulated user study on the severity of code-quality issues (§5.4,
    Tables 7 and 8).

    The paper showed five reports (one per quality category) to seven
    professional developers and asked under which conditions they would
    accept each fix.  No humans are available in this reproduction, so the
    panel is simulated from explicit developer archetypes whose acceptance
    propensities encode the paper's qualitative observations:

    - renaming-type improvements (confusing / indescriptive names) are
      accepted by everyone, mostly contingent on tooling;
    - inconsistent names split opinion — some maintainers see convention,
      others see noise — and when accepted, a reviewed pull request is
      preferred over silent IDE fixes;
    - minor issues are accepted only when the fix is fully automatic;
    - typos are the one category developers will often fix by hand.

    This is a *model* of the study, not data; EXPERIMENTS.md marks the
    resulting table as simulated. *)

type response =
  | Not_accepted
  | With_ide_plugin  (** accepted at coding time via an automatic plugin *)
  | With_pull_request  (** accepted as an automatic pull request *)
  | Fix_manually  (** would fix by hand upon seeing the report *)

let response_name = function
  | Not_accepted -> "not accepted"
  | With_ide_plugin -> "accepted with IDE plugin"
  | With_pull_request -> "accepted with pull request"
  | Fix_manually -> "would even fix manually"

type archetype = Perfectionist | Automation_lover | Reviewer | Minimalist

(** Response propensities (weights) of one archetype for one category. *)
let propensities (a : archetype) (c : Namer_corpus.Issue.quality_kind) :
    (float * response) list =
  let open Namer_corpus.Issue in
  match (a, c) with
  | Perfectionist, Typo -> [ (0.1, With_ide_plugin); (0.9, Fix_manually) ]
  | Perfectionist, _ -> [ (0.3, With_pull_request); (0.5, Fix_manually); (0.2, With_ide_plugin) ]
  | Automation_lover, (Confusing_name | Indescriptive_name | Minor_issue) ->
      [ (0.8, With_ide_plugin); (0.2, With_pull_request) ]
  | Automation_lover, Typo -> [ (0.6, With_ide_plugin); (0.4, Fix_manually) ]
  | Automation_lover, Inconsistent_name ->
      [ (0.5, With_pull_request); (0.3, With_ide_plugin); (0.2, Not_accepted) ]
  | Reviewer, (Confusing_name | Indescriptive_name | Inconsistent_name) ->
      [ (0.8, With_pull_request); (0.2, Fix_manually) ]
  | Reviewer, Minor_issue -> [ (0.5, With_ide_plugin); (0.5, Not_accepted) ]
  | Reviewer, Typo -> [ (0.5, With_pull_request); (0.5, Fix_manually) ]
  | Minimalist, (Minor_issue | Inconsistent_name) ->
      [ (0.7, Not_accepted); (0.3, With_ide_plugin) ]
  | Minimalist, Typo -> [ (0.4, Not_accepted); (0.4, With_ide_plugin); (0.2, Fix_manually) ]
  | Minimalist, (Confusing_name | Indescriptive_name) ->
      [ (0.6, With_ide_plugin); (0.4, With_pull_request) ]

(** The seven-developer panel: a realistic mix of archetypes. *)
let panel =
  [
    Perfectionist; Perfectionist; Automation_lover; Automation_lover; Reviewer;
    Reviewer; Minimalist;
  ]

type tally = {
  not_accepted : int;
  with_ide : int;
  with_pr : int;
  manually : int;
}

(** [run ~seed category] simulates the panel's responses for one report of
    [category]. *)
let run ~seed (category : Namer_corpus.Issue.quality_kind) : tally =
  let prng = Namer_util.Prng.create seed in
  List.fold_left
    (fun t archetype ->
      match Namer_util.Prng.weighted prng (propensities archetype category) with
      | Not_accepted -> { t with not_accepted = t.not_accepted + 1 }
      | With_ide_plugin -> { t with with_ide = t.with_ide + 1 }
      | With_pull_request -> { t with with_pr = t.with_pr + 1 }
      | Fix_manually -> { t with manually = t.manually + 1 })
    { not_accepted = 0; with_ide = 0; with_pr = 0; manually = 0 }
    panel

(** All five categories in the order of Table 8. *)
let categories =
  Namer_corpus.Issue.
    [ Confusing_name; Indescriptive_name; Inconsistent_name; Minor_issue; Typo ]
