(** Simulated user study on code-quality issue severity (§5.4, Tables 7–8).
    A panel of developer archetypes with explicit per-category acceptance
    propensities; a model of the study, not human data (see DESIGN.md). *)

type response = Not_accepted | With_ide_plugin | With_pull_request | Fix_manually

val response_name : response -> string

type archetype = Perfectionist | Automation_lover | Reviewer | Minimalist

(** Response weights of one archetype for one issue category. *)
val propensities :
  archetype -> Namer_corpus.Issue.quality_kind -> (float * response) list

(** The seven-developer panel. *)
val panel : archetype list

type tally = { not_accepted : int; with_ide : int; with_pr : int; manually : int }

(** Simulate the panel's responses for one report of the category. *)
val run : seed:int -> Namer_corpus.Issue.quality_kind -> tally

(** The five categories, in Table 8 order. *)
val categories : Namer_corpus.Issue.quality_kind list
