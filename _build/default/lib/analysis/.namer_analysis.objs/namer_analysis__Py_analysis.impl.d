lib/analysis/py_analysis.ml: Hashtbl List Namer_namepath Namer_pylang Option Printf Py_ast Queue Solver String
