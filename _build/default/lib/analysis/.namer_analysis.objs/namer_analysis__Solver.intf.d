lib/analysis/solver.mli:
