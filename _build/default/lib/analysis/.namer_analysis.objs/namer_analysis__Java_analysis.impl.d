lib/analysis/java_analysis.ml: Flow Hashtbl Java_ast Java_lower List Namer_javalang Namer_namepath Option Printf Solver
