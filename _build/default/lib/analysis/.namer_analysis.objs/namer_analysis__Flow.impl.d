lib/analysis/flow.ml:
