lib/analysis/solver.ml: Array List Namer_datalog Namer_util
