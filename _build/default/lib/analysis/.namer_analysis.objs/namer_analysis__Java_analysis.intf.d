lib/analysis/java_analysis.mli: Namer_javalang Namer_namepath
