lib/analysis/py_analysis.mli: Namer_namepath Namer_pylang
