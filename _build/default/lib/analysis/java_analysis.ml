(** Per-file points-to and dataflow analysis for Java (§4.1).

    Java's declared types make object origins largely syntactic, so the
    analysis combines three sources, in decreasing priority:

    - declared types — locals, parameters, fields, catch and foreach binders
      of a specific reference type get that type as origin (the declaration
      *is* the paper's "origin site" for Java objects);
    - allocation flow through the Datalog solver — variables declared
      [Object] (or assigned across variables) receive origins from [new]
      expressions and copies, Andersen-style;
    - value dataflow for primitives — a primitive local's origin is the
      function returning its value, a literal category ([Num]/[Str]/[Bool]),
      or ⊤ once modified (increments, augmented assignments, arithmetic).

    [this] resolves to the root superclass: the nearest supertype not
    defined in this file ([Activity] for an [extends Activity] class), or
    ["Object"].  As with Python, everything outside the file is a fresh
    unknown; the analysis is deliberately unsound. *)

open Namer_javalang
module Origins = Namer_namepath.Origins

let primitive_category (t : Java_ast.typ) : string option =
  if t.dims > 0 then None
  else
    match t.base with
    | "int" | "long" | "short" | "byte" | "float" | "double" -> Some "Num"
    | "boolean" -> Some "Bool"
    | "char" -> Some "Str"
    | _ -> None

let is_specific_ref (t : Java_ast.typ) =
  primitive_category t = None && t.base <> "Object" && t.base <> "var"
  && t.base <> "void"

let simple_name = Java_lower.simple_name

type t = {
  solver : Solver.t;
  class_root : (string, string) Hashtbl.t;
  return_types : (string * string, string) Hashtbl.t;  (** (class, method) → simple return type *)
}

let var_key ~cls ~fn name =
  Printf.sprintf "v|%s.%s|%s" (Option.value cls ~default:"")
    (Option.value fn ~default:"")
    name

let field_key ~cls name = Printf.sprintf "a|%s|%s" cls name

let analyze (u : Java_ast.compilation_unit) : t =
  let solver = Solver.create () in
  let class_root = Hashtbl.create 8 in
  let return_types = Hashtbl.create 16 in
  (* Class hierarchy: in-file extends chains, rooted at the first external
     supertype. *)
  let in_file : (string, Java_ast.cls) Hashtbl.t = Hashtbl.create 8 in
  let rec collect (c : Java_ast.cls) =
    Hashtbl.replace in_file c.cname c;
    List.iter
      (function Java_ast.Class_m nested -> collect nested | _ -> ())
      c.members
  in
  List.iter collect u.classes;
  let rec root seen (cname : string) : string =
    if List.mem cname seen then "Object"
    else
      match Hashtbl.find_opt in_file cname with
      | None -> cname
      | Some c -> (
          match c.cextends with
          | Some t -> root (cname :: seen) (simple_name t.base)
          | None -> "Object")
  in
  Hashtbl.iter (fun cname _ -> Hashtbl.replace class_root cname (root [] cname)) in_file;
  let t = { solver; class_root; return_types } in
  let declared_origin (ty : Java_ast.typ) : string option =
    match primitive_category ty with
    | Some cat -> Some cat
    | None ->
        if ty.dims > 0 then Some (simple_name ty.base ^ "[]")
        else if is_specific_ref ty then Some (simple_name ty.base)
        else None
  in
  (* --- expression evaluation: where does this value come from? --- *)
  let rec eval ~cls ~fn (e : Java_ast.expr) : Flow.value =
    let recur e = eval ~cls ~fn e in
    match e with
    | Java_ast.Name x -> Flow.Key (var_key ~cls ~fn x)
    | Java_ast.This -> (
        match cls with
        | Some c -> Flow.Origin (Option.value (Hashtbl.find_opt class_root c) ~default:"Object")
        | None -> Flow.Nothing)
    | Java_ast.Lit_int _ | Java_ast.Lit_float _ -> Flow.Origin "Num"
    | Java_ast.Lit_str _ | Java_ast.Lit_char _ -> Flow.Origin "Str"
    | Java_ast.Lit_bool _ -> Flow.Origin "Bool"
    | Java_ast.Lit_null -> Flow.Nothing
    | Java_ast.Field (Java_ast.This, f) -> (
        match cls with
        | Some c -> Flow.Key (field_key ~cls:c f)
        | None -> Flow.Nothing)
    | Java_ast.Field (o, _) ->
        ignore (recur o);
        Flow.Nothing
    | Java_ast.Index (a, b) ->
        ignore (recur a);
        ignore (recur b);
        Flow.Nothing
    | Java_ast.Call { recv; meth; args } -> (
        Option.iter (fun r -> ignore (recur r)) recv;
        List.iter (fun a -> ignore (recur a)) args;
        (* in-file method (on this or unqualified): return-type origin *)
        let target_class =
          match recv with
          | Some Java_ast.This | None -> cls
          | Some (Java_ast.Name v) -> (
              (* declared type of the receiver, if an in-file class *)
              match Solver.singleton_origin solver ~key:(var_key ~cls ~fn v) with
              | Some o when Hashtbl.mem in_file o -> Some o
              | _ -> None)
          | _ -> None
        in
        match target_class with
        | Some c -> (
            match Hashtbl.find_opt return_types (c, meth) with
            | Some rt -> Flow.Origin rt
            | None -> Flow.Origin meth)
        | None -> Flow.Origin meth)
    | Java_ast.New (ty, args) ->
        List.iter (fun a -> ignore (recur a)) args;
        Flow.Origin (simple_name ty.base)
    | Java_ast.New_array (ty, dims) ->
        List.iter (fun a -> ignore (recur a)) dims;
        Flow.Origin (simple_name ty.base ^ "[]")
    | Java_ast.Array_init es ->
        List.iter (fun a -> ignore (recur a)) es;
        Flow.Nothing
    | Java_ast.Bin (a, _, b) ->
        ignore (recur a);
        ignore (recur b);
        Flow.Origin Solver.top
    | Java_ast.Un (op, a) | Java_ast.Postfix (a, op) ->
        ignore (recur a);
        (* increment/decrement modifies the value after creation: ⊤ *)
        if op = "++" || op = "--" then
          assign_target ~cls ~fn a (Flow.Origin Solver.top);
        Flow.Origin Solver.top
    | Java_ast.Assign_e (tgt, _, v) ->
        let value = recur v in
        assign_target ~cls ~fn tgt value;
        value
    | Java_ast.Ternary (c, a, b) ->
        ignore (recur c);
        ignore (recur a);
        ignore (recur b);
        Flow.Nothing
    | Java_ast.Cast (ty, e) ->
        ignore (recur e);
        Flow.Origin (simple_name ty.base)
    | Java_ast.Instanceof (e, _) ->
        ignore (recur e);
        Flow.Origin "Bool"
    | Java_ast.Class_lit _ -> Flow.Origin "Class"
    | Java_ast.Super_call (_, args) ->
        List.iter (fun a -> ignore (recur a)) args;
        Flow.Nothing
    | Java_ast.Lambda_e (_, body) ->
        (match body with
        | Java_ast.L_expr e -> ignore (recur e)
        | Java_ast.L_block _ -> ());
        Flow.Nothing
  and assign_target ~cls ~fn (tgt : Java_ast.expr) (v : Flow.value) =
    let bind dst = function
      | Flow.Key src -> Solver.assign solver ~dst ~src
      | Flow.Origin o -> Solver.alloc solver ~key:dst ~origin:o
      | Flow.Nothing -> ()
    in
    match tgt with
    | Java_ast.Name x -> bind (var_key ~cls ~fn x) v
    | Java_ast.Field (Java_ast.This, f) -> (
        match cls with Some c -> bind (field_key ~cls:c f) v | None -> ())
    | _ -> ()
  in
  let bind ~cls ~fn dst v = assign_target ~cls ~fn (Java_ast.Name dst) v in
  (* --- two passes: first signatures (return types, fields), then bodies,
     so call-return origins resolve regardless of declaration order. --- *)
  let rec signatures (c : Java_ast.cls) =
    List.iter
      (fun m ->
        match m with
        | Java_ast.Method_m { rtype = Some rt; mname; _ } when is_specific_ref rt ->
            Hashtbl.replace return_types (c.cname, mname) (simple_name rt.base)
        | Java_ast.Class_m nested -> signatures nested
        | _ -> ())
      c.members
  in
  List.iter signatures u.classes;
  let rec bodies (c : Java_ast.cls) =
    let cls = Some c.cname in
    List.iter
      (fun m ->
        match m with
        | Java_ast.Field_m { ftype; fname; finit; _ } ->
            (match declared_origin ftype with
            | Some o when is_specific_ref ftype || finit = None ->
                Solver.alloc solver ~key:(field_key ~cls:c.cname fname) ~origin:o
            | _ -> ());
            Option.iter
              (fun e ->
                let v = eval ~cls ~fn:None e in
                if not (is_specific_ref ftype) then
                  assign_target ~cls ~fn:None (Java_ast.Field (Java_ast.This, fname)) v)
              finit
        | Java_ast.Method_m { mname; params; mbody; _ } ->
            let fn = Some mname in
            List.iter
              (fun ((ty : Java_ast.typ), name) ->
                match declared_origin ty with
                | Some o -> Solver.alloc solver ~key:(var_key ~cls ~fn name) ~origin:o
                | None -> ())
              params;
            Option.iter (fun body -> walk ~cls ~fn body) mbody
        | Java_ast.Init_m body -> walk ~cls ~fn:(Some "<clinit>") body
        | Java_ast.Class_m nested -> bodies nested)
      c.members
  and walk ~cls ~fn stmts =
    List.iter
      (fun (s : Java_ast.stmt) ->
        (match s.kind with
        | Java_ast.Local (ty, decls) ->
            List.iter
              (fun (name, init) ->
                let declared = declared_origin ty in
                (match declared with
                | Some o when is_specific_ref ty || init = None ->
                    Solver.alloc solver ~key:(var_key ~cls ~fn name) ~origin:o
                | _ -> ());
                Option.iter
                  (fun e ->
                    let v = eval ~cls ~fn e in
                    if not (is_specific_ref ty) then bind ~cls ~fn name v)
                  init)
              decls
        | Java_ast.Expr_stmt e -> ignore (eval ~cls ~fn e)
        | Java_ast.If (c, _, _) | Java_ast.While (c, _) | Java_ast.Do_while (_, c)
        | Java_ast.Synchronized (c, _) ->
            ignore (eval ~cls ~fn c)
        | Java_ast.For (init, cond, update, _) ->
            (match init with
            | Java_ast.Fi_local (ty, decls) ->
                List.iter
                  (fun (name, ie) ->
                    (match declared_origin ty with
                    | Some o -> Solver.alloc solver ~key:(var_key ~cls ~fn name) ~origin:o
                    | None -> ());
                    Option.iter (fun e -> ignore (eval ~cls ~fn e)) ie)
                  decls
            | Java_ast.Fi_expr es -> List.iter (fun e -> ignore (eval ~cls ~fn e)) es
            | Java_ast.Fi_none -> ());
            Option.iter (fun c -> ignore (eval ~cls ~fn c)) cond;
            List.iter (fun e -> ignore (eval ~cls ~fn e)) update
        | Java_ast.Foreach (ty, name, iter, _) ->
            (match declared_origin ty with
            | Some o -> Solver.alloc solver ~key:(var_key ~cls ~fn name) ~origin:o
            | None -> ());
            ignore (eval ~cls ~fn iter)
        | Java_ast.Return (Some e) -> ignore (eval ~cls ~fn e)
        | Java_ast.Throw e -> ignore (eval ~cls ~fn e)
        | Java_ast.Try (_, catches, _) ->
            List.iter
              (fun (cat : Java_ast.catch) ->
                Solver.alloc solver
                  ~key:(var_key ~cls ~fn cat.cbind)
                  ~origin:(simple_name cat.ctype.base))
              catches
        | _ -> ());
        match s.kind with
        | Java_ast.If (_, a, b) ->
            walk ~cls ~fn a;
            walk ~cls ~fn b
        | Java_ast.For (_, _, _, b)
        | Java_ast.Foreach (_, _, _, b)
        | Java_ast.While (_, b)
        | Java_ast.Do_while (b, _)
        | Java_ast.Block b
        | Java_ast.Synchronized (_, b) ->
            walk ~cls ~fn b
        | Java_ast.Try (b, catches, f) ->
            walk ~cls ~fn b;
            List.iter (fun (c : Java_ast.catch) -> walk ~cls ~fn c.cbody) catches;
            walk ~cls ~fn f
        | _ -> ())
      stmts
  in
  List.iter bodies u.classes;
  t

(** Origin resolvers for statements in class [cls] / method [fn]. *)
let origins_for t ~(cls : string option) ~(fn : string option) : Origins.t =
  let var_origin x =
    if x = "this" then
      match cls with
      | Some c ->
          Some (Option.value (Hashtbl.find_opt t.class_root c) ~default:"Object")
      | None -> None
    else Solver.singleton_origin t.solver ~key:(var_key ~cls ~fn x)
  in
  let attr_origin f =
    match cls with
    | Some c -> Solver.singleton_origin t.solver ~key:(field_key ~cls:c f)
    | None -> None
  in
  let call_origin m =
    match cls with
    | Some c -> Hashtbl.find_opt t.return_types (c, m)
    | None -> None
  in
  { Origins.var_origin; attr_origin; call_origin }
