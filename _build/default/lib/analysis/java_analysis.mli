(** Per-file points-to and dataflow analysis for Java (§4.1): declared types
    for specific references, allocation flow through the Datalog solver for
    [Object]-typed locations, and value dataflow (literal categories,
    returning functions, ⊤ on modification) for primitives.  [this]
    resolves to the nearest supertype not defined in the file. *)

type t

val analyze : Namer_javalang.Java_ast.compilation_unit -> t

(** Origin resolvers for statements in class [cls] / method [fn]. *)
val origins_for :
  t -> cls:string option -> fn:string option -> Namer_namepath.Origins.t
