(** The value lattice shared by the language analyses' expression walks:
    a value either flows from another abstract location ([Key]), has a known
    immediate origin ([Origin] — allocation class, literal category,
    returning function, or {!Solver.top}), or is unknown ([Nothing]). *)

type value = Key of string | Origin of string | Nothing
