(** Per-file interprocedural points-to and dataflow analysis for Python
    (§4.1): Andersen-style with k-call-site sensitivity (k = 5 by default,
    demoted to k = 0 under context explosion — more than ~8 contexts per
    function on average).  Every function is a possible entry point;
    everything outside the file is a fresh unknown (deliberately unsound,
    as in the paper). *)

type t

(** Analyze one parsed module. *)
val analyze : ?k:int -> Namer_pylang.Py_ast.module_ -> t

(** Origin resolvers for statements inside class [cls] / function [fn] —
    the input to {!Namer_namepath.Astplus.transform}. *)
val origins_for :
  t -> cls:string option -> fn:string option -> Namer_namepath.Origins.t

(** Effective context depth after the explosion guard. *)
val effective_k : t -> int

(** Number of (function, context) instances enumerated. *)
val n_instances : t -> int
