(** Points-to solving harness over the Datalog engine.

    Both language analyses reduce to the same two-relation program over
    string-keyed abstract locations:

    {v
      points_to(X, O) :- alloc(X, O).
      points_to(D, O) :- assign(D, S), points_to(S, O).
    v}

    [alloc] records allocation sites / literal origins / declared types;
    [assign] records copies (plain assignments, parameter bindings at call
    sites, returned values).  After [solve], a location's origin is
    *precise* when its points-to set is a singleton other than ⊤ — only
    precise origins decorate the AST+ (§4.1: "when the origin sites are
    precisely computed, this information is added to the AST"). *)

module Datalog = Namer_datalog.Datalog
module Interner = Namer_util.Interner

(** The ⊤ origin: a value modified after creation (e.g. the target of an
    augmented assignment), which poisons precision. *)
let top = "⊤"

type t = {
  dl : Datalog.t;
  syms : Interner.t;
  pred_pt : int;
  pred_alloc : int;
  pred_assign : int;
  mutable solved : bool;
}

let create () =
  let syms = Interner.create () in
  let dl = Datalog.create () in
  let pred_pt = Interner.intern syms "$points_to" in
  let pred_alloc = Interner.intern syms "$alloc" in
  let pred_assign = Interner.intern syms "$assign" in
  let open Datalog in
  (* points_to(X, O) :- alloc(X, O). *)
  add_rule dl (rule (atom pred_pt [ v 0; v 1 ]) [ atom pred_alloc [ v 0; v 1 ] ]);
  (* points_to(D, O) :- assign(D, S), points_to(S, O). *)
  add_rule dl
    (rule
       (atom pred_pt [ v 0; v 1 ])
       [ atom pred_assign [ v 0; v 2 ]; atom pred_pt [ v 2; v 1 ] ]);
  { dl; syms; pred_pt; pred_alloc; pred_assign; solved = false }

let sym t s = Interner.intern t.syms s

(** [alloc t ~key ~origin] : location [key] may hold a value of [origin]. *)
let alloc t ~key ~origin =
  Datalog.add_fact t.dl ~pred:t.pred_alloc [| sym t key; sym t origin |]

(** [assign t ~dst ~src] : values flow from location [src] to [dst]. *)
let assign t ~dst ~src =
  Datalog.add_fact t.dl ~pred:t.pred_assign [| sym t dst; sym t src |]

let solve t =
  if not t.solved then begin
    Datalog.solve t.dl;
    t.solved <- true
  end

(** All origins that may flow to [key]. *)
let origins_of t ~key =
  solve t;
  match Interner.lookup t.syms key with
  | None -> []
  | Some id ->
      Datalog.query_first t.dl ~pred:t.pred_pt ~key:id
      |> List.map (fun tup -> Interner.name t.syms tup.(1))

(** The precise origin of [key], if its points-to set is a singleton ≠ ⊤. *)
let singleton_origin t ~key =
  match origins_of t ~key with
  | [ o ] when o <> top -> Some o
  | _ -> None

(** Number of points-to tuples derived (for diagnostics / benches). *)
let n_tuples t =
  solve t;
  Datalog.count t.dl ~pred:t.pred_pt
