(** Points-to solving harness over the Datalog engine: the two-relation
    program

    {v
      points_to(X, O) :- alloc(X, O).
      points_to(D, O) :- assign(D, S), points_to(S, O).
    v}

    shared by both language analyses (§4.1).  Locations and origins are
    strings; an origin is *precise* when a location's points-to set is a
    singleton other than {!top}. *)

type t

(** The ⊤ origin (value modified after creation); poisons precision. *)
val top : string

val create : unit -> t

(** [alloc t ~key ~origin]: location [key] may hold a value of [origin]. *)
val alloc : t -> key:string -> origin:string -> unit

(** [assign t ~dst ~src]: values flow from [src] to [dst]. *)
val assign : t -> dst:string -> src:string -> unit

(** Run (or resume) the fixpoint; implied by the query functions. *)
val solve : t -> unit

(** All origins that may flow to [key] (empty for unknown keys). *)
val origins_of : t -> key:string -> string list

(** The precise origin of [key], if any. *)
val singleton_origin : t -> key:string -> string option

(** Number of derived points-to tuples (diagnostics). *)
val n_tuples : t -> int
