(** Per-file interprocedural points-to and dataflow analysis for Python
    (§4.1).

    Every file is analyzed in isolation; every function and method is a
    possible entry point.  The analysis is Andersen-style with k-call-site
    sensitivity (k = 5 by default): each in-file function is instantiated
    once per reachable call string of length ≤ k, parameters are bound to
    the actual arguments of the instantiating site, and returned values flow
    back to the caller.  When instantiation explodes — more than 8 contexts
    per function on average, which the paper observed for a few programs —
    the analysis is re-run context-insensitively (k = 0).

    Origins computed:
    - [self] in a method of class C → the root base of C (the nearest base
      not defined in this file — e.g. [TestCase] for Figure 2's
      [TestPicture]), or ["Object"];
    - allocations [x = ClassName(...)] → the class (root base for in-file
      classes);
    - imports [import numpy as np] → the module name;
    - literals → [Num] / [Str] / [Bool] / [None]; containers → [List] /
      [Dict] / [Tuple];
    - external call results → the callee's simple name ("a function
      returning the value");
    - values modified after creation (augmented assignments, arithmetic) →
      ⊤, which suppresses decoration.

    Anything outside the file returns a fresh unknown, so the analysis is
    deliberately unsound — as the paper notes, soundness is not a
    requirement in this setting. *)

open Namer_pylang
module Origins = Namer_namepath.Origins

type fn_key = { fk_cls : string option; fk_name : string }

type fn_def = {
  key : fn_key;
  params : Py_ast.param list;
  body : Py_ast.stmt list;
  assigned : (string, unit) Hashtbl.t;  (** names assigned in the body *)
  globals : (string, unit) Hashtbl.t;  (** names declared [global] *)
}

type t = {
  solver : Solver.t;
  class_root : (string, string) Hashtbl.t;
  class_methods : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  functions : (fn_key, fn_def) Hashtbl.t;
  instances : (fn_key, string list) Hashtbl.t;  (** fn → contexts (multi) *)
  k : int;  (** effective context depth after the explosion guard *)
}

(* ---------------- keys ---------------- *)

let fn_tag = function
  | None -> ""
  | Some { fk_cls; fk_name } ->
      (match fk_cls with Some c -> c ^ "." | None -> "") ^ fk_name

let var_key ~fn ~ctx name = Printf.sprintf "v|%s|%s|%s" (fn_tag fn) ctx name
let attr_key ~cls name = Printf.sprintf "a|%s|%s" cls name
let ret_key ~fn ~ctx = Printf.sprintf "r|%s|%s" (fn_tag fn) ctx

(* ---------------- indexing ---------------- *)

let collect_assigned (body : Py_ast.stmt list) =
  let assigned = Hashtbl.create 16 and globals = Hashtbl.create 4 in
  let rec target (e : Py_ast.expr) =
    match e with
    | Py_ast.Name x -> Hashtbl.replace assigned x ()
    | Py_ast.Tuple_lit es -> List.iter target es
    | _ -> ()
  in
  Py_ast.iter_stmts
    (fun s ->
      match s.Py_ast.kind with
      | Py_ast.Assign (targets, _) -> List.iter target targets
      | Py_ast.Aug_assign (t, _, _) -> target t
      | Py_ast.For (t, _, _, _) -> target t
      | Py_ast.With (_, Some b, _) -> Hashtbl.replace assigned b ()
      | Py_ast.Try (_, handlers, _) ->
          List.iter
            (fun (h : Py_ast.handler) ->
              match h.bind with Some b -> Hashtbl.replace assigned b () | None -> ())
            handlers
      | Py_ast.Global names -> List.iter (fun n -> Hashtbl.replace globals n ()) names
      | Py_ast.Import names ->
          List.iter
            (fun (m, alias) ->
              let b = match alias with Some a -> a | None -> m in
              Hashtbl.replace assigned b ())
            names
      | Py_ast.Import_from (_, names) ->
          List.iter
            (fun (n, alias) ->
              let b = match alias with Some a -> a | None -> n in
              Hashtbl.replace assigned b ())
            names
      | _ -> ())
    body;
  (assigned, globals)

(* Walk the module collecting classes (bases, methods) and functions
   (module-level and methods). Nested functions are not instantiated. *)
let index_module (m : Py_ast.module_) =
  let class_bases : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  let class_methods : (string, (string, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let functions : (fn_key, fn_def) Hashtbl.t = Hashtbl.create 16 in
  let add_fn key params body =
    let assigned, globals = collect_assigned body in
    List.iter
      (fun (p : Py_ast.param) -> Hashtbl.replace assigned p.Py_ast.pname ())
      params;
    Hashtbl.replace functions key { key; params; body; assigned; globals }
  in
  List.iter
    (fun (s : Py_ast.stmt) ->
      match s.Py_ast.kind with
      | Py_ast.Function_def { name; params; body; _ } ->
          add_fn { fk_cls = None; fk_name = name } params body
      | Py_ast.Class_def { cname; bases; cbody } ->
          let base_names =
            List.filter_map
              (fun (b : Py_ast.expr) ->
                match b with
                | Py_ast.Name n -> Some n
                | Py_ast.Attribute (_, a) -> Some a
                | _ -> None)
              bases
          in
          Hashtbl.replace class_bases cname base_names;
          let methods = Hashtbl.create 8 in
          Hashtbl.replace class_methods cname methods;
          List.iter
            (fun (cs : Py_ast.stmt) ->
              match cs.Py_ast.kind with
              | Py_ast.Function_def { name; params; body; _ } ->
                  Hashtbl.replace methods name ();
                  add_fn { fk_cls = Some cname; fk_name = name } params body
              | _ -> ())
            cbody
      | _ -> ())
    m;
  (class_bases, class_methods, functions)

(* Root base: follow in-file inheritance to the first class not defined in
   this file; a base-less class is its own root tagged "Object". *)
let compute_class_roots class_bases =
  let roots = Hashtbl.create 8 in
  let rec root seen cname =
    if List.mem cname seen then "Object"
    else
      match Hashtbl.find_opt class_bases cname with
      | None -> cname (* external class: it is the origin *)
      | Some [] -> "Object"
      | Some (b :: _) -> root (cname :: seen) b
  in
  Hashtbl.iter (fun cname _ -> Hashtbl.replace roots cname (root [] cname)) class_bases;
  roots

(* ---------------- call graph and contexts ---------------- *)

(* Resolve a call's callee to an in-file function, if possible. *)
let resolve_callee ~functions ~class_methods ~(cls : string option)
    (func : Py_ast.expr) : fn_key option =
  match func with
  | Py_ast.Name f ->
      let key = { fk_cls = None; fk_name = f } in
      if Hashtbl.mem functions key then Some key else None
  | Py_ast.Attribute (Py_ast.Name "self", m) -> (
      match cls with
      | Some c when
          (match Hashtbl.find_opt class_methods c with
          | Some ms -> Hashtbl.mem ms m
          | None -> false) ->
          Some { fk_cls = Some c; fk_name = m }
      | _ -> None)
  | _ -> None

(* Push call site [site] onto context string [ctx], truncated to length
   [k]; k = 0 collapses every context to the empty string.  A site is
   identified by its caller and its position within the caller's walk —
   positions alone would collide across callers. *)
let push_ctx ~k ~caller site ctx =
  if k = 0 then ""
  else
    let parts = if ctx = "" then [] else String.split_on_char ';' ctx in
    let parts = Printf.sprintf "%s:%d" (fn_tag caller) site :: parts in
    let rec take n = function
      | [] -> []
      | x :: r -> if n = 0 then [] else x :: take (n - 1) r
    in
    String.concat ";" (take k parts)

(* ---------------- fact generation ---------------- *)

type value = Key of string | Origin of string | Nothing

let simple_callee_name (func : Py_ast.expr) =
  match func with
  | Py_ast.Name f -> Some f
  | Py_ast.Attribute (_, a) -> Some a
  | _ -> None

let analyze ?(k = 5) (m : Py_ast.module_) : t =
  let class_bases, class_methods, functions = index_module m in
  let class_root = compute_class_roots class_bases in
  let solver = Solver.create () in
  (* --- shared walk over one scope instance.  The SAME traversal serves two
     modes, so the call-site numbering that contexts are built from is
     consistent by construction:
     - [`Discover sink] reports each resolvable (callee, context) edge and
       performs no solver writes — used to enumerate reachable instances;
     - [`Facts] emits alloc/assign facts, including the interprocedural
       argument/return bindings whose keys name callee instances. --- *)
  let root_of_class c =
    match Hashtbl.find_opt class_root c with
    | Some r -> r
    | None -> c (* class not defined in this file *)
  in
  let gen_scope ~(k_eff : int)
      ~(mode : [ `Facts | `Discover of fn_key * string -> unit ])
      ~(fn : fn_key option) ~(ctx : string) ~(def : fn_def option)
      (body : Py_ast.stmt list) =
    let cls = match fn with Some f -> f.fk_cls | None -> None in
    let site = ref 0 in
    let resolve_var x =
      match (fn, def) with
      | Some _, Some d
        when Hashtbl.mem d.assigned x && not (Hashtbl.mem d.globals x) ->
          var_key ~fn ~ctx x
      | _ -> var_key ~fn:None ~ctx:"" x
    in
    let bind dst v =
      match (mode, v) with
      | `Discover _, _ -> ()
      | `Facts, Key src -> Solver.assign solver ~dst ~src
      | `Facts, Origin o -> Solver.alloc solver ~key:dst ~origin:o
      | `Facts, Nothing -> ()
    in
    let rec eval (e : Py_ast.expr) : value =
      match e with
      | Py_ast.Name x -> Key (resolve_var x)
      | Py_ast.Num _ -> Origin "Num"
      | Py_ast.Str _ -> Origin "Str"
      | Py_ast.Bool _ -> Origin "Bool"
      | Py_ast.None_lit -> Origin "None"
      | Py_ast.Attribute (Py_ast.Name "self", a) when cls <> None ->
          Key (attr_key ~cls:(Option.get cls) a)
      | Py_ast.Attribute (o, _) ->
          ignore (eval o);
          Nothing
      | Py_ast.Call { func; args; keywords } -> eval_call func args keywords
      | Py_ast.Compare (a, _, b) ->
          ignore (eval a);
          ignore (eval b);
          Origin "Bool"
      | Py_ast.Bin_op (a, _, b) ->
          ignore (eval a);
          ignore (eval b);
          Origin Solver.top
      | Py_ast.Unary_op (_, a) ->
          ignore (eval a);
          Origin Solver.top
      | Py_ast.Bool_op (_, es) ->
          List.iter (fun e -> ignore (eval e)) es;
          Nothing
      | Py_ast.List_lit es ->
          List.iter (fun e -> ignore (eval e)) es;
          Origin "List"
      | Py_ast.Tuple_lit es ->
          List.iter (fun e -> ignore (eval e)) es;
          Origin "Tuple"
      | Py_ast.Dict_lit kvs ->
          List.iter
            (fun (k, v) ->
              ignore (eval k);
              ignore (eval v))
            kvs;
          Origin "Dict"
      | Py_ast.Subscript (a, b) ->
          ignore (eval a);
          ignore (eval b);
          Nothing
      | Py_ast.Lambda (_, b) ->
          ignore (eval b);
          Nothing
      | Py_ast.Star_arg a | Py_ast.Double_star_arg a -> eval a
    and eval_call func args keywords : value =
      ignore
        (match func with
        | Py_ast.Attribute (o, _) -> eval o
        | _ -> Nothing);
      let arg_vals = List.map eval args in
      List.iter (fun (_, v) -> ignore (eval v)) keywords;
      match resolve_callee ~functions ~class_methods ~cls func with
      | Some callee ->
          incr site;
          let ctx' = push_ctx ~k:k_eff ~caller:fn !site ctx in
          (match mode with `Discover sink -> sink (callee, ctx') | `Facts -> ());
          let callee_def = Hashtbl.find functions callee in
          (* Bind arguments to parameters (skipping self for methods). *)
          let params =
            match callee_def.params with
            | { Py_ast.pname = "self"; _ } :: rest when callee.fk_cls <> None -> rest
            | ps -> ps
          in
          List.iteri
            (fun i v ->
              match List.nth_opt params i with
              | Some (p : Py_ast.param) when p.Py_ast.pkind = Py_ast.Plain ->
                  bind (var_key ~fn:(Some callee) ~ctx:ctx' p.Py_ast.pname) v
              | _ -> ())
            arg_vals;
          Key (ret_key ~fn:(Some callee) ~ctx:ctx')
      | None -> (
          (* External call: allocation if capitalized (a class), otherwise
             "the function returning this value". *)
          match simple_callee_name func with
          | Some f when f <> "" ->
              if f.[0] >= 'A' && f.[0] <= 'Z' then Origin (root_of_class f)
              else Origin f
          | _ -> Nothing)
    in
    let assign_target (tgt : Py_ast.expr) (v : value) =
      match tgt with
      | Py_ast.Name x -> bind (resolve_var x) v
      | Py_ast.Attribute (Py_ast.Name "self", a) when cls <> None ->
          bind (attr_key ~cls:(Option.get cls) a) v
      | _ -> ()
    in
    let rec walk stmts =
      List.iter
        (fun (s : Py_ast.stmt) ->
          (match s.Py_ast.kind with
          | Py_ast.Expr_stmt e -> ignore (eval e)
          | Py_ast.Assign (targets, value) ->
              List.iter (fun t -> ignore (eval t)) (List.filter
                (function Py_ast.Name _ -> false | _ -> true) targets);
              let v = eval value in
              List.iter (fun tgt -> assign_target tgt v) targets
          | Py_ast.Aug_assign (tgt, _, e) ->
              ignore (eval e);
              assign_target tgt (Origin Solver.top)
          | Py_ast.Return (Some e) ->
              let v = eval e in
              bind (ret_key ~fn ~ctx) v
          | Py_ast.Return None -> ()
          | Py_ast.If (branches, _) -> List.iter (fun (c, _) -> ignore (eval c)) branches
          | Py_ast.For (_, it, _, _) -> ignore (eval it)
          | Py_ast.While (c, _) -> ignore (eval c)
          | Py_ast.With (e, b, _) ->
              let v = eval e in
              (match b with
              | Some x -> bind (resolve_var x) v
              | None -> ())
          | Py_ast.Try (_, handlers, _) ->
              List.iter
                (fun (h : Py_ast.handler) ->
                  match (h.Py_ast.bind, h.Py_ast.exn_type) with
                  | Some b, Some et -> (
                      match et with
                      | Py_ast.Name n | Py_ast.Attribute (_, n) ->
                          bind (resolve_var b) (Origin n)
                      | _ -> ())
                  | _ -> ())
                handlers
          | Py_ast.Raise (Some e) -> ignore (eval e)
          | Py_ast.Assert (e, msg) ->
              ignore (eval e);
              Option.iter (fun m -> ignore (eval m)) msg
          | Py_ast.Import names ->
              List.iter
                (fun (mo, alias) ->
                  let b = match alias with Some a -> a | None -> mo in
                  bind (resolve_var b) (Origin mo))
                names
          | Py_ast.Import_from (_, names) ->
              List.iter
                (fun (n, alias) ->
                  if n <> "*" then
                    let b = match alias with Some a -> a | None -> n in
                    bind (resolve_var b) (Origin n))
                names
          | Py_ast.Delete es -> List.iter (fun e -> ignore (eval e)) es
          | _ -> ());
          (* descend into nested blocks of the same scope *)
          match s.Py_ast.kind with
          | Py_ast.If (branches, orelse) ->
              List.iter (fun (_, b) -> walk b) branches;
              walk orelse
          | Py_ast.For (_, _, b, o) ->
              walk b;
              walk o
          | Py_ast.While (_, b) | Py_ast.With (_, _, b) -> walk b
          | Py_ast.Try (b, hs, f) ->
              walk b;
              List.iter (fun (h : Py_ast.handler) -> walk h.hbody) hs;
              walk f
          | _ -> ())
        stmts
    in
    (* Parameter seeding: [self] gets the class's root origin. *)
    (match (fn, def) with
    | Some f, Some d ->
        List.iter
          (fun (p : Py_ast.param) ->
            if p.Py_ast.pname = "self" && f.fk_cls <> None then
              bind
                (var_key ~fn ~ctx "self")
                (Origin (root_of_class (Option.get f.fk_cls))))
          d.params
    | _ -> ());
    walk body
  in
  (* Module scope (top-level statements, without descending into defs). *)
  let module_body =
    List.filter
      (fun (s : Py_ast.stmt) ->
        match s.Py_ast.kind with
        | Py_ast.Function_def _ | Py_ast.Class_def _ -> false
        | _ -> true)
      m
  in
  (* --- discovery: enumerate reachable (function, context) instances from
     every entry point, with the §4.1 explosion guard (retry with k = 0 when
     the average exceeds ~8 contexts per function). --- *)
  let discover k_eff =
    let seen : (fn_key * string, unit) Hashtbl.t = Hashtbl.create 64 in
    let queue = Queue.create () in
    let budget = 8 * max 1 (Hashtbl.length functions) * (k_eff + 1) in
    let exploded = ref false in
    let sink ((callee, _ctx') as inst) =
      if (not (Hashtbl.mem seen inst)) && Hashtbl.mem functions callee then begin
        Hashtbl.replace seen inst ();
        Queue.add inst queue;
        if Hashtbl.length seen > budget then exploded := true
      end
    in
    Hashtbl.iter (fun key _ -> sink (key, "")) functions;
    gen_scope ~k_eff ~mode:(`Discover sink) ~fn:None ~ctx:"" ~def:None module_body;
    while (not (Queue.is_empty queue)) && not !exploded do
      let key, ctx = Queue.pop queue in
      let def = Hashtbl.find functions key in
      gen_scope ~k_eff ~mode:(`Discover sink) ~fn:(Some key) ~ctx ~def:(Some def)
        def.body
    done;
    if !exploded then None else Some seen
  in
  let instance_tbl, k_eff =
    match discover k with
    | Some tbl -> (tbl, k)
    | None -> (
        match discover 0 with
        | Some tbl -> (tbl, 0)
        | None -> (Hashtbl.create 0, 0) (* unreachable: k = 0 cannot explode *))
  in
  let instances : (fn_key, string list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (key, ctx) () ->
      Hashtbl.replace instances key
        (ctx :: Option.value (Hashtbl.find_opt instances key) ~default:[]))
    instance_tbl;
  (* --- fact generation over the discovered instances --- *)
  gen_scope ~k_eff ~mode:`Facts ~fn:None ~ctx:"" ~def:None module_body;
  Hashtbl.iter
    (fun key ctxs ->
      let def = Hashtbl.find functions key in
      List.iter
        (fun ctx ->
          gen_scope ~k_eff ~mode:`Facts ~fn:(Some key) ~ctx ~def:(Some def) def.body)
        ctxs)
    instances;
  { solver; class_root; class_methods; functions; instances; k = k_eff }

(* ---------------- query interface ---------------- *)

(* Merge the origins of a variable across every context instance of its
   function; precise only if all instances agree on a single non-⊤ origin. *)
let merged_origin t keys =
  let all = List.concat_map (fun key -> Solver.origins_of t.solver ~key) keys in
  match List.sort_uniq compare all with
  | [ o ] when o <> Solver.top -> Some o
  | _ -> None

(** Origin resolvers for statements inside class [cls] / function [fn] —
    plugged into {!Namer_namepath.Astplus.transform}. *)
let origins_for t ~(cls : string option) ~(fn : string option) : Origins.t =
  let fn_key = Option.map (fun f -> { fk_cls = cls; fk_name = f }) fn in
  let fn_ctxs =
    match fn_key with
    | Some k -> (
        match Hashtbl.find_opt t.instances k with Some cs -> cs | None -> [ "" ])
    | None -> [ "" ]
  in
  let var_origin x =
    if x = "self" then
      match cls with
      | Some c -> (
          match Hashtbl.find_opt t.class_root c with
          | Some r -> Some r
          | None -> Some "Object")
      | None -> None
    else
      let local_keys =
        match (fn_key, Option.bind fn_key (Hashtbl.find_opt t.functions)) with
        | Some k, Some def
          when Hashtbl.mem def.assigned x && not (Hashtbl.mem def.globals x) ->
            List.map (fun ctx -> var_key ~fn:(Some k) ~ctx x) fn_ctxs
        | _ -> [ var_key ~fn:None ~ctx:"" x ]
      in
      merged_origin t local_keys
  in
  let attr_origin a =
    match cls with
    | Some c -> merged_origin t [ attr_key ~cls:c a ]
    | None -> None
  in
  let call_origin f =
    let in_file =
      let as_method =
        match cls with
        | Some c -> (
            let key = { fk_cls = Some c; fk_name = f } in
            if Hashtbl.mem t.functions key then Some key else None)
        | None -> None
      in
      match as_method with
      | Some k -> Some k
      | None ->
          let key = { fk_cls = None; fk_name = f } in
          if Hashtbl.mem t.functions key then Some key else None
    in
    match in_file with
    | Some k ->
        let ctxs =
          match Hashtbl.find_opt t.instances k with Some cs -> cs | None -> [ "" ]
        in
        merged_origin t (List.map (fun ctx -> ret_key ~fn:(Some k) ~ctx) ctxs)
    | None ->
        if f <> "" && f.[0] >= 'A' && f.[0] <= 'Z' then
          match Hashtbl.find_opt t.class_root f with
          | Some r -> Some r
          | None -> Some f
        else None
  in
  { Origins.var_origin; attr_origin; call_origin }

(** Effective context depth after the explosion guard (diagnostics). *)
let effective_k t = t.k

(** Number of (function, context) instances (diagnostics / benches). *)
let n_instances t = Hashtbl.fold (fun _ cs acc -> acc + List.length cs) t.instances 0
