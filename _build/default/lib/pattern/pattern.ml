(** Name patterns (Definitions 3.6–3.9) and their match / satisfaction /
    violation relationships against program statements.

    A name pattern is a pair of name-path sets: the *condition* C (concrete
    paths that must all occur in the statement) and the *deduction* D
    (prefixes that must occur, whose end nodes the pattern constrains).  Two
    pattern types are implemented, as in the paper:

    - {e consistency} patterns — D = two symbolic paths; the statement
      satisfies the pattern when the subtokens at both prefixes are equal
      (Example 3.8: [self.<n> = <n>]);
    - {e confusing-word} patterns — D = one concrete path whose end is the
      *correct* word of a mined confusing word pair; any other subtoken at
      that prefix violates the pattern (Figure 2(e): second subtoken of the
      assert callee must be [Equal]).

    Statements are pre-digested into {!Stmt_paths.t} — a prefix-keyed map of
    the statement's concrete name paths — making every relationship check a
    handful of hash lookups. *)

module Namepath = Namer_namepath.Namepath

type kind =
  | Consistency
  | Confusing_word of { correct : string }
      (** the deduced word w₂ of a mined confusing pair ⟨w₁, w₂⟩; whether a
          violation's found word actually forms a mined pair with w₂ is
          feature 17, checked against {!Namer_mining.Confusing_pairs} *)
  | Ordering of { first : string; second : string }
      (** extension (the paper's "addition of more patterns" future work):
          two sibling positions must carry the word pair in its canonical
          order — [resize(width, height)], [range(min, max)]; the exact swap
          is the violation (the argument-swap defect class of Rice et al.
          and DeepBugs, both discussed in the paper's related work) *)

type t = {
  kind : kind;
  condition : Namepath.t list;  (** concrete paths *)
  deduction : Namepath.t list;
      (** symbolic ×2 for consistency; concrete ×1 for confusing word *)
  id : int;  (** dense id assigned by the store; -1 before registration *)
}

let make ~kind ~condition ~deduction = { kind; condition; deduction; id = -1 }

(** Canonical text: condition and deduction in canonical order, separated by
    ["=>"]; stable across runs, used for de-duplication and persistence. *)
let canonical p =
  let paths ps =
    ps
    |> List.map Namepath.to_string
    |> List.sort compare
    |> String.concat " ; "
  in
  let kind_tag =
    match p.kind with
    | Consistency -> "CONSISTENCY"
    | Confusing_word { correct } -> Printf.sprintf "CONFUSING(->%s)" correct
    | Ordering { first; second } -> Printf.sprintf "ORDERING(%s<%s)" first second
  in
  Printf.sprintf "%s : %s => %s" kind_tag (paths p.condition) (paths p.deduction)

let pp fmt p = Format.pp_print_string fmt (canonical p)

(** Whether the pattern constrains a function/method name (callee subtoken)
    rather than an object/variable name — feature 13 of the classifier.
    Determined from the deduction prefix: callee names live under the [Attr]
    of a call's [AttributeLoad], or under a bare [NameLoad] directly below
    [Call]. *)
let targets_function_name p =
  let prefix_has_call_attr (np : Namepath.t) =
    let rec scan = function
      | { Namepath.value = "Call"; _ } :: { Namepath.value = "AttributeLoad"; index = 1 }
        :: { Namepath.value = "Attr"; _ } :: _ ->
          true
      | { Namepath.value = "Call"; index = 0 } :: { Namepath.value = "NameLoad"; _ } :: _ ->
          true
      | _ :: rest -> scan rest
      | [] -> false
    in
    scan np.Namepath.prefix
  in
  List.exists prefix_has_call_attr p.deduction

(* ------------------------------------------------------------------ *)
(* Statement digests                                                   *)
(* ------------------------------------------------------------------ *)

module Stmt_paths = struct
  (** A statement digested for pattern checking: its concrete name paths
      indexed by prefix key. *)
  type t = {
    by_prefix : (string, string) Hashtbl.t;  (** prefix key → end subtoken *)
    paths : Namepath.t list;
    n_paths : int;
  }

  let of_paths (paths : Namepath.t list) =
    let by_prefix = Hashtbl.create (List.length paths * 2) in
    List.iter
      (fun (np : Namepath.t) ->
        match np.Namepath.end_node with
        | Some e ->
            let key = Namepath.prefix_key np in
            if not (Hashtbl.mem by_prefix key) then Hashtbl.add by_prefix key e
        | None -> ())
      paths;
    { by_prefix; paths; n_paths = List.length paths }

  let of_tree ?limit tree = of_paths (Namepath.extract ?limit tree)
  let end_at t ~prefix_key = Hashtbl.find_opt t.by_prefix prefix_key
  let prefix_keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.by_prefix []
end

(* ------------------------------------------------------------------ *)
(* Relationships                                                       *)
(* ------------------------------------------------------------------ *)

(** Details of one violated pattern occurrence: what was found at the
    deduction prefix and what the pattern deduces it should be — the
    suggested fix (§3.2: "modify the statement so that the violated pattern
    becomes satisfied"). *)
type violation_info = {
  offending_prefix : string;  (** prefix key of the offending name path *)
  found : string;  (** subtoken present in the statement *)
  suggested : string;  (** subtoken the pattern deduces *)
}

type relation = No_match | Satisfied | Violated of violation_info

(** [check p s] classifies statement digest [s] against pattern [p]. *)
let check (p : t) (s : Stmt_paths.t) : relation =
  let condition_holds =
    List.for_all
      (fun (c : Namepath.t) ->
        match
          (c.Namepath.end_node, Stmt_paths.end_at s ~prefix_key:(Namepath.prefix_key c))
        with
        | Some want, Some got -> String.equal want got
        | None, Some _ -> true (* ϵ in a condition matches any end *)
        | _, None -> false)
      p.condition
  in
  if not condition_holds then No_match
  else
    let deduction_prefixes_present =
      List.for_all
        (fun (d : Namepath.t) ->
          Stmt_paths.end_at s ~prefix_key:(Namepath.prefix_key d) <> None)
        p.deduction
    in
    if not deduction_prefixes_present then No_match
    else
      match (p.kind, p.deduction) with
      | Consistency, [ d1; d2 ] -> (
          let k1 = Namepath.prefix_key d1 and k2 = Namepath.prefix_key d2 in
          match (Stmt_paths.end_at s ~prefix_key:k1, Stmt_paths.end_at s ~prefix_key:k2) with
          (* Case-insensitive: [stringWriter] is consistent with its
             [StringWriter] type; [camelCase] with [snake_case] renderings. *)
          | Some e1, Some e2
            when String.equal (String.lowercase_ascii e1) (String.lowercase_ascii e2)
            ->
              Satisfied
          | Some e1, Some e2 ->
              Violated { offending_prefix = k2; found = e2; suggested = e1 }
          | _ -> No_match)
      | Confusing_word { correct; _ }, [ d ] -> (
          let k = Namepath.prefix_key d in
          match Stmt_paths.end_at s ~prefix_key:k with
          | Some e when String.equal e correct -> Satisfied
          | Some e -> Violated { offending_prefix = k; found = e; suggested = correct }
          | None -> No_match)
      | Ordering { first; second }, [ d1; d2 ] -> (
          let k1 = Namepath.prefix_key d1 and k2 = Namepath.prefix_key d2 in
          match (Stmt_paths.end_at s ~prefix_key:k1, Stmt_paths.end_at s ~prefix_key:k2) with
          | Some e1, Some e2 when String.equal e1 first && String.equal e2 second ->
              Satisfied
          (* only the exact swap is a violation; unrelated words at these
             positions are not this pattern's business *)
          | Some e1, Some e2 when String.equal e1 second && String.equal e2 first ->
              Violated { offending_prefix = k1; found = second; suggested = first }
          | Some _, Some _ -> No_match
          | _ -> No_match)
      | _ ->
          invalid_arg
            "Pattern.check: malformed pattern (deduction arity does not match kind)"

(* ------------------------------------------------------------------ *)
(* Pattern store and matching index                                    *)
(* ------------------------------------------------------------------ *)

module Store = struct
  (** A deduplicated collection of patterns with an inverted index from
      deduction-prefix keys to the patterns constraining them.  Every
      pattern's deduction prefix must be present in a statement for the
      pattern to match, so bucketing by that key lets a scan consider only
      the patterns that could possibly match each statement. *)
  type nonrec t = {
    mutable patterns : t array;
    mutable n : int;
    by_canonical : (string, int) Hashtbl.t;
    by_deduction_prefix : (string, int list ref) Hashtbl.t;
  }

  let create () =
    {
      patterns = Array.make 256 { kind = Consistency; condition = []; deduction = []; id = -1 };
      n = 0;
      by_canonical = Hashtbl.create 1024;
      by_deduction_prefix = Hashtbl.create 1024;
    }

  let size t = t.n
  let get t id = t.patterns.(id)

  (** [add t p] registers [p] (deduplicating by canonical form) and returns
      its id. *)
  let add t p =
    let key = canonical p in
    match Hashtbl.find_opt t.by_canonical key with
    | Some id -> id
    | None ->
        let id = t.n in
        if id >= Array.length t.patterns then begin
          let bigger = Array.make (2 * Array.length t.patterns) t.patterns.(0) in
          Array.blit t.patterns 0 bigger 0 t.n;
          t.patterns <- bigger
        end;
        t.patterns.(id) <- { p with id };
        t.n <- id + 1;
        Hashtbl.replace t.by_canonical key id;
        (match p.deduction with
        | d :: _ -> (
            let dkey = Namepath.prefix_key d in
            match Hashtbl.find_opt t.by_deduction_prefix dkey with
            | Some l -> l := id :: !l
            | None -> Hashtbl.replace t.by_deduction_prefix dkey (ref [ id ]))
        | [] -> ());
        id

    (** All patterns whose deduction prefix occurs in the statement — the
      candidate set for a full {!check}. *)
  let candidates t (s : Stmt_paths.t) =
    let seen = Hashtbl.create 16 in
    Stmt_paths.prefix_keys s
    |> List.concat_map (fun key ->
           match Hashtbl.find_opt t.by_deduction_prefix key with
           | Some l -> !l
           | None -> [])
    |> List.filter (fun id ->
           if Hashtbl.mem seen id then false
           else begin
             Hashtbl.replace seen id ();
             true
           end)
    |> List.map (get t)

  let iter f t =
    for i = 0 to t.n - 1 do
      f t.patterns.(i)
    done

  let fold f t init =
    let acc = ref init in
    iter (fun p -> acc := f !acc p) t;
    !acc
end
