lib/pattern/pattern.mli: Format Hashtbl Namer_namepath Namer_tree
