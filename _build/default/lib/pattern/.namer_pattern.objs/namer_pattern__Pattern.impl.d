lib/pattern/pattern.ml: Array Format Hashtbl List Namer_namepath Printf String
