lib/pattern/pattern_io.ml: Buffer List Namer_namepath Pattern String
