lib/datalog/datalog.mli:
