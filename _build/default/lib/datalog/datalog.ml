(** A small bottom-up Datalog engine.

    The paper implements its points-to analysis in Datalog (§4.1, citing
    Smaragdakis & Balatsouras [44]); this module is the solver substrate for
    {!Namer_analysis}.  It supports positive Horn rules with inequality
    guards, evaluated by stratum-free semi-naive iteration to a least
    fixpoint.  Constants are integers — callers intern strings with
    {!Namer_util.Interner} — and relations are sets of integer tuples.

    The engine is deliberately simple: per-file programs in this project
    yield databases of at most a few thousand tuples, so nested-loop joins
    with a first-column index are entirely adequate.  The interface is
    imperative ([add_fact] / [add_rule] / [solve]) matching how the analysis
    incrementally translates a program into EDB facts. *)

type term =
  | Var of int  (** rule-local variable, numbered from 0 *)
  | Const of int  (** interned constant *)

type atom = { pred : int; args : term array }

(** Side conditions evaluated once all their variables are bound. *)
type guard =
  | Neq of term * term  (** arguments must differ *)
  | Eq of term * term  (** arguments must coincide *)

type rule = { head : atom; body : atom list; guards : guard list }

(** Tuple storage for one predicate: the set of tuples plus an index from the
    value of the first column to the tuples carrying it, which accelerates
    the very common join shape [p(X, ...)] with [X] already bound. *)
type relation = {
  tuples : (int array, unit) Hashtbl.t;
  by_first : (int, int array list ref) Hashtbl.t;
}

type t = {
  relations : (int, relation) Hashtbl.t;
  mutable rules : rule list;
}

let create () = { relations = Hashtbl.create 32; rules = [] }

let relation t pred =
  match Hashtbl.find_opt t.relations pred with
  | Some r -> r
  | None ->
      let r = { tuples = Hashtbl.create 64; by_first = Hashtbl.create 64 } in
      Hashtbl.replace t.relations pred r;
      r

let mem_tuple rel tup = Hashtbl.mem rel.tuples tup

let insert_tuple rel tup =
  if mem_tuple rel tup then false
  else begin
    Hashtbl.replace rel.tuples tup ();
    if Array.length tup > 0 then begin
      let key = tup.(0) in
      match Hashtbl.find_opt rel.by_first key with
      | Some l -> l := tup :: !l
      | None -> Hashtbl.replace rel.by_first key (ref [ tup ])
    end;
    true
  end

(** [add_fact t ~pred tuple] asserts an EDB fact. *)
let add_fact t ~pred tuple = ignore (insert_tuple (relation t pred) tuple)

(** [add_rule t rule] registers an IDB rule. Head variables must appear in
    the body (range restriction); violations raise [Invalid_argument]. *)
let add_rule t rule =
  let body_vars = Hashtbl.create 8 in
  List.iter
    (fun a ->
      Array.iter (function Var v -> Hashtbl.replace body_vars v () | Const _ -> ()) a.args)
    rule.body;
  Array.iter
    (function
      | Var v when not (Hashtbl.mem body_vars v) ->
          invalid_arg "Datalog.add_rule: head variable not bound in body"
      | _ -> ())
    rule.head.args;
  t.rules <- rule :: t.rules

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(* A substitution maps rule variables to constants.  Rules are small (≤ 5
   variables in the points-to encoding) so a plain int array indexed by the
   variable number is the fastest representation. [-1] marks unbound. *)

let max_var rule =
  let m = ref (-1) in
  let scan a =
    Array.iter (function Var v -> if v > !m then m := v | Const _ -> ()) a.args
  in
  scan rule.head;
  List.iter scan rule.body;
  List.iter
    (function
      | Neq (x, y) | Eq (x, y) ->
          List.iter
            (function Var v -> if v > !m then m := v | Const _ -> ())
            [ x; y ])
    rule.guards;
  !m

let term_value env = function Const c -> Some c | Var v -> if env.(v) >= 0 then Some env.(v) else None

let check_guards env guards =
  List.for_all
    (fun g ->
      match g with
      | Neq (x, y) -> (
          match (term_value env x, term_value env y) with
          | Some a, Some b -> a <> b
          | _ -> true (* unbound guards pass; they re-check when bound *))
      | Eq (x, y) -> (
          match (term_value env x, term_value env y) with
          | Some a, Some b -> a = b
          | _ -> true))
    guards

(* Attempt to unify atom [a] against concrete [tuple] under [env]; returns
   the list of variables newly bound (for undo) or None on mismatch. *)
let unify env a tuple =
  let n = Array.length a.args in
  if n <> Array.length tuple then None
  else begin
    let bound = ref [] in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      (match a.args.(!i) with
      | Const c -> if c <> tuple.(!i) then ok := false
      | Var v ->
          if env.(v) < 0 then begin
            env.(v) <- tuple.(!i);
            bound := v :: !bound
          end
          else if env.(v) <> tuple.(!i) then ok := false);
      incr i
    done;
    if !ok then Some !bound
    else begin
      List.iter (fun v -> env.(v) <- -1) !bound;
      None
    end
  end

let candidates t atom env =
  let rel = relation t atom.pred in
  (* Use the first-column index when the first argument is already ground. *)
  let first_key =
    if Array.length atom.args = 0 then None
    else term_value env atom.args.(0)
  in
  match first_key with
  | Some k -> (
      match Hashtbl.find_opt rel.by_first k with Some l -> !l | None -> [])
  | None -> Hashtbl.fold (fun tup () acc -> tup :: acc) rel.tuples []

let instantiate_head env head =
  Array.map
    (fun tm ->
      match tm with
      | Const c -> c
      | Var v ->
          assert (env.(v) >= 0);
          env.(v))
    head.args

(* Evaluate [rule] with the [delta_idx]-th body atom restricted to the
   [delta] tuple list; emit derived head tuples via [emit]. *)
let eval_rule t rule ~delta_idx ~delta ~emit =
  let nvars = max_var rule + 1 in
  let env = Array.make (max nvars 1) (-1) in
  let body = Array.of_list rule.body in
  let rec go i =
    if i = Array.length body then begin
      if check_guards env rule.guards then emit (instantiate_head env rule.head)
    end
    else begin
      let atom = body.(i) in
      let tuples = if i = delta_idx then delta else candidates t atom env in
      List.iter
        (fun tup ->
          match unify env atom tup with
          | Some bound ->
              if check_guards env rule.guards then go (i + 1);
              List.iter (fun v -> env.(v) <- -1) bound
          | None -> ())
        tuples
    end
  in
  go 0

(** [solve t] runs semi-naive evaluation to the least fixpoint.  Idempotent:
    calling it again after adding more facts/rules resumes from the current
    database. *)
let solve t =
  (* Seed: treat every existing tuple as delta once. *)
  let all_tuples pred =
    let rel = relation t pred in
    Hashtbl.fold (fun tup () acc -> tup :: acc) rel.tuples []
  in
  let delta : (int, int array list) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter (fun pred _ -> Hashtbl.replace delta pred (all_tuples pred)) t.relations;
  let continue_ = ref true in
  while !continue_ do
    let next_delta : (int, int array list) Hashtbl.t = Hashtbl.create 32 in
    let emit pred tup =
      if insert_tuple (relation t pred) tup then
        Hashtbl.replace next_delta pred
          (tup :: Option.value (Hashtbl.find_opt next_delta pred) ~default:[])
    in
    List.iter
      (fun rule ->
        List.iteri
          (fun i atom ->
            match Hashtbl.find_opt delta atom.pred with
            | Some d when d <> [] ->
                eval_rule t rule ~delta_idx:i ~delta:d
                  ~emit:(fun tup -> emit rule.head.pred tup)
            | _ -> ())
          rule.body)
      t.rules;
    Hashtbl.reset delta;
    Hashtbl.iter (fun p d -> Hashtbl.replace delta p d) next_delta;
    continue_ := Hashtbl.length next_delta > 0
  done

(** All tuples currently in [pred]'s relation, in unspecified order. *)
let query t ~pred =
  let rel = relation t pred in
  Hashtbl.fold (fun tup () acc -> tup :: acc) rel.tuples []

(** Tuples of [pred] whose first column equals [key]. *)
let query_first t ~pred ~key =
  let rel = relation t pred in
  match Hashtbl.find_opt rel.by_first key with Some l -> !l | None -> []

let count t ~pred = Hashtbl.length (relation t pred).tuples

(* Convenience constructors for building rules in OCaml. *)
let v i = Var i
let c x = Const x
let atom pred args = { pred; args = Array.of_list args }
let rule head body = { head; body; guards = [] }
let rule_g head body guards = { head; body; guards }
