(** A small bottom-up Datalog engine: positive Horn rules with
    (in)equality guards, semi-naive evaluation to a least fixpoint.
    Constants are integers (intern strings with {!Namer_util.Interner});
    relations are sets of integer tuples with a first-column index.
    The solver substrate for the §4.1 points-to analyses. *)

type term = Var of int  (** rule-local variable *) | Const of int

type atom = { pred : int; args : term array }

(** Side conditions evaluated once their variables are bound. *)
type guard = Neq of term * term | Eq of term * term

type rule = { head : atom; body : atom list; guards : guard list }

type t

val create : unit -> t

(** Assert an EDB fact. *)
val add_fact : t -> pred:int -> int array -> unit

(** Register an IDB rule.
    @raise Invalid_argument if a head variable is unbound in the body. *)
val add_rule : t -> rule -> unit

(** Run semi-naive evaluation to the least fixpoint.  Idempotent; resumes
    from the current database after new facts/rules. *)
val solve : t -> unit

(** All tuples of [pred], unspecified order. *)
val query : t -> pred:int -> int array list

(** Tuples of [pred] whose first column equals [key]. *)
val query_first : t -> pred:int -> key:int -> int array list

val count : t -> pred:int -> int

(** Convenience constructors: [rule (atom p [v 0; c 7]) [...]]. *)
val v : int -> term

val c : int -> term
val atom : int -> term list -> atom
val rule : atom -> atom list -> rule
val rule_g : atom -> atom list -> guard list -> rule
