(** Synthetic Python source generation.

    Each generator writes one file built from a catalog of naming idioms
    modeled on the paper's Python examples (Tables 3, 4, 7): unittest
    assertion style, [range] loops, numpy aliasing, constructor
    self-assignment, [**kwargs] conventions, setter conventions, [*args]
    conventions.  Every idiom instance is instantiated correctly except when
    the dice decide to inject an issue (recorded with its expected fix) or a
    benign anomaly (recorded as false-positive-if-reported).

    Issue and benign rates are kept low enough that each idiom's dominant
    form stays above the mining satisfaction threshold, mirroring real code
    where mistakes are rare events against a consistent backdrop. *)

module Prng = Namer_util.Prng

type rates = { issue : float; benign : float }

type ctx = { em : Emitter.t; rng : Prng.t; v : Vocab.slice; rates : rates }

type fate = Clean | Issue | Benign

let fate ctx =
  if Prng.bool ctx.rng ~p:ctx.rates.issue then Issue
  else if Prng.bool ctx.rng ~p:ctx.rates.benign then Benign
  else Clean

let cap s = String.capitalize_ascii s
let num ctx = string_of_int (Prng.int ctx.rng 100 + 1)

(* Legitimate attribute/value mismatches: recurring across the corpus, so
   the classifier can learn that repeated inconsistencies are conventions,
   not defects. *)
let legit_mismatches =
  [|
    ("parent", "node"); ("logger", "log"); ("owner", "user");
    ("handler", "callback"); ("data", "payload"); ("conn", "connection");
  |]

(* Synonym confusions for injected inconsistent names (wrong attr word used
   for a value of a different name) — one-off, unlike the legit list. *)
let synonym_confusions =
  [|
    ("help", "docstring"); ("amount", "total"); ("size", "length");
    ("name", "title"); ("index", "position"); ("result", "status");
  |]

(* ------------------------------------------------------------------ *)
(* Statement-level idioms (emitted inside a method body)               *)
(* ------------------------------------------------------------------ *)

(** [self.assertEqual(x.attr, N)] — Figure 2's idiom.  Issues: the
    [assertTrue(x, N)] API misuse and the deprecated [assertEquals]. *)
let assert_equal_stmt ctx ~ind ~obj =
  let attr = ctx.v.attribute ctx.rng in
  match fate ctx with
  | Issue when Prng.bool ctx.rng ~p:0.6 ->
      Emitter.inject ctx.em ~wrong:"True" ~expected:"Equal"
        ~wrong_ident:"assertTrue" ~fixed_ident:"assertEqual"
        ~category:Issue.Semantic_defect
        ~description:"assertTrue used with two arguments instead of assertEqual";
      Emitter.linef ctx.em "%sself.assertTrue(%s.%s, %s)" ind obj attr (num ctx)
  | Issue ->
      Emitter.inject ctx.em ~wrong:"Equals" ~expected:"Equal"
        ~wrong_ident:"assertEquals" ~fixed_ident:"assertEqual"
        ~category:Issue.Semantic_defect
        ~description:"deprecated assertEquals instead of assertEqual";
      Emitter.linef ctx.em "%sself.assertEquals(%s.%s, %s)" ind obj attr (num ctx)
  | _ -> Emitter.linef ctx.em "%sself.assertEqual(%s.%s, %s)" ind obj attr (num ctx)

(** [self.assertTrue(os.path.exists(p))] — dominant file-check assertion.
    Benign anomalies use the rarer (but correct) [islink] / [isdir]. *)
let assert_path_stmt ctx ~ind ~var =
  match fate ctx with
  | Benign ->
      let check = Prng.choose ctx.rng [ "islink"; "isdir" ] in
      let note = Printf.sprintf "os.path.%s is correct here" check in
      (* half the anomalies repeat locally (easy for the classifier: high
         identical-statement counts), half are one-offs (hard) *)
      let n = if Prng.bool ctx.rng ~p:0.5 then 2 + Prng.int ctx.rng 2 else 1 in
      for _ = 1 to n do
        Emitter.benign ctx.em ~note;
        Emitter.linef ctx.em "%sself.assertTrue(os.path.%s(%s))" ind check var
      done
  | _ -> Emitter.linef ctx.em "%sself.assertTrue(os.path.exists(%s))" ind var

(** [for i in range(N):] accumulation loop; issue: Python-2 [xrange]. *)
let range_loop ctx ~ind =
  let acc = Prng.choose ctx.rng [ "total"; "count"; "acc" ] in
  Emitter.linef ctx.em "%s%s = 0" ind acc;
  let loop_var = ref "i" in
  (* loops are very frequent, so damp the benign arm to keep the overall
     false-positive mix diverse *)
  let f =
    if Prng.bool ctx.rng ~p:ctx.rates.issue then Issue
    else if Prng.bool ctx.rng ~p:(0.4 *. ctx.rates.benign) then Benign
    else Clean
  in
  (match f with
  | Issue ->
      Emitter.inject ctx.em ~wrong:"xrange" ~expected:"range"
        ~category:Issue.Semantic_defect
        ~description:"xrange was removed in Python 3";
      Emitter.linef ctx.em "%sfor i in xrange(%s):" ind (num ctx)
  | Benign ->
      (* a one-letter variant loop variable: statistically unusual, correct —
         a hard false positive (the classifier sees a 1-edit "typo") *)
      loop_var := Prng.choose ctx.rng [ "n"; "k" ];
      Emitter.benign ctx.em ~note:"alternative loop variable name is fine";
      Emitter.linef ctx.em "%sfor %s in range(%s):" ind !loop_var (num ctx)
  | Clean -> Emitter.linef ctx.em "%sfor i in range(%s):" ind (num ctx));
  if !loop_var <> "i" then
    Emitter.benign ctx.em ~note:"alternative loop variable name is fine";
  Emitter.linef ctx.em "%s    %s += %s" ind acc !loop_var

(** numpy usage: [arr = np.array(xs)] etc. under the conventional [np]
    alias; the issue aliases numpy as [N] (Table 3, example 6). *)
let numpy_alias ctx =
  (* the alias is a file-level choice, so boost the per-instance rates *)
  if Prng.bool ctx.rng ~p:(min 0.25 (4.0 *. ctx.rates.issue)) then "N"
  else if Prng.bool ctx.rng ~p:(min 0.25 (2.0 *. ctx.rates.benign)) then "numpy"
  else "np"

(* Mark one line that uses a nonstandard numpy alias: [N] is the injected
   confusing name (Table 3, example 6); the unaliased [numpy] is correct but
   unusual — a benign anomaly. *)
let numpy_mark ctx ~alias =
  if alias = "N" then
    Emitter.inject ctx.em ~wrong:alias ~expected:"np" ~wrong_ident:alias
      ~fixed_ident:"np"
      ~category:(Issue.Code_quality Issue.Confusing_name)
      ~description:"numpy conventionally aliased np"
  else if alias = "numpy" then
    Emitter.benign ctx.em ~note:"unaliased numpy import is fine"

let numpy_import ctx ~alias =
  if alias = "numpy" then Emitter.line ctx.em "import numpy"
  else begin
    numpy_mark ctx ~alias;
    Emitter.linef ctx.em "import numpy as %s" alias
  end

let numpy_stmt ctx ~ind ~alias =
  let var = ctx.v.entity ctx.rng in
  let call =
    Prng.choose ctx.rng [ "array"; "zeros"; "ones"; "arange"; "asarray" ]
  in
  numpy_mark ctx ~alias;
  Emitter.linef ctx.em "%s%s = %s.%s(%s)" ind var alias call
    (Prng.choose ctx.rng [ num ctx; "values"; "data" ])

(** Constructor self-assignment [self.x = x] — the consistency idiom of
    Example 3.8.  Issues: a typo'd value (Table 7's [self.port = por]) or a
    synonym-confused attribute ([self.help = docstring]); benign: a
    conventional mismatch from {!legit_mismatches}. *)
let init_assign_stmt ctx ~ind ~param =
  (* this idiom carries the corpus's hard false positives, so its benign
     arm runs hotter than the global rate *)
  let f =
    if Prng.bool ctx.rng ~p:ctx.rates.issue then Issue
    else if Prng.bool ctx.rng ~p:(min 0.12 (2.5 *. ctx.rates.benign)) then Benign
    else Clean
  in
  match f with
  | Issue when Prng.bool ctx.rng ~p:0.5 ->
      let wrong = Vocab.typo ctx.rng param in
      Emitter.inject ctx.em ~wrong ~expected:param
        ~category:(Issue.Code_quality Issue.Typo)
        ~description:(Printf.sprintf "typo %s for %s" wrong param);
      Emitter.linef ctx.em "%sself.%s = %s" ind param wrong;
      param
  | Issue ->
      let attr_wrong, _ = Prng.choose_arr ctx.rng synonym_confusions in
      Emitter.inject ctx.em ~wrong:attr_wrong ~expected:param
        ~category:(Issue.Code_quality Issue.Inconsistent_name)
        ~description:
          (Printf.sprintf "attribute %s inconsistent with value %s" attr_wrong param);
      Emitter.linef ctx.em "%sself.%s = %s" ind attr_wrong param;
      param
  | Benign when Prng.bool ctx.rng ~p:0.35 ->
      (* recurring conventional mismatch (easy to classify as benign) *)
      let attr, value = Prng.choose_arr ctx.rng legit_mismatches in
      Emitter.benign ctx.em ~note:"conventional attribute/value mismatch";
      Emitter.linef ctx.em "%sself.%s = %s" ind attr value;
      value
  | Benign ->
      (* one-off legitimate mismatch (hard: looks like an inconsistency) *)
      let attr = ctx.v.attribute ctx.rng and value = ctx.v.entity ctx.rng in
      if attr = value then begin
        Emitter.linef ctx.em "%sself.%s = %s" ind param param;
        param
      end
      else begin
        Emitter.benign ctx.em ~note:"deliberate attribute/value mismatch";
        Emitter.linef ctx.em "%sself.%s = %s" ind attr value;
        value
      end
  | Clean ->
      Emitter.linef ctx.em "%sself.%s = %s" ind param param;
      param

(** [def f(self, **kwargs)] convention; issue: [**args] (Table 3, ex. 5). *)
let kwargs_method ctx ~name =
  let f = fate ctx in
  let buggy = f = Issue in
  let star_name =
    match f with Issue -> "args" | Benign -> "options" | Clean -> "kwargs"
  in
  let mark () =
    if buggy then
      Emitter.inject ctx.em ~wrong:"args" ~expected:"kwargs"
        ~category:(Issue.Code_quality Issue.Confusing_name)
        ~description:"keyworded varargs conventionally named kwargs"
    else if f = Benign then
      Emitter.benign ctx.em ~note:"options is a legitimate kwargs name"
  in
  mark ();
  Emitter.linef ctx.em "    def %s(self, **%s):" name star_name;
  let attr = ctx.v.attribute ctx.rng in
  mark ();
  Emitter.linef ctx.em "        %s = %s.get(\"%s\", None)" attr star_name attr;
  Emitter.linef ctx.em "        return %s" attr

(** Geometry idiom [image.resize(width, height)] — the canonical argument
    order.  The issue swaps the arguments: a semantic defect of the
    argument-swap class (detected by the ordering-pattern extension). *)
let resize_stmt ctx ~ind =
  let target = Prng.choose ctx.rng [ "image"; "canvas"; "frame"; "thumbnail" ] in
  match fate ctx with
  | Issue ->
      Emitter.inject ctx.em ~wrong:"height" ~expected:"width"
        ~category:Issue.Semantic_defect
        ~description:"swapped width/height arguments";
      Emitter.linef ctx.em "%sresized = %s.resize(height, width)" ind target
  | _ -> Emitter.linef ctx.em "%sresized = %s.resize(width, height)" ind target

(** Setter convention [def x_set(self, x): self._x = x]; the minor issue
    names the parameter [value] (Table 7). *)
let setter_method ctx ~attr =
  match fate ctx with
  | Issue ->
      Emitter.inject ctx.em ~wrong:"value" ~expected:attr
        ~category:(Issue.Code_quality Issue.Minor_issue)
        ~description:"parameter could carry the attribute's name";
      Emitter.linef ctx.em "    def %s_set(self, value):" attr;
      Emitter.inject ctx.em ~wrong:"value" ~expected:attr
        ~category:(Issue.Code_quality Issue.Minor_issue)
        ~description:"parameter could carry the attribute's name";
      Emitter.linef ctx.em "        self._%s = value" attr
  | _ ->
      Emitter.linef ctx.em "    def %s_set(self, %s):" attr attr;
      Emitter.linef ctx.em "        self._%s = %s" attr attr

(** [def f(self, *args)] convention; the indescriptive issue names the
    star parameter [e] (Table 7's [def reset(self, *e)]). *)
let star_args_method ctx ~name =
  let buggy = fate ctx = Issue in
  let star_name = if buggy then "e" else "args" in
  let mark () =
    if buggy then
      Emitter.inject ctx.em ~wrong:"e" ~expected:"args"
        ~category:(Issue.Code_quality Issue.Indescriptive_name)
        ~description:"indescriptive star-parameter name"
  in
  mark ();
  Emitter.linef ctx.em "    def %s(self, *%s):" name star_name;
  mark ();
  Emitter.linef ctx.em "        for item in %s:" star_name;
  Emitter.linef ctx.em "            self.items.append(item)"

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

(** Tolerance-style assertion used by the [Validator] framework: a two-
    argument [assertTrue(value, tolerance)] that is *correct* there.
    Syntactically identical to the buggy TestCase usage — only the origin of
    [self] (Validator vs TestCase) separates them, which is exactly why the
    paper's static analyses matter (Tables 2/5, "w/o A"). *)
let validator_assert_stmt ctx ~ind ~obj =
  let attr = ctx.v.attribute ctx.rng in
  Emitter.benign ctx.em ~note:"Validator.assertTrue legitimately takes a tolerance";
  Emitter.linef ctx.em "%sself.assertTrue(%s.%s, %s)" ind obj attr (num ctx)

(** A unittest test file: [class TestX(TestCase)] with test methods built
    from the assertion and loop idioms.  About one file in eight is instead
    a [Validator]-framework checker whose two-argument [assertTrue] calls
    are correct — the origin-dependent ambiguity described above. *)
let rec gen_test_file ctx =
  let entity = ctx.v.entity ctx.rng in
  if Prng.bool ctx.rng ~p:0.12 then begin
    Emitter.line ctx.em "import os";
    Emitter.line ctx.em "from validation import Validator";
    Emitter.blank ctx.em;
    Emitter.linef ctx.em "class %sChecker(Validator):" (cap entity);
    Emitter.line ctx.em "    def setUp(self):";
    Emitter.linef ctx.em "        self.%s = %s()" entity (cap entity);
    let n_checks = 2 + Prng.int ctx.rng 3 in
    for _ = 1 to n_checks do
      Emitter.blank ctx.em;
      Emitter.linef ctx.em "    def check_%s_%s(self):" (ctx.v.verb ctx.rng)
        (ctx.v.attribute ctx.rng);
      let obj = Printf.sprintf "self.%s" entity in
      for _ = 1 to 1 + Prng.int ctx.rng 2 do
        validator_assert_stmt ctx ~ind:"        " ~obj
      done
    done
  end
  else gen_testcase_file ctx entity

and gen_testcase_file ctx entity =
  Emitter.line ctx.em "import os";
  Emitter.line ctx.em "from unittest import TestCase";
  Emitter.blank ctx.em;
  Emitter.linef ctx.em "class Test%s(TestCase):" (cap entity);
  Emitter.line ctx.em "    def setUp(self):";
  Emitter.linef ctx.em "        self.%s = %s()" entity (cap entity);
  Emitter.linef ctx.em "        self.%s_path = \"%s.dat\"" entity entity;
  let n_tests = 2 + Prng.int ctx.rng 4 in
  for _ = 1 to n_tests do
    Emitter.blank ctx.em;
    let verb = ctx.v.verb ctx.rng and attr = ctx.v.attribute ctx.rng in
    Emitter.linef ctx.em "    def test_%s_%s(self):" verb attr;
    let obj = Printf.sprintf "self.%s" entity in
    let n_stmts = 1 + Prng.int ctx.rng 3 in
    for _ = 1 to n_stmts do
      match Prng.int ctx.rng 4 with
      | 0 -> assert_path_stmt ctx ~ind:"        " ~var:(Printf.sprintf "self.%s_path" entity)
      | 1 -> range_loop ctx ~ind:"        "
      | 2 ->
          let var = ctx.v.attribute ctx.rng in
          Emitter.linef ctx.em "        %s = %s.%s" var obj (ctx.v.attribute ctx.rng)
      | _ -> assert_equal_stmt ctx ~ind:"        " ~obj
    done;
    assert_equal_stmt ctx ~ind:"        " ~obj
  done

(** A model/domain class file: constructor self-assignments, setters,
    kwargs/args conventions, simple getters. *)
let gen_model_file ctx =
  let entity = ctx.v.entity ctx.rng in
  Emitter.line ctx.em "import logging";
  Emitter.blank ctx.em;
  Emitter.linef ctx.em "class %s(object):" (cap entity);
  let n_params = 2 + Prng.int ctx.rng 3 in
  let params =
    List.init n_params (fun _ -> ctx.v.attribute ctx.rng) |> List.sort_uniq compare
  in
  Emitter.linef ctx.em "    def __init__(self, %s):" (String.concat ", " params);
  Emitter.line ctx.em "        self.items = []";
  List.iter (fun p -> ignore (init_assign_stmt ctx ~ind:"        " ~param:p)) params;
  List.iteri
    (fun i p ->
      Emitter.blank ctx.em;
      match i mod 4 with
      | 0 -> setter_method ctx ~attr:p
      | 1 -> kwargs_method ctx ~name:(ctx.v.verb ctx.rng)
      | 2 -> star_args_method ctx ~name:(ctx.v.verb ctx.rng)
      | _ ->
          Emitter.linef ctx.em "    def get_%s(self):" p;
          Emitter.linef ctx.em "        return self.%s" p)
    params

(** A utility module: numpy idioms, file handling, loops, logging. *)
let gen_util_file ctx =
  let alias = numpy_alias ctx in
  numpy_import ctx ~alias;
  Emitter.line ctx.em "import logging";
  Emitter.blank ctx.em;
  Emitter.line ctx.em "logger = logging.getLogger(__name__)";
  let n_funcs = 2 + Prng.int ctx.rng 3 in
  for _ = 1 to n_funcs do
    Emitter.blank ctx.em;
    let verb = ctx.v.verb ctx.rng and entity = ctx.v.entity ctx.rng in
    Emitter.linef ctx.em "def %s_%s(path, values, width, height):" verb entity;
    let n_stmts = 1 + Prng.int ctx.rng 3 in
    for _ = 1 to n_stmts do
      match Prng.int ctx.rng 5 with
      | 0 ->
          Emitter.line ctx.em "    with open(path) as f:";
          Emitter.line ctx.em "        data = f.read()"
      | 1 -> range_loop ctx ~ind:"    "
      | 2 -> numpy_stmt ctx ~ind:"    " ~alias
      | 3 -> resize_stmt ctx ~ind:"    "
      | _ ->
          Emitter.linef ctx.em "    logger.info(\"%s %s\")" verb entity
    done;
    numpy_stmt ctx ~ind:"    " ~alias;
    Emitter.linef ctx.em "    return %s" entity
  done

(** Generate one Python file of a deterministic-random flavor. *)
let gen_file ~rng ~vocab ~rates ~file =
  let em = Emitter.create ~file in
  let ctx = { em; rng; v = vocab; rates } in
  (match Prng.int rng 3 with
  | 0 -> gen_test_file ctx
  | 1 -> gen_model_file ctx
  | _ -> gen_util_file ctx);
  em
