(** Naming vocabulary for the synthetic Big Code generator.

    Repositories draw entity/attribute/verb words from these pools (biased
    per repo, so each repo has its own flavor while the global distribution
    has the heavy head + long tail that pattern mining needs). *)

let entities =
  [|
    "user"; "account"; "order"; "item"; "product"; "customer"; "invoice";
    "payment"; "session"; "token"; "message"; "event"; "task"; "job";
    "worker"; "node"; "edge"; "graph"; "record"; "entry"; "document"; "page";
    "image"; "picture"; "video"; "file"; "folder"; "bucket"; "queue";
    "stream"; "buffer"; "packet"; "request"; "response"; "server"; "client";
    "channel"; "topic"; "group"; "member"; "profile"; "address"; "contact";
    "ticket"; "report"; "metric"; "sample"; "batch"; "model"; "layer";
    "widget"; "button"; "panel"; "dialog"; "window"; "frame"; "slide";
    "shape"; "color"; "style"; "theme"; "config"; "setting"; "option";
    "result"; "status"; "state"; "context"; "handler"; "listener"; "parser";
    "lexer"; "scanner"; "matcher"; "filter"; "mapper"; "reducer"; "builder";
    "factory"; "manager"; "service"; "provider"; "adapter"; "wrapper";
    "helper"; "util"; "cache"; "store"; "index"; "table"; "row"; "column";
    "schema"; "field"; "value"; "key"; "name"; "label"; "tag"; "flag";
  |]

let attributes =
  [|
    "id"; "name"; "title"; "description"; "count"; "size"; "length";
    "width"; "height"; "weight"; "price"; "amount"; "total"; "offset";
    "limit"; "index"; "position"; "angle"; "scale"; "ratio"; "rate";
    "score"; "rank"; "level"; "depth"; "version"; "timestamp"; "created";
    "updated"; "deleted"; "enabled"; "visible"; "active"; "valid"; "dirty";
    "path"; "url"; "host"; "port"; "timeout"; "retries"; "capacity";
    "threshold"; "priority"; "weight"; "color"; "format"; "encoding";
    "charset"; "locale"; "owner"; "parent"; "child"; "source"; "target";
    "origin"; "destination"; "prefix"; "suffix"; "header"; "footer"; "body";
  |]

let verbs =
  [|
    "get"; "set"; "load"; "save"; "store"; "fetch"; "send"; "receive";
    "open"; "close"; "start"; "stop"; "pause"; "resume"; "reset"; "clear";
    "add"; "remove"; "insert"; "delete"; "update"; "create"; "destroy";
    "build"; "parse"; "render"; "draw"; "paint"; "compute"; "calculate";
    "process"; "handle"; "dispatch"; "emit"; "notify"; "register";
    "subscribe"; "publish"; "validate"; "verify"; "check"; "find"; "search";
    "filter"; "sort"; "merge"; "split"; "join"; "copy"; "move"; "resize";
    "rotate"; "flip"; "encode"; "decode"; "compress"; "extract"; "convert";
  |]

let adjectives =
  [|
    "new"; "old"; "last"; "first"; "next"; "prev"; "current"; "default";
    "custom"; "local"; "remote"; "global"; "public"; "private"; "internal";
    "external"; "temp"; "raw"; "parsed"; "cached"; "pending"; "active";
    "final"; "initial"; "primary"; "secondary"; "main"; "base"; "extra";
  |]

(** Per-repo vocabulary slice: a deterministic biased subset, so different
    repos favor different words. *)
type slice = {
  entity : Namer_util.Prng.t -> string;
  attribute : Namer_util.Prng.t -> string;
  verb : Namer_util.Prng.t -> string;
  adjective : Namer_util.Prng.t -> string;
}

let slice_of_pool pool prng_seed =
  let prng = Namer_util.Prng.create prng_seed in
  let n = Array.length pool in
  let k = max 8 (n / 4) in
  let chosen = Array.init k (fun _ -> pool.(Namer_util.Prng.int prng n)) in
  fun rng ->
    (* 80 % from the repo's slice, 20 % from the global pool: local flavor
       with global overlap. *)
    if Namer_util.Prng.bool rng ~p:0.8 then Namer_util.Prng.choose_arr rng chosen
    else Namer_util.Prng.choose_arr rng pool

let make_slice ~seed =
  {
    entity = slice_of_pool entities (seed * 4 + 1);
    attribute = slice_of_pool attributes (seed * 4 + 2);
    verb = slice_of_pool verbs (seed * 4 + 3);
    adjective = slice_of_pool adjectives (seed * 4 + 4);
  }

(** Introduce a realistic typo into [word]: transposition, deletion,
    duplication or vowel substitution — always at least one edit, never the
    identity. *)
let typo rng word =
  let n = String.length word in
  if n < 3 then word ^ word
  else
    let b = Bytes.of_string word in
    match Namer_util.Prng.int rng 4 with
    | 0 ->
        (* transpose two adjacent characters *)
        let i = 1 + Namer_util.Prng.int rng (n - 2) in
        let c = Bytes.get b i in
        Bytes.set b i (Bytes.get b (i - 1));
        Bytes.set b (i - 1) c;
        let s = Bytes.to_string b in
        if s = word then word ^ "e" else s
    | 1 ->
        (* drop one inner character *)
        let i = 1 + Namer_util.Prng.int rng (n - 2) in
        String.sub word 0 i ^ String.sub word (i + 1) (n - i - 1)
    | 2 ->
        (* duplicate one character *)
        let i = Namer_util.Prng.int rng n in
        String.sub word 0 (i + 1) ^ String.sub word i (n - i)
    | _ ->
        (* substitute a vowel *)
        let vowels = "aeiou" in
        let rec subst i =
          if i >= n then word ^ "s"
          else if String.contains vowels (Bytes.get b i) then begin
            let v = vowels.[Namer_util.Prng.int rng 5] in
            if v = Bytes.get b i then subst (i + 1)
            else begin
              Bytes.set b i v;
              Bytes.to_string b
            end
          end
          else subst (i + 1)
        in
        subst 0
