(** Line-tracking source emitter.

    Generators write files line by line through this module so that every
    injected issue and benign anomaly records the exact 1-based line number
    the frontends will later report — the oracle keys its grading on
    (file, line). *)

type t = {
  buf : Buffer.t;
  file : string;
  mutable line : int;  (** number of the *next* line to be written *)
  mutable injections : Issue.injection list;
  mutable benigns : Issue.benign list;
}

let create ~file =
  { buf = Buffer.create 2048; file; line = 1; injections = []; benigns = [] }

(** Write one line (the newline is appended). *)
let line t s =
  Buffer.add_string t.buf s;
  Buffer.add_char t.buf '\n';
  t.line <- t.line + 1

let linef t fmt = Printf.ksprintf (line t) fmt

(** Line number the next [line] call will occupy. *)
let next_line t = t.line

let blank t = line t ""

(** Record an injected issue on the line about to be written (call just
    before emitting it). *)
let inject ?wrong_ident ?fixed_ident t ~wrong ~expected ~category ~description =
  t.injections <-
    {
      Issue.file = t.file;
      line = t.line;
      wrong;
      expected;
      wrong_ident = Option.value wrong_ident ~default:wrong;
      fixed_ident = Option.value fixed_ident ~default:expected;
      category;
      description;
    }
    :: t.injections

(** Record a benign anomaly on the line about to be written. *)
let benign t ~note =
  t.benigns <- { Issue.bfile = t.file; bline = t.line; bnote = note } :: t.benigns

let contents t = Buffer.contents t.buf
let injections t = List.rev t.injections
let benigns t = List.rev t.benigns
