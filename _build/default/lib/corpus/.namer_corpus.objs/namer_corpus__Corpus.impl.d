lib/corpus/corpus.ml: Emitter Hashtbl Issue Java_gen List Namer_util Option Printf Py_gen String Vocab
