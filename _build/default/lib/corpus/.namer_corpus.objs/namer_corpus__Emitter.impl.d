lib/corpus/emitter.ml: Buffer Issue List Option Printf
