lib/corpus/issue.ml:
