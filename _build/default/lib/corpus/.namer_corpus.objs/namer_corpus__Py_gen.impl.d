lib/corpus/py_gen.ml: Emitter Issue List Namer_util Printf String Vocab
