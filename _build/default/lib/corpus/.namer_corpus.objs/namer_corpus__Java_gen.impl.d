lib/corpus/java_gen.ml: Emitter Hashtbl Issue List Namer_util Printf Py_gen String Vocab
