lib/corpus/vocab.ml: Array Bytes Namer_util String
