lib/corpus/corpus.mli: Issue
