lib/corpus/issue.mli:
