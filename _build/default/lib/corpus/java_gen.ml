(** Synthetic Java source generation — the Java counterpart of {!Py_gen},
    modeled on the paper's Table 6 examples: exception-handling idioms
    ([catch (Exception e)] / [e.printStackTrace()]), integer loop indices,
    Android [Intent]/[ProgressDialog] conventions, constructor field
    assignment, getters/setters, builders and loggers. *)

module Prng = Namer_util.Prng

type ctx = { em : Emitter.t; rng : Prng.t; v : Vocab.slice; rates : Py_gen.rates }

type fate = Py_gen.fate = Clean | Issue | Benign

let fate (ctx : ctx) =
  if Prng.bool ctx.rng ~p:ctx.rates.issue then Issue
  else if Prng.bool ctx.rng ~p:ctx.rates.benign then Benign
  else Clean

let cap = String.capitalize_ascii

let java_keywords =
  [ "default"; "final"; "new"; "int"; "char"; "byte"; "class"; "package"; "import" ]

let safe w = if List.mem w java_keywords then w ^ "Value" else w

let entity ctx = safe (ctx.v.entity ctx.rng)
let attribute ctx = safe (ctx.v.attribute ctx.rng)
let verb ctx = safe (ctx.v.verb ctx.rng)
let num ctx = string_of_int (Prng.int ctx.rng 100 + 1)

let camel a b = a ^ cap b

(* ------------------------------------------------------------------ *)
(* Member-level idioms                                                 *)
(* ------------------------------------------------------------------ *)

(** Constructor assigning parameters to same-named fields; issues mirror
    Table 6's [this.publicKey = publickKey] typo and synonym confusions. *)
let constructor ctx ~cls ~fields =
  (* decide fates first: a typo'd parameter is misspelled in the signature
     AND at its use, exactly like Table 6's [publickKey] *)
  let fates = List.map (fun field -> (field, fate ctx)) fields in
  let typo_of = Hashtbl.create 4 in
  List.iter
    (fun ((_, name), f) ->
      if f = Issue && Prng.bool ctx.rng ~p:0.6 then begin
        let first = List.hd (Namer_util.Subtoken.split name) in
        let wrong_first = Vocab.typo ctx.rng first in
        let wrong_ident =
          Namer_util.Subtoken.replace_subtoken name ~index:0 ~with_:wrong_first
        in
        Hashtbl.replace typo_of name (first, wrong_first, wrong_ident)
      end)
    fates;
  let params =
    List.map
      (fun (ty, name) ->
        match Hashtbl.find_opt typo_of name with
        | Some (_, _, wrong_ident) -> Printf.sprintf "%s %s" ty wrong_ident
        | None -> Printf.sprintf "%s %s" ty name)
      fields
  in
  Emitter.linef ctx.em "    public %s(%s) {" cls (String.concat ", " params);
  List.iter
    (fun ((_, name), f) ->
      match (Hashtbl.find_opt typo_of name, f) with
      | Some (first, wrong_first, wrong_ident), _ ->
          Emitter.inject ctx.em ~wrong:wrong_first ~expected:first
            ~wrong_ident ~fixed_ident:name
            ~category:(Issue.Code_quality Issue.Typo)
            ~description:(Printf.sprintf "typo %s for %s" wrong_ident name);
          Emitter.linef ctx.em "        this.%s = %s;" name wrong_ident
      | None, Issue ->
          (* synonym-confused first subtoken: [this.sizeCount = lengthCount]
             — keeps the subtoken count equal so consistency patterns pair *)
          let first = List.hd (Namer_util.Subtoken.split name) in
          let wrong_first, _ = Prng.choose_arr ctx.rng Py_gen.synonym_confusions in
          let wrong_first = safe wrong_first in
          let wrong_attr =
            Namer_util.Subtoken.replace_subtoken name ~index:0 ~with_:wrong_first
          in
          if wrong_first = first then
            Emitter.linef ctx.em "        this.%s = %s;" name name
          else begin
            Emitter.inject ctx.em ~wrong:wrong_first ~expected:first
              ~wrong_ident:wrong_attr ~fixed_ident:name
              ~category:(Issue.Code_quality Issue.Inconsistent_name)
              ~description:
                (Printf.sprintf "field %s inconsistent with value %s" wrong_attr name);
            Emitter.linef ctx.em "        this.%s = %s;" wrong_attr name
          end
      | None, Benign when Prng.bool ctx.rng ~p:0.5 ->
          (* recurring conventional mismatch in the first subtoken *)
          let a, v = Prng.choose_arr ctx.rng Py_gen.legit_mismatches in
          let attr = Namer_util.Subtoken.replace_subtoken name ~index:0 ~with_:(safe a) in
          let value = Namer_util.Subtoken.replace_subtoken name ~index:0 ~with_:(safe v) in
          Emitter.benign ctx.em ~note:"conventional field/value mismatch";
          Emitter.linef ctx.em "        this.%s = %s;" attr value
      | None, Benign ->
          (* one-off legitimate mismatch — hard false positive *)
          let w = attribute ctx in
          let first = List.hd (Namer_util.Subtoken.split name) in
          if w = first then Emitter.linef ctx.em "        this.%s = %s;" name name
          else begin
            let attr = Namer_util.Subtoken.replace_subtoken name ~index:0 ~with_:w in
            Emitter.benign ctx.em ~note:"deliberate field/value mismatch";
            Emitter.linef ctx.em "        this.%s = %s;" attr name
          end
      | None, Clean -> Emitter.linef ctx.em "        this.%s = %s;" name name)
    fates;
  Emitter.line ctx.em "    }"

let getter_setter ctx ~ty ~name =
  Emitter.linef ctx.em "    public %s get%s() {" ty (cap name);
  Emitter.linef ctx.em "        return %s;" name;
  Emitter.line ctx.em "    }";
  Emitter.blank ctx.em;
  Emitter.linef ctx.em "    public void set%s(%s %s) {" (cap name) ty name;
  Emitter.linef ctx.em "        this.%s = %s;" name name;
  Emitter.line ctx.em "    }"

(* ------------------------------------------------------------------ *)
(* Statement-level idioms                                              *)
(* ------------------------------------------------------------------ *)

(** [try { … } catch (Exception e) { e.printStackTrace(); }] with the two
    semantic issues of Table 6: catching [Throwable] and the no-op
    [e.getStackTrace()]. *)
let try_catch ctx ~ind ~action =
  (* fates decided upfront: the Try statement's violations anchor at the
     [try] line, so the oracle entry must live there too *)
  let exn_fate = fate ctx in
  let exn_type = if exn_fate = Issue then "Throwable" else "Exception" in
  let binder =
    if exn_fate = Clean && Prng.bool ctx.rng ~p:(0.5 *. ctx.rates.benign) then
      Prng.choose ctx.rng [ "ex"; "err" ]
    else "e"
  in
  let mark () =
    if exn_fate = Issue then
      Emitter.inject ctx.em ~wrong:"Throwable" ~expected:"Exception"
        ~category:Issue.Semantic_defect
        ~description:"catching Throwable also catches Error"
    else if binder <> "e" then
      Emitter.benign ctx.em ~note:"alternative catch binder name is fine"
  in
  mark ();
  Emitter.linef ctx.em "%stry {" ind;
  Emitter.linef ctx.em "%s    %s();" ind action;
  mark ();
  Emitter.linef ctx.em "%s} catch (%s %s) {" ind exn_type binder;
  (match fate ctx with
  | Issue ->
      Emitter.inject ctx.em ~wrong:"get" ~expected:"print"
        ~wrong_ident:"getStackTrace" ~fixed_ident:"printStackTrace"
        ~category:Issue.Semantic_defect
        ~description:"getStackTrace result discarded; printStackTrace intended";
      Emitter.linef ctx.em "%s    %s.getStackTrace();" ind binder
  | _ -> Emitter.linef ctx.em "%s    %s.printStackTrace();" ind binder);
  Emitter.linef ctx.em "%s}" ind

(** [for (int i = 0; i < n; i++)] — the issue declares the index [double]
    (Table 6, example 2). *)
let index_loop ctx ~ind ~bound =
  let ty = ref "int" and var = ref "i" in
  (* damp the benign arm as in {!Py_gen.range_loop} *)
  let f =
    if Prng.bool ctx.rng ~p:ctx.rates.issue then Issue
    else if Prng.bool ctx.rng ~p:(0.25 *. ctx.rates.benign) then Benign
    else Clean
  in
  (match f with
  | Issue ->
      Emitter.inject ctx.em ~wrong:"double" ~expected:"int"
        ~category:Issue.Semantic_defect
        ~description:"floating-point loop index";
      ty := "double"
  | Benign ->
      (* [j] is a fine index name — statistically unusual, hard FP *)
      Emitter.benign ctx.em ~note:"alternative index name is fine";
      var := "j"
  | Clean -> ());
  Emitter.linef ctx.em "%sfor (%s %s = 0; %s < %s; %s++) {" ind !ty !var !var bound !var;
  (if !var <> "i" then
     Emitter.benign ctx.em ~note:"alternative index name is fine");
  Emitter.linef ctx.em "%s    process(%s);" ind !var;
  Emitter.linef ctx.em "%s}" ind

(** Android activity-launch idiom; the issue names the intent variable [i]
    (Table 6, example 5). *)
let intent_start ctx ~ind ~target =
  let buggy = fate ctx = Issue in
  let var = if buggy then "i" else "intent" in
  let mark () =
    if buggy then
      Emitter.inject ctx.em ~wrong:"i" ~expected:"intent" ~wrong_ident:"i"
        ~fixed_ident:"intent"
        ~category:(Issue.Code_quality Issue.Confusing_name)
        ~description:"Intent variable named i"
  in
  mark ();
  Emitter.linef ctx.em "%sIntent %s = new Intent(context, %s.class);" ind var target;
  mark ();
  Emitter.linef ctx.em "%scontext.startActivity(%s);" ind var

(** Android progress-dialog idiom; the issue abbreviates [progressDialog]
    to [progDialog] (Table 6, example 6). *)
let progress_dialog ctx ~ind =
  let f = fate ctx in
  let var =
    match f with
    | Issue -> "progDialog"
    | Benign -> Prng.choose ctx.rng [ "loadingDialog"; "busyDialog" ]
    | Clean -> "progressDialog"
  in
  let mark () =
    match f with
    | Issue ->
        Emitter.inject ctx.em ~wrong:"prog" ~expected:"progress"
          ~wrong_ident:"progDialog" ~fixed_ident:"progressDialog"
          ~category:(Issue.Code_quality Issue.Confusing_name)
          ~description:"abbreviated dialog variable"
    | Benign -> Emitter.benign ctx.em ~note:"purpose-named dialog is correct"
    | Clean -> ()
  in
  mark ();
  Emitter.linef ctx.em "%sProgressDialog %s = new ProgressDialog(context);" ind var;
  mark ();
  Emitter.linef ctx.em "%s%s.show();" ind var;
  mark ();
  Emitter.linef ctx.em "%s%s.dismiss();" ind var

(** Writer idiom whose dominant form names the variable after its type;
    the benign anomaly uses a purpose-based name (the paper's false
    positive: [outputWriter] for a [StringWriter]). *)
let string_writer ctx ~ind =
  let unusual = fate ctx = Benign in
  let var = if unusual then "outputWriter" else "stringWriter" in
  let mark () =
    if unusual then Emitter.benign ctx.em ~note:"purpose-named writer is correct"
  in
  mark ();
  Emitter.linef ctx.em "%sStringWriter %s = new StringWriter();" ind var;
  mark ();
  Emitter.linef ctx.em "%s%s.write(data);" ind var

let string_builder ctx ~ind =
  let attr = attribute ctx in
  let unusual = fate ctx = Benign in
  let var = if unusual then Prng.choose ctx.rng [ "sb"; "output" ] else "builder" in
  let mark () =
    if unusual then Emitter.benign ctx.em ~note:"short builder name is fine"
  in
  mark ();
  Emitter.linef ctx.em "%sStringBuilder %s = new StringBuilder();" ind var;
  mark ();
  Emitter.linef ctx.em "%s%s.append(%s);" ind var attr;
  mark ();
  Emitter.linef ctx.em "%sreturn %s.toString();" ind var

(** Geometry idiom [canvas.resize(width, height)]; the issue swaps the
    arguments (ordering-pattern extension). *)
let resize_stmt ctx ~ind =
  match fate ctx with
  | Issue ->
      Emitter.inject ctx.em ~wrong:"height" ~expected:"width"
        ~category:Issue.Semantic_defect
        ~description:"swapped width/height arguments";
      Emitter.linef ctx.em "%scanvas.resize(height, width);" ind
  | _ -> Emitter.linef ctx.em "%scanvas.resize(width, height);" ind

let null_check ctx ~ind ~var =
  ignore ctx;
  Emitter.linef ctx.em "%sif (%s == null) {" ind var;
  Emitter.linef ctx.em "%s    return;" ind;
  Emitter.linef ctx.em "%s}" ind

(** Alert-dialog idiom: same [show()]/[dismiss()] call shapes as
    {!progress_dialog} but on an [AlertDialog] — correct code that only the
    receiver's origin separates from an abbreviated progress dialog.  This
    is the Java side of the origin-dependent ambiguity that makes the
    paper's "w/o A" ablation lose precision. *)
let alert_dialog ctx ~ind =
  let mark () =
    Emitter.benign ctx.em ~note:"alertDialog correctly names an AlertDialog"
  in
  mark ();
  Emitter.linef ctx.em "%sAlertDialog alertDialog = new AlertDialog(context);" ind;
  mark ();
  Emitter.linef ctx.em "%salertDialog.show();" ind;
  mark ();
  Emitter.linef ctx.em "%salertDialog.dismiss();" ind

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let field_type ctx =
  Prng.choose ctx.rng [ "String"; "int"; "long"; "boolean"; "String"; "List" ]

(** A plain domain class: fields, constructor, getters/setters. *)
let gen_model_file ctx =
  let e = entity ctx in
  let cls = cap e in
  Emitter.linef ctx.em "package com.example.%s;" e;
  Emitter.blank ctx.em;
  Emitter.line ctx.em "import java.util.List;";
  Emitter.blank ctx.em;
  Emitter.linef ctx.em "public class %s {" cls;
  let n_fields = 2 + Prng.int ctx.rng 3 in
  let fields =
    List.init n_fields (fun _ -> (field_type ctx, camel (attribute ctx) (attribute ctx)))
    |> List.sort_uniq compare
  in
  List.iter
    (fun (ty, name) -> Emitter.linef ctx.em "    private %s %s;" ty name)
    fields;
  Emitter.blank ctx.em;
  constructor ctx ~cls ~fields;
  List.iteri
    (fun i (ty, name) ->
      Emitter.blank ctx.em;
      if i mod 2 = 0 then getter_setter ctx ~ty ~name
      else begin
        Emitter.linef ctx.em "    public String %s%s() {" (verb ctx) (cap name);
        string_builder ctx ~ind:"        ";
        Emitter.line ctx.em "    }"
      end)
    fields;
  Emitter.line ctx.em "}"

(** An Android-flavored activity class exercising the Intent / dialog /
    exception idioms. *)
let gen_activity_file ctx =
  let e = entity ctx in
  let cls = cap e ^ "Activity" in
  Emitter.linef ctx.em "package com.example.%s;" e;
  Emitter.blank ctx.em;
  Emitter.line ctx.em "import android.content.Intent;";
  Emitter.line ctx.em "import android.app.ProgressDialog;";
  Emitter.blank ctx.em;
  Emitter.linef ctx.em "public class %s extends Activity {" cls;
  let n_methods = 2 + Prng.int ctx.rng 3 in
  for _ = 1 to n_methods do
    Emitter.blank ctx.em;
    let v = verb ctx in
    Emitter.linef ctx.em "    public void %s%s(Context context) {" v (cap e);
    null_check ctx ~ind:"        " ~var:"context";
    (match Prng.int ctx.rng 12 with
    | 0 | 1 -> intent_start ctx ~ind:"        " ~target:(cap (entity ctx) ^ "Activity")
    (* progress : alert ≈ 6 : 1, so the shared dismiss/show idiom stays
       above the mining satisfaction threshold even without origins *)
    | 2 | 3 | 4 | 5 | 6 | 7 -> progress_dialog ctx ~ind:"        "
    | 8 -> alert_dialog ctx ~ind:"        "
    | 9 | 10 -> try_catch ctx ~ind:"        " ~action:(verb ctx)
    | _ -> index_loop ctx ~ind:"        " ~bound:"context.size()");
    Emitter.line ctx.em "    }"
  done;
  Emitter.line ctx.em "}"

(** A service/utility class: loops, try/catch, builders, writers. *)
let gen_service_file ctx =
  let e = entity ctx in
  let cls = cap e ^ "Service" in
  Emitter.linef ctx.em "package com.example.%s;" e;
  Emitter.blank ctx.em;
  Emitter.line ctx.em "import java.io.StringWriter;";
  Emitter.line ctx.em "import org.slf4j.Logger;";
  Emitter.blank ctx.em;
  Emitter.linef ctx.em "public class %s {" cls;
  Emitter.linef ctx.em
    "    private static final Logger logger = LoggerFactory.getLogger(%s.class);" cls;
  let n_methods = 2 + Prng.int ctx.rng 3 in
  for _ = 1 to n_methods do
    Emitter.blank ctx.em;
    let v = verb ctx and a = attribute ctx in
    (match Prng.int ctx.rng 5 with
    | 0 ->
        Emitter.linef ctx.em "    public void %s%s(String data, int count) {" v (cap a);
        index_loop ctx ~ind:"        " ~bound:"count";
        Emitter.line ctx.em "    }"
    | 4 ->
        Emitter.linef ctx.em "    public void %s%s(int width, int height) {" v (cap a);
        resize_stmt ctx ~ind:"        ";
        Emitter.line ctx.em "    }"
    | 1 ->
        Emitter.linef ctx.em "    public void %s%s(String data) {" v (cap a);
        try_catch ctx ~ind:"        " ~action:(verb ctx);
        Emitter.line ctx.em "    }"
    | 2 ->
        Emitter.linef ctx.em "    public void %s%s(String data) {" v (cap a);
        string_writer ctx ~ind:"        ";
        Emitter.linef ctx.em "        logger.info(\"%s\");" v;
        Emitter.line ctx.em "    }"
    | _ ->
        Emitter.linef ctx.em "    public String %s%s(String %s) {" v (cap a) a;
        null_check ctx ~ind:"        " ~var:a;
        string_builder ctx ~ind:"        ";
        Emitter.line ctx.em "    }")
  done;
  Emitter.line ctx.em "}"

(** Generate one Java file of a deterministic-random flavor. *)
let gen_file ~rng ~vocab ~rates ~file =
  let em = Emitter.create ~file in
  let ctx = { em; rng; v = vocab; rates } in
  (match Prng.int rng 3 with
  | 0 -> gen_model_file ctx
  | 1 -> gen_activity_file ctx
  | _ -> gen_service_file ctx);
  em
