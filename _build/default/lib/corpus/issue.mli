(** Ground-truth taxonomy for injected naming issues: categories follow the
    paper's grading (semantic defect / code-quality issue with the Table 4
    five-way breakdown); the injection log replaces manual inspection. *)

type quality_kind =
  | Confusing_name
  | Indescriptive_name
  | Inconsistent_name
  | Minor_issue
  | Typo

type category = Semantic_defect | Code_quality of quality_kind

val category_name : category -> string

(** One injected naming issue. *)
type injection = {
  file : string;
  line : int;
  wrong : string;  (** the mistaken subtoken as it appears *)
  expected : string;  (** the subtoken a correct fix must suggest *)
  wrong_ident : string;  (** full identifier containing [wrong] *)
  fixed_ident : string;  (** the identifier after the fix *)
  category : category;
  description : string;
}

(** One unusual-but-correct statement: reporting it is a false positive. *)
type benign = { bfile : string; bline : int; bnote : string }
