(** Ground-truth taxonomy for injected naming issues.

    The paper grades reports by manual inspection into semantic defects,
    code-quality issues (with the five-way breakdown of Table 4) and false
    positives.  Our corpus generator replaces the human inspectors with an
    explicit injection log: every generated defect records where it is, what
    the mistaken word is, and what fix a correct report must suggest; every
    deliberately unusual-but-correct statement records that reporting it is
    a false positive.  {!Oracle} (in {!Corpus}) grades reports against this
    log mechanically. *)

type quality_kind =
  | Confusing_name
  | Indescriptive_name
  | Inconsistent_name
  | Minor_issue
  | Typo

type category = Semantic_defect | Code_quality of quality_kind

let category_name = function
  | Semantic_defect -> "semantic defect"
  | Code_quality Confusing_name -> "confusing name"
  | Code_quality Indescriptive_name -> "indescriptive name"
  | Code_quality Inconsistent_name -> "inconsistent name"
  | Code_quality Minor_issue -> "minor issue"
  | Code_quality Typo -> "typo"

(** One injected naming issue. *)
type injection = {
  file : string;  (** repo-relative path, unique across the corpus *)
  line : int;
  wrong : string;  (** the mistaken subtoken, as it appears in the code *)
  expected : string;  (** the subtoken a correct fix must suggest *)
  wrong_ident : string;  (** full identifier containing [wrong], for diffs *)
  fixed_ident : string;  (** full identifier after the fix *)
  category : category;
  description : string;  (** human-readable note, for report listings *)
}

(** One benign anomaly: unusual but correct code.  A report pointing at it
    is a false positive by construction. *)
type benign = { bfile : string; bline : int; bnote : string }
