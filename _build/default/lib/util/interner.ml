(** String interning.

    The Datalog engine, name-path serialization and FP-tree all work over
    dense integer identifiers; this module provides the bijection between
    strings and those identifiers.  Interners are explicit values (no global
    state) so independent analyses cannot interfere. *)

type t = {
  of_string : (string, int) Hashtbl.t;
  mutable to_string : string array;
  mutable next : int;
}

let create ?(size = 1024) () =
  { of_string = Hashtbl.create size; to_string = Array.make 64 ""; next = 0 }

(** [intern t s] returns the unique id of [s], allocating one if needed.
    Ids are dense, starting at 0, in first-seen order. *)
let intern t s =
  match Hashtbl.find_opt t.of_string s with
  | Some id -> id
  | None ->
      let id = t.next in
      t.next <- id + 1;
      if id >= Array.length t.to_string then begin
        let bigger = Array.make (2 * Array.length t.to_string) "" in
        Array.blit t.to_string 0 bigger 0 (Array.length t.to_string);
        t.to_string <- bigger
      end;
      t.to_string.(id) <- s;
      Hashtbl.replace t.of_string s id;
      id

(** [lookup t s] is the id of [s] if it was interned before. *)
let lookup t s = Hashtbl.find_opt t.of_string s

(** [name t id] recovers the string for [id]. Raises [Invalid_argument] for
    ids never returned by [intern]. *)
let name t id =
  if id < 0 || id >= t.next then invalid_arg "Interner.name: unknown id"
  else t.to_string.(id)

let size t = t.next
