(** Deterministic pseudo-random number generation.

    Every stochastic step in this repository (corpus generation, sampling,
    train/test splits, neural-network initialization) draws from this module
    with an explicitly threaded seed, so builds, tests and benchmarks are
    bit-reproducible across runs and machines.  The generator is SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014): tiny state, excellent statistical
    quality for non-cryptographic use, and trivially splittable. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 core step: advance by the golden-gamma constant and mix. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [split t] derives an independent generator from [t], advancing [t].
    Passing split generators into sub-computations keeps their draws stable
    even when sibling computations change how much randomness they consume. *)
let split t =
  let s = next_int64 t in
  { state = s }

(** Non-negative 62-bit integer. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** [int t n] draws uniformly from [0, n). Requires [n > 0]. *)
let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod n in
    if r - v > max_int - n + 1 then go () else v
  in
  go ()

(** Uniform float in [0, 1). *)
let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

(** Uniform float in [lo, hi). *)
let float_range t lo hi = lo +. ((hi -. lo) *. float t)

(** Bernoulli draw with success probability [p]. *)
let bool t ~p = float t < p

(** Standard normal via Box–Muller (one value per call; simple over fast). *)
let gaussian t =
  let u1 = max (float t) 1e-300 and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(** [choose t xs] picks a uniform element of the non-empty list [xs]. *)
let choose t xs =
  match xs with
  | [] -> invalid_arg "Prng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

(** [choose_arr t a] picks a uniform element of the non-empty array [a]. *)
let choose_arr t a =
  if Array.length a = 0 then invalid_arg "Prng.choose_arr: empty array";
  a.(int t (Array.length a))

(** [weighted t pairs] samples a value with probability proportional to its
    weight. Weights must be non-negative with a positive sum. *)
let weighted t pairs =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 pairs in
  if total <= 0.0 then invalid_arg "Prng.weighted: non-positive total weight";
  let r = float t *. total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.weighted: empty"
    | [ (_, x) ] -> x
    | (w, x) :: rest -> if acc +. w > r then x else go (acc +. w) rest
  in
  go 0.0 pairs

(** In-place Fisher–Yates shuffle. *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(** [sample t k xs] draws [k] elements from [xs] without replacement
    (all of [xs] if it has fewer than [k] elements), preserving no
    particular order. *)
let sample t k xs =
  let a = Array.of_list xs in
  shuffle t a;
  let k = min k (Array.length a) in
  Array.to_list (Array.sub a 0 k)
