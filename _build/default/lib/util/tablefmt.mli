(** Aligned plain-text tables for the benchmark harness (the regenerated
    paper tables). *)

type align = Left | Right

(** Lay out [rows] under [header]; default alignment is first column left,
    rest right. *)
val render :
  caption:string -> header:string list -> ?align:align list -> string list list -> string

val print :
  caption:string -> header:string list -> ?align:align list -> string list list -> unit

(** ["70%"]-style percentage of a ratio. *)
val pct : ?digits:int -> float -> string
