(** String interning: a bijection between strings and dense integer ids
    (first-seen order, starting at 0).  Explicit values — no global state. *)

type t

val create : ?size:int -> unit -> t

(** Id of [s], allocating if new. *)
val intern : t -> string -> int

(** Id of [s] if already interned. *)
val lookup : t -> string -> int option

(** String for [id].  @raise Invalid_argument for unknown ids. *)
val name : t -> int -> string

val size : t -> int
