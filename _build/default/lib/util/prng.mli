(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic step in the repository draws from this module with an
    explicitly threaded seed, keeping builds, tests and benchmarks
    bit-reproducible.  Generators are mutable values; [split] derives
    independent child streams so sub-computations cannot perturb their
    siblings. *)

type t

val create : int -> t
val copy : t -> t

(** Derive an independent generator, advancing the parent by one draw. *)
val split : t -> t

(** Non-negative 62-bit integer. *)
val bits : t -> int

(** Uniform in [0, n); rejection-sampled (no modulo bias).
    @raise Invalid_argument if [n ≤ 0]. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val float_range : t -> float -> float -> float

(** Bernoulli draw. *)
val bool : t -> p:float -> bool

(** Standard normal (Box–Muller). *)
val gaussian : t -> float

(** Uniform element of a non-empty list / array. *)
val choose : t -> 'a list -> 'a

val choose_arr : t -> 'a array -> 'a

(** Sample proportionally to non-negative weights. *)
val weighted : t -> (float * 'a) list -> 'a

(** In-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [sample t k xs]: [k] elements without replacement (all of [xs] if
    shorter). *)
val sample : t -> int -> 'a list -> 'a list
