lib/util/interner.mli:
