lib/util/subtoken.mli:
