lib/util/edit_distance.mli:
