lib/util/counter.ml: Hashtbl List Option
