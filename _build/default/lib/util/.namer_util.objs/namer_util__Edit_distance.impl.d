lib/util/edit_distance.ml: Array String
