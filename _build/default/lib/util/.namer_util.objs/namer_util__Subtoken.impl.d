lib/util/subtoken.ml: Buffer Char List String
