lib/util/stats.mli:
