lib/util/counter.mli:
