lib/util/tablefmt.mli:
