lib/util/prng.mli:
