(** String edit distances.

    Feature 16 of the defect classifier (Table 1) is the edit distance between
    the original name and the suggested name: small distances indicate likely
    typos and raise the probability of a true issue.  We provide classic
    Levenshtein and the Damerau variant (adjacent transpositions count as one
    edit — the dominant class of real typos). *)

(** [levenshtein a b] is the minimum number of single-character insertions,
    deletions and substitutions turning [a] into [b]. O(|a|·|b|) time,
    O(min(|a|,|b|)) space. *)
let levenshtein a b =
  let a, b = if String.length a < String.length b then (a, b) else (b, a) in
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else begin
    let prev = Array.init (la + 1) (fun i -> i) in
    let cur = Array.make (la + 1) 0 in
    for j = 1 to lb do
      cur.(0) <- j;
      for i = 1 to la do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(i) <- min (min (cur.(i - 1) + 1) (prev.(i) + 1)) (prev.(i - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (la + 1)
    done;
    prev.(la)
  end

(** [damerau a b] is the optimal-string-alignment distance: Levenshtein
    extended with adjacent transpositions. *)
let damerau a b =
  let la = String.length a and lb = String.length b in
  let d = Array.make_matrix (la + 1) (lb + 1) 0 in
  for i = 0 to la do
    d.(i).(0) <- i
  done;
  for j = 0 to lb do
    d.(0).(j) <- j
  done;
  for i = 1 to la do
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      d.(i).(j) <-
        min (min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1)) (d.(i - 1).(j - 1) + cost);
      if i > 1 && j > 1 && a.[i - 1] = b.[j - 2] && a.[i - 2] = b.[j - 1] then
        d.(i).(j) <- min d.(i).(j) (d.(i - 2).(j - 2) + 1)
    done
  done;
  d.(la).(lb)

(** Normalized similarity in [0,1]: 1 for equal strings, 0 for maximally
    distant ones. *)
let similarity a b =
  let n = max (String.length a) (String.length b) in
  if n = 0 then 1.0 else 1.0 -. (float_of_int (levenshtein a b) /. float_of_int n)
