(** Descriptive statistics and binary-classification metrics (precision /
    recall / F1 of §5's evaluation). *)

val mean : float list -> float
val variance : float list -> float
val stddev : float list -> float

(** Linear-interpolated percentile; [p] in [0, 100]. *)
val percentile : float -> float list -> float

type confusion = { tp : int; fp : int; tn : int; fn : int }

(** Pairwise outcome counts.  @raise Invalid_argument on length mismatch. *)
val confusion : predicted:bool list -> actual:bool list -> confusion

val accuracy : confusion -> float
val precision : confusion -> float
val recall : confusion -> float
val f1 : confusion -> float
