(** Splitting identifier names into subtokens.

    Namer reasons about names at the subtoken level (§3.1, transformation 3):
    [assertTrue] becomes [assert; True], [rotated_picture_name] becomes
    [rotated; picture; name].  This module implements the standard naming
    conventions used by the paper: camelCase, PascalCase, snake_case,
    SCREAMING_SNAKE_CASE, digit runs, and mixtures thereof.

    Splitting preserves the original capitalization of each subtoken (the
    paper's Figure 2 keeps [True] capitalized), and [join] re-assembles
    subtokens in a requested style so suggested fixes can be rendered back
    in the style of the original identifier. *)

type style =
  | Snake  (** [lower_snake_case] *)
  | Camel  (** [camelCase] *)
  | Pascal  (** [PascalCase] *)
  | Screaming  (** [SCREAMING_SNAKE_CASE] *)
  | Flat  (** single lowercase word, no boundary evidence *)

let is_upper c = c >= 'A' && c <= 'Z'
let is_lower c = c >= 'a' && c <= 'z'
let is_digit c = c >= '0' && c <= '9'

(** [split name] returns the subtokens of [name] in order, capitalization
    preserved.  Boundaries are underscores, lower→upper transitions,
    upper-run→upper-lower transitions (as in [HTTPServer] → [HTTP; Server]),
    and letter/digit transitions.  Never returns an empty list for a
    non-empty input; returns [[]] for the empty string. *)
let split name =
  let n = String.length name in
  if n = 0 then []
  else begin
    let out = ref [] and buf = Buffer.create 8 in
    let flush () =
      if Buffer.length buf > 0 then begin
        out := Buffer.contents buf :: !out;
        Buffer.clear buf
      end
    in
    for i = 0 to n - 1 do
      let c = name.[i] in
      if c = '_' || c = '$' then flush ()
      else begin
        let prev = if i > 0 then Some name.[i - 1] else None in
        let next = if i < n - 1 then Some name.[i + 1] else None in
        (match prev with
        | Some p ->
            if
              (is_lower p && is_upper c)
              || (is_digit p && not (is_digit c))
              || ((not (is_digit p)) && is_digit c)
              (* HTTPServer: boundary before the last upper of an upper run
                 when a lower follows. *)
              || is_upper p && is_upper c
                 && match next with Some nx -> is_lower nx | None -> false
            then flush ()
        | None -> ());
        Buffer.add_char buf c
      end
    done;
    flush ();
    List.rev !out
  end

(** Lowercased subtokens — the canonical form used for comparing naming
    vocabulary across styles. *)
let split_lower name = List.map String.lowercase_ascii (split name)

let capitalize s =
  if s = "" then s
  else
    String.mapi
      (fun i c -> if i = 0 then Char.uppercase_ascii c else Char.lowercase_ascii c)
      s

(** [detect_style name] guesses the naming convention of [name], used to
    render suggested fixes in the surrounding style. *)
let detect_style name =
  let has_underscore = String.contains name '_' in
  let has_upper = String.exists is_upper name in
  let has_lower = String.exists is_lower name in
  if has_underscore && has_upper && not has_lower then Screaming
  else if has_underscore then Snake
  else if has_upper && has_lower then
    if name <> "" && is_upper name.[0] then Pascal else Camel
  else if has_upper then Screaming
  else Flat

(** [join style subtokens] renders [subtokens] as one identifier in
    [style].  [join (detect_style n) (split_lower n)] is a style-faithful
    normalization of [n]. *)
let join style subtokens =
  match style with
  | Snake -> String.concat "_" (List.map String.lowercase_ascii subtokens)
  | Screaming -> String.concat "_" (List.map String.uppercase_ascii subtokens)
  | Flat -> String.concat "" (List.map String.lowercase_ascii subtokens)
  | Pascal -> String.concat "" (List.map capitalize subtokens)
  | Camel -> (
      match subtokens with
      | [] -> ""
      | first :: rest ->
          String.lowercase_ascii first ^ String.concat "" (List.map capitalize rest))

(** [replace_subtoken name ~index ~with_] rewrites the [index]-th subtoken of
    [name] (0-based) to [with_], preserving the identifier's style.  This is
    how Namer renders a suggested fix: the violated pattern names one
    subtoken to change (e.g. [True] → [Equal] inside [assertTrue]). *)
let replace_subtoken name ~index ~with_ =
  let parts = split name in
  if index < 0 || index >= List.length parts then name
  else
    let style = detect_style name in
    let parts = List.mapi (fun i p -> if i = index then with_ else p) parts in
    (* For camel/pascal identifiers the non-first parts keep their
       capitalization through [join]'s [capitalize]; snake stays lower. *)
    join style parts

(** Number of subtokens — the [NumST(k)] value of §3.1. *)
let count name = List.length (split name)
