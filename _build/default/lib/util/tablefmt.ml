(** Plain-text table rendering for the benchmark harness.

    The bench executable regenerates the paper's tables; this module renders
    them as aligned ASCII tables with a caption, so the output can be compared
    side by side with the paper (see EXPERIMENTS.md). *)

type align = Left | Right

(** [render ~caption ~header ?align rows] lays out [rows] under [header] with
    per-column alignment (default: first column left, rest right). *)
let render ~caption ~header ?align rows =
  let ncols = List.length header in
  let align =
    match align with
    | Some a -> a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let all = header :: rows in
  let width i =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row i with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let pad a w s =
    let gap = w - String.length s in
    if gap <= 0 then s
    else
      match a with
      | Left -> s ^ String.make gap ' '
      | Right -> String.make gap ' ' ^ s
  in
  let render_row row =
    List.mapi
      (fun i cell -> pad (List.nth align i) (List.nth widths i) cell)
      row
    |> String.concat "  "
    |> fun s -> "  " ^ s
  in
  let rule =
    "  " ^ String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (caption ^ "\n");
  Buffer.add_string buf (render_row header ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.contents buf

let print ~caption ~header ?align rows =
  print_string (render ~caption ~header ?align rows);
  print_newline ()

(** Format a ratio as a percentage string like ["70%"]. *)
let pct ?(digits = 0) x = Printf.sprintf "%.*f%%" digits (100.0 *. x)
