(** Minimal JSON emission (no external dependency): enough for the CLI's
    machine-readable report output.  Values are built from constructors and
    rendered with correct string escaping; no parser is provided (nothing
    in this project reads JSON). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Render compactly ([indent = None]) or pretty-printed with the given
    indentation width. *)
let to_string ?indent (v : t) =
  let buf = Buffer.create 256 in
  let nl level =
    match indent with
    | None -> ()
    | Some w ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (w * level) ' ')
  in
  let rec go level v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.1f" f)
        else Buffer.add_string buf (Printf.sprintf "%.12g" f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            nl (level + 1);
            go (level + 1) item)
          items;
        nl level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (level + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            if indent <> None then Buffer.add_char buf ' ';
            go (level + 1) item)
          fields;
        nl level;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf
