(** String edit distances (classifier feature 16: distance between the
    original and suggested name — small distances indicate typos). *)

(** Levenshtein distance: single-character insert/delete/substitute.
    O(|a|·|b|) time, O(min) space. *)
val levenshtein : string -> string -> int

(** Optimal-string-alignment distance: Levenshtein plus adjacent
    transpositions (the dominant typo class). *)
val damerau : string -> string -> int

(** Normalized similarity in [0, 1]; 1 for equal strings. *)
val similarity : string -> string -> float
