(** Splitting identifier names into subtokens (§3.1, transformation 3):
    [assertTrue] → [["assert"; "True"]], [rotated_picture_name] →
    [["rotated"; "picture"; "name"]].  Covers camelCase, PascalCase,
    snake_case, SCREAMING_SNAKE_CASE, acronym runs and digit boundaries;
    capitalization is preserved. *)

type style = Snake | Camel | Pascal | Screaming | Flat

(** Subtokens of a name, in order; [[]] only for the empty string. *)
val split : string -> string list

(** Lowercased subtokens — the canonical cross-style form. *)
val split_lower : string -> string list

(** Guess the naming convention, for style-faithful fix rendering. *)
val detect_style : string -> style

(** Render subtokens as one identifier in the given style. *)
val join : style -> string list -> string

(** Replace the [index]-th subtoken (0-based), preserving the identifier's
    style — how a suggested fix is rendered ([assertTrue] with index 1 set
    to ["Equal"] gives ["assertEqual"]).  Out-of-range indices return the
    name unchanged. *)
val replace_subtoken : string -> index:int -> with_:string -> string

(** Number of subtokens — the [NumST(k)] value. *)
val count : string -> int
