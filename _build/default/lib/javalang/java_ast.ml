(** Surface abstract syntax for the Java subset.

    Covers the constructs the synthetic corpus and the paper's Java examples
    (Table 6) exercise: classes with [extends]/[implements], fields, methods
    and constructors, local variable declarations with initializers, classic
    and enhanced [for] loops, [try]/[catch]/[finally], [throw], the
    expression grammar including [new], casts, [instanceof], ternary, and
    assignment expressions. Generics are parsed and recorded on types. *)

type typ = {
  base : string;  (** possibly dotted, e.g. ["java.util.List"] *)
  targs : typ list;  (** generic arguments *)
  dims : int;  (** array dimensions *)
}

let simple_typ base = { base; targs = []; dims = 0 }

type expr =
  | Name of string
  | Lit_int of string
  | Lit_float of string
  | Lit_str of string
  | Lit_char of string
  | Lit_bool of bool
  | Lit_null
  | Field of expr * string  (** [e.f] *)
  | Index of expr * expr  (** [e[i]] *)
  | Call of { recv : expr option; meth : string; args : expr list }
  | New of typ * expr list
  | New_array of typ * expr list  (** dimensions' length expressions *)
  | Array_init of expr list  (** [{a, b, c}] *)
  | Bin of expr * string * expr
  | Un of string * expr
  | Postfix of expr * string  (** [e++], [e--] *)
  | Assign_e of expr * string * expr  (** assignment as expression *)
  | Ternary of expr * expr * expr
  | Cast of typ * expr
  | Instanceof of expr * typ
  | Class_lit of typ  (** [T.class] *)
  | This
  | Super_call of string * expr list  (** [super.m(args)] *)
  | Lambda_e of string list * lambda_body  (** [x -> e] / [(a,b) -> { .. }] *)

and lambda_body = L_expr of expr | L_block of stmt list

and stmt = { line : int; kind : stmt_kind }

and stmt_kind =
  | Local of typ * (string * expr option) list
  | Expr_stmt of expr
  | If of expr * stmt list * stmt list
  | For of for_init * expr option * expr list * stmt list
  | Foreach of typ * string * expr * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | Return of expr option
  | Throw of expr
  | Try of stmt list * catch list * stmt list
  | Break
  | Continue
  | Block of stmt list
  | Synchronized of expr * stmt list
  | Empty

and catch = { ctype : typ; cbind : string; cbody : stmt list }

and for_init =
  | Fi_local of typ * (string * expr option) list
  | Fi_expr of expr list
  | Fi_none

type member =
  | Field_m of {
      fmods : string list;
      ftype : typ;
      fname : string;
      finit : expr option;
      fline : int;
    }
  | Method_m of {
      mmods : string list;
      rtype : typ option;  (** [None] for constructors *)
      mname : string;
      params : (typ * string) list;
      mbody : stmt list option;  (** [None] for abstract methods *)
      mline : int;
    }
  | Init_m of stmt list  (** static / instance initializer block *)
  | Class_m of cls  (** nested class *)

and cls = {
  cmods : string list;
  ckind : [ `Class | `Interface | `Enum ];
  cname : string;
  cextends : typ option;
  cimplements : typ list;
  members : member list;
  cline : int;
}

type compilation_unit = {
  package : string option;
  imports : string list;
  classes : cls list;
}

(** [iter_stmts f stmts] visits every statement, descending into bodies. *)
let rec iter_stmts f stmts =
  List.iter
    (fun s ->
      f s;
      match s.kind with
      | If (_, a, b) ->
          iter_stmts f a;
          iter_stmts f b
      | For (_, _, _, b) | Foreach (_, _, _, b) | While (_, b) | Do_while (b, _)
      | Block b | Synchronized (_, b) ->
          iter_stmts f b
      | Try (b, catches, fin) ->
          iter_stmts f b;
          List.iter (fun c -> iter_stmts f c.cbody) catches;
          iter_stmts f fin
      | _ -> ())
    stmts
