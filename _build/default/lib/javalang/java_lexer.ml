(** Lexer for the Java subset.  Free-form (no layout tokens); line and block
    comments are skipped; string/char literals keep their unquoted content. *)

type token =
  | Ident of string
  | Keyword of string
  | Int_lit of string
  | Float_lit of string
  | Str_lit of string
  | Char_lit of string
  | Op of string
  | Eof

type loc_token = { tok : token; line : int }

exception Lex_error of string * int

let keywords =
  [
    "abstract"; "assert"; "boolean"; "break"; "byte"; "case"; "catch"; "char";
    "class"; "const"; "continue"; "default"; "do"; "double"; "else"; "enum";
    "extends"; "final"; "finally"; "float"; "for"; "if"; "implements";
    "import"; "instanceof"; "int"; "interface"; "long"; "native"; "new";
    "package"; "private"; "protected"; "public"; "return"; "short"; "static";
    "strictfp"; "super"; "switch"; "synchronized"; "this"; "throw"; "throws";
    "transient"; "try"; "void"; "volatile"; "while"; "true"; "false"; "null";
  ]

let is_keyword s = List.mem s keywords

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let operators =
  [
    ">>>="; "<<="; ">>="; ">>>"; "..."; "->"; "::"; "=="; "!="; "<="; ">=";
    "&&"; "||"; "++"; "--"; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^=";
    "<<"; ">>"; "+"; "-"; "*"; "/"; "%"; "="; "<"; ">"; "!"; "~"; "&"; "|";
    "^"; "?"; ":"; "("; ")"; "["; "]"; "{"; "}"; ";"; ","; "."; "@";
  ]

let tokenize src =
  let n = String.length src in
  let pos = ref 0 and line = ref 1 in
  let out = ref [] in
  let emit tok = out := { tok; line = !line } :: !out in
  let cur () = if !pos < n then Some src.[!pos] else None in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let advance () = incr pos in
  let read_escaped quote =
    advance ();
    let buf = Buffer.create 8 in
    let rec go () =
      match cur () with
      | None -> raise (Lex_error ("unterminated literal", !line))
      | Some '\\' -> (
          advance ();
          match cur () with
          | None -> raise (Lex_error ("unterminated escape", !line))
          | Some c ->
              Buffer.add_char buf
                (match c with 'n' -> '\n' | 't' -> '\t' | c -> c);
              advance ();
              go ())
      | Some c when c = quote -> advance ()
      | Some '\n' -> raise (Lex_error ("newline in literal", !line))
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec loop () =
    match cur () with
    | None -> ()
    | Some '\n' ->
        incr line;
        advance ();
        loop ()
    | Some (' ' | '\t' | '\r') ->
        advance ();
        loop ()
    | Some '/' when peek 1 = Some '/' ->
        while cur () <> Some '\n' && cur () <> None do
          advance ()
        done;
        loop ()
    | Some '/' when peek 1 = Some '*' ->
        advance ();
        advance ();
        let rec skip () =
          match (cur (), peek 1) with
          | Some '*', Some '/' ->
              advance ();
              advance ()
          | Some '\n', _ ->
              incr line;
              advance ();
              skip ()
          | Some _, _ ->
              advance ();
              skip ()
          | None, _ -> raise (Lex_error ("unterminated comment", !line))
        in
        skip ();
        loop ()
    | Some '"' ->
        emit (Str_lit (read_escaped '"'));
        loop ()
    | Some '\'' ->
        emit (Char_lit (read_escaped '\''));
        loop ()
    | Some c when is_digit c ->
        let start = !pos in
        let is_float = ref false in
        let scanning = ref true in
        while !scanning do
          match cur () with
          | Some c when is_digit c || c = '_' -> advance ()
          | Some ('x' | 'X' | 'b' | 'B') when !pos = start + 1 -> advance ()
          | Some ('a' .. 'f' | 'A' .. 'F')
            when String.length src > start + 1
                 && (src.[start + 1] = 'x' || src.[start + 1] = 'X') ->
              advance ()
          | Some '.' when (match peek 1 with Some d -> is_digit d | None -> false) ->
              is_float := true;
              advance ()
          | Some ('e' | 'E')
            when (not
                    (String.length src > start + 1
                    && (src.[start + 1] = 'x' || src.[start + 1] = 'X')))
                 && (match peek 1 with
                    | Some d -> is_digit d || d = '-' || d = '+'
                    | None -> false) ->
              is_float := true;
              advance ();
              advance ()
          | Some ('f' | 'F' | 'd' | 'D') ->
              is_float := true;
              advance ();
              scanning := false
          | Some ('l' | 'L') ->
              advance ();
              scanning := false
          | _ -> scanning := false
        done;
        let text = String.sub src start (!pos - start) in
        emit (if !is_float then Float_lit text else Int_lit text);
        loop ()
    | Some c when is_ident_start c ->
        let start = !pos in
        while (match cur () with Some c -> is_ident_char c | None -> false) do
          advance ()
        done;
        let s = String.sub src start (!pos - start) in
        emit (if is_keyword s then Keyword s else Ident s);
        loop ()
    | Some _ -> (
        let matches op =
          let l = String.length op in
          !pos + l <= n && String.sub src !pos l = op
        in
        match List.find_opt matches operators with
        | Some op ->
            pos := !pos + String.length op;
            emit (Op op);
            loop ()
        | None ->
            raise
              (Lex_error (Printf.sprintf "unexpected character %C" src.[!pos], !line)))
  in
  loop ();
  emit Eof;
  List.rev !out
