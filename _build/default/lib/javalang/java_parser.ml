(** Recursive-descent parser for the Java subset.

    Disambiguation points that genuine Java grammars resolve with cover
    grammars are handled here with bounded backtracking ([attempt]):
    local-variable declarations vs. expression statements, casts vs.
    parenthesized expressions, and generic type arguments vs. comparison
    operators. *)

open Java_ast

exception Parse_error of string * int

type state = { toks : Java_lexer.loc_token array; mutable i : int }

let cur st = st.toks.(st.i)
let peek_tok st = (cur st).tok
let peek_ahead st k =
  if st.i + k < Array.length st.toks then st.toks.(st.i + k).tok else Java_lexer.Eof
let line st = (cur st).line
let advance st = st.i <- st.i + 1
let error st msg = raise (Parse_error (msg, line st))

(** Run [f]; on [Parse_error], restore the cursor and return [None]. *)
let attempt st f =
  let save = st.i in
  try Some (f ())
  with Parse_error _ ->
    st.i <- save;
    None

let accept_op st op =
  match peek_tok st with
  | Java_lexer.Op o when o = op ->
      advance st;
      true
  | _ -> false

let expect_op st op =
  if not (accept_op st op) then error st (Printf.sprintf "expected %S" op)

let accept_kw st kw =
  match peek_tok st with
  | Java_lexer.Keyword k when k = kw ->
      advance st;
      true
  | _ -> false

let expect_kw st kw =
  if not (accept_kw st kw) then error st (Printf.sprintf "expected %S" kw)

let expect_ident st =
  match peek_tok st with
  | Java_lexer.Ident s ->
      advance st;
      s
  | _ -> error st "expected identifier"

let primitive_types =
  [ "boolean"; "byte"; "char"; "short"; "int"; "long"; "float"; "double"; "void" ]

let modifiers =
  [
    "public"; "private"; "protected"; "static"; "final"; "abstract"; "native";
    "synchronized"; "transient"; "volatile"; "strictfp"; "default";
  ]

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_type st : typ =
  let base =
    match peek_tok st with
    | Java_lexer.Keyword k when List.mem k primitive_types ->
        advance st;
        k
    | Java_lexer.Ident _ ->
        let parts = ref [ expect_ident st ] in
        let continue_ = ref true in
        while !continue_ do
          (* Dotted name, but stop before [.class] / [.method(] *)
          match (peek_tok st, peek_ahead st 1) with
          | Java_lexer.Op ".", Java_lexer.Ident _ ->
              advance st;
              parts := expect_ident st :: !parts
          | _ -> continue_ := false
        done;
        String.concat "." (List.rev !parts)
    | _ -> error st "expected type"
  in
  let targs =
    if peek_tok st = Java_lexer.Op "<" then parse_type_args st else []
  in
  let dims = ref 0 in
  while peek_tok st = Java_lexer.Op "[" && peek_ahead st 1 = Java_lexer.Op "]" do
    advance st;
    advance st;
    incr dims
  done;
  { base; targs; dims = !dims }

and parse_type_args st : typ list =
  expect_op st "<";
  if accept_op st ">" then [] (* diamond *)
  else begin
    let parse_arg () =
      if accept_op st "?" then begin
        if accept_kw st "extends" || accept_kw st "super" then
          ignore (parse_type st);
        simple_typ "?"
      end
      else parse_type st
    in
    let args = ref [ parse_arg () ] in
    while accept_op st "," do
      args := parse_arg () :: !args
    done;
    (* '>>' from nested generics arrives as one token; split it. *)
    (match peek_tok st with
    | Java_lexer.Op ">" -> advance st
    | Java_lexer.Op ">>" ->
        st.toks.(st.i) <- { (cur st) with tok = Java_lexer.Op ">" }
    | Java_lexer.Op ">>>" ->
        st.toks.(st.i) <- { (cur st) with tok = Java_lexer.Op ">>" }
    | _ -> error st "expected '>'");
    List.rev !args
  end

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let assign_ops =
  [ "="; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "<<="; ">>="; ">>>=" ]

let rec parse_expr st : expr =
  (* Lambda: [x -> ...] or [(a, b) -> ...]. *)
  (match (peek_tok st, peek_ahead st 1) with
  | Java_lexer.Ident _, Java_lexer.Op "->" -> ()
  | _ -> ());
  match parse_lambda st with Some e -> e | None -> parse_assignment st

and parse_lambda st : expr option =
  match (peek_tok st, peek_ahead st 1) with
  | Java_lexer.Ident p, Java_lexer.Op "->" ->
      advance st;
      advance st;
      Some (Lambda_e ([ p ], parse_lambda_body st))
  | Java_lexer.Op "(", _ ->
      attempt st (fun () ->
          expect_op st "(";
          let params = ref [] in
          if not (accept_op st ")") then begin
            let param () =
              (* optionally typed parameter *)
              match (peek_tok st, peek_ahead st 1) with
              | Java_lexer.Ident _, (Java_lexer.Ident _ | Java_lexer.Op "<") ->
                  ignore (parse_type st);
                  expect_ident st
              | _ -> expect_ident st
            in
            params := [ param () ];
            while accept_op st "," do
              params := param () :: !params
            done;
            expect_op st ")"
          end;
          if peek_tok st <> Java_lexer.Op "->" then error st "not a lambda";
          advance st;
          Lambda_e (List.rev !params, parse_lambda_body st))
  | _ -> None

and parse_lambda_body st =
  if peek_tok st = Java_lexer.Op "{" then L_block (parse_block st)
  else L_expr (parse_expr st)

and parse_assignment st : expr =
  let lhs = parse_ternary st in
  match peek_tok st with
  | Java_lexer.Op o when List.mem o assign_ops ->
      advance st;
      Assign_e (lhs, o, parse_expr st)
  | _ -> lhs

and parse_ternary st : expr =
  let c = parse_binary st 0 in
  if accept_op st "?" then begin
    let a = parse_expr st in
    expect_op st ":";
    let b = parse_expr st in
    Ternary (c, a, b)
  end
  else c

(* Binary operators by increasing precedence level. *)
and binary_levels =
  [|
    [ "||" ];
    [ "&&" ];
    [ "|" ];
    [ "^" ];
    [ "&" ];
    [ "=="; "!=" ];
    [ "<"; ">"; "<="; ">=" ];
    [ "<<"; ">>"; ">>>" ];
    [ "+"; "-" ];
    [ "*"; "/"; "%" ];
  |]

and parse_binary st level : expr =
  if level >= Array.length binary_levels then parse_unary st
  else begin
    let e = ref (parse_binary st (level + 1)) in
    let continue_ = ref true in
    while !continue_ do
      match peek_tok st with
      | Java_lexer.Op o when List.mem o binary_levels.(level) ->
          advance st;
          e := Bin (!e, o, parse_binary st (level + 1))
      | Java_lexer.Keyword "instanceof" when level = 6 ->
          advance st;
          e := Instanceof (!e, parse_type st)
      | _ -> continue_ := false
    done;
    !e
  end

and parse_unary st : expr =
  match peek_tok st with
  | Java_lexer.Op (("!" | "~" | "-" | "+") as o) ->
      advance st;
      Un (o, parse_unary st)
  | Java_lexer.Op (("++" | "--") as o) ->
      advance st;
      Un (o, parse_unary st)
  | Java_lexer.Op "(" -> (
      (* Cast vs parenthesized expression. *)
      let cast =
        attempt st (fun () ->
            expect_op st "(";
            let t = parse_type st in
            expect_op st ")";
            (* A cast must be followed by something that can start a unary
               expression. *)
            match peek_tok st with
            | Java_lexer.Ident _ | Java_lexer.Int_lit _ | Java_lexer.Float_lit _
            | Java_lexer.Str_lit _ | Java_lexer.Char_lit _
            | Java_lexer.Keyword ("new" | "this" | "true" | "false" | "null")
            | Java_lexer.Op ("(" | "!" | "~") ->
                Cast (t, parse_unary st)
            | _ -> error st "not a cast")
      in
      match cast with Some e -> e | None -> parse_postfix st)
  | _ -> parse_postfix st

and parse_postfix st : expr =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match (peek_tok st, peek_ahead st 1) with
    | Java_lexer.Op ".", Java_lexer.Keyword "class" ->
        advance st;
        advance st;
        e := Class_lit (simple_typ (match !e with Name n -> n | _ -> "?"))
    | Java_lexer.Op ".", Java_lexer.Ident m ->
        advance st;
        advance st;
        if peek_tok st = Java_lexer.Op "(" then begin
          let args = parse_call_args st in
          e := Call { recv = Some !e; meth = m; args }
        end
        else e := Field (!e, m)
    | Java_lexer.Op "[", _ ->
        advance st;
        let idx = parse_expr st in
        expect_op st "]";
        e := Index (!e, idx)
    | Java_lexer.Op (("++" | "--") as o), _ ->
        advance st;
        e := Postfix (!e, o)
    | Java_lexer.Op "::", _ ->
        (* method reference: abstract as a field access *)
        advance st;
        let m =
          match peek_tok st with
          | Java_lexer.Ident m ->
              advance st;
              m
          | Java_lexer.Keyword "new" ->
              advance st;
              "new"
          | _ -> error st "expected method reference name"
        in
        e := Field (!e, m)
    | _ -> continue_ := false
  done;
  !e

and parse_call_args st : expr list =
  expect_op st "(";
  if accept_op st ")" then []
  else begin
    let args = ref [ parse_expr st ] in
    while accept_op st "," do
      args := parse_expr st :: !args
    done;
    expect_op st ")";
    List.rev !args
  end

and parse_primary st : expr =
  match peek_tok st with
  | Java_lexer.Ident name ->
      advance st;
      if peek_tok st = Java_lexer.Op "(" then
        let args = parse_call_args st in
        Call { recv = None; meth = name; args }
      else Name name
  | Java_lexer.Int_lit v ->
      advance st;
      Lit_int v
  | Java_lexer.Float_lit v ->
      advance st;
      Lit_float v
  | Java_lexer.Str_lit v ->
      advance st;
      Lit_str v
  | Java_lexer.Char_lit v ->
      advance st;
      Lit_char v
  | Java_lexer.Keyword "true" ->
      advance st;
      Lit_bool true
  | Java_lexer.Keyword "false" ->
      advance st;
      Lit_bool false
  | Java_lexer.Keyword "null" ->
      advance st;
      Lit_null
  | Java_lexer.Keyword "this" ->
      advance st;
      if peek_tok st = Java_lexer.Op "(" then
        let args = parse_call_args st in
        Call { recv = Some This; meth = "<init>"; args }
      else This
  | Java_lexer.Keyword "super" ->
      advance st;
      if accept_op st "." then begin
        let m = expect_ident st in
        if peek_tok st = Java_lexer.Op "(" then Super_call (m, parse_call_args st)
        else Field (Name "super", m)
      end
      else Super_call ("<init>", parse_call_args st)
  | Java_lexer.Keyword "new" -> (
      advance st;
      let t = parse_type st in
      match peek_tok st with
      | Java_lexer.Op "(" ->
          let args = parse_call_args st in
          (* anonymous class body *)
          if peek_tok st = Java_lexer.Op "{" then skip_balanced_braces st;
          New (t, args)
      | Java_lexer.Op "[" ->
          let dims = ref [] in
          while peek_tok st = Java_lexer.Op "[" do
            advance st;
            (match peek_tok st with
            | Java_lexer.Op "]" -> ()
            | _ -> dims := parse_expr st :: !dims);
            expect_op st "]"
          done;
          if peek_tok st = Java_lexer.Op "{" then begin
            let init = parse_array_init st in
            ignore init;
            New_array (t, List.rev !dims)
          end
          else New_array (t, List.rev !dims)
      | _ -> error st "expected '(' or '[' after new")
  | Java_lexer.Op "(" ->
      advance st;
      let e = parse_expr st in
      expect_op st ")";
      e
  | Java_lexer.Op "{" -> Array_init (parse_array_init_items st)
  | Java_lexer.Keyword k when List.mem k primitive_types ->
      (* primitive class literal like [int.class] *)
      advance st;
      if accept_op st "." then begin
        expect_kw st "class";
        Class_lit (simple_typ k)
      end
      else error st "unexpected primitive type in expression"
  | _ -> error st "expected expression"

and parse_array_init st : expr =
  Array_init (parse_array_init_items st)

and parse_array_init_items st : expr list =
  expect_op st "{";
  let items = ref [] in
  if not (accept_op st "}") then begin
    items := [ parse_expr st ];
    while accept_op st "," do
      if peek_tok st <> Java_lexer.Op "}" then items := parse_expr st :: !items
    done;
    expect_op st "}"
  end;
  List.rev !items

and skip_balanced_braces st =
  expect_op st "{";
  let depth = ref 1 in
  while !depth > 0 do
    (match peek_tok st with
    | Java_lexer.Op "{" -> incr depth
    | Java_lexer.Op "}" -> decr depth
    | Java_lexer.Eof -> error st "unterminated block"
    | _ -> ());
    advance st
  done

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and parse_block st : stmt list =
  expect_op st "{";
  let stmts = ref [] in
  while peek_tok st <> Java_lexer.Op "}" do
    if peek_tok st = Java_lexer.Eof then error st "unterminated block";
    stmts := parse_stmt st :: !stmts
  done;
  expect_op st "}";
  List.rev !stmts

and parse_local_decl st : stmt_kind =
  (match peek_tok st with
  | Java_lexer.Keyword "final" -> advance st
  | _ -> ());
  let t = parse_type st in
  let parse_one () =
    let name = expect_ident st in
    let extra_dims = ref 0 in
    while peek_tok st = Java_lexer.Op "[" && peek_ahead st 1 = Java_lexer.Op "]" do
      advance st;
      advance st;
      incr extra_dims
    done;
    let init = if accept_op st "=" then Some (parse_expr st) else None in
    (name, init)
  in
  let decls = ref [ parse_one () ] in
  while accept_op st "," do
    decls := parse_one () :: !decls
  done;
  expect_op st ";";
  (match peek_tok st with _ -> ());
  Local (t, List.rev !decls)

and parse_stmt st : stmt =
  let ln = line st in
  let mk kind = { line = ln; kind } in
  match peek_tok st with
  | Java_lexer.Op "{" -> mk (Block (parse_block st))
  | Java_lexer.Op ";" ->
      advance st;
      mk Empty
  | Java_lexer.Keyword "if" ->
      advance st;
      expect_op st "(";
      let cond = parse_expr st in
      expect_op st ")";
      let then_ = parse_stmt_as_block st in
      let else_ = if accept_kw st "else" then parse_stmt_as_block st else [] in
      mk (If (cond, then_, else_))
  | Java_lexer.Keyword "while" ->
      advance st;
      expect_op st "(";
      let cond = parse_expr st in
      expect_op st ")";
      mk (While (cond, parse_stmt_as_block st))
  | Java_lexer.Keyword "do" ->
      advance st;
      let body = parse_stmt_as_block st in
      expect_kw st "while";
      expect_op st "(";
      let cond = parse_expr st in
      expect_op st ")";
      expect_op st ";";
      mk (Do_while (body, cond))
  | Java_lexer.Keyword "for" -> (
      advance st;
      expect_op st "(";
      (* enhanced for: [for (T x : xs)] *)
      let enhanced =
        attempt st (fun () ->
            (match peek_tok st with
            | Java_lexer.Keyword "final" -> advance st
            | _ -> ());
            let t = parse_type st in
            let name = expect_ident st in
            expect_op st ":";
            let iter = parse_expr st in
            expect_op st ")";
            (t, name, iter))
      in
      match enhanced with
      | Some (t, name, iter) -> mk (Foreach (t, name, iter, parse_stmt_as_block st))
      | None ->
          let init =
            if accept_op st ";" then Fi_none
            else
              match
                attempt st (fun () ->
                    match parse_local_decl st with
                    | Local (t, ds) -> (t, ds)
                    | _ -> error st "unreachable")
              with
              | Some (t, ds) -> Fi_local (t, ds)
              | None ->
                  let es = ref [ parse_expr st ] in
                  while accept_op st "," do
                    es := parse_expr st :: !es
                  done;
                  expect_op st ";";
                  Fi_expr (List.rev !es)
          in
          let cond =
            if peek_tok st = Java_lexer.Op ";" then None else Some (parse_expr st)
          in
          expect_op st ";";
          let update = ref [] in
          if peek_tok st <> Java_lexer.Op ")" then begin
            update := [ parse_expr st ];
            while accept_op st "," do
              update := parse_expr st :: !update
            done
          end;
          expect_op st ")";
          mk (For (init, cond, List.rev !update, parse_stmt_as_block st)))
  | Java_lexer.Keyword "return" ->
      advance st;
      let v = if peek_tok st = Java_lexer.Op ";" then None else Some (parse_expr st) in
      expect_op st ";";
      mk (Return v)
  | Java_lexer.Keyword "throw" ->
      advance st;
      let e = parse_expr st in
      expect_op st ";";
      mk (Throw e)
  | Java_lexer.Keyword "break" ->
      advance st;
      (match peek_tok st with Java_lexer.Ident _ -> advance st | _ -> ());
      expect_op st ";";
      mk Break
  | Java_lexer.Keyword "continue" ->
      advance st;
      (match peek_tok st with Java_lexer.Ident _ -> advance st | _ -> ());
      expect_op st ";";
      mk Continue
  | Java_lexer.Keyword "try" ->
      advance st;
      (* try-with-resources: abstract the resource as a leading local decl *)
      let resources =
        if peek_tok st = Java_lexer.Op "(" then begin
          advance st;
          let rs = ref [] in
          let parse_res () =
            match
              attempt st (fun () ->
                  match parse_resource st with
                  | r -> r)
            with
            | Some r -> rs := r :: !rs
            | None -> ignore (parse_expr st)
          in
          parse_res ();
          while accept_op st ";" do
            if peek_tok st <> Java_lexer.Op ")" then parse_res ()
          done;
          expect_op st ")";
          List.rev !rs
        end
        else []
      in
      let body = parse_block st in
      let catches = ref [] in
      while peek_tok st = Java_lexer.Keyword "catch" do
        advance st;
        expect_op st "(";
        (match peek_tok st with
        | Java_lexer.Keyword "final" -> advance st
        | _ -> ());
        let ctype = parse_type st in
        (* multi-catch [A | B e]: keep the first type *)
        while accept_op st "|" do
          ignore (parse_type st)
        done;
        let cbind = expect_ident st in
        expect_op st ")";
        let cbody = parse_block st in
        catches := { ctype; cbind; cbody } :: !catches
      done;
      let fin = if accept_kw st "finally" then parse_block st else [] in
      mk (Try (resources @ body, List.rev !catches, fin))
  | Java_lexer.Keyword "synchronized" ->
      advance st;
      expect_op st "(";
      let e = parse_expr st in
      expect_op st ")";
      mk (Synchronized (e, parse_block st))
  | Java_lexer.Keyword "assert" ->
      advance st;
      let e = parse_expr st in
      if accept_op st ":" then ignore (parse_expr st);
      expect_op st ";";
      mk (Expr_stmt (Call { recv = None; meth = "assert"; args = [ e ] }))
  | Java_lexer.Keyword "switch" ->
      (* Minimal: parse and abstract as a block of case-body statements. *)
      advance st;
      expect_op st "(";
      let scrutinee = parse_expr st in
      expect_op st ")";
      expect_op st "{";
      let stmts = ref [ { line = ln; kind = Expr_stmt scrutinee } ] in
      while peek_tok st <> Java_lexer.Op "}" do
        match peek_tok st with
        | Java_lexer.Keyword "case" ->
            advance st;
            ignore (parse_expr st);
            expect_op st ":"
        | Java_lexer.Keyword "default" ->
            advance st;
            expect_op st ":"
        | _ -> stmts := parse_stmt st :: !stmts
      done;
      expect_op st "}";
      mk (Block (List.rev !stmts))
  | _ -> (
      (* local variable declaration vs expression statement *)
      match attempt st (fun () -> parse_local_decl st) with
      | Some kind -> mk kind
      | None ->
          let e = parse_expr st in
          expect_op st ";";
          mk (Expr_stmt e))

and parse_resource st : stmt =
  let ln = line st in
  (match peek_tok st with
  | Java_lexer.Keyword "final" -> advance st
  | _ -> ());
  let t = parse_type st in
  let name = expect_ident st in
  expect_op st "=";
  let init = parse_expr st in
  (match peek_tok st with
  | Java_lexer.Op (";" | ")") -> ()
  | _ -> error st "expected ';' or ')'");
  { line = ln; kind = Local (t, [ (name, Some init) ]) }

and parse_stmt_as_block st : stmt list =
  if peek_tok st = Java_lexer.Op "{" then parse_block st else [ parse_stmt st ]

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_modifiers st =
  let mods = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match peek_tok st with
    | Java_lexer.Keyword k when List.mem k modifiers ->
        advance st;
        mods := k :: !mods
    | Java_lexer.Op "@" ->
        (* annotation: skip name and optional arguments *)
        advance st;
        ignore (expect_ident st);
        while accept_op st "." do
          ignore (expect_ident st)
        done;
        if peek_tok st = Java_lexer.Op "(" then begin
          let depth = ref 0 in
          let go = ref true in
          while !go do
            (match peek_tok st with
            | Java_lexer.Op "(" -> incr depth
            | Java_lexer.Op ")" ->
                decr depth;
                if !depth = 0 then go := false
            | Java_lexer.Eof -> error st "unterminated annotation"
            | _ -> ());
            advance st
          done
        end
    | _ -> continue_ := false
  done;
  List.rev !mods

let rec parse_class st : cls =
  let cline = line st in
  let cmods = parse_modifiers st in
  let ckind =
    if accept_kw st "class" then `Class
    else if accept_kw st "interface" then `Interface
    else if accept_kw st "enum" then `Enum
    else error st "expected class, interface or enum"
  in
  let cname = expect_ident st in
  if peek_tok st = Java_lexer.Op "<" then ignore (parse_type_args st);
  let cextends = if accept_kw st "extends" then Some (parse_type st) else None in
  let cimplements =
    if accept_kw st "implements" then begin
      let ts = ref [ parse_type st ] in
      while accept_op st "," do
        ts := parse_type st :: !ts
      done;
      List.rev !ts
    end
    else []
  in
  expect_op st "{";
  (* enum constants *)
  if ckind = `Enum then begin
    let continue_ = ref true in
    while !continue_ do
      match peek_tok st with
      | Java_lexer.Ident _ -> (
          advance st;
          if peek_tok st = Java_lexer.Op "(" then ignore (parse_call_args st);
          if peek_tok st = Java_lexer.Op "{" then skip_balanced_braces st;
          match peek_tok st with
          | Java_lexer.Op "," -> advance st
          | Java_lexer.Op ";" ->
              advance st;
              continue_ := false
          | Java_lexer.Op "}" -> continue_ := false
          | _ -> continue_ := false)
      | Java_lexer.Op ";" ->
          advance st;
          continue_ := false
      | _ -> continue_ := false
    done
  end;
  let members = ref [] in
  while peek_tok st <> Java_lexer.Op "}" do
    if peek_tok st = Java_lexer.Eof then error st "unterminated class body";
    members := parse_member st cname :: !members
  done;
  expect_op st "}";
  { cmods; ckind; cname; cextends; cimplements; members = List.rev !members; cline }

and parse_member st cname : member =
  let mline = line st in
  let mmods = parse_modifiers st in
  match peek_tok st with
  | Java_lexer.Keyword ("class" | "interface" | "enum") ->
      (* put modifiers back conceptually: parse_class re-parses them, but we
         already consumed them; reconstruct by calling the body directly. *)
      let c = parse_class_with_mods st mmods in
      Class_m c
  | Java_lexer.Op "{" -> Init_m (parse_block st)
  | Java_lexer.Op "<" ->
      (* generic method: skip type parameters *)
      ignore (parse_type_args st);
      parse_method_or_field st cname mmods mline
  | _ -> parse_method_or_field st cname mmods mline

and parse_class_with_mods st mods : cls =
  let c = parse_class st in
  { c with cmods = mods @ c.cmods }

and parse_method_or_field st cname mmods mline : member =
  (* Constructor: [Name (] where Name = enclosing class. *)
  match (peek_tok st, peek_ahead st 1) with
  | Java_lexer.Ident n, Java_lexer.Op "(" when n = cname ->
      advance st;
      let params = parse_params st in
      skip_throws st;
      let mbody = Some (parse_block st) in
      Method_m { mmods; rtype = None; mname = "<init>"; params; mbody; mline }
  | _ -> (
      let t = parse_type st in
      let name = expect_ident st in
      if peek_tok st = Java_lexer.Op "(" then begin
        let params = parse_params st in
        skip_throws st;
        let mbody =
          if accept_op st ";" then None
          else if peek_tok st = Java_lexer.Op "{" then Some (parse_block st)
          else error st "expected method body or ';'"
        in
        Method_m { mmods; rtype = Some t; mname = name; params; mbody; mline }
      end
      else begin
        (* field; possibly several declarators — emit the first, re-queue the
           rest by flattening into one Field_m per declarator would change the
           return type; keep the first and parse the others into hidden
           fields is lossy. Instead parse all declarators and synthesize a
           combined marker: simplest is to return a Field_m for the first and
           swallow the rest (the corpus generates one declarator per field). *)
        let finit = if accept_op st "=" then Some (parse_expr st) else None in
        while accept_op st "," do
          let _ = expect_ident st in
          if accept_op st "=" then ignore (parse_expr st)
        done;
        expect_op st ";";
        Field_m { fmods = mmods; ftype = t; fname = name; finit; fline = mline }
      end)

and parse_params st : (typ * string) list =
  expect_op st "(";
  if accept_op st ")" then []
  else begin
    let parse_param () =
      (match peek_tok st with
      | Java_lexer.Keyword "final" -> advance st
      | _ -> ());
      let t = parse_type st in
      let t = if accept_op st "..." then { t with dims = t.dims + 1 } else t in
      let name = expect_ident st in
      let extra = ref 0 in
      while peek_tok st = Java_lexer.Op "[" && peek_ahead st 1 = Java_lexer.Op "]" do
        advance st;
        advance st;
        incr extra
      done;
      ({ t with dims = t.dims + !extra }, name)
    in
    let params = ref [ parse_param () ] in
    while accept_op st "," do
      params := parse_param () :: !params
    done;
    expect_op st ")";
    List.rev !params
  end

and skip_throws st =
  if accept_kw st "throws" then begin
    ignore (parse_type st);
    while accept_op st "," do
      ignore (parse_type st)
    done
  end

(** [parse_compilation_unit src] parses a whole [.java] file. *)
let parse_compilation_unit src : compilation_unit =
  let toks = Array.of_list (Java_lexer.tokenize src) in
  let st = { toks; i = 0 } in
  let package =
    if accept_kw st "package" then begin
      let parts = ref [ expect_ident st ] in
      while accept_op st "." do
        parts := expect_ident st :: !parts
      done;
      expect_op st ";";
      Some (String.concat "." (List.rev !parts))
    end
    else None
  in
  let imports = ref [] in
  while peek_tok st = Java_lexer.Keyword "import" do
    advance st;
    if accept_kw st "static" then ();
    let parts = ref [ expect_ident st ] in
    let continue_ = ref true in
    while !continue_ do
      if accept_op st "." then
        if accept_op st "*" then begin
          parts := "*" :: !parts;
          continue_ := false
        end
        else parts := expect_ident st :: !parts
      else continue_ := false
    done;
    expect_op st ";";
    imports := String.concat "." (List.rev !parts) :: !imports
  done;
  let classes = ref [] in
  while peek_tok st <> Java_lexer.Eof do
    match peek_tok st with
    | Java_lexer.Op ";" -> advance st
    | _ -> classes := parse_class st :: !classes
  done;
  { package; imports = List.rev !imports; classes = List.rev !classes }
