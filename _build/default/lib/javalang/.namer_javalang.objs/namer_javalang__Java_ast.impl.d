lib/javalang/java_ast.ml: List
