lib/javalang/java_parser.ml: Array Java_ast Java_lexer List Printf String
