lib/javalang/java_pretty.ml: Buffer Java_ast List String
