lib/javalang/java_lexer.ml: Buffer List Printf String
