lib/javalang/java_lower.ml: Java_ast List Namer_tree String
