(** Pretty-printing the Java surface AST back to source.

    Testing tool, like {!Namer_pylang.Py_pretty}: the property
    [parse (print (parse src)) ≃ parse src] (compared on lowered trees)
    exercises the lexer, the parser's backtracking disambiguations and the
    AST from both directions. *)

open Java_ast

let rec typ (t : typ) =
  t.base
  ^ (match t.targs with
    | [] -> ""
    | args -> "<" ^ String.concat ", " (List.map typ args) ^ ">")
  ^ String.concat "" (List.init t.dims (fun _ -> "[]"))

let prec_of_binop = function
  | "||" -> 1
  | "&&" -> 2
  | "|" -> 3
  | "^" -> 4
  | "&" -> 5
  | "==" | "!=" -> 6
  | "<" | ">" | "<=" | ">=" -> 7
  | "<<" | ">>" | ">>>" -> 8
  | "+" | "-" -> 9
  | "*" | "/" | "%" -> 10
  | _ -> 10

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec expr ?(ctx = 0) (e : expr) : string =
  let wrap p s = if p < ctx then "(" ^ s ^ ")" else s in
  match e with
  | Name n -> n
  | This -> "this"
  | Lit_int v | Lit_float v -> v
  | Lit_str v -> "\"" ^ escape_string v ^ "\""
  | Lit_char v -> "'" ^ escape_string v ^ "'"
  | Lit_bool b -> string_of_bool b
  | Lit_null -> "null"
  | Field (o, f) -> expr ~ctx:13 o ^ "." ^ f
  | Index (o, i) -> expr ~ctx:13 o ^ "[" ^ expr i ^ "]"
  | Call { recv; meth; args } ->
      let prefix = match recv with Some r -> expr ~ctx:13 r ^ "." | None -> "" in
      prefix ^ meth ^ "(" ^ String.concat ", " (List.map expr args) ^ ")"
  | New (t, args) -> "new " ^ typ t ^ "(" ^ String.concat ", " (List.map expr args) ^ ")"
  | New_array (t, dims) ->
      "new " ^ t.base
      ^ String.concat "" (List.map (fun d -> "[" ^ expr d ^ "]") dims)
      ^ String.concat "" (List.init t.dims (fun _ -> "[]"))
  | Array_init es -> "{" ^ String.concat ", " (List.map expr es) ^ "}"
  | Bin (a, op, b) ->
      let p = prec_of_binop op in
      wrap p (expr ~ctx:p a ^ " " ^ op ^ " " ^ expr ~ctx:(p + 1) b)
  | Un (op, a) -> wrap 11 (op ^ expr ~ctx:11 a)
  | Postfix (a, op) -> wrap 12 (expr ~ctx:12 a ^ op)
  | Assign_e (t, op, v) -> wrap 0 (expr ~ctx:1 t ^ " " ^ op ^ " " ^ expr v)
  | Ternary (c, a, b) ->
      wrap 1 (expr ~ctx:2 c ^ " ? " ^ expr ~ctx:1 a ^ " : " ^ expr ~ctx:1 b)
  | Cast (t, e) -> wrap 11 ("(" ^ typ t ^ ") " ^ expr ~ctx:11 e)
  | Instanceof (e, t) -> wrap 7 (expr ~ctx:8 e ^ " instanceof " ^ typ t)
  | Class_lit t -> typ t ^ ".class"
  | Super_call (m, args) ->
      (if m = "<init>" then "super" else "super." ^ m)
      ^ "(" ^ String.concat ", " (List.map expr args) ^ ")"
  | Lambda_e (params, body) ->
      let ps =
        match params with [ p ] -> p | ps -> "(" ^ String.concat ", " ps ^ ")"
      in
      ps ^ " -> "
      ^ (match body with
        | L_expr e -> expr ~ctx:1 e
        | L_block _ -> "{ }")

let local (t : typ) decls =
  typ t ^ " "
  ^ String.concat ", "
      (List.map
         (fun (name, init) ->
           name ^ match init with Some e -> " = " ^ expr e | None -> "")
         decls)

let rec stmt ~indent (s : stmt) : string list =
  let pad = String.make indent ' ' in
  let line s = [ pad ^ s ] in
  let block body =
    (pad ^ "{") :: List.concat_map (stmt ~indent:(indent + 4)) body @ [ pad ^ "}" ]
  in
  match s.kind with
  | Local (t, decls) -> line (local t decls ^ ";")
  | Expr_stmt e -> line (expr e ^ ";")
  | If (c, a, b) ->
      (pad ^ "if (" ^ expr c ^ ")")
      :: (block a @ match b with [] -> [] | b -> (pad ^ "else") :: block b)
  | For (init, cond, update, body) ->
      let init_s =
        match init with
        | Fi_local (t, decls) -> local t decls
        | Fi_expr es -> String.concat ", " (List.map expr es)
        | Fi_none -> ""
      in
      (pad ^ "for (" ^ init_s ^ "; "
      ^ (match cond with Some c -> expr c | None -> "")
      ^ "; "
      ^ String.concat ", " (List.map expr update)
      ^ ")")
      :: block body
  | Foreach (t, name, iter, body) ->
      (pad ^ "for (" ^ typ t ^ " " ^ name ^ " : " ^ expr iter ^ ")") :: block body
  | While (c, body) -> (pad ^ "while (" ^ expr c ^ ")") :: block body
  | Do_while (body, c) ->
      (pad ^ "do") :: (block body @ [ pad ^ "while (" ^ expr c ^ ");" ])
  | Return (Some e) -> line ("return " ^ expr e ^ ";")
  | Return None -> line "return;"
  | Throw e -> line ("throw " ^ expr e ^ ";")
  | Try (body, catches, fin) ->
      (pad ^ "try")
      :: (block body
         @ List.concat_map
             (fun (c : catch) ->
               (pad ^ "catch (" ^ typ c.ctype ^ " " ^ c.cbind ^ ")") :: block c.cbody)
             catches
         @ match fin with [] -> [] | b -> (pad ^ "finally") :: block b)
  | Break -> line "break;"
  | Continue -> line "continue;"
  | Block body -> block body
  | Synchronized (e, body) -> (pad ^ "synchronized (" ^ expr e ^ ")") :: block body
  | Empty -> line ";"

let rec member ~indent (cname : string) (m : member) : string list =
  let pad = String.make indent ' ' in
  let mods ms = match ms with [] -> "" | ms -> String.concat " " ms ^ " " in
  match m with
  | Field_m { fmods; ftype; fname; finit; _ } ->
      [
        pad ^ mods fmods ^ typ ftype ^ " " ^ fname
        ^ (match finit with Some e -> " = " ^ expr e | None -> "")
        ^ ";";
      ]
  | Method_m { mmods; rtype; mname; params; mbody; _ } ->
      let name = if mname = "<init>" then cname else mname in
      let head =
        pad ^ mods mmods
        ^ (match rtype with Some t -> typ t ^ " " | None -> "")
        ^ name ^ "("
        ^ String.concat ", " (List.map (fun (t, n) -> typ t ^ " " ^ n) params)
        ^ ")"
      in
      (match mbody with
      | Some body ->
          (head ^ " {")
          :: (List.concat_map (stmt ~indent:(indent + 4)) body @ [ pad ^ "}" ])
      | None -> [ head ^ ";" ])
  | Init_m body ->
      (pad ^ "{") :: (List.concat_map (stmt ~indent:(indent + 4)) body @ [ pad ^ "}" ])
  | Class_m c -> cls ~indent c

and cls ~indent (c : cls) : string list =
  let pad = String.make indent ' ' in
  let mods = match c.cmods with [] -> "" | ms -> String.concat " " ms ^ " " in
  let kw =
    match c.ckind with `Class -> "class" | `Interface -> "interface" | `Enum -> "enum"
  in
  let head =
    pad ^ mods ^ kw ^ " " ^ c.cname
    ^ (match c.cextends with Some t -> " extends " ^ typ t | None -> "")
    ^ (match c.cimplements with
      | [] -> ""
      | ts -> " implements " ^ String.concat ", " (List.map typ ts))
    ^ " {"
  in
  head
  :: (List.concat_map (member ~indent:(indent + 4) c.cname) c.members @ [ pad ^ "}" ])

(** Render a whole compilation unit. *)
let compilation_unit (u : compilation_unit) : string =
  let package =
    match u.package with Some p -> [ "package " ^ p ^ ";"; "" ] | None -> []
  in
  let imports = List.map (fun i -> "import " ^ i ^ ";") u.imports in
  let imports = if imports = [] then [] else imports @ [ "" ] in
  String.concat "\n" (package @ imports @ List.concat_map (cls ~indent:0) u.classes)
  ^ "\n"
