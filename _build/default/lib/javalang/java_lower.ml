(** Lowering Java surface syntax to generic trees.

    Shares the node vocabulary of {!Namer_pylang.Py_lower} wherever the
    construct is common ([Call], [AttributeLoad], [Attr], [NameLoad],
    [NameStore], [Num], [Str], [Bool], [Assign]) so name patterns and the
    rest of the pipeline are language-independent, and adds Java-specific
    kinds: [TypeRef], [LocalVar], [FieldDef], [MethodDef], [New], [Catch],
    [Throw], [ForEach].  Example — Table 6's [} catch (Throwable e) {]
    becomes [(Catch (TypeRef Throwable) (NameStore e))]. *)

open Java_ast
module Tree = Namer_tree.Tree

(** Strip the package qualifier: patterns generalize over simple names. *)
let simple_name base =
  match String.rindex_opt base '.' with
  | Some i -> String.sub base (i + 1) (String.length base - i - 1)
  | None -> base

let type_tree (t : typ) : Tree.t =
  let name = simple_name t.base ^ String.concat "" (List.init t.dims (fun _ -> "[]")) in
  Tree.node "TypeRef" [ Tree.leaf name ]

let rec lower_expr (e : expr) : Tree.t =
  match e with
  | Name n -> Tree.node "NameLoad" [ Tree.leaf n ]
  | This -> Tree.node "NameLoad" [ Tree.leaf "this" ]
  | Lit_int v -> Tree.node "Num" [ Tree.leaf v ]
  | Lit_float v -> Tree.node "Num" [ Tree.leaf v ]
  | Lit_str v -> Tree.node "Str" [ Tree.leaf v ]
  | Lit_char v -> Tree.node "Str" [ Tree.leaf v ]
  | Lit_bool b -> Tree.node "Bool" [ Tree.leaf (if b then "true" else "false") ]
  | Lit_null -> Tree.node "NoneLit" [ Tree.leaf "null" ]
  | Field (obj, f) ->
      Tree.node "AttributeLoad" [ lower_expr obj; Tree.node "Attr" [ Tree.leaf f ] ]
  | Index (obj, idx) -> Tree.node "SubscriptLoad" [ lower_expr obj; lower_expr idx ]
  | Call { recv; meth; args } ->
      let func =
        match recv with
        | Some r ->
            Tree.node "AttributeLoad" [ lower_expr r; Tree.node "Attr" [ Tree.leaf meth ] ]
        | None -> Tree.node "NameLoad" [ Tree.leaf meth ]
      in
      Tree.node "Call" (func :: List.map lower_expr args)
  | New (t, args) -> Tree.node "New" (type_tree t :: List.map lower_expr args)
  | New_array (t, dims) -> Tree.node "NewArray" (type_tree t :: List.map lower_expr dims)
  | Array_init es -> Tree.node "List" (List.map lower_expr es)
  | Bin (a, op, b) -> Tree.node "BinOp" [ lower_expr a; Tree.leaf op; lower_expr b ]
  | Un (op, a) -> Tree.node "UnaryOp" [ Tree.leaf op; lower_expr a ]
  | Postfix (a, op) -> Tree.node "UnaryOp" [ Tree.leaf op; lower_expr a ]
  | Assign_e (t, op, v) ->
      if op = "=" then Tree.node "Assign" [ lower_store t; lower_expr v ]
      else Tree.node "AugAssign" [ lower_store t; Tree.leaf op; lower_expr v ]
  | Ternary (c, a, b) ->
      Tree.node "BoolOp" [ Tree.leaf "ifexp"; lower_expr a; lower_expr c; lower_expr b ]
  | Cast (t, e) -> Tree.node "Cast" [ type_tree t; lower_expr e ]
  | Instanceof (e, t) -> Tree.node "Compare" [ lower_expr e; Tree.leaf "instanceof"; type_tree t ]
  | Class_lit t -> Tree.node "ClassLit" [ type_tree t ]
  | Super_call (m, args) ->
      Tree.node "Call"
        (Tree.node "AttributeLoad"
           [ Tree.node "NameLoad" [ Tree.leaf "super" ]; Tree.node "Attr" [ Tree.leaf m ] ]
        :: List.map lower_expr args)
  | Lambda_e (params, body) ->
      Tree.node "Lambda"
        (List.map (fun p -> Tree.node "NameParam" [ Tree.leaf p ]) params
        @
        match body with
        | L_expr e -> [ lower_expr e ]
        | L_block _ -> [ Tree.node "Body" [] ])

and lower_store (e : expr) : Tree.t =
  match e with
  | Name n -> Tree.node "NameStore" [ Tree.leaf n ]
  | This -> Tree.node "NameStore" [ Tree.leaf "this" ]
  | Field (obj, f) ->
      Tree.node "AttributeStore" [ lower_expr obj; Tree.node "Attr" [ Tree.leaf f ] ]
  | Index (obj, idx) -> Tree.node "SubscriptStore" [ lower_expr obj; lower_expr idx ]
  | e -> lower_expr e

let local_tree (t : typ) (decls : (string * expr option) list) : Tree.t =
  Tree.node "LocalVar"
    (type_tree t
    :: List.concat_map
         (fun (name, init) ->
           Tree.node "NameStore" [ Tree.leaf name ]
           :: (match init with Some e -> [ lower_expr e ] | None -> []))
         decls)

(** Header tree of a statement (bodies excluded, as in the Python lowering).
    Classic [for] headers include init/condition/update — Table 6 Example 2
    reports [for (double i = 1; i < n; i++)] as one statement. *)
let header_tree (s : stmt) : Tree.t =
  match s.kind with
  | Local (t, decls) -> local_tree t decls
  | Expr_stmt e -> lower_expr e
  | If (c, _, _) -> Tree.node "If" [ lower_expr c ]
  | For (init, cond, update, _) ->
      let init_t =
        match init with
        | Fi_local (t, decls) -> [ local_tree t decls ]
        | Fi_expr es -> List.map lower_expr es
        | Fi_none -> []
      in
      Tree.node "For"
        (init_t
        @ (match cond with Some c -> [ lower_expr c ] | None -> [])
        @ List.map lower_expr update)
  | Foreach (t, name, iter, _) ->
      Tree.node "ForEach"
        [ type_tree t; Tree.node "NameStore" [ Tree.leaf name ]; lower_expr iter ]
  | While (c, _) -> Tree.node "While" [ lower_expr c ]
  | Do_while (_, c) -> Tree.node "DoWhile" [ lower_expr c ]
  | Return (Some e) -> Tree.node "Return" [ lower_expr e ]
  | Return None -> Tree.node "Return" []
  | Throw e -> Tree.node "Throw" [ lower_expr e ]
  | Try (_, catches, _) ->
      Tree.node "Try"
        (List.map
           (fun c ->
             Tree.node "Catch"
               [ type_tree c.ctype; Tree.node "NameStore" [ Tree.leaf c.cbind ] ])
           catches)
  | Break -> Tree.node "Break" []
  | Continue -> Tree.node "Continue" []
  | Block _ -> Tree.node "Block" []
  | Synchronized (e, _) -> Tree.node "Synchronized" [ lower_expr e ]
  | Empty -> Tree.node "Empty" []

let param_trees params =
  List.map
    (fun (t, name) ->
      Tree.node "Param" [ type_tree t; Tree.node "NameParam" [ Tree.leaf name ] ])
    params

(** One program statement with its context, mirroring
    {!Namer_pylang.Py_lower.stmt_info}. *)
type stmt_info = {
  tree : Tree.t;
  line : int;
  enclosing_class : string option;
  enclosing_function : string option;
  surface : stmt option;  (** [None] for field/method-header pseudo-statements *)
}

(** Enumerate every program statement in a compilation unit: field
    declarations, method headers, and every statement in method bodies. *)
let lower_unit (u : compilation_unit) : stmt_info list =
  let out = ref [] in
  let emit tree line cls fn surface =
    out :=
      { tree; line; enclosing_class = cls; enclosing_function = fn; surface }
      :: !out
  in
  let rec walk_stmts ~cls ~fn stmts =
    List.iter
      (fun s ->
        emit (header_tree s) s.line cls fn (Some s);
        match s.kind with
        | If (_, a, b) ->
            walk_stmts ~cls ~fn a;
            walk_stmts ~cls ~fn b
        | For (_, _, _, b)
        | Foreach (_, _, _, b)
        | While (_, b)
        | Do_while (b, _)
        | Block b
        | Synchronized (_, b) ->
            walk_stmts ~cls ~fn b
        | Try (b, catches, fin) ->
            walk_stmts ~cls ~fn b;
            List.iter (fun c -> walk_stmts ~cls ~fn c.cbody) catches;
            walk_stmts ~cls ~fn fin
        | _ -> ())
      stmts
  in
  let rec walk_class (c : cls) =
    let cls = Some c.cname in
    emit
      (Tree.node "ClassDef"
         (Tree.node "ClassName" [ Tree.leaf c.cname ]
         :: ((match c.cextends with Some t -> [ type_tree t ] | None -> [])
            @ List.map type_tree c.cimplements)))
      c.cline cls None None;
    List.iter
      (fun m ->
        match m with
        | Field_m { ftype; fname; finit; fline; _ } ->
            emit
              (Tree.node "FieldDef"
                 (type_tree ftype
                 :: Tree.node "NameStore" [ Tree.leaf fname ]
                 :: (match finit with Some e -> [ lower_expr e ] | None -> [])))
              fline cls None None
        | Method_m { rtype; mname; params; mbody; mline; _ } ->
            let fn = Some mname in
            emit
              (Tree.node "MethodDef"
                 ((match rtype with Some t -> [ type_tree t ] | None -> [])
                 @ (Tree.node "FuncName" [ Tree.leaf mname ] :: param_trees params)))
              mline cls fn None;
            (match mbody with Some body -> walk_stmts ~cls ~fn body | None -> ())
        | Init_m body -> walk_stmts ~cls ~fn:(Some "<clinit>") body
        | Class_m nested -> walk_class nested)
      c.members
  in
  List.iter walk_class u.classes;
  List.rev !out

(** Whole-unit tree (bodies nested) for commit diffing. *)
let unit_tree (u : compilation_unit) : Tree.t =
  let rec stmt_tree (s : stmt) : Tree.t =
    match s.kind with
    | If (c, a, b) ->
        Tree.node "If"
          ([ lower_expr c; Tree.node "Body" (List.map stmt_tree a) ]
          @ match b with [] -> [] | b -> [ Tree.node "Else" (List.map stmt_tree b) ])
    | For (_, _, _, body) | Foreach (_, _, _, body) | While (_, body)
    | Do_while (body, _) | Block body | Synchronized (_, body) ->
        Tree.node (match s.kind with For _ -> "For" | Foreach _ -> "ForEach"
                   | While _ -> "While" | Do_while _ -> "DoWhile"
                   | Synchronized _ -> "Synchronized" | _ -> "Block")
          (header_tree s :: [ Tree.node "Body" (List.map stmt_tree body) ])
    | Try (body, catches, fin) ->
        Tree.node "Try"
          (Tree.node "Body" (List.map stmt_tree body)
           :: List.map
                (fun c ->
                  Tree.node "Catch"
                    [
                      type_tree c.ctype;
                      Tree.node "NameStore" [ Tree.leaf c.cbind ];
                      Tree.node "Body" (List.map stmt_tree c.cbody);
                    ])
                catches
          @ match fin with [] -> [] | b -> [ Tree.node "Finally" (List.map stmt_tree b) ])
    | _ -> header_tree s
  in
  let rec class_tree (c : cls) : Tree.t =
    Tree.node "ClassDef"
      (Tree.node "ClassName" [ Tree.leaf c.cname ]
      :: ((match c.cextends with Some t -> [ type_tree t ] | None -> [])
         @ List.map type_tree c.cimplements
         @ List.map
             (fun m ->
               match m with
               | Field_m { ftype; fname; finit; _ } ->
                   Tree.node "FieldDef"
                     (type_tree ftype
                     :: Tree.node "NameStore" [ Tree.leaf fname ]
                     :: (match finit with Some e -> [ lower_expr e ] | None -> []))
               | Method_m { rtype; mname; params; mbody; _ } ->
                   Tree.node "MethodDef"
                     ((match rtype with Some t -> [ type_tree t ] | None -> [])
                     @ (Tree.node "FuncName" [ Tree.leaf mname ] :: param_trees params)
                     @ [
                         Tree.node "Body"
                           (match mbody with
                           | Some body -> List.map stmt_tree body
                           | None -> []);
                       ])
               | Init_m body -> Tree.node "Initializer" (List.map stmt_tree body)
               | Class_m nested -> class_tree nested)
             c.members))
  in
  Tree.node "CompilationUnit" (List.map class_tree u.classes)
