(** Training and evaluation pipelines for the baselines (§5.6).

    Mirrors the paper's protocol:
    + train on synthetic data harvested from the corpus (mask-and-predict
      over clean statements — the supervision synthetic misuse provides);
    + measure synthetic-test accuracy (classification of perturbed vs clean,
      and repair accuracy) to confirm the models learned the task;
    + scan the *unmodified* corpus: every slot where the model prefers a
      different candidate with enough confidence becomes a misuse report;
    + grade reports with the oracle; confidence thresholds are tuned so the
      baselines emit ~5× fewer reports than Namer (as the paper does). *)

module Prng = Namer_util.Prng

type trained = {
  model_name : string;
  predict : Sample.t -> Models.prediction;
}

type synthetic_accuracy = {
  classification : float;  (** flagged ⇔ actually perturbed *)
  repair : float;  (** correct candidate chosen on perturbed samples *)
}

let flag_threshold = 0.5

(** Train a model (selected by [which]) on [samples]; returns the
    prediction closure. *)
let train ~(which : [ `Ggnn | `Great ]) ~prng ~(epochs : int)
    (samples : Sample.t list) : trained =
  let batched epoch_samples train_batch =
    let arr = Array.of_list epoch_samples in
    Prng.shuffle prng arr;
    let batch = ref [] and losses = ref [] in
    Array.iter
      (fun s ->
        batch := s :: !batch;
        if List.length !batch = 8 then begin
          losses := train_batch !batch :: !losses;
          batch := []
        end)
      arr;
    if !batch <> [] then losses := train_batch !batch :: !losses;
    Namer_util.Stats.mean !losses
  in
  match which with
  | `Ggnn ->
      let m = Models.Ggnn.create ~prng in
      for _ = 1 to epochs do
        ignore (batched samples (Models.Ggnn.train_batch m))
      done;
      { model_name = Models.Ggnn.name; predict = Models.Ggnn.predict m }
  | `Great ->
      let m = Models.Great.create ~prng in
      for _ = 1 to epochs do
        ignore (batched samples (Models.Great.train_batch m))
      done;
      { model_name = Models.Great.name; predict = Models.Great.predict m }

(** Accuracy on a held-out set, half of which gets a planted misuse. *)
let synthetic_accuracy ~prng (t : trained) (held_out : Sample.t list) :
    synthetic_accuracy =
  let cls_ok = ref 0 and cls_n = ref 0 in
  let rep_ok = ref 0 and rep_n = ref 0 in
  List.iteri
    (fun i s ->
      let s', buggy =
        if i mod 2 = 0 then (s, false)
        else
          match Sample.perturb ~prng s with
          | Some p -> (p, true)
          | None -> (s, false)
      in
      let p = t.predict s' in
      (* the model flags a bug when it prefers a candidate different from
         what is written, confidently *)
      let flags =
        (not (String.equal s'.Sample.candidates.(p.Models.cand) (Sample.current s')))
        && p.Models.confidence > flag_threshold
      in
      incr cls_n;
      if flags = buggy then incr cls_ok;
      if buggy then begin
        incr rep_n;
        if p.Models.cand = s'.Sample.target then incr rep_ok
      end)
    held_out;
  {
    classification = float_of_int !cls_ok /. float_of_int (max 1 !cls_n);
    repair = float_of_int !rep_ok /. float_of_int (max 1 !rep_n);
  }

(** One misuse report on unmodified code. *)
type report = {
  file : string;
  line : int;
  found : string;  (** the variable written in the code *)
  suggested : string;  (** the model's preferred candidate *)
  confidence : float;
}

(** Scan unmodified samples; returns reports sorted by descending
    confidence (callers truncate to tune report volume). *)
let scan (t : trained) (samples : Sample.t list) : report list =
  List.filter_map
    (fun (s : Sample.t) ->
      let p = t.predict s in
      let suggested = s.Sample.candidates.(p.Models.cand) in
      let found = Sample.current s in
      if (not (String.equal suggested found)) && p.Models.confidence > flag_threshold
      then
        Some
          {
            file = s.Sample.file;
            line = s.Sample.line;
            found;
            suggested;
            confidence = p.Models.confidence;
          }
      else None)
    samples
  |> List.sort (fun a b -> compare b.confidence a.confidence)

(** Grade reports with the oracle (subtoken-level match, like Namer's). *)
let grade_reports (oracle : Namer_corpus.Corpus.Oracle.t) (reports : report list) =
  List.fold_left
    (fun (sem, qual, fp) r ->
      (* variable-level suggestion: compare on the differing subtoken *)
      let found, suggested =
        match
          Namer_tree.Treediff.confusing_subtoken_pairs (Namer_tree.Tree.leaf r.found)
            (Namer_tree.Tree.leaf r.suggested)
        with
        | [ (w1, w2) ] -> (w1, w2)
        | _ -> (r.found, r.suggested)
      in
      match
        Namer_corpus.Corpus.Oracle.grade oracle ~file:r.file ~line:r.line ~found
          ~suggested ~symmetric:false
      with
      | Namer_corpus.Corpus.Oracle.True_issue Namer_corpus.Issue.Semantic_defect ->
          (sem + 1, qual, fp)
      | Namer_corpus.Corpus.Oracle.True_issue (Namer_corpus.Issue.Code_quality _) ->
          (sem, qual + 1, fp)
      | _ -> (sem, qual, fp + 1))
    (0, 0, 0) reports
