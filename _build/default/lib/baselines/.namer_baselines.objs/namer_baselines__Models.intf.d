lib/baselines/models.mli: Namer_util Sample
