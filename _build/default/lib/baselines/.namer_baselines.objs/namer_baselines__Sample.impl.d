lib/baselines/sample.ml: Array Hashtbl List Namer_core Namer_corpus Namer_tree Namer_util String
