lib/baselines/sample.mli: Namer_corpus Namer_tree Namer_util
