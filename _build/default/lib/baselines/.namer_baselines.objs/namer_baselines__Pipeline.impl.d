lib/baselines/pipeline.ml: Array List Models Namer_corpus Namer_tree Namer_util Sample String
