lib/baselines/pipeline.mli: Models Namer_corpus Namer_util Sample
