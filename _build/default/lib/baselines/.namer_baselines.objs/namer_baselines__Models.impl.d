lib/baselines/models.ml: Array Hashtbl List Namer_nn Namer_tree Namer_util Sample String
