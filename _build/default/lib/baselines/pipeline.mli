(** Training and evaluation pipelines for the GGNN/Great baselines (§5.6):
    train on mask-and-predict supervision, measure synthetic accuracy on
    half-perturbed held-out sets, scan unmodified code for confident
    disagreements, and grade the reports with the corpus oracle. *)

type trained = { model_name : string; predict : Sample.t -> Models.prediction }

type synthetic_accuracy = {
  classification : float;  (** flagged ⇔ actually perturbed *)
  repair : float;  (** correct candidate chosen on perturbed samples *)
}

val flag_threshold : float

val train :
  which:[ `Ggnn | `Great ] -> prng:Namer_util.Prng.t -> epochs:int ->
  Sample.t list -> trained

val synthetic_accuracy :
  prng:Namer_util.Prng.t -> trained -> Sample.t list -> synthetic_accuracy

(** One misuse report on unmodified code. *)
type report = {
  file : string;
  line : int;
  found : string;
  suggested : string;
  confidence : float;
}

(** Confident disagreements, sorted by descending confidence (truncate to
    tune report volume, as the paper does). *)
val scan : trained -> Sample.t list -> report list

(** (semantic, quality, false positive) counts under the oracle. *)
val grade_reports : Namer_corpus.Corpus.Oracle.t -> report list -> int * int * int
