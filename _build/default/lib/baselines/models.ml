(** The two deep-learning baselines of §5.6, re-implemented at CPU scale:

    - {!Ggnn}: gated graph neural network (Allamanis et al., ICLR 2018) —
      typed message passing over the statement's AST graph (child / parent /
      next-leaf / prev-leaf / same-name edges) with GRU state updates;
    - {!Great}: relation-biased transformer (Hellendoorn et al., ICLR 2020)
      — self-attention over the token sequence whose scores carry additive
      biases for structural relations.

    Both predict the variable belonging in a masked slot from a candidate
    set, the joint localization-and-repair surrogate described in
    {!Sample}.  Capacities are scaled to this corpus (dim 32, thousands of
    samples) — the paper's point is distributional, not capacity-bound: a
    model that aces synthetic misuse still misfires on real naming issues. *)

module A = Namer_nn.Autograd
module Params = Namer_nn.Params
module Layers = Namer_nn.Layers
module Tree = Namer_tree.Tree
module Prng = Namer_util.Prng

let vocab_size = 512
let dim = 32
let slot_token = "#SLOT#"

(* Stable hashed vocabulary (OCaml's Hashtbl.hash is deterministic). *)
let token_id (s : string) = Hashtbl.hash s mod vocab_size

type prediction = { cand : int; confidence : float }

(* Masked leaf values of a sample. *)
let masked_leaves (s : Sample.t) =
  Array.mapi (fun i v -> if i = s.Sample.slot then slot_token else v) s.Sample.leaves

(* Candidate scoring, shared by both models: score(c) = proj(state)·emb(c). *)
let candidate_scores tape ~embed ~proj state (s : Sample.t) =
  let projected = Layers.Dense.forward proj tape state in
  Array.to_list s.Sample.candidates
  |> List.map (fun c -> A.dot tape projected (A.row tape embed (token_id c)))

let predict_with ~forward t (s : Sample.t) =
  let tape = A.tape () in
  let scores = forward t tape s in
  let cand = A.argmax_scores scores in
  let probs = A.softmax_probs scores in
  { cand; confidence = List.nth probs cand }

let train_batch_with ~forward ~store t (batch : Sample.t list) =
  let total = ref 0.0 in
  List.iter
    (fun s ->
      let tape = A.tape () in
      let scores = forward t tape s in
      let loss = A.softmax_cross_entropy tape scores ~target:s.Sample.target in
      total := !total +. loss.A.data.(0);
      A.backward tape loss)
    batch;
  Params.adam_step ~lr:2e-3 store;
  !total /. float_of_int (max 1 (List.length batch))

(* ------------------------------------------------------------------ *)
(* GGNN                                                                *)
(* ------------------------------------------------------------------ *)

module Ggnn = struct
  let name = "GGNN"

  let n_edge_types = 5 (* child, parent, next-leaf, prev-leaf, same-name *)
  let n_steps = 2

  type t = {
    store : Params.store;
    embed : Params.mat;
    edge_w : Params.mat array;  (** one transform per edge type *)
    gru : Layers.Gru.t;
    proj : Layers.Dense.t;
  }

  let create ~prng =
    let store = Params.create ~prng in
    {
      store;
      embed = Params.mat store ~rows:vocab_size ~cols:dim;
      edge_w = Array.init n_edge_types (fun _ -> Params.mat store ~rows:dim ~cols:dim);
      gru = Layers.Gru.create store ~dim;
      proj = Layers.Dense.create store ~input:dim ~output:dim;
    }

  (* Build the graph: nodes in pre-order; returns (values, typed edges,
     slot node index). *)
  let graph_of (s : Sample.t) =
    let values = ref [] and edges = ref [] in
    let leaf_nodes = ref [] in
    let counter = ref (-1) and leaf_counter = ref (-1) in
    let rec go parent (t : Tree.t) =
      incr counter;
      let me = !counter in
      values := t.Tree.value :: !values;
      (match parent with
      | Some p ->
          edges := (p, me, 0) :: (me, p, 1) :: !edges (* child / parent *)
      | None -> ());
      if Tree.is_leaf t then begin
        incr leaf_counter;
        if !leaf_counter = s.Sample.slot then
          (* the slot leaf is masked *)
          values := slot_token :: List.tl !values;
        leaf_nodes := me :: !leaf_nodes
      end
      else List.iter (go (Some me)) t.Tree.children
    in
    go None s.Sample.tree;
    let leaves = Array.of_list (List.rev !leaf_nodes) in
    for i = 0 to Array.length leaves - 2 do
      edges := (leaves.(i), leaves.(i + 1), 2) :: (leaves.(i + 1), leaves.(i), 3) :: !edges
    done;
    let values = Array.of_list (List.rev !values) in
    (* same-name edges between equal-valued leaves *)
    for i = 0 to Array.length leaves - 1 do
      for j = i + 1 to Array.length leaves - 1 do
        if String.equal values.(leaves.(i)) values.(leaves.(j)) then
          edges := (leaves.(i), leaves.(j), 4) :: (leaves.(j), leaves.(i), 4) :: !edges
      done
    done;
    let slot_node =
      leaves.(s.Sample.slot)
    in
    (values, !edges, slot_node)

  let forward t tape (s : Sample.t) =
    let values, edges, slot_node = graph_of s in
    let n = Array.length values in
    let states =
      Array.init n (fun i -> A.row tape t.embed (token_id values.(i)))
    in
    for _step = 1 to n_steps do
      let incoming = Array.make n [] in
      List.iter
        (fun (src, dst, ty) ->
          incoming.(dst) <- A.matvec tape t.edge_w.(ty) states.(src) :: incoming.(dst))
        edges;
      let next =
        Array.init n (fun i ->
            match incoming.(i) with
            | [] -> states.(i)
            | msgs ->
                let msg = A.sum_vecs tape msgs in
                Layers.Gru.step t.gru tape ~input:msg ~state:states.(i))
      in
      Array.blit next 0 states 0 n
    done;
    candidate_scores tape ~embed:t.embed ~proj:t.proj states.(slot_node) s

  let train_batch t batch = train_batch_with ~forward ~store:t.store t batch
  let predict t s = predict_with ~forward t s
end

(* ------------------------------------------------------------------ *)
(* Great                                                               *)
(* ------------------------------------------------------------------ *)

module Great = struct
  let name = "Great"

  let n_layers = 2
  let max_pos = 48

  type t = {
    store : Params.store;
    embed : Params.mat;
    pos : Params.mat;
    blocks : (Layers.Attention.t * Layers.Dense.t) array;
    proj : Layers.Dense.t;
  }

  let create ~prng =
    let store = Params.create ~prng in
    {
      store;
      embed = Params.mat store ~rows:vocab_size ~cols:dim;
      pos = Params.mat store ~rows:max_pos ~cols:dim;
      blocks =
        Array.init n_layers (fun _ ->
            ( Layers.Attention.create store ~dim,
              Layers.Dense.create store ~input:dim ~output:dim ));
      proj = Layers.Dense.create store ~input:dim ~output:dim;
    }

  let forward t tape (s : Sample.t) =
    let leaves = masked_leaves s in
    let n = min (Array.length leaves) max_pos in
    let tokens = Array.sub leaves 0 n in
    let slot = min s.Sample.slot (n - 1) in
    (* relation biases: adjacency and same-token occurrences *)
    let rel_bias i j =
      if i = j then 0.0
      else if abs (i - j) = 1 then 0.5
      else if String.equal tokens.(i) tokens.(j) then 1.0
      else 0.0
    in
    let states =
      ref
        (Array.to_list
           (Array.mapi
              (fun i v ->
                A.add tape (A.row tape t.embed (token_id v)) (A.row tape t.pos i))
              tokens))
    in
    Array.iter
      (fun (attn, ffn) ->
        let attended = Layers.Attention.forward attn tape ~rel_bias !states in
        states :=
          List.map
            (fun h -> A.add tape h (A.relu tape (Layers.Dense.forward ffn tape h)))
            attended)
      t.blocks;
    let slot_state = List.nth !states slot in
    candidate_scores tape ~embed:t.embed ~proj:t.proj slot_state s

  let train_batch t batch = train_batch_with ~forward ~store:t.store t batch
  let predict t s = predict_with ~forward t s
end
