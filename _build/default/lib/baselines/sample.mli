(** Variable-misuse samples for the §5.6 deep-learning baselines: a
    statement tree with one variable occurrence designated as the slot, a
    candidate set from the enclosing file, and the correct candidate.
    Clean samples come straight from the corpus (mask-and-predict);
    [perturb] plants the synthetic misuse used for test sets. *)

type t = {
  tree : Namer_tree.Tree.t;
  leaves : string array;
  slot : int;  (** leaf index of the occurrence under test *)
  candidates : string array;
  target : int;  (** index of the correct candidate *)
  file : string;
  line : int;
}

(** The variable written at the slot. *)
val current : t -> string

(** Whether the written variable differs from the target (planted bug). *)
val is_bug : t -> bool

(** Leaf positions that are variable usages (NameLoad leaves). *)
val variable_slots : Namer_tree.Tree.t -> (int * string) list

val max_candidates : int

(** Harvest clean samples from a corpus (deterministic given [prng]). *)
val harvest :
  prng:Namer_util.Prng.t -> max_samples:int -> Namer_corpus.Corpus.t -> t list

(** Plant a synthetic misuse; [None] if no wrong candidate exists. *)
val perturb : prng:Namer_util.Prng.t -> t -> t option
