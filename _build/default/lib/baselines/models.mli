(** The §5.6 baselines at CPU scale: {!Ggnn} (typed message passing with GRU
    updates over the statement's AST graph) and {!Great} (relation-biased
    self-attention over the token sequence).  Both score the candidate set
    for a masked variable slot. *)

val vocab_size : int
val dim : int
val slot_token : string

(** Stable hashed vocabulary id. *)
val token_id : string -> int

type prediction = { cand : int;  (** candidate index *) confidence : float }

module Ggnn : sig
  type t

  val name : string
  val n_edge_types : int
  val n_steps : int
  val create : prng:Namer_util.Prng.t -> t

  (** Average loss over the batch; accumulates gradients and steps Adam. *)
  val train_batch : t -> Sample.t list -> float

  val predict : t -> Sample.t -> prediction
end

module Great : sig
  type t

  val name : string
  val n_layers : int
  val max_pos : int
  val create : prng:Namer_util.Prng.t -> t
  val train_batch : t -> Sample.t list -> float
  val predict : t -> Sample.t -> prediction
end
