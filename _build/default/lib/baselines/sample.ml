(** Variable-misuse samples for the deep-learning baselines (§5.6).

    GGNN [9] and Great [28] are trained on the *synthetic* variable-misuse
    task: given a program fragment with one variable occurrence designated
    as the slot, predict which in-scope variable belongs there.  Training
    pairs come for free from clean code (mask the occurrence, the original
    variable is the label); synthetic test bugs replace the occurrence with
    a different in-scope variable.  At inference on unmodified code the
    models report a misuse wherever their preferred candidate differs from
    what is written with enough confidence — the protocol we replicate on
    the same corpus Namer scans, so the precision comparison of Tables 10
    and 11 is like-for-like. *)

module Tree = Namer_tree.Tree
module Prng = Namer_util.Prng

type t = {
  tree : Tree.t;  (** the statement tree (slot token *not* masked) *)
  leaves : string array;  (** leaf values in order *)
  slot : int;  (** leaf index of the variable occurrence under test *)
  candidates : string array;  (** distinct in-scope variables, incl. target *)
  target : int;  (** index into [candidates] of the correct variable *)
  file : string;
  line : int;
}

(** The variable currently written at the slot (= the correct one for clean
    samples; the planted wrong one for synthetic bugs). *)
let current s = s.leaves.(s.slot)

let is_bug s = not (String.equal (current s) s.candidates.(s.target))

(* Leaf positions that are variable usages: the single leaf child of a
   NameLoad node.  Returns (leaf index, name) pairs. *)
let variable_slots (tree : Tree.t) : (int * string) list =
  let idx = ref (-1) in
  let out = ref [] in
  let rec go ~under_nameload (t : Tree.t) =
    if Tree.is_leaf t then begin
      incr idx;
      if under_nameload then out := (!idx, t.Tree.value) :: !out
    end
    else
      List.iter
        (go ~under_nameload:(t.Tree.value = "NameLoad"))
        t.Tree.children
  in
  go ~under_nameload:false tree;
  List.rev !out

(* Rewrite the [slot]-th leaf of [tree] to [value]. *)
let replace_leaf (tree : Tree.t) ~slot ~value =
  let idx = ref (-1) in
  let rec go (t : Tree.t) =
    if Tree.is_leaf t then begin
      incr idx;
      if !idx = slot then Tree.leaf value else t
    end
    else Tree.node t.Tree.value (List.map go t.Tree.children)
  in
  go tree

let max_candidates = 8

(** [harvest ~prng ~lang ~max_samples corpus] builds clean samples from the
    corpus: one per eligible (statement, variable occurrence), with
    candidate sets drawn from the variables of the enclosing file. *)
let harvest ~prng ~(max_samples : int) (corpus : Namer_corpus.Corpus.t) : t list =
  let lang = corpus.Namer_corpus.Corpus.lang in
  let out = ref [] and n = ref 0 in
  (try
     List.iter
       (fun (file : Namer_corpus.Corpus.file) ->
         match
           Namer_core.Frontend.parse_file_opt lang ~use_analysis:false
             file.Namer_corpus.Corpus.source
         with
         | None -> ()
         | Some parsed ->
             (* file-level variable vocabulary *)
             let file_vars = Hashtbl.create 32 in
             List.iter
               (fun (s : Namer_core.Frontend.stmt) ->
                 List.iter
                   (fun (_, v) -> Hashtbl.replace file_vars v ())
                   (variable_slots s.tree))
               parsed.Namer_core.Frontend.stmts;
             let vocab =
               Hashtbl.fold (fun v () acc -> v :: acc) file_vars []
               |> List.sort compare
             in
             if List.length vocab >= 3 then
               List.iter
                 (fun (s : Namer_core.Frontend.stmt) ->
                   let slots = variable_slots s.tree in
                   List.iter
                     (fun (slot, name) ->
                       if !n < max_samples && Prng.bool prng ~p:0.5 then begin
                         let others =
                           List.filter (fun v -> v <> name) vocab
                           |> fun l -> Prng.sample prng (max_candidates - 1) l
                         in
                         let candidates = Array.of_list (name :: others) in
                         Prng.shuffle prng candidates;
                         let target = ref 0 in
                         Array.iteri (fun i c -> if c = name then target := i) candidates;
                         let leaves = Array.of_list (Tree.leaves s.tree) in
                         out :=
                           {
                             tree = s.tree;
                             leaves;
                             slot;
                             candidates;
                             target = !target;
                             file = file.Namer_corpus.Corpus.path;
                             line = s.line;
                           }
                           :: !out;
                         incr n
                       end)
                     slots)
                 parsed.Namer_core.Frontend.stmts;
             if !n >= max_samples then raise Exit)
       corpus.Namer_corpus.Corpus.files
   with Exit -> ());
  List.rev !out

(** Plant a synthetic misuse: the slot now holds a *wrong* candidate.
    Returns [None] if there is no alternative candidate. *)
let perturb ~prng (s : t) : t option =
  let wrong =
    Array.to_list s.candidates
    |> List.filter (fun c -> c <> s.candidates.(s.target))
  in
  match wrong with
  | [] -> None
  | _ ->
      let v = Prng.choose prng wrong in
      let leaves = Array.copy s.leaves in
      leaves.(s.slot) <- v;
      Some { s with tree = replace_leaf s.tree ~slot:s.slot ~value:v; leaves }
