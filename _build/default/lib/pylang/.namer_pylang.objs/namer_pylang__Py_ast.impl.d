lib/pylang/py_ast.ml: List
