lib/pylang/py_lexer.ml: Buffer List Printf String
