lib/pylang/py_parser.ml: Array List Printf Py_ast Py_lexer String
