lib/pylang/py_lower.ml: List Namer_tree Py_ast
