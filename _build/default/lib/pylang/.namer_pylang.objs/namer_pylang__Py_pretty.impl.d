lib/pylang/py_pretty.ml: Buffer List Py_ast String
