(** Recursive-descent parser for the Python subset.

    Grammar follows the CPython reference grammar restricted to the subset in
    {!Py_ast}.  Expression parsing uses classic precedence layering:
    lambda < or < and < not < comparison < arithmetic < term < unary < power
    < postfix (call / attribute / subscript) < atom. *)

open Py_ast

exception Parse_error of string * int  (** message, line *)

type state = { toks : Py_lexer.loc_token array; mutable i : int }

let cur st = st.toks.(st.i)
let peek_tok st = (cur st).tok
let line st = (cur st).line
let advance st = st.i <- st.i + 1

let error st msg = raise (Parse_error (msg, line st))

let expect_op st op =
  match peek_tok st with
  | Py_lexer.Op o when o = op -> advance st
  | _ -> error st (Printf.sprintf "expected %S" op)

let expect_kw st kw =
  match peek_tok st with
  | Py_lexer.Keyword k when k = kw -> advance st
  | _ -> error st (Printf.sprintf "expected keyword %S" kw)

let accept_op st op =
  match peek_tok st with
  | Py_lexer.Op o when o = op ->
      advance st;
      true
  | _ -> false

let accept_kw st kw =
  match peek_tok st with
  | Py_lexer.Keyword k when k = kw ->
      advance st;
      true
  | _ -> false

let expect_ident st =
  match peek_tok st with
  | Py_lexer.Ident s ->
      advance st;
      s
  | _ -> error st "expected identifier"

let expect_newline st =
  match peek_tok st with
  | Py_lexer.Newline -> advance st
  | Py_lexer.Eof -> ()
  | _ -> error st "expected end of line"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st = parse_lambda st

and parse_lambda st =
  if accept_kw st "lambda" then begin
    let params = ref [] in
    (match peek_tok st with
    | Py_lexer.Op ":" -> ()
    | _ ->
        params := [ expect_ident st ];
        while accept_op st "," do
          params := expect_ident st :: !params
        done);
    expect_op st ":";
    let body = parse_or st in
    Lambda (List.rev !params, body)
  end
  else parse_ternary st

and parse_ternary st =
  (* [a if cond else b] — parsed but folded into a Bool_op-ish shape is
     wrong; represent as Call-free conditional via Compare is worse. We
     keep it simple: treat as [Bool_op "ifexp"] with three operands. *)
  let e = parse_or st in
  if accept_kw st "if" then begin
    let cond = parse_or st in
    expect_kw st "else";
    let els = parse_ternary st in
    Bool_op ("ifexp", [ e; cond; els ])
  end
  else e

and parse_or st =
  let e = parse_and st in
  if accept_kw st "or" then begin
    let rest = ref [ parse_and st ] in
    while accept_kw st "or" do
      rest := parse_and st :: !rest
    done;
    Bool_op ("or", e :: List.rev !rest)
  end
  else e

and parse_and st =
  let e = parse_not st in
  if accept_kw st "and" then begin
    let rest = ref [ parse_not st ] in
    while accept_kw st "and" do
      rest := parse_not st :: !rest
    done;
    Bool_op ("and", e :: List.rev !rest)
  end
  else e

and parse_not st =
  if accept_kw st "not" then Unary_op ("not", parse_not st)
  else parse_comparison st

and parse_comparison st =
  let e = parse_arith st in
  let op =
    match peek_tok st with
    | Py_lexer.Op (("==" | "!=" | "<" | ">" | "<=" | ">=") as o) ->
        advance st;
        Some o
    | Py_lexer.Keyword "in" ->
        advance st;
        Some "in"
    | Py_lexer.Keyword "is" ->
        advance st;
        if accept_kw st "not" then Some "is not" else Some "is"
    | Py_lexer.Keyword "not" ->
        advance st;
        expect_kw st "in";
        Some "not in"
    | _ -> None
  in
  match op with Some o -> Compare (e, o, parse_arith st) | None -> e

and parse_arith st =
  let e = ref (parse_term st) in
  let continue_ = ref true in
  while !continue_ do
    match peek_tok st with
    | Py_lexer.Op (("+" | "-" | "|" | "^" | "&" | "<<" | ">>") as o) ->
        advance st;
        e := Bin_op (!e, o, parse_term st)
    | _ -> continue_ := false
  done;
  !e

and parse_term st =
  let e = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek_tok st with
    | Py_lexer.Op (("*" | "/" | "//" | "%" | "@") as o) ->
        advance st;
        e := Bin_op (!e, o, parse_unary st)
    | _ -> continue_ := false
  done;
  !e

and parse_unary st =
  match peek_tok st with
  | Py_lexer.Op (("-" | "+" | "~") as o) ->
      advance st;
      Unary_op (o, parse_unary st)
  | _ -> parse_power st

and parse_power st =
  let e = parse_postfix st in
  if accept_op st "**" then Bin_op (e, "**", parse_unary st) else e

and parse_postfix st =
  let e = ref (parse_atom st) in
  let continue_ = ref true in
  while !continue_ do
    match peek_tok st with
    | Py_lexer.Op "." ->
        advance st;
        let attr = expect_ident st in
        e := Attribute (!e, attr)
    | Py_lexer.Op "(" ->
        advance st;
        let args = ref [] and kwargs = ref [] in
        if not (accept_op st ")") then begin
          let parse_arg () =
            match peek_tok st with
            | Py_lexer.Op "*" ->
                advance st;
                args := Star_arg (parse_expr st) :: !args
            | Py_lexer.Op "**" ->
                advance st;
                args := Double_star_arg (parse_expr st) :: !args
            | Py_lexer.Ident name
              when (match st.toks.(st.i + 1).tok with
                   | Py_lexer.Op "=" -> true
                   | _ -> false) ->
                advance st;
                advance st;
                kwargs := (name, parse_expr st) :: !kwargs
            | _ -> args := parse_expr st :: !args
          in
          parse_arg ();
          while accept_op st "," do
            if peek_tok st <> Py_lexer.Op ")" then parse_arg ()
          done;
          expect_op st ")"
        end;
        e := Call { func = !e; args = List.rev !args; keywords = List.rev !kwargs }
    | Py_lexer.Op "[" ->
        advance st;
        (* Subscript or slice; slices are flattened to their first bound. *)
        let idx =
          if peek_tok st = Py_lexer.Op ":" then Num "0" else parse_expr st
        in
        (if accept_op st ":" then
           match peek_tok st with
           | Py_lexer.Op "]" -> ()
           | _ -> ignore (parse_expr st));
        expect_op st "]";
        e := Subscript (!e, idx)
    | _ -> continue_ := false
  done;
  !e

and parse_atom st =
  match peek_tok st with
  | Py_lexer.Ident s ->
      advance st;
      Name s
  | Py_lexer.Number v ->
      advance st;
      Num v
  | Py_lexer.String v ->
      advance st;
      Str v
  | Py_lexer.Keyword "True" ->
      advance st;
      Bool true
  | Py_lexer.Keyword "False" ->
      advance st;
      Bool false
  | Py_lexer.Keyword "None" ->
      advance st;
      None_lit
  | Py_lexer.Keyword "yield" ->
      advance st;
      (* yield [expr] — modelled as a call to the pseudo-function yield. *)
      let arg =
        match peek_tok st with
        | Py_lexer.Newline | Py_lexer.Op ")" -> []
        | _ -> [ parse_expr st ]
      in
      Call { func = Name "yield"; args = arg; keywords = [] }
  | Py_lexer.Op "(" ->
      advance st;
      if accept_op st ")" then Tuple_lit []
      else begin
        let e = parse_expr st in
        if peek_tok st = Py_lexer.Op "," then begin
          let items = ref [ e ] in
          while accept_op st "," do
            if peek_tok st <> Py_lexer.Op ")" then items := parse_expr st :: !items
          done;
          expect_op st ")";
          Tuple_lit (List.rev !items)
        end
        else begin
          expect_op st ")";
          e
        end
      end
  | Py_lexer.Op "[" ->
      advance st;
      let items = ref [] in
      if not (accept_op st "]") then begin
        items := [ parse_expr st ];
        (* list comprehension: [e for x in xs] — abstract as the list of
           its head expression. *)
        if peek_tok st = Py_lexer.Keyword "for" then begin
          while peek_tok st <> Py_lexer.Op "]" do
            advance st
          done;
          expect_op st "]"
        end
        else begin
          while accept_op st "," do
            if peek_tok st <> Py_lexer.Op "]" then items := parse_expr st :: !items
          done;
          expect_op st "]"
        end
      end;
      List_lit (List.rev !items)
  | Py_lexer.Op "{" ->
      advance st;
      let items = ref [] in
      if not (accept_op st "}") then begin
        let k = parse_expr st in
        expect_op st ":";
        let v = parse_expr st in
        items := [ (k, v) ];
        while accept_op st "," do
          if peek_tok st <> Py_lexer.Op "}" then begin
            let k = parse_expr st in
            expect_op st ":";
            let v = parse_expr st in
            items := (k, v) :: !items
          end
        done;
        expect_op st "}"
      end;
      Dict_lit (List.rev !items)
  | _ -> error st "expected expression"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_block st =
  (* A suite is either inline after ':' on the same line, or an indented
     block. *)
  if peek_tok st = Py_lexer.Newline then begin
    advance st;
    (match peek_tok st with
    | Py_lexer.Indent -> advance st
    | _ -> error st "expected indented block");
    let stmts = ref [] in
    while peek_tok st <> Py_lexer.Dedent && peek_tok st <> Py_lexer.Eof do
      stmts := parse_stmt st :: !stmts
    done;
    if peek_tok st = Py_lexer.Dedent then advance st;
    List.concat (List.rev !stmts)
  end
  else parse_simple_stmt_line st

and parse_stmt st : stmt list =
  match peek_tok st with
  | Py_lexer.Keyword "def" -> [ parse_funcdef st [] ]
  | Py_lexer.Keyword "class" -> [ parse_classdef st ]
  | Py_lexer.Op "@" ->
      (* decorators *)
      let decorators = ref [] in
      while accept_op st "@" do
        decorators := parse_expr st :: !decorators;
        expect_newline st
      done;
      (match peek_tok st with
      | Py_lexer.Keyword "def" -> [ parse_funcdef st (List.rev !decorators) ]
      | Py_lexer.Keyword "class" -> [ parse_classdef st ]
      | _ -> error st "expected def or class after decorator")
  | Py_lexer.Keyword "if" -> [ parse_if st ]
  | Py_lexer.Keyword "for" -> [ parse_for st ]
  | Py_lexer.Keyword "while" -> [ parse_while st ]
  | Py_lexer.Keyword "try" -> [ parse_try st ]
  | Py_lexer.Keyword "with" -> [ parse_with st ]
  | Py_lexer.Newline ->
      advance st;
      []
  | _ -> parse_simple_stmt_line st

and parse_funcdef st decorators =
  let ln = line st in
  expect_kw st "def";
  let name = expect_ident st in
  expect_op st "(";
  let params = ref [] in
  if not (accept_op st ")") then begin
    let parse_param () =
      let pkind =
        if accept_op st "**" then Double_star
        else if accept_op st "*" then Star
        else Plain
      in
      let pname = expect_ident st in
      let default = if accept_op st "=" then Some (parse_expr st) else None in
      params := { pname; pkind; default } :: !params
    in
    parse_param ();
    while accept_op st "," do
      if peek_tok st <> Py_lexer.Op ")" then parse_param ()
    done;
    expect_op st ")"
  end;
  ignore (accept_op st "->" && (ignore (parse_expr st); true));
  expect_op st ":";
  let body = parse_block st in
  { line = ln; kind = Function_def { name; params = List.rev !params; body; decorators } }

and parse_classdef st =
  let ln = line st in
  expect_kw st "class";
  let cname = expect_ident st in
  let bases = ref [] in
  if accept_op st "(" then begin
    if not (accept_op st ")") then begin
      bases := [ parse_expr st ];
      while accept_op st "," do
        bases := parse_expr st :: !bases
      done;
      expect_op st ")"
    end
  end;
  expect_op st ":";
  let cbody = parse_block st in
  { line = ln; kind = Class_def { cname; bases = List.rev !bases; cbody } }

and parse_if st =
  let ln = line st in
  expect_kw st "if";
  let cond = parse_expr st in
  expect_op st ":";
  let body = parse_block st in
  let branches = ref [ (cond, body) ] in
  let orelse = ref [] in
  let continue_ = ref true in
  while !continue_ do
    if accept_kw st "elif" then begin
      let c = parse_expr st in
      expect_op st ":";
      branches := (c, parse_block st) :: !branches
    end
    else if accept_kw st "else" then begin
      expect_op st ":";
      orelse := parse_block st;
      continue_ := false
    end
    else continue_ := false
  done;
  { line = ln; kind = If (List.rev !branches, !orelse) }

and parse_for st =
  let ln = line st in
  expect_kw st "for";
  let target = parse_target_tuple st in
  expect_kw st "in";
  let iter = parse_expr st in
  expect_op st ":";
  let body = parse_block st in
  let orelse =
    if accept_kw st "else" then begin
      expect_op st ":";
      parse_block st
    end
    else []
  in
  { line = ln; kind = For (target, iter, body, orelse) }

and parse_target_tuple st =
  let first = parse_postfix st in
  if peek_tok st = Py_lexer.Op "," then begin
    let items = ref [ first ] in
    while accept_op st "," do
      match peek_tok st with
      | Py_lexer.Keyword "in" | Py_lexer.Op "=" -> ()
      | _ -> items := parse_postfix st :: !items
    done;
    Tuple_lit (List.rev !items)
  end
  else first

and parse_while st =
  let ln = line st in
  expect_kw st "while";
  let cond = parse_expr st in
  expect_op st ":";
  let body = parse_block st in
  if accept_kw st "else" then begin
    expect_op st ":";
    ignore (parse_block st)
  end;
  { line = ln; kind = While (cond, body) }

and parse_try st =
  let ln = line st in
  expect_kw st "try";
  expect_op st ":";
  let body = parse_block st in
  let handlers = ref [] in
  while peek_tok st = Py_lexer.Keyword "except" do
    advance st;
    let exn_type, bind =
      match peek_tok st with
      | Py_lexer.Op ":" -> (None, None)
      | _ ->
          let t = parse_expr st in
          let b =
            if accept_kw st "as" then Some (expect_ident st)
            else if accept_op st "," then Some (expect_ident st)
            else None
          in
          (Some t, b)
    in
    expect_op st ":";
    let hbody = parse_block st in
    handlers := { exn_type; bind; hbody } :: !handlers
  done;
  if accept_kw st "else" then begin
    expect_op st ":";
    ignore (parse_block st)
  end;
  let fin =
    if accept_kw st "finally" then begin
      expect_op st ":";
      parse_block st
    end
    else []
  in
  { line = ln; kind = Try (body, List.rev !handlers, fin) }

and parse_with st =
  let ln = line st in
  expect_kw st "with";
  let e = parse_expr st in
  let bind = if accept_kw st "as" then Some (expect_ident st) else None in
  expect_op st ":";
  let body = parse_block st in
  { line = ln; kind = With (e, bind, body) }

and parse_simple_stmt_line st : stmt list =
  let stmts = ref [ parse_simple_stmt st ] in
  while accept_op st ";" do
    match peek_tok st with
    | Py_lexer.Newline | Py_lexer.Eof -> ()
    | _ -> stmts := parse_simple_stmt st :: !stmts
  done;
  expect_newline st;
  List.rev !stmts

and parse_simple_stmt st : stmt =
  let ln = line st in
  let mk kind = { line = ln; kind } in
  match peek_tok st with
  | Py_lexer.Keyword "return" ->
      advance st;
      let v =
        match peek_tok st with
        | Py_lexer.Newline | Py_lexer.Eof | Py_lexer.Op ";" -> None
        | _ -> Some (parse_expr st)
      in
      mk (Return v)
  | Py_lexer.Keyword "pass" ->
      advance st;
      mk Pass
  | Py_lexer.Keyword "break" ->
      advance st;
      mk Break
  | Py_lexer.Keyword "continue" ->
      advance st;
      mk Continue
  | Py_lexer.Keyword "import" ->
      advance st;
      let parse_one () =
        let parts = ref [ expect_ident st ] in
        while accept_op st "." do
          parts := expect_ident st :: !parts
        done;
        let m = String.concat "." (List.rev !parts) in
        let alias = if accept_kw st "as" then Some (expect_ident st) else None in
        (m, alias)
      in
      let imports = ref [ parse_one () ] in
      while accept_op st "," do
        imports := parse_one () :: !imports
      done;
      mk (Import (List.rev !imports))
  | Py_lexer.Keyword "from" ->
      advance st;
      let parts = ref [ expect_ident st ] in
      while accept_op st "." do
        parts := expect_ident st :: !parts
      done;
      let m = String.concat "." (List.rev !parts) in
      expect_kw st "import";
      if accept_op st "*" then mk (Import_from (m, [ ("*", None) ]))
      else begin
        let parse_one () =
          let name = expect_ident st in
          let alias = if accept_kw st "as" then Some (expect_ident st) else None in
          (name, alias)
        in
        let had_paren = accept_op st "(" in
        let names = ref [ parse_one () ] in
        while accept_op st "," do
          if peek_tok st <> Py_lexer.Op ")" then names := parse_one () :: !names
        done;
        if had_paren then expect_op st ")";
        mk (Import_from (m, List.rev !names))
      end
  | Py_lexer.Keyword "raise" ->
      advance st;
      let v =
        match peek_tok st with
        | Py_lexer.Newline | Py_lexer.Eof -> None
        | _ -> Some (parse_expr st)
      in
      mk (Raise v)
  | Py_lexer.Keyword "assert" ->
      advance st;
      let e = parse_expr st in
      let msg = if accept_op st "," then Some (parse_expr st) else None in
      mk (Assert (e, msg))
  | Py_lexer.Keyword "global" ->
      advance st;
      let names = ref [ expect_ident st ] in
      while accept_op st "," do
        names := expect_ident st :: !names
      done;
      mk (Global (List.rev !names))
  | Py_lexer.Keyword "del" ->
      advance st;
      let es = ref [ parse_expr st ] in
      while accept_op st "," do
        es := parse_expr st :: !es
      done;
      mk (Delete (List.rev !es))
  | _ -> (
      (* Expression statement, assignment chain, or augmented assignment.
         Components separated by '=' are parsed as full expressions
         (possibly bare tuples); everything but the last is a target. *)
      let parse_component () =
        let e = parse_expr st in
        if peek_tok st = Py_lexer.Op "," then begin
          let items = ref [ e ] in
          while accept_op st "," do
            match peek_tok st with
            | Py_lexer.Newline | Py_lexer.Eof | Py_lexer.Op ("=" | ";") -> ()
            | _ -> items := parse_expr st :: !items
          done;
          Tuple_lit (List.rev !items)
        end
        else e
      in
      let first = parse_component () in
      match peek_tok st with
      | Py_lexer.Op "=" ->
          let components = ref [ first ] in
          while accept_op st "=" do
            components := parse_component () :: !components
          done;
          (match !components with
          | value :: rev_targets ->
              mk (Assign (List.rev rev_targets, value))
          | [] -> assert false)
      | Py_lexer.Op (("+=" | "-=" | "*=" | "/=" | "%=" | "**=" | "//=" | "&=" | "|=" | "^=") as o)
        ->
          advance st;
          mk (Aug_assign (first, o, parse_expr st))
      | _ -> mk (Expr_stmt first))

(** [parse_module src] lexes and parses a whole source file. *)
let parse_module src : module_ =
  let toks = Array.of_list (Py_lexer.tokenize src) in
  let st = { toks; i = 0 } in
  let stmts = ref [] in
  while peek_tok st <> Py_lexer.Eof do
    match peek_tok st with
    | Py_lexer.Newline -> advance st
    | _ -> stmts := parse_stmt st :: !stmts
  done;
  List.concat (List.rev !stmts)
