(** Lowering Python surface syntax to generic trees.

    Produces {!Namer_tree.Tree.t} values in the node vocabulary of the paper's
    Figure 2 (which follows the py150 AST convention of Raychev et al.):
    [Call], [AttributeLoad]/[AttributeStore], [NameLoad]/[NameStore]/
    [NameParam], [Attr], [Num], [Str], [Bool], [Assign], [For], … — e.g.
    [self.assertTrue(x, 90)] becomes

    {v (Call (AttributeLoad (NameLoad self) (Attr assertTrue))
             (AttributeLoad (NameLoad x) ...) (Num 90)) v}

    Two granularities are produced:
    - {!lower_stmts}: one tree per *program statement* (simple statements and
      compound-statement headers), each with its enclosing class/function
      context — the unit at which Namer extracts name paths and reports
      issues (§3.1);
    - {!module_tree}: the whole file as one tree, used by commit diffing
      when mining confusing word pairs. *)

open Py_ast
module Tree = Namer_tree.Tree

let rec lower_expr (e : expr) : Tree.t =
  match e with
  | Name n -> Tree.node "NameLoad" [ Tree.leaf n ]
  | Num v -> Tree.node "Num" [ Tree.leaf v ]
  | Str v -> Tree.node "Str" [ Tree.leaf v ]
  | Bool b -> Tree.node "Bool" [ Tree.leaf (if b then "True" else "False") ]
  | None_lit -> Tree.node "NoneLit" [ Tree.leaf "None" ]
  | Attribute (obj, attr) ->
      Tree.node "AttributeLoad" [ lower_expr obj; Tree.node "Attr" [ Tree.leaf attr ] ]
  | Subscript (obj, idx) -> Tree.node "SubscriptLoad" [ lower_expr obj; lower_expr idx ]
  | Call { func; args; keywords } ->
      let arg_trees = List.map lower_expr args in
      let kw_trees =
        List.map
          (fun (name, v) -> Tree.node "Keyword" [ Tree.leaf name; lower_expr v ])
          keywords
      in
      Tree.node "Call" ((lower_expr func :: arg_trees) @ kw_trees)
  | Bin_op (a, op, b) -> Tree.node "BinOp" [ lower_expr a; Tree.leaf op; lower_expr b ]
  | Unary_op (op, a) -> Tree.node "UnaryOp" [ Tree.leaf op; lower_expr a ]
  | Compare (a, op, b) -> Tree.node "Compare" [ lower_expr a; Tree.leaf op; lower_expr b ]
  | Bool_op (op, es) -> Tree.node "BoolOp" (Tree.leaf op :: List.map lower_expr es)
  | List_lit es -> Tree.node "List" (List.map lower_expr es)
  | Tuple_lit es -> Tree.node "Tuple" (List.map lower_expr es)
  | Dict_lit kvs ->
      Tree.node "Dict"
        (List.map (fun (k, v) -> Tree.node "DictItem" [ lower_expr k; lower_expr v ]) kvs)
  | Lambda (params, body) ->
      Tree.node "Lambda"
        (List.map (fun p -> Tree.node "NameParam" [ Tree.leaf p ]) params
        @ [ lower_expr body ])
  | Star_arg e -> Tree.node "StarArg" [ lower_expr e ]
  | Double_star_arg e -> Tree.node "DoubleStarArg" [ lower_expr e ]

(** Lower an expression in *store* (assignment-target) position, turning
    load node kinds into their store counterparts, as in the paper's
    Example 3.8 ([AttributeStore]). *)
let rec lower_store (e : expr) : Tree.t =
  match e with
  | Name n -> Tree.node "NameStore" [ Tree.leaf n ]
  | Attribute (obj, attr) ->
      Tree.node "AttributeStore" [ lower_expr obj; Tree.node "Attr" [ Tree.leaf attr ] ]
  | Subscript (obj, idx) -> Tree.node "SubscriptStore" [ lower_expr obj; lower_expr idx ]
  | Tuple_lit es -> Tree.node "Tuple" (List.map lower_store es)
  | e -> lower_expr e

let lower_param (p : param) : Tree.t =
  let kind =
    match p.pkind with
    | Plain -> "NameParam"
    | Star -> "StarParam"
    | Double_star -> "DoubleStarParam"
  in
  Tree.node kind [ Tree.leaf p.pname ]

(** Header tree of a statement: for compound statements this contains only
    the controlling expressions, not the nested body — matching the paper's
    per-statement granularity (its Figure 2 treats the [assertTrue] call
    statement in isolation, and Table 3 reports [for i in xrange(10)] as a
    statement). *)
let header_tree (s : stmt) : Tree.t =
  match s.kind with
  | Expr_stmt e -> lower_expr e
  | Assign (targets, value) ->
      Tree.node "Assign" (List.map lower_store targets @ [ lower_expr value ])
  | Aug_assign (t, op, v) ->
      Tree.node "AugAssign" [ lower_store t; Tree.leaf op; lower_expr v ]
  | Return (Some e) -> Tree.node "Return" [ lower_expr e ]
  | Return None -> Tree.node "Return" []
  | Pass -> Tree.node "Pass" []
  | Break -> Tree.node "Break" []
  | Continue -> Tree.node "Continue" []
  | If ((cond, _) :: _, _) -> Tree.node "If" [ lower_expr cond ]
  | If ([], _) -> Tree.node "If" []
  | For (target, iter, _, _) -> Tree.node "For" [ lower_store target; lower_expr iter ]
  | While (cond, _) -> Tree.node "While" [ lower_expr cond ]
  | Function_def { name; params; _ } ->
      Tree.node "FunctionDef"
        (Tree.node "FuncName" [ Tree.leaf name ] :: List.map lower_param params)
  | Class_def { cname; bases; _ } ->
      Tree.node "ClassDef"
        (Tree.node "ClassName" [ Tree.leaf cname ] :: List.map lower_expr bases)
  | Import names ->
      Tree.node "Import"
        (List.map
           (fun (m, alias) ->
             match alias with
             | Some a -> Tree.node "ImportAs" [ Tree.leaf m; Tree.leaf a ]
             | None -> Tree.node "ImportName" [ Tree.leaf m ])
           names)
  | Import_from (m, names) ->
      Tree.node "ImportFrom"
        (Tree.leaf m
        :: List.map
             (fun (n, alias) ->
               match alias with
               | Some a -> Tree.node "ImportAs" [ Tree.leaf n; Tree.leaf a ]
               | None -> Tree.node "ImportName" [ Tree.leaf n ])
             names)
  | Try (_, handlers, _) ->
      Tree.node "Try"
        (List.map
           (fun h ->
             Tree.node "ExceptHandler"
               ((match h.exn_type with Some t -> [ lower_expr t ] | None -> [])
               @ match h.bind with
                 | Some b -> [ Tree.node "NameStore" [ Tree.leaf b ] ]
                 | None -> []))
           handlers)
  | Raise (Some e) -> Tree.node "Raise" [ lower_expr e ]
  | Raise None -> Tree.node "Raise" []
  | Assert (e, None) -> Tree.node "Assert" [ lower_expr e ]
  | Assert (e, Some m) -> Tree.node "Assert" [ lower_expr e; lower_expr m ]
  | With (e, bind, _) ->
      Tree.node "With"
        (lower_expr e
        :: (match bind with
           | Some b -> [ Tree.node "NameStore" [ Tree.leaf b ] ]
           | None -> []))
  | Global names -> Tree.node "Global" (List.map Tree.leaf names)
  | Delete es -> Tree.node "Delete" (List.map lower_expr es)

(** One program statement ready for the Namer pipeline. *)
type stmt_info = {
  tree : Tree.t;  (** parsed (untransformed) statement tree *)
  line : int;
  enclosing_class : string option;
  enclosing_function : string option;
  surface : stmt;  (** back-pointer into the surface AST *)
}

(** [lower_stmts m] enumerates every program statement of module [m] in
    source order, with its enclosing class / function context (used by the
    static analysis to resolve [self]). *)
let lower_stmts (m : module_) : stmt_info list =
  let out = ref [] in
  let rec walk ~cls ~fn stmts =
    List.iter
      (fun s ->
        out :=
          {
            tree = header_tree s;
            line = s.line;
            enclosing_class = cls;
            enclosing_function = fn;
            surface = s;
          }
          :: !out;
        match s.kind with
        | If (branches, orelse) ->
            List.iter (fun (_, b) -> walk ~cls ~fn b) branches;
            walk ~cls ~fn orelse
        | For (_, _, body, orelse) ->
            walk ~cls ~fn body;
            walk ~cls ~fn orelse
        | While (_, body) -> walk ~cls ~fn body
        | Function_def { name; body; _ } -> walk ~cls ~fn:(Some name) body
        | Class_def { cname; cbody; _ } -> walk ~cls:(Some cname) ~fn cbody
        | Try (body, handlers, fin) ->
            walk ~cls ~fn body;
            List.iter (fun h -> walk ~cls ~fn h.hbody) handlers;
            walk ~cls ~fn fin
        | With (_, _, body) -> walk ~cls ~fn body
        | _ -> ())
      stmts
  in
  walk ~cls:None ~fn:None m;
  List.rev !out

(** Whole-module tree (bodies nested), for commit diffing. *)
let rec module_tree (m : module_) : Tree.t =
  Tree.node "Module" (List.map stmt_tree m)

and stmt_tree (s : stmt) : Tree.t =
  match s.kind with
  | If (branches, orelse) ->
      Tree.node "If"
        (List.map
           (fun (c, b) -> Tree.node "Branch" (lower_expr c :: List.map stmt_tree b))
           branches
        @ match orelse with [] -> [] | b -> [ Tree.node "Else" (List.map stmt_tree b) ])
  | For (target, iter, body, orelse) ->
      Tree.node "For"
        ([ lower_store target; lower_expr iter; Tree.node "Body" (List.map stmt_tree body) ]
        @ match orelse with [] -> [] | b -> [ Tree.node "Else" (List.map stmt_tree b) ])
  | While (cond, body) ->
      Tree.node "While" [ lower_expr cond; Tree.node "Body" (List.map stmt_tree body) ]
  | Function_def { name; params; body; _ } ->
      Tree.node "FunctionDef"
        (Tree.node "FuncName" [ Tree.leaf name ]
        :: (List.map lower_param params @ [ Tree.node "Body" (List.map stmt_tree body) ]))
  | Class_def { cname; bases; cbody } ->
      Tree.node "ClassDef"
        (Tree.node "ClassName" [ Tree.leaf cname ]
        :: (List.map lower_expr bases @ [ Tree.node "Body" (List.map stmt_tree cbody) ]))
  | Try (body, handlers, fin) ->
      Tree.node "Try"
        (Tree.node "Body" (List.map stmt_tree body)
         :: List.map
              (fun h ->
                Tree.node "ExceptHandler"
                  ((match h.exn_type with Some t -> [ lower_expr t ] | None -> [])
                  @ (match h.bind with
                    | Some b -> [ Tree.node "NameStore" [ Tree.leaf b ] ]
                    | None -> [])
                  @ [ Tree.node "Body" (List.map stmt_tree h.hbody) ]))
              handlers
        @ match fin with [] -> [] | b -> [ Tree.node "Finally" (List.map stmt_tree b) ])
  | With (e, bind, body) ->
      Tree.node "With"
        ((lower_expr e
          :: (match bind with
             | Some b -> [ Tree.node "NameStore" [ Tree.leaf b ] ]
             | None -> []))
        @ [ Tree.node "Body" (List.map stmt_tree body) ])
  | _ -> header_tree s
