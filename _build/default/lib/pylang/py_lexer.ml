(** Indentation-aware lexer for the Python subset.

    Produces a flat token list with explicit [Indent] / [Dedent] / [Newline]
    tokens, following the layout algorithm of the CPython reference lexer:
    a stack of indentation widths, with blank and comment-only lines
    ignored, and bracketed (implicit-continuation) regions suppressing
    layout tokens. *)

type token =
  | Ident of string
  | Keyword of string
  | Number of string
  | String of string
  | Op of string  (** operator or punctuation, verbatim *)
  | Newline
  | Indent
  | Dedent
  | Eof

type loc_token = { tok : token; line : int }

exception Lex_error of string * int  (** message, line *)

let keywords =
  [
    "def"; "class"; "return"; "if"; "elif"; "else"; "for"; "while"; "in";
    "not"; "and"; "or"; "import"; "from"; "as"; "pass"; "break"; "continue";
    "try"; "except"; "finally"; "raise"; "with"; "lambda"; "True"; "False";
    "None"; "is"; "assert"; "del"; "global"; "yield";
  ]

let is_keyword s = List.mem s keywords

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Multi-character operators, longest first so maximal munch works. *)
let operators =
  [
    "**="; "//="; "=="; "!="; "<="; ">="; "->"; "+="; "-="; "*="; "/="; "%=";
    "&="; "|="; "^="; "<<"; ">>"; "**"; "//"; "+"; "-"; "*"; "/"; "%"; "=";
    "<"; ">"; "("; ")"; "["; "]"; "{"; "}"; ","; ":"; "."; ";"; "@"; "&";
    "|"; "^"; "~";
  ]

let tokenize src =
  let n = String.length src in
  let pos = ref 0 and line = ref 1 in
  let out = ref [] in
  let emit tok = out := { tok; line = !line } :: !out in
  let indents = ref [ 0 ] in
  let paren_depth = ref 0 in
  let peek i = if !pos + i < n then Some src.[!pos + i] else None in
  let cur () = peek 0 in
  let advance () = incr pos in
  (* Read the indentation of the line starting at [!pos]; returns None for
     blank / comment-only lines (which are skipped entirely). *)
  let rec handle_line_start () =
    let width = ref 0 in
    let scanning = ref true in
    while !scanning do
      match cur () with
      | Some ' ' ->
          incr width;
          advance ()
      | Some '\t' ->
          width := !width + 8;
          advance ()
      | _ -> scanning := false
    done;
    match cur () with
    | None -> ()
    | Some '\n' ->
        advance ();
        incr line;
        handle_line_start ()
    | Some '#' ->
        while cur () <> Some '\n' && cur () <> None do
          advance ()
        done;
        handle_line_start ()
    | Some _ ->
        let top () = List.hd !indents in
        if !width > top () then begin
          indents := !width :: !indents;
          emit Indent
        end
        else
          while !width < top () do
            indents := List.tl !indents;
            if !width > top () then raise (Lex_error ("inconsistent dedent", !line));
            emit Dedent
          done
  in
  (* Triple-quoted strings: scan to the closing delimiter, newlines
     included (docstrings). *)
  let read_triple_string quote =
    advance ();
    advance ();
    advance ();
    let buf = Buffer.create 64 in
    let rec go () =
      if !pos + 2 < n && src.[!pos] = quote && src.[!pos + 1] = quote && src.[!pos + 2] = quote
      then begin
        advance ();
        advance ();
        advance ()
      end
      else
        match cur () with
        | None -> raise (Lex_error ("unterminated triple-quoted string", !line))
        | Some '\n' ->
            incr line;
            Buffer.add_char buf '\n';
            advance ();
            go ()
        | Some c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    emit (String (Buffer.contents buf))
  in
  let read_string quote =
    if peek 1 = Some quote && peek 2 = Some quote then read_triple_string quote
    else begin
    advance ();
    (* opening quote *)
    let buf = Buffer.create 16 in
    let rec go () =
      match cur () with
      | None -> raise (Lex_error ("unterminated string", !line))
      | Some '\\' -> (
          advance ();
          match cur () with
          | None -> raise (Lex_error ("unterminated string escape", !line))
          | Some c ->
              Buffer.add_char buf
                (match c with 'n' -> '\n' | 't' -> '\t' | c -> c);
              advance ();
              go ())
      | Some c when c = quote -> advance ()
      | Some '\n' -> raise (Lex_error ("newline in string", !line))
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    emit (String (Buffer.contents buf))
    end
  in
  let read_number () =
    let start = !pos in
    while (match cur () with Some c -> is_digit c || c = '.' || c = 'x' || c = 'X'
                             || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
                           | None -> false) do
      advance ()
    done;
    (* 'e' exponents: covered by hex-letter range above ('e' ∈ a–f). *)
    emit (Number (String.sub src start (!pos - start)))
  in
  let read_ident () =
    let start = !pos in
    while (match cur () with Some c -> is_ident_char c | None -> false) do
      advance ()
    done;
    let s = String.sub src start (!pos - start) in
    (* String prefixes like r"..." / b'...' *)
    match cur () with
    | Some (('"' | '\'') as q) when String.length s = 1
                                    && (s = "r" || s = "b" || s = "u" || s = "f") ->
        read_string q
    | _ -> if is_keyword s then emit (Keyword s) else emit (Ident s)
  in
  let try_operator () =
    let matches op =
      let l = String.length op in
      !pos + l <= n && String.sub src !pos l = op
    in
    match List.find_opt matches operators with
    | Some op ->
        (match op with
        | "(" | "[" | "{" -> incr paren_depth
        | ")" | "]" | "}" -> paren_depth := max 0 (!paren_depth - 1)
        | _ -> ());
        pos := !pos + String.length op;
        emit (Op op);
        true
    | None -> false
  in
  handle_line_start ();
  let rec loop () =
    match cur () with
    | None -> ()
    | Some '\n' ->
        advance ();
        incr line;
        if !paren_depth = 0 then begin
          emit Newline;
          handle_line_start ()
        end;
        loop ()
    | Some '#' ->
        while cur () <> Some '\n' && cur () <> None do
          advance ()
        done;
        loop ()
    | Some (' ' | '\t' | '\r') ->
        advance ();
        loop ()
    | Some '\\' when peek 1 = Some '\n' ->
        advance ();
        advance ();
        incr line;
        loop ()
    | Some (('"' | '\'') as q) ->
        read_string q;
        loop ()
    | Some c when is_digit c ->
        read_number ();
        loop ()
    | Some c when is_ident_start c ->
        read_ident ();
        loop ()
    | Some _ ->
        if try_operator () then loop ()
        else raise (Lex_error (Printf.sprintf "unexpected character %C" src.[!pos], !line))
  in
  loop ();
  (* Close the final logical line and any open indentation levels. *)
  (match !out with
  | { tok = Newline; _ } :: _ | [] -> ()
  | _ -> emit Newline);
  while List.hd !indents > 0 do
    indents := List.tl !indents;
    emit Dedent
  done;
  emit Eof;
  List.rev !out
