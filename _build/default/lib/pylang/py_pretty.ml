(** Pretty-printing the Python surface AST back to source.

    Primarily a testing tool: the property [parse (print (parse src)) =
    parse src] exercises the lexer/parser/AST triple from both directions
    (see the test suite), and the fixer's output can be re-rendered for
    inspection.  Output uses minimal parenthesization driven by operator
    precedence. *)

open Py_ast

let prec_of_binop = function
  | "or" -> 1
  | "and" -> 2
  | "==" | "!=" | "<" | ">" | "<=" | ">=" | "in" | "not in" | "is" | "is not" -> 4
  | "|" -> 5
  | "^" -> 6
  | "&" -> 7
  | "<<" | ">>" -> 8
  | "+" | "-" -> 9
  | "*" | "/" | "//" | "%" | "@" -> 10
  | "**" -> 12
  | _ -> 10

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* [ctx] is the precedence of the enclosing operator; parenthesize when the
   printed expression binds looser. *)
let rec expr ?(ctx = 0) (e : Py_ast.expr) : string =
  let wrap p s = if p < ctx then "(" ^ s ^ ")" else s in
  match e with
  | Name n -> n
  | Num v -> v
  | Str v -> "\"" ^ escape_string v ^ "\""
  | Bool true -> "True"
  | Bool false -> "False"
  | None_lit -> "None"
  | Attribute (o, a) -> expr ~ctx:13 o ^ "." ^ a
  | Subscript (o, i) -> expr ~ctx:13 o ^ "[" ^ expr i ^ "]"
  | Call { func; args; keywords } ->
      let args = List.map expr args in
      let kws = List.map (fun (k, v) -> k ^ "=" ^ expr v) keywords in
      expr ~ctx:13 func ^ "(" ^ String.concat ", " (args @ kws) ^ ")"
  | Bin_op (a, op, b) ->
      let p = prec_of_binop op in
      wrap p (expr ~ctx:p a ^ " " ^ op ^ " " ^ expr ~ctx:(p + 1) b)
  | Unary_op ("not", a) -> wrap 3 ("not " ^ expr ~ctx:3 a)
  | Unary_op (op, a) -> wrap 11 (op ^ expr ~ctx:11 a)
  | Compare (a, op, b) -> wrap 4 (expr ~ctx:5 a ^ " " ^ op ^ " " ^ expr ~ctx:5 b)
  | Bool_op ("ifexp", [ v; c; els ]) ->
      wrap 1 (expr ~ctx:2 v ^ " if " ^ expr ~ctx:2 c ^ " else " ^ expr ~ctx:1 els)
  | Bool_op (op, es) ->
      let p = prec_of_binop op in
      wrap p (String.concat (" " ^ op ^ " ") (List.map (expr ~ctx:(p + 1)) es))
  | List_lit es -> "[" ^ String.concat ", " (List.map expr es) ^ "]"
  | Tuple_lit [] -> "()"
  | Tuple_lit [ e ] -> "(" ^ expr e ^ ",)"
  | Tuple_lit es -> "(" ^ String.concat ", " (List.map expr es) ^ ")"
  | Dict_lit kvs ->
      "{" ^ String.concat ", " (List.map (fun (k, v) -> expr k ^ ": " ^ expr v) kvs) ^ "}"
  | Lambda (params, body) ->
      wrap 1 ("lambda " ^ String.concat ", " params ^ ": " ^ expr ~ctx:1 body)
  | Star_arg e -> "*" ^ expr ~ctx:11 e
  | Double_star_arg e -> "**" ^ expr ~ctx:11 e

let param (p : param) =
  let star = match p.pkind with Plain -> "" | Star -> "*" | Double_star -> "**" in
  let default = match p.default with Some d -> "=" ^ expr d | None -> "" in
  star ^ p.pname ^ default

let rec stmt ~indent (s : stmt) : string list =
  let pad = String.make indent ' ' in
  let line s = [ pad ^ s ] in
  let block body = List.concat_map (stmt ~indent:(indent + 4)) body in
  let block_or_pass body = match body with [] -> [ pad ^ "    pass" ] | _ -> block body in
  match s.kind with
  | Expr_stmt e -> line (expr e)
  | Assign (targets, value) ->
      (* bare tuples on either side print without parentheses *)
      let side e =
        match e with
        | Tuple_lit (_ :: _ :: _ as es) -> String.concat ", " (List.map expr es)
        | e -> expr e
      in
      line (String.concat " = " (List.map side targets @ [ side value ]))
  | Aug_assign (t, op, v) -> line (expr t ^ " " ^ op ^ " " ^ expr v)
  | Return (Some e) -> line ("return " ^ expr e)
  | Return None -> line "return"
  | Pass -> line "pass"
  | Break -> line "break"
  | Continue -> line "continue"
  | If (branches, orelse) ->
      List.concat
        (List.mapi
           (fun i (c, body) ->
             (pad ^ (if i = 0 then "if " else "elif ") ^ expr c ^ ":")
             :: block_or_pass body)
           branches)
      @ (match orelse with
        | [] -> []
        | body -> (pad ^ "else:") :: block_or_pass body)
  | For (target, iter, body, orelse) ->
      let tgt =
        match target with
        | Tuple_lit (_ :: _ :: _ as es) -> String.concat ", " (List.map expr es)
        | t -> expr t
      in
      ((pad ^ "for " ^ tgt ^ " in " ^ expr iter ^ ":") :: block_or_pass body)
      @ (match orelse with
        | [] -> []
        | b -> (pad ^ "else:") :: block_or_pass b)
  | While (c, body) -> (pad ^ "while " ^ expr c ^ ":") :: block_or_pass body
  | Function_def { name; params; body; decorators } ->
      List.map (fun d -> pad ^ "@" ^ expr d) decorators
      @ ((pad ^ "def " ^ name ^ "(" ^ String.concat ", " (List.map param params) ^ "):")
        :: block_or_pass body)
  | Class_def { cname; bases; cbody } ->
      let bases =
        match bases with
        | [] -> ""
        | bs -> "(" ^ String.concat ", " (List.map expr bs) ^ ")"
      in
      (pad ^ "class " ^ cname ^ bases ^ ":") :: block_or_pass cbody
  | Import names ->
      line
        ("import "
        ^ String.concat ", "
            (List.map
               (fun (m, a) -> m ^ match a with Some a -> " as " ^ a | None -> "")
               names))
  | Import_from (m, names) ->
      line
        ("from " ^ m ^ " import "
        ^ String.concat ", "
            (List.map
               (fun (n, a) -> n ^ match a with Some a -> " as " ^ a | None -> "")
               names))
  | Try (body, handlers, fin) ->
      ((pad ^ "try:") :: block_or_pass body)
      @ List.concat_map
          (fun (h : handler) ->
            let head =
              match (h.exn_type, h.bind) with
              | Some t, Some b -> "except " ^ expr t ^ " as " ^ b ^ ":"
              | Some t, None -> "except " ^ expr t ^ ":"
              | None, _ -> "except:"
            in
            (pad ^ head) :: block_or_pass h.hbody)
          handlers
      @ (match fin with [] -> [] | b -> (pad ^ "finally:") :: block_or_pass b)
  | Raise (Some e) -> line ("raise " ^ expr e)
  | Raise None -> line "raise"
  | Assert (e, None) -> line ("assert " ^ expr e)
  | Assert (e, Some m) -> line ("assert " ^ expr e ^ ", " ^ expr m)
  | With (e, bind, body) ->
      (pad ^ "with " ^ expr e
      ^ (match bind with Some b -> " as " ^ b | None -> "")
      ^ ":")
      :: block_or_pass body
  | Global names -> line ("global " ^ String.concat ", " names)
  | Delete es -> line ("del " ^ String.concat ", " (List.map expr es))

(** Render a whole module. *)
let module_ (m : module_) : string =
  String.concat "\n" (List.concat_map (stmt ~indent:0) m) ^ "\n"
