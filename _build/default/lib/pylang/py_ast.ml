(** Surface abstract syntax for the Python subset.

    The subset covers everything the synthetic corpus and the paper's
    examples need: classes with inheritance, function definitions with
    positional / [*args] / [**kwargs] parameters and defaults, assignments
    (plain, chained, augmented), attribute and subscript access, calls with
    keyword arguments, the full statement repertoire ([if]/[for]/[while]/
    [try]/[with]/[return]/[raise]/[assert]/imports), and the usual
    expression grammar.  Everything downstream consumes the generic
    {!Namer_tree.Tree.t} produced by {!Py_lower}, so extending this AST only
    requires touching the frontend. *)

type expr =
  | Name of string
  | Num of string  (** numeric literal, verbatim text *)
  | Str of string  (** string literal, unquoted content *)
  | Bool of bool
  | None_lit
  | Attribute of expr * string  (** [e.attr] *)
  | Subscript of expr * expr  (** [e[i]] *)
  | Call of { func : expr; args : expr list; keywords : (string * expr) list }
  | Bin_op of expr * string * expr
  | Unary_op of string * expr
  | Compare of expr * string * expr
  | Bool_op of string * expr list  (** ["and"] / ["or"] over ≥ 2 operands *)
  | List_lit of expr list
  | Tuple_lit of expr list
  | Dict_lit of (expr * expr) list
  | Lambda of string list * expr
  | Star_arg of expr  (** [*e] in a call *)
  | Double_star_arg of expr  (** [**e] in a call *)

type param_kind = Plain | Star | Double_star

type param = { pname : string; pkind : param_kind; default : expr option }

type stmt = { line : int; kind : stmt_kind }

and stmt_kind =
  | Expr_stmt of expr
  | Assign of expr list * expr  (** chained targets [t1 = t2 = value] *)
  | Aug_assign of expr * string * expr  (** [t op= value] *)
  | Return of expr option
  | Pass
  | Break
  | Continue
  | If of (expr * stmt list) list * stmt list
      (** (condition, body) for if/elif chain; final else body *)
  | For of expr * expr * stmt list * stmt list  (** target, iter, body, else *)
  | While of expr * stmt list
  | Function_def of {
      name : string;
      params : param list;
      body : stmt list;
      decorators : expr list;
    }
  | Class_def of { cname : string; bases : expr list; cbody : stmt list }
  | Import of (string * string option) list  (** [import m as alias] *)
  | Import_from of string * (string * string option) list
  | Try of stmt list * handler list * stmt list  (** body, handlers, finally *)
  | Raise of expr option
  | Assert of expr * expr option
  | With of expr * string option * stmt list
  | Global of string list
  | Delete of expr list

and handler = { exn_type : expr option; bind : string option; hbody : stmt list }

type module_ = stmt list

(** [iter_stmts f m] applies [f] to every statement in [m], pre-order,
    descending into all nested bodies. *)
let rec iter_stmts f (stmts : stmt list) =
  List.iter
    (fun s ->
      f s;
      match s.kind with
      | If (branches, orelse) ->
          List.iter (fun (_, body) -> iter_stmts f body) branches;
          iter_stmts f orelse
      | For (_, _, body, orelse) ->
          iter_stmts f body;
          iter_stmts f orelse
      | While (_, body) -> iter_stmts f body
      | Function_def { body; _ } -> iter_stmts f body
      | Class_def { cbody; _ } -> iter_stmts f cbody
      | Try (body, handlers, fin) ->
          iter_stmts f body;
          List.iter (fun h -> iter_stmts f h.hbody) handlers;
          iter_stmts f fin
      | With (_, _, body) -> iter_stmts f body
      | _ -> ())
    stmts
