lib/classifier/features.mli: Hashtbl Namer_mining Namer_pattern
