lib/classifier/features.ml: Hashtbl List Namer_mining Namer_pattern Namer_util Option
