lib/mining/fptree.mli:
