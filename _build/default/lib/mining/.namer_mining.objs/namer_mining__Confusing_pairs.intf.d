lib/mining/confusing_pairs.mli: Namer_tree
