lib/mining/miner.ml: Array Confusing_pairs Fptree Hashtbl List Namer_namepath Namer_pattern Namer_util String
