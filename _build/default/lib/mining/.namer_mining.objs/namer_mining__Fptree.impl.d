lib/mining/fptree.ml: Hashtbl List Namer_util
