lib/mining/miner.mli: Confusing_pairs Hashtbl Namer_namepath Namer_pattern
