lib/mining/confusing_pairs.ml: Hashtbl List Namer_tree Namer_util String
