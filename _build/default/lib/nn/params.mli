(** Trainable parameters (matrices/biases with gradient and Adam moment
    buffers) and the Adam optimizer.  Glorot-uniform initialization from an
    explicit PRNG keeps training bit-reproducible. *)

type mat = {
  rows : int;
  cols : int;
  w : float array;  (** row-major data *)
  g : float array;  (** gradient accumulator *)
  m : float array;  (** Adam first moment *)
  v : float array;  (** Adam second moment *)
}

type store = { mutable mats : mat list; prng : Namer_util.Prng.t; mutable step : int }

val create : prng:Namer_util.Prng.t -> store

(** Fresh Glorot-initialized matrix, registered in the store. *)
val mat : store -> rows:int -> cols:int -> mat

(** Fresh zero bias (a 1×n matrix). *)
val bias : store -> n:int -> mat

val zero_grads : store -> unit

(** One Adam step over every parameter; clears gradients. *)
val adam_step : ?lr:float -> ?beta1:float -> ?beta2:float -> ?eps:float -> store -> unit

val n_parameters : store -> int
