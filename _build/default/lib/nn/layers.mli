(** Neural layers over {!Autograd}: dense affine maps, the GRU cell used by
    gated message passing, and relation-biased single-head attention (the
    Great-style block). *)

module A := Autograd

module Dense : sig
  type t

  val create : Params.store -> input:int -> output:int -> t
  val forward : t -> A.tape -> A.v -> A.v
end

module Gru : sig
  type t

  val create : Params.store -> dim:int -> t

  (** h′ = (1−z)⊙h + z⊙h̃ — fold [input] into [state]. *)
  val step : t -> A.tape -> input:A.v -> state:A.v -> A.v
end

module Attention : sig
  type t

  val create : Params.store -> dim:int -> t

  (** score(i,j) = qᵢ·kⱼ/√d + [rel_bias i j]; returns attended states with
      residual and output projection. *)
  val forward : t -> A.tape -> rel_bias:(int -> int -> float) -> A.v list -> A.v list
end
