(** Trainable parameters and the Adam optimizer.

    A {!store} owns every parameter of a model: matrices (weights,
    embedding tables) and vectors (biases), each carrying its gradient
    accumulator and Adam moment estimates.  Initialization is Glorot-uniform
    from an explicit PRNG, keeping training bit-reproducible. *)

type mat = {
  rows : int;
  cols : int;
  w : float array;  (** row-major data *)
  g : float array;  (** gradient accumulator *)
  m : float array;  (** Adam first moment *)
  v : float array;  (** Adam second moment *)
}

type store = { mutable mats : mat list; prng : Namer_util.Prng.t; mutable step : int }

let create ~prng = { mats = []; prng; step = 0 }

(** Fresh [rows × cols] matrix, Glorot-uniform initialized. *)
let mat store ~rows ~cols =
  let n = rows * cols in
  let scale = sqrt (6.0 /. float_of_int (rows + cols)) in
  let w =
    Array.init n (fun _ -> Namer_util.Prng.float_range store.prng (-.scale) scale)
  in
  let m =
    { rows; cols; w; g = Array.make n 0.0; m = Array.make n 0.0; v = Array.make n 0.0 }
  in
  store.mats <- m :: store.mats;
  m

(** Fresh zero-initialized bias vector (a 1 × n matrix). *)
let bias store ~n =
  let m =
    {
      rows = 1;
      cols = n;
      w = Array.make n 0.0;
      g = Array.make n 0.0;
      m = Array.make n 0.0;
      v = Array.make n 0.0;
    }
  in
  store.mats <- m :: store.mats;
  m

let zero_grads store = List.iter (fun m -> Array.fill m.g 0 (Array.length m.g) 0.0) store.mats

(** One Adam step over every parameter; clears gradients afterwards. *)
let adam_step ?(lr = 1e-3) ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) store =
  store.step <- store.step + 1;
  let t = float_of_int store.step in
  let bc1 = 1.0 -. (beta1 ** t) and bc2 = 1.0 -. (beta2 ** t) in
  List.iter
    (fun p ->
      for i = 0 to Array.length p.w - 1 do
        let g = p.g.(i) in
        p.m.(i) <- (beta1 *. p.m.(i)) +. ((1.0 -. beta1) *. g);
        p.v.(i) <- (beta2 *. p.v.(i)) +. ((1.0 -. beta2) *. g *. g);
        let mh = p.m.(i) /. bc1 and vh = p.v.(i) /. bc2 in
        p.w.(i) <- p.w.(i) -. (lr *. mh /. (sqrt vh +. eps))
      done)
    store.mats;
  zero_grads store

let n_parameters store =
  List.fold_left (fun acc m -> acc + Array.length m.w) 0 store.mats
