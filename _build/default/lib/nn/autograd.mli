(** Tape-based reverse-mode automatic differentiation over vectors — the
    training substrate for the §5.6 baseline models.  Ops append nodes with
    backward closures to a tape; [backward] seeds the loss gradient and
    replays in reverse.  Gradient-checked in the test suite. *)

type v = { data : float array; grad : float array; back : unit -> unit }

type tape

val tape : unit -> tape

(** Constant leaf (no gradient flows into it). *)
val const : tape -> float array -> v

(** Row [i] of a parameter matrix — an embedding lookup. *)
val row : tape -> Params.mat -> int -> v

(** Bias vector as a differentiable leaf. *)
val bias : tape -> Params.mat -> v

(** Matrix–vector product W·x. *)
val matvec : tape -> Params.mat -> v -> v

val add : tape -> v -> v -> v
val sub : tape -> v -> v -> v
val mul : tape -> v -> v -> v  (** pointwise *)

val tanh_ : tape -> v -> v
val sigmoid : tape -> v -> v
val relu : tape -> v -> v
val scale : tape -> float -> v -> v

(** Custom pointwise op: [unary t a f df] with [df x y] the derivative at
    input [x], output [y]. *)
val unary : tape -> v -> (float -> float) -> (float -> float -> float) -> v

(** Dot product, as a 1-element vector. *)
val dot : tape -> v -> v -> v

(** Sum of same-length vectors (message aggregation). *)
val sum_vecs : tape -> v list -> v

(** Σ wᵢ·vᵢ with differentiable scalar weights (attention combine). *)
val weighted_sum : tape -> v list -> v list -> v

(** Cross-entropy of a softmax over scalar scores vs. the target index. *)
val softmax_cross_entropy : tape -> v list -> target:int -> v

val argmax_scores : v list -> int

(** Softmax probabilities as plain floats (inference confidence). *)
val softmax_probs : v list -> float list

(** Backpropagate from scalar [loss]; consumes the tape. *)
val backward : tape -> v -> unit
