lib/nn/layers.mli: Autograd Params
