lib/nn/autograd.mli: Params
