lib/nn/params.mli: Namer_util
