lib/nn/layers.ml: Array Autograd List Params
