lib/nn/params.ml: Array List Namer_util
