lib/nn/autograd.ml: Array Lazy List Params
