(** Tape-based reverse-mode automatic differentiation over vectors.

    Small and explicit: each op appends a node with a backward closure to a
    tape; [backward] seeds the loss gradient and replays the tape in
    reverse.  Vector-valued (no batching — samples are processed one at a
    time), which is plenty for the GGNN / Great baseline models: a forward
    pass is a few hundred ops of dimension ≤ 64.

    Typical use:
    {[
      let tape = Autograd.tape () in
      let h = Autograd.(tanh_ tape (matvec tape w x)) in
      let loss = Autograd.softmax_cross_entropy tape logits ~target in
      Autograd.backward tape loss;
      Params.adam_step store
    ]} *)

type v = { data : float array; grad : float array; back : unit -> unit }

type tape = { mutable nodes : v list }

let tape () = { nodes = [] }

let push t node =
  t.nodes <- node :: t.nodes;
  node

let mk t data back = push t { data; grad = Array.make (Array.length data) 0.0; back }

(** Constant leaf (no gradient flows into it). *)
let const t data = mk t data (fun () -> ())

(** Row [i] of parameter matrix [p] — an embedding lookup. *)
let row t (p : Params.mat) i =
  let data = Array.init p.cols (fun j -> p.w.((i * p.cols) + j)) in
  let rec node =
    lazy
      (mk t data (fun () ->
           let n = Lazy.force node in
           for j = 0 to p.cols - 1 do
             p.g.((i * p.cols) + j) <- p.g.((i * p.cols) + j) +. n.grad.(j)
           done))
  in
  Lazy.force node

(** Bias vector as a differentiable leaf. *)
let bias t (p : Params.mat) = row t p 0

(** [matvec t w x] is the matrix-vector product W·x (W : rows×cols, x : cols). *)
let matvec t (p : Params.mat) (x : v) =
  let data =
    Array.init p.rows (fun i ->
        let s = ref 0.0 in
        for j = 0 to p.cols - 1 do
          s := !s +. (p.w.((i * p.cols) + j) *. x.data.(j))
        done;
        !s)
  in
  let rec node =
    lazy
      (mk t data (fun () ->
           let n = Lazy.force node in
           for i = 0 to p.rows - 1 do
             let gi = n.grad.(i) in
             if gi <> 0.0 then
               for j = 0 to p.cols - 1 do
                 p.g.((i * p.cols) + j) <- p.g.((i * p.cols) + j) +. (gi *. x.data.(j));
                 x.grad.(j) <- x.grad.(j) +. (gi *. p.w.((i * p.cols) + j))
               done
           done))
  in
  Lazy.force node

let binary t a b f dfa dfb =
  let data = Array.init (Array.length a.data) (fun i -> f a.data.(i) b.data.(i)) in
  let rec node =
    lazy
      (mk t data (fun () ->
           let n = Lazy.force node in
           for i = 0 to Array.length data - 1 do
             a.grad.(i) <- a.grad.(i) +. (n.grad.(i) *. dfa a.data.(i) b.data.(i));
             b.grad.(i) <- b.grad.(i) +. (n.grad.(i) *. dfb a.data.(i) b.data.(i))
           done))
  in
  Lazy.force node

let unary t a f df =
  let data = Array.map f a.data in
  let rec node =
    lazy
      (mk t data (fun () ->
           let n = Lazy.force node in
           for i = 0 to Array.length data - 1 do
             a.grad.(i) <- a.grad.(i) +. (n.grad.(i) *. df a.data.(i) data.(i))
           done))
  in
  Lazy.force node

let add t a b = binary t a b ( +. ) (fun _ _ -> 1.0) (fun _ _ -> 1.0)
let mul t a b = binary t a b ( *. ) (fun _ y -> y) (fun x _ -> x)
let sub t a b = binary t a b ( -. ) (fun _ _ -> 1.0) (fun _ _ -> -1.0)
let tanh_ t a = unary t a tanh (fun _ y -> 1.0 -. (y *. y))

let sigmoid t a =
  unary t a (fun x -> 1.0 /. (1.0 +. exp (-.x))) (fun _ y -> y *. (1.0 -. y))

let relu t a = unary t a (fun x -> max x 0.0) (fun x _ -> if x > 0.0 then 1.0 else 0.0)
let scale t c a = unary t a (fun x -> c *. x) (fun _ _ -> c)

(** Dot product as a 1-element vector. *)
let dot t a b =
  let s = ref 0.0 in
  Array.iteri (fun i x -> s := !s +. (x *. b.data.(i))) a.data;
  let rec node =
    lazy
      (mk t [| !s |] (fun () ->
           let n = Lazy.force node in
           let g = n.grad.(0) in
           for i = 0 to Array.length a.data - 1 do
             a.grad.(i) <- a.grad.(i) +. (g *. b.data.(i));
             b.grad.(i) <- b.grad.(i) +. (g *. a.data.(i))
           done))
  in
  Lazy.force node

(** Sum of vectors (all the same length). *)
let sum_vecs t (vs : v list) =
  match vs with
  | [] -> invalid_arg "Autograd.sum_vecs: empty"
  | first :: _ ->
      let n = Array.length first.data in
      let data = Array.make n 0.0 in
      List.iter (fun v -> Array.iteri (fun i x -> data.(i) <- data.(i) +. x) v.data) vs;
      let rec node =
        lazy
          (mk t data (fun () ->
               let nd = Lazy.force node in
               List.iter
                 (fun v ->
                   for i = 0 to n - 1 do
                     v.grad.(i) <- v.grad.(i) +. nd.grad.(i)
                   done)
                 vs))
      in
      Lazy.force node

(** Weighted sum Σ wᵢ·vᵢ with differentiable scalar weights (each a
    1-element vector) — the attention combine step. *)
let weighted_sum t (weights : v list) (vs : v list) =
  let n = Array.length (List.hd vs).data in
  let data = Array.make n 0.0 in
  List.iter2
    (fun w v -> Array.iteri (fun i x -> data.(i) <- data.(i) +. (w.data.(0) *. x)) v.data)
    weights vs;
  let rec node =
    lazy
      (mk t data (fun () ->
           let nd = Lazy.force node in
           List.iter2
             (fun w v ->
               let s = ref 0.0 in
               for i = 0 to n - 1 do
                 v.grad.(i) <- v.grad.(i) +. (nd.grad.(i) *. w.data.(0));
                 s := !s +. (nd.grad.(i) *. v.data.(i))
               done;
               w.grad.(0) <- w.grad.(0) +. !s)
             weights vs))
  in
  Lazy.force node

(** Cross-entropy of a softmax over scalar scores against [target]
    (index into the list).  Returns the scalar loss node; predicted argmax
    available via {!argmax_scores}. *)
let softmax_cross_entropy t (scores : v list) ~target =
  let arr = Array.of_list scores in
  let xs = Array.map (fun s -> s.data.(0)) arr in
  let mx = Array.fold_left max neg_infinity xs in
  let exps = Array.map (fun x -> exp (x -. mx)) xs in
  let z = Array.fold_left ( +. ) 0.0 exps in
  let probs = Array.map (fun e -> e /. z) exps in
  let loss = -.log (max probs.(target) 1e-12) in
  let rec node =
    lazy
      (mk t [| loss |] (fun () ->
           let nd = Lazy.force node in
           let g = nd.grad.(0) in
           Array.iteri
             (fun i s ->
               let delta = if i = target then 1.0 else 0.0 in
               s.grad.(0) <- s.grad.(0) +. (g *. (probs.(i) -. delta)))
             arr))
  in
  Lazy.force node

let argmax_scores (scores : v list) =
  let best = ref 0 and best_v = ref neg_infinity in
  List.iteri
    (fun i s ->
      if s.data.(0) > !best_v then begin
        best := i;
        best_v := s.data.(0)
      end)
    scores;
  !best

(** Softmax probabilities of scalar scores (plain floats, for confidence
    thresholds at inference time). *)
let softmax_probs (scores : v list) =
  let xs = List.map (fun s -> s.data.(0)) scores in
  let mx = List.fold_left max neg_infinity xs in
  let exps = List.map (fun x -> exp (x -. mx)) xs in
  let z = List.fold_left ( +. ) 0.0 exps in
  List.map (fun e -> e /. z) exps

(** Backpropagate from scalar node [loss] through the tape. *)
let backward t (loss : v) =
  loss.grad.(0) <- 1.0;
  List.iter (fun n -> n.back ()) t.nodes;
  t.nodes <- []
