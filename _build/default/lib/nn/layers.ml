(** Reusable neural layers built from {!Autograd} ops: dense layers, the
    GRU cell used by GGNN-style gated message passing, and scaled
    dot-product attention with additive relation biases (the Great-style
    encoder block). *)

module A = Autograd

(** A dense (affine) layer W·x + b. *)
module Dense = struct
  type t = { w : Params.mat; b : Params.mat }

  let create store ~input ~output =
    { w = Params.mat store ~rows:output ~cols:input; b = Params.bias store ~n:output }

  let forward t tape x = A.add tape (A.matvec tape t.w x) (A.bias tape t.b)
end

(** GRU cell: h' = (1−z)·h + z·h̃, the update rule GGNN uses to fold
    incoming messages into node states. *)
module Gru = struct
  type t = {
    wz : Params.mat; uz : Params.mat; bz : Params.mat;
    wr : Params.mat; ur : Params.mat; br : Params.mat;
    wh : Params.mat; uh : Params.mat; bh : Params.mat;
  }

  let create store ~dim =
    let m () = Params.mat store ~rows:dim ~cols:dim in
    let b () = Params.bias store ~n:dim in
    {
      wz = m (); uz = m (); bz = b ();
      wr = m (); ur = m (); br = b ();
      wh = m (); uh = m (); bh = b ();
    }

  (** [step t tape ~input ~state] returns the next hidden state. *)
  let step t tape ~input ~state =
    let z =
      A.sigmoid tape
        (A.add tape
           (A.add tape (A.matvec tape t.wz input) (A.matvec tape t.uz state))
           (A.bias tape t.bz))
    in
    let r =
      A.sigmoid tape
        (A.add tape
           (A.add tape (A.matvec tape t.wr input) (A.matvec tape t.ur state))
           (A.bias tape t.br))
    in
    let h_tilde =
      A.tanh_ tape
        (A.add tape
           (A.add tape (A.matvec tape t.wh input)
              (A.matvec tape t.uh (A.mul tape r state)))
           (A.bias tape t.bh))
    in
    (* h' = (1-z)⊙h + z⊙h̃ *)
    let one_minus_z = A.scale tape (-1.0) z |> fun nz -> A.unary tape nz (fun x -> 1.0 +. x) (fun _ _ -> 1.0) in
    A.add tape (A.mul tape one_minus_z state) (A.mul tape z h_tilde)
end

(** Single-head scaled dot-product attention with additive edge biases:
    score(i,j) = (qᵢ·kⱼ)/√d + bias(rel(i,j)).  Relation biases are what
    distinguish the Great architecture from a vanilla transformer. *)
module Attention = struct
  type t = { wq : Params.mat; wk : Params.mat; wv : Params.mat; wo : Params.mat }

  let create store ~dim =
    let m () = Params.mat store ~rows:dim ~cols:dim in
    { wq = m (); wk = m (); wv = m (); wo = m () }

  (** [forward t tape ~rel_bias states] returns the attended state list.
      [rel_bias i j] is a plain float added to the (i,j) score. *)
  let forward t tape ~rel_bias (states : A.v list) : A.v list =
    let dim = Array.length (List.hd states).A.data in
    let scale = 1.0 /. sqrt (float_of_int dim) in
    let qs = List.map (A.matvec tape t.wq) states in
    let ks = List.map (A.matvec tape t.wk) states in
    let vs = List.map (A.matvec tape t.wv) states in
    List.mapi
      (fun i q ->
        let scores =
          List.mapi
            (fun j k ->
              let s = A.scale tape scale (A.dot tape q k) in
              A.unary tape s
                (fun x -> x +. rel_bias i j)
                (fun _ _ -> 1.0))
            ks
        in
        (* softmax weights as constants of the forward values would break
           gradients; use the exp/normalize trick differentiably via
           weighted_sum over normalized scores. *)
        let probs = A.softmax_probs scores in
        (* Differentiable approximation: treat attention weights as locally
           constant w.r.t. the value path (straight-through on the score
           path).  For these small baselines the value-path gradient
           dominates and training converges well. *)
        let weights =
          List.map2
            (fun s p ->
              A.unary tape s (fun _ -> p) (fun _ _ -> p *. (1.0 -. p) *. scale))
            scores probs
        in
        let ctxv = A.weighted_sum tape weights vs in
        A.add tape (A.matvec tape t.wo ctxv) q)
      qs
end
