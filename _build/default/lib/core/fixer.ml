(** Applying suggested fixes to source text.

    A violation names one offending subtoken and its replacement (§3.2:
    "the suggested fix is to change the relevant parts of the fragment so
    the originally violated pattern is satisfied").  This module rewrites
    the violating line: it finds the identifier on the line that contains
    the offending subtoken and replaces that subtoken in place, preserving
    the identifier's naming style — [assertTrue] with [True → Equal]
    becomes [assertEqual]; [rotated_nmae] with [nmae → name] becomes
    [rotated_name].

    Fix application is conservative: if zero or several identifiers on the
    line contain the subtoken, the line is left untouched and the fix is
    reported as skipped (ambiguous rewrites are worse than none). *)

module Subtoken = Namer_util.Subtoken

type result = Applied of string | Ambiguous of int | Not_found_on_line

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

(* All maximal identifiers in [line] as (start, text). *)
let identifiers line =
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if is_ident_char line.[!i] && not (line.[!i] >= '0' && line.[!i] <= '9') then begin
      let start = !i in
      while !i < n && is_ident_char line.[!i] do
        incr i
      done;
      out := (start, String.sub line start (!i - start)) :: !out
    end
    else incr i
  done;
  List.rev !out

(* Identifiers containing [subtoken], with the subtoken's index. *)
let containing line ~subtoken =
  identifiers line
  |> List.filter_map (fun (start, ident) ->
         let parts = Subtoken.split ident in
         match
           List.mapi (fun i p -> (i, p)) parts
           |> List.find_opt (fun (_, p) -> String.equal p subtoken)
         with
         | Some (idx, _) -> Some (start, ident, idx)
         | None -> None)

(** [fix_line line ~found ~suggested] rewrites the unique identifier on
    [line] containing subtoken [found]. *)
let fix_line line ~found ~suggested : result =
  match containing line ~subtoken:found with
  | [ (start, ident, idx) ] ->
      let fixed_ident = Subtoken.replace_subtoken ident ~index:idx ~with_:suggested in
      let before = String.sub line 0 start in
      let after =
        String.sub line
          (start + String.length ident)
          (String.length line - start - String.length ident)
      in
      Applied (before ^ fixed_ident ^ after)
  | [] -> Not_found_on_line
  | several -> Ambiguous (List.length several)

(** Apply a set of (line number, found, suggested) fixes to [source].
    Returns the new text and the per-fix outcomes (in input order).
    Multiple fixes on one line are applied sequentially. *)
let fix_source source (fixes : (int * string * string) list) :
    string * (int * string * string * result) list =
  let lines = Array.of_list (String.split_on_char '\n' source) in
  let outcomes =
    List.map
      (fun ((lineno, found, suggested) as _fix) ->
        let result =
          if lineno < 1 || lineno > Array.length lines then Not_found_on_line
          else
            match fix_line lines.(lineno - 1) ~found ~suggested with
            | Applied fixed ->
                lines.(lineno - 1) <- fixed;
                Applied fixed
            | other -> other
        in
        (lineno, found, suggested, result))
      fixes
  in
  (String.concat "\n" (Array.to_list lines), outcomes)
