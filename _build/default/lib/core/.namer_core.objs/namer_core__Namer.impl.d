lib/core/namer.ml: Array Frontend Hashtbl List Logs Namer_classifier Namer_corpus Namer_mining Namer_ml Namer_namepath Namer_pattern Namer_tree Namer_util Printf String
