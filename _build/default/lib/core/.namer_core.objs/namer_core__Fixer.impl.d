lib/core/fixer.ml: Array List Namer_util String
