lib/core/frontend.mli: Namer_corpus Namer_namepath Namer_tree
