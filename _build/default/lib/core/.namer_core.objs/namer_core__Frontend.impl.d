lib/core/frontend.ml: List Namer_analysis Namer_corpus Namer_javalang Namer_namepath Namer_pylang Namer_tree Printf
