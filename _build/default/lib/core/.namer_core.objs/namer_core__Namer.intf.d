lib/core/namer.mli: Hashtbl Namer_classifier Namer_corpus Namer_mining Namer_ml Namer_pattern
