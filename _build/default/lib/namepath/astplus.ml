(** The AST → AST+ transformation (§3.1).

    Four rewrites turn a parsed statement tree into the transformed tree the
    name-path abstraction is computed from:

    + literal abstraction — numeric values become [NUM], strings [STR],
      booleans [BOOL], null/None [NONE];
    + argument arity — every function call / definition node gains a
      [NumArgs(k)] parent recording its number of arguments;
    + subtoken splitting — every terminal is replaced by a [NumST(k)] node
      whose children are its subtokens (capitalization preserved, as in
      [assertTrue] → [assert], [True]);
    + origin decoration — when the static analyses computed a precise origin
      for the object or value a name denotes, an origin node is inserted
      between [NumST(k)] and each subtoken leaf (Figure 2(c) inserts
      [TestCase] above [self], [assert] and [True]).

    The transformation is language-independent: it pattern-matches on the
    shared node vocabulary produced by both frontends. *)

module Tree = Namer_tree.Tree
module Subtoken = Namer_util.Subtoken

let num_args k = Printf.sprintf "NumArgs(%d)" k
let num_st k = Printf.sprintf "NumST(%d)" k

(** Name of the callee for a lowered function position: the [Attr] of a
    receiver call, or the bare [NameLoad]. *)
let callee_name (func : Tree.t) : string option =
  match (func.value, func.children) with
  | "AttributeLoad", [ _; { Tree.value = "Attr"; children = [ leaf ] } ] ->
      Some leaf.Tree.value
  | "NameLoad", [ leaf ] -> Some leaf.Tree.value
  | _ -> None

(** Origin of the value of a lowered expression, per the resolver rules
    described in {!Origins}. *)
let expr_origin (o : Origins.t) (t : Tree.t) : string option =
  match (t.value, t.children) with
  | "NameLoad", [ leaf ] -> o.var_origin leaf.Tree.value
  | "Num", _ -> Some "Num"
  | "Str", _ -> Some "Str"
  | "Bool", _ -> Some "Bool"
  | "AttributeLoad", [ { Tree.value = "NameLoad"; children = [ recv ] }; { Tree.value = "Attr"; children = [ attr ] } ]
    when recv.Tree.value = "self" || recv.Tree.value = "this" ->
      o.attr_origin attr.Tree.value
  | "Call", func :: _ -> (
      match callee_name func with Some f -> o.call_origin f | None -> None)
  | "New", { Tree.value = "TypeRef"; children = [ leaf ] } :: _ -> Some leaf.Tree.value
  | "Cast", { Tree.value = "TypeRef"; children = [ leaf ] } :: _ -> Some leaf.Tree.value
  | _ -> None

(* Leaf replacement: NumST(k) over subtokens, each optionally wrapped in an
   origin node. *)
let split_leaf ?origin (value : string) : Tree.t =
  let parts = match Subtoken.split value with [] -> [ value ] | ps -> ps in
  let wrap st =
    match origin with
    | Some o -> Tree.node o [ Tree.leaf st ]
    | None -> Tree.leaf st
  in
  Tree.node (num_st (List.length parts)) (List.map wrap parts)

(* Node kinds whose single leaf child is an identifier-bearing name that may
   carry a variable origin. *)
let is_name_kind = function
  | "NameLoad" | "NameStore" | "NameParam" | "StarParam" | "DoubleStarParam" -> true
  | _ -> false

(** [transform ~origins t] produces the AST+ of statement tree [t]. *)
let transform ~(origins : Origins.t) (t : Tree.t) : Tree.t =
  let rec tx (t : Tree.t) : Tree.t =
    match (t.value, t.children) with
    (* 1. literal abstraction (the literal node keeps its kind; its leaf is
       abstracted, then subtoken-split to NumST(1)). *)
    | "Num", _ -> Tree.node "Num" [ split_leaf "NUM" ]
    | "Str", _ -> Tree.node "Str" [ split_leaf "STR" ]
    | "Bool", _ -> Tree.node "Bool" [ split_leaf "BOOL" ]
    | "NoneLit", _ -> Tree.node "NoneLit" [ split_leaf "NONE" ]
    (* 2+4. calls: arity parent, receiver-origin decoration of the callee. *)
    | "Call", func :: args ->
        let recv_origin =
          match (func.value, func.children) with
          | "AttributeLoad", [ recv; _ ] -> expr_origin origins recv
          | _ -> None
        in
        let func' = tx_callee func recv_origin in
        let nargs = List.length args in
        Tree.node (num_args nargs) [ Tree.node "Call" (func' :: List.map tx args) ]
    | ("New" | "NewArray"), ty :: args ->
        Tree.node
          (num_args (List.length args))
          [ Tree.node t.value (tx ty :: List.map tx args) ]
    | ("FunctionDef" | "MethodDef" | "Lambda"), children ->
        let is_param (c : Tree.t) =
          match c.Tree.value with
          | "NameParam" | "StarParam" | "DoubleStarParam" | "Param" -> true
          | _ -> false
        in
        let nparams = List.length (List.filter is_param children) in
        Tree.node (num_args nparams) [ Tree.node t.value (List.map tx children) ]
    (* 4. variable names: decorate with the variable's origin. *)
    | kind, [ leaf ] when is_name_kind kind && Tree.is_leaf leaf ->
        Tree.node kind [ split_leaf ?origin:(origins.var_origin leaf.Tree.value) leaf.Tree.value ]
    (* plain attribute access: decorate self/this attributes. *)
    | ("AttributeLoad" | "AttributeStore"), [ recv; { Tree.value = "Attr"; children = [ leaf ] } ]
      ->
        let origin =
          match (recv.value, recv.children) with
          | "NameLoad", [ r ] when r.Tree.value = "self" || r.Tree.value = "this" ->
              (* the attribute slot itself: no origin on the name, the origin
                 belongs to the loaded value and is used in store/compare
                 contexts via var tracking; keep undecorated. *)
              None
          | _ -> None
        in
        Tree.node t.value
          [ tx recv; Tree.node "Attr" [ split_leaf ?origin leaf.Tree.value ] ]
    | _, [] -> split_leaf t.value
    | _, children -> Tree.node t.value (List.map tx children)
  (* The callee position of a call: its Attr leaf is decorated with the
     origin of the receiver (Figure 2(c): TestCase over assert and True). *)
  and tx_callee (func : Tree.t) (recv_origin : string option) : Tree.t =
    match (func.value, func.children) with
    | "AttributeLoad", [ recv; { Tree.value = "Attr"; children = [ leaf ] } ] ->
        Tree.node "AttributeLoad"
          [ tx recv; Tree.node "Attr" [ split_leaf ?origin:recv_origin leaf.Tree.value ] ]
    | _ -> tx func
  in
  tx t
