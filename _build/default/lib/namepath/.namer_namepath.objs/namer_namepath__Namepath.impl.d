lib/namepath/namepath.ml: Format Hashtbl List Namer_tree Printf String
