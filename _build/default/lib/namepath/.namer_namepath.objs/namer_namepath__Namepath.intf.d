lib/namepath/namepath.mli: Format Namer_tree
