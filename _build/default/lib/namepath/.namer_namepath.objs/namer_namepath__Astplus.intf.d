lib/namepath/astplus.mli: Namer_tree Origins
