lib/namepath/astplus.ml: List Namer_tree Namer_util Origins Printf
