lib/namepath/origins.ml: List
