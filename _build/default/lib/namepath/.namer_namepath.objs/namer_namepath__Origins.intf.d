lib/namepath/origins.mli:
