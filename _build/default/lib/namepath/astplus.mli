(** The AST → AST+ transformation (§3.1): literal abstraction
    ([NUM]/[STR]/[BOOL]/[NONE]), argument-arity parents ([NumArgs(k)]),
    subtoken splitting ([NumST(k)]), and origin decoration from the static
    analyses.  Language-independent: operates on the shared node vocabulary
    of both frontends. *)

module Tree = Namer_tree.Tree

(** The simple name of a lowered call's callee ([Attr] of a receiver call or
    bare [NameLoad]). *)
val callee_name : Tree.t -> string option

(** Origin of a lowered expression's value under the given resolvers:
    variables via [var_origin], literals via their category, [self]/[this]
    attributes via [attr_origin], calls via [call_origin], [New]/[Cast] via
    their type. *)
val expr_origin : Origins.t -> Tree.t -> string option

(** [transform ~origins t] produces the AST+ of statement tree [t]
    (Figure 2(b) → Figure 2(c)).  Pass {!Origins.none} for the "w/o A"
    ablation. *)
val transform : origins:Origins.t -> Tree.t -> Tree.t
