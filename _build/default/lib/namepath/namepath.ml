(** Name paths (Definition 3.2) and their relational operators.

    A name path is the paper's program abstraction for one identifier-name
    usage: the prefix [S] — the (node value, child index) steps from the root
    of a transformed AST to the parent of a terminal — plus the end node,
    which is either the concrete leaf subtoken or the symbolic node ϵ.

    [extract] enumerates the concrete name paths of a statement's AST+ in
    leaf order, enforcing the two properties of §3.1: all extracted paths
    are concrete and their prefixes are pairwise distinct (duplicate
    prefixes keep the first occurrence; statements whose abstraction would
    conflate distinct leaves under one prefix are simply represented by the
    leftmost one, matching the "keep the first 10 paths" regularization
    spirit of §5.1). *)

module Tree = Namer_tree.Tree

type step = { value : string; index : int }

type t = {
  prefix : step list;
  end_node : string option;  (** [None] is the symbolic node ϵ *)
}

let is_symbolic p = p.end_node = None

(** [np1 ∼ np2]: equal prefixes (Definition 3.4). *)
let same_prefix a b =
  List.length a.prefix = List.length b.prefix
  && List.for_all2
       (fun s1 s2 -> s1.index = s2.index && String.equal s1.value s2.value)
       a.prefix b.prefix

(** [np1 = np2]: equal prefixes, and end nodes equal or either ϵ. *)
let equal a b =
  same_prefix a b
  &&
  match (a.end_node, b.end_node) with
  | None, _ | _, None -> true
  | Some x, Some y -> String.equal x y

(** Forget the end node: the symbolic version of a concrete path. *)
let to_symbolic p = { p with end_node = None }

(** Canonical text of the prefix, e.g.
    ["NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase"].
    Used as the interning key for prefixes. *)
let prefix_key p =
  String.concat " "
    (List.map (fun s -> Printf.sprintf "%s %d" s.value s.index) p.prefix)

let to_string p =
  prefix_key p ^ " " ^ (match p.end_node with Some e -> e | None -> "ϵ")

let pp fmt p = Format.pp_print_string fmt (to_string p)

(** Compare by canonical text — the [sort] used when inserting into the
    FP-tree (Algorithm 1, line 7). *)
let compare_canonical a b = compare (to_string a) (to_string b)

(** [extract ?limit t] returns the concrete name paths of AST+ [t], in leaf
    order, at most [limit] of them (the paper keeps the first 10). *)
let extract ?(limit = 10) (t : Tree.t) : t list =
  let out = ref [] and count = ref 0 in
  let seen_prefix = Hashtbl.create 16 in
  let rec go rev_prefix (node : Tree.t) =
    if !count < limit then
      if Tree.is_leaf node then begin
        let p = { prefix = List.rev rev_prefix; end_node = Some node.Tree.value } in
        let key = prefix_key p in
        if not (Hashtbl.mem seen_prefix key) then begin
          Hashtbl.replace seen_prefix key ();
          out := p :: !out;
          incr count
        end
      end
      else
        List.iteri
          (fun i child ->
            go ({ value = node.Tree.value; index = i } :: rev_prefix) child)
          node.Tree.children
  in
  go [] t;
  List.rev !out

(** Parse the canonical text back to a name path — the inverse of
    {!to_string}, used by tests and the pattern store. *)
let of_string s =
  let parts = String.split_on_char ' ' s in
  let rec go acc = function
    | [ end_ ] ->
        {
          prefix = List.rev acc;
          end_node = (if end_ = "ϵ" then None else Some end_);
        }
    | value :: index :: rest ->
        go ({ value; index = int_of_string index } :: acc) rest
    | [] -> invalid_arg "Namepath.of_string: empty"
  in
  go [] parts
