(** Origin resolvers — the interface between the static analyses (§4.1) and
    the AST+ transformation (§3.1, step 4).

    The points-to / dataflow analyses compute, for every reachable variable,
    field and call, the *origin* of the value it denotes: the allocation
    site's class for objects, the returning function for primitive values,
    or ⊤ (unknown / modified after creation).  The AST+ transformation only
    needs three lookups, packaged here so {!Namer_namepath} does not depend
    on {!Namer_analysis} (the dependency points the other way):

    - [var_origin x]: origin of variable [x] in the current scope
      (including [self] / [this]);
    - [attr_origin a]: origin of attribute/field [a] of the current class
      (Python [self.a], Java [this.a]);
    - [call_origin f]: origin of the value returned by calling [f]
      (by simple name).

    [None] encodes ⊤: no decoration is added, exactly as the paper inserts
    origin nodes only "when the origin sites are precisely computed". *)

type t = {
  var_origin : string -> string option;
  attr_origin : string -> string option;
  call_origin : string -> string option;
}

(** The trivial resolver: every origin is ⊤.  Running the pipeline with
    [none] is the paper's "w/o A" ablation (Tables 2 and 5). *)
let none =
  {
    var_origin = (fun _ -> None);
    attr_origin = (fun _ -> None);
    call_origin = (fun _ -> None);
  }

(** Resolver from association lists, mainly for tests. *)
let of_alists ?(vars = []) ?(attrs = []) ?(calls = []) () =
  {
    var_origin = (fun x -> List.assoc_opt x vars);
    attr_origin = (fun a -> List.assoc_opt a attrs);
    call_origin = (fun f -> List.assoc_opt f calls);
  }
