(** Name paths (Definition 3.2) — the program abstraction for one
    identifier-name usage — and their relational operators (Definition 3.4).

    See the implementation comments for the extraction invariants (§3.1 of
    the paper): extracted paths are concrete and have pairwise-distinct
    prefixes. *)

(** One step of a prefix: a non-terminal's value and the index of the child
    taken. *)
type step = { value : string; index : int }

type t = {
  prefix : step list;  (** S — the root-to-parent steps *)
  end_node : string option;  (** the terminal subtoken; [None] is ϵ *)
}

(** Whether the end node is the symbolic ϵ. *)
val is_symbolic : t -> bool

(** [same_prefix a b] is the paper's [a ∼ b]: equal prefixes. *)
val same_prefix : t -> t -> bool

(** [equal a b] is the paper's [a = b]: equal prefixes, and equal end nodes
    or either ϵ. *)
val equal : t -> t -> bool

(** Forget the end node (make the path symbolic). *)
val to_symbolic : t -> t

(** Canonical text of the prefix alone — the interning key used by the
    pattern store's index. *)
val prefix_key : t -> string

(** Canonical text of the whole path, e.g.
    ["NumArgs(2) 0 Call 0 … NumST(2) 1 TestCase 0 True"]; ϵ renders as
    ["ϵ"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Ordering by canonical text — the [sort] of Algorithm 1, line 7. *)
val compare_canonical : t -> t -> int

(** [extract ?limit t] enumerates the concrete name paths of AST+ [t] in
    leaf order, keeping at most [limit] (default 10, the paper's
    regularization) and the first path per distinct prefix. *)
val extract : ?limit:int -> Namer_tree.Tree.t -> t list

(** Inverse of {!to_string}.  @raise Invalid_argument on malformed input. *)
val of_string : string -> t
