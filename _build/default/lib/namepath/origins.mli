(** Origin resolvers — the interface between the §4.1 static analyses and
    the AST+ transformation.  [None] encodes ⊤ (no decoration), exactly as
    the paper adds origin nodes only "when the origin sites are precisely
    computed". *)

type t = {
  var_origin : string -> string option;
      (** origin of a variable in the current scope (incl. [self]/[this]) *)
  attr_origin : string -> string option;
      (** origin of attribute/field [a] of the current class *)
  call_origin : string -> string option;
      (** origin of the value returned by calling [f] (simple name) *)
}

(** Every origin ⊤ — the "w/o A" ablation of Tables 2 and 5. *)
val none : t

(** Resolver from association lists (tests). *)
val of_alists :
  ?vars:(string * string) list ->
  ?attrs:(string * string) list ->
  ?calls:(string * string) list ->
  unit ->
  t
