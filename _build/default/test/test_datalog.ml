(* Tests for the Datalog engine: fixpoints, guards, indexing, range
   restriction. *)

open Namer_datalog.Datalog
module Interner = Namer_util.Interner

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Transitive closure: path(X,Y) :- edge(X,Y). path(X,Z) :- edge(X,Y), path(Y,Z). *)
let closure edges =
  let t = create () in
  let edge = 0 and path = 1 in
  List.iter (fun (a, b) -> add_fact t ~pred:edge [| a; b |]) edges;
  add_rule t (rule (atom path [ v 0; v 1 ]) [ atom edge [ v 0; v 1 ] ]);
  add_rule t
    (rule (atom path [ v 0; v 2 ]) [ atom edge [ v 0; v 1 ]; atom path [ v 1; v 2 ] ]);
  solve t;
  (t, path)

let test_transitive_closure () =
  let t, path = closure [ (1, 2); (2, 3); (3, 4) ] in
  check_int "6 paths in a 4-chain" 6 (count t ~pred:path);
  check_int "from 1: three targets" 3 (List.length (query_first t ~pred:path ~key:1))

let test_cycle_terminates () =
  let t, path = closure [ (1, 2); (2, 1) ] in
  (* 1→2, 2→1, 1→1, 2→2 *)
  check_int "cycle closure" 4 (count t ~pred:path)

let test_guards () =
  let t = create () in
  let p = 0 and q = 1 in
  List.iter (fun (a, b) -> add_fact t ~pred:p [| a; b |]) [ (1, 1); (1, 2); (2, 2) ];
  (* q(X,Y) :- p(X,Y), X ≠ Y. *)
  add_rule t (rule_g (atom q [ v 0; v 1 ]) [ atom p [ v 0; v 1 ] ] [ Neq (v 0, v 1) ]);
  solve t;
  check_int "only the off-diagonal tuple" 1 (count t ~pred:q)

let test_eq_guard () =
  let t = create () in
  let p = 0 and q = 1 in
  List.iter (fun (a, b) -> add_fact t ~pred:p [| a; b |]) [ (1, 1); (1, 2) ];
  add_rule t (rule_g (atom q [ v 0; v 1 ]) [ atom p [ v 0; v 1 ] ] [ Eq (v 0, v 1) ]);
  solve t;
  check_int "only the diagonal tuple" 1 (count t ~pred:q)

let test_constants_in_rules () =
  let t = create () in
  let p = 0 and q = 1 in
  List.iter (fun x -> add_fact t ~pred:p [| x; 10 |]) [ 1; 2; 3 ];
  add_fact t ~pred:p [| 4; 20 |];
  (* q(X, 99) :- p(X, 10). *)
  add_rule t (rule (atom q [ v 0; c 99 ]) [ atom p [ v 0; c 10 ] ]);
  solve t;
  check_int "matches constant column" 3 (count t ~pred:q);
  List.iter (fun tup -> check_int "head constant" 99 tup.(1)) (query t ~pred:q)

let test_incremental_resolve () =
  let t = create () in
  let edge = 0 and path = 1 in
  add_fact t ~pred:edge [| 1; 2 |];
  add_rule t (rule (atom path [ v 0; v 1 ]) [ atom edge [ v 0; v 1 ] ]);
  add_rule t
    (rule (atom path [ v 0; v 2 ]) [ atom edge [ v 0; v 1 ]; atom path [ v 1; v 2 ] ]);
  solve t;
  check_int "first fixpoint" 1 (count t ~pred:path);
  add_fact t ~pred:edge [| 2; 3 |];
  solve t;
  check_int "resumed fixpoint picks up new fact" 3 (count t ~pred:path)

let test_range_restriction () =
  let t = create () in
  Alcotest.check_raises "unbound head var rejected"
    (Invalid_argument "Datalog.add_rule: head variable not bound in body")
    (fun () -> add_rule t (rule (atom 1 [ v 0; v 5 ]) [ atom 0 [ v 0; v 1 ] ]))

let test_solve_idempotent () =
  let t, path = closure [ (1, 2); (2, 3) ] in
  let n = count t ~pred:path in
  solve t;
  check_int "second solve is a no-op" n (count t ~pred:path)

let prop_closure_size =
  (* on a random chain graph of n nodes, closure has n(n-1)/2 paths *)
  QCheck.Test.make ~name:"datalog: chain closure size" ~count:20
    (QCheck.int_range 2 15)
    (fun n ->
      let edges = List.init (n - 1) (fun i -> (i, i + 1)) in
      let t, path = closure edges in
      count t ~pred:path = n * (n - 1) / 2)

let test_query_first_missing () =
  let t = create () in
  check_bool "empty relation" true (query_first t ~pred:5 ~key:1 = [])

let suite =
  [
    Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
    Alcotest.test_case "cycles terminate" `Quick test_cycle_terminates;
    Alcotest.test_case "neq guard" `Quick test_guards;
    Alcotest.test_case "eq guard" `Quick test_eq_guard;
    Alcotest.test_case "constants in rules" `Quick test_constants_in_rules;
    Alcotest.test_case "incremental resolve" `Quick test_incremental_resolve;
    Alcotest.test_case "range restriction check" `Quick test_range_restriction;
    Alcotest.test_case "solve idempotent" `Quick test_solve_idempotent;
    QCheck_alcotest.to_alcotest prop_closure_size;
    Alcotest.test_case "query_first on empty" `Quick test_query_first_missing;
  ]
