(* Tests for the synthetic Big Code generator and the grading oracle. *)

module Corpus = Namer_corpus.Corpus
module Issue = Namer_corpus.Issue

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let small_cfg lang =
  {
    (Corpus.default_config lang) with
    Corpus.n_repos = 4;
    files_per_repo = (3, 5);
    n_commit_files = 10;
    issue_rate = 0.08;
    benign_rate = 0.08;
  }

let py () = Corpus.generate (small_cfg Corpus.Python)
let java () = Corpus.generate (small_cfg Corpus.Java)

let test_determinism () =
  let a = py () and b = py () in
  check_int "same file count" (List.length a.Corpus.files) (List.length b.Corpus.files);
  List.iter2
    (fun (f1 : Corpus.file) (f2 : Corpus.file) ->
      check_str "identical sources" f1.Corpus.source f2.Corpus.source)
    a.Corpus.files b.Corpus.files;
  check_int "same injections" (List.length a.Corpus.injections)
    (List.length b.Corpus.injections)

let test_seed_changes_output () =
  let a = py () in
  let b = Corpus.generate { (small_cfg Corpus.Python) with Corpus.seed = 4242 } in
  check_bool "different seeds differ" true
    (List.exists2
       (fun (f1 : Corpus.file) (f2 : Corpus.file) -> f1.Corpus.source <> f2.Corpus.source)
       a.Corpus.files b.Corpus.files)

let test_python_parses () =
  let c = py () in
  List.iter
    (fun (f : Corpus.file) ->
      try ignore (Namer_pylang.Py_parser.parse_module f.Corpus.source)
      with _ -> Alcotest.failf "unparseable python file %s:\n%s" f.Corpus.path f.Corpus.source)
    c.Corpus.files

let test_java_parses () =
  let c = java () in
  List.iter
    (fun (f : Corpus.file) ->
      try ignore (Namer_javalang.Java_parser.parse_compilation_unit f.Corpus.source)
      with _ -> Alcotest.failf "unparseable java file %s:\n%s" f.Corpus.path f.Corpus.source)
    c.Corpus.files

let test_commits_parse_both_sides () =
  List.iter
    (fun (c, parse) ->
      List.iter
        (fun (before, after) ->
          try
            parse before;
            parse after
          with _ -> Alcotest.fail "unparseable commit side")
        c)
    [
      ((py ()).Corpus.commits, fun (s : string) -> ignore (Namer_pylang.Py_parser.parse_module s));
      ( (java ()).Corpus.commits,
        fun s -> ignore (Namer_javalang.Java_parser.parse_compilation_unit s) );
    ]

let line_of_file (c : Corpus.t) file line =
  let f = List.find (fun (f : Corpus.file) -> f.Corpus.path = file) c.Corpus.files in
  List.nth (String.split_on_char '\n' f.Corpus.source) (line - 1)

let test_injection_lines_accurate () =
  let c = py () in
  check_bool "has injections" true (c.Corpus.injections <> []);
  List.iter
    (fun (inj : Issue.injection) ->
      let line = line_of_file c inj.Issue.file inj.Issue.line in
      let contains needle hay =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        n > 0 && go 0
      in
      check_bool
        (Printf.sprintf "wrong ident %s on its line (%s)" inj.Issue.wrong_ident line)
        true
        (contains inj.Issue.wrong_ident line))
    c.Corpus.injections

let test_benign_lines_accurate () =
  let c = py () in
  check_bool "has benigns" true (c.Corpus.benigns <> []);
  List.iter
    (fun (b : Issue.benign) ->
      (* the recorded line exists *)
      ignore (line_of_file c b.Issue.bfile b.Issue.bline))
    c.Corpus.benigns

let test_apply_fixes () =
  let text = "a\nthis.publicKey = publickKey;\nb" in
  let inj =
    {
      Issue.file = "f";
      line = 2;
      wrong = "publick";
      expected = "public";
      wrong_ident = "publickKey";
      fixed_ident = "publicKey";
      category = Issue.Code_quality Issue.Typo;
      description = "";
    }
  in
  check_str "line-targeted fix" "a\nthis.publicKey = publicKey;\nb"
    (Corpus.apply_fixes text [ inj ])

let test_apply_fixes_word_boundary () =
  let text = "progDialog.show(); notprogDialogHere();" in
  let inj =
    {
      Issue.file = "f";
      line = 1;
      wrong = "prog";
      expected = "progress";
      wrong_ident = "progDialog";
      fixed_ident = "progressDialog";
      category = Issue.Code_quality Issue.Confusing_name;
      description = "";
    }
  in
  check_str "word boundary respected" "progressDialog.show(); notprogDialogHere();"
    (Corpus.apply_fixes text [ inj ])

let test_oracle_grading () =
  let c = py () in
  let oracle = Corpus.Oracle.of_corpus c in
  let inj = List.hd c.Corpus.injections in
  check_bool "true positive" true
    (Corpus.Oracle.grade oracle ~file:inj.Issue.file ~line:inj.Issue.line
       ~found:inj.Issue.wrong ~suggested:inj.Issue.expected ~symmetric:false
    = Corpus.Oracle.True_issue inj.Issue.category);
  check_bool "wrong suggestion is FP" true
    (Corpus.Oracle.grade oracle ~file:inj.Issue.file ~line:inj.Issue.line
       ~found:inj.Issue.wrong ~suggested:"nonsense" ~symmetric:false
    = Corpus.Oracle.False_positive);
  check_bool "swapped direction accepted when symmetric" true
    (Corpus.Oracle.grade oracle ~file:inj.Issue.file ~line:inj.Issue.line
       ~found:inj.Issue.expected ~suggested:inj.Issue.wrong ~symmetric:true
    = Corpus.Oracle.True_issue inj.Issue.category);
  check_bool "unknown location is FP" true
    (Corpus.Oracle.grade oracle ~file:"nowhere.py" ~line:1 ~found:"a" ~suggested:"b"
       ~symmetric:false
    = Corpus.Oracle.False_positive)

let test_oracle_benign () =
  let c = py () in
  let oracle = Corpus.Oracle.of_corpus c in
  let b = List.hd c.Corpus.benigns in
  check_bool "benign location" true
    (Corpus.Oracle.grade oracle ~file:b.Issue.bfile ~line:b.Issue.bline ~found:"x"
       ~suggested:"y" ~symmetric:false
    = Corpus.Oracle.Known_benign)

let test_category_coverage () =
  (* with high rates a moderately sized corpus covers every category *)
  let cfg =
    { (small_cfg Corpus.Python) with Corpus.n_repos = 20; issue_rate = 0.15 }
  in
  let c = Corpus.generate cfg in
  let cats =
    List.map (fun (i : Issue.injection) -> Issue.category_name i.Issue.category)
      c.Corpus.injections
    |> List.sort_uniq compare
  in
  check_bool "semantic defects present" true (List.mem "semantic defect" cats);
  check_bool "typos present" true (List.mem "typo" cats);
  check_bool "≥ 5 categories" true (List.length cats >= 5)

let test_typo_generator () =
  let rng = Namer_util.Prng.create 9 in
  for _ = 1 to 100 do
    let w = "picture" in
    let t = Namer_corpus.Vocab.typo rng w in
    check_bool "typo differs" true (t <> w);
    check_bool "typo is close" true (Namer_util.Edit_distance.damerau w t <= 2)
  done

let suite =
  [
    Alcotest.test_case "generation is deterministic" `Quick test_determinism;
    Alcotest.test_case "seeds matter" `Quick test_seed_changes_output;
    Alcotest.test_case "python corpus parses" `Quick test_python_parses;
    Alcotest.test_case "java corpus parses" `Quick test_java_parses;
    Alcotest.test_case "commits parse" `Quick test_commits_parse_both_sides;
    Alcotest.test_case "injection lines accurate" `Quick test_injection_lines_accurate;
    Alcotest.test_case "benign lines accurate" `Quick test_benign_lines_accurate;
    Alcotest.test_case "apply_fixes" `Quick test_apply_fixes;
    Alcotest.test_case "apply_fixes word boundary" `Quick test_apply_fixes_word_boundary;
    Alcotest.test_case "oracle grading" `Quick test_oracle_grading;
    Alcotest.test_case "oracle benign" `Quick test_oracle_benign;
    Alcotest.test_case "category coverage" `Quick test_category_coverage;
    Alcotest.test_case "typo generator" `Quick test_typo_generator;
  ]
