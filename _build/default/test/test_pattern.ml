(* Tests for name patterns: the Figure 2(e) confusing-word pattern, the
   Example 3.8 consistency pattern, and the pattern store/index. *)

module Namepath = Namer_namepath.Namepath
module Pattern = Namer_pattern.Pattern

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let np = Namepath.of_string

(* Figure 2(d): the paths of the buggy statement. *)
let figure2_paths =
  List.map np
    [
      "NumArgs(2) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(1) 0 TestCase 0 self";
      "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 0 TestCase 0 assert";
      "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase 0 True";
      "NumArgs(2) 0 Call 1 AttributeLoad 0 NameLoad 0 NumST(1) 0 picture";
      "NumArgs(2) 0 Call 2 Num 0 NumST(1) 0 NUM";
    ]

(* Figure 2(e): the pattern. *)
let figure2_pattern =
  Pattern.make
    ~kind:(Pattern.Confusing_word { correct = "Equal" })
    ~condition:
      (List.map np
         [
           "NumArgs(2) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(1) 0 TestCase 0 self";
           "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 0 TestCase 0 assert";
           "NumArgs(2) 0 Call 2 Num 0 NumST(1) 0 NUM";
         ])
    ~deduction:
      [
        Namepath.to_symbolic
          (np "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase 0 True");
      ]

let test_figure2_violation () =
  let s = Pattern.Stmt_paths.of_paths figure2_paths in
  match Pattern.check figure2_pattern s with
  | Pattern.Violated info ->
      check_str "found" "True" info.Pattern.found;
      check_str "suggested fix" "Equal" info.Pattern.suggested
  | _ -> Alcotest.fail "expected a violation"

let test_figure2_satisfaction () =
  (* the corrected statement: assertEqual *)
  let fixed =
    List.map
      (fun (p : Namepath.t) ->
        if p.Namepath.end_node = Some "True" then { p with Namepath.end_node = Some "Equal" }
        else p)
      figure2_paths
  in
  let s = Pattern.Stmt_paths.of_paths fixed in
  check_bool "assertEqual satisfies" true (Pattern.check figure2_pattern s = Pattern.Satisfied)

let test_figure2_no_match () =
  (* a statement missing the NUM argument path does not match *)
  let partial = List.filteri (fun i _ -> i <> 4) figure2_paths in
  let s = Pattern.Stmt_paths.of_paths partial in
  check_bool "missing condition path" true
    (Pattern.check figure2_pattern s = Pattern.No_match)

let test_condition_end_mismatch_no_match () =
  (* same prefixes but the receiver is "other", not "self" *)
  let other =
    List.map
      (fun (p : Namepath.t) ->
        if p.Namepath.end_node = Some "self" then { p with Namepath.end_node = Some "other" }
        else p)
      figure2_paths
  in
  let s = Pattern.Stmt_paths.of_paths other in
  check_bool "condition end must match" true
    (Pattern.check figure2_pattern s = Pattern.No_match)

(* Example 3.8: consistency pattern for self.<n1> = <n2>. *)
let ex38_pattern =
  Pattern.make ~kind:Pattern.Consistency
    ~condition:
      [ np "Assign 0 AttributeStore 0 NameLoad 0 NumST(1) 0 Object 0 self" ]
    ~deduction:
      [
        Namepath.to_symbolic (np "Assign 0 AttributeStore 1 Attr 0 NumST(1) 0 name");
        Namepath.to_symbolic (np "Assign 1 NameLoad 0 NumST(1) 0 Str 0 name");
      ]

let ex38_stmt attr value =
  Pattern.Stmt_paths.of_paths
    (List.map np
       [
         "Assign 0 AttributeStore 0 NameLoad 0 NumST(1) 0 Object 0 self";
         "Assign 0 AttributeStore 1 Attr 0 NumST(1) 0 " ^ attr;
         "Assign 1 NameLoad 0 NumST(1) 0 Str 0 " ^ value;
       ])

let test_consistency_satisfied () =
  check_bool "self.name = name" true
    (Pattern.check ex38_pattern (ex38_stmt "name" "name") = Pattern.Satisfied)

let test_consistency_case_insensitive () =
  check_bool "case-folded comparison" true
    (Pattern.check ex38_pattern (ex38_stmt "Name" "name") = Pattern.Satisfied)

let test_consistency_violated () =
  match Pattern.check ex38_pattern (ex38_stmt "help" "docstring") with
  | Pattern.Violated info ->
      check_str "found (deduction-2 side)" "docstring" info.Pattern.found;
      check_str "suggested" "help" info.Pattern.suggested
  | _ -> Alcotest.fail "expected violation"

let test_consistency_requires_both_prefixes () =
  let s =
    Pattern.Stmt_paths.of_paths
      (List.map np
         [
           "Assign 0 AttributeStore 0 NameLoad 0 NumST(1) 0 Object 0 self";
           "Assign 0 AttributeStore 1 Attr 0 NumST(1) 0 name";
         ])
  in
  check_bool "missing deduction prefix" true (Pattern.check ex38_pattern s = Pattern.No_match)

(* ---------------- store & helpers ---------------- *)

let test_store_dedup () =
  let store = Pattern.Store.create () in
  let id1 = Pattern.Store.add store figure2_pattern in
  let id2 = Pattern.Store.add store figure2_pattern in
  check_int "same canonical form, same id" id1 id2;
  check_int "store size" 1 (Pattern.Store.size store);
  let id3 = Pattern.Store.add store ex38_pattern in
  check_bool "distinct patterns distinct ids" true (id3 <> id1)

let test_store_candidates () =
  let store = Pattern.Store.create () in
  ignore (Pattern.Store.add store figure2_pattern);
  ignore (Pattern.Store.add store ex38_pattern);
  let s = Pattern.Stmt_paths.of_paths figure2_paths in
  let cands = Pattern.Store.candidates store s in
  check_int "only the matching-deduction pattern is a candidate" 1 (List.length cands);
  check_bool "it is the figure-2 pattern" true
    ((List.hd cands).Pattern.kind = Pattern.Confusing_word { correct = "Equal" })

let test_targets_function_name () =
  check_bool "figure 2 pattern targets a callee" true
    (Pattern.targets_function_name figure2_pattern);
  check_bool "consistency on attributes does not" false
    (Pattern.targets_function_name ex38_pattern)

let test_canonical_stable () =
  let p1 =
    Pattern.make ~kind:Pattern.Consistency
      ~condition:[ np "A 0 B 0 x"; np "A 1 C 0 y" ]
      ~deduction:[ Namepath.to_symbolic (np "A 2 D 0 z") ]
  in
  let p2 =
    Pattern.make ~kind:Pattern.Consistency
      ~condition:[ np "A 1 C 0 y"; np "A 0 B 0 x" ] (* reordered *)
      ~deduction:[ Namepath.to_symbolic (np "A 2 D 0 z") ]
  in
  check_str "canonical form order-independent" (Pattern.canonical p1) (Pattern.canonical p2)

let test_epsilon_condition () =
  (* a symbolic condition path matches any end *)
  let p =
    Pattern.make
      ~kind:(Pattern.Confusing_word { correct = "Equal" })
      ~condition:
        [ Namepath.to_symbolic (np "NumArgs(2) 0 Call 2 Num 0 NumST(1) 0 NUM") ]
      ~deduction:
        [
          Namepath.to_symbolic
            (np "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(2) 1 TestCase 0 True");
        ]
  in
  let s = Pattern.Stmt_paths.of_paths figure2_paths in
  check_bool "ϵ condition matches" true
    (match Pattern.check p s with Pattern.Violated _ -> true | _ -> false)

let suite =
  [
    Alcotest.test_case "figure 2(e): violation" `Quick test_figure2_violation;
    Alcotest.test_case "figure 2(e): satisfaction" `Quick test_figure2_satisfaction;
    Alcotest.test_case "figure 2(e): no match" `Quick test_figure2_no_match;
    Alcotest.test_case "condition end mismatch" `Quick test_condition_end_mismatch_no_match;
    Alcotest.test_case "example 3.8: satisfied" `Quick test_consistency_satisfied;
    Alcotest.test_case "example 3.8: case-insensitive" `Quick test_consistency_case_insensitive;
    Alcotest.test_case "example 3.8: violated" `Quick test_consistency_violated;
    Alcotest.test_case "consistency needs both prefixes" `Quick
      test_consistency_requires_both_prefixes;
    Alcotest.test_case "store: dedup" `Quick test_store_dedup;
    Alcotest.test_case "store: candidate index" `Quick test_store_candidates;
    Alcotest.test_case "feature 13 helper" `Quick test_targets_function_name;
    Alcotest.test_case "canonical order-independence" `Quick test_canonical_stable;
    Alcotest.test_case "ϵ in conditions" `Quick test_epsilon_condition;
  ]

(* ---------------- persistence ---------------- *)

module Pattern_io = Namer_pattern.Pattern_io

let test_io_round_trip () =
  let store = Pattern.Store.create () in
  ignore (Pattern.Store.add store figure2_pattern);
  ignore (Pattern.Store.add store ex38_pattern);
  let reloaded = Pattern_io.of_string (Pattern_io.to_string store) in
  check_int "same size" (Pattern.Store.size store) (Pattern.Store.size reloaded);
  (* canonical forms survive the round trip *)
  let canon s = Pattern.Store.fold (fun acc p -> Pattern.canonical p :: acc) s [] in
  Alcotest.(check (list string)) "same canonical forms"
    (List.sort compare (canon store))
    (List.sort compare (canon reloaded))

let test_io_reloaded_patterns_work () =
  let store = Pattern.Store.create () in
  ignore (Pattern.Store.add store figure2_pattern);
  let reloaded = Pattern_io.of_string (Pattern_io.to_string store) in
  let s = Pattern.Stmt_paths.of_paths figure2_paths in
  let violated =
    Pattern.Store.candidates reloaded s
    |> List.exists (fun p ->
           match Pattern.check p s with Pattern.Violated _ -> true | _ -> false)
  in
  check_bool "reloaded pattern still fires" true violated

let test_io_comments_and_blanks () =
  let text = "# comment\n\n" ^ Pattern.canonical ex38_pattern ^ "\n" in
  check_int "comments skipped" 1 (Pattern.Store.size (Pattern_io.of_string text))

let test_io_parse_error () =
  check_bool "garbage rejected" true
    (try
       ignore (Pattern_io.of_string "NOT A PATTERN\n");
       false
     with Pattern_io.Parse_error _ -> true)

let io_suite =
  [
    Alcotest.test_case "io: round trip" `Quick test_io_round_trip;
    Alcotest.test_case "io: reloaded patterns fire" `Quick test_io_reloaded_patterns_work;
    Alcotest.test_case "io: comments and blanks" `Quick test_io_comments_and_blanks;
    Alcotest.test_case "io: parse errors" `Quick test_io_parse_error;
  ]

let suite = suite @ io_suite

(* ---------------- ordering patterns (extension) ---------------- *)

let ordering_pattern =
  Pattern.make
    ~kind:(Pattern.Ordering { first = "width"; second = "height" })
    ~condition:[ np "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(1) 0 resize" ]
    ~deduction:
      [
        np "NumArgs(2) 0 Call 1 NameLoad 0 NumST(1) 0 width";
        np "NumArgs(2) 0 Call 2 NameLoad 0 NumST(1) 0 height";
      ]

let resize_stmt a b =
  Pattern.Stmt_paths.of_paths
    (List.map np
       [
         "NumArgs(2) 0 Call 0 AttributeLoad 0 NameLoad 0 NumST(1) 0 image";
         "NumArgs(2) 0 Call 0 AttributeLoad 1 Attr 0 NumST(1) 0 resize";
         "NumArgs(2) 0 Call 1 NameLoad 0 NumST(1) 0 " ^ a;
         "NumArgs(2) 0 Call 2 NameLoad 0 NumST(1) 0 " ^ b;
       ])

let test_ordering_satisfied () =
  check_bool "canonical order satisfies" true
    (Pattern.check ordering_pattern (resize_stmt "width" "height") = Pattern.Satisfied)

let test_ordering_swap_violates () =
  match Pattern.check ordering_pattern (resize_stmt "height" "width") with
  | Pattern.Violated info ->
      check_str "found" "height" info.Pattern.found;
      check_str "suggested" "width" info.Pattern.suggested
  | _ -> Alcotest.fail "expected swap violation"

let test_ordering_unrelated_no_match () =
  check_bool "other words are not this pattern's business" true
    (Pattern.check ordering_pattern (resize_stmt "size" "scale") = Pattern.No_match)

let test_ordering_io_round_trip () =
  let store = Pattern.Store.create () in
  ignore (Pattern.Store.add store ordering_pattern);
  let reloaded = Pattern_io.of_string (Pattern_io.to_string store) in
  check_int "round trip" 1 (Pattern.Store.size reloaded);
  check_bool "kind preserved" true
    (Pattern.Store.fold
       (fun acc p ->
         acc || p.Pattern.kind = Pattern.Ordering { first = "width"; second = "height" })
       reloaded false)

let ordering_suite =
  [
    Alcotest.test_case "ordering: satisfied" `Quick test_ordering_satisfied;
    Alcotest.test_case "ordering: swap violates" `Quick test_ordering_swap_violates;
    Alcotest.test_case "ordering: unrelated no-match" `Quick test_ordering_unrelated_no_match;
    Alcotest.test_case "ordering: io round trip" `Quick test_ordering_io_round_trip;
  ]

let suite = suite @ ordering_suite
