(* Tests for the §4.1 analyses: the points-to solver, the Python
   interprocedural analysis with k-call-site contexts, and the Java
   declared-type/flow analysis. *)

open Namer_analysis

let check_bool = Alcotest.(check bool)
let check_opt = Alcotest.(check (option string))
let check_int = Alcotest.(check int)

(* ---------------- Solver ---------------- *)

let test_solver_direct () =
  let s = Solver.create () in
  Solver.alloc s ~key:"x" ~origin:"Intent";
  check_opt "direct allocation" (Some "Intent") (Solver.singleton_origin s ~key:"x")

let test_solver_copy_chain () =
  let s = Solver.create () in
  Solver.alloc s ~key:"a" ~origin:"Picture";
  Solver.assign s ~dst:"b" ~src:"a";
  Solver.assign s ~dst:"c" ~src:"b";
  check_opt "flows through copies" (Some "Picture") (Solver.singleton_origin s ~key:"c")

let test_solver_merge_imprecise () =
  let s = Solver.create () in
  Solver.alloc s ~key:"x" ~origin:"A";
  Solver.alloc s ~key:"x" ~origin:"B";
  check_opt "two origins = imprecise" None (Solver.singleton_origin s ~key:"x");
  check_int "both tracked" 2 (List.length (Solver.origins_of s ~key:"x"))

let test_solver_top_poisons () =
  let s = Solver.create () in
  Solver.alloc s ~key:"x" ~origin:Solver.top;
  check_opt "⊤ is not precise" None (Solver.singleton_origin s ~key:"x")

let test_solver_unknown_key () =
  let s = Solver.create () in
  check_opt "unknown key" None (Solver.singleton_origin s ~key:"nope");
  check_bool "empty origins" true (Solver.origins_of s ~key:"nope" = [])

let test_solver_cycle () =
  let s = Solver.create () in
  Solver.alloc s ~key:"a" ~origin:"T";
  Solver.assign s ~dst:"b" ~src:"a";
  Solver.assign s ~dst:"a" ~src:"b";
  check_opt "cyclic copies terminate" (Some "T") (Solver.singleton_origin s ~key:"b")

(* ---------------- Python analysis ---------------- *)

let py_origins src ~cls ~fn =
  let m = Namer_pylang.Py_parser.parse_module src in
  let a = Py_analysis.analyze m in
  Py_analysis.origins_for a ~cls ~fn

let test_py_self_root_base () =
  let o =
    py_origins
      "from unittest import TestCase\nclass TestPicture(TestCase):\n    def test(self):\n        pass\n"
      ~cls:(Some "TestPicture") ~fn:(Some "test")
  in
  check_opt "self origin is the external root base" (Some "TestCase")
    (o.Namer_namepath.Origins.var_origin "self")

let test_py_self_inheritance_chain () =
  let o =
    py_origins
      "class Base(TestCase):\n    pass\nclass Derived(Base):\n    def m(self):\n        pass\n"
      ~cls:(Some "Derived") ~fn:(Some "m")
  in
  check_opt "chain followed through in-file base" (Some "TestCase")
    (o.Namer_namepath.Origins.var_origin "self")

let test_py_self_no_base () =
  let o =
    py_origins "class C(object):\n    def m(self):\n        pass\n"
      ~cls:(Some "C") ~fn:(Some "m")
  in
  (* object is external, so it is the chain's root *)
  check_opt "object-rooted" (Some "object") (o.Namer_namepath.Origins.var_origin "self")

let test_py_import_alias () =
  let o =
    py_origins "import numpy as np\n" ~cls:None ~fn:None
  in
  check_opt "module alias origin" (Some "numpy") (o.Namer_namepath.Origins.var_origin "np")

let test_py_allocation () =
  let o =
    py_origins "def f():\n    pic = Picture()\n    x = pic\n    return x\n"
      ~cls:None ~fn:(Some "f")
  in
  check_opt "allocation" (Some "Picture") (o.Namer_namepath.Origins.var_origin "pic");
  check_opt "copy" (Some "Picture") (o.Namer_namepath.Origins.var_origin "x")

let test_py_literals () =
  let o =
    py_origins "def f():\n    s = \"x\"\n    n = 3\n    b = True\n    xs = [1]\n"
      ~cls:None ~fn:(Some "f")
  in
  let v = o.Namer_namepath.Origins.var_origin in
  check_opt "str" (Some "Str") (v "s");
  check_opt "num" (Some "Num") (v "n");
  check_opt "bool" (Some "Bool") (v "b");
  check_opt "list" (Some "List") (v "xs")

let test_py_modified_is_top () =
  let o =
    py_origins "def f():\n    n = 3\n    n += 1\n" ~cls:None ~fn:(Some "f")
  in
  check_opt "augmented assignment poisons" None (o.Namer_namepath.Origins.var_origin "n")

let test_py_external_call_value_origin () =
  let o =
    py_origins "def f(path):\n    data = parse(path)\n" ~cls:None ~fn:(Some "f")
  in
  check_opt "function-returning-value origin" (Some "parse")
    (o.Namer_namepath.Origins.var_origin "data")

let test_py_interprocedural_return () =
  let o =
    py_origins
      "def make():\n    return Widget()\ndef use():\n    w = make()\n"
      ~cls:None ~fn:(Some "use")
  in
  check_opt "return value flows to caller" (Some "Widget")
    (o.Namer_namepath.Origins.var_origin "w")

let test_py_interprocedural_param () =
  let o =
    py_origins
      "def helper(w):\n    return w\ndef caller():\n    x = helper(Widget())\n"
      ~cls:None ~fn:(Some "helper")
  in
  check_opt "argument binds to parameter" (Some "Widget")
    (o.Namer_namepath.Origins.var_origin "w")

let test_py_attr_origin () =
  let o =
    py_origins
      "class C(object):\n    def __init__(self):\n        self.slide = Slide()\n    def m(self):\n        pass\n"
      ~cls:(Some "C") ~fn:(Some "m")
  in
  check_opt "attribute origin across methods" (Some "Slide")
    (o.Namer_namepath.Origins.attr_origin "slide")

let test_py_except_binding () =
  let o =
    py_origins
      "def f():\n    try:\n        g()\n    except ValueError as e:\n        pass\n"
      ~cls:None ~fn:(Some "f")
  in
  check_opt "handler binder" (Some "ValueError") (o.Namer_namepath.Origins.var_origin "e")

let test_py_with_binding () =
  let o =
    py_origins "def f(p):\n    with open(p) as fh:\n        pass\n"
      ~cls:None ~fn:(Some "f")
  in
  check_opt "with binder" (Some "open") (o.Namer_namepath.Origins.var_origin "fh")

let test_py_call_origin () =
  let o = py_origins "def f():\n    pass\n" ~cls:None ~fn:(Some "f") in
  check_opt "capitalized callee is allocation" (Some "Picture")
    (o.Namer_namepath.Origins.call_origin "Picture");
  check_opt "lowercase external callee unknown" None
    (o.Namer_namepath.Origins.call_origin "helper")

let test_py_conflicting_assignments () =
  let o =
    py_origins "def f():\n    x = Picture()\n    x = Slide()\n"
      ~cls:None ~fn:(Some "f")
  in
  check_opt "conflicting origins are imprecise" None
    (o.Namer_namepath.Origins.var_origin "x")

let test_py_effective_k () =
  let m = Namer_pylang.Py_parser.parse_module "def f():\n    return 1\ndef g():\n    return f()\n" in
  let a = Py_analysis.analyze ~k:5 m in
  check_int "k preserved without explosion" 5 (Py_analysis.effective_k a);
  check_bool "instances enumerated" true (Py_analysis.n_instances a >= 2)

(* ---------------- Java analysis ---------------- *)

let java_origins src ~cls ~fn =
  let u = Namer_javalang.Java_parser.parse_compilation_unit src in
  let a = Java_analysis.analyze u in
  Java_analysis.origins_for a ~cls ~fn

let test_java_this_root () =
  let o =
    java_origins "class MainActivity extends Activity { void m() { } }"
      ~cls:(Some "MainActivity") ~fn:(Some "m")
  in
  check_opt "this is root supertype" (Some "Activity")
    (o.Namer_namepath.Origins.var_origin "this")

let test_java_declared_local () =
  let o =
    java_origins "class C { void m() { Intent intent = getIntent(); } }"
      ~cls:(Some "C") ~fn:(Some "m")
  in
  check_opt "declared type wins for specific refs" (Some "Intent")
    (o.Namer_namepath.Origins.var_origin "intent")

let test_java_object_gets_allocation () =
  let o =
    java_origins "class C { void m() { Object x = new Intent(); } }"
      ~cls:(Some "C") ~fn:(Some "m")
  in
  check_opt "Object falls through to allocation" (Some "Intent")
    (o.Namer_namepath.Origins.var_origin "x")

let test_java_primitives () =
  let o =
    java_origins "class C { void m() { int n = 3; boolean b = true; String s = \"x\"; } }"
      ~cls:(Some "C") ~fn:(Some "m")
  in
  let v = o.Namer_namepath.Origins.var_origin in
  check_opt "int literal" (Some "Num") (v "n");
  check_opt "boolean" (Some "Bool") (v "b");
  check_opt "String declared" (Some "String") (v "s")

let test_java_field_origin () =
  let o =
    java_origins "class C { private ProgressDialog dialog; void m() { } }"
      ~cls:(Some "C") ~fn:(Some "m")
  in
  check_opt "field declared type" (Some "ProgressDialog")
    (o.Namer_namepath.Origins.attr_origin "dialog")

let test_java_catch_binder () =
  let o =
    java_origins "class C { void m() { try { f(); } catch (Throwable e) { } } }"
      ~cls:(Some "C") ~fn:(Some "m")
  in
  check_opt "catch binder" (Some "Throwable") (o.Namer_namepath.Origins.var_origin "e")

let test_java_foreach_binder () =
  let o =
    java_origins "class C { void m(java.util.List items) { for (String s : items) { } } }"
      ~cls:(Some "C") ~fn:(Some "m")
  in
  check_opt "foreach binder" (Some "String") (o.Namer_namepath.Origins.var_origin "s")

let test_java_return_type_origin () =
  let o =
    java_origins
      "class C { Intent build() { return new Intent(); } void m() { } }"
      ~cls:(Some "C") ~fn:(Some "m")
  in
  check_opt "in-file method return type" (Some "Intent")
    (o.Namer_namepath.Origins.call_origin "build")

let test_java_param_origin () =
  let o =
    java_origins "class C { void m(Context context) { } }"
      ~cls:(Some "C") ~fn:(Some "m")
  in
  check_opt "parameter declared type" (Some "Context")
    (o.Namer_namepath.Origins.var_origin "context")

let test_java_increment_poisons () =
  let o =
    java_origins "class C { void m() { int n = 3; n++; } }"
      ~cls:(Some "C") ~fn:(Some "m")
  in
  (* n++ assigns ⊤ only through Assign_e; Postfix in expression position is
     evaluated but does not rebind — declared-primitive locals track their
     initializer, so re-binding via arithmetic must poison: *)
  check_opt "incremented local imprecise" None (o.Namer_namepath.Origins.var_origin "n")

let suite =
  [
    Alcotest.test_case "solver: direct allocation" `Quick test_solver_direct;
    Alcotest.test_case "solver: copy chains" `Quick test_solver_copy_chain;
    Alcotest.test_case "solver: merged origins imprecise" `Quick test_solver_merge_imprecise;
    Alcotest.test_case "solver: top poisons" `Quick test_solver_top_poisons;
    Alcotest.test_case "solver: unknown key" `Quick test_solver_unknown_key;
    Alcotest.test_case "solver: cycles terminate" `Quick test_solver_cycle;
    Alcotest.test_case "py: self root base" `Quick test_py_self_root_base;
    Alcotest.test_case "py: inheritance chain" `Quick test_py_self_inheritance_chain;
    Alcotest.test_case "py: baseless class" `Quick test_py_self_no_base;
    Alcotest.test_case "py: import alias" `Quick test_py_import_alias;
    Alcotest.test_case "py: allocation + copies" `Quick test_py_allocation;
    Alcotest.test_case "py: literal origins" `Quick test_py_literals;
    Alcotest.test_case "py: modification = ⊤" `Quick test_py_modified_is_top;
    Alcotest.test_case "py: external call value" `Quick test_py_external_call_value_origin;
    Alcotest.test_case "py: interprocedural return" `Quick test_py_interprocedural_return;
    Alcotest.test_case "py: interprocedural param" `Quick test_py_interprocedural_param;
    Alcotest.test_case "py: attribute origins" `Quick test_py_attr_origin;
    Alcotest.test_case "py: except binder" `Quick test_py_except_binding;
    Alcotest.test_case "py: with binder" `Quick test_py_with_binding;
    Alcotest.test_case "py: call origins" `Quick test_py_call_origin;
    Alcotest.test_case "py: conflicting assignments" `Quick test_py_conflicting_assignments;
    Alcotest.test_case "py: context budget" `Quick test_py_effective_k;
    Alcotest.test_case "java: this root" `Quick test_java_this_root;
    Alcotest.test_case "java: declared locals" `Quick test_java_declared_local;
    Alcotest.test_case "java: Object + allocation" `Quick test_java_object_gets_allocation;
    Alcotest.test_case "java: primitives" `Quick test_java_primitives;
    Alcotest.test_case "java: field origins" `Quick test_java_field_origin;
    Alcotest.test_case "java: catch binder" `Quick test_java_catch_binder;
    Alcotest.test_case "java: foreach binder" `Quick test_java_foreach_binder;
    Alcotest.test_case "java: return-type origin" `Quick test_java_return_type_origin;
    Alcotest.test_case "java: parameter origin" `Quick test_java_param_origin;
    Alcotest.test_case "java: increment poisons" `Quick test_java_increment_poisons;
  ]

(* ---------------- context discovery ---------------- *)

let test_py_module_called_instances () =
  (* functions called from module scope must get context instances, so the
     interprocedural bindings written by the module walk resolve *)
  let m =
    Namer_pylang.Py_parser.parse_module
      "def build(w):\n    return w\nresult = build(Widget())\n"
  in
  let a = Py_analysis.analyze ~k:2 m in
  let o = Py_analysis.origins_for a ~cls:None ~fn:(Some "build") in
  check_opt "module-call binding reaches the parameter" (Some "Widget")
    (o.Namer_namepath.Origins.var_origin "w");
  let om = Py_analysis.origins_for a ~cls:None ~fn:None in
  check_opt "return value reaches module scope" (Some "Widget")
    (om.Namer_namepath.Origins.var_origin "result")

let test_py_context_sensitivity_separates_callers () =
  (* with k ≥ 1, two call sites with different argument origins must not
     pollute each other through the shared callee *)
  let m =
    Namer_pylang.Py_parser.parse_module
      "def ident(v):\n    return v\ndef f():\n    a = ident(Picture())\n    return a\ndef g():\n    b = ident(Slide())\n    return b\n"
  in
  let a1 = Py_analysis.analyze ~k:2 m in
  let of_ fn name =
    (Py_analysis.origins_for a1 ~cls:None ~fn:(Some fn)).Namer_namepath.Origins.var_origin
      name
  in
  check_opt "f's copy stays Picture" (Some "Picture") (of_ "f" "a");
  check_opt "g's copy stays Slide" (Some "Slide") (of_ "g" "b");
  (* context-insensitively the callee merges both: imprecise *)
  let a0 = Py_analysis.analyze ~k:0 m in
  let o0 = Py_analysis.origins_for a0 ~cls:None ~fn:(Some "f") in
  check_opt "k = 0 merges and loses precision" None
    (o0.Namer_namepath.Origins.var_origin "a")

let test_py_instances_grow_with_k () =
  let m =
    Namer_pylang.Py_parser.parse_module
      "def l0(x):\n    return l1(x)\ndef l1(x):\n    return l2(x)\ndef l2(x):\n    return x\ndef top():\n    a = l0(1)\n    b = l0(2)\n    return a\n"
  in
  let n k = Py_analysis.n_instances (Py_analysis.analyze ~k m) in
  check_bool "instances grow with k" true (n 0 < n 1 && n 1 <= n 3)

let discovery_suite =
  [
    Alcotest.test_case "py: module-call instances" `Quick test_py_module_called_instances;
    Alcotest.test_case "py: context sensitivity" `Quick test_py_context_sensitivity_separates_callers;
    Alcotest.test_case "py: instances grow with k" `Quick test_py_instances_grow_with_k;
  ]

let suite = suite @ discovery_suite
