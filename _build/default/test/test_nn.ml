(* Tests for the neural substrate: numerical gradient checks for every
   autograd op and layer, plus optimizer behavior. *)

open Namer_nn
module A = Autograd
module Prng = Namer_util.Prng

let check_bool = Alcotest.(check bool)

(* Numerical gradient check: perturb each entry of parameter [p], compare
   (loss(w+h) − loss(w−h)) / 2h against the accumulated analytic gradient.
   [loss] must rebuild the graph from current parameter values. *)
let grad_check ~(store : Params.store) ~(loss : unit -> float * A.v * A.tape) ~eps ~tol =
  Params.zero_grads store;
  let _, l, tape = loss () in
  A.backward tape l;
  let max_err = ref 0.0 in
  List.iter
    (fun (p : Params.mat) ->
      let n = Array.length p.Params.w in
      let step = max 1 (n / 5) in
      let i = ref 0 in
      while !i < n do
        let orig = p.Params.w.(!i) in
        p.Params.w.(!i) <- orig +. eps;
        let lp, _, _ = loss () in
        p.Params.w.(!i) <- orig -. eps;
        let lm, _, _ = loss () in
        p.Params.w.(!i) <- orig;
        let numeric = (lp -. lm) /. (2.0 *. eps) in
        let analytic = p.Params.g.(!i) in
        let err = abs_float (numeric -. analytic) /. max 1.0 (abs_float numeric) in
        if err > !max_err then max_err := err;
        i := !i + step
      done)
    store.Params.mats;
  !max_err < tol

let mk_store seed = Params.create ~prng:(Prng.create seed)

(* A scalar loss from a vector: softmax-CE over its components (each
   component extracted differentiably via a basis-vector dot product). *)
let to_loss tape (v : A.v) =
  let n = Array.length v.A.data in
  let scores =
    List.init n (fun i ->
        A.dot tape v (A.const tape (Array.init n (fun j -> if j = i then 1.0 else 0.0))))
  in
  A.softmax_cross_entropy tape scores ~target:0

let test_grad_dense () =
  let store = mk_store 1 in
  let layer = Layers.Dense.create store ~input:4 ~output:3 in
  let x = [| 0.5; -1.0; 0.3; 2.0 |] in
  let loss () =
    let tape = A.tape () in
    let out = Layers.Dense.forward layer tape (A.const tape x) in
    let l = to_loss tape (A.tanh_ tape out) in
    (l.A.data.(0), l, tape)
  in
  check_bool "dense gradients" true (grad_check ~store ~loss ~eps:1e-5 ~tol:1e-3)

let test_grad_gru () =
  let store = mk_store 2 in
  let gru = Layers.Gru.create store ~dim:3 in
  let x = [| 0.2; -0.4; 0.9 |] and h = [| 0.1; 0.0; -0.5 |] in
  let loss () =
    let tape = A.tape () in
    let out = Layers.Gru.step gru tape ~input:(A.const tape x) ~state:(A.const tape h) in
    let l = to_loss tape out in
    (l.A.data.(0), l, tape)
  in
  check_bool "gru gradients" true (grad_check ~store ~loss ~eps:1e-5 ~tol:1e-3)

let test_grad_matvec_chain () =
  let store = mk_store 3 in
  let w1 = Params.mat store ~rows:4 ~cols:3 and w2 = Params.mat store ~rows:2 ~cols:4 in
  let x = [| 1.0; -0.5; 0.25 |] in
  let loss () =
    let tape = A.tape () in
    let h = A.tanh_ tape (A.matvec tape w1 (A.const tape x)) in
    let out = A.matvec tape w2 h in
    let l = to_loss tape out in
    (l.A.data.(0), l, tape)
  in
  check_bool "two-layer gradients" true (grad_check ~store ~loss ~eps:1e-5 ~tol:1e-3)

let test_grad_embedding_rows () =
  let store = mk_store 4 in
  let emb = Params.mat store ~rows:5 ~cols:3 in
  let loss () =
    let tape = A.tape () in
    let a = A.row tape emb 1 and b = A.row tape emb 3 in
    let s = A.sum_vecs tape [ a; b; A.mul tape a b ] in
    let l = to_loss tape s in
    (l.A.data.(0), l, tape)
  in
  check_bool "embedding-row gradients" true (grad_check ~store ~loss ~eps:1e-5 ~tol:1e-3)

let test_softmax_ce_value () =
  let tape = A.tape () in
  let scores = List.map (fun v -> A.const tape [| v |]) [ 0.0; 0.0 ] in
  let l = A.softmax_cross_entropy tape scores ~target:0 in
  Alcotest.(check (float 1e-9)) "uniform CE = ln 2" (log 2.0) l.A.data.(0)

let test_softmax_probs () =
  let tape = A.tape () in
  let scores = List.map (fun v -> A.const tape [| v |]) [ 1.0; 1.0; 1.0 ] in
  let probs = A.softmax_probs scores in
  List.iter (fun p -> Alcotest.(check (float 1e-9)) "uniform" (1.0 /. 3.0) p) probs

let test_argmax () =
  let tape = A.tape () in
  let scores = List.map (fun v -> A.const tape [| v |]) [ 0.1; 2.0; -1.0 ] in
  Alcotest.(check int) "argmax" 1 (A.argmax_scores scores)

let test_adam_minimizes () =
  (* minimize ‖W·x − y‖² via softmax trick replaced by simple scalar loss:
     use dot to build (w·x − 1)² *)
  let store = mk_store 5 in
  let w = Params.mat store ~rows:1 ~cols:3 in
  let x = [| 1.0; 2.0; 3.0 |] in
  let loss_value () =
    let tape = A.tape () in
    let out = A.matvec tape w (A.const tape x) in
    let diff = A.unary tape out (fun v -> v -. 1.0) (fun _ _ -> 1.0) in
    let sq = A.mul tape diff diff in
    (sq.A.data.(0), sq, tape)
  in
  let initial, _, _ = loss_value () in
  for _ = 1 to 200 do
    let _, l, tape = loss_value () in
    A.backward tape l;
    Params.adam_step ~lr:0.05 store
  done;
  let final, _, _ = loss_value () in
  check_bool "loss decreased by 100x" true (final < initial /. 100.0 || final < 1e-6)

let test_attention_forward_shape () =
  let store = mk_store 6 in
  let attn = Layers.Attention.create store ~dim:4 in
  let tape = A.tape () in
  let states = List.init 3 (fun i -> A.const tape (Array.make 4 (0.1 *. float_of_int i))) in
  let out = Layers.Attention.forward attn tape ~rel_bias:(fun _ _ -> 0.0) states in
  Alcotest.(check int) "same length" 3 (List.length out);
  Alcotest.(check int) "same dim" 4 (Array.length (List.hd out).A.data)

let test_params_count () =
  let store = mk_store 7 in
  ignore (Params.mat store ~rows:3 ~cols:4);
  ignore (Params.bias store ~n:5);
  Alcotest.(check int) "parameter count" 17 (Params.n_parameters store)

let test_glorot_range () =
  let store = mk_store 8 in
  let m = Params.mat store ~rows:10 ~cols:10 in
  let bound = sqrt (6.0 /. 20.0) in
  check_bool "all weights in glorot bounds" true
    (Array.for_all (fun v -> abs_float v <= bound) m.Params.w)

let suite =
  [
    Alcotest.test_case "gradcheck: dense+tanh" `Quick test_grad_dense;
    Alcotest.test_case "gradcheck: gru cell" `Quick test_grad_gru;
    Alcotest.test_case "gradcheck: two-layer chain" `Quick test_grad_matvec_chain;
    Alcotest.test_case "gradcheck: embedding rows" `Quick test_grad_embedding_rows;
    Alcotest.test_case "softmax-ce value" `Quick test_softmax_ce_value;
    Alcotest.test_case "softmax probs" `Quick test_softmax_probs;
    Alcotest.test_case "argmax" `Quick test_argmax;
    Alcotest.test_case "adam minimizes" `Quick test_adam_minimizes;
    Alcotest.test_case "attention shapes" `Quick test_attention_forward_shape;
    Alcotest.test_case "parameter counting" `Quick test_params_count;
    Alcotest.test_case "glorot initialization" `Quick test_glorot_range;
  ]
