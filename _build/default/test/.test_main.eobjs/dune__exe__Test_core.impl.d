test/test_core.ml: Alcotest Array Hashtbl Lazy List Namer_classifier Namer_core Namer_corpus Namer_mining Namer_namepath Namer_pattern Printf String
