test/test_util.ml: Alcotest Array Counter Edit_distance Interner Json List Namer_util Prng QCheck QCheck_alcotest Stats String Subtoken Tablefmt
