test/test_corpus.ml: Alcotest List Namer_corpus Namer_javalang Namer_pylang Namer_util Printf String
