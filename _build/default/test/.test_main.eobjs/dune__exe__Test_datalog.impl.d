test/test_datalog.ml: Alcotest Array List Namer_datalog Namer_util QCheck QCheck_alcotest
