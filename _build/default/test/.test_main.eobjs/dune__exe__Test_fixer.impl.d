test/test_fixer.ml: Alcotest List Namer_core Namer_pylang
