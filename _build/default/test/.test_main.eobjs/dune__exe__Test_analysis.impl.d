test/test_analysis.ml: Alcotest Java_analysis List Namer_analysis Namer_javalang Namer_namepath Namer_pylang Py_analysis Solver
