test/test_tree.ml: Alcotest List Namer_tree QCheck QCheck_alcotest String
