test/test_mining.ml: Alcotest Hashtbl List Namer_mining Namer_namepath Namer_pattern Namer_tree Printf
