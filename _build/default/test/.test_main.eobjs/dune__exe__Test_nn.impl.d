test/test_nn.ml: Alcotest Array Autograd Layers List Namer_nn Namer_util Params
