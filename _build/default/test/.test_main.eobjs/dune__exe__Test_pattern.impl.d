test/test_pattern.ml: Alcotest List Namer_namepath Namer_pattern
