test/test_namepath.ml: Alcotest List Namer_namepath Namer_tree Printf QCheck QCheck_alcotest
