test/test_baselines.ml: Alcotest Array List Models Namer_baselines Namer_corpus Namer_tree Namer_util Pipeline Printf Sample String
