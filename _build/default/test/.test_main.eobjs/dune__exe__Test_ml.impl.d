test/test_ml.ml: Alcotest Array La Linear_models List Namer_ml Namer_util Pipeline Preprocess QCheck QCheck_alcotest
