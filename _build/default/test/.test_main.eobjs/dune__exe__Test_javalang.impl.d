test/test_javalang.ml: Alcotest Java_ast Java_lexer Java_lower Java_parser Java_pretty List Namer_corpus Namer_javalang Namer_tree Printexc Printf String
