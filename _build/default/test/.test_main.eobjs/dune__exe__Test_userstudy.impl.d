test/test_userstudy.ml: Alcotest List Namer_corpus Namer_userstudy
