test/test_pylang.ml: Alcotest List Namer_corpus Namer_pylang Namer_tree Option Printexc Py_ast Py_lexer Py_lower Py_parser Py_pretty
