(* Tests for the classical-ML substrate: linear algebra, preprocessing,
   the three linear classifiers, and the training pipeline. *)

open Namer_ml
module Prng = Namer_util.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-6))

(* ---------------- La ---------------- *)

let test_dot_norm () =
  checkf "dot" 32.0 (La.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]);
  checkf "norm" 5.0 (La.norm [| 3.; 4. |])

let test_matvec_transpose () =
  let m = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array (float 1e-9))) "matvec" [| 5.; 11. |] (La.mat_vec m [| 1.; 2. |]);
  let mt = La.transpose m in
  checkf "transpose" 3.0 mt.(0).(1)

let test_mat_mul () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let c = La.mat_mul a b in
  checkf "c00" 2.0 c.(0).(0);
  checkf "c01" 1.0 c.(0).(1)

let test_covariance () =
  let x = [| [| 1.; 10. |]; [| 2.; 20. |]; [| 3.; 30. |] |] in
  let c = La.covariance x in
  checkf "var x" 1.0 c.(0).(0);
  checkf "cov xy" 10.0 c.(0).(1)

let test_jacobi () =
  (* eigenvalues of [[2,1],[1,2]] are 3 and 1 *)
  let vals, vecs = La.jacobi_eigen [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  Alcotest.(check (float 1e-9)) "λ1" 3.0 vals.(0);
  Alcotest.(check (float 1e-9)) "λ2" 1.0 vals.(1);
  (* first eigenvector ∝ (1,1)/√2 *)
  check_bool "eigenvector direction" true
    (abs_float (abs_float vecs.(0).(0) -. (1.0 /. sqrt 2.0)) < 1e-9)

let test_solve_linear () =
  let x = La.solve_linear [| [| 2.; 1. |]; [| 1.; 3. |] |] [| 5.; 10. |] in
  Alcotest.(check (float 1e-9)) "x0" 1.0 x.(0);
  Alcotest.(check (float 1e-9)) "x1" 3.0 x.(1)

let test_solve_singular () =
  check_bool "singular rejected" true
    (try
       ignore (La.solve_linear [| [| 1.; 1. |]; [| 1.; 1. |] |] [| 1.; 2. |]);
       false
     with Failure _ -> true)

(* ---------------- Preprocess ---------------- *)

let test_standardize () =
  let x = [| [| 1.; 100. |]; [| 3.; 300. |] |] in
  let s = Preprocess.Standardize.fit x in
  let t = Preprocess.Standardize.transform s [| 1.; 100. |] in
  checkf "z-scores" (-1.0) t.(0);
  checkf "second col" (-1.0) t.(1);
  (* constant features stay finite *)
  let s2 = Preprocess.Standardize.fit [| [| 5. |]; [| 5. |] |] in
  checkf "constant feature centered" 0.0 (Preprocess.Standardize.transform s2 [| 5. |]).(0)

let test_pca_reduces () =
  (* perfectly correlated 2-D data has one informative component *)
  let prng = Prng.create 1 in
  let x =
    Array.init 100 (fun _ ->
        let v = Prng.gaussian prng in
        [| v; 2.0 *. v |])
  in
  let p = Preprocess.Pca.fit ~variance:0.95 x in
  check_int "one component suffices" 1 (Preprocess.Pca.n_components p);
  let t = Preprocess.Pca.transform p [| 1.0; 2.0 |] in
  check_int "projected dimension" 1 (Array.length t)

(* ---------------- classifiers ---------------- *)

(* Linearly separable data: label = (x₀ + x₁ > 0). *)
let separable_data ~n prng =
  let x =
    Array.init n (fun _ -> [| Prng.gaussian prng; Prng.gaussian prng; Prng.gaussian prng |])
  in
  let y = Array.map (fun row -> row.(0) +. row.(1) > 0.0) x in
  (x, y)

let accuracy_of predict x y =
  let ok = ref 0 in
  Array.iteri (fun i row -> if predict row = y.(i) then incr ok) x;
  float_of_int !ok /. float_of_int (Array.length x)

let test_svm_separable () =
  let prng = Prng.create 2 in
  let x, y = separable_data ~n:200 prng in
  let m = Linear_models.Svm.train ~prng x y in
  check_bool "svm accuracy > 0.95" true (accuracy_of (Linear_models.predict m) x y > 0.95)

let test_logreg_separable () =
  let prng = Prng.create 3 in
  let x, y = separable_data ~n:200 prng in
  let m = Linear_models.Logreg.train x y in
  check_bool "logreg accuracy > 0.95" true (accuracy_of (Linear_models.predict m) x y > 0.95)

let test_lda_separable () =
  let prng = Prng.create 4 in
  let x, y = separable_data ~n:200 prng in
  let m = Linear_models.Lda.train x y in
  check_bool "lda accuracy > 0.95" true (accuracy_of (Linear_models.predict m) x y > 0.95)

let test_lda_needs_both_classes () =
  check_bool "raises" true
    (try
       ignore (Linear_models.Lda.train [| [| 1. |] |] [| true |]);
       false
     with Invalid_argument _ -> true)

(* ---------------- pipeline ---------------- *)

let test_pipeline_train_predict () =
  let prng = Prng.create 5 in
  let x, y = separable_data ~n:200 prng in
  let p = Pipeline.train ~prng x y in
  check_bool "pipeline accuracy > 0.95" true (accuracy_of (Pipeline.predict p) x y > 0.95)

let test_effective_weights_linear () =
  (* score(x1) − score(x2) must equal effective_weights · (x1 − x2) *)
  let prng = Prng.create 6 in
  let x, y = separable_data ~n:120 prng in
  let p = Pipeline.train ~prng x y in
  let w = Pipeline.effective_weights p in
  let x1 = [| 0.3; -0.2; 1.1 |] and x2 = [| -0.7; 0.4; 0.0 |] in
  let lhs = Pipeline.score p x1 -. Pipeline.score p x2 in
  let rhs = La.dot w (La.sub x1 x2) in
  check_bool "weights explain the score" true (abs_float (lhs -. rhs) < 1e-6)

let test_cross_validate () =
  let prng = Prng.create 7 in
  let x, y = separable_data ~n:150 prng in
  let r = Pipeline.cross_validate ~repeats:5 ~prng ~algo:Pipeline.Svm x y in
  check_bool "cv accuracy high on separable data" true (r.Pipeline.accuracy > 0.9);
  check_bool "metrics in [0,1]" true
    (List.for_all
       (fun v -> v >= 0.0 && v <= 1.0)
       [ r.Pipeline.accuracy; r.Pipeline.precision; r.Pipeline.recall; r.Pipeline.f1 ])

let test_select_model () =
  let prng = Prng.create 8 in
  let x, y = separable_data ~n:100 prng in
  let _best, reports = Pipeline.select_model ~prng x y in
  check_int "three algorithms compared" 3 (List.length reports)

let prop_standardize_zero_mean =
  QCheck.Test.make ~name:"standardize: transformed mean ≈ 0" ~count:30
    (QCheck.int_range 2 40)
    (fun n ->
      let prng = Prng.create n in
      let x = Array.init n (fun _ -> [| Prng.float_range prng (-5.) 5. |]) in
      let s = Preprocess.Standardize.fit x in
      let xt = Preprocess.Standardize.transform_all s x in
      let mean = Array.fold_left (fun a r -> a +. r.(0)) 0.0 xt /. float_of_int n in
      abs_float mean < 1e-9)

let suite =
  [
    Alcotest.test_case "la: dot and norm" `Quick test_dot_norm;
    Alcotest.test_case "la: matvec/transpose" `Quick test_matvec_transpose;
    Alcotest.test_case "la: matrix multiply" `Quick test_mat_mul;
    Alcotest.test_case "la: covariance" `Quick test_covariance;
    Alcotest.test_case "la: jacobi eigen" `Quick test_jacobi;
    Alcotest.test_case "la: linear solve" `Quick test_solve_linear;
    Alcotest.test_case "la: singular detection" `Quick test_solve_singular;
    Alcotest.test_case "preprocess: standardize" `Quick test_standardize;
    Alcotest.test_case "preprocess: pca" `Quick test_pca_reduces;
    Alcotest.test_case "svm on separable data" `Quick test_svm_separable;
    Alcotest.test_case "logreg on separable data" `Quick test_logreg_separable;
    Alcotest.test_case "lda on separable data" `Quick test_lda_separable;
    Alcotest.test_case "lda input validation" `Quick test_lda_needs_both_classes;
    Alcotest.test_case "pipeline: train/predict" `Quick test_pipeline_train_predict;
    Alcotest.test_case "pipeline: effective weights" `Quick test_effective_weights_linear;
    Alcotest.test_case "pipeline: cross-validation" `Quick test_cross_validate;
    Alcotest.test_case "pipeline: model selection" `Quick test_select_model;
    QCheck_alcotest.to_alcotest prop_standardize_zero_mean;
  ]
