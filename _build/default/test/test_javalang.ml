(* Tests for the Java frontend: lexer, parser coverage (including the
   backtracking disambiguations), lowering to the generic vocabulary with
   the exact Table 6 statement shapes. *)

open Namer_javalang
module Tree = Namer_tree.Tree

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let parse = Java_parser.parse_compilation_unit

(* Parse [body] inside a wrapper class/method; return statement sexps. *)
let stmt_sexps body =
  let src = Printf.sprintf "class W { void m() { %s } }" body in
  Java_lower.lower_unit (parse src)
  |> List.filter_map (fun (s : Java_lower.stmt_info) ->
         match s.tree.Tree.value with
         | "ClassDef" | "MethodDef" -> None
         | _ -> Some (Tree.to_sexp s.tree))

let first_stmt body =
  match stmt_sexps body with
  | s :: _ -> s
  | [] -> Alcotest.fail "no statements"

(* ---------------- lexer ---------------- *)

let test_lexer_comments () =
  let toks = Java_lexer.tokenize "int x; // line\n/* block\nspanning */ int y;" in
  let idents =
    List.filter_map
      (fun (t : Java_lexer.loc_token) ->
        match t.tok with Java_lexer.Ident s -> Some s | _ -> None)
      toks
  in
  Alcotest.(check (list string)) "comments skipped" [ "x"; "y" ] idents

let test_lexer_literals () =
  let toks = Java_lexer.tokenize "1 2.5 0x1F 3L 2.0f \"str\" 'c' 1_000" in
  let kinds =
    List.filter_map
      (fun (t : Java_lexer.loc_token) ->
        match t.tok with
        | Java_lexer.Int_lit v -> Some ("i:" ^ v)
        | Java_lexer.Float_lit v -> Some ("f:" ^ v)
        | Java_lexer.Str_lit v -> Some ("s:" ^ v)
        | Java_lexer.Char_lit v -> Some ("c:" ^ v)
        | _ -> None)
      toks
  in
  Alcotest.(check (list string)) "literal kinds"
    [ "i:1"; "f:2.5"; "i:0x1F"; "i:3L"; "f:2.0f"; "s:str"; "c:c"; "i:1_000" ]
    kinds

let test_lexer_operators () =
  let toks = Java_lexer.tokenize "a >>> b >= c -> d" in
  let ops =
    List.filter_map
      (fun (t : Java_lexer.loc_token) ->
        match t.tok with Java_lexer.Op o -> Some o | _ -> None)
      toks
  in
  Alcotest.(check (list string)) "maximal munch" [ ">>>"; ">="; "->" ] ops

(* ---------------- declarations ---------------- *)

let test_class_structure () =
  let u = parse
    "package com.example.app;\nimport java.util.List;\npublic class Foo extends Bar implements Baz, Qux { }"
  in
  check_bool "package" true (u.Java_ast.package = Some "com.example.app");
  Alcotest.(check (list string)) "imports" [ "java.util.List" ] u.Java_ast.imports;
  let c = List.hd u.Java_ast.classes in
  check_str "name" "Foo" c.Java_ast.cname;
  check_bool "extends" true
    (match c.Java_ast.cextends with Some t -> t.Java_ast.base = "Bar" | None -> false);
  check_int "implements" 2 (List.length c.Java_ast.cimplements)

let test_fields_methods_ctor () =
  let u =
    parse
      "class C { private String name; C(String name) { this.name = name; } public String getName() { return name; } }"
  in
  let c = List.hd u.Java_ast.classes in
  let kinds =
    List.map
      (function
        | Java_ast.Field_m _ -> "field"
        | Java_ast.Method_m { rtype = None; _ } -> "ctor"
        | Java_ast.Method_m _ -> "method"
        | Java_ast.Init_m _ -> "init"
        | Java_ast.Class_m _ -> "class")
      c.Java_ast.members
  in
  Alcotest.(check (list string)) "member kinds" [ "field"; "ctor"; "method" ] kinds

let test_generics () =
  let u = parse "class C { java.util.Map<String, List<Integer>> cache; }" in
  match (List.hd u.Java_ast.classes).Java_ast.members with
  | [ Java_ast.Field_m { ftype; _ } ] ->
      check_str "base" "java.util.Map" ftype.Java_ast.base;
      check_int "type args" 2 (List.length ftype.Java_ast.targs)
  | _ -> Alcotest.fail "expected one field"

let test_annotations_skipped () =
  let u = parse "class C { @Override @SuppressWarnings(\"all\") void m() { } }" in
  check_int "method survives annotations" 1
    (List.length (List.hd u.Java_ast.classes).Java_ast.members)

let test_enum_interface () =
  let u = parse "enum E { A, B; int f; } interface I { void m(); }" in
  check_int "two types" 2 (List.length u.Java_ast.classes)

let test_nested_class () =
  let u = parse "class Outer { static class Inner { int x; } }" in
  match (List.hd u.Java_ast.classes).Java_ast.members with
  | [ Java_ast.Class_m inner ] -> check_str "inner name" "Inner" inner.Java_ast.cname
  | _ -> Alcotest.fail "expected nested class"

(* ---------------- statements & expressions ---------------- *)

let test_local_vs_expr_disambiguation () =
  check_str "local decl" "(LocalVar (TypeRef Intent) (NameStore i) (New (TypeRef Intent) (NameLoad c)))"
    (first_stmt "Intent i = new Intent(c);");
  check_str "expr statement" "(Assign (NameStore x) (NameLoad y))" (first_stmt "x = y;");
  check_str "call statement" "(Call (AttributeLoad (NameLoad a) (Attr b)))"
    (first_stmt "a.b();")

let test_table6_examples () =
  check_str "example 1: getStackTrace"
    "(Call (AttributeLoad (NameLoad e) (Attr getStackTrace)))"
    (first_stmt "e.getStackTrace();");
  check_str "example 2: double loop"
    "(For (LocalVar (TypeRef double) (NameStore i) (Num 1)) (BinOp (NameLoad i) < (NameLoad chainlength)) (UnaryOp ++ (NameLoad i)))"
    (first_stmt "for (double i = 1; i < chainlength; i++) { }");
  check_str "example 4: field assign"
    "(Assign (AttributeStore (NameLoad this) (Attr publicKey)) (NameLoad publickKey))"
    (first_stmt "this.publicKey = publickKey;");
  check_str "example 6: dismiss"
    "(Call (AttributeLoad (NameLoad progDialog) (Attr dismiss)))"
    (first_stmt "progDialog.dismiss();")

let test_catch_throwable () =
  let sexps = stmt_sexps "try { f(); } catch (Throwable e) { g(); }" in
  check_bool "catch lowered" true
    (List.mem "(Try (Catch (TypeRef Throwable) (NameStore e)))" sexps)

let test_multi_catch_and_finally () =
  let sexps =
    stmt_sexps "try { f(); } catch (IOException | SQLException e) { } finally { h(); }"
  in
  check_bool "first type kept" true
    (List.mem "(Try (Catch (TypeRef IOException) (NameStore e)))" sexps);
  check_bool "finally body visited" true
    (List.mem "(Call (NameLoad h))" sexps)

let test_foreach () =
  check_str "enhanced for"
    "(ForEach (TypeRef String) (NameStore s) (NameLoad items))"
    (first_stmt "for (String s : items) { }")

let test_cast_vs_paren () =
  check_str "cast" "(Assign (NameStore x) (Cast (TypeRef Foo) (NameLoad y)))"
    (first_stmt "x = (Foo) y;");
  check_str "paren expr" "(Assign (NameStore x) (BinOp (NameLoad a) + (NameLoad b)))"
    (first_stmt "x = (a + b);")

let test_ternary_instanceof () =
  check_str "ternary"
    "(Assign (NameStore x) (BoolOp ifexp (Num 1) (NameLoad c) (Num 2)))"
    (first_stmt "x = c ? 1 : 2;");
  check_str "instanceof"
    "(If (Compare (NameLoad o) instanceof (TypeRef String)))"
    (first_stmt "if (o instanceof String) { }")

let test_new_array_and_init () =
  check_str "new array"
    "(LocalVar (TypeRef int[]) (NameStore a) (NewArray (TypeRef int) (Num 3)))"
    (first_stmt "int[] a = new int[3];");
  check_str "array initializer"
    "(LocalVar (TypeRef int[]) (NameStore a) (List (Num 1) (Num 2)))"
    (first_stmt "int[] a = {1, 2};")

let test_class_literal_and_super () =
  check_str "class literal"
    "(Call (AttributeLoad (NameLoad ctx) (Attr start)) (ClassLit (TypeRef Main)))"
    (first_stmt "ctx.start(Main.class);");
  check_str "super call"
    "(Call (AttributeLoad (NameLoad super) (Attr toString)))"
    (first_stmt "super.toString();")

let test_do_while_switch () =
  let sexps = stmt_sexps "do { f(); } while (x > 0); switch (k) { case 1: g(); break; default: h(); }" in
  check_bool "do-while header" true
    (List.mem "(DoWhile (BinOp (NameLoad x) > (Num 0)))" sexps);
  check_bool "switch bodies visited" true (List.mem "(Call (NameLoad g))" sexps)

let test_lambda_method_ref () =
  check_str "lambda" "(Call (NameLoad run) (Lambda (NameParam x) (BinOp (NameLoad x) + (Num 1))))"
    (first_stmt "run(x -> x + 1);");
  check_str "method ref as field access"
    "(Call (NameLoad run) (AttributeLoad (NameLoad String) (Attr valueOf)))"
    (first_stmt "run(String::valueOf);")

let test_assignment_expression () =
  check_str "compound assign expr"
    "(AugAssign (NameStore x) += (Num 2))"
    (first_stmt "x += 2;")

let test_line_numbers_and_context () =
  let src = "class C {\n    void m() {\n        int x = 1;\n    }\n}" in
  let infos = Java_lower.lower_unit (parse src) in
  let local =
    List.find (fun (s : Java_lower.stmt_info) -> s.tree.Tree.value = "LocalVar") infos
  in
  check_int "line" 3 local.Java_lower.line;
  check_bool "class ctx" true (local.Java_lower.enclosing_class = Some "C");
  check_bool "method ctx" true (local.Java_lower.enclosing_function = Some "m")

let test_unit_tree () =
  let t = Java_lower.unit_tree (parse "class C { void m() { f(); } }") in
  check_str "root" "CompilationUnit" t.Tree.value;
  check_bool "nested body" true (Tree.size t > 6)

let test_parse_error () =
  check_bool "raises" true
    (try
       ignore (parse "class C { void m( { } }");
       false
     with Java_parser.Parse_error _ -> true)

let test_varargs_param () =
  let u = parse "class C { void m(String... parts) { } }" in
  match (List.hd u.Java_ast.classes).Java_ast.members with
  | [ Java_ast.Method_m { params = [ (t, "parts") ]; _ } ] ->
      check_int "varargs adds a dimension" 1 t.Java_ast.dims
  | _ -> Alcotest.fail "expected one method"

let test_try_with_resources () =
  let sexps = stmt_sexps "try (Writer w = open(p)) { w.write(x); } catch (IOException e) { }" in
  check_bool "resource lowered as local" true
    (List.exists (fun s -> String.length s > 9 && String.sub s 0 9 = "(LocalVar") sexps)

let suite =
  [
    Alcotest.test_case "lexer: comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer: literals" `Quick test_lexer_literals;
    Alcotest.test_case "lexer: operators" `Quick test_lexer_operators;
    Alcotest.test_case "class structure" `Quick test_class_structure;
    Alcotest.test_case "fields/methods/constructors" `Quick test_fields_methods_ctor;
    Alcotest.test_case "generics" `Quick test_generics;
    Alcotest.test_case "annotations skipped" `Quick test_annotations_skipped;
    Alcotest.test_case "enum and interface" `Quick test_enum_interface;
    Alcotest.test_case "nested classes" `Quick test_nested_class;
    Alcotest.test_case "local vs expression statements" `Quick test_local_vs_expr_disambiguation;
    Alcotest.test_case "Table 6 statement shapes" `Quick test_table6_examples;
    Alcotest.test_case "catch Throwable" `Quick test_catch_throwable;
    Alcotest.test_case "multi-catch and finally" `Quick test_multi_catch_and_finally;
    Alcotest.test_case "enhanced for" `Quick test_foreach;
    Alcotest.test_case "cast vs parenthesis" `Quick test_cast_vs_paren;
    Alcotest.test_case "ternary and instanceof" `Quick test_ternary_instanceof;
    Alcotest.test_case "array creation" `Quick test_new_array_and_init;
    Alcotest.test_case "class literals and super" `Quick test_class_literal_and_super;
    Alcotest.test_case "do-while and switch" `Quick test_do_while_switch;
    Alcotest.test_case "lambda and method refs" `Quick test_lambda_method_ref;
    Alcotest.test_case "assignment expressions" `Quick test_assignment_expression;
    Alcotest.test_case "lines and contexts" `Quick test_line_numbers_and_context;
    Alcotest.test_case "whole-unit tree" `Quick test_unit_tree;
    Alcotest.test_case "parse errors raised" `Quick test_parse_error;
    Alcotest.test_case "varargs parameter" `Quick test_varargs_param;
    Alcotest.test_case "try-with-resources" `Quick test_try_with_resources;
  ]

(* ---------------- pretty-printer round trips ---------------- *)

let round_trips src =
  let u1 = parse src in
  let printed = Java_pretty.compilation_unit u1 in
  let u2 =
    try parse printed
    with e ->
      Alcotest.failf "re-parse failed on:\n%s\n(%s)" printed (Printexc.to_string e)
  in
  if not (Namer_tree.Tree.equal (Java_lower.unit_tree u1) (Java_lower.unit_tree u2))
  then
    Alcotest.failf "round trip changed the AST:\n-- original --\n%s\n-- printed --\n%s"
      src printed

let test_pretty_round_trip_corpus () =
  let corpus =
    Namer_corpus.Corpus.generate
      {
        (Namer_corpus.Corpus.default_config Namer_corpus.Corpus.Java) with
        Namer_corpus.Corpus.n_repos = 4;
        files_per_repo = (4, 6);
        issue_rate = 0.1;
        benign_rate = 0.1;
      }
  in
  List.iter
    (fun (f : Namer_corpus.Corpus.file) -> round_trips f.Namer_corpus.Corpus.source)
    corpus.Namer_corpus.Corpus.files

let test_pretty_round_trip_constructs () =
  List.iter round_trips
    [
      "class C { int x = a + b * (c - d); }";
      "class C { void m() { for (int i = 0; i < n; i++) { f(i); } } }";
      "class C { void m(java.util.List items) { for (String s : items) { g(s); } } }";
      "class C { Object o = cond ? new Foo() : null; }";
      "class C { void m() { try { f(); } catch (IOException e) { h(); } finally { k(); } } }";
      "class C { boolean b = o instanceof String && x != null; }";
      "class C { int[] a = new int[3]; }";
      "class C { void m() { x += 1; y++; z = (Foo) w; } }";
      "class C extends B implements I, J { C(int n) { this.n = n; } }";
      "class C { void m() { ctx.start(Main.class); } }";
      "class C { void m() { do { f(); } while (x > 0); } }";
      "interface I { void m(); }";
      "class Outer { static class Inner { int x; } }";
    ]

let pretty_suite =
  [
    Alcotest.test_case "pretty: corpus round trips" `Quick test_pretty_round_trip_corpus;
    Alcotest.test_case "pretty: construct round trips" `Quick test_pretty_round_trip_constructs;
  ]

let suite = suite @ pretty_suite
