(* Tests for generic trees and the commit-diff matcher. *)

module Tree = Namer_tree.Tree
module Treediff = Namer_tree.Treediff

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let sample =
  Tree.node "Call"
    [
      Tree.node "AttributeLoad"
        [ Tree.node "NameLoad" [ Tree.leaf "self" ]; Tree.node "Attr" [ Tree.leaf "assertTrue" ] ];
      Tree.node "Num" [ Tree.leaf "90" ];
    ]

let test_size_depth () =
  check_int "size" 8 (Tree.size sample);
  check_int "depth" 4 (Tree.depth sample);
  check_int "leaf size" 1 (Tree.size (Tree.leaf "x"));
  check_int "leaf depth" 1 (Tree.depth (Tree.leaf "x"))

let test_leaves () =
  Alcotest.(check (list string)) "in order" [ "self"; "assertTrue"; "90" ]
    (Tree.leaves sample)

let test_sexp () =
  check_str "rendering"
    "(Call (AttributeLoad (NameLoad self) (Attr assertTrue)) (Num 90))"
    (Tree.to_sexp sample)

let test_equal_hash () =
  let copy =
    Tree.node "Call"
      [
        Tree.node "AttributeLoad"
          [ Tree.node "NameLoad" [ Tree.leaf "self" ]; Tree.node "Attr" [ Tree.leaf "assertTrue" ] ];
        Tree.node "Num" [ Tree.leaf "90" ];
      ]
  in
  check_bool "structural equality" true (Tree.equal sample copy);
  check_int "equal trees hash equal" (Tree.hash sample) (Tree.hash copy);
  let other = Tree.node "Call" [ Tree.leaf "x" ] in
  check_bool "different trees differ" false (Tree.equal sample other)

let test_fold_find () =
  let n_nodes = Tree.fold (fun acc _ -> acc + 1) 0 sample in
  check_int "fold visits all" 8 n_nodes;
  let nums = Tree.find_all (fun n -> n.Tree.value = "Num") sample in
  check_int "find_all" 1 (List.length nums)

let test_map_values () =
  let upper = Tree.map_values String.uppercase_ascii sample in
  check_str "root renamed" "CALL" upper.Tree.value;
  Alcotest.(check (list string)) "leaves renamed" [ "SELF"; "ASSERTTRUE"; "90" ]
    (Tree.leaves upper)

(* ---------------- Treediff ---------------- *)

let stmt name =
  Tree.node "Assign"
    [
      Tree.node "NameStore" [ Tree.leaf name ];
      Tree.node "Num" [ Tree.leaf "1" ];
    ]

let module_ stmts = Tree.node "Module" stmts

let test_diff_identical () =
  let m = module_ [ stmt "a"; stmt "b" ] in
  Alcotest.(check (list (pair string string))) "no renames" []
    (Treediff.renamed_leaves m m)

let test_diff_single_rename () =
  let before = module_ [ stmt "counter"; stmt "other" ] in
  let after = module_ [ stmt "count"; stmt "other" ] in
  Alcotest.(check (list (pair string string))) "one rename" [ ("counter", "count") ]
    (Treediff.renamed_leaves before after)

let test_diff_with_insertion () =
  let before = module_ [ stmt "a"; stmt "victim" ] in
  let after = module_ [ stmt "a"; stmt "inserted"; stmt "victim" ] in
  (* alignment should match the unchanged statements; the insertion is not a
     rename of "victim" *)
  let renames = Treediff.renamed_leaves before after in
  check_bool "victim not renamed" true
    (not (List.exists (fun (a, _) -> a = "victim") renames))

let test_confusing_pairs_subtoken () =
  let before = module_ [ stmt "assertTrue" ] in
  let after = module_ [ stmt "assertEqual" ] in
  Alcotest.(check (list (pair string string))) "subtoken-level pair"
    [ ("True", "Equal") ]
    (Treediff.confusing_subtoken_pairs before after)

let test_confusing_pairs_multi_diff_excluded () =
  (* two differing subtokens: not a confusing pair *)
  let before = module_ [ stmt "fooBar" ] in
  let after = module_ [ stmt "bazQux" ] in
  Alcotest.(check (list (pair string string))) "excluded" []
    (Treediff.confusing_subtoken_pairs before after)

let test_confusing_pairs_length_mismatch_excluded () =
  let before = module_ [ stmt "progDialog" ] in
  let after = module_ [ stmt "dialog" ] in
  Alcotest.(check (list (pair string string))) "length mismatch excluded" []
    (Treediff.confusing_subtoken_pairs before after)

let test_confusing_pairs_abbreviation () =
  let before = module_ [ stmt "progDialog" ] in
  let after = module_ [ stmt "progressDialog" ] in
  Alcotest.(check (list (pair string string))) "abbreviation pair"
    [ ("prog", "progress") ]
    (Treediff.confusing_subtoken_pairs before after)

let tree_gen =
  (* random small trees over a tiny vocabulary *)
  let open QCheck.Gen in
  let leaf_value = oneofl [ "a"; "b"; "c"; "x" ] in
  let node_value = oneofl [ "N"; "M" ] in
  fix
    (fun self depth ->
      if depth = 0 then map Tree.leaf leaf_value
      else
        frequency
          [
            (1, map Tree.leaf leaf_value);
            (2, map2 Tree.node node_value (list_size (int_range 1 3) (self (depth - 1))));
          ])
    3

let prop_diff_self_empty =
  QCheck.Test.make ~name:"treediff: t vs t has no renames" ~count:100
    (QCheck.make tree_gen)
    (fun t -> Treediff.renamed_leaves t t = [])

let prop_hash_consistent =
  QCheck.Test.make ~name:"tree: equal implies same hash" ~count:100
    (QCheck.make (QCheck.Gen.pair tree_gen tree_gen))
    (fun (a, b) -> (not (Tree.equal a b)) || Tree.hash a = Tree.hash b)

let suite =
  [
    Alcotest.test_case "size and depth" `Quick test_size_depth;
    Alcotest.test_case "leaves in order" `Quick test_leaves;
    Alcotest.test_case "s-expression rendering" `Quick test_sexp;
    Alcotest.test_case "equality and hashing" `Quick test_equal_hash;
    Alcotest.test_case "fold and find_all" `Quick test_fold_find;
    Alcotest.test_case "map_values" `Quick test_map_values;
    Alcotest.test_case "diff: identical trees" `Quick test_diff_identical;
    Alcotest.test_case "diff: single rename" `Quick test_diff_single_rename;
    Alcotest.test_case "diff: insertion aligned" `Quick test_diff_with_insertion;
    Alcotest.test_case "pairs: subtoken level" `Quick test_confusing_pairs_subtoken;
    Alcotest.test_case "pairs: multi-diff excluded" `Quick test_confusing_pairs_multi_diff_excluded;
    Alcotest.test_case "pairs: length mismatch excluded" `Quick
      test_confusing_pairs_length_mismatch_excluded;
    Alcotest.test_case "pairs: abbreviation" `Quick test_confusing_pairs_abbreviation;
    QCheck_alcotest.to_alcotest prop_diff_self_empty;
    QCheck_alcotest.to_alcotest prop_hash_consistent;
  ]
