(* Tests for the Python frontend: lexer layout, parser coverage, lowering to
   the generic tree vocabulary (including the exact Figure 2 shapes). *)

open Namer_pylang
module Tree = Namer_tree.Tree

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let parse = Py_parser.parse_module

let sexp_of_stmt src =
  match Py_lower.lower_stmts (parse src) with
  | s :: _ -> Tree.to_sexp s.Py_lower.tree
  | [] -> Alcotest.fail "no statements parsed"

let sexp_of_last src =
  match List.rev (Py_lower.lower_stmts (parse src)) with
  | s :: _ -> Tree.to_sexp s.Py_lower.tree
  | [] -> Alcotest.fail "no statements parsed"

(* ---------------- lexer ---------------- *)

let test_lexer_layout () =
  let toks = Py_lexer.tokenize "if x:\n    y = 1\nz = 2\n" in
  let has t = List.exists (fun (lt : Py_lexer.loc_token) -> lt.tok = t) toks in
  check_bool "indent" true (has Py_lexer.Indent);
  check_bool "dedent" true (has Py_lexer.Dedent)

let test_lexer_blank_and_comments () =
  let toks = Py_lexer.tokenize "x = 1\n\n# comment only\n   # indented comment\ny = 2\n" in
  let indents =
    List.length (List.filter (fun (t : Py_lexer.loc_token) -> t.tok = Py_lexer.Indent) toks)
  in
  check_int "blank/comment lines produce no layout" 0 indents

let test_lexer_string_escapes () =
  let toks = Py_lexer.tokenize {|s = "a\nb"|} in
  let str =
    List.find_map
      (fun (t : Py_lexer.loc_token) ->
        match t.tok with Py_lexer.String s -> Some s | _ -> None)
      toks
  in
  check_str "escape decoded" "a\nb" (Option.get str)

let test_lexer_implicit_continuation () =
  (* newlines inside brackets do not end the logical line *)
  let m = parse "x = f(1,\n      2)\n" in
  check_int "one statement" 1 (List.length m)

let test_lexer_line_numbers () =
  let toks = Py_lexer.tokenize "a = 1\nb = 2\n" in
  let line_of name =
    List.find_map
      (fun (t : Py_lexer.loc_token) ->
        match t.tok with Py_lexer.Ident n when n = name -> Some t.line | _ -> None)
      toks
  in
  check_int "first line" 1 (Option.get (line_of "a"));
  check_int "second line" 2 (Option.get (line_of "b"))

let test_lexer_error () =
  Alcotest.check_raises "unexpected char" (Py_lexer.Lex_error ("unexpected character '?'", 1))
    (fun () -> ignore (Py_lexer.tokenize "x ? y\n"))

(* ---------------- parser + lowering ---------------- *)

let test_figure2_call () =
  check_str "figure 2(b) AST"
    "(Call (AttributeLoad (NameLoad self) (Attr assertTrue)) (AttributeLoad (NameLoad picture) (Attr rotate_angle)) (Num 90))"
    (sexp_of_stmt "self.assertTrue(picture.rotate_angle, 90)\n")

let test_assign_chain () =
  check_str "chained assign" "(Assign (NameStore a) (NameStore b) (Num 1))"
    (sexp_of_stmt "a = b = 1\n")

let test_aug_assign () =
  check_str "augmented" "(AugAssign (NameStore x) += (Num 1))" (sexp_of_stmt "x += 1\n")

let test_attribute_store () =
  check_str "example 3.8 shape"
    "(Assign (AttributeStore (NameLoad self) (Attr name)) (NameLoad name))"
    (sexp_of_stmt "self.name = name\n")

let test_keyword_args () =
  check_str "keyword argument" "(Call (NameLoad f) (Num 1) (Keyword key (Str v)))"
    (sexp_of_stmt "f(1, key=\"v\")\n")

let test_star_args_call () =
  check_str "star args" "(Call (NameLoad f) (StarArg (NameLoad a)) (DoubleStarArg (NameLoad kw)))"
    (sexp_of_stmt "f(*a, **kw)\n")

let test_subscript_slice () =
  check_str "subscript" "(SubscriptLoad (NameLoad xs) (Num 0))" (sexp_of_stmt "xs[0]\n");
  check_str "slice abstracted" "(SubscriptLoad (NameLoad xs) (Num 1))"
    (sexp_of_stmt "xs[1:2]\n")

let test_compare_chain_ops () =
  check_str "comparison" "(Compare (NameLoad a) == (NameLoad b))" (sexp_of_stmt "a == b\n");
  check_str "is not" "(Compare (NameLoad a) is not (NameLoad b))"
    (sexp_of_stmt "a is not b\n");
  check_str "not in" "(Compare (NameLoad a) not in (NameLoad b))"
    (sexp_of_stmt "a not in b\n")

let test_bool_ops () =
  check_str "and chain" "(BoolOp and (NameLoad a) (NameLoad b) (NameLoad c))"
    (sexp_of_stmt "a and b and c\n");
  check_str "ternary" "(BoolOp ifexp (Num 1) (NameLoad c) (Num 2))"
    (sexp_of_stmt "x = 1 if c else 2\n" |> fun _ ->
     match Py_lower.lower_stmts (parse "x = 1 if c else 2\n") with
     | [ s ] -> (
         match s.Py_lower.tree.Tree.children with
         | [ _; v ] -> Tree.to_sexp v
         | _ -> "?")
     | _ -> "?")

let test_operator_precedence () =
  check_str "mul binds tighter" "(BinOp (NameLoad a) + (BinOp (NameLoad b) * (NameLoad c)))"
    (sexp_of_stmt "a + b * c\n");
  check_str "parens" "(BinOp (BinOp (NameLoad a) + (NameLoad b)) * (NameLoad c))"
    (sexp_of_stmt "(a + b) * c\n");
  check_str "power right assoc" "(BinOp (NameLoad a) ** (BinOp (NameLoad b) ** (NameLoad c)))"
    (sexp_of_stmt "a ** b ** c\n")

let test_unary_not () =
  check_str "not" "(UnaryOp not (NameLoad x))" (sexp_of_stmt "not x\n");
  check_str "negative" "(UnaryOp - (Num 1))" (sexp_of_stmt "-1\n")

let test_collections () =
  check_str "list" "(List (Num 1) (Num 2))" (sexp_of_stmt "[1, 2]\n");
  check_str "dict" "(Dict (DictItem (Str a) (Num 1)))" (sexp_of_stmt "{\"a\": 1}\n");
  check_str "tuple" "(Tuple (Num 1) (Num 2))" (sexp_of_stmt "(1, 2)\n");
  check_str "empty list" "List" (sexp_of_stmt "[]\n")

let test_lambda () =
  check_str "lambda" "(Lambda (NameParam x) (BinOp (NameLoad x) + (Num 1)))"
    (sexp_of_stmt "f = lambda x: x + 1\n" |> fun _ ->
     match Py_lower.lower_stmts (parse "f = lambda x: x + 1\n") with
     | [ s ] -> (
         match s.Py_lower.tree.Tree.children with
         | [ _; v ] -> Tree.to_sexp v
         | _ -> "?")
     | _ -> "?")

let test_funcdef_params () =
  check_str "full params"
    "(FunctionDef (FuncName f) (NameParam self) (NameParam a) (StarParam args) (DoubleStarParam kwargs))"
    (sexp_of_stmt "def f(self, a, *args, **kwargs):\n    pass\n")

let test_default_params () =
  check_str "defaults parse" "(FunctionDef (FuncName f) (NameParam a) (NameParam b))"
    (sexp_of_stmt "def f(a, b=1):\n    pass\n")

let test_classdef () =
  check_str "class with base" "(ClassDef (ClassName TestPicture) (NameLoad TestCase))"
    (sexp_of_stmt "class TestPicture(TestCase):\n    pass\n")

let test_for_while_if () =
  check_str "for header" "(For (NameStore i) (Call (NameLoad range) (Num 10)))"
    (sexp_of_stmt "for i in range(10):\n    pass\n");
  check_str "while header" "(While (Compare (NameLoad x) < (Num 3)))"
    (sexp_of_stmt "while x < 3:\n    pass\n");
  check_str "if header" "(If (NameLoad x))" (sexp_of_stmt "if x:\n    pass\n")

let test_try_except () =
  check_str "handler binding"
    "(Try (ExceptHandler (NameLoad ValueError) (NameStore e)))"
    (sexp_of_stmt "try:\n    f()\nexcept ValueError as e:\n    pass\n")

let test_with () =
  check_str "with as" "(With (Call (NameLoad open) (NameLoad p)) (NameStore f))"
    (sexp_of_stmt "with open(p) as f:\n    pass\n")

let test_imports () =
  check_str "import as" "(Import (ImportAs numpy np))" (sexp_of_stmt "import numpy as np\n");
  check_str "from import"
    "(ImportFrom unittest (ImportName TestCase))"
    (sexp_of_stmt "from unittest import TestCase\n");
  check_str "dotted" "(Import (ImportName os.path))" (sexp_of_stmt "import os.path\n")

let test_return_raise_assert () =
  check_str "return value" "(Return (NameLoad x))" (sexp_of_stmt "return x\n");
  check_str "bare return" "Return" (sexp_of_stmt "return\n");
  check_str "raise" "(Raise (Call (NameLoad ValueError) (Str bad)))"
    (sexp_of_stmt "raise ValueError(\"bad\")\n");
  check_str "assert with message" "(Assert (NameLoad ok) (Str oops))"
    (sexp_of_stmt "assert ok, \"oops\"\n")

let test_global_del () =
  check_str "global" "(Global count)" (sexp_of_stmt "global count\n");
  check_str "del" "(Delete (NameLoad x))" (sexp_of_stmt "del x\n")

let test_semicolons () =
  let m = parse "a = 1; b = 2\n" in
  check_int "two statements on one line" 2 (List.length m)

let test_decorators () =
  check_str "decorated def skips decorator in header"
    "(FunctionDef (FuncName f) (NameParam self))"
    (sexp_of_stmt "@property\ndef f(self):\n    pass\n")

let test_nested_contexts () =
  let src = "class C(object):\n    def m(self):\n        x = 1\n" in
  let infos = Py_lower.lower_stmts (parse src) in
  let last = List.nth infos (List.length infos - 1) in
  check_bool "class context" true (last.Py_lower.enclosing_class = Some "C");
  check_bool "function context" true (last.Py_lower.enclosing_function = Some "m");
  check_int "line number" 3 last.Py_lower.line

let test_elif_chain () =
  let m = parse "if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n" in
  match (List.hd m).Py_ast.kind with
  | Py_ast.If (branches, orelse) ->
      check_int "two branches" 2 (List.length branches);
      check_int "else body" 1 (List.length orelse)
  | _ -> Alcotest.fail "expected If"

let test_tuple_unpack_for () =
  check_str "tuple target" "(For (Tuple (NameStore k) (NameStore v)) (Call (AttributeLoad (NameLoad d) (Attr items))))"
    (sexp_of_stmt "for k, v in d.items():\n    pass\n")

let test_list_comprehension_abstracted () =
  (* comprehensions are abstracted to the head expression list *)
  let m = parse "xs = [f(x) for x in items]\n" in
  check_int "parses" 1 (List.length m)

let test_parse_error_reported () =
  check_bool "raises Parse_error" true
    (try
       ignore (parse "def f(:\n    pass\n");
       false
     with Py_parser.Parse_error _ -> true)

let test_module_tree_nests_bodies () =
  let t = Py_lower.module_tree (parse "def f():\n    return 1\n") in
  check_bool "module root" true (t.Tree.value = "Module");
  check_bool "body nested" true (Tree.size t > 5)

let test_yield () =
  check_str "yield as pseudo-call" "(Call (NameLoad yield) (NameLoad x))"
    (sexp_of_last "def g():\n    yield x\n")

let suite =
  [
    Alcotest.test_case "lexer: layout tokens" `Quick test_lexer_layout;
    Alcotest.test_case "lexer: blank lines / comments" `Quick test_lexer_blank_and_comments;
    Alcotest.test_case "lexer: string escapes" `Quick test_lexer_string_escapes;
    Alcotest.test_case "lexer: implicit continuation" `Quick test_lexer_implicit_continuation;
    Alcotest.test_case "lexer: line numbers" `Quick test_lexer_line_numbers;
    Alcotest.test_case "lexer: error reporting" `Quick test_lexer_error;
    Alcotest.test_case "figure 2(b) exact shape" `Quick test_figure2_call;
    Alcotest.test_case "chained assignment" `Quick test_assign_chain;
    Alcotest.test_case "augmented assignment" `Quick test_aug_assign;
    Alcotest.test_case "attribute store (ex 3.8)" `Quick test_attribute_store;
    Alcotest.test_case "keyword arguments" `Quick test_keyword_args;
    Alcotest.test_case "star arguments" `Quick test_star_args_call;
    Alcotest.test_case "subscripts and slices" `Quick test_subscript_slice;
    Alcotest.test_case "comparison operators" `Quick test_compare_chain_ops;
    Alcotest.test_case "boolean operators" `Quick test_bool_ops;
    Alcotest.test_case "operator precedence" `Quick test_operator_precedence;
    Alcotest.test_case "unary operators" `Quick test_unary_not;
    Alcotest.test_case "collection literals" `Quick test_collections;
    Alcotest.test_case "lambda" `Quick test_lambda;
    Alcotest.test_case "function parameters" `Quick test_funcdef_params;
    Alcotest.test_case "default parameters" `Quick test_default_params;
    Alcotest.test_case "class definition" `Quick test_classdef;
    Alcotest.test_case "compound headers" `Quick test_for_while_if;
    Alcotest.test_case "try/except binding" `Quick test_try_except;
    Alcotest.test_case "with statement" `Quick test_with;
    Alcotest.test_case "imports" `Quick test_imports;
    Alcotest.test_case "return/raise/assert" `Quick test_return_raise_assert;
    Alcotest.test_case "global/del" `Quick test_global_del;
    Alcotest.test_case "semicolon statements" `Quick test_semicolons;
    Alcotest.test_case "decorators" `Quick test_decorators;
    Alcotest.test_case "enclosing contexts" `Quick test_nested_contexts;
    Alcotest.test_case "elif chains" `Quick test_elif_chain;
    Alcotest.test_case "tuple unpacking in for" `Quick test_tuple_unpack_for;
    Alcotest.test_case "list comprehension" `Quick test_list_comprehension_abstracted;
    Alcotest.test_case "parse errors raised" `Quick test_parse_error_reported;
    Alcotest.test_case "whole-module tree" `Quick test_module_tree_nests_bodies;
    Alcotest.test_case "yield" `Quick test_yield;
  ]

(* ---------------- pretty-printer round trips ---------------- *)

let normalize src = Py_lower.module_tree (parse src)

let round_trips src =
  let m1 = parse src in
  let printed = Py_pretty.module_ m1 in
  let m2 =
    try parse printed
    with e ->
      Alcotest.failf "re-parse failed on:\n%s\n(%s)" printed (Printexc.to_string e)
  in
  if not (Namer_tree.Tree.equal (Py_lower.module_tree m1) (Py_lower.module_tree m2))
  then Alcotest.failf "round trip changed the AST:\n-- original --\n%s\n-- printed --\n%s" src printed

let test_pretty_round_trip_corpus () =
  (* every file of a generated corpus survives parse → print → parse *)
  let corpus =
    Namer_corpus.Corpus.generate
      {
        (Namer_corpus.Corpus.default_config Namer_corpus.Corpus.Python) with
        Namer_corpus.Corpus.n_repos = 4;
        files_per_repo = (4, 6);
        issue_rate = 0.1;
        benign_rate = 0.1;
      }
  in
  List.iter
    (fun (f : Namer_corpus.Corpus.file) -> round_trips f.Namer_corpus.Corpus.source)
    corpus.Namer_corpus.Corpus.files

let test_pretty_round_trip_constructs () =
  List.iter round_trips
    [
      "a = b = x + y * z ** 2\n";
      "result = f(1, *args, key=\"v\", **kw)\n";
      "if a and not b or c:\n    x = [1, 2]\nelif d:\n    y = {\"k\": v}\nelse:\n    z = (1,)\n";
      "for k, v in d.items():\n    total += v\nelse:\n    done = True\n";
      "class C(Base):\n    @property\n    def size(self):\n        return self._n\n";
      "try:\n    risky()\nexcept ValueError as e:\n    raise RuntimeError(\"bad\")\nfinally:\n    close()\n";
      "with open(p) as f:\n    data = f.read()\n";
      "def g(a, b=1, *args, **kwargs):\n    return lambda x: x + a\n";
      "x = 1 if cond else 2\n";
      "assert ok, \"message\"\nglobal counter\ndel tmp, tmp2\n";
      "value = items[0]\nmatrix = rows[1][2]\n";
      "flag = x is not None and y not in seen\n";
    ]

let test_docstrings_parse () =
  (* triple-quoted strings, including multi-line docstrings *)
  let m =
    parse
      "def f():\n    \"\"\"Docstring\n    spanning lines.\"\"\"\n    return 1\n"
  in
  check_int "one def" 1 (List.length m);
  let m2 = parse "s = '''a 'quoted' b'''\n" in
  match (List.hd m2).Py_ast.kind with
  | Py_ast.Assign (_, Py_ast.Str s) ->
      check_str "content preserved" "a 'quoted' b" s
  | _ -> Alcotest.fail "expected string assignment"

let pretty_suite =
  [
    Alcotest.test_case "pretty: corpus round trips" `Quick test_pretty_round_trip_corpus;
    Alcotest.test_case "pretty: construct round trips" `Quick test_pretty_round_trip_constructs;
    Alcotest.test_case "docstrings" `Quick test_docstrings_parse;
  ]

let suite = suite @ pretty_suite
