(* Tests for the deep-learning baselines: sample harvesting, perturbation,
   model training dynamics, and the scan protocol. *)

open Namer_baselines
module Corpus = Namer_corpus.Corpus
module Prng = Namer_util.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_corpus () =
  Corpus.generate
    {
      (Corpus.default_config Corpus.Python) with
      Corpus.n_repos = 3;
      files_per_repo = (3, 4);
      n_commit_files = 0;
    }

let harvest ?(n = 300) () =
  Sample.harvest ~prng:(Prng.create 17) ~max_samples:n (small_corpus ())

let test_harvest_well_formed () =
  let samples = harvest () in
  check_bool "non-empty" true (samples <> []);
  List.iter
    (fun (s : Sample.t) ->
      check_bool "slot within leaves" true
        (s.Sample.slot >= 0 && s.Sample.slot < Array.length s.Sample.leaves);
      check_bool "target within candidates" true
        (s.Sample.target >= 0 && s.Sample.target < Array.length s.Sample.candidates);
      check_bool "clean: written token is the target" true
        (String.equal (Sample.current s) s.Sample.candidates.(s.Sample.target));
      check_bool "clean samples are not bugs" true (not (Sample.is_bug s));
      check_bool "candidates distinct" true
        (let l = Array.to_list s.Sample.candidates in
         List.length l = List.length (List.sort_uniq compare l)))
    samples

let test_harvest_deterministic () =
  let a = harvest () and b = harvest () in
  check_int "same count" (List.length a) (List.length b);
  List.iter2
    (fun (x : Sample.t) (y : Sample.t) ->
      check_bool "same sample" true
        (x.Sample.file = y.Sample.file && x.Sample.slot = y.Sample.slot))
    a b

let test_perturb () =
  let prng = Prng.create 3 in
  let samples = harvest () in
  let some_perturbed = ref false in
  List.iter
    (fun s ->
      match Sample.perturb ~prng s with
      | Some p ->
          some_perturbed := true;
          check_bool "perturbed is a bug" true (Sample.is_bug p);
          check_bool "slot rewritten in leaves" true
            (not (String.equal (Sample.current p) (Sample.current s)));
          check_bool "tree rewritten too" true
            (List.mem (Sample.current p) (Namer_tree.Tree.leaves p.Sample.tree))
      | None -> ())
    samples;
  check_bool "at least one perturbation" true !some_perturbed

let test_variable_slots () =
  let tree =
    Namer_tree.Tree.node "Call"
      [
        Namer_tree.Tree.node "AttributeLoad"
          [
            Namer_tree.Tree.node "NameLoad" [ Namer_tree.Tree.leaf "ctx" ];
            Namer_tree.Tree.node "Attr" [ Namer_tree.Tree.leaf "start" ];
          ];
        Namer_tree.Tree.node "NameLoad" [ Namer_tree.Tree.leaf "i" ];
      ]
  in
  let slots = Sample.variable_slots tree in
  Alcotest.(check (list (pair int string))) "only NameLoad leaves"
    [ (0, "ctx"); (2, "i") ] slots

let test_training_learns () =
  (* a model trained briefly should beat the uniform-chance repair rate *)
  let samples = harvest ~n:400 () in
  let prng = Prng.create 5 in
  let n_train = 2 * List.length samples / 3 in
  let train = List.filteri (fun i _ -> i < n_train) samples in
  let test = List.filteri (fun i _ -> i >= n_train) samples in
  check_bool "enough samples harvested" true (List.length test > 10);
  let m = Pipeline.train ~which:`Ggnn ~prng ~epochs:2 train in
  let correct = ref 0 in
  List.iter
    (fun (s : Sample.t) ->
      let p = m.Pipeline.predict s in
      if p.Models.cand = s.Sample.target then incr correct)
    test;
  let acc = float_of_int !correct /. float_of_int (List.length test) in
  check_bool
    (Printf.sprintf "repair accuracy %.2f beats chance" acc)
    true
    (acc > 0.3 (* uniform over ≤8 candidates would be ~0.125 *))

let test_synthetic_accuracy_bounds () =
  let samples = harvest ~n:300 () in
  let prng = Prng.create 6 in
  let n_train = 2 * List.length samples / 3 in
  let m = Pipeline.train ~which:`Great ~prng ~epochs:1 (List.filteri (fun i _ -> i < n_train) samples) in
  let acc = Pipeline.synthetic_accuracy ~prng m (List.filteri (fun i _ -> i >= n_train) samples) in
  check_bool "classification in [0,1]" true
    (acc.Pipeline.classification >= 0.0 && acc.Pipeline.classification <= 1.0);
  check_bool "repair in [0,1]" true
    (acc.Pipeline.repair >= 0.0 && acc.Pipeline.repair <= 1.0)

let test_scan_reports_sorted () =
  let samples = harvest ~n:200 () in
  let prng = Prng.create 7 in
  let m = Pipeline.train ~which:`Ggnn ~prng ~epochs:1 samples in
  let reports = Pipeline.scan m samples in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Pipeline.confidence >= b.Pipeline.confidence && sorted rest
    | _ -> true
  in
  check_bool "descending confidence" true (sorted reports);
  List.iter
    (fun r ->
      check_bool "report proposes a change" true (r.Pipeline.found <> r.Pipeline.suggested))
    reports

let test_models_disagree_eventually () =
  (* GGNN and Great are different architectures; on a fresh (untrained)
     model their parameter draws differ *)
  let prng = Prng.create 8 in
  let g = Models.Ggnn.create ~prng in
  let t = Models.Great.create ~prng in
  let samples = harvest ~n:20 () in
  let diffs =
    List.exists
      (fun s ->
        (Models.Ggnn.predict g s).Models.cand <> (Models.Great.predict t s).Models.cand)
      samples
  in
  check_bool "architectures yield different functions" true diffs

let suite =
  [
    Alcotest.test_case "harvest: well-formed samples" `Quick test_harvest_well_formed;
    Alcotest.test_case "harvest: deterministic" `Quick test_harvest_deterministic;
    Alcotest.test_case "perturbation plants bugs" `Quick test_perturb;
    Alcotest.test_case "variable slot enumeration" `Quick test_variable_slots;
    Alcotest.test_case "training beats chance" `Slow test_training_learns;
    Alcotest.test_case "synthetic accuracy bounds" `Slow test_synthetic_accuracy_bounds;
    Alcotest.test_case "scan reports sorted" `Slow test_scan_reports_sorted;
    Alcotest.test_case "architectures differ" `Quick test_models_disagree_eventually;
  ]
