(* Tests for fix application: style-preserving subtoken rewrites on source
   lines. *)

module Fixer = Namer_core.Fixer

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let applied = function Fixer.Applied s -> s | _ -> Alcotest.fail "expected Applied"

let test_fix_camel () =
  check_str "assertTrue -> assertEqual"
    "        self.assertEqual(picture.rotate_angle, 90)"
    (applied
       (Fixer.fix_line "        self.assertTrue(picture.rotate_angle, 90)"
          ~found:"True" ~suggested:"Equal"))

let test_fix_snake () =
  check_str "snake typo" "self.picture_name = name"
    (applied (Fixer.fix_line "self.picture_nmae = name" ~found:"nmae" ~suggested:"name"))

let test_fix_whole_token () =
  check_str "single-subtoken identifier" "for i in range(10):"
    (applied (Fixer.fix_line "for n in range(10):" ~found:"n" ~suggested:"i"))

let test_fix_java_typo () =
  check_str "java camel" "        this.publicKey = publicKey;"
    (applied
       (Fixer.fix_line "        this.publicKey = publickKey;" ~found:"publick"
          ~suggested:"public"))

let test_ambiguous_not_rewritten () =
  (* 'name' appears as a subtoken of two identifiers: refuse to guess *)
  match Fixer.fix_line "name = other_name" ~found:"name" ~suggested:"title" with
  | Fixer.Ambiguous n -> Alcotest.(check bool) "two candidates" true (n = 2)
  | _ -> Alcotest.fail "expected ambiguity"

let test_not_found () =
  check_bool "missing subtoken" true
    (Fixer.fix_line "x = y" ~found:"zzz" ~suggested:"w" = Fixer.Not_found_on_line)

let test_fix_source_multi () =
  let source = "a = 1\nself.assertTrue(v, 3)\nfor n in range(4):\n" in
  let fixed, outcomes =
    Fixer.fix_source source [ (2, "True", "Equal"); (3, "n", "i") ]
  in
  check_str "both lines rewritten" "a = 1\nself.assertEqual(v, 3)\nfor i in range(4):\n"
    fixed;
  check_bool "all applied" true
    (List.for_all
       (fun (_, _, _, r) -> match r with Fixer.Applied _ -> true | _ -> false)
       outcomes)

let test_fix_source_out_of_range () =
  let source = "x = 1" in
  let fixed, outcomes = Fixer.fix_source source [ (99, "x", "y") ] in
  check_str "untouched" source fixed;
  check_bool "reported" true
    (match outcomes with [ (_, _, _, Fixer.Not_found_on_line) ] -> true | _ -> false)

let test_fixed_line_reparses () =
  (* end-to-end sanity: the fixed python line stays parseable *)
  let fixed =
    applied
      (Fixer.fix_line "self.assertTrue(value, 42)" ~found:"True" ~suggested:"Equal")
  in
  match Namer_pylang.Py_parser.parse_module (fixed ^ "\n") with
  | [ _ ] -> ()
  | _ -> Alcotest.fail "fixed line should be one statement"

let suite =
  [
    Alcotest.test_case "camelCase fix" `Quick test_fix_camel;
    Alcotest.test_case "snake_case fix" `Quick test_fix_snake;
    Alcotest.test_case "whole-token fix" `Quick test_fix_whole_token;
    Alcotest.test_case "java typo fix" `Quick test_fix_java_typo;
    Alcotest.test_case "ambiguity refused" `Quick test_ambiguous_not_rewritten;
    Alcotest.test_case "missing subtoken" `Quick test_not_found;
    Alcotest.test_case "multi-line fixes" `Quick test_fix_source_multi;
    Alcotest.test_case "out-of-range line" `Quick test_fix_source_out_of_range;
    Alcotest.test_case "fixed line reparses" `Quick test_fixed_line_reparses;
  ]
