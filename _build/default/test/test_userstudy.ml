(* Tests for the simulated user study (Tables 7–8). *)

module Userstudy = Namer_userstudy.Userstudy
module Issue = Namer_corpus.Issue

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let total (t : Userstudy.tally) =
  t.Userstudy.not_accepted + t.Userstudy.with_ide + t.Userstudy.with_pr
  + t.Userstudy.manually

let test_panel_size () =
  check_int "seven developers" 7 (List.length Userstudy.panel)

let test_tally_sums () =
  List.iteri
    (fun i cat ->
      check_int "every developer responds" 7 (total (Userstudy.run ~seed:(100 + i) cat)))
    Userstudy.categories

let test_deterministic () =
  let a = Userstudy.run ~seed:5 Issue.Typo and b = Userstudy.run ~seed:5 Issue.Typo in
  check_bool "same seed, same tally" true (a = b)

let test_categories_cover_table4 () =
  check_int "five categories as in Table 8" 5 (List.length Userstudy.categories)

let test_paper_trends () =
  (* aggregate many simulated studies; check the paper's qualitative
     trends rather than single-draw noise *)
  let sum_of cat f =
    let s = ref 0 in
    for seed = 0 to 49 do
      s := !s + f (Userstudy.run ~seed cat)
    done;
    !s
  in
  let manual = sum_of Issue.Typo (fun t -> t.Userstudy.manually) in
  let manual_minor = sum_of Issue.Minor_issue (fun t -> t.Userstudy.manually) in
  check_bool "typos fixed manually more often than minor issues" true
    (manual > manual_minor);
  let rejected_confusing = sum_of Issue.Confusing_name (fun t -> t.Userstudy.not_accepted) in
  let rejected_minor = sum_of Issue.Minor_issue (fun t -> t.Userstudy.not_accepted) in
  check_bool "minor issues rejected more than confusing names" true
    (rejected_minor > rejected_confusing);
  let pr_inconsistent = sum_of Issue.Inconsistent_name (fun t -> t.Userstudy.with_pr) in
  let ide_inconsistent = sum_of Issue.Inconsistent_name (fun t -> t.Userstudy.with_ide) in
  check_bool "inconsistent names go through review" true (pr_inconsistent > ide_inconsistent)

let test_response_names () =
  check_bool "labels distinct" true
    (List.length
       (List.sort_uniq compare
          (List.map Userstudy.response_name
             [
               Userstudy.Not_accepted; Userstudy.With_ide_plugin;
               Userstudy.With_pull_request; Userstudy.Fix_manually;
             ]))
    = 4)

let suite =
  [
    Alcotest.test_case "panel size" `Quick test_panel_size;
    Alcotest.test_case "tallies sum to panel" `Quick test_tally_sums;
    Alcotest.test_case "determinism" `Quick test_deterministic;
    Alcotest.test_case "category coverage" `Quick test_categories_cover_table4;
    Alcotest.test_case "paper trends hold" `Quick test_paper_trends;
    Alcotest.test_case "response labels" `Quick test_response_names;
  ]
